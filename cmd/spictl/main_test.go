package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/dataflow"
)

func testCtlConfig(t *testing.T) ctlConfig {
	t.Helper()
	g, err := dataflow.Parse(strings.NewReader(builtinGraph))
	if err != nil {
		t.Fatal(err)
	}
	return ctlConfig{
		Graph: g, Assign: []int{0, 1, 2, 0},
		Iterations: 24, EpochIters: 6, Seed: 11,
		InProc: 3, MigrateAt: -1, Verify: true,
		Heartbeat: 20 * time.Millisecond, PeerTimeout: 150 * time.Millisecond,
		EpochTimeout: 15 * time.Second, Deadline: 60 * time.Second,
	}
}

// TestRunCtlHealthy drives the full in-proc pool and requires the
// orchestrated digests to verify against the static run.
func TestRunCtlHealthy(t *testing.T) {
	var out bytes.Buffer
	if err := runCtl(testCtlConfig(t), &out); err != nil {
		t.Fatalf("runCtl: %v\n%s", err, out.String())
	}
	for _, want := range []string{"digest snk ", "commits=4 aborts=0", "bit-identical"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunCtlMigrateAndKill forces a planned migration at epoch 1 and
// kills a worker at epoch 2: the run must recover, verify, and report
// both the migrations and the loss.
func TestRunCtlMigrateAndKill(t *testing.T) {
	cfg := testCtlConfig(t)
	cfg.MigrateAt = 1
	cfg.Kill = &fault{Worker: "w2", Epoch: 2}
	var out bytes.Buffer
	if err := runCtl(cfg, &out); err != nil {
		t.Fatalf("runCtl: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"workers_lost=1", "bit-identical"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "migrations=0 ") {
		t.Errorf("expected migrations, got:\n%s", s)
	}
}

func TestParseFault(t *testing.T) {
	if f, err := parseFault("w1@3"); err != nil || f.Worker != "w1" || f.Epoch != 3 {
		t.Errorf("parseFault(w1@3) = %+v, %v", f, err)
	}
	if f, err := parseFault(""); err != nil || f != nil {
		t.Errorf("parseFault(empty) = %+v, %v", f, err)
	}
	for _, bad := range []string{"w1", "@3", "w1@", "w1@-2", "w1@x"} {
		if _, err := parseFault(bad); err == nil {
			t.Errorf("parseFault(%q) accepted", bad)
		}
	}
}
