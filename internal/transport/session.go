package transport

import (
	"encoding/binary"
	"fmt"
)

// Session multiplexing, link wire protocol extension. One Link per node
// pair carries many independent graph sessions: every session frame is a
// normal numbered link frame whose body starts with a u32 session ID, so
// the resend buffer, cumulative acks, and RESUME replay recover every
// live session's traffic with the exact machinery that recovers a single
// run — per-session resume state costs nothing beyond the tag.
//
//	SOPEN   := u32 sid | u16 tlen | tlen * tenant byte   (open request)
//	SOPENOK := u32 sid | u8 status                       (admission verdict)
//	SCLOSE  := u32 sid | u8 status                       (session teardown)
//	SDATA   := u32 sid | SPI-encoded message             (tagged DATA)
//	SACK    := u32 sid | u16 edge | u32 count            (tagged ACK)
//	SFIN    := u32 sid | u16 edge                        (tagged FIN)
//
// The capability is negotiated like ack piggybacking (mutual-optional):
// each side advertises featSessions in its HELLO and session frames flow
// only when both did. An old peer never sees a session frame; callers
// fall back to running one implicit, untagged session over the plain
// DATA/ACK/FIN types (see internal/session).
const (
	frameSOpen   byte = 10
	frameSOpenOK byte = 11
	frameSClose  byte = 12
	frameSData   byte = 13
	frameSAck    byte = 14
	frameSFin    byte = 15

	// featSessions advertises that this side understands session-tagged
	// frames and the OPEN/OPENOK/CLOSE lifecycle.
	featSessions uint32 = 1 << 2

	sessionIDBytes  = 4
	sopenFixedBytes = sessionIDBytes + 2            // sid + tenant length
	sstatusBytes    = sessionIDBytes + 1            // sid + status
	sackBodyBytes   = sessionIDBytes + ackBodyBytes // sid + edge + count
	sfinBodyBytes   = sessionIDBytes + finBodyBytes // sid + edge
	sdataMinBytes   = sessionIDBytes + 2            // sid + SPI header
	maxTenantBytes  = 255                           // tenant name bound
)

// sessionFrame reports whether a frame type is session-tagged.
func sessionFrame(typ byte) bool {
	return typ >= frameSOpen && typ <= frameSFin
}

// SessionHandler extends Handler for links that negotiate featSessions.
// Calls are made from the link's reader goroutine in wire order, with the
// same aliasing contract as Handler: the msg slice passed to
// HandleSessionData is valid only for the duration of the call.
type SessionHandler interface {
	Handler
	// HandleSessionOpen delivers a peer's OPEN request. The handler must
	// not block the reader: answering with SendSessionOpenOK can stall on
	// a full resend buffer, so admission runs on its own goroutine.
	HandleSessionOpen(sid uint32, tenant string)
	// HandleSessionOpenOK delivers the admission verdict for a session
	// this side opened.
	HandleSessionOpenOK(sid uint32, status byte)
	// HandleSessionClose delivers a session teardown notice.
	HandleSessionClose(sid uint32, status byte)
	// HandleSessionData / HandleSessionAck / HandleSessionFin are the
	// session-tagged counterparts of HandleData / HandleAck / HandleFin.
	HandleSessionData(sid uint32, edge uint16, msg []byte)
	HandleSessionAck(sid uint32, edge uint16, count uint32)
	HandleSessionFin(sid uint32, edge uint16)
}

func encodeSessionOpen(sid uint32, tenant string) []byte {
	body := make([]byte, sopenFixedBytes+len(tenant))
	binary.LittleEndian.PutUint32(body, sid)
	binary.LittleEndian.PutUint16(body[sessionIDBytes:], uint16(len(tenant)))
	copy(body[sopenFixedBytes:], tenant)
	return body
}

func decodeSessionOpen(body []byte) (sid uint32, tenant string, err error) {
	if len(body) < sopenFixedBytes {
		return 0, "", fmt.Errorf("session open of %d bytes shorter than fixed header", len(body))
	}
	sid = binary.LittleEndian.Uint32(body)
	n := int(binary.LittleEndian.Uint16(body[sessionIDBytes:]))
	if n > maxTenantBytes {
		return 0, "", fmt.Errorf("session open declares %d-byte tenant, limit %d", n, maxTenantBytes)
	}
	if len(body) != sopenFixedBytes+n {
		return 0, "", fmt.Errorf("session open declares %d-byte tenant but carries %d bytes", n, len(body))
	}
	return sid, string(body[sopenFixedBytes:]), nil
}

func decodeSessionStatus(body []byte) (sid uint32, status byte, err error) {
	if len(body) != sstatusBytes {
		return 0, 0, fmt.Errorf("session status frame of %d bytes, want %d", len(body), sstatusBytes)
	}
	return binary.LittleEndian.Uint32(body), body[sessionIDBytes], nil
}

// splitSessionData splits an SDATA body into the session ID and the SPI
// message it tags. The message must be at least an SPI header.
func splitSessionData(body []byte) (sid uint32, msg []byte, err error) {
	if len(body) < sdataMinBytes {
		return 0, nil, fmt.Errorf("session data frame of %d bytes shorter than sid plus an SPI header", len(body))
	}
	return binary.LittleEndian.Uint32(body), body[sessionIDBytes:], nil
}

func decodeSessionAck(body []byte) (sid uint32, edge uint16, count uint32, err error) {
	if len(body) != sackBodyBytes {
		return 0, 0, 0, fmt.Errorf("session ack frame of %d bytes, want %d", len(body), sackBodyBytes)
	}
	return binary.LittleEndian.Uint32(body),
		binary.LittleEndian.Uint16(body[sessionIDBytes:]),
		binary.LittleEndian.Uint32(body[sessionIDBytes+2:]), nil
}

func decodeSessionFin(body []byte) (sid uint32, edge uint16, err error) {
	if len(body) != sfinBodyBytes {
		return 0, 0, fmt.Errorf("session fin frame of %d bytes, want %d", len(body), sfinBodyBytes)
	}
	return binary.LittleEndian.Uint32(body), binary.LittleEndian.Uint16(body[sessionIDBytes:]), nil
}

// SessionsNegotiated reports whether both sides advertised featSessions:
// session-tagged frames may flow only when it returns true.
func (l *Link) SessionsNegotiated() bool { return l.sessOn }

func (l *Link) sessionSendable() error {
	if !l.sessOn {
		return &Error{Op: "send", Addr: l.raddr,
			Err: fmt.Errorf("sessions not negotiated with node %d", l.peer)}
	}
	return nil
}

// SendSessionOpen asks the peer to admit session sid for tenant. The
// answer arrives as HandleSessionOpenOK.
func (l *Link) SendSessionOpen(sid uint32, tenant string) error {
	if err := l.sessionSendable(); err != nil {
		return err
	}
	if len(tenant) > maxTenantBytes {
		return &Error{Op: "send", Addr: l.raddr,
			Err: fmt.Errorf("tenant name of %d bytes, limit %d", len(tenant), maxTenantBytes)}
	}
	return l.sendSession(frameSOpen, encodeSessionOpen(sid, tenant))
}

// SendSessionOpenOK answers a session open with an admission status.
func (l *Link) SendSessionOpenOK(sid uint32, status byte) error {
	if err := l.sessionSendable(); err != nil {
		return err
	}
	var body [sstatusBytes]byte
	binary.LittleEndian.PutUint32(body[:], sid)
	body[sessionIDBytes] = status
	return l.sendSessionFrame(frameSOpenOK, body[:], nil, false)
}

// SendSessionClose tears one session down with a final status. Like FIN,
// the batch is flushed around it: close latency bounds session latency.
func (l *Link) SendSessionClose(sid uint32, status byte) error {
	if err := l.sessionSendable(); err != nil {
		return err
	}
	var body [sstatusBytes]byte
	binary.LittleEndian.PutUint32(body[:], sid)
	body[sessionIDBytes] = status
	l.flushNow()
	if err := l.sendSessionFrame(frameSClose, body[:], nil, false); err != nil {
		return err
	}
	l.flushNow()
	return nil
}

// SendSessionData transmits one SPI-encoded message on an outbound edge
// of session sid. The sid prefix rides in the frame header build (a
// stack-allocated head copied by buildFrame), so the session hot path
// allocates exactly as much as the untagged one: nothing.
func (l *Link) SendSessionData(sid uint32, edge uint16, msg []byte) error {
	if err := l.sessionSendable(); err != nil {
		return err
	}
	if _, ok := l.out[edge]; !ok {
		return &Error{Op: "send", Addr: l.raddr,
			Err: fmt.Errorf("edge %d is not outbound on this link", edge)}
	}
	var head [sessionIDBytes]byte
	binary.LittleEndian.PutUint32(head[:], sid)
	if err := l.sendSessionFrame(frameSData, head[:], msg, false); err != nil {
		return err
	}
	l.obs.dataSent.Inc()
	return nil
}

// SendSessionAck transmits a BBS credit / UBS acknowledgement for an
// inbound edge of session sid. Session acks never ride DATAACK frames
// (the piggyback prefix is untagged), but the write coalescer still
// batches them with neighboring frames.
func (l *Link) SendSessionAck(sid uint32, edge uint16, count uint32) error {
	if err := l.sessionSendable(); err != nil {
		return err
	}
	if _, ok := l.in[edge]; !ok {
		return &Error{Op: "send", Addr: l.raddr,
			Err: fmt.Errorf("edge %d is not inbound on this link", edge)}
	}
	var body [sackBodyBytes]byte
	binary.LittleEndian.PutUint32(body[:], sid)
	binary.LittleEndian.PutUint16(body[sessionIDBytes:], edge)
	binary.LittleEndian.PutUint32(body[sessionIDBytes+2:], count)
	if err := l.sendSessionFrame(frameSAck, body[:], nil, false); err != nil {
		return err
	}
	l.obs.acksSent.Inc()
	return nil
}

// SendSessionFin marks one edge of session sid finished, the tagged
// counterpart of SendFin.
func (l *Link) SendSessionFin(sid uint32, edge uint16) error {
	if err := l.sessionSendable(); err != nil {
		return err
	}
	_, outOK := l.out[edge]
	_, inOK := l.in[edge]
	if !outOK && !inOK {
		return &Error{Op: "send", Addr: l.raddr,
			Err: fmt.Errorf("edge %d is not declared on this link", edge)}
	}
	var body [sfinBodyBytes]byte
	binary.LittleEndian.PutUint32(body[:], sid)
	binary.LittleEndian.PutUint16(body[sessionIDBytes:], edge)
	l.flushNow()
	if err := l.sendSessionFrame(frameSFin, body[:], nil, false); err != nil {
		return err
	}
	l.flushNow()
	l.obs.finsSent.Inc()
	l.obs.tr.Instant("link", "fin:send", l.obs.pid, int(edge))
	return nil
}

// dispatchSession routes one inbound session frame to the SessionHandler.
// It returns a protocol error when the peer sends session frames this
// side never negotiated, or tags an edge outside the manifest.
func (l *Link) dispatchSession(typ byte, body []byte) error {
	if l.sh == nil {
		return fmt.Errorf("session frame type %d but sessions were not negotiated", typ)
	}
	switch typ {
	case frameSOpen:
		sid, tenant, err := decodeSessionOpen(body)
		if err != nil {
			return err
		}
		l.sh.HandleSessionOpen(sid, tenant)
	case frameSOpenOK:
		sid, status, err := decodeSessionStatus(body)
		if err != nil {
			return err
		}
		l.sh.HandleSessionOpenOK(sid, status)
	case frameSClose:
		sid, status, err := decodeSessionStatus(body)
		if err != nil {
			return err
		}
		l.sh.HandleSessionClose(sid, status)
	case frameSData:
		sid, msg, err := splitSessionData(body)
		if err != nil {
			return err
		}
		edge := binary.LittleEndian.Uint16(msg)
		if _, ok := l.in[edge]; !ok {
			return fmt.Errorf("session data frame for undeclared inbound edge %d", edge)
		}
		l.obs.dataRecv.Inc()
		l.sh.HandleSessionData(sid, edge, msg)
	case frameSAck:
		sid, edge, count, err := decodeSessionAck(body)
		if err != nil {
			return err
		}
		if _, ok := l.out[edge]; !ok {
			return fmt.Errorf("session ack frame for undeclared outbound edge %d", edge)
		}
		l.obs.acksRecv.Inc()
		l.sh.HandleSessionAck(sid, edge, count)
	case frameSFin:
		sid, edge, err := decodeSessionFin(body)
		if err != nil {
			return err
		}
		_, inOK := l.in[edge]
		_, outOK := l.out[edge]
		if !inOK && !outOK {
			return fmt.Errorf("session fin frame for undeclared edge %d", edge)
		}
		l.obs.finsRecv.Inc()
		l.obs.tr.Instant("link", "fin:recv", l.obs.pid, int(edge))
		l.sh.HandleSessionFin(sid, edge)
	}
	return nil
}
