package session

import (
	"sort"
	"sync"
)

// Admission bounds what one node will serve. The zero value admits
// everything (no caps).
type Admission struct {
	// MaxSessions caps concurrently live sessions on this node. 0 means
	// unbounded. When the node is full, a new OPEN either sheds the
	// oldest *degraded* session to make room or is rejected with
	// StatusRejectedCapacity.
	MaxSessions int
	// TenantQuota caps live sessions per tenant. 0 means unbounded.
	TenantQuota int
	// TenantWeights optionally partitions MaxSessions proportionally:
	// tenant t may hold at most max(1, MaxSessions*w(t)/Σw) sessions,
	// where unlisted tenants get weight 1 and Σw sums the configured
	// weights. Beyond-share opens reject with StatusRejectedQuota.
	// Ignored when empty or when MaxSessions is 0.
	TenantWeights map[string]int
	// MaxTenantBytes bounds a tenant's estimated queued inbound bytes
	// (delivered but not yet acknowledged by its kernels, summed over its
	// sessions). Exceeding it marks the tenant's oldest healthy session
	// *degraded*: still running, but first in line to be shed when the
	// node fills up. 0 means unbounded.
	MaxTenantBytes int64
}

// entry is one live session in the admitter's book. sid alone cannot key
// the book — IDs are allocated per client link — so entries are keyed by
// admission sequence number, which also defines "oldest".
type entry struct {
	seq    uint64
	tenant string
	stream *Stream

	mu       sync.Mutex
	degraded bool
	shed     bool
}

func (e *entry) wasShed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.shed
}

// admitter applies the Admission policy. Its lock nests inside stream
// locks (byte accounting calls in with s.mu held); it therefore never
// calls back into a Stream.
type admitter struct {
	cfg       Admission
	weightSum int

	mu          sync.Mutex
	seq         uint64
	live        map[uint64]*entry
	tenantLive  map[string]int
	tenantBytes map[string]int64
	degraded    int
}

func newAdmitter(cfg Admission) *admitter {
	sum := 0
	for _, w := range cfg.TenantWeights {
		if w > 0 {
			sum += w
		}
	}
	return &admitter{
		cfg:         cfg,
		weightSum:   sum,
		live:        map[uint64]*entry{},
		tenantLive:  map[string]int{},
		tenantBytes: map[string]int64{},
	}
}

// tenantCap returns tenant's session cap, 0 meaning unbounded.
func (a *admitter) tenantCap(tenant string) int {
	cap := a.cfg.TenantQuota
	if a.cfg.MaxSessions > 0 && a.weightSum > 0 {
		w := a.cfg.TenantWeights[tenant]
		if w <= 0 {
			w = 1
		}
		share := a.cfg.MaxSessions * w / a.weightSum
		if share < 1 {
			share = 1
		}
		if cap == 0 || share < cap {
			cap = share
		}
	}
	return cap
}

// admit decides one OPEN. On StatusAdmitted it books the session and
// returns its entry; victim, when non-nil, is a degraded session that was
// unbooked to make room — the caller must shed its stream (outside any
// admitter call). Decisions are a pure function of the book's state, so
// a deterministic arrival order yields deterministic verdicts.
func (a *admitter) admit(tenant string, force bool) (status byte, e *entry, victim *entry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !force {
		if cap := a.tenantCap(tenant); cap > 0 && a.tenantLive[tenant] >= cap {
			return StatusRejectedQuota, nil, nil
		}
		if a.cfg.MaxSessions > 0 && len(a.live) >= a.cfg.MaxSessions {
			victim = a.oldestLocked(true, "")
			if victim == nil {
				return StatusRejectedCapacity, nil, nil
			}
			victim.mu.Lock()
			victim.shed = true
			victim.mu.Unlock()
			a.unbookLocked(victim)
		}
	}
	a.seq++
	e = &entry{seq: a.seq, tenant: tenant}
	a.live[e.seq] = e
	a.tenantLive[tenant]++
	return StatusAdmitted, e, victim
}

// release unbooks a finished session and returns its residual queued
// bytes to the tenant budget. Safe to call after the entry was already
// unbooked by shedding.
func (a *admitter) release(e *entry, residualBytes int64) {
	a.mu.Lock()
	if _, ok := a.live[e.seq]; ok {
		a.unbookLocked(e)
	}
	if residualBytes != 0 {
		a.tenantBytes[e.tenant] -= residualBytes
		if a.tenantBytes[e.tenant] <= 0 {
			delete(a.tenantBytes, e.tenant)
		}
	}
	a.mu.Unlock()
}

func (a *admitter) unbookLocked(e *entry) {
	delete(a.live, e.seq)
	a.tenantLive[e.tenant]--
	if a.tenantLive[e.tenant] <= 0 {
		delete(a.tenantLive, e.tenant)
	}
	e.mu.Lock()
	if e.degraded {
		a.degraded--
	}
	e.mu.Unlock()
}

// addBytes moves the tenant's queued-byte estimate and, past the budget,
// degrades the tenant's oldest healthy session. Degradation is sticky:
// draining the queue does not restore the session, it stays the
// preferred shed victim.
func (a *admitter) addBytes(e *entry, delta int64) {
	a.mu.Lock()
	a.tenantBytes[e.tenant] += delta
	over := a.cfg.MaxTenantBytes > 0 && a.tenantBytes[e.tenant] > a.cfg.MaxTenantBytes
	if a.tenantBytes[e.tenant] <= 0 {
		delete(a.tenantBytes, e.tenant)
	}
	if over {
		if v := a.oldestLocked(false, e.tenant); v != nil {
			v.mu.Lock()
			v.degraded = true
			v.mu.Unlock()
			a.degraded++
		}
	}
	a.mu.Unlock()
}

// oldestLocked scans the book for the lowest-seq live entry matching the
// filter: degraded sessions when wantDegraded, else healthy sessions of
// the given tenant.
func (a *admitter) oldestLocked(wantDegraded bool, tenant string) *entry {
	var best *entry
	for _, e := range a.live {
		e.mu.Lock()
		deg := e.degraded
		e.mu.Unlock()
		if wantDegraded {
			if !deg {
				continue
			}
		} else if deg || e.tenant != tenant {
			continue
		}
		if best == nil || e.seq < best.seq {
			best = e
		}
	}
	return best
}

// entries snapshots the live book in admission order (oldest first), for
// the reaper's scan and the health snapshot's per-session ages.
func (a *admitter) entries() []*entry {
	a.mu.Lock()
	out := make([]*entry, 0, len(a.live))
	for _, e := range a.live {
		out = append(out, e)
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

func (a *admitter) counts() (live, degraded int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.live), a.degraded
}

func (a *admitter) queuedBytes(tenant string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tenantBytes[tenant]
}

// totalBytes sums queued inbound bytes across all tenants, the node-wide
// backpressure signal Load reports for placement.
func (a *admitter) totalBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int64
	for _, b := range a.tenantBytes {
		n += b
	}
	return n
}
