package huffman

import (
	"container/heap"
	"fmt"
	"sort"
)

// maxCodeLen bounds canonical code lengths; 32 permits any practical
// alphabet while fitting codes in uint32.
const maxCodeLen = 32

// Codebook is a canonical Huffman code over a contiguous symbol alphabet
// [0, len(Lengths)). Symbols with Lengths[s] == 0 have no code (zero
// frequency) and cannot be encoded.
type Codebook struct {
	// Lengths[s] is the code length in bits of symbol s (0 = absent).
	Lengths []uint8
	// codes[s] is the canonical code value of symbol s.
	codes []uint32
}

type hnode struct {
	freq        int64
	symbol      int // -1 for internal
	left, right *hnode
}

type hheap []*hnode

func (h hheap) Len() int { return len(h) }
func (h hheap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].symbol < h[j].symbol // deterministic ties
}
func (h hheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hheap) Push(x interface{}) { *h = append(*h, x.(*hnode)) }
func (h *hheap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Build constructs a canonical Huffman codebook from symbol frequencies.
// At least one frequency must be positive. A single-symbol alphabet gets a
// 1-bit code.
func Build(freqs []int64) (*Codebook, error) {
	h := &hheap{}
	for s, f := range freqs {
		if f < 0 {
			return nil, fmt.Errorf("huffman: negative frequency %d for symbol %d", f, s)
		}
		if f > 0 {
			*h = append(*h, &hnode{freq: f, symbol: s})
		}
	}
	if h.Len() == 0 {
		return nil, fmt.Errorf("huffman: no symbols with positive frequency")
	}
	heap.Init(h)
	if h.Len() == 1 {
		only := (*h)[0].symbol
		lengths := make([]uint8, len(freqs))
		lengths[only] = 1
		return fromLengths(lengths)
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*hnode)
		b := heap.Pop(h).(*hnode)
		heap.Push(h, &hnode{freq: a.freq + b.freq, symbol: -1, left: a, right: b})
	}
	root := heap.Pop(h).(*hnode)
	lengths := make([]uint8, len(freqs))
	var walk func(n *hnode, depth uint8) error
	walk = func(n *hnode, depth uint8) error {
		if n.symbol >= 0 {
			if depth == 0 {
				depth = 1
			}
			if depth > maxCodeLen {
				return fmt.Errorf("huffman: code length %d exceeds %d", depth, maxCodeLen)
			}
			lengths[n.symbol] = depth
			return nil
		}
		if err := walk(n.left, depth+1); err != nil {
			return err
		}
		return walk(n.right, depth+1)
	}
	if err := walk(root, 0); err != nil {
		return nil, err
	}
	return fromLengths(lengths)
}

// fromLengths assigns canonical code values: symbols sorted by (length,
// symbol) receive consecutive codes.
func fromLengths(lengths []uint8) (*Codebook, error) {
	type sl struct {
		sym int
		ln  uint8
	}
	var present []sl
	for s, l := range lengths {
		if l > 0 {
			present = append(present, sl{s, l})
		}
	}
	sort.Slice(present, func(i, j int) bool {
		if present[i].ln != present[j].ln {
			return present[i].ln < present[j].ln
		}
		return present[i].sym < present[j].sym
	})
	codes := make([]uint32, len(lengths))
	var code uint32
	var prevLen uint8
	for _, p := range present {
		code <<= (p.ln - prevLen)
		codes[p.sym] = code
		code++
		prevLen = p.ln
	}
	return &Codebook{Lengths: lengths, codes: codes}, nil
}

// FromLengths rebuilds a codebook from transmitted code lengths — the
// decoder side of canonical Huffman: lengths fully determine the code.
func FromLengths(lengths []uint8) (*Codebook, error) {
	any := false
	for _, l := range lengths {
		if l > maxCodeLen {
			return nil, fmt.Errorf("huffman: length %d exceeds %d", l, maxCodeLen)
		}
		if l > 0 {
			any = true
		}
	}
	if !any {
		return nil, fmt.Errorf("huffman: all lengths zero")
	}
	return fromLengths(lengths)
}

// Encode appends the code for each symbol to the writer. Returns an error
// for symbols outside the alphabet or with no code.
func (c *Codebook) Encode(w *BitWriter, symbols []uint16) error {
	for _, s := range symbols {
		if int(s) >= len(c.Lengths) || c.Lengths[s] == 0 {
			return fmt.Errorf("huffman: symbol %d has no code", s)
		}
		w.WriteBits(c.codes[s], uint(c.Lengths[s]))
	}
	return nil
}

// Decoder decodes symbols against a fixed codebook. Building one
// precomputes the canonical first-code/offset tables, so decoding costs
// O(code length) per symbol with no allocation.
type Decoder struct {
	maxLen uint8
	// firstCode[l] is the canonical code value of the first symbol with
	// length l; count[l] the number of symbols of that length; symIndex[l]
	// the offset of that length's first symbol in syms.
	firstCode [maxCodeLen + 1]uint32
	count     [maxCodeLen + 1]int
	symIndex  [maxCodeLen + 1]int
	syms      []uint16 // symbols sorted by (length, symbol) — canonical order
}

// NewDecoder builds a Decoder for the codebook.
func (c *Codebook) NewDecoder() *Decoder {
	d := &Decoder{}
	for _, l := range c.Lengths {
		if l > 0 {
			d.count[l]++
			if l > d.maxLen {
				d.maxLen = l
			}
		}
	}
	// Canonical first codes per length.
	var code uint32
	idx := 0
	for l := uint8(1); l <= d.maxLen; l++ {
		d.firstCode[l] = code
		d.symIndex[l] = idx
		code = (code + uint32(d.count[l])) << 1
		idx += d.count[l]
	}
	// Symbols in canonical order: by (length, symbol).
	d.syms = make([]uint16, idx)
	fill := d.symIndex
	for s, l := range c.Lengths {
		if l > 0 {
			d.syms[fill[l]] = uint16(s)
			fill[l]++
		}
	}
	return d
}

// DecodeSymbol reads one symbol from the bit reader.
func (d *Decoder) DecodeSymbol(r *BitReader) (uint16, error) {
	var code uint32
	for l := uint8(1); l <= d.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(b)
		if n := d.count[l]; n > 0 {
			if off := code - d.firstCode[l]; off < uint32(n) {
				return d.syms[d.symIndex[l]+int(off)], nil
			}
		}
	}
	return 0, fmt.Errorf("huffman: invalid code in stream")
}

// Decode reads n symbols into a new slice. The requested count is capped
// against the reader's remaining bits (one bit per symbol minimum), so a
// corrupt count cannot force a huge allocation.
func (d *Decoder) Decode(r *BitReader, n int) ([]uint16, error) {
	if n > r.BitsRemaining() {
		return nil, fmt.Errorf("huffman: %d symbols cannot fit %d remaining bits", n, r.BitsRemaining())
	}
	out := make([]uint16, 0, n)
	for len(out) < n {
		s, err := d.DecodeSymbol(r)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Decode reads n symbols from the reader. For repeated decoding against
// the same codebook, build a Decoder once with NewDecoder instead.
func (c *Codebook) Decode(r *BitReader, n int) ([]uint16, error) {
	return c.NewDecoder().Decode(r, n)
}

// Histogram counts symbol frequencies over an alphabet of the given size.
func Histogram(symbols []uint16, alphabet int) []int64 {
	h := make([]int64, alphabet)
	for _, s := range symbols {
		if int(s) < alphabet {
			h[s]++
		}
	}
	return h
}

// EncodedBits returns the total bit length of encoding the histogram's
// symbols with this codebook — the compression figure without materializing
// the stream.
func (c *Codebook) EncodedBits(freqs []int64) int64 {
	var total int64
	for s, f := range freqs {
		if s < len(c.Lengths) {
			total += f * int64(c.Lengths[s])
		}
	}
	return total
}
