package syncgraph

import "testing"

func TestLatencyChain(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("A", 0, 10)
	b := g.AddVertex("B", 1, 20)
	c := g.AddVertex("C", 2, 30)
	g.AddEdge(a, b, 0, IPCEdge, "ab")
	g.AddEdge(b, c, 0, IPCEdge, "bc")
	l, ok := g.Latency(a, c)
	if !ok {
		t.Fatal("path should exist")
	}
	if l != 60 {
		t.Errorf("latency = %d, want 60", l)
	}
}

func TestLatencyPicksLongestPath(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("A", 0, 10)
	b := g.AddVertex("B", 1, 100)
	c := g.AddVertex("C", 2, 5)
	d := g.AddVertex("D", 3, 10)
	g.AddEdge(a, b, 0, SyncEdge, "ab")
	g.AddEdge(b, d, 0, SyncEdge, "bd")
	g.AddEdge(a, c, 0, SyncEdge, "ac")
	g.AddEdge(c, d, 0, SyncEdge, "cd")
	l, ok := g.Latency(a, d)
	if !ok || l != 120 {
		t.Errorf("latency = %d,%v, want 120 via B", l, ok)
	}
}

func TestLatencyIgnoresDelayedEdges(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("A", 0, 10)
	b := g.AddVertex("B", 1, 20)
	g.AddEdge(a, b, 1, SyncEdge, "ab")
	if _, ok := g.Latency(a, b); ok {
		t.Error("delayed-only path should report no zero-delay latency")
	}
}

func TestLatencyUnreachable(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("A", 0, 10)
	b := g.AddVertex("B", 1, 20)
	if _, ok := g.Latency(a, b); ok {
		t.Error("disconnected vertices should report no latency")
	}
}

func TestLatencySelf(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("A", 0, 10)
	l, ok := g.Latency(a, a)
	if !ok || l != 10 {
		t.Errorf("self latency = %d,%v, want 10", l, ok)
	}
}

func TestLatencyDeadlockedGraph(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("A", 0, 10)
	b := g.AddVertex("B", 1, 20)
	g.AddEdge(a, b, 0, SyncEdge, "ab")
	g.AddEdge(b, a, 0, SyncEdge, "ba")
	if _, ok := g.Latency(a, b); ok {
		t.Error("zero-delay cycle should make latency undefined")
	}
}

func TestLatencyConstrainedResyncRejects(t *testing.T) {
	// Two processor pairs with parallel sync edges; unconstrained
	// resynchronization may add a chaining edge. With a tight latency
	// bound, any candidate that couples src->snk more deeply is rejected,
	// and the latency never exceeds the bound.
	build := func() (*Graph, VertexID, VertexID) {
		g := NewGraph()
		src := g.AddVertex("src", 0, 10)
		m1 := g.AddVertex("m1", 1, 50)
		m2 := g.AddVertex("m2", 2, 50)
		snk := g.AddVertex("snk", 3, 10)
		g.AddEdge(src, m1, 0, IPCEdge, "s1")
		g.AddEdge(src, m2, 0, IPCEdge, "s2")
		g.AddEdge(m1, snk, 0, IPCEdge, "o1")
		g.AddEdge(m2, snk, 0, IPCEdge, "o2")
		// Redundant-looking extra syncs for the optimizer to chew on.
		g.AddEdge(src, snk, 0, SyncEdge, "direct1")
		g.AddEdge(src, snk, 0, SyncEdge, "direct2")
		return g, src, snk
	}
	g1, s1, k1 := build()
	before, ok := g1.Latency(s1, k1)
	if !ok {
		t.Fatal("latency undefined")
	}
	Resynchronize(g1, ResyncOptions{
		LatencySrc: s1, LatencySnk: k1, MaxLatency: before,
	})
	after, ok := g1.Latency(s1, k1)
	if !ok {
		t.Fatal("latency undefined after")
	}
	if after > before {
		t.Errorf("latency grew %d -> %d despite bound", before, after)
	}
}
