package transport

import (
	"errors"
	"net"
	"sync"
)

// errLoopbackRefused mirrors ECONNREFUSED for the in-memory transport.
var errLoopbackRefused = errors.New("no listener on address")

// Loopback is an in-memory Transport: addresses are arbitrary strings
// scoped to one Loopback instance, and connections are synchronous pipes
// (net.Pipe) with full deadline support. It exists so transport-layer
// tests and benchmarks exercise the exact framing and link code that TCP
// runs, minus the kernel.
type Loopback struct {
	mu        sync.Mutex
	listeners map[string]*loopbackListener
}

// NewLoopback returns an empty in-memory transport.
func NewLoopback() *Loopback {
	return &Loopback{listeners: make(map[string]*loopbackListener)}
}

func (l *Loopback) Name() string { return "loopback" }

// Listen binds addr. Re-binding a live address is an error, matching TCP.
func (l *Loopback) Listen(addr string) (Listener, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.listeners[addr]; dup {
		return nil, &Error{Op: "listen", Addr: addr, Err: errors.New("address in use")}
	}
	ln := &loopbackListener{
		owner:   l,
		addr:    addr,
		backlog: make(chan net.Conn, 16),
		done:    make(chan struct{}),
	}
	l.listeners[addr] = ln
	return ln, nil
}

// Dial connects to a listening address; dialing an unbound address is a
// transient error (the peer may not be up yet), so DialRetry backs off
// exactly as it would for TCP ECONNREFUSED.
func (l *Loopback) Dial(addr string) (Conn, error) {
	l.mu.Lock()
	ln := l.listeners[addr]
	l.mu.Unlock()
	if ln == nil {
		return nil, &Error{Op: "dial", Addr: addr, Transient: true, Err: errLoopbackRefused}
	}
	client, server := net.Pipe()
	select {
	case ln.backlog <- server:
		return &pipeConn{Conn: client, local: "loopback:dialer", remote: addr}, nil
	case <-ln.done:
		return nil, &Error{Op: "dial", Addr: addr, Transient: true, Err: errLoopbackRefused}
	}
}

type loopbackListener struct {
	owner   *Loopback
	addr    string
	backlog chan net.Conn
	done    chan struct{}
	once    sync.Once
}

func (ln *loopbackListener) Accept() (Conn, error) {
	select {
	case c := <-ln.backlog:
		return &pipeConn{Conn: c, local: ln.addr, remote: "loopback:dialer"}, nil
	case <-ln.done:
		return nil, &Error{Op: "accept", Addr: ln.addr, Err: errors.New("listener closed")}
	}
}

func (ln *loopbackListener) Close() error {
	ln.once.Do(func() {
		close(ln.done)
		ln.owner.mu.Lock()
		delete(ln.owner.listeners, ln.addr)
		ln.owner.mu.Unlock()
	})
	return nil
}

func (ln *loopbackListener) Addr() string { return ln.addr }

// pipeConn adapts a net.Conn (pipe or socket) to the string-address Conn.
type pipeConn struct {
	net.Conn
	local, remote string
}

func (c *pipeConn) LocalAddr() string  { return c.local }
func (c *pipeConn) RemoteAddr() string { return c.remote }
