// Command benchdiff turns `go test -bench` output into a comparison
// report. It parses benchmark result lines from stdin, pairs each
// optimization tier with the tier below it — `<name>/batched` against
// `<name>/unbatched` (frame coalescing, ablation A8), `<name>/blocked`
// against `<name>/batched` (vectorized slab packing, ablation A9),
// `<name>/heartbeat` against `<name>/blocked` (liveness probing cost:
// the ratio shows heartbeats are near-free under load),
// `<name>/resync` against `<name>/blocked` (wire-level resynchronization:
// the §4 sync-graph verdict suppresses the remaining UBS acks entirely),
// `<name>/sessions` against `<name>/single`
// (multi-tenant session multiplexing, from cmd/spiload's -bench mode),
// `<name>/elastic` against `<name>/static` (orchestrated worker pool
// with live migration versus the in-process run, from BenchmarkOrch),
// `<name>/fission` against `<name>/serial` (the automatic data-parallel
// fission of the LPC pipeline versus the serial baseline, from
// BenchmarkFission), and `<name>/shm` against `<name>/tcp` (the
// shared-memory ring transport versus localhost TCP on the same-host
// fissioned deployment) — computes the throughput/latency/allocation
// ratios, and writes the whole set as JSON. `make bench-compare` uses it to produce the
// committed evidence file; it has no external dependencies, so it works
// where benchstat is not installed.
//
// The tool is strict: a variant whose counterpart is missing, or a pair
// whose headline metrics (tokens_per_s, ns/op) are absent or zero, is an
// error naming the offending pair, and the process exits non-zero without
// writing JSON. A sessions-tier result additionally must report a nonzero
// admitted_sessions count — a load run that admitted nothing measured
// nothing — a resync-tier result must report a nonzero
// acks_suppressed_per_msg (a "resync" run that suppressed no acks proved
// nothing about the verdict) — and an elastic-tier result must report a nonzero migrations
// count plus the migration_downtime_tokens metric, or the "elastic" run
// never exercised elasticity — and a fission-tier result must record
// replicas > 1 on the improved side, or the "fission" run deployed the
// serial pipeline with extra hops and proved nothing about the rewrite.
// Every ratio in the output is finite — no NaN or Inf ever
// reaches the report.
//
//	go test -run=NONE -bench BenchmarkLinkThroughput -benchmem . \
//	    | go run ./cmd/benchdiff -o BENCH_5.json
//	go run ./cmd/spiload -inproc -bench -sessions 100 \
//	    | go run ./cmd/benchdiff -o BENCH_6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line: N iterations plus every reported
// metric keyed by its unit (ns/op, MB/s, tokens_per_s, B/op, allocs/op,
// and any b.ReportMetric custom unit).
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// pair compares one carrier at two optimization tiers. Ratios are
// improved-relative: Speedup > 1 means the higher tier is faster.
type pair struct {
	Name            string  `json:"name"`
	Comparison      string  `json:"comparison"`
	Base            result  `json:"base"`
	Improved        result  `json:"improved"`
	SpeedupTokens   float64 `json:"speedup_tokens_per_s"`
	LatencyRatio    float64 `json:"latency_ratio_ns_op"`
	AllocRatio      float64 `json:"alloc_ratio_allocs_op"`
	AckFrameFactor  float64 `json:"ack_frame_reduction"`
	WriteCoalescing float64 `json:"write_coalescing_factor"`
}

type report struct {
	Tool     string            `json:"tool"`
	Context  map[string]string `json:"context"`
	Pairs    []pair            `json:"pairs"`
	Unpaired []result          `json:"unpaired,omitempty"`
}

// comparisons defines the tier ladder: each entry pairs <prefix>/improved
// against <prefix>/base. An improvedOnly entry is an overlay tier, not a
// rung of the ladder: it pairs only where the improved variant actually
// ran, so a run filtered down to the base tiers is not a half-run — but
// an improved result whose base is missing is still an error.
var comparisons = []struct {
	label, base, improved string
	improvedOnly          bool
}{
	{label: "batched_vs_unbatched", base: "unbatched", improved: "batched"},
	{label: "blocked_vs_batched", base: "batched", improved: "blocked"},
	{label: "heartbeat_overhead", base: "blocked", improved: "heartbeat", improvedOnly: true},
	{label: "resync_vs_blocked", base: "blocked", improved: "resync", improvedOnly: true},
	{label: "sessions_vs_single", base: "single", improved: "sessions"},
	{label: "elastic_vs_static", base: "static", improved: "elastic"},
	{label: "fission_vs_single", base: "serial", improved: "fission"},
	{label: "shm_vs_tcp", base: "tcp", improved: "shm"},
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	results, ctx, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark result lines on stdin")
		os.Exit(1)
	}
	rep, errs := build(results, ctx)
	if len(errs) > 0 {
		for _, err := range errs {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
		}
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(buf)
	}

	// Human-readable ratio summary on stderr either way, so the make
	// target shows the headline numbers without opening the JSON.
	for _, p := range rep.Pairs {
		fmt.Fprintf(os.Stderr, "%-24s %-22s %8.0f -> %8.0f tokens/s  (%.2fx)  acks/msg %.3f -> %.3f\n",
			p.Name, p.Comparison,
			p.Base.Metrics["tokens_per_s"], p.Improved.Metrics["tokens_per_s"],
			p.SpeedupTokens,
			p.Base.Metrics["ack_frames_per_msg"], p.Improved.Metrics["ack_frames_per_msg"])
	}
}

// parse reads `go test -bench` output: context lines (goos/goarch/pkg/cpu)
// and result lines of the form
//
//	BenchmarkX/sub-8   1374303   814.8 ns/op   19.64 MB/s   35 B/op   2 allocs/op
func parse(f *os.File) ([]result, map[string]string, error) {
	ctx := map[string]string{}
	var results []result
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				ctx[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: trimProcs(fields[0]), Iterations: n, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	return results, ctx, sc.Err()
}

// trimProcs drops the -GOMAXPROCS suffix go test appends to names.
func trimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// build assembles the report and returns every pairing or metric problem
// as an error; any error means the report must not be written.
func build(results []result, ctx map[string]string) (report, []error) {
	rep := report{Tool: "benchdiff", Context: ctx}
	byName := map[string]result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	var errs []error
	paired := map[string]bool{}
	for _, c := range comparisons {
		// Every prefix that shows either side of this comparison must show
		// both: a half-run (one tier's benchmark missing or filtered out)
		// is an error, not a silent skip. Overlay tiers only key off the
		// improved side — their base doubles as another tier's rung.
		suffixes := []string{"/" + c.base, "/" + c.improved}
		if c.improvedOnly {
			suffixes = suffixes[1:]
		}
		prefixes := map[string]bool{}
		for _, r := range results {
			for _, suffix := range suffixes {
				if p, ok := strings.CutSuffix(r.Name, suffix); ok {
					prefixes[p] = true
				}
			}
		}
		names := make([]string, 0, len(prefixes))
		for p := range prefixes {
			names = append(names, p)
		}
		sort.Strings(names)
		for _, prefix := range names {
			baseName := prefix + "/" + c.base
			impName := prefix + "/" + c.improved
			base, haveBase := byName[baseName]
			improved, haveImp := byName[impName]
			if !haveBase || !haveImp {
				have, missing := baseName, impName
				if !haveBase {
					have, missing = impName, baseName
				}
				errs = append(errs, fmt.Errorf("pair %s (%s): %s present but %s missing",
					prefix, c.label, have, missing))
				continue
			}
			ok := true
			for _, side := range []result{base, improved} {
				for _, unit := range []string{"tokens_per_s", "ns/op"} {
					if v := side.Metrics[unit]; v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						errs = append(errs, fmt.Errorf("pair %s (%s): metric %s missing or zero in %s",
							prefix, c.label, unit, side.Name))
						ok = false
					}
				}
				// A load run that admitted nothing measured nothing: a
				// sessions-tier result must prove sessions actually ran, or
				// the report would launder a misconfigured target into a
				// plausible-looking comparison.
				if c.label == "sessions_vs_single" {
					if v, have := side.Metrics["admitted_sessions"]; !have || v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						errs = append(errs, fmt.Errorf("pair %s (%s): zero sessions admitted in %s",
							prefix, c.label, side.Name))
						ok = false
					}
				}
				// A "resync" run that swallowed no acks never exercised the
				// suppression set — the tier would be comparing blocked
				// against itself and calling the noise an ack reduction.
				if c.label == "resync_vs_blocked" && side.Name == impName {
					if v, have := side.Metrics["acks_suppressed_per_msg"]; !have || v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						errs = append(errs, fmt.Errorf("pair %s (%s): acks_suppressed_per_msg missing or zero in %s",
							prefix, c.label, side.Name))
						ok = false
					}
				}
				// A "fission" run that kept one replica never fissioned: the
				// pair would price the serial pipeline against itself plus
				// scatter/gather overhead and present the noise as automatic
				// parallelization. The improved side must record the replica
				// count the pass actually deployed, and it must exceed one.
				if c.label == "fission_vs_single" && side.Name == impName {
					if v, have := side.Metrics["replicas"]; !have || v <= 1 || math.IsNaN(v) || math.IsInf(v, 0) {
						errs = append(errs, fmt.Errorf("pair %s (%s): replicas missing or <= 1 in %s",
							prefix, c.label, side.Name))
						ok = false
					}
				}
				// An elastic run that never migrated measured a static pool
				// with extra hops, not elasticity: the elastic side must
				// prove at least one live migration happened and must carry
				// the migration-downtime metric (tokens re-executed because
				// an epoch aborted — legitimately zero when every migration
				// was planned rather than forced by a death).
				if c.label == "elastic_vs_static" && side.Name == impName {
					if v, have := side.Metrics["migrations"]; !have || v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						errs = append(errs, fmt.Errorf("pair %s (%s): no migrations recorded in %s",
							prefix, c.label, side.Name))
						ok = false
					}
					if v, have := side.Metrics["migration_downtime_tokens"]; !have || math.IsNaN(v) || math.IsInf(v, 0) {
						errs = append(errs, fmt.Errorf("pair %s (%s): migration_downtime_tokens missing in %s",
							prefix, c.label, side.Name))
						ok = false
					}
				}
			}
			if !ok {
				continue
			}
			paired[baseName], paired[impName] = true, true
			p := pair{
				Name:            strings.TrimPrefix(prefix, "BenchmarkLinkThroughput/"),
				Comparison:      c.label,
				Base:            base,
				Improved:        improved,
				SpeedupTokens:   ratio(improved.Metrics["tokens_per_s"], base.Metrics["tokens_per_s"]),
				LatencyRatio:    ratio(improved.Metrics["ns/op"], base.Metrics["ns/op"]),
				AllocRatio:      ratio(improved.Metrics["allocs/op"], base.Metrics["allocs/op"]),
				AckFrameFactor:  ratio(base.Metrics["ack_frames_per_msg"], improved.Metrics["ack_frames_per_msg"]),
				WriteCoalescing: ratio(base.Metrics["writes_per_msg"], improved.Metrics["writes_per_msg"]),
			}
			for _, v := range []float64{p.SpeedupTokens, p.LatencyRatio, p.AllocRatio, p.AckFrameFactor, p.WriteCoalescing} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					errs = append(errs, fmt.Errorf("pair %s (%s): non-finite ratio", prefix, c.label))
					ok = false
					break
				}
			}
			if ok {
				rep.Pairs = append(rep.Pairs, p)
			}
		}
	}
	sort.Slice(rep.Pairs, func(i, j int) bool {
		if rep.Pairs[i].Name != rep.Pairs[j].Name {
			return rep.Pairs[i].Name < rep.Pairs[j].Name
		}
		return rep.Pairs[i].Comparison < rep.Pairs[j].Comparison
	})
	for _, r := range results {
		if !paired[r.Name] {
			rep.Unpaired = append(rep.Unpaired, r)
		}
	}
	return rep, errs
}

// ratio never returns NaN or Inf: a zero denominator (e.g. the improved
// tier eliminated the metric entirely, as piggybacking does to
// standalone ack frames) reports 0, and the headline metrics are
// validated non-zero before any ratio is taken.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
