package session

import (
	"errors"
	"fmt"
	"time"
)

// OpenError is a rejection verdict from the server's admission control.
type OpenError struct {
	Status byte
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("session: open %s", StatusString(e.Status))
}

// Client opens sessions toward one peer over a bound mux.
type Client struct {
	mux     *Mux
	timeout time.Duration
}

// NewClient wraps a bound mux. timeout bounds each Open's wait for the
// server's verdict (0 = 30s).
func NewClient(m *Mux, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Client{mux: m, timeout: timeout}
}

// Open requests one session and waits for the admission verdict. On a
// link whose peer never negotiated featSessions it falls back to the
// implicit session: no handshake, at most one concurrent session, and
// AwaitClose is not meaningful (completion is the local run finishing).
func (c *Client) Open(tenant string) (*Stream, error) {
	l := c.mux.Link()
	if !l.SessionsNegotiated() {
		return c.mux.Implicit(l.PeerNode()), nil
	}
	s := c.mux.NewStream(l.PeerNode())
	if err := l.SendSessionOpen(s.SID(), tenant); err != nil {
		c.mux.Release(s)
		return nil, err
	}
	t := time.NewTimer(c.timeout)
	defer t.Stop()
	select {
	case status := <-s.openCh:
		if status != StatusAdmitted {
			c.mux.Release(s)
			return nil, &OpenError{Status: status}
		}
		return s, nil
	case <-s.done:
		c.mux.Release(s)
		return nil, fmt.Errorf("session: link closed while opening: %w", s.linkError())
	case <-t.C:
		c.mux.Release(s)
		return nil, errors.New("session: open timed out")
	}
}

// AwaitClose blocks until the server closes the session and returns its
// verdict (CloseDone/CloseShed/CloseError). The server sends CLOSE only
// after its side of the run finished, so a CloseDone here means the full
// session completed end to end.
func (s *Stream) AwaitClose(timeout time.Duration) (byte, error) {
	if !s.tagged {
		return CloseDone, nil
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case status := <-s.closeCh:
		return status, nil
	case <-s.done:
		// A shed/error CLOSE both posts the verdict and closes the
		// stream; prefer the verdict when it raced in first.
		select {
		case status := <-s.closeCh:
			return status, nil
		default:
		}
		return CloseError, fmt.Errorf("session: link closed before close verdict: %w", s.linkError())
	case <-t.C:
		return CloseError, errors.New("session: timed out waiting for close verdict")
	}
}

// AwaitCloseDeadline is AwaitClose against an absolute deadline, for
// callers threading one time budget through several waits. A deadline at
// or before now fails immediately; a zero deadline means the default
// AwaitClose timeout.
func (s *Stream) AwaitCloseDeadline(deadline time.Time) (byte, error) {
	if deadline.IsZero() {
		return s.AwaitClose(0)
	}
	d := time.Until(deadline)
	if d <= 0 {
		return CloseError, errors.New("session: close deadline exceeded")
	}
	return s.AwaitClose(d)
}

// Done releases the client-side stream after the session ended.
func (c *Client) Done(s *Stream) {
	c.mux.Release(s)
}
