// Command spibench regenerates the paper's tables and figures from the
// simulated platform. With no flags it prints everything; -exp selects one
// experiment (fig1, fig3, fig5, fig6, fig7, table1, table2, spivsmpi,
// bbsvsubs, vtspadding); -dot prints the Graphviz form of the
// synchronization-graph figures.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/lpc"
	"repro/internal/particle"
	"repro/internal/spi"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig1, fig3, fig5, fig6, fig7, table1, table2, spivsmpi, bbsvsubs, vtspadding, framing)")
	dot := flag.Bool("dot", false, "print Graphviz DOT for fig3/fig5 instead of tables")
	gantt := flag.Bool("gantt", false, "print a Gantt timeline of the 3-PE actor-D deployment")
	tree := flag.Bool("tree", false, "print the HDL module hierarchies behind tables 1 and 2")
	flag.Parse()

	if *tree {
		if err := printTrees(); err != nil {
			fmt.Fprintln(os.Stderr, "spibench:", err)
			os.Exit(1)
		}
		return
	}

	if *gantt {
		if err := printGantt(); err != nil {
			fmt.Fprintln(os.Stderr, "spibench:", err)
			os.Exit(1)
		}
		return
	}

	if *dot {
		b3, a3 := experiments.Fig3DOT(3)
		b5, a5 := experiments.Fig5DOT()
		fmt.Println(b3)
		fmt.Println(a3)
		fmt.Println(b5)
		fmt.Println(a5)
		return
	}

	builders := map[string]func() (*experiments.Table, error){
		"fig1":       experiments.Fig1VTS,
		"fig3":       experiments.Fig3,
		"fig5":       experiments.Fig5,
		"fig6":       experiments.Fig6,
		"fig7":       experiments.Fig7,
		"table1":     experiments.Table1,
		"table2":     experiments.Table2,
		"spivsmpi":   experiments.SPIvsMPI,
		"bbsvsubs":   experiments.BBSvsUBS,
		"vtspadding": experiments.VTSPadding,
		"framing":    experiments.Framing,
		"resync":     experiments.ResyncPlatform,
	}
	if *exp == "all" {
		tables, err := experiments.All()
		if err != nil {
			fmt.Fprintln(os.Stderr, "spibench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		return
	}
	b, ok := builders[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "spibench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	t, err := b()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spibench:", err)
		os.Exit(1)
	}
	fmt.Println(t)
}

// printTrees prints the synthesis-style module hierarchy reports of the
// two hardware models.
func printTrees() error {
	top1, err := lpc.HardwareModel(lpc.DefaultDeploy(512, 4))
	if err != nil {
		return err
	}
	fmt.Printf("Table 1 hierarchy (Fmax %.0f MHz):\n%s\n", top1.FmaxMHz(), top1.Report())
	top2, err := particle.HardwareModel(particle.DefaultDeploy(300, 2))
	if err != nil {
		return err
	}
	fmt.Printf("Table 2 hierarchy (Fmax %.0f MHz):\n%s", top2.FmaxMHz(), top2.Report())
	return nil
}

// printGantt runs a short 3-PE actor-D deployment with tracing and renders
// the per-PE timeline ('#' compute, '>' send, '<' recv, '.' idle).
func printGantt() error {
	sys, err := lpc.ErrorGenSystem(lpc.DefaultDeploy(256, 3))
	if err != nil {
		return err
	}
	dep, err := spi.Build(sys)
	if err != nil {
		return err
	}
	dep.Sim.EnableTrace()
	st, err := dep.Sim.Run(4)
	if err != nil {
		return err
	}
	cfg := dep.Sim.Config()
	fmt.Printf("3-PE actor D (N=256), 4 frames, %.1f us total\n",
		st.Microseconds(cfg, st.Finish))
	fmt.Print(dep.Sim.LastTrace().Gantt(cfg.NumPEs, 100))
	return nil
}
