// Resynchronization example: walk through the synchronization-graph
// optimization of paper §4 on the figure-3 and figure-5 systems — derive
// the synchronization graph, remove redundant synchronization edges, insert
// resynchronization edges where profitable, and confirm the steady-state
// period is preserved.
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/syncgraph"
)

func main() {
	fmt.Println("3-PE actor D (figure 3):")
	g3 := experiments.Fig3Graph(3)
	fmt.Printf("  before: %d sync edges, %d redundant\n", g3.SyncCount(), g3.CountRedundant())
	mcmBefore, _ := g3.MaxCycleMean()
	rep := syncgraph.Resynchronize(g3, syncgraph.ResyncOptions{})
	mcmAfter, _ := g3.MaxCycleMean()
	fmt.Printf("  after:  %d sync edges (period %.1f -> %.1f cycles)\n",
		g3.SyncCount(), mcmBefore, mcmAfter)
	fmt.Printf("  %s\n", rep)
	for _, e := range rep.RemovedFirst {
		fmt.Printf("    removed redundant: %s (delay %d)\n", e.Label, e.Delay)
	}

	fmt.Println("\n2-PE particle filter (figure 5):")
	g5 := experiments.Fig5Graph()
	fmt.Printf("  before: %d sync edges, %d redundant\n", g5.SyncCount(), g5.CountRedundant())
	rep5 := syncgraph.Resynchronize(g5, syncgraph.ResyncOptions{})
	fmt.Printf("  after:  %d sync edges\n", g5.SyncCount())
	fmt.Printf("  %s\n", rep5)

	fmt.Println("\nGraphviz (after) for the particle filter:")
	_, after := experiments.Fig5DOT()
	fmt.Println(after)
}
