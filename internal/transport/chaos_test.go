package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"
)

// chaosLinkPair builds a dialer/acceptor pair over a FaultTransport with
// reconnection enabled and the listener kept open so severed connections
// can be re-dialed. The accept loop routes RESUME connections back to the
// established link via AcceptConn.
func chaosLinkPair(t *testing.T, ft *FaultTransport, hd, ha Handler) (*Link, *Link, func()) {
	t.Helper()
	ln, err := ft.Listen("chaos")
	if err != nil {
		t.Fatal(err)
	}
	rc := ReconnectConfig{Attempts: 50, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Deadline: 20 * time.Second}
	accepted := make(chan *Link, 1)
	go func() {
		var acceptor *Link
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			l, err := AcceptConn(c, LinkConfig{Node: 1, Reconnect: rc},
				func(peer int) ([]EdgeDecl, Handler, error) { return testManifest(false), ha, nil },
				func(peer int, token uint64) *Link {
					if acceptor != nil && acceptor.PeerNode() == peer && acceptor.Token() == token {
						return acceptor
					}
					return nil
				})
			if err != nil {
				continue
			}
			if l != nil {
				acceptor = l
				accepted <- l
			}
		}
	}()
	c, err := ft.Dial("chaos")
	if err != nil {
		t.Fatal(err)
	}
	dialer, err := NewLink(c, LinkConfig{
		Node: 0, Edges: testManifest(true),
		Reconnect: rc,
		Redial:    func() (Conn, error) { return ft.Dial("chaos") },
	}, hd)
	if err != nil {
		t.Fatal(err)
	}
	acceptor := <-accepted
	return dialer, acceptor, func() { ln.Close() }
}

// TestChaosLinkDeliversExactly drives a numbered payload stream through a
// faulty transport and asserts the receiver observes every message exactly
// once, in order — drops, duplicates, corruptions, and deterministic
// severs all repaired by the RESUME replay.
func TestChaosLinkDeliversExactly(t *testing.T) {
	schedules := []struct {
		name string
		cfg  FaultConfig
	}{
		{"drops", FaultConfig{Seed: 1, Drop: 0.05, SkipFrames: 4, MaxFaults: 40}},
		{"corruption", FaultConfig{Seed: 2, Corrupt: 0.05, SkipFrames: 4, MaxFaults: 40}},
		{"duplicates", FaultConfig{Seed: 3, Duplicate: 0.10, SkipFrames: 4, MaxFaults: 40}},
		{"severs", FaultConfig{Seed: 4, SeverAt: []int{9, 23, 57}, SkipFrames: 4}},
		{"everything", FaultConfig{Seed: 5, Drop: 0.03, Corrupt: 0.02, Duplicate: 0.05,
			Delay: 0.05, DelayFor: time.Millisecond, Sever: 0.01, SkipFrames: 4, MaxFaults: 60}},
	}
	const n = 400
	for _, sc := range schedules {
		t.Run(sc.name, func(t *testing.T) {
			ft := NewFaultTransport(NewLoopback(), sc.cfg)
			hd, ha := newRecordingHandler(), newRecordingHandler()
			dialer, acceptor, stop := chaosLinkPair(t, ft, hd, ha)
			defer stop()
			for i := 0; i < n; i++ {
				msg := make([]byte, 10)
				msg[0] = 7
				binary.LittleEndian.PutUint32(msg[2:], 4)
				binary.LittleEndian.PutUint32(msg[6:], uint32(i))
				if err := dialer.SendData(7, msg); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			got := ha.waitData(t, 7, n)
			if len(got) != n {
				t.Fatalf("received %d messages, want %d", len(got), n)
			}
			for i, msg := range got {
				if want := uint32(i); binary.LittleEndian.Uint32(msg[6:]) != want {
					t.Fatalf("message %d carries payload %d (out of order or lost)",
						i, binary.LittleEndian.Uint32(msg[6:]))
				}
			}
			closeBoth(dialer, acceptor)
			if st := ft.Stats(); st.Drops+st.Duplicates+st.Corruptions+st.Severs+st.Delays == 0 && sc.name != "severs" {
				t.Logf("schedule %s injected no faults (seed too gentle?)", sc.name)
			}
			if st := dialer.Stats(); st.DuplicatesDropped > 0 || st.Resumes > 0 {
				t.Logf("dialer: %d resumes, %d retransmits, %d dups dropped",
					st.Resumes, st.Retransmits, st.DuplicatesDropped)
			}
		})
	}
}

// TestChaosBidirectional exchanges traffic both directions (DATA one way,
// DATA+ACK the other) under severs, checking both streams survive intact.
func TestChaosBidirectional(t *testing.T) {
	ft := NewFaultTransport(NewLoopback(), FaultConfig{Seed: 11, SeverAt: []int{15, 40}, SkipFrames: 4})
	hd, ha := newRecordingHandler(), newRecordingHandler()
	dialer, acceptor, stop := chaosLinkPair(t, ft, hd, ha)
	defer stop()
	const n = 100
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			msg := []byte{9, 0, byte(i), byte(i >> 8)}
			if err := acceptor.SendData(9, msg); err != nil {
				errCh <- fmt.Errorf("acceptor send %d: %v", i, err)
				return
			}
		}
		errCh <- nil
	}()
	for i := 0; i < n; i++ {
		msg := make([]byte, 8)
		msg[0] = 7
		binary.LittleEndian.PutUint32(msg[2:], 2)
		binary.LittleEndian.PutUint16(msg[6:], uint16(i))
		if err := dialer.SendData(7, msg); err != nil {
			t.Fatalf("dialer send %d: %v", i, err)
		}
		if i%10 == 9 {
			if err := acceptor.SendAck(7, 10); err != nil {
				t.Fatalf("ack %d: %v", i, err)
			}
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	fwd := ha.waitData(t, 7, n)
	back := hd.waitData(t, 9, n)
	for i := 0; i < n; i++ {
		if got := binary.LittleEndian.Uint16(fwd[i][6:]); got != uint16(i) {
			t.Fatalf("forward stream message %d carries %d", i, got)
		}
		if want := []byte{9, 0, byte(i), byte(i >> 8)}; !bytes.Equal(back[i], want) {
			t.Fatalf("backward stream message %d = %x, want %x", i, back[i], want)
		}
	}
	hd.waitAcks(t, 7, n)
	closeBoth(dialer, acceptor)
}

// TestChaosReconnectExhaustion denies all re-dials after the first
// connection, so a sever must exhaust the reconnect budget and fail the
// link with a close error instead of hanging.
func TestChaosReconnectExhaustion(t *testing.T) {
	ft := NewFaultTransport(NewLoopback(), FaultConfig{Seed: 21, SeverAt: []int{8}, SkipFrames: 4, DenyDialsAfter: 1})
	hd, ha := newRecordingHandler(), newRecordingHandler()
	dialer, acceptor, stop := chaosLinkPair(t, ft, hd, ha)
	defer stop()
	msg := []byte{7, 0, 2, 0, 0, 0, 1, 2}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if err := dialer.SendData(7, msg); err != nil {
			break // link failed: expected once recovery is exhausted
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-hd.closed:
		if err == nil {
			t.Fatal("exhausted reconnects should report an error")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("link never reported failure after reconnects were exhausted")
	}
	dialer.Close()
	acceptor.Close()
}

// TestChaosFailFastZeroValue checks the zero-value reconnect policy keeps
// the old behavior: the first sever kills the link with an error.
func TestChaosFailFastZeroValue(t *testing.T) {
	ft := NewFaultTransport(NewLoopback(), FaultConfig{Seed: 31, SeverAt: []int{6}, SkipFrames: 4})
	hd, ha := newRecordingHandler(), newRecordingHandler()
	dialer, acceptor := linkPair(t, ft, "ff", hd, ha)
	msg := []byte{7, 0, 2, 0, 0, 0, 5, 6}
	deadline := time.Now().Add(10 * time.Second)
	var sendErr error
	for sendErr == nil && time.Now().Before(deadline) {
		sendErr = dialer.SendData(7, msg)
		time.Sleep(time.Millisecond)
	}
	if sendErr == nil {
		t.Fatal("sever with fail-fast policy should surface a send error")
	}
	dialer.Close()
	acceptor.Close()
}

// TestParseFaultSpec covers the -chaos flag grammar.
func TestParseFaultSpec(t *testing.T) {
	cfg, err := ParseFaultSpec("seed=7,drop=0.01,dup=0.02,corrupt=0.03,delay=0.5,delayms=3,sever=0.001,severat=5;9,skip=4,maxfaults=100,denydials=2")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Drop != 0.01 || cfg.Duplicate != 0.02 || cfg.Corrupt != 0.03 ||
		cfg.Delay != 0.5 || cfg.DelayFor != 3*time.Millisecond || cfg.Sever != 0.001 ||
		len(cfg.SeverAt) != 2 || cfg.SeverAt[1] != 9 || cfg.SkipFrames != 4 ||
		cfg.MaxFaults != 100 || cfg.DenyDialsAfter != 2 {
		t.Fatalf("parsed %+v", cfg)
	}
	for _, bad := range []string{"", "drop", "drop=x", "bogus=1"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("spec %q should fail to parse", bad)
		}
	}
}
