// Package experiments regenerates every table and figure of the paper's
// evaluation section (and the supporting model figures) from the simulated
// platform, plus the ablation studies DESIGN.md calls out. Each experiment
// returns a Table that renders the same rows/series the paper reports;
// cmd/spibench and the repository benchmarks print them.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	// Title names the experiment ("Figure 6", "Table 1", ...).
	Title string
	// Header labels the columns.
	Header []string
	// Rows holds the data, stringified.
	Rows [][]string
	// Notes carries commentary (paper reference values, shape claims).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row formatting each value with the matching verb.
func (t *Table) AddRowf(format string, values ...interface{}) {
	t.AddRow(strings.Fields(fmt.Sprintf(format, values...))...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 && i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
