package session

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dataflow"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/spi"
)

// ServerConfig describes the graph a serving node runs per session and
// the admission policy it runs it under.
type ServerConfig struct {
	// Graph, Mapping, NodeOf, Iterations and Block describe the per-
	// session execution exactly as they would a standalone
	// spi.ExecuteDistributed run.
	Graph      *dataflow.Graph
	Mapping    *sched.Mapping
	NodeOf     []int
	Iterations int
	Block      int
	// Node is this server's node index.
	Node int
	// Kernels instantiates a fresh kernel set for each session: sessions
	// must not share mutable kernel state.
	Kernels func(sid uint32, tenant string) map[dataflow.ActorID]spi.Kernel
	// Admission bounds concurrent sessions; the zero value admits all.
	Admission Admission
	// SessionTimeout, when positive, arms the session reaper: a session
	// whose client has sent nothing (no data, acks, or fins) for this
	// long is shed exactly like a degraded session — its slot, quota,
	// and byte budget are released and the client (if it ever returns)
	// sees CloseShed. Without it an abandoned client parks its session's
	// server half forever. 0 disables reaping.
	SessionTimeout time.Duration
	// Obs, when non-nil, exports per-tenant session metrics and threads
	// through to each session's execution.
	Obs *obs.Observer
	// OnDone, when non-nil, is called as each session finishes (after its
	// CLOSE is sent) with the close status and the execution error.
	OnDone func(sid uint32, tenant string, status byte, err error)
}

// Snapshot is a point-in-time view of the server's admission book, in
// the shape /healthz reports.
type Snapshot struct {
	Live      int   `json:"sessions_live"`
	Degraded  int   `json:"sessions_degraded"`
	Admitted  int64 `json:"sessions_admitted"`
	Rejected  int64 `json:"sessions_rejected"`
	Shed      int64 `json:"sessions_shed"`
	Reaped    int64 `json:"sessions_reaped"`
	Completed int64 `json:"sessions_completed"`
	Failed    int64 `json:"sessions_failed"`
	// Sessions lists every live session's age and idle time, oldest
	// first, so operators can see a client going silent before the
	// reaper (or shedding) acts on it.
	Sessions []SessionAge `json:"sessions,omitempty"`
}

// SessionAge is one live session's liveness view in a Snapshot.
type SessionAge struct {
	SID      uint32 `json:"sid"`
	Tenant   string `json:"tenant,omitempty"`
	AgeMS    int64  `json:"age_ms"`
	IdleMS   int64  `json:"idle_ms"`
	Degraded bool   `json:"degraded,omitempty"`
}

// Server owns this node's side of every session on every attached link:
// it admits OPENs in arrival order, runs one session-scoped
// ExecuteDistributed per admitted session, and closes each session with
// its outcome. One Server serves many muxes (one per peer link).
type Server struct {
	cfg   ServerConfig
	nodes int
	adm   *admitter

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []openReq
	stopped bool

	wg       sync.WaitGroup
	reapStop chan struct{}
	reapTick *time.Ticker

	admitted  int64
	rejected  int64
	shed      int64
	reaped    int64
	completed int64
	failed    int64
}

type openReq struct {
	m      *Mux
	sid    uint32
	tenant string
}

// NewServer validates the graph/mapping pair once and starts the
// admission dispatcher.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Graph == nil || cfg.Mapping == nil || cfg.Kernels == nil {
		return nil, fmt.Errorf("session: ServerConfig needs Graph, Mapping and Kernels")
	}
	if err := cfg.Mapping.Validate(cfg.Graph); err != nil {
		return nil, err
	}
	nodes := 0
	for _, n := range cfg.NodeOf {
		if n+1 > nodes {
			nodes = n + 1
		}
	}
	if nodes == 0 {
		nodes = cfg.Mapping.NumProcs
	}
	s := &Server{cfg: cfg, nodes: nodes, adm: newAdmitter(cfg.Admission)}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.dispatch()
	if cfg.SessionTimeout > 0 {
		// Scan at a quarter of the timeout so a silent client is reaped
		// within ~1.25× the configured bound.
		interval := cfg.SessionTimeout / 4
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		s.reapStop = make(chan struct{})
		s.reapTick = time.NewTicker(interval)
		s.wg.Add(1)
		go s.reapLoop()
	}
	return s, nil
}

// reapLoop periodically sheds sessions whose client has gone silent for
// longer than SessionTimeout.
func (s *Server) reapLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.reapStop:
			return
		case <-s.reapTick.C:
			s.reapOnce()
		}
	}
}

func (s *Server) reapOnce() {
	for _, e := range s.adm.entries() {
		e.mu.Lock()
		st, dead := e.stream, e.shed
		e.mu.Unlock()
		if st == nil || dead {
			continue
		}
		idle := st.IdleFor()
		if idle < s.cfg.SessionTimeout {
			continue
		}
		e.mu.Lock()
		e.shed = true
		e.mu.Unlock()
		s.mu.Lock()
		s.reaped++
		s.mu.Unlock()
		s.counter("session_reaped_total", "sessions shed because the client went silent", e.tenant).Inc()
		st.reap(idle)
	}
}

// Attach wires one bound mux into the server. On links that negotiated
// featSessions, inbound OPENs feed the admission queue; on old links the
// server starts the single implicit session immediately (admitted
// outside the capacity caps — there is no way to tell the peer no).
func (s *Server) Attach(m *Mux) {
	l := m.Link()
	if l.SessionsNegotiated() {
		m.SetOnOpen(func(mm *Mux, sid uint32, tenant string) {
			s.enqueue(mm, sid, tenant)
		})
		return
	}
	st := m.Implicit(l.PeerNode())
	_, e, _ := s.adm.admit("", true)
	s.startSession(m, st, e, "")
}

func (s *Server) enqueue(m *Mux, sid uint32, tenant string) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.queue = append(s.queue, openReq{m: m, sid: sid, tenant: tenant})
	s.cond.Signal()
	s.mu.Unlock()
}

// dispatch drains the open queue in arrival order on a single goroutine,
// so admission verdicts are deterministic in that order and OPENOK sends
// (which may block on a full link) never stall a link reader.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.stopped {
			s.mu.Unlock()
			return
		}
		req := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.handleOpen(req)
	}
}

func (s *Server) handleOpen(req openReq) {
	status, e, victim := s.adm.admit(req.tenant, false)
	if victim != nil {
		s.mu.Lock()
		s.shed++
		s.mu.Unlock()
		s.counter("session_shed_total", "sessions evicted to make room", victim.tenant).Inc()
		victim.mu.Lock()
		st := victim.stream
		victim.mu.Unlock()
		if st != nil {
			st.shed()
		}
	}
	if status != StatusAdmitted {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		s.cfg.Obs.Counter("session_rejected_total", "sessions refused by admission control",
			obs.L("tenant", req.tenant), obs.L("reason", StatusString(status))).Inc()
		_ = req.m.Link().SendSessionOpenOK(req.sid, status)
		return
	}
	stream := req.m.Adopt(req.sid, req.m.Link().PeerNode())
	e.mu.Lock()
	e.stream = stream
	e.mu.Unlock()
	stream.setAccount(func(delta int64) { s.adm.addBytes(e, delta) })
	if err := req.m.Link().SendSessionOpenOK(req.sid, StatusAdmitted); err != nil {
		// The link died under the verdict; the stream is already (or is
		// about to be) closed by the mux fan-out, and runSession below
		// will fail fast. Run it anyway so the entry is released.
		_ = err
	}
	s.startSession(req.m, stream, e, req.tenant)
}

func (s *Server) startSession(m *Mux, st *Stream, e *entry, tenant string) {
	s.mu.Lock()
	s.admitted++
	s.mu.Unlock()
	s.counter("session_admitted_total", "sessions admitted", tenant).Inc()
	s.gauge("session_live", "currently live sessions", tenant).Add(1)
	s.wg.Add(1)
	go s.runSession(m, st, e, tenant)
}

// runSession is one session's whole server-side life: instantiate
// kernels, execute the node's partition over the session stream, send
// CLOSE with the outcome, release the admission slot.
func (s *Server) runSession(m *Mux, st *Stream, e *entry, tenant string) {
	defer s.wg.Done()
	start := time.Now()
	kernels := s.cfg.Kernels(st.SID(), tenant)
	opts := spi.DistOptions{
		Node:   s.cfg.Node,
		Addrs:  make([]string, s.nodes),
		NodeOf: s.cfg.NodeOf,
		Block:  s.cfg.Block,
		Links:  st,
		Obs:    s.cfg.Obs,
	}
	_, err := spi.ExecuteDistributed(s.cfg.Graph, s.cfg.Mapping, kernels, s.cfg.Iterations, opts)

	status := CloseDone
	switch {
	case e.wasShed():
		status = CloseShed
	case err != nil:
		status = CloseError
	}
	if st.Tagged() {
		_ = m.Link().SendSessionClose(st.SID(), status)
	}
	m.Release(st)
	s.adm.release(e, st.takeQueued())

	s.mu.Lock()
	if status == CloseDone {
		s.completed++
	} else {
		s.failed++
	}
	s.mu.Unlock()
	s.gauge("session_live", "currently live sessions", tenant).Add(-1)
	if status == CloseDone {
		s.counter("session_completed_total", "sessions that ran to completion", tenant).Inc()
	} else {
		s.counter("session_failed_total", "sessions that ended in shed or error", tenant).Inc()
	}
	s.cfg.Obs.Histogram("session_duration_us", "per-session wall time in microseconds",
		obs.LatencyBucketsUS, obs.L("tenant", tenant)).Observe(float64(time.Since(start).Microseconds()))
	if s.cfg.OnDone != nil {
		s.cfg.OnDone(st.SID(), tenant, status, err)
	}
}

func (s *Server) counter(name, help, tenant string) *obs.Counter {
	return s.cfg.Obs.Counter(name, help, obs.L("tenant", tenant))
}

func (s *Server) gauge(name, help, tenant string) *obs.Gauge {
	return s.cfg.Obs.Gauge(name, help, obs.L("tenant", tenant))
}

// Snapshot reports the admission book for health endpoints and tests.
func (s *Server) Snapshot() Snapshot {
	live, degraded := s.adm.counts()
	var ages []SessionAge
	for _, e := range s.adm.entries() {
		e.mu.Lock()
		st, deg := e.stream, e.degraded
		e.mu.Unlock()
		if st == nil {
			continue
		}
		ages = append(ages, SessionAge{
			SID:      st.SID(),
			Tenant:   e.tenant,
			AgeMS:    st.Age().Milliseconds(),
			IdleMS:   st.IdleFor().Milliseconds(),
			Degraded: deg,
		})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		Live:      live,
		Degraded:  degraded,
		Admitted:  s.admitted,
		Rejected:  s.rejected,
		Shed:      s.shed,
		Reaped:    s.reaped,
		Completed: s.completed,
		Failed:    s.failed,
		Sessions:  ages,
	}
}

// Close stops admitting and waits for every running session to finish.
// Callers should tear down (or let clients close) the underlying links
// first; a session blocked on a live, idle link will keep Close waiting.
func (s *Server) Close() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.reapStop != nil {
		close(s.reapStop)
		s.reapTick.Stop()
	}
	s.wg.Wait()
}
