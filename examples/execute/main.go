// Execute example: the SPI programming model. Describe the system as a
// dataflow graph, map actors to processors, and supply one kernel per
// actor — spi.Execute synthesizes all communication (SPI_static/SPI_dynamic
// framing, BBS/UBS protocols, delay preloading) from the VTS analysis and
// runs the processors as goroutines.
//
// The system here is a small beamformer-style pipeline: a source emits
// sample blocks, two channel filters process them in parallel on their own
// processors, and a combiner sums the results.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/spi"
)

const blockSamples = 64

func encode(x []float64) []byte {
	out := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func decode(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func main() {
	g := dataflow.New("beamformer")
	src := g.AddActor("source", 100)
	f1 := g.AddActor("filter1", 500)
	f2 := g.AddActor("filter2", 500)
	comb := g.AddActor("combiner", 100)
	blockBytes := blockSamples * 8
	e1 := g.AddEdge("in1", src, f1, 1, 1, dataflow.EdgeSpec{TokenBytes: blockBytes})
	e2 := g.AddEdge("in2", src, f2, 1, 1, dataflow.EdgeSpec{TokenBytes: blockBytes})
	o1 := g.AddEdge("out1", f1, comb, 1, 1, dataflow.EdgeSpec{TokenBytes: blockBytes})
	o2 := g.AddEdge("out2", f2, comb, 1, 1, dataflow.EdgeSpec{TokenBytes: blockBytes})

	m := &sched.Mapping{
		NumProcs: 3,
		Proc:     []sched.Processor{0, 1, 2, 0},
		Order:    [][]dataflow.ActorID{{src, comb}, {f1}, {f2}},
	}

	var combined []float64
	kernels := map[dataflow.ActorID]spi.Kernel{
		src: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			block := make([]float64, blockSamples)
			for i := range block {
				block[i] = math.Sin(2 * math.Pi * float64(iter*blockSamples+i) / 32)
			}
			payload := encode(block)
			return map[dataflow.EdgeID][]byte{e1: payload, e2: payload}, nil
		},
		f1: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			x := decode(in[e1])
			for i := range x {
				x[i] *= 0.5 // channel weight
			}
			return map[dataflow.EdgeID][]byte{o1: encode(x)}, nil
		},
		f2: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			x := decode(in[e2])
			for i := range x {
				x[i] *= -0.25
			}
			return map[dataflow.EdgeID][]byte{o2: encode(x)}, nil
		},
		comb: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			a := decode(in[o1])
			b := decode(in[o2])
			sum := make([]float64, len(a))
			for i := range sum {
				sum[i] = a[i] + b[i]
			}
			combined = append(combined, sum...)
			return nil, nil
		},
	}

	const iterations = 8
	stats, err := spi.Execute(g, m, kernels, iterations)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d iterations over 3 processors\n", stats.Iterations)
	fmt.Printf("SPI traffic: %d messages, %d wire bytes\n", stats.SPI.Messages, stats.SPI.WireBytes)
	fmt.Printf("combined %d samples; first few: ", len(combined))
	for i := 0; i < 4; i++ {
		fmt.Printf("%.3f ", combined[i])
	}
	fmt.Println()
	// Verify against the direct computation: 0.5x - 0.25x = 0.25x.
	var maxErr float64
	for i, v := range combined {
		want := 0.25 * math.Sin(2*math.Pi*float64(i)/32)
		if d := math.Abs(v - want); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("max deviation from direct computation: %g\n", maxErr)
}
