package syncgraph

import (
	"container/heap"
	"math"
)

// infDelay marks unreachable vertices in min-delay path computations.
const infDelay = int64(math.MaxInt64)

// minDelayFrom computes single-source minimum-delay paths over live edges,
// optionally excluding one edge index (pass -1 to include all). Dijkstra is
// applicable because delays are non-negative.
func (g *Graph) minDelayFrom(src VertexID, excludeEdge int) []int64 {
	dist := make([]int64, len(g.verts))
	for i := range dist {
		dist[i] = infDelay
	}
	dist[src] = 0
	h := &vertexHeap{{v: src, d: 0}}
	done := make([]bool, len(g.verts))
	for h.Len() > 0 {
		it := heap.Pop(h).(vertexDist)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		for _, ei := range g.out[it.v] {
			if ei == excludeEdge {
				continue
			}
			e := &g.edges[ei]
			if e.Kind == removedKind {
				continue
			}
			nd := it.d + e.Delay
			if nd < dist[e.Snk] {
				dist[e.Snk] = nd
				heap.Push(h, vertexDist{v: e.Snk, d: nd})
			}
		}
	}
	return dist
}

type vertexDist struct {
	v VertexID
	d int64
}

type vertexHeap []vertexDist

func (h vertexHeap) Len() int            { return len(h) }
func (h vertexHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h vertexHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vertexHeap) Push(x interface{}) { *h = append(*h, x.(vertexDist)) }
func (h *vertexHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// IsRedundant reports whether the live edge at index ei is redundant: its
// synchronization constraint start(snk,k) >= end(src, k-δ) is implied by
// another src->snk path whose total delay is at most δ. (A path with delay
// d enforces start(snk,k) >= end(src, k-d); smaller or equal delay is a
// stronger or equal constraint.)
func (g *Graph) IsRedundant(ei int) bool {
	e := &g.edges[ei]
	if e.Kind == removedKind {
		return false
	}
	dist := g.minDelayFrom(e.Src, ei)
	return dist[e.Snk] != infDelay && dist[e.Snk] <= e.Delay
}

// RemoveRedundant removes redundant synchronization edges until none
// remain, and returns the removed edges. Only SyncEdge edges are eligible:
// IPC edges still move data even when their synchronization function is
// subsumed, and intraprocessor/loopback edges are free program order.
//
// Edges are examined in a deterministic order (descending delay, then
// insertion order): removing the loosest constraints first preserves the
// tighter ones that imply them, maximizing removals in the common patterns
// (parallel messages between the same task pair, acknowledgement fans).
// After each removal, subsequent redundancy checks run against the reduced
// graph, so mutual redundancy can never remove both of a pair.
func (g *Graph) RemoveRedundant() []Edge {
	var removed []Edge
	for {
		candidates := make([]int, 0)
		for i := range g.edges {
			if g.edges[i].Kind == SyncEdge {
				candidates = append(candidates, i)
			}
		}
		// Descending delay, ties by index, for determinism.
		for i := 1; i < len(candidates); i++ {
			for j := i; j > 0 && g.edges[candidates[j]].Delay > g.edges[candidates[j-1]].Delay; j-- {
				candidates[j], candidates[j-1] = candidates[j-1], candidates[j]
			}
		}
		progress := false
		for _, ei := range candidates {
			if g.edges[ei].Kind != SyncEdge {
				continue
			}
			if g.IsRedundant(ei) {
				e := g.edges[ei]
				g.removeEdge(ei)
				e.Kind = SyncEdge // report the original kind, not the tombstone
				removed = append(removed, e)
				progress = true
			}
		}
		if !progress {
			return removed
		}
	}
}

// CountRedundant returns how many live sync edges are currently redundant,
// without removing anything.
func (g *Graph) CountRedundant() int {
	n := 0
	for i := range g.edges {
		if g.edges[i].Kind == SyncEdge && g.IsRedundant(i) {
			n++
		}
	}
	return n
}
