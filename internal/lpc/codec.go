// Package lpc implements the paper's application 1: LPC-based acoustic
// data compression. The input signal of L samples is divided into frames of
// size N; per frame, predictor coefficients are generated (FFT →
// autocorrelation → LU solve), the prediction error is computed, and the
// quantized error and coefficients are Huffman coded.
//
// The dataflow graph (paper figure 2) is
//
//	A (read) → B (FFT) → C (LU predictor) → D (error generation) → E (Huffman)
//
// Actor D is the computational hot spot the paper parallelizes across n
// hardware PEs; package lpc provides both the functional codec and the
// parallel/deployment models (dataflow graph, SPI system, HDL area model)
// the experiments use. Because the frame size and model order are not known
// before run time, the D-side transfers use SPI_dynamic.
package lpc

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/huffman"
)

// Params configures the codec.
type Params struct {
	// FrameSize N is the samples per frame.
	FrameSize int
	// Order M is the LPC model order.
	Order int
	// ErrorBits is the quantizer depth for the prediction error.
	ErrorBits int
	// CoeffBits is the quantizer depth for predictor coefficients.
	CoeffBits int
}

// DefaultParams matches the evaluation regime: frames of a few hundred
// samples, order-10 prediction.
func DefaultParams() Params {
	return Params{FrameSize: 256, Order: 10, ErrorBits: 7, CoeffBits: 12}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.FrameSize <= 0 {
		return fmt.Errorf("lpc: frame size %d", p.FrameSize)
	}
	if p.Order <= 0 || p.Order >= p.FrameSize {
		return fmt.Errorf("lpc: order %d out of range for frame %d", p.Order, p.FrameSize)
	}
	if p.ErrorBits < 2 || p.CoeffBits < 2 {
		return fmt.Errorf("lpc: quantizer bits too small")
	}
	return nil
}

// Frame is one compressed frame.
type Frame struct {
	// N and M record the frame size and order (run-time varying in
	// general — the reason the paper's D transfers use SPI_dynamic).
	N, M int
	// CoeffScale and ErrScale are the quantizer full-scale ranges.
	CoeffScale, ErrScale float64
	// CoeffQ are the quantized predictor coefficients.
	CoeffQ []uint16
	// Lengths is the canonical Huffman code-length table for the error
	// symbols (the decoder rebuilds the codebook from it).
	Lengths []uint8
	// Stream is the Huffman-coded quantized error signal.
	Stream []byte
	// StreamSymbols is the number of coded error samples.
	StreamSymbols int
}

// CompressedBits returns the serialized size of the frame in bits — the
// codec's compression figure, measured on the actual wire format
// (MarshalBinary, with its sparse code-length table).
func (f *Frame) CompressedBits(p Params) int64 {
	data, err := f.MarshalBinary()
	if err != nil {
		// A frame the codec itself produced always marshals; a hand-built
		// inconsistent frame falls back to a conservative dense estimate.
		return int64(len(f.CoeffQ))*16 + int64(len(f.Lengths))*8 + int64(len(f.Stream))*8
	}
	return int64(len(data)) * 8
}

// Codec compresses and decompresses signals.
type Codec struct {
	p Params
}

// NewCodec returns a codec with validated parameters.
func NewCodec(p Params) (*Codec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Codec{p: p}, nil
}

// Params returns the codec parameters.
func (c *Codec) Params() Params { return c.p }

// CompressFrame runs the full actor pipeline on one frame.
func (c *Codec) CompressFrame(frame []float64) (*Frame, error) {
	if len(frame) != c.p.FrameSize {
		return nil, errFrameSize(c, len(frame))
	}
	// Actors B + C: spectral analysis and LU-based predictor design.
	model, err := dsp.LPCAnalyze(frame, c.p.Order)
	if err != nil {
		return nil, err
	}
	// Quantize coefficients; the decoder must predict with the SAME
	// quantized model, so requantize before computing the residual.
	coeffScale := maxAbs(model.Coeffs)
	if coeffScale == 0 {
		coeffScale = 1
	}
	cq, err := dsp.NewQuantizer(c.p.CoeffBits, coeffScale*1.0001)
	if err != nil {
		return nil, err
	}
	qidx := cq.QuantizeAll(model.Coeffs)
	qmodel := &dsp.LPCModel{Coeffs: cq.DequantizeAll(qidx)}

	// Actor D: prediction error with the quantized model.
	errs := qmodel.Residual(frame)

	return c.entropyStage(qidx, coeffScale, errs)
}

func errFrameSize(c *Codec, got int) error {
	return fmt.Errorf("lpc: frame has %d samples, codec expects %d", got, c.p.FrameSize)
}

// entropyStage is actor E: quantize the error signal, Huffman code it, and
// assemble the compressed frame.
func (c *Codec) entropyStage(qidx []uint16, coeffScale float64, errs []float64) (*Frame, error) {
	errScale := maxAbs(errs)
	if errScale == 0 {
		errScale = 1e-9
	}
	eq, err := dsp.NewQuantizer(c.p.ErrorBits, errScale*1.0001)
	if err != nil {
		return nil, err
	}
	symbols := eq.QuantizeAll(errs)
	freqs := huffman.Histogram(symbols, 1<<uint(c.p.ErrorBits))
	book, err := huffman.Build(freqs)
	if err != nil {
		return nil, err
	}
	var w huffman.BitWriter
	if err := book.Encode(&w, symbols); err != nil {
		return nil, err
	}
	return &Frame{
		N: c.p.FrameSize, M: c.p.Order,
		CoeffScale: coeffScale * 1.0001, ErrScale: errScale * 1.0001,
		CoeffQ:        qidx,
		Lengths:       book.Lengths,
		Stream:        w.Bytes(),
		StreamSymbols: len(symbols),
	}, nil
}

// DecompressFrame inverts CompressFrame up to quantization error.
func (c *Codec) DecompressFrame(f *Frame) ([]float64, error) {
	cq, err := dsp.NewQuantizer(c.p.CoeffBits, f.CoeffScale)
	if err != nil {
		return nil, err
	}
	model := &dsp.LPCModel{Coeffs: cq.DequantizeAll(f.CoeffQ)}
	book, err := huffman.FromLengths(f.Lengths)
	if err != nil {
		return nil, err
	}
	symbols, err := book.Decode(huffman.NewBitReader(f.Stream), f.StreamSymbols)
	if err != nil {
		return nil, err
	}
	eq, err := dsp.NewQuantizer(c.p.ErrorBits, f.ErrScale)
	if err != nil {
		return nil, err
	}
	errs := eq.DequantizeAll(symbols)
	return model.Reconstruct(errs), nil
}

// Compress processes a whole signal frame by frame (trailing partial frames
// are dropped, as the paper's fixed-frame pipeline does).
func (c *Codec) Compress(signal []float64) ([]*Frame, error) {
	n := len(signal) / c.p.FrameSize
	frames := make([]*Frame, 0, n)
	for i := 0; i < n; i++ {
		f, err := c.CompressFrame(signal[i*c.p.FrameSize : (i+1)*c.p.FrameSize])
		if err != nil {
			return nil, fmt.Errorf("lpc: frame %d: %w", i, err)
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// Decompress inverts Compress.
func (c *Codec) Decompress(frames []*Frame) ([]float64, error) {
	out := make([]float64, 0, len(frames)*c.p.FrameSize)
	for i, f := range frames {
		x, err := c.DecompressFrame(f)
		if err != nil {
			return nil, fmt.Errorf("lpc: frame %d: %w", i, err)
		}
		out = append(out, x...)
	}
	return out, nil
}

// Report summarizes a compression run.
type Report struct {
	Frames         int
	OriginalBits   int64
	CompressedBits int64
	Ratio          float64
	SNRdB          float64
	PredictionGain float64
}

// Analyze compresses, decompresses, and measures quality: compression ratio
// against 16-bit PCM, reconstruction SNR, and average prediction gain.
func (c *Codec) Analyze(signal []float64) (*Report, error) {
	frames, err := c.Compress(signal)
	if err != nil {
		return nil, err
	}
	recon, err := c.Decompress(frames)
	if err != nil {
		return nil, err
	}
	rep := &Report{Frames: len(frames)}
	for _, f := range frames {
		rep.CompressedBits += f.CompressedBits(c.p)
	}
	usable := len(frames) * c.p.FrameSize
	rep.OriginalBits = int64(usable) * 16
	if rep.CompressedBits > 0 {
		rep.Ratio = float64(rep.OriginalBits) / float64(rep.CompressedBits)
	}
	var sig, noise float64
	for i := 0; i < usable; i++ {
		sig += signal[i] * signal[i]
		d := signal[i] - recon[i]
		noise += d * d
	}
	if noise == 0 {
		rep.SNRdB = math.Inf(1)
	} else {
		rep.SNRdB = 10 * math.Log10(sig/noise)
	}
	return rep, nil
}

func maxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
