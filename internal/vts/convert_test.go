package vts

import (
	"testing"

	"repro/internal/dataflow"
)

// paperFig1 builds the paper's figure 1 example: A -> B where the
// production rate varies with bound 10 and the consumption rate varies with
// bound 8, raw tokens of 2 bytes.
func paperFig1() *dataflow.Graph {
	g := dataflow.New("fig1")
	a := g.AddActor("A", 100)
	b := g.AddActor("B", 100)
	g.AddEdge("ab", a, b, 10, 8, dataflow.EdgeSpec{
		ProduceDynamic: true,
		ConsumeDynamic: true,
		TokenBytes:     2,
	})
	return g
}

func TestConvertFig1(t *testing.T) {
	r, err := Convert(paperFig1())
	if err != nil {
		t.Fatal(err)
	}
	e := r.Graph.Edge(0)
	if e.Produce.Rate != 1 || e.Consume.Rate != 1 {
		t.Errorf("converted rates = %d/%d, want 1/1", e.Produce.Rate, e.Consume.Rate)
	}
	if e.Dynamic() {
		t.Error("converted edge still dynamic")
	}
	info := r.Info(0)
	if !info.Dynamic {
		t.Error("info should record the edge was dynamic")
	}
	if info.MaxRawTokens != 10 {
		t.Errorf("MaxRawTokens = %d, want 10 (larger bound)", info.MaxRawTokens)
	}
	if info.BMax != 20 {
		t.Errorf("BMax = %d, want 20 (10 tokens x 2 bytes)", info.BMax)
	}
	if e.TokenBytes != 20 {
		t.Errorf("converted TokenBytes = %d, want 20", e.TokenBytes)
	}
}

func TestConvertStaticPassThrough(t *testing.T) {
	g := dataflow.New("s")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 2, 3, dataflow.EdgeSpec{Delay: 1, TokenBytes: 4})
	r, err := Convert(g)
	if err != nil {
		t.Fatal(err)
	}
	e := r.Graph.Edge(0)
	if e.Produce.Rate != 2 || e.Consume.Rate != 3 || e.Delay != 1 || e.TokenBytes != 4 {
		t.Errorf("static edge altered: %+v", e)
	}
	if r.Info(0).Dynamic {
		t.Error("static edge marked dynamic")
	}
	if r.Info(0).BMax != 8 {
		t.Errorf("static BMax = %d, want 8 (produce 2 x 4 bytes)", r.Info(0).BMax)
	}
}

func TestConvertPreservesDelay(t *testing.T) {
	g := dataflow.New("d")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 5, 5, dataflow.EdgeSpec{
		ProduceDynamic: true, ConsumeDynamic: true, Delay: 3, TokenBytes: 1,
	})
	r, err := Convert(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Graph.Edge(0).Delay != 3 {
		t.Errorf("delay = %d, want 3", r.Graph.Edge(0).Delay)
	}
}

func TestConvertInconsistentStaticPartFails(t *testing.T) {
	g := dataflow.New("bad")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("e1", a, b, 2, 1, dataflow.EdgeSpec{})
	g.AddEdge("e2", a, b, 1, 1, dataflow.EdgeSpec{})
	if _, err := Convert(g); err == nil {
		t.Fatal("inconsistent graph should not convert")
	}
}

func TestConvertMixedGraphConsistency(t *testing.T) {
	// A dynamic edge in parallel with static edges: the rate-1 conversion
	// must match the static repetition ratio or conversion fails.
	g := dataflow.New("mixed")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("static", a, b, 1, 1, dataflow.EdgeSpec{})
	g.AddEdge("dyn", a, b, 16, 16, dataflow.EdgeSpec{ProduceDynamic: true, ConsumeDynamic: true})
	r, err := Convert(g)
	if err != nil {
		t.Fatal(err)
	}
	q, err := r.Graph.RepetitionsVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 1 || q[1] != 1 {
		t.Errorf("q = %v, want [1 1]", q)
	}
}

func TestConvertMixedGraphInconsistent(t *testing.T) {
	// Static edge forces q_A:q_B = 1:2, but the dynamic edge converts to
	// 1:1 — inconsistent after conversion.
	g := dataflow.New("mixedbad")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("static", a, b, 2, 1, dataflow.EdgeSpec{})
	g.AddEdge("dyn", a, b, 8, 8, dataflow.EdgeSpec{ProduceDynamic: true, ConsumeDynamic: true})
	if _, err := Convert(g); err == nil {
		t.Fatal("expected inconsistency after VTS conversion")
	}
}

func TestComputeBoundsFig1WithFeedback(t *testing.T) {
	// Add a feedback edge B -> A with 2 delays: the producer can run at
	// most 2 iterations ahead, so the bound is finite (BBS).
	g := paperFig1()
	aID, _ := g.ActorByName("A")
	bID, _ := g.ActorByName("B")
	g.AddEdge("ba", bID, aID, 1, 1, dataflow.EdgeSpec{Delay: 2})
	r, err := Convert(g)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := ComputeBounds(r)
	if err != nil {
		t.Fatal(err)
	}
	ab := bounds[0]
	if !ab.Bounded {
		t.Fatal("edge with feedback should be bounded")
	}
	if ab.Gamma != 2 {
		t.Errorf("Gamma = %d, want 2 (feedback delay)", ab.Gamma)
	}
	if ab.BMax != 20 {
		t.Errorf("BMax = %d, want 20", ab.BMax)
	}
	if ab.CE != ab.CSDF*ab.BMax {
		t.Errorf("eq.1 violated: CE=%d CSDF=%d BMax=%d", ab.CE, ab.CSDF, ab.BMax)
	}
	if ab.IPC != (ab.Gamma+0)*ab.CE {
		t.Errorf("eq.2 violated: IPC=%d Gamma=%d CE=%d", ab.IPC, ab.Gamma, ab.CE)
	}
}

func TestComputeBoundsUnboundedWithoutFeedback(t *testing.T) {
	r, err := Convert(paperFig1())
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := ComputeBounds(r)
	if err != nil {
		t.Fatal(err)
	}
	if bounds[0].Bounded {
		t.Error("edge without feedback path should be unbounded (UBS)")
	}
	if bounds[0].IPC != -1 || bounds[0].Gamma != -1 {
		t.Errorf("unbounded edge should report -1: %+v", bounds[0])
	}
	total, unbounded := TotalBoundedMemory(bounds)
	if total != 0 || unbounded != 1 {
		t.Errorf("TotalBoundedMemory = %d,%d, want 0,1", total, unbounded)
	}
}

func TestTotalBoundedMemory(t *testing.T) {
	bounds := []Bounds{
		{Bounded: true, IPC: 100},
		{Bounded: true, IPC: 50},
		{Bounded: false, IPC: -1},
	}
	total, unbounded := TotalBoundedMemory(bounds)
	if total != 150 || unbounded != 1 {
		t.Errorf("got %d,%d, want 150,1", total, unbounded)
	}
}

func TestConvertOneSidedDynamic(t *testing.T) {
	// Only the producer is dynamic: the packed bound is still the larger
	// declared rate, and the converted edge is rate-1 static.
	g := dataflow.New("oneside")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 12, 6, dataflow.EdgeSpec{ProduceDynamic: true, TokenBytes: 2})
	r, err := Convert(g)
	if err != nil {
		t.Fatal(err)
	}
	info := r.Info(0)
	if !info.Dynamic || info.MaxRawTokens != 12 || info.BMax != 24 {
		t.Errorf("info = %+v, want dynamic with bound 12x2", info)
	}
	e := r.Graph.Edge(0)
	if e.Produce.Rate != 1 || e.Consume.Rate != 1 || e.Dynamic() {
		t.Errorf("converted edge = %+v", e)
	}
}
