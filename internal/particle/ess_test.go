package particle

import (
	"math"
	"testing"

	"repro/internal/signal"
)

func TestESSUniformWeights(t *testing.T) {
	w := []float64{1, 1, 1, 1}
	if got := ESS(w, 4); math.Abs(got-4) > 1e-12 {
		t.Errorf("uniform ESS = %v, want 4", got)
	}
}

func TestESSDegenerateWeights(t *testing.T) {
	w := []float64{0, 0, 5, 0}
	if got := ESS(w, 5); math.Abs(got-1) > 1e-12 {
		t.Errorf("degenerate ESS = %v, want 1", got)
	}
	if got := ESS([]float64{0, 0}, 0); got != 0 {
		t.Errorf("zero-sum ESS = %v, want 0", got)
	}
}

func TestESSBounds(t *testing.T) {
	w := []float64{0.5, 1.5, 2.0, 0.1}
	var sum float64
	for _, v := range w {
		sum += v
	}
	ess := ESS(w, sum)
	if ess < 1 || ess > float64(len(w)) {
		t.Errorf("ESS = %v outside [1, %d]", ess, len(w))
	}
}

func TestAdaptiveResamplesLessOften(t *testing.T) {
	p := signal.DefaultCrackParams()
	truth := signal.CrackTruth(200, p, 42)
	obs := signal.CrackObservations(truth, p, 43)

	always, _ := NewFilter(Model{P: p}, 200, 44)
	for _, y := range obs {
		always.Step(y)
	}
	adaptive, _ := NewFilter(Model{P: p}, 200, 44)
	adaptive.SetResampleThreshold(0.9)
	ests := make([]float64, len(obs))
	for i, y := range obs {
		ests[i] = adaptive.StepAdaptive(y)
	}
	if adaptive.Resamplings() >= always.Resamplings() {
		t.Errorf("adaptive resampled %d times, always %d — no savings",
			adaptive.Resamplings(), always.Resamplings())
	}
	if adaptive.Resamplings() == 0 {
		t.Error("adaptive filter never resampled; threshold too weak for this model")
	}
	// Tracking quality must remain comparable.
	rmse := RMSE(ests, truth)
	if rmse > 2*p.MeasureNoise {
		t.Errorf("adaptive RMSE %v much worse than noise %v", rmse, p.MeasureNoise)
	}
}

func TestAdaptiveThresholdOneMatchesAlways(t *testing.T) {
	p := signal.DefaultCrackParams()
	obs := signal.CrackObservations(signal.CrackTruth(50, p, 1), p, 2)
	f, _ := NewFilter(Model{P: p}, 100, 3)
	f.SetResampleThreshold(1.1) // ESS < 1.1*N is always true
	for _, y := range obs {
		f.StepAdaptive(y)
	}
	if f.Resamplings() != int64(len(obs)) {
		t.Errorf("threshold >= 1 should resample every step: %d/%d", f.Resamplings(), len(obs))
	}
}

func TestAdaptiveThresholdZeroNeverResamples(t *testing.T) {
	p := signal.DefaultCrackParams()
	obs := signal.CrackObservations(signal.CrackTruth(30, p, 1), p, 2)
	f, _ := NewFilter(Model{P: p}, 100, 3)
	f.SetResampleThreshold(0)
	for _, y := range obs {
		f.StepAdaptive(y)
	}
	if f.Resamplings() != 0 {
		t.Errorf("threshold 0 resampled %d times", f.Resamplings())
	}
}
