package experiments

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/spi"
	"repro/internal/syncgraph"
	"repro/internal/vts"
)

// TestFullPipelineIntegration drives the complete compile-run flow on a
// synthetic multirate application: build graph -> VTS conversion -> bounds
// -> list scheduling -> IPC/synchronization graph -> resynchronization ->
// SPI lowering -> platform execution with tracing. Each stage's output
// feeds the next, so a regression anywhere in the chain surfaces here.
func TestFullPipelineIntegration(t *testing.T) {
	// A multirate front-end: sensor -> framer (1:8 upsample in packed
	// terms) -> two parallel filter banks -> combiner -> sink, with a
	// dynamic-size side channel from the framer to the combiner and a
	// credit feedback loop bounding the whole pipeline.
	g := dataflow.New("frontend")
	sensor := g.AddActor("sensor", 40)
	framer := g.AddActor("framer", 120)
	bankA := g.AddActor("bankA", 700)
	bankB := g.AddActor("bankB", 700)
	comb := g.AddActor("combiner", 90)
	sink := g.AddActor("sink", 30)
	g.AddEdge("raw", sensor, framer, 8, 8, dataflow.EdgeSpec{TokenBytes: 2})
	g.AddEdge("fa", framer, bankA, 1, 1, dataflow.EdgeSpec{TokenBytes: 16})
	g.AddEdge("fb", framer, bankB, 1, 1, dataflow.EdgeSpec{TokenBytes: 16})
	g.AddEdge("oa", bankA, comb, 1, 1, dataflow.EdgeSpec{TokenBytes: 16})
	g.AddEdge("ob", bankB, comb, 1, 1, dataflow.EdgeSpec{TokenBytes: 16})
	side := g.AddEdge("meta", framer, comb, 32, 32, dataflow.EdgeSpec{
		ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 1,
	})
	g.AddEdge("out", comb, sink, 1, 1, dataflow.EdgeSpec{TokenBytes: 4})
	g.AddEdge("credit", sink, sensor, 1, 1, dataflow.EdgeSpec{Delay: 3})

	// Stage 1: SDF sanity.
	q, err := g.RepetitionsVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[sensor] != 1 || q[framer] != 1 {
		t.Fatalf("q = %v", q)
	}
	if _, err := g.FindPASS(); err != nil {
		t.Fatal(err)
	}

	// Stage 2: VTS bounds — the credit loop should bound everything.
	conv, err := vts.Convert(g)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := vts.ComputeBounds(conv)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bounds {
		if !b.Bounded {
			t.Errorf("edge %s unbounded despite credit loop", conv.Graph.Edge(b.Edge).Name)
		}
	}

	// Stage 3: list scheduling onto 3 processors balances the banks.
	m, err := sched.ListSchedule(g, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if m.Proc[bankA] == m.Proc[bankB] {
		t.Error("the two filter banks should land on different processors")
	}

	// Stage 4: synchronization analysis.
	ipc, err := syncgraph.BuildIPCGraph(g, m)
	if err != nil {
		t.Fatal(err)
	}
	sg := syncgraph.SynchronizationGraph(ipc)
	syncgraph.AddAllFeedback(sg, 2)
	rep := syncgraph.Resynchronize(sg, syncgraph.ResyncOptions{})
	if rep.SyncAfter > rep.SyncBefore {
		t.Errorf("resynchronization increased sync edges: %s", rep)
	}
	if _, live := sg.MaxCycleMean(); !live {
		t.Fatal("optimized graph deadlocked")
	}

	// Stage 5: SPI lowering and platform execution with tracing.
	dep, err := spi.Build(&spi.System{
		Graph: g, Mapping: m,
		PayloadFn: map[dataflow.EdgeID]func(int) int{
			side: func(iter int) int { return (iter*5 + 3) % 33 },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dep.Sim.EnableTrace()
	st, err := dep.Sim.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if st.Finish <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	// The dynamic edge must have moved varying payloads.
	var sidePlan *spi.EdgePlan
	for i := range dep.Plans {
		if dep.Plans[i].Edge == side {
			sidePlan = &dep.Plans[i]
		}
	}
	if m.Proc[framer] != m.Proc[comb] {
		if sidePlan == nil {
			t.Fatal("dynamic edge plan missing")
		}
		if sidePlan.Mode != spi.Dynamic {
			t.Errorf("side edge mode = %v, want Dynamic", sidePlan.Mode)
		}
	}
	// Trace covers all processors and renders.
	tr := dep.Sim.LastTrace()
	if tr == nil || len(tr.Segments) == 0 {
		t.Fatal("trace empty")
	}
	gantt := tr.Gantt(m.NumProcs, 72)
	if !strings.Contains(gantt, "PE0") {
		t.Errorf("gantt malformed:\n%s", gantt)
	}

	// Stage 6: self-timed analytic model agrees with the platform within
	// a loose factor (the platform adds communication costs).
	res, err := sched.SelfTimed(g, m, sched.SelfTimedConfig{Iterations: 30, Warmup: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish <= 0 {
		t.Fatal("analytic model returned nothing")
	}
	ratio := float64(st.Finish) / float64(res.Finish)
	if ratio < 0.8 || ratio > 3.0 {
		t.Errorf("platform/analytic finish ratio %.2f outside sanity band (platform %d, analytic %d)",
			ratio, st.Finish, res.Finish)
	}
}
