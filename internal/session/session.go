// Package session multiplexes many concurrent executions of one dataflow
// graph over a single transport.Link per node pair. The paper's framework
// runs one graph per deployment; serving thousands of independent
// per-user streams means packing thousands of *sessions* of that graph
// onto one spinode pool without paying a connection, handshake, or
// resend-buffer per session — per-pair connection state stays O(1) in the
// session count.
//
// The layering:
//
//	transport.Link     one connection, one resend buffer, RESUME replay
//	Mux                routes session-tagged frames to per-session Streams
//	Stream             spi.MessageLink + spi.LinkProvider for one session
//	Server / Client    OPEN/OPENOK/CLOSE lifecycle, admission, execution
//
// Because session frames are ordinary numbered link frames (see
// transport), a severed connection replays every live session's
// unacknowledged tail in one RESUME handshake — per-session resume rides
// the link-level machinery. Against an old peer that does not negotiate
// featSessions, a Mux degrades to exactly one implicit session carried on
// the untagged DATA/ACK/FIN frames, preserving interoperability.
package session

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/spi"
	"repro/internal/transport"
)

// Admission verdicts carried in OPENOK frames.
const (
	// StatusAdmitted means the session is live; tagged traffic may flow.
	StatusAdmitted byte = 0
	// StatusRejectedCapacity means the node is at MaxSessions with no
	// degraded session to shed.
	StatusRejectedCapacity byte = 1
	// StatusRejectedQuota means the tenant is at its per-tenant session
	// cap (quota or weighted fair share).
	StatusRejectedQuota byte = 2
)

// Session outcomes carried in CLOSE frames.
const (
	// CloseDone is a completed run.
	CloseDone byte = 0
	// CloseShed means admission control evicted the session (it was
	// degraded and capacity was needed for a new open).
	CloseShed byte = 1
	// CloseError is a failed run.
	CloseError byte = 2
)

// StatusString renders an admission or close status for logs.
func StatusString(status byte) string {
	switch status {
	case StatusAdmitted:
		return "admitted"
	case StatusRejectedCapacity:
		return "rejected-capacity"
	case StatusRejectedQuota:
		return "rejected-quota"
	default:
		return fmt.Sprintf("status-%d", status)
	}
}

// closeString renders a close status for logs.
func closeString(status byte) string {
	switch status {
	case CloseDone:
		return "done"
	case CloseShed:
		return "shed"
	case CloseError:
		return "error"
	default:
		return fmt.Sprintf("close-%d", status)
	}
}

// Mux owns one link's session routing table. It is the link's
// transport.Handler and transport.SessionHandler: tagged frames dispatch
// to the Stream registered under their session ID, untagged frames to the
// implicit stream. Create the Mux first, pass it as the link's handler,
// then Bind the established link.
type Mux struct {
	mu           sync.Mutex
	link         *transport.Link
	bound        chan struct{}
	streams      map[uint32]*Stream
	implicit     *Stream
	nextSID      uint32
	onOpen       func(m *Mux, sid uint32, tenant string)
	pendingOpens []openEvent
	closed       bool
	closeErr     error

	dropped *obs.Counter
}

type openEvent struct {
	sid    uint32
	tenant string
}

// NewMux returns an empty routing table. o, when non-nil, exports the
// mux's dropped-frame counter.
func NewMux(o *obs.Observer) *Mux {
	return &Mux{
		bound:   make(chan struct{}),
		streams: map[uint32]*Stream{},
		dropped: o.Counter("session_frames_dropped_total",
			"session frames for unknown or already-closed sessions"),
	}
}

// Bind attaches the established link. Inbound dispatch works before Bind
// (the reader can race link construction); sends and negotiation checks
// wait for it.
func (m *Mux) Bind(l *transport.Link) {
	m.mu.Lock()
	m.link = l
	m.mu.Unlock()
	close(m.bound)
}

// Link returns the bound link, blocking until Bind.
func (m *Mux) Link() *transport.Link {
	<-m.bound
	return m.link
}

// SetOnOpen installs the inbound OPEN callback (the server's admission
// queue) and replays any opens that arrived before it was set. The
// callback must not block the caller for long — it runs on the link's
// reader goroutine.
func (m *Mux) SetOnOpen(fn func(m *Mux, sid uint32, tenant string)) {
	m.mu.Lock()
	m.onOpen = fn
	pend := m.pendingOpens
	m.pendingOpens = nil
	m.mu.Unlock()
	for _, ev := range pend {
		fn(m, ev.sid, ev.tenant)
	}
}

// NewStream allocates a client-side stream with a fresh session ID and
// registers it, so the OPENOK (and any data racing it) finds its session.
func (m *Mux) NewStream(peer int) *Stream {
	m.mu.Lock()
	m.nextSID++
	s := newStream(m, m.nextSID, true, peer)
	m.streams[s.sid] = s
	if m.closed {
		s.linkClosed(m.closeErr)
	}
	m.mu.Unlock()
	return s
}

// Adopt registers a server-side stream for a peer-allocated session ID.
func (m *Mux) Adopt(sid uint32, peer int) *Stream {
	m.mu.Lock()
	s := newStream(m, sid, true, peer)
	m.streams[sid] = s
	if m.closed {
		s.linkClosed(m.closeErr)
	}
	m.mu.Unlock()
	return s
}

// Implicit returns the untagged stream, creating it on first use: the
// single session a link falls back to when the peer never negotiated
// featSessions. Untagged inbound traffic routes here.
func (m *Mux) Implicit(peer int) *Stream {
	m.mu.Lock()
	if m.implicit == nil {
		m.implicit = newStream(m, 0, false, peer)
		if m.closed {
			m.implicit.linkClosed(m.closeErr)
		}
	}
	s := m.implicit
	m.mu.Unlock()
	return s
}

// Release drops one session from the routing table; later frames for the
// ID count as dropped.
func (m *Mux) Release(s *Stream) {
	m.mu.Lock()
	if s.tagged {
		if cur := m.streams[s.sid]; cur == s {
			delete(m.streams, s.sid)
		}
	} else if m.implicit == s {
		m.implicit = nil
	}
	m.mu.Unlock()
}

func (m *Mux) lookup(sid uint32) *Stream {
	m.mu.Lock()
	s := m.streams[sid]
	m.mu.Unlock()
	return s
}

// Handler half: untagged traffic belongs to the implicit session.

func (m *Mux) HandleData(edge uint16, msg []byte) {
	m.mu.Lock()
	s := m.implicit
	m.mu.Unlock()
	if s == nil {
		m.dropped.Inc()
		return
	}
	s.handleData(edge, msg)
}

func (m *Mux) HandleAck(edge uint16, count uint32) {
	m.mu.Lock()
	s := m.implicit
	m.mu.Unlock()
	if s == nil {
		m.dropped.Inc()
		return
	}
	s.handleAck(edge, count)
}

func (m *Mux) HandleFin(edge uint16) {
	m.mu.Lock()
	s := m.implicit
	m.mu.Unlock()
	if s == nil {
		m.dropped.Inc()
		return
	}
	s.handleFin(edge)
}

// HandleLinkClose fans the link's death (or graceful end) out to every
// live session: each stream's execution observes exactly what it would
// have on a dedicated link.
func (m *Mux) HandleLinkClose(err error) {
	m.mu.Lock()
	m.closed = true
	m.closeErr = err
	streams := make([]*Stream, 0, len(m.streams)+1)
	for _, s := range m.streams {
		streams = append(streams, s)
	}
	if m.implicit != nil {
		streams = append(streams, m.implicit)
	}
	m.mu.Unlock()
	for _, s := range streams {
		s.linkClosed(err)
	}
}

// SessionHandler half: tagged traffic routes by session ID.

func (m *Mux) HandleSessionOpen(sid uint32, tenant string) {
	m.mu.Lock()
	fn := m.onOpen
	if fn == nil {
		m.pendingOpens = append(m.pendingOpens, openEvent{sid: sid, tenant: tenant})
	}
	m.mu.Unlock()
	if fn != nil {
		fn(m, sid, tenant)
	}
}

func (m *Mux) HandleSessionOpenOK(sid uint32, status byte) {
	if s := m.lookup(sid); s != nil {
		s.handleOpenOK(status)
	} else {
		m.dropped.Inc()
	}
}

func (m *Mux) HandleSessionClose(sid uint32, status byte) {
	if s := m.lookup(sid); s != nil {
		s.handleClose(status)
	} else {
		m.dropped.Inc()
	}
}

func (m *Mux) HandleSessionData(sid uint32, edge uint16, msg []byte) {
	if s := m.lookup(sid); s != nil {
		s.handleData(edge, msg)
	} else {
		m.dropped.Inc()
	}
}

func (m *Mux) HandleSessionAck(sid uint32, edge uint16, count uint32) {
	if s := m.lookup(sid); s != nil {
		s.handleAck(edge, count)
	} else {
		m.dropped.Inc()
	}
}

func (m *Mux) HandleSessionFin(sid uint32, edge uint16) {
	if s := m.lookup(sid); s != nil {
		s.handleFin(edge)
	} else {
		m.dropped.Inc()
	}
}

// pendingEvent buffers one inbound event that arrived before the
// session's execution attached its handler (the client's OPEN races its
// ExecuteDistributed call; the server's admission verdict races its
// kernel instantiation). Data payloads are copied — the link reader's
// buffer does not outlive the dispatch.
type pendingEvent struct {
	kind  byte
	edge  uint16
	count uint32
	msg   []byte
}

const (
	evData byte = iota
	evAck
	evFin
)

// Stream is one session's half of the shared link: an spi.MessageLink
// that tags outbound traffic with the session ID, and an
// spi.LinkProvider handing a session-scoped execution its inbound
// dispatch. A tagged==false stream is the implicit session of an
// un-negotiated link and sends untagged frames.
type Stream struct {
	mux    *Mux
	sid    uint32
	tagged bool
	peer   int

	mu        sync.Mutex
	inner     transport.Handler
	pending   []pendingEvent
	closed    bool
	closeErr  error
	declBytes map[uint16]int64 // inbound edge -> declared payload bound
	queued    int64            // estimated inbound bytes delivered but unconsumed
	acct      func(delta int64)

	openCh   chan byte
	closeCh  chan byte
	done     chan struct{}
	doneOnce sync.Once

	// Liveness bookkeeping for the server's reaper and /healthz: when the
	// stream was created and (atomically, so the reaper never takes the
	// stream lock) when the peer was last heard from on it.
	opened     time.Time
	lastActive atomic.Int64 // UnixNano
}

func newStream(m *Mux, sid uint32, tagged bool, peer int) *Stream {
	s := &Stream{
		mux:     m,
		sid:     sid,
		tagged:  tagged,
		peer:    peer,
		openCh:  make(chan byte, 1),
		closeCh: make(chan byte, 1),
		done:    make(chan struct{}),
		opened:  time.Now(),
	}
	s.lastActive.Store(s.opened.UnixNano())
	return s
}

// touch refreshes the stream's last-activity stamp.
func (s *Stream) touch() { s.lastActive.Store(time.Now().UnixNano()) }

// Age is the time since the session opened.
func (s *Stream) Age() time.Duration { return time.Since(s.opened) }

// IdleFor is the time since the peer was last heard from on this session.
func (s *Stream) IdleFor() time.Duration {
	return time.Duration(time.Now().UnixNano() - s.lastActive.Load())
}

// SID returns the session ID (0 for the implicit session).
func (s *Stream) SID() uint32 { return s.sid }

// Tagged reports whether this stream is a negotiated, tagged session
// (false: the implicit fallback of an old peer).
func (s *Stream) Tagged() bool { return s.tagged }

// setAccount installs the per-tenant byte accounting callback. It is
// invoked with positive deltas as inbound data queues and negative ones
// as local consumption acknowledges it, always outside the stream lock's
// critical section ordering concerns: callers must not call back into
// the stream.
func (s *Stream) setAccount(fn func(delta int64)) {
	s.mu.Lock()
	s.acct = fn
	s.mu.Unlock()
}

// MessageLink half — the session send path.

// SendData transmits one SPI-encoded message, tagged with the session ID
// on negotiated links. The tagged path allocates nothing beyond what the
// untagged one does.
func (s *Stream) SendData(edge uint16, msg []byte) error {
	if s.tagged {
		return s.mux.link.SendSessionData(s.sid, edge, msg)
	}
	return s.mux.link.SendData(edge, msg)
}

// SendAck transmits a BBS credit / UBS acknowledgement and retires the
// acknowledged messages from the session's queued-byte estimate.
func (s *Stream) SendAck(edge uint16, count uint32) error {
	s.noteConsumed(edge, count)
	if s.tagged {
		return s.mux.link.SendSessionAck(s.sid, edge, count)
	}
	return s.mux.link.SendAck(edge, count)
}

// SendFin marks one edge of the session finished.
func (s *Stream) SendFin(edge uint16) error {
	if s.tagged {
		return s.mux.link.SendSessionFin(s.sid, edge)
	}
	return s.mux.link.SendFin(edge)
}

// LinkProvider half — a session-scoped ExecuteDistributed binds here.

// Connect attaches the execution's inbound handler and replays, in
// arrival order, everything buffered since the session opened. The
// stream carries exactly one peer, fixed at open time.
func (s *Stream) Connect(peer int, decls []transport.EdgeDecl, h transport.Handler) (spi.MessageLink, error) {
	if peer != s.peer {
		return nil, fmt.Errorf("session %d: execution wants peer %d, stream carries peer %d", s.sid, peer, s.peer)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inner != nil {
		return nil, errors.New("session: stream already bound to an execution")
	}
	if s.declBytes == nil {
		s.declBytes = make(map[uint16]int64, len(decls))
	}
	for _, d := range decls {
		if !d.Out {
			s.declBytes[d.ID] = int64(d.Bytes)
		}
	}
	s.inner = h
	pend := s.pending
	s.pending = nil
	for _, ev := range pend {
		switch ev.kind {
		case evData:
			h.HandleData(ev.edge, ev.msg)
		case evAck:
			h.HandleAck(ev.edge, ev.count)
		case evFin:
			h.HandleFin(ev.edge)
		}
	}
	if s.closed {
		h.HandleLinkClose(s.closeErr)
	}
	return s, nil
}

// Finish ends the execution's use of the stream. The stream itself stays
// registered — session teardown (CLOSE, release) belongs to the
// Server/Client lifecycle, not the execution.
func (s *Stream) Finish(graceful bool) {}

// Inbound dispatch, called from the link reader via the Mux. Events are
// delivered (or buffered) under the stream lock, which serializes them
// against Connect's replay: an execution observes the exact wire order.

func (s *Stream) handleData(edge uint16, msg []byte) {
	s.touch()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.acct != nil {
		s.queued += int64(len(msg))
		s.acct(int64(len(msg)))
	}
	if h := s.inner; h != nil {
		h.HandleData(edge, msg)
		s.mu.Unlock()
		return
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)
	s.pending = append(s.pending, pendingEvent{kind: evData, edge: edge, msg: cp})
	s.mu.Unlock()
}

func (s *Stream) handleAck(edge uint16, count uint32) {
	s.touch()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if h := s.inner; h != nil {
		h.HandleAck(edge, count)
		s.mu.Unlock()
		return
	}
	s.pending = append(s.pending, pendingEvent{kind: evAck, edge: edge, count: count})
	s.mu.Unlock()
}

func (s *Stream) handleFin(edge uint16) {
	s.touch()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if h := s.inner; h != nil {
		h.HandleFin(edge)
		s.mu.Unlock()
		return
	}
	s.pending = append(s.pending, pendingEvent{kind: evFin, edge: edge})
	s.mu.Unlock()
}

func (s *Stream) handleOpenOK(status byte) {
	select {
	case s.openCh <- status:
	default:
	}
}

func (s *Stream) handleClose(status byte) {
	select {
	case s.closeCh <- status:
	default:
	}
	// A graceful close arrives after both halves of the run finished; a
	// shed or error close must also unwind whatever execution is still
	// attached on this side.
	if status != CloseDone {
		s.linkClosed(fmt.Errorf("session %d closed by peer: %s", s.sid, closeString(status)))
	}
}

// linkClosed ends the session because the link under it ended: the
// execution (attached now or later) sees HandleLinkClose, and waiters on
// open/close verdicts unblock. The error is always non-nil from here
// down: a graceful link GOODBYE still strands any session that has not
// finished its own CLOSE handshake, so executions must treat it as
// fatal, not as the benign end-of-peer a dedicated link would mean.
func (s *Stream) linkClosed(err error) {
	if err == nil {
		err = fmt.Errorf("session %d: link closed", s.sid)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.closeErr = err
	if h := s.inner; h != nil {
		h.HandleLinkClose(err)
	}
	s.mu.Unlock()
	s.doneOnce.Do(func() { close(s.done) })
}

// shed evicts a running session: its execution observes a link failure
// (edges close, the run errors out with ErrClosed) while the shared link
// and every other session stay up.
func (s *Stream) shed() {
	s.linkClosed(fmt.Errorf("session %d shed by admission control", s.sid))
}

// reap is shed for a silent client: the session's peer has sent nothing
// for idle, so the server evicts it rather than hold its slot forever.
func (s *Stream) reap(idle time.Duration) {
	s.linkClosed(fmt.Errorf("session %d reaped: client silent for %v", s.sid, idle))
}

// linkError returns the stream's terminal error, if any.
func (s *Stream) linkError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeErr
}

// noteConsumed retires count acknowledged messages from the queued-byte
// estimate, valued at the edge's declared payload bound.
func (s *Stream) noteConsumed(edge uint16, count uint32) {
	s.mu.Lock()
	if s.acct == nil {
		s.mu.Unlock()
		return
	}
	delta := int64(count) * s.declBytes[edge]
	if delta > s.queued {
		delta = s.queued
	}
	if delta > 0 {
		s.queued -= delta
		s.acct(-delta)
	}
	s.mu.Unlock()
}

// takeQueued zeroes and returns the queued-byte estimate — the release
// path returns it to the tenant's budget in one step.
func (s *Stream) takeQueued() int64 {
	s.mu.Lock()
	q := s.queued
	s.queued = 0
	s.mu.Unlock()
	return q
}
