package dataflow

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the graph parser: it must either
// return an error or a well-formed graph, never panic — including in the
// downstream analyses a hosted tool would immediately run on the result.
func FuzzParse(f *testing.F) {
	f.Add("graph g\nactor A 1\nactor B 2\nedge ab A B 2 3\n")
	f.Add("graph g\nactor A 1\nedge aa A A 1 1 delay=2 bytes=4\n")
	f.Add("graph g\nactor A 1\nactor B 1\nedge d A B 10 8 dynamic bytes=2\n")
	f.Add("# comment only\n")
	f.Add("graph g\nactor A -1\n")
	f.Add("edge before graph\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if g.Name() == "" {
			t.Fatal("parsed graph has empty name")
		}
		// The analyses a parsed graph feeds must tolerate anything the
		// parser accepts (errors are fine, panics are not).
		if q, err := g.RepetitionsVector(); err == nil {
			for _, eid := range g.Edges() {
				_ = g.IterationTokens(q, eid)
			}
		}
		for _, a := range g.Actors() {
			_ = g.In(a)
			_ = g.Out(a)
		}
	})
}
