package bdf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataflow"
	"repro/internal/vts"
)

// ifThenElse builds the canonical BDF conditional: route x through f or g
// according to ctrl, then merge.
func ifThenElse(data, ctrl []Token) *Graph {
	g := NewGraph()
	_, dataE := g.AddSource("data", data)
	_, ctrlE := g.AddSource("ctrl", ctrl)
	// SELECT needs its own copy of the control stream.
	_, ctrl2E := g.AddSource("ctrl2", ctrl)
	_, tE, fE := g.AddSwitch("sw", dataE, ctrlE)
	_, doubledE := g.AddFunc("double", func(a []Token) Token { return a[0] * 2 }, tE)
	_, incE := g.AddFunc("inc", func(a []Token) Token { return a[0] + 1 }, fE)
	_, outE := g.AddSelect("sel", doubledE, incE, ctrl2E)
	g.AddSink("sink", outE)
	return g
}

func TestIfThenElseSemantics(t *testing.T) {
	data := []Token{1, 2, 3, 4, 5}
	ctrl := []Token{1, 0, 1, 0, 0}
	g := ifThenElse(data, ctrl)
	if err := g.Run(10000, 1000); err != nil {
		t.Fatal(err)
	}
	sink := NodeID(len(data)) // last node added is the sink
	// Find the sink by scanning: the only node with collected tokens.
	var got []Token
	for id := 0; id < 8; id++ {
		if c := g.Collected(NodeID(id)); len(c) > 0 {
			got = c
			sink = NodeID(id)
		}
	}
	_ = sink
	want := []Token{2, 3, 6, 5, 6} // 1*2, 2+1, 3*2, 4+1, 5+1
	if len(got) != len(want) {
		t.Fatalf("collected %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestWellBehavedGraphBoundedQueues(t *testing.T) {
	// Complementary switch/select with the same control stream keep every
	// queue small regardless of stream length.
	n := 500
	data := make([]Token, n)
	ctrl := make([]Token, n)
	r := rand.New(rand.NewSource(5))
	for i := range data {
		data[i] = Token(i)
		if r.Intn(2) == 1 {
			ctrl[i] = 1
		}
	}
	g := ifThenElse(data, ctrl)
	if err := g.Run(100000, 0); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 8; e++ {
		if g.PeakQueue(EdgeID(e)) > n {
			t.Errorf("edge %d peak %d out of bounds", e, g.PeakQueue(EdgeID(e)))
		}
	}
}

func TestMismatchedControlDetectedAsUnbounded(t *testing.T) {
	// SWITCH routes everything true-ward but SELECT's control asks for the
	// false branch: tokens pile up on the true edge while SELECT starves —
	// the class of BDF graph whose memory cannot be bounded.
	g := NewGraph()
	n := 100
	data := make([]Token, n)
	allTrue := make([]Token, n)
	allFalse := make([]Token, n)
	for i := range data {
		data[i] = Token(i)
		allTrue[i] = 1
	}
	_, dataE := g.AddSource("data", data)
	_, ctrlE := g.AddSource("ctrl", allTrue)
	_, ctrl2E := g.AddSource("ctrl2", allFalse)
	_, tE, fE := g.AddSwitch("sw", dataE, ctrlE)
	_, outE := g.AddSelect("sel", tE, fE, ctrl2E)
	g.AddSink("sink", outE)
	err := g.Run(100000, 16)
	if err == nil || !strings.Contains(err.Error(), "unbounded") {
		t.Fatalf("err = %v, want unbounded-buffer detection", err)
	}
}

func TestFiringBudget(t *testing.T) {
	g := NewGraph()
	_, e := g.AddSource("s", make([]Token, 1000))
	g.AddSink("k", e)
	if err := g.Run(10, 0); err == nil {
		t.Fatal("expected budget exhaustion")
	}
}

func TestNodeKindString(t *testing.T) {
	for k, want := range map[NodeKind]string{
		SourceNode: "source", FuncNode: "func", SwitchNode: "switch",
		SelectNode: "select", SinkNode: "sink",
	} {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
	if !strings.Contains(NodeKind(99).String(), "99") {
		t.Error("unknown kind")
	}
}

// TestBDFvsVTSBoundedness contrasts the two models on the same behaviour:
// a producer whose per-iteration output count depends on a control value.
// In BDF the buffer bound is only observable by running; the VTS encoding
// of the same behaviour (one packed token of variable size per iteration)
// yields a static bound via eq. 1 / eq. 2 without executing anything.
func TestBDFvsVTSBoundedness(t *testing.T) {
	// VTS side: static analysis, no execution.
	g := dataflow.New("vts-side")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 8, 8, dataflow.EdgeSpec{
		ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 4,
	})
	g.AddEdge("ba", b, a, 1, 1, dataflow.EdgeSpec{Delay: 1})
	conv, err := vts.Convert(g)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := vts.ComputeBounds(conv)
	if err != nil {
		t.Fatal(err)
	}
	if !bounds[0].Bounded {
		t.Fatal("VTS edge should be statically bounded")
	}
	staticBound := bounds[0].IPC // bytes, known before run time

	// BDF side: the equivalent dynamic routing needs interpretation; the
	// observable peak is data-dependent.
	n := 64
	data := make([]Token, n)
	ctrl := make([]Token, n)
	for i := range data {
		data[i] = Token(i)
		ctrl[i] = Token(i % 2)
	}
	bg := ifThenElse(data, ctrl)
	if err := bg.Run(100000, 0); err != nil {
		t.Fatal(err)
	}
	// Both models handle the behaviour; the difference the test documents
	// is *when* the bound exists: before execution (VTS) vs after (BDF).
	if staticBound <= 0 {
		t.Errorf("static VTS bound = %d, want positive", staticBound)
	}
	observed := 0
	for e := 0; e < 8; e++ {
		if p := bg.PeakQueue(EdgeID(e)); p > observed {
			observed = p
		}
	}
	if observed == 0 {
		t.Error("BDF interpreter observed no queue occupancy")
	}
}

// Property: if-then-else output always equals the direct computation, for
// random data and control streams.
func TestIfThenElseProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		data := make([]Token, n)
		ctrl := make([]Token, n)
		want := make([]Token, n)
		for i := range data {
			data[i] = Token(r.Intn(100))
			if r.Intn(2) == 1 {
				ctrl[i] = 1
				want[i] = data[i] * 2
			} else {
				want[i] = data[i] + 1
			}
		}
		g := ifThenElse(data, ctrl)
		if err := g.Run(1_000_000, 0); err != nil {
			return false
		}
		var got []Token
		for id := 0; id < 8; id++ {
			if c := g.Collected(NodeID(id)); len(c) > 0 {
				got = c
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
