package lpc

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/spi"
)

func TestCoDesignValidate(t *testing.T) {
	bad := DefaultCoDesign(256, 0)
	if bad.Validate() == nil {
		t.Error("0 HW PEs should fail")
	}
	if _, err := CoDesignSystem(bad); err == nil {
		t.Error("CoDesignSystem should reject bad params")
	}
}

func TestCoDesignBuildsAndRuns(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		sys, err := CoDesignSystem(DefaultCoDesign(256, n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		dep, err := spi.Build(sys)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		st, err := dep.Sim.Run(8)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Only the CPU<->HW edges become SPI channels: 3 per hardware PE.
		if len(dep.Plans) != 3*n {
			t.Errorf("n=%d: %d SPI channels, want %d", n, len(dep.Plans), 3*n)
		}
		for _, p := range dep.Plans {
			if p.Mode != spi.Dynamic {
				t.Errorf("n=%d: edge %d not dynamic", n, p.Edge)
			}
		}
		if st.Messages[platform.DataMsg] != int64(3*n*8) {
			t.Errorf("n=%d: %d data messages, want %d", n, st.Messages[platform.DataMsg], 3*n*8)
		}
	}
}

func TestCoDesignAmdahl(t *testing.T) {
	// Only actor D is accelerated, so speedup saturates well below the PE
	// count (Amdahl): the software pipeline (A, B, C, E) bounds it.
	run := func(n int) platform.Time {
		sys, err := CoDesignSystem(DefaultCoDesign(512, n))
		if err != nil {
			t.Fatal(err)
		}
		dep, err := spi.Build(sys)
		if err != nil {
			t.Fatal(err)
		}
		st, err := dep.Sim.Run(12)
		if err != nil {
			t.Fatal(err)
		}
		return st.Finish
	}
	t1, t2, t4 := run(1), run(2), run(4)
	if !(t4 <= t2 && t2 <= t1) {
		t.Errorf("no monotone improvement: %d %d %d", t1, t2, t4)
	}
	speedup := float64(t1) / float64(t4)
	if speedup >= 2.0 {
		t.Errorf("co-design speedup %v implausibly high: software stages dominate", speedup)
	}
	if speedup < 1.0 {
		t.Errorf("adding PEs made it slower: %v", speedup)
	}
}

func TestCoDesignCPUDominates(t *testing.T) {
	// The CPU (PE 0) should be the busiest processor — the motivation for
	// accelerating D in hardware in the first place.
	sys, err := CoDesignSystem(DefaultCoDesign(256, 2))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := spi.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dep.Sim.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	for pe := 1; pe < len(st.PEBusy); pe++ {
		if st.PEBusy[pe] >= st.PEBusy[0] {
			t.Errorf("HW PE %d busier than the CPU: %d vs %d", pe, st.PEBusy[pe], st.PEBusy[0])
		}
	}
}
