// Package demo provides the deterministic demo kernels and the
// assignment-list mapping shared by the runnable commands (spinode,
// spiload): every output byte is a pure function of the graph, seed,
// actor, iteration, and inputs, so any partition of the graph — across
// processors, nodes, or sessions — produces bit-identical sink digests.
package demo

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/spi"
	"repro/internal/vts"
)

// Mapping builds a sched.Mapping from a processor-per-actor assignment
// list in graph actor order. Every processor index up to the maximum
// must host at least one actor.
func Mapping(g *dataflow.Graph, assign []int) (*sched.Mapping, error) {
	actors := g.Actors()
	if len(assign) != len(actors) {
		return nil, fmt.Errorf("assignment lists %d processors for %d actors", len(assign), len(actors))
	}
	numProcs := 0
	for _, p := range assign {
		if p < 0 {
			return nil, fmt.Errorf("negative processor %d", p)
		}
		if p+1 > numProcs {
			numProcs = p + 1
		}
	}
	m := &sched.Mapping{
		NumProcs: numProcs,
		Proc:     make([]sched.Processor, len(actors)),
		Order:    make([][]dataflow.ActorID, numProcs),
	}
	for i, a := range actors {
		p := assign[i]
		m.Proc[a] = sched.Processor(p)
		m.Order[p] = append(m.Order[p], a)
	}
	for p := 0; p < numProcs; p++ {
		if len(m.Order[p]) == 0 {
			return nil, fmt.Errorf("processor %d has no actors", p)
		}
	}
	return m, nil
}

// Sinks returns a fresh digest slot per sink actor (no output edges),
// keyed by actor name — the map Kernels folds results into.
func Sinks(g *dataflow.Graph) map[string]*uint64 {
	digests := map[string]*uint64{}
	for _, a := range g.Actors() {
		if len(g.Out(a)) == 0 {
			digests[g.Actor(a).Name] = new(uint64)
		}
	}
	return digests
}

// Kernels builds deterministic kernels for an arbitrary graph: each
// actor's output on every edge is a pseudo-random (seeded, reproducible)
// byte string derived from the actor, iteration, and its inputs; actors
// without outputs fold their inputs into a digest under mu. Because
// every byte is a pure function of the graph and seed, any partition of
// the graph produces the same digests.
func Kernels(g *dataflow.Graph, seed uint64, digests map[string]*uint64, mu *sync.Mutex) (map[dataflow.ActorID]spi.Kernel, error) {
	conv, err := vts.Convert(g)
	if err != nil {
		return nil, err
	}
	kernels := map[dataflow.ActorID]spi.Kernel{}
	for _, a := range g.Actors() {
		a := a
		name := g.Actor(a).Name
		outs := g.Out(a)
		kernels[a] = func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s|%s|%d|%d", g.Name(), name, iter, seed)
			// Fold inputs in a deterministic edge order.
			ins := g.In(a)
			sorted := append([]dataflow.EdgeID(nil), ins...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for _, eid := range sorted {
				fmt.Fprintf(h, "|%s:", g.Edge(eid).Name)
				h.Write(in[eid])
			}
			state := h.Sum64()
			if len(outs) == 0 {
				mu.Lock()
				*digests[name] ^= state * uint64(iter*2654435761+1)
				mu.Unlock()
				return nil, nil
			}
			out := map[dataflow.EdgeID][]byte{}
			for _, eid := range outs {
				info := conv.Info(eid)
				n := int(info.BMax)
				if info.Dynamic && n > 1 {
					n = 1 + int(state%uint64(n))
				}
				buf := make([]byte, n)
				s := state ^ uint64(eid)
				for i := range buf {
					// xorshift64 fill: cheap, reproducible.
					s ^= s << 13
					s ^= s >> 7
					s ^= s << 17
					buf[i] = byte(s)
				}
				out[eid] = buf
			}
			return out, nil
		}
	}
	return kernels, nil
}
