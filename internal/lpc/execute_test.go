package lpc

import (
	"math"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/dsp"
	"repro/internal/signal"
	"repro/internal/spi"
)

// TestErrorGenSystemFunctional runs the actor-D deployment graph with REAL
// kernels under spi.Execute: the I/O interface scatters coefficients and
// overlapping frame sections, hardware-PE kernels compute residual ranges,
// and the gather reassembles the frame — then the result is checked against
// the serial residual. This ties the deployment graph (used for the
// figure-6 timing) to actual computation.
func TestErrorGenSystemFunctional(t *testing.T) {
	const N = 256
	frame := signal.Speech(N, 77)
	model, err := dsp.LPCAnalyze(frame, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := model.Residual(frame)

	for _, n := range []int{1, 2, 4} {
		p := DefaultDeploy(N, n)
		p.SampleBytes = 8 // the functional kernels move float64 samples
		sys, err := ErrorGenSystem(p)
		if err != nil {
			t.Fatal(err)
		}
		g := sys.Graph
		ioSend, _ := g.ActorByName("io_send")
		ioRecv, _ := g.ActorByName("io_recv")

		// Edge lookup by name for kernel wiring.
		edge := func(name string) dataflow.EdgeID {
			for _, eid := range g.Edges() {
				if g.Edge(eid).Name == name {
					return eid
				}
			}
			t.Fatalf("edge %s missing", name)
			return 0
		}

		var got []float64
		const iters = 3
		results := make([][]float64, 0, iters)

		kernels := map[dataflow.ActorID]spi.Kernel{
			ioSend: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
				out := map[dataflow.EdgeID][]byte{}
				for i := 0; i < n; i++ {
					start := i * N / n
					end := (i + 1) * N / n
					hist := p.Order
					if start < hist {
						hist = start
					}
					out[edgeID(t, g, "coeffs", i)] = encodeFloats(model.Coeffs)
					out[edgeID(t, g, "sect", i)] = encodeSection(hist, frame[start-hist:end])
				}
				return out, nil
			},
			ioRecv: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
				assembled := make([]float64, 0, N)
				for i := 0; i < n; i++ {
					part, err := decodeFloats(in[edgeID(t, g, "errs", i)])
					if err != nil {
						return nil, err
					}
					assembled = append(assembled, part...)
				}
				results = append(results, assembled)
				return nil, nil
			},
		}
		for i := 0; i < n; i++ {
			i := i
			pe, _ := g.ActorByName(peName(i))
			kernels[pe] = func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
				coeffs, err := decodeFloats(in[edgeID(t, g, "coeffs", i)])
				if err != nil {
					return nil, err
				}
				hist, samples, err := decodeSection(in[edgeID(t, g, "sect", i)])
				if err != nil {
					return nil, err
				}
				wm := &dsp.LPCModel{Coeffs: coeffs}
				errsOut := wm.ResidualRange(samples, hist, len(samples))
				return map[dataflow.EdgeID][]byte{
					edgeID(t, g, "errs", i): encodeFloats(errsOut),
				}, nil
			}
		}
		_ = edge

		st, err := spi.Execute(g, sys.Mapping, kernels, iters)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(results) != iters {
			t.Fatalf("n=%d: %d gathered frames", n, len(results))
		}
		got = results[iters-1]
		if len(got) != N {
			t.Fatalf("n=%d: assembled %d samples", n, len(got))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("n=%d sample %d: %v vs %v", n, i, got[i], want[i])
			}
		}
		// 3 messages per PE per iteration over the SPI runtime.
		if st.SPI.Messages != int64(3*n*iters) {
			t.Errorf("n=%d: SPI messages = %d, want %d", n, st.SPI.Messages, 3*n*iters)
		}
	}
}

func peName(i int) string { return "pe" + string(rune('0'+i)) }

func edgeID(t *testing.T, g *dataflow.Graph, prefix string, i int) dataflow.EdgeID {
	t.Helper()
	name := prefix + string(rune('0'+i))
	for _, eid := range g.Edges() {
		if g.Edge(eid).Name == name {
			return eid
		}
	}
	t.Fatalf("edge %s missing", name)
	return 0
}
