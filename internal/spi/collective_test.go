package spi

import (
	"bytes"
	"sync"
	"testing"
)

func TestScatterGatherPipeline(t *testing.T) {
	rt := NewRuntime()
	const n = 4
	sc, err := NewScatter(rt, 0, n, 64, UBS, 0)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := NewGather(rt, 100, n, 64, UBS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Workers() != n || ga.Workers() != n {
		t.Fatal("worker counts wrong")
	}
	// Workers double each byte of their input.
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in, err := sc.WorkerRecv(i).Receive()
			if err != nil {
				t.Errorf("worker %d recv: %v", i, err)
				return
			}
			out := make([]byte, len(in))
			for j, b := range in {
				out[j] = b * 2
			}
			if err := ga.WorkerSend(i).Send(out); err != nil {
				t.Errorf("worker %d send: %v", i, err)
			}
		}(i)
	}
	payloads := [][]byte{{1}, {2, 2}, {3, 3, 3}, {4}}
	if err := sc.Send(payloads); err != nil {
		t.Fatal(err)
	}
	results, err := ga.Collect()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	want := [][]byte{{2}, {4, 4}, {6, 6, 6}, {8}}
	for i := range want {
		if !bytes.Equal(results[i], want[i]) {
			t.Errorf("worker %d result %v, want %v", i, results[i], want[i])
		}
	}
}

func TestBroadcast(t *testing.T) {
	rt := NewRuntime()
	sc, err := NewScatter(rt, 0, 3, 16, BBS, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Broadcast([]byte{7, 8}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p, err := sc.WorkerRecv(i).Receive()
		if err != nil || !bytes.Equal(p, []byte{7, 8}) {
			t.Errorf("worker %d: %v %v", i, p, err)
		}
	}
}

func TestScatterValidation(t *testing.T) {
	rt := NewRuntime()
	if _, err := NewScatter(rt, 0, 0, 16, UBS, 0); err == nil {
		t.Error("0 workers should fail")
	}
	if _, err := NewGather(rt, 0, -1, 16, UBS, 0); err == nil {
		t.Error("negative workers should fail")
	}
	sc, err := NewScatter(rt, 10, 2, 16, UBS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Send([][]byte{{1}}); err == nil {
		t.Error("payload-count mismatch should fail")
	}
	if err := sc.Send([][]byte{{1}, make([]byte, 99)}); err == nil {
		t.Error("oversize payload should fail")
	}
}

func TestScatterEdgeIDCollision(t *testing.T) {
	rt := NewRuntime()
	if _, err := NewScatter(rt, 0, 2, 16, UBS, 0); err != nil {
		t.Fatal(err)
	}
	// Overlapping ID range must fail.
	if _, err := NewGather(rt, 1, 2, 16, UBS, 0); err == nil {
		t.Error("edge ID collision should fail")
	}
}
