// Package orch is the elastic orchestration layer: a coordinator that
// registers workers over the transport control plane, partitions a mapped
// graph across the live pool, dispatches each worker only its own
// partition, and migrates actors between epochs when workers join, leave,
// die, or run hot — while keeping sink outputs bit-identical to a static
// run.
//
// The control conversation rides CTRL frames (transport feature featOrch)
// on an ordinary link: numbered frames, so the conversation survives
// reconnects via RESUME replay like the data plane does. Messages use a
// hand-rolled little-endian codec with strict bounds checks — the decoder
// is fuzzed (FuzzDecodeCtrl) and must never panic on adversarial input.
package orch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/spi"
)

// Control opcodes, carried in the CTRL frame's op byte.
const (
	// OpRegister introduces a worker to the coordinator (worker → coord).
	OpRegister byte = 1
	// OpWelcome acknowledges registration with the worker's stable ID.
	OpWelcome byte = 2
	// OpPrepare asks a worker to bind a fresh data-plane listener for an
	// epoch (coord → worker). Per-epoch listeners fence stale connections
	// from aborted epochs out of the new one.
	OpPrepare byte = 3
	// OpReady announces the worker's per-epoch data address.
	OpReady byte = 4
	// OpTask ships one worker's partition spec for an epoch.
	OpTask byte = 5
	// OpDone reports a completed epoch with its checkpoint payload.
	OpDone byte = 6
	// OpFail reports a failed epoch.
	OpFail byte = 7
	// OpAbort cancels an epoch on a worker (coord → worker).
	OpAbort byte = 8
	// OpAbortOK confirms the worker has quiesced the aborted epoch.
	OpAbortOK byte = 9
	// OpShutdown dismisses a worker at end of run.
	OpShutdown byte = 10
)

// Register introduces a worker by name.
type Register struct{ Name string }

// Welcome assigns a worker its stable pool ID.
type Welcome struct{ ID uint32 }

// Prepare opens an epoch: the worker binds a fresh data listener.
type Prepare struct{ Epoch uint32 }

// Ready carries the per-epoch data-plane address back.
type Ready struct {
	Epoch uint32
	Addr  string
}

// Task dispatches one partition of an epoch.
type Task struct {
	Epoch uint32
	Spec  *spi.PartitionSpec
}

// Done reports a committed partition: the sink digest contributions, the
// delayed-edge tails and actor state blobs (the migration checkpoint),
// firing counts, and per-processor busy time (the placement load signal,
// parallel to the spec's Procs).
type Done struct {
	Epoch   uint32
	Digests map[string]uint64
	Tails   map[uint16][][]byte
	State   map[string][]byte
	Firings map[string]uint32
	ProcNS  []int64
}

// Fail reports an epoch failure.
type Fail struct {
	Epoch uint32
	Msg   string
}

// Abort cancels an epoch.
type Abort struct{ Epoch uint32 }

// AbortOK confirms quiescence after an abort.
type AbortOK struct{ Epoch uint32 }

// Shutdown dismisses a worker.
type Shutdown struct{}

var errTruncated = errors.New("orch: truncated control message")

// wireLimit bounds every count field the decoder reads; together with the
// per-element minimum sizes it keeps adversarial inputs from provoking
// huge allocations.
const wireLimit = 1 << 20

type reader struct {
	b   []byte
	err error
}

func (r *reader) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.err = errTruncated
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

// count reads a u32 element count and validates it against the remaining
// bytes, given the minimum encoded size of one element.
func (r *reader) count(minElem int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if n > wireLimit || int(n)*minElem > len(r.b) {
		r.err = fmt.Errorf("orch: count %d exceeds remaining %d bytes", n, len(r.b))
		return 0
	}
	return int(n)
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if int(n) > len(r.b) {
		r.err = errTruncated
		return nil
	}
	v := make([]byte, n) // non-nil even when empty: decoding is canonical
	copy(v, r.b[:n])
	r.b = r.b[n:]
	return v
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("orch: %d trailing bytes in control message", len(r.b))
	}
	return nil
}

type writer struct{ b []byte }

func (w *writer) u8(v byte)    { w.b = append(w.b, v) }
func (w *writer) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}
func (w *writer) str(v string) { w.bytes([]byte(v)) }

func sortedStrings[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Encode renders a control message to its CTRL payload. It accepts the
// message types above and panics on anything else (a programming error,
// not a wire condition).
func Encode(msg any) (op byte, payload []byte) {
	w := &writer{}
	switch m := msg.(type) {
	case Register:
		w.str(m.Name)
		return OpRegister, w.b
	case Welcome:
		w.u32(m.ID)
		return OpWelcome, w.b
	case Prepare:
		w.u32(m.Epoch)
		return OpPrepare, w.b
	case Ready:
		w.u32(m.Epoch)
		w.str(m.Addr)
		return OpReady, w.b
	case Task:
		w.u32(m.Epoch)
		encodeSpec(w, m.Spec)
		return OpTask, w.b
	case Done:
		w.u32(m.Epoch)
		w.u32(uint32(len(m.Digests)))
		for _, k := range sortedStrings(m.Digests) {
			w.str(k)
			w.u64(m.Digests[k])
		}
		ids := make([]int, 0, len(m.Tails))
		for id := range m.Tails {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		w.u32(uint32(len(ids)))
		for _, id := range ids {
			w.u16(uint16(id))
			payloads := m.Tails[uint16(id)]
			w.u32(uint32(len(payloads)))
			for _, p := range payloads {
				w.bytes(p)
			}
		}
		w.u32(uint32(len(m.State)))
		for _, k := range sortedStrings(m.State) {
			w.str(k)
			w.bytes(m.State[k])
		}
		w.u32(uint32(len(m.Firings)))
		for _, k := range sortedStrings(m.Firings) {
			w.str(k)
			w.u32(m.Firings[k])
		}
		w.u32(uint32(len(m.ProcNS)))
		for _, ns := range m.ProcNS {
			w.u64(uint64(ns))
		}
		return OpDone, w.b
	case Fail:
		w.u32(m.Epoch)
		w.str(m.Msg)
		return OpFail, w.b
	case Abort:
		w.u32(m.Epoch)
		return OpAbort, w.b
	case AbortOK:
		w.u32(m.Epoch)
		return OpAbortOK, w.b
	case Shutdown:
		return OpShutdown, nil
	}
	panic(fmt.Sprintf("orch: encode of unknown message type %T", msg))
}

func encodeSpec(w *writer, s *spi.PartitionSpec) {
	w.str(s.Graph)
	w.u32(uint32(s.Node))
	w.u32(uint32(s.Workers))
	w.u32(uint32(len(s.Addrs)))
	for _, a := range s.Addrs {
		w.str(a)
	}
	w.u64(uint64(s.BaseIter))
	w.u64(uint64(s.Iterations))
	w.u32(uint32(len(s.Procs)))
	for _, p := range s.Procs {
		w.u32(uint32(p.Proc))
		w.u32(uint32(len(p.Actors)))
		for _, a := range p.Actors {
			w.str(a.Name)
			w.u32(uint32(len(a.In)))
			for _, id := range a.In {
				w.u16(id)
			}
			w.u32(uint32(len(a.Out)))
			for _, id := range a.Out {
				w.u16(id)
			}
		}
	}
	w.u32(uint32(len(s.Edges)))
	for _, e := range s.Edges {
		w.u16(e.ID)
		w.str(e.Name)
		w.u8(e.Mode)
		w.u32(e.Bytes)
		w.u8(e.Protocol)
		w.u32(e.Capacity)
		w.u32(e.Delay)
		var flags byte
		if e.SameProc {
			flags |= 1
		}
		if e.Out {
			flags |= 2
		}
		if e.In {
			flags |= 4
		}
		if e.SuppressAck {
			flags |= 8
		}
		w.u8(flags)
		w.u32(uint32(int32(e.Peer)))
	}
	ids := make([]int, 0, len(s.Preload))
	for id := range s.Preload {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	w.u32(uint32(len(ids)))
	for _, id := range ids {
		w.u16(uint16(id))
		payloads := s.Preload[uint16(id)]
		w.u32(uint32(len(payloads)))
		for _, p := range payloads {
			w.bytes(p)
		}
	}
	w.u32(uint32(len(s.State)))
	for _, k := range sortedStrings(s.State) {
		w.str(k)
		w.bytes(s.State[k])
	}
	var resync byte
	if s.Resync {
		resync = 1
	}
	w.u8(resync)
}

func decodeSpec(r *reader) *spi.PartitionSpec {
	s := &spi.PartitionSpec{
		Graph:   r.str(),
		Node:    int(r.u32()),
		Workers: int(r.u32()),
	}
	for n := r.count(4); n > 0; n-- {
		s.Addrs = append(s.Addrs, r.str())
	}
	base, iters := r.u64(), r.u64()
	if r.err == nil && (base > math.MaxInt32 || iters > math.MaxInt32) {
		r.err = fmt.Errorf("orch: iteration range %d+%d out of bounds", base, iters)
		return s
	}
	s.BaseIter, s.Iterations = int(base), int(iters)
	for n := r.count(8); n > 0; n-- {
		p := spi.PartProc{Proc: int(r.u32())}
		for na := r.count(12); na > 0; na-- {
			a := spi.PartActor{Name: r.str()}
			for ni := r.count(2); ni > 0; ni-- {
				a.In = append(a.In, r.u16())
			}
			for no := r.count(2); no > 0; no-- {
				a.Out = append(a.Out, r.u16())
			}
			p.Actors = append(p.Actors, a)
		}
		s.Procs = append(s.Procs, p)
	}
	for n := r.count(25); n > 0; n-- {
		e := spi.PartEdge{
			ID:       r.u16(),
			Name:     r.str(),
			Mode:     r.u8(),
			Bytes:    r.u32(),
			Protocol: r.u8(),
			Capacity: r.u32(),
			Delay:    r.u32(),
		}
		flags := r.u8()
		e.SameProc = flags&1 != 0
		e.Out = flags&2 != 0
		e.In = flags&4 != 0
		e.SuppressAck = flags&8 != 0
		e.Peer = int(int32(r.u32()))
		s.Edges = append(s.Edges, e)
	}
	s.Preload = map[uint16][][]byte{}
	for n := r.count(6); n > 0; n-- {
		id := r.u16()
		payloads := make([][]byte, 0, r.count(4))
		for cap(payloads) > len(payloads) {
			payloads = append(payloads, r.bytes())
		}
		if r.err != nil {
			return s
		}
		s.Preload[id] = payloads
	}
	s.State = map[string][]byte{}
	for n := r.count(8); n > 0; n-- {
		k := r.str()
		s.State[k] = r.bytes()
		if r.err != nil {
			return s
		}
	}
	s.Resync = r.u8() != 0
	return s
}

// DecodeCtrl parses one CTRL frame (op byte plus payload) into its typed
// message. Every malformed input returns an error; the decoder never
// panics — FuzzDecodeCtrl enforces this.
func DecodeCtrl(op byte, payload []byte) (any, error) {
	r := &reader{b: payload}
	var msg any
	switch op {
	case OpRegister:
		msg = Register{Name: r.str()}
	case OpWelcome:
		msg = Welcome{ID: r.u32()}
	case OpPrepare:
		msg = Prepare{Epoch: r.u32()}
	case OpReady:
		msg = Ready{Epoch: r.u32(), Addr: r.str()}
	case OpTask:
		t := Task{Epoch: r.u32()}
		t.Spec = decodeSpec(r)
		msg = t
	case OpDone:
		d := Done{Epoch: r.u32(), Digests: map[string]uint64{},
			Tails: map[uint16][][]byte{}, State: map[string][]byte{},
			Firings: map[string]uint32{}}
		for n := r.count(12); n > 0; n-- {
			k := r.str()
			d.Digests[k] = r.u64()
			if r.err != nil {
				return nil, r.err
			}
		}
		for n := r.count(6); n > 0; n-- {
			id := r.u16()
			payloads := make([][]byte, 0, r.count(4))
			for cap(payloads) > len(payloads) {
				payloads = append(payloads, r.bytes())
			}
			if r.err != nil {
				return nil, r.err
			}
			d.Tails[id] = payloads
		}
		for n := r.count(8); n > 0; n-- {
			k := r.str()
			d.State[k] = r.bytes()
			if r.err != nil {
				return nil, r.err
			}
		}
		for n := r.count(8); n > 0; n-- {
			k := r.str()
			d.Firings[k] = r.u32()
			if r.err != nil {
				return nil, r.err
			}
		}
		for n := r.count(8); n > 0; n-- {
			d.ProcNS = append(d.ProcNS, int64(r.u64()))
		}
		msg = d
	case OpFail:
		msg = Fail{Epoch: r.u32(), Msg: r.str()}
	case OpAbort:
		msg = Abort{Epoch: r.u32()}
	case OpAbortOK:
		msg = AbortOK{Epoch: r.u32()}
	case OpShutdown:
		msg = Shutdown{}
	default:
		return nil, fmt.Errorf("orch: unknown control opcode %d", op)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return msg, nil
}
