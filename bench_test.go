// Benchmark harness: one benchmark per paper table/figure plus the
// ablations and the core kernels. Figure/table benchmarks drive the same
// code paths as cmd/spibench and report the paper-comparable quantity
// (microseconds per frame/iteration, resource counts) as custom metrics.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/demo"
	"repro/internal/dsp"
	"repro/internal/experiments"
	"repro/internal/hdl"
	"repro/internal/huffman"
	"repro/internal/kpn"
	"repro/internal/lpc"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/orch"
	"repro/internal/particle"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/signal"
	"repro/internal/spi"
	"repro/internal/syncgraph"
	"repro/internal/transport"
	"repro/internal/vts"
)

// simulateUsPerIter lowers and runs an SPI system, returning the simulated
// steady-state microseconds per graph iteration.
func simulateUsPerIter(b *testing.B, sys *spi.System) float64 {
	b.Helper()
	dep, err := spi.Build(sys)
	if err != nil {
		b.Fatal(err)
	}
	const iters = 50
	st, err := dep.Sim.Run(iters)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dep.Sim.Config()
	span := st.IterationFinish[iters-1] - st.IterationFinish[iters/5]
	return st.Microseconds(cfg, span) / float64(iters-1-iters/5)
}

// BenchmarkFig6 regenerates figure 6: actor D execution time versus sample
// size for 1–4 PEs. The simulated_us_per_frame metric is the figure's y
// value.
func BenchmarkFig6(b *testing.B) {
	for _, N := range experiments.Fig6SampleSizes {
		for _, n := range experiments.Fig6PEs {
			b.Run(fmt.Sprintf("N=%d/n=%d", N, n), func(b *testing.B) {
				var us float64
				for i := 0; i < b.N; i++ {
					sys, err := lpc.ErrorGenSystem(lpc.DefaultDeploy(N, n))
					if err != nil {
						b.Fatal(err)
					}
					us = simulateUsPerIter(b, sys)
				}
				b.ReportMetric(us, "simulated_us_per_frame")
			})
		}
	}
}

// BenchmarkFig7 regenerates figure 7: particle-filter execution time versus
// particle count for 1 and 2 PEs.
func BenchmarkFig7(b *testing.B) {
	for _, N := range experiments.Fig7Particles {
		for _, n := range experiments.Fig7PEs {
			b.Run(fmt.Sprintf("N=%d/n=%d", N, n), func(b *testing.B) {
				var us float64
				for i := 0; i < b.N; i++ {
					sys, err := particle.FilterSystem(particle.DefaultDeploy(N, n), nil)
					if err != nil {
						b.Fatal(err)
					}
					us = simulateUsPerIter(b, sys)
				}
				b.ReportMetric(us, "simulated_us_per_iter")
			})
		}
	}
}

// BenchmarkTable1 regenerates table 1: the 4-PE actor-D area model, with
// the SPI library share as metrics.
func BenchmarkTable1(b *testing.B) {
	var sysR, libR hdl.Resources
	for i := 0; i < b.N; i++ {
		top, err := lpc.HardwareModel(lpc.DefaultDeploy(512, 4))
		if err != nil {
			b.Fatal(err)
		}
		sysR = top.Total()
		libR = top.TotalOf("spi_")
	}
	b.ReportMetric(float64(sysR.Slices), "system_slices")
	b.ReportMetric(libR.PercentOf(sysR).Slices, "spi_slice_pct")
	b.ReportMetric(libR.PercentOf(sysR).BRAMs, "spi_bram_pct")
}

// BenchmarkTable2 regenerates table 2: the 2-PE particle-filter area model.
func BenchmarkTable2(b *testing.B) {
	var sysR, libR hdl.Resources
	for i := 0; i < b.N; i++ {
		top, err := particle.HardwareModel(particle.DefaultDeploy(300, 2))
		if err != nil {
			b.Fatal(err)
		}
		sysR = top.Total()
		libR = top.TotalOf("spi_")
	}
	b.ReportMetric(float64(sysR.Slices), "system_slices")
	b.ReportMetric(libR.PercentOf(sysR).Slices, "spi_slice_pct")
	b.ReportMetric(libR.PercentOf(sysR).DSP48s, "spi_dsp_pct")
}

// BenchmarkFig3Resync regenerates the figure-3 synchronization
// optimization; sync_edges_removed is the figure's claim.
func BenchmarkFig3Resync(b *testing.B) {
	var removed int
	for i := 0; i < b.N; i++ {
		g := experiments.Fig3Graph(3)
		rep := syncgraph.Resynchronize(g, syncgraph.ResyncOptions{})
		removed = rep.SyncBefore - rep.SyncAfter
	}
	b.ReportMetric(float64(removed), "sync_edges_removed")
}

// BenchmarkFig5Resync regenerates the figure-5 synchronization
// optimization.
func BenchmarkFig5Resync(b *testing.B) {
	var removed int
	for i := 0; i < b.N; i++ {
		g := experiments.Fig5Graph()
		rep := syncgraph.Resynchronize(g, syncgraph.ResyncOptions{})
		removed = rep.SyncBefore - rep.SyncAfter
	}
	b.ReportMetric(float64(removed), "sync_edges_removed")
}

// BenchmarkSPIvsMPI compares per-message latency of the three framings
// (ablation A1) at representative payload sizes.
func BenchmarkSPIvsMPI(b *testing.B) {
	configs := []struct {
		name   string
		header int
		isMPI  bool
	}{
		{"spi_static", spi.StaticHeaderBytes, false},
		{"spi_dynamic", spi.DynamicHeaderBytes, false},
		{"mpi", 0, true},
	}
	for _, payload := range []int{64, 4096} {
		for _, cfg := range configs {
			b.Run(fmt.Sprintf("payload=%d/%s", payload, cfg.name), func(b *testing.B) {
				var us float64
				for i := 0; i < b.N; i++ {
					pc := platform.DefaultConfig(2)
					sim, err := platform.NewSim(pc)
					if err != nil {
						b.Fatal(err)
					}
					if cfg.isMPI {
						l, err := mpi.NewLink(sim, 0, 1, "mpi")
						if err != nil {
							b.Fatal(err)
						}
						sim.SetProgram(0, platform.Program(l.SendOps(payload)))
						sim.SetProgram(1, platform.Program(l.RecvOps(payload)))
					} else {
						ch, err := sim.AddChannel(platform.ChannelSpec{
							From: 0, To: 1, Name: "e", HeaderBytes: cfg.header, Capacity: 4,
						})
						if err != nil {
							b.Fatal(err)
						}
						sim.SetProgram(0, platform.Program{platform.Send(ch, payload)})
						sim.SetProgram(1, platform.Program{platform.Recv(ch)})
					}
					st, err := sim.Run(100)
					if err != nil {
						b.Fatal(err)
					}
					us = st.Microseconds(pc, st.Finish) / 100
				}
				b.ReportMetric(us, "simulated_us_per_msg")
			})
		}
	}
}

// BenchmarkResyncAblation measures the end-to-end platform effect of
// keeping vs removing the redundant acknowledgement messages (ablation A2):
// the actor-D system with every edge forced to UBS (acks) versus the
// analyzed protocols.
func BenchmarkResyncAblation(b *testing.B) {
	run := func(b *testing.B, resynchronized bool) (acks, us float64) {
		sys, err := lpc.ErrorGenSystem(lpc.DefaultDeploy(256, 3))
		if err != nil {
			b.Fatal(err)
		}
		// After resynchronization the acknowledgement edges are redundant
		// (program order + the error-return message imply them), so the
		// optimized deployment suppresses them.
		sys.SuppressAcks = resynchronized
		dep, err := spi.Build(sys)
		if err != nil {
			b.Fatal(err)
		}
		st, err := dep.Sim.Run(50)
		if err != nil {
			b.Fatal(err)
		}
		cfg := dep.Sim.Config()
		return float64(st.Messages[platform.AckMsg]), st.Microseconds(cfg, st.Finish) / 50
	}
	for _, resynced := range []bool{false, true} {
		name := "before_resync"
		if resynced {
			name = "after_resync"
		}
		b.Run(name, func(b *testing.B) {
			var acks, us float64
			for i := 0; i < b.N; i++ {
				acks, us = run(b, resynced)
			}
			b.ReportMetric(acks, "ack_msgs")
			b.ReportMetric(us, "simulated_us_per_frame")
		})
	}
}

// BenchmarkBBSvsUBS measures protocol cost (ablation A3).
func BenchmarkBBSvsUBS(b *testing.B) {
	for _, ubs := range []bool{false, true} {
		name := "bbs"
		if ubs {
			name = "ubs"
		}
		b.Run(name, func(b *testing.B) {
			var acks float64
			for i := 0; i < b.N; i++ {
				pc := platform.DefaultConfig(2)
				sim, err := platform.NewSim(pc)
				if err != nil {
					b.Fatal(err)
				}
				spec := platform.ChannelSpec{From: 0, To: 1, Name: "e", HeaderBytes: 6}
				if ubs {
					spec.AckBytes = 4
				} else {
					spec.Capacity = 4
				}
				ch, err := sim.AddChannel(spec)
				if err != nil {
					b.Fatal(err)
				}
				sim.SetProgram(0, platform.Program{platform.Compute(80), platform.Send(ch, 64)})
				sim.SetProgram(1, platform.Program{platform.Recv(ch), platform.Compute(100)})
				st, err := sim.Run(100)
				if err != nil {
					b.Fatal(err)
				}
				acks = float64(st.Messages[platform.AckMsg])
			}
			b.ReportMetric(acks, "ack_msgs")
		})
	}
}

// BenchmarkVTSPadding measures the wire savings of VTS variable-size
// transfers over worst-case static padding (ablation A4).
func BenchmarkVTSPadding(b *testing.B) {
	for _, padded := range []bool{false, true} {
		name := "vts"
		if padded {
			name = "padded"
		}
		b.Run(name, func(b *testing.B) {
			var bytes float64
			for i := 0; i < b.N; i++ {
				p := particle.DefaultDeploy(300, 2)
				var sizeFn func(int) int
				if padded {
					bound := p.Particles * p.ParticleBytes
					sizeFn = func(int) int { return bound }
				}
				sys, err := particle.FilterSystem(p, sizeFn)
				if err != nil {
					b.Fatal(err)
				}
				dep, err := spi.Build(sys)
				if err != nil {
					b.Fatal(err)
				}
				st, err := dep.Sim.Run(50)
				if err != nil {
					b.Fatal(err)
				}
				bytes = float64(st.Bytes[platform.DataMsg])
			}
			b.ReportMetric(bytes, "data_bytes")
		})
	}
}

// ---- Kernel benchmarks: the computational actors themselves. ----

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := dsp.FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPCAnalyze(b *testing.B) {
	x := signal.Speech(256, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dsp.LPCAnalyze(x, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHuffmanEncode(b *testing.B) {
	syms := make([]uint16, 4096)
	r := signal.NewRNG(3)
	for i := range syms {
		syms[i] = uint16(r.Intn(64))
	}
	freqs := huffman.Histogram(syms, 64)
	book, err := huffman.Build(freqs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var w huffman.BitWriter
		if err := book.Encode(&w, syms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressFrame(b *testing.B) {
	codec, err := lpc.NewCodec(lpc.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	x := signal.Speech(256, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := codec.CompressFrame(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParticleStep(b *testing.B) {
	p := signal.DefaultCrackParams()
	f, err := particle.NewFilter(particle.Model{P: p}, 300, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Step(1.5)
	}
}

func BenchmarkDistributedStep(b *testing.B) {
	p := signal.DefaultCrackParams()
	d, err := particle.NewDistributed(particle.Model{P: p}, 300, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Step(1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlatformEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pc := platform.DefaultConfig(4)
		sim, err := platform.NewSim(pc)
		if err != nil {
			b.Fatal(err)
		}
		var chans []platform.ChannelID
		for p := 0; p < 3; p++ {
			ch, err := sim.AddChannel(platform.ChannelSpec{From: p, To: p + 1, Name: "c", Capacity: 2})
			if err != nil {
				b.Fatal(err)
			}
			chans = append(chans, ch)
		}
		sim.SetProgram(0, platform.Program{platform.Compute(10), platform.Send(chans[0], 16)})
		sim.SetProgram(1, platform.Program{platform.Recv(chans[0]), platform.Compute(10), platform.Send(chans[1], 16)})
		sim.SetProgram(2, platform.Program{platform.Recv(chans[1]), platform.Compute(10), platform.Send(chans[2], 16)})
		sim.SetProgram(3, platform.Program{platform.Recv(chans[2]), platform.Compute(10)})
		if _, err := sim.Run(1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPIRuntimeThroughput(b *testing.B) {
	rt := spi.NewRuntime()
	tx, rx, err := rt.Init(spi.EdgeConfig{
		ID: 1, Mode: spi.Dynamic, MaxBytes: 256, Protocol: spi.BBS, Capacity: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 128)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			if _, err := rx.Receive(); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(payload); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}

func BenchmarkResynchronizeLarge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := experiments.Fig3Graph(8)
		syncgraph.Resynchronize(g, syncgraph.ResyncOptions{})
	}
}

// BenchmarkSASvsFlat compares APGAN looped scheduling against the flat
// single-appearance baseline on the figure-2 pipeline (buffer memory is
// the metric of interest).
func BenchmarkSASvsFlat(b *testing.B) {
	g, err := lpc.FullGraph(lpc.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	var apganMem, flatMem int64
	for i := 0; i < b.N; i++ {
		sas, err := sched.SingleAppearanceSchedule(g)
		if err != nil {
			b.Fatal(err)
		}
		apganMem, err = sched.SASBufferMemory(g, sas)
		if err != nil {
			b.Fatal(err)
		}
		flat, err := sched.FlatSAS(g)
		if err != nil {
			b.Fatal(err)
		}
		flatMem, err = sched.SASBufferMemory(g, flat)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(apganMem), "apgan_buffer_bytes")
	b.ReportMetric(float64(flatMem), "flat_buffer_bytes")
}

// BenchmarkKPNThroughput measures the KPN runtime's token rate through a
// three-stage pipeline.
func BenchmarkKPNThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := kpn.NewNetwork()
		a := kpn.NewChannel[int](net, "a", 16)
		c := kpn.NewChannel[int](net, "b", 16)
		const tokens = 1000
		err := net.Run(
			func() error {
				for k := 0; k < tokens; k++ {
					if err := a.Write(k); err != nil {
						return err
					}
				}
				return nil
			},
			func() error {
				for k := 0; k < tokens; k++ {
					v, err := a.Read()
					if err != nil {
						return err
					}
					if err := c.Write(v * 2); err != nil {
						return err
					}
				}
				return nil
			},
			func() error {
				for k := 0; k < tokens; k++ {
					if _, err := c.Read(); err != nil {
						return err
					}
				}
				return nil
			},
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFraming compares header vs delimiter unpacking of a 4 KiB
// packed token (ablation A5's receiver-side cost).
func BenchmarkFraming(b *testing.B) {
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, framing := range []vts.Framing{vts.HeaderFraming, vts.DelimiterFraming} {
		b.Run(framing.String(), func(b *testing.B) {
			p := vts.NewPacker(4096, framing)
			u := vts.NewUnpacker(4096, framing)
			msg, err := p.Pack(payload)
			if err != nil {
				b.Fatal(err)
			}
			buf := append([]byte(nil), msg...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := u.Unpack(buf); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(u.ReceiverOps)/float64(b.N), "rx_ops_per_token")
		})
	}
}

// BenchmarkHardwareResidual measures the bit-true Q15 actor-D model.
func BenchmarkHardwareResidual(b *testing.B) {
	x := signal.Speech(512, 1)
	m, err := dsp.LPCAnalyze(x, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lpc.HardwareResidual(m, x)
	}
}

// BenchmarkHSDFExpansion measures firing-level expansion of a multirate
// chain.
func BenchmarkHSDFExpansion(b *testing.B) {
	g := dataflow.New("bench")
	a := g.AddActor("A", 1)
	m := g.AddActor("B", 1)
	c := g.AddActor("C", 1)
	g.AddEdge("ab", a, m, 8, 4, dataflow.EdgeSpec{})
	g.AddEdge("bc", m, c, 5, 2, dataflow.EdgeSpec{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dataflow.Expand(g); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEchoHandler feeds a transport link's inbound traffic into an SPI
// runtime for the round-trip benchmark.
type benchEchoHandler struct{ rt *spi.Runtime }

func (h *benchEchoHandler) HandleData(edge uint16, msg []byte)  { h.rt.DeliverData(edge, msg) }
func (h *benchEchoHandler) HandleAck(edge uint16, count uint32) { h.rt.DeliverAck(edge, count) }
func (h *benchEchoHandler) HandleFin(edge uint16)               { h.rt.CloseEdge(spi.EdgeID(edge)) }
func (h *benchEchoHandler) HandleLinkClose(error)               { h.rt.CloseAll() }

// BenchmarkTransportRoundTrip measures one SPI message round trip (send a
// payload on the ping edge, an echo goroutine returns it on the pong edge)
// over the three carriers of the runtime: the in-process channel queue,
// the in-memory loopback byte transport (net.Pipe framing), and real TCP
// over localhost. Payload sizes span 4 B to 64 KiB; both edges are
// SPI_dynamic under UBS, so every data message also costs an ack frame on
// the networked carriers — the full protocol, not just the bytes.
func BenchmarkTransportRoundTrip(b *testing.B) {
	const pingID, pongID = 1, 2
	sizes := []int{4, 64, 1024, 4096, 65536}

	initEdges := func(b *testing.B, rt *spi.Runtime, size int) (ping [2]interface{}, pong [2]interface{}) {
		b.Helper()
		ptx, prx, err := rt.Init(spi.EdgeConfig{ID: pingID, Mode: spi.Dynamic, MaxBytes: size, Protocol: spi.UBS})
		if err != nil {
			b.Fatal(err)
		}
		qtx, qrx, err := rt.Init(spi.EdgeConfig{ID: pongID, Mode: spi.Dynamic, MaxBytes: size, Protocol: spi.UBS})
		if err != nil {
			b.Fatal(err)
		}
		return [2]interface{}{ptx, prx}, [2]interface{}{qtx, qrx}
	}

	echo := func(rx *spi.Receiver, tx *spi.Sender, done chan<- struct{}) {
		defer close(done)
		for {
			p, err := rx.Receive()
			if err != nil {
				return
			}
			if err := tx.Send(p); err != nil {
				return
			}
		}
	}

	run := func(b *testing.B, tx *spi.Sender, rx *spi.Receiver, size int) {
		payload := make([]byte, size)
		b.SetBytes(int64(2 * size))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tx.Send(payload); err != nil {
				b.Fatal(err)
			}
			if _, err := rx.Receive(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
	}

	for _, size := range sizes {
		size := size
		b.Run(fmt.Sprintf("chan/%dB", size), func(b *testing.B) {
			rt := spi.NewRuntime()
			ping, pong := initEdges(b, rt, size)
			done := make(chan struct{})
			go echo(ping[1].(*spi.Receiver), pong[0].(*spi.Sender), done)
			run(b, ping[0].(*spi.Sender), pong[1].(*spi.Receiver), size)
			rt.CloseAll()
			<-done
		})
	}

	network := func(b *testing.B, tr transport.Transport, addr string, size int) {
		rtA, rtB := spi.NewRuntime(), spi.NewRuntime()
		pingA, pongA := initEdges(b, rtA, size)
		pingB, pongB := initEdges(b, rtB, size)

		decls := func(pingOut bool) []transport.EdgeDecl {
			return []transport.EdgeDecl{
				{ID: pingID, Mode: uint8(spi.Dynamic), Out: pingOut, Bytes: uint32(size), Protocol: uint8(spi.UBS)},
				{ID: pongID, Mode: uint8(spi.Dynamic), Out: !pingOut, Bytes: uint32(size), Protocol: uint8(spi.UBS)},
			}
		}
		ln, err := tr.Listen(addr)
		if err != nil {
			b.Fatal(err)
		}
		type accepted struct {
			l   *transport.Link
			err error
		}
		acceptCh := make(chan accepted, 1)
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				acceptCh <- accepted{nil, err}
				return
			}
			l, err := transport.AcceptLink(conn, transport.LinkConfig{Node: 1},
				func(int) ([]transport.EdgeDecl, transport.Handler, error) {
					return decls(false), &benchEchoHandler{rt: rtB}, nil
				})
			acceptCh <- accepted{l, err}
		}()
		conn, err := transport.DialRetry(context.Background(), tr, ln.Addr(), transport.RetryConfig{})
		if err != nil {
			b.Fatal(err)
		}
		linkA, err := transport.NewLink(conn, transport.LinkConfig{Node: 0, Edges: decls(true)}, &benchEchoHandler{rt: rtA})
		if err != nil {
			b.Fatal(err)
		}
		acc := <-acceptCh
		if acc.err != nil {
			b.Fatal(acc.err)
		}
		linkB := acc.l
		ln.Close()

		for _, bind := range []error{
			rtA.BindRemoteSender(pingID, linkA), rtA.BindRemoteReceiver(pongID, linkA),
			rtB.BindRemoteReceiver(pingID, linkB), rtB.BindRemoteSender(pongID, linkB),
		} {
			if bind != nil {
				b.Fatal(bind)
			}
		}

		done := make(chan struct{})
		go echo(pingB[1].(*spi.Receiver), pongB[0].(*spi.Sender), done)
		run(b, pingA[0].(*spi.Sender), pongA[1].(*spi.Receiver), size)

		var wg sync.WaitGroup
		for _, l := range []*transport.Link{linkA, linkB} {
			wg.Add(1)
			go func(l *transport.Link) { defer wg.Done(); l.Close() }(l)
		}
		wg.Wait()
		rtA.CloseAll()
		rtB.CloseAll()
		<-done
	}

	for _, size := range sizes {
		size := size
		b.Run(fmt.Sprintf("loopback/%dB", size), func(b *testing.B) {
			network(b, transport.NewLoopback(), "bench", size)
		})
	}
	for _, size := range sizes {
		size := size
		b.Run(fmt.Sprintf("tcp/%dB", size), func(b *testing.B) {
			network(b, &transport.TCP{}, "127.0.0.1:0", size)
		})
	}
}

// BenchmarkLinkThroughput measures one-way streaming throughput of small
// tokens — the hot path the write coalescer exists for. A sender streams
// b.N dynamic UBS messages on one edge while the peer drains them with
// ReceiveInto; tokens_per_s is the headline metric and allocs/op (run
// with -benchmem) shows the pooled send/receive path staying
// allocation-free. Each networked carrier runs unbatched (one write per
// frame), batched (frame coalescing + ack piggybacking), blocked
// (vectorized execution: 16 tokens packed into one slab message on top of
// the batched tuning, so headers, credits, and acks are paid once per
// block), and heartbeat (the blocked tuning with liveness probing
// enabled: pings only fire on idle links, so under saturation the tier
// measures the per-frame last-heard tracking and pinger-ticker cost —
// the heartbeat_overhead evidence that liveness is near-free on the hot
// path), and resync (the blocked tuning with the edge in the negotiated
// ack-suppression set, so the receiver emits no UBS acks at all —
// acks_suppressed_per_msg is the resync_vs_blocked evidence that the §4
// verdict removes the remaining ack traffic); the chan carrier is the
// in-process upper bound.
func BenchmarkLinkThroughput(b *testing.B) {
	const edgeID = 1
	const size = 16
	const blockTokens = 16

	drain := func(rx *spi.Receiver, n int, done chan<- struct{}) {
		defer close(done)
		buf := make([]byte, 0, size)
		for i := 0; i < n; i++ {
			p, err := rx.ReceiveInto(buf)
			if err != nil {
				return
			}
			buf = p[:0]
		}
	}
	stream := func(b *testing.B, tx *spi.Sender, rx *spi.Receiver) {
		payload := make([]byte, size)
		done := make(chan struct{})
		b.SetBytes(size)
		b.ReportAllocs()
		b.ResetTimer()
		go drain(rx, b.N, done)
		for i := 0; i < b.N; i++ {
			if err := tx.Send(payload); err != nil {
				b.Fatal(err)
			}
		}
		<-done
		b.StopTimer()
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(b.N)/s, "tokens_per_s")
		}
	}

	b.Run("chan", func(b *testing.B) {
		rt := spi.NewRuntime()
		tx, rx, err := rt.Init(spi.EdgeConfig{ID: edgeID, Mode: spi.Dynamic, MaxBytes: size, Protocol: spi.UBS})
		if err != nil {
			b.Fatal(err)
		}
		stream(b, tx, rx)
		rt.CloseAll()
	})

	// streamBlocked packs blockTokens tokens into one slab per message —
	// the wire pattern of vectorized (-block) execution — and reports
	// throughput in tokens, not slabs.
	streamBlocked := func(b *testing.B, tx *spi.Sender, rx *spi.Receiver) {
		payload := make([]byte, size)
		tokens := make([][]byte, blockTokens)
		for i := range tokens {
			tokens[i] = payload
		}
		slab, err := spi.PackSlab(nil, tokens, size, true)
		if err != nil {
			b.Fatal(err)
		}
		blocks := (b.N + blockTokens - 1) / blockTokens
		done := make(chan struct{})
		b.SetBytes(size)
		b.ReportAllocs()
		b.ResetTimer()
		go func() {
			defer close(done)
			buf := make([]byte, 0, len(slab))
			views := make([][]byte, blockTokens)
			for i := 0; i < blocks; i++ {
				p, err := rx.ReceiveInto(buf)
				if err != nil {
					return
				}
				if _, err := spi.UnpackSlab(p, blockTokens, size, true, views[:0]); err != nil {
					b.Error(err)
					return
				}
				buf = p[:0]
			}
		}()
		for i := 0; i < blocks; i++ {
			if err := tx.Send(slab); err != nil {
				b.Fatal(err)
			}
		}
		<-done
		b.StopTimer()
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(b.N)/s, "tokens_per_s")
		}
	}

	network := func(b *testing.B, tr transport.Transport, addr string, mode string) {
		batched := mode != "unbatched"
		blocked := mode == "blocked" || mode == "heartbeat" || mode == "resync"
		maxBytes := size
		if blocked {
			maxBytes = spi.SlabBound(size, true, blockTokens)
		}
		rtA, rtB := spi.NewRuntime(), spi.NewRuntime()
		tx, _, err := rtA.Init(spi.EdgeConfig{ID: edgeID, Mode: spi.Dynamic, MaxBytes: maxBytes, Protocol: spi.UBS})
		if err != nil {
			b.Fatal(err)
		}
		_, rx, err := rtB.Init(spi.EdgeConfig{ID: edgeID, Mode: spi.Dynamic, MaxBytes: maxBytes, Protocol: spi.UBS})
		if err != nil {
			b.Fatal(err)
		}
		decls := func(out bool) []transport.EdgeDecl {
			return []transport.EdgeDecl{
				{ID: edgeID, Mode: uint8(spi.Dynamic), Out: out, Bytes: uint32(maxBytes), Protocol: uint8(spi.UBS)},
			}
		}
		tune := func(cfg *transport.LinkConfig) {
			// A one-way stream at slab rates fills the default 256-frame
			// resend window and then paces on cumulative-ack round trips,
			// which would make every pairwise tier measure flow-control
			// latency coupling instead of the protocol cost it isolates;
			// the same generous window for every mode takes that variable
			// out of all of them.
			cfg.ResendLimit = 4096
			if batched {
				cfg.Batch = transport.BatchConfig{MaxFrames: 32, MaxBytes: 64 << 10, MaxDelay: 100 * time.Microsecond}
				cfg.PiggybackAcks = true
			}
			cfg.Blocked = blocked
			if mode == "heartbeat" {
				// An aggressive interval so the pinger ticker runs hot;
				// the generous peer timeout keeps a slow CI box from
				// tearing the benchmark link down mid-run.
				cfg.Heartbeat = 5 * time.Millisecond
				cfg.PeerTimeout = 2 * time.Second
			}
			if mode == "resync" {
				cfg.ResyncEdges = []uint16{edgeID}
			}
		}
		ln, err := tr.Listen(addr)
		if err != nil {
			b.Fatal(err)
		}
		linkCh := make(chan *transport.Link, 1)
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				b.Error(err)
				linkCh <- nil
				return
			}
			cfg := transport.LinkConfig{Node: 1}
			tune(&cfg)
			l, err := transport.AcceptLink(conn, cfg,
				func(int) ([]transport.EdgeDecl, transport.Handler, error) {
					return decls(false), &benchEchoHandler{rt: rtB}, nil
				})
			if err != nil {
				b.Error(err)
			}
			linkCh <- l
		}()
		conn, err := transport.DialRetry(context.Background(), tr, ln.Addr(), transport.RetryConfig{})
		if err != nil {
			b.Fatal(err)
		}
		cfg := transport.LinkConfig{Node: 0, Edges: decls(true)}
		tune(&cfg)
		linkA, err := transport.NewLink(conn, cfg, &benchEchoHandler{rt: rtA})
		if err != nil {
			b.Fatal(err)
		}
		linkB := <-linkCh
		if linkB == nil {
			b.FailNow()
		}
		ln.Close()
		if err := rtA.BindRemoteSender(edgeID, linkA); err != nil {
			b.Fatal(err)
		}
		if err := rtB.BindRemoteReceiver(edgeID, linkB); err != nil {
			b.Fatal(err)
		}
		if blocked {
			streamBlocked(b, tx, rx)
		} else {
			stream(b, tx, rx)
		}
		// Ablation A8 evidence: the receiver acknowledges every UBS
		// message, so its standalone-ACK-frame count against the sender's
		// wire-write count shows what coalescing and piggybacking remove.
		sa, sb := linkA.Stats(), linkB.Stats()
		writes := float64(sa.FramesSent)
		if batched {
			writes = float64(sa.BatchFlushes)
		}
		b.ReportMetric(writes/float64(b.N), "writes_per_msg")
		b.ReportMetric(float64(sb.AcksSent)/float64(b.N), "ack_frames_per_msg")
		b.ReportMetric(float64(sb.AcksPiggybacked)/float64(b.N), "acks_piggybacked_per_msg")
		if mode == "heartbeat" {
			// A saturated link is never idle, so this stays near zero —
			// evidence the protocol adds no wire traffic under load.
			b.ReportMetric(float64(sa.PingsSent+sb.PingsSent)/float64(b.N), "pings_per_msg")
		}
		if mode == "resync" {
			// Every UBS message still triggers a SendAck; with the edge in
			// the negotiated suppression set none of them reach the wire.
			b.ReportMetric(float64(sb.AcksSuppressed)/float64(b.N), "acks_suppressed_per_msg")
		}
		var wg sync.WaitGroup
		for _, l := range []*transport.Link{linkA, linkB} {
			wg.Add(1)
			go func(l *transport.Link) { defer wg.Done(); l.Close() }(l)
		}
		wg.Wait()
		rtA.CloseAll()
		rtB.CloseAll()
	}

	for _, mode := range []string{"unbatched", "batched", "blocked", "heartbeat", "resync"} {
		mode := mode
		b.Run("loopback/"+mode, func(b *testing.B) {
			network(b, transport.NewLoopback(), "throughput-bench", mode)
		})
		b.Run("tcp/"+mode, func(b *testing.B) {
			network(b, &transport.TCP{}, "127.0.0.1:0", mode)
		})
	}
}

// BenchmarkVectorizedExecute measures end-to-end blocked execution on the
// in-process runtime: a two-processor producer/consumer chain of 16-byte
// tokens run through ExecuteBlocked at several blocking factors. block=1
// is the scalar baseline; larger blocks amortize per-message queue
// rounds, credits, and acks across the slab (experiment A9).
func BenchmarkVectorizedExecute(b *testing.B) {
	const size = 16
	for _, block := range []int{1, 4, 16} {
		block := block
		b.Run(fmt.Sprintf("block=%d", block), func(b *testing.B) {
			g := dataflow.New("vecbench")
			src := g.AddActor("src", 1)
			snk := g.AddActor("snk", 1)
			g.AddEdge("e", src, snk, 1, 1, dataflow.EdgeSpec{TokenBytes: size})
			m := &sched.Mapping{
				NumProcs: 2,
				Proc:     []sched.Processor{0, 1},
				Order:    [][]dataflow.ActorID{{src}, {snk}},
			}
			payload := make([]byte, size)
			kernels := map[dataflow.ActorID]spi.Kernel{
				src: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
					return map[dataflow.EdgeID][]byte{0: payload}, nil
				},
				snk: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
					return nil, nil
				},
			}
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := spi.ExecuteBlocked(g, m, kernels, b.N, spi.VecOptions{Block: block}); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N)/s, "tokens_per_s")
			}
		})
	}
}

// BenchmarkObsOverhead quantifies the cost of full observability — per-edge
// counters, gauges, and trace-ring events on every message — on the SPI
// round trip (experiment A7). Each carrier runs bare and then observed;
// the acceptance bar is <5% added latency on the networked (loopback)
// path, where a round trip already pays framing, mux, and ack costs. The
// in-process chan path is included for scale: its sub-microsecond trips
// make the same absolute cost loom larger.
func BenchmarkObsOverhead(b *testing.B) {
	const pingID, pongID, size = 1, 2, 64

	initEdges := func(b *testing.B, rt *spi.Runtime) (ptx *spi.Sender, prx *spi.Receiver, qtx *spi.Sender, qrx *spi.Receiver) {
		b.Helper()
		ptx, prx, err := rt.Init(spi.EdgeConfig{ID: pingID, Name: "ping", Mode: spi.Dynamic, MaxBytes: size, Protocol: spi.UBS})
		if err != nil {
			b.Fatal(err)
		}
		qtx, qrx, err = rt.Init(spi.EdgeConfig{ID: pongID, Name: "pong", Mode: spi.Dynamic, MaxBytes: size, Protocol: spi.UBS})
		if err != nil {
			b.Fatal(err)
		}
		return ptx, prx, qtx, qrx
	}
	echo := func(rx *spi.Receiver, tx *spi.Sender, done chan<- struct{}) {
		defer close(done)
		for {
			p, err := rx.Receive()
			if err != nil {
				return
			}
			if err := tx.Send(p); err != nil {
				return
			}
		}
	}
	run := func(b *testing.B, tx *spi.Sender, rx *spi.Receiver) {
		payload := make([]byte, size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tx.Send(payload); err != nil {
				b.Fatal(err)
			}
			if _, err := rx.Receive(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
	}

	chanTrip := func(b *testing.B, o *obs.Observer) {
		rt := spi.NewRuntime()
		rt.SetObserver(o)
		ptx, prx, qtx, qrx := initEdges(b, rt)
		done := make(chan struct{})
		go echo(prx, qtx, done)
		run(b, ptx, qrx)
		rt.CloseAll()
		<-done
	}
	netTrip := func(b *testing.B, tr transport.Transport, addr string, oA, oB *obs.Observer) {
		rtA, rtB := spi.NewRuntime(), spi.NewRuntime()
		rtA.SetObserver(oA)
		rtB.SetObserver(oB)
		ptxA, _, _, qrxA := initEdges(b, rtA)
		_, prxB, qtxB, _ := initEdges(b, rtB)
		decls := func(pingOut bool) []transport.EdgeDecl {
			return []transport.EdgeDecl{
				{ID: pingID, Mode: uint8(spi.Dynamic), Out: pingOut, Bytes: size, Protocol: uint8(spi.UBS)},
				{ID: pongID, Mode: uint8(spi.Dynamic), Out: !pingOut, Bytes: size, Protocol: uint8(spi.UBS)},
			}
		}
		ln, err := tr.Listen(addr)
		if err != nil {
			b.Fatal(err)
		}
		linkCh := make(chan *transport.Link, 1)
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				b.Error(err)
				linkCh <- nil
				return
			}
			l, err := transport.AcceptLink(conn, transport.LinkConfig{Node: 1, Obs: oB},
				func(int) ([]transport.EdgeDecl, transport.Handler, error) {
					return decls(false), &benchEchoHandler{rt: rtB}, nil
				})
			if err != nil {
				b.Error(err)
			}
			linkCh <- l
		}()
		conn, err := transport.DialRetry(context.Background(), tr, ln.Addr(), transport.RetryConfig{})
		if err != nil {
			b.Fatal(err)
		}
		linkA, err := transport.NewLink(conn, transport.LinkConfig{Node: 0, Edges: decls(true), Obs: oA}, &benchEchoHandler{rt: rtA})
		if err != nil {
			b.Fatal(err)
		}
		linkB := <-linkCh
		if linkB == nil {
			b.FailNow()
		}
		ln.Close()
		for _, bind := range []error{
			rtA.BindRemoteSender(pingID, linkA), rtA.BindRemoteReceiver(pongID, linkA),
			rtB.BindRemoteReceiver(pingID, linkB), rtB.BindRemoteSender(pongID, linkB),
		} {
			if bind != nil {
				b.Fatal(bind)
			}
		}
		done := make(chan struct{})
		go echo(prxB, qtxB, done)
		run(b, ptxA, qrxA)
		var wg sync.WaitGroup
		for _, l := range []*transport.Link{linkA, linkB} {
			wg.Add(1)
			go func(l *transport.Link) { defer wg.Done(); l.Close() }(l)
		}
		wg.Wait()
		rtA.CloseAll()
		rtB.CloseAll()
		<-done
	}

	// obs.New uses the production wall clock; the seeded test clock would
	// add a mutex per timestamp that real runs never pay. The metrics
	// variant (registry but no tracer) isolates counter cost from
	// trace-ring cost. The acceptance bar applies to the tcp pair — the
	// carrier spinode deployments actually run on; chan and loopback trips
	// are synchronous in-process handoffs that amplify the same absolute
	// cost into a larger ratio.
	metricsOnly := func() *obs.Observer { return &obs.Observer{Metrics: obs.NewRegistry()} }
	lo := transport.NewLoopback()
	b.Run("chan/bare", func(b *testing.B) { chanTrip(b, nil) })
	b.Run("chan/observed", func(b *testing.B) { chanTrip(b, obs.New()) })
	b.Run("loopback/bare", func(b *testing.B) { netTrip(b, lo, "obs-bench", nil, nil) })
	b.Run("loopback/metrics", func(b *testing.B) { netTrip(b, lo, "obs-bench", metricsOnly(), metricsOnly()) })
	b.Run("loopback/observed", func(b *testing.B) { netTrip(b, lo, "obs-bench", obs.New(), obs.New()) })
	b.Run("tcp/bare", func(b *testing.B) { netTrip(b, &transport.TCP{}, "127.0.0.1:0", nil, nil) })
	b.Run("tcp/observed", func(b *testing.B) { netTrip(b, &transport.TCP{}, "127.0.0.1:0", obs.New(), obs.New()) })
}

// BenchmarkOrch measures the cost of elasticity: the same 3-processor
// signal chain run statically in-process (<name>/static) and under the
// internal/orch coordinator with a 3-worker pool (<name>/elastic),
// including one planned live migration (placement rotation at epoch 1)
// and one worker death (kill at epoch 2) once b.N spans enough epochs.
// tokens_per_s is the headline pair metric; the elastic side also
// reports migrations, migration_downtime_tokens (iterations that had to
// be re-executed because an epoch aborted — the stall a client would
// observe), and recovery_ns (abort-to-redispatch wall time).
// cmd/benchdiff pairs the two as the elastic_vs_static tier.
func BenchmarkOrch(b *testing.B) {
	const seed = 3
	mk := func(b *testing.B) (*dataflow.Graph, *sched.Mapping) {
		b.Helper()
		g := dataflow.New("orchbench")
		src := g.AddActor("src", 1)
		fir := g.AddActor("fir", 1)
		snk := g.AddActor("snk", 1)
		g.AddEdge("sf", src, fir, 1, 1, dataflow.EdgeSpec{TokenBytes: 32, Delay: 1})
		g.AddEdge("fs", fir, snk, 1, 1, dataflow.EdgeSpec{TokenBytes: 32})
		m, err := demo.Mapping(g, []int{0, 1, 2})
		if err != nil {
			b.Fatal(err)
		}
		return g, m
	}

	b.Run("pool=3/static", func(b *testing.B) {
		g, m := mk(b)
		digests := demo.Sinks(g)
		var mu sync.Mutex
		kernels, err := demo.Kernels(g, seed, digests, &mu)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		if _, err := spi.Execute(g, m, kernels, b.N); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(b.N)/s, "tokens_per_s")
		}
	})

	b.Run("pool=3/elastic", func(b *testing.B) {
		g, m := mk(b)
		tr := transport.NewLoopback()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		stops := map[string]context.CancelFunc{}
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("w%d", i)
			wk, err := orch.NewWorker(orch.WorkerConfig{
				Transport: tr, Coord: "bench-coord", Name: name,
				Kernels: func(spec *spi.PartitionSpec) (*orch.KernelSet, error) {
					kernels, sinks := demo.PartKernels(spec, seed)
					return &orch.KernelSet{Kernels: kernels, Collect: sinks.Take}, nil
				},
				Retry: transport.RetryConfig{Attempts: 50, BaseDelay: time.Millisecond,
					MaxDelay: 5 * time.Millisecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			wctx, wcancel := context.WithCancel(ctx)
			defer wcancel()
			stops[name] = wcancel
			go wk.Run(wctx)
		}
		var killOnce sync.Once
		coord, err := orch.NewCoordinator(orch.CoordConfig{
			Transport: tr, Addr: "bench-coord", Graph: g, Mapping: m,
			Iterations: b.N, EpochIters: 64, MinWorkers: 3,
			EpochTimeout: 30 * time.Second,
			OnPlace: func(epoch int, placement []int, ids []uint32) []int {
				if epoch != 1 || len(ids) < 2 {
					return placement
				}
				rotated := make([]int, len(placement))
				for p, slot := range placement {
					rotated[p] = (slot + 1) % len(ids)
				}
				return rotated
			},
			OnDispatch: func(epoch int) {
				if epoch == 2 {
					killOnce.Do(stops["w2"])
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		rep, err := coord.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(b.N)/s, "tokens_per_s")
		}
		b.ReportMetric(float64(rep.Migrations), "migrations")
		b.ReportMetric(float64(rep.StalledTokens), "migration_downtime_tokens")
		b.ReportMetric(float64(rep.RecoveryNS), "recovery_ns")
	})
}

// BenchmarkFission regenerates the paper's speedup methodology for the
// AUTOMATIC parallelization: the serial actor-D pipeline against its
// dataflow.Fission rewrite. The modeled pair prices both deployments on
// the platform simulator — exactly how BenchmarkFig6 produces the
// figure's hand-parallelized speedup curve, but at a sample size an
// order of magnitude past the paper's largest point and with the
// deployment derived by the fission pass instead of written by hand.
// tokens_per_s is samples over simulated frame time, so the pair's ratio
// is the speedup curve's y value at this N. The wire pair then runs the
// fissioned deployment for real across two OS-visible endpoints — I/O on
// node 0, scatter/gather and replicas on node 1 — over localhost TCP and
// over the shared-memory ring transport, so the same-host transport
// choice is priced in wall-clock terms on the identical workload.
func BenchmarkFission(b *testing.B) {
	const (
		sampleN  = 8192 // paper's fig. 6 tops out at 512 samples
		replicas = 4
	)
	b.Run(fmt.Sprintf("modeled-N%d/serial", sampleN), func(b *testing.B) {
		var us float64
		for i := 0; i < b.N; i++ {
			sys, err := lpc.SerialErrorGenSystem(lpc.DefaultDeploy(sampleN, 1))
			if err != nil {
				b.Fatal(err)
			}
			us = simulateUsPerIter(b, sys)
		}
		b.ReportMetric(us, "simulated_us_per_frame")
		b.ReportMetric(float64(sampleN)*1e6/us, "tokens_per_s")
	})
	b.Run(fmt.Sprintf("modeled-N%d/fission", sampleN), func(b *testing.B) {
		var us float64
		k := 0
		for i := 0; i < b.N; i++ {
			fs, err := lpc.FissionErrorGenSystem(lpc.DefaultDeploy(sampleN, 1), replicas, 0)
			if err != nil {
				b.Fatal(err)
			}
			k = fs.Plan.K
			us = simulateUsPerIter(b, &spi.System{Graph: fs.Plan.Graph, Mapping: fs.Mapping})
		}
		b.ReportMetric(us, "simulated_us_per_frame")
		b.ReportMetric(float64(sampleN)*1e6/us, "tokens_per_s")
		b.ReportMetric(float64(k), "replicas")
	})

	const wireN = 2048
	frame := signal.Speech(wireN, 77)
	model, err := dsp.LPCAnalyze(frame, 10)
	if err != nil {
		b.Fatal(err)
	}
	wire := func(b *testing.B, tr transport.Transport, listenAddr string) {
		ln, err := tr.Listen(listenAddr)
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		addrs := []string{ln.Addr(), "unused"}
		var (
			errs [2]error
			got  []float64
			wg   sync.WaitGroup
		)
		b.ResetTimer()
		for node := 0; node < 2; node++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				opts := spi.DistOptions{
					Transport: tr,
					Node:      node,
					Addrs:     addrs,
					Retry: transport.RetryConfig{Attempts: 20, BaseDelay: time.Millisecond,
						MaxDelay: 5 * time.Millisecond},
				}
				if node == 0 {
					opts.Listener = ln
				}
				var res []float64
				res, _, errs[node] = lpc.FissionResidual(model, frame, replicas, b.N, opts)
				if node == 0 {
					got = res
				}
			}(node)
		}
		wg.Wait()
		b.StopTimer()
		for node, err := range errs {
			if err != nil {
				b.Fatalf("node %d: %v", node, err)
			}
		}
		if len(got) != wireN {
			b.Fatalf("assembled %d samples, want %d", len(got), wireN)
		}
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(wireN)*float64(b.N)/s, "tokens_per_s")
		}
		b.ReportMetric(float64(replicas), "replicas")
	}
	b.Run(fmt.Sprintf("wire-N%d-k%d/tcp", wireN, replicas), func(b *testing.B) {
		wire(b, &transport.TCP{}, "127.0.0.1:0")
	})
	b.Run(fmt.Sprintf("wire-N%d-k%d/shm", wireN, replicas), func(b *testing.B) {
		wire(b, transport.NewShm(b.TempDir()), "fission-bench0")
	})
}
