package hdl

// Timing model: each module carries a combinational logic depth (LUT
// levels between registers); the achievable clock is set by the deepest
// path anywhere in the hierarchy. This stands in for a synthesis tool's
// static timing analysis and reproduces the paper's observation that "the
// FPGA board could support a clock frequency of 500 MHz, [but] this
// frequency could not be attained in most cases": realistic datapaths have
// multi-level logic that caps the clock well below the fabric maximum.

// Virtex-4-class timing constants (speed grade -10-ish, first order).
const (
	// LUTLevelNS is the delay of one LUT level plus local routing.
	LUTLevelNS = 0.65
	// ClockOverheadNS covers clock-to-out, setup, and global routing.
	ClockOverheadNS = 1.0
	// FabricMaxMHz is the board/fabric ceiling the paper mentions.
	FabricMaxMHz = 500.0
)

// SetDepth records the module's own combinational depth in LUT levels and
// returns m for chaining.
func (m *Module) SetDepth(levels int) *Module {
	if levels < 0 {
		levels = 0
	}
	m.ownDepth = levels
	return m
}

// Depth returns the maximum combinational depth of the module and its
// descendants.
func (m *Module) Depth() int {
	d := m.ownDepth
	for _, c := range m.children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d
}

// FmaxMHz estimates the achievable clock frequency of the module tree:
// limited by the deepest combinational path, capped at the fabric maximum.
func (m *Module) FmaxMHz() float64 {
	d := m.Depth()
	periodNS := ClockOverheadNS + float64(d)*LUTLevelNS
	f := 1000.0 / periodNS
	if f > FabricMaxMHz {
		return FabricMaxMHz
	}
	return f
}

// log4ceil returns ceil(log4(n)) for n >= 1 — the natural LUT-tree depth of
// an n-input function built from 4-input LUTs.
func log4ceil(n int) int {
	d := 0
	width := 1
	for width < n {
		width *= 4
		d++
	}
	return d
}
