package sched

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
)

// Looped single-appearance schedule (SAS) synthesis. A SAS is a nested-loop
// schedule in which each actor appears exactly once — the minimal-code-size
// organization for software synthesis from SDF graphs. The clustering
// heuristic is APGAN (acyclic pairwise grouping of adjacent nodes): merge
// the adjacent cluster pair with the largest repetition-count gcd, subject
// to the clustered graph remaining acyclic; large gcds maximize loop reuse
// and reduce buffering between the clusters.

// LoopNode is one node of a looped-schedule tree: a leaf fires an actor, an
// internal node repeats its body in sequence.
type LoopNode struct {
	// Count is the iteration count of this loop.
	Count int64
	// Actor is the fired actor for leaves; NoActor for internal nodes.
	Actor dataflow.ActorID
	// Body is the ordered sub-schedule of an internal node.
	Body []*LoopNode
}

// IsLeaf reports whether the node fires a single actor.
func (n *LoopNode) IsLeaf() bool { return n.Actor != dataflow.NoActor }

// Notation renders the schedule in the standard looped notation, e.g.
// "(2 (3 A) B)" — repeat twice: fire A three times, then B once.
func (n *LoopNode) Notation(g *dataflow.Graph) string {
	var b strings.Builder
	n.render(g, &b)
	return b.String()
}

func (n *LoopNode) render(g *dataflow.Graph, b *strings.Builder) {
	if n.IsLeaf() {
		if n.Count != 1 {
			fmt.Fprintf(b, "(%d %s)", n.Count, g.Actor(n.Actor).Name)
		} else {
			b.WriteString(g.Actor(n.Actor).Name)
		}
		return
	}
	if n.Count != 1 {
		fmt.Fprintf(b, "(%d ", n.Count)
	}
	for i, c := range n.Body {
		if i > 0 {
			b.WriteString(" ")
		}
		c.render(g, b)
	}
	if n.Count != 1 {
		b.WriteString(")")
	}
}

// Flatten expands the loop tree into a flat firing sequence.
func (n *LoopNode) Flatten() dataflow.FlatSchedule {
	var out dataflow.FlatSchedule
	n.flatten(&out)
	return out
}

func (n *LoopNode) flatten(out *dataflow.FlatSchedule) {
	for i := int64(0); i < n.Count; i++ {
		if n.IsLeaf() {
			*out = append(*out, n.Actor)
		} else {
			for _, c := range n.Body {
				c.flatten(out)
			}
		}
	}
}

// Appearances counts actor appearances in the tree; a SAS has exactly one
// per actor.
func (n *LoopNode) Appearances() int {
	if n.IsLeaf() {
		return 1
	}
	total := 0
	for _, c := range n.Body {
		total += c.Appearances()
	}
	return total
}

// cluster is a node of the APGAN clustering graph.
type cluster struct {
	reps int64
	node *LoopNode
}

// SingleAppearanceSchedule builds a looped single-appearance schedule for a
// consistent SDF graph whose zero-delay precedence structure is acyclic
// (delay-broken cycles are fine: the delays must cover one full iteration's
// consumption, which the flat admissibility check verifies at the end).
//
// The returned tree fires each actor exactly once; flattening it yields a
// valid PASS.
func SingleAppearanceSchedule(g *dataflow.Graph) (*LoopNode, error) {
	q, err := g.RepetitionsVector()
	if err != nil {
		return nil, err
	}
	n := g.NumActors()
	if n == 0 {
		return nil, fmt.Errorf("sched: empty graph")
	}

	// Clustered-graph state: parent-union over actors, per-cluster loop
	// trees, and a dynamic adjacency/reachability view computed on demand.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	clusters := make(map[int]*cluster, n)
	for i := 0; i < n; i++ {
		clusters[i] = &cluster{
			reps: q[i],
			node: &LoopNode{Count: 1, Actor: dataflow.ActorID(i)},
		}
	}

	// edgesBetween reports whether any dataflow edge connects the two
	// clusters, and the direction(s).
	type pair struct{ a, b int }
	clusterEdges := func() map[pair]bool {
		out := make(map[pair]bool)
		for _, eid := range g.Edges() {
			e := g.Edge(eid)
			ca, cb := find(int(e.Src)), find(int(e.Snk))
			if ca != cb {
				out[pair{ca, cb}] = true
			}
		}
		return out
	}
	// reach reports whether dst is reachable from src in the cluster graph
	// excluding direct src->dst edges (used for the acyclicity check:
	// merging src and dst is illegal if another path connects them, since
	// the merged node would close a cycle with that path).
	reach := func(edges map[pair]bool, src, dst int) bool {
		visited := map[int]bool{src: true}
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for e := range edges {
				if e.a != v || (v == src && e.b == dst) {
					continue
				}
				if e.b == dst {
					return true
				}
				if !visited[e.b] {
					visited[e.b] = true
					queue = append(queue, e.b)
				}
			}
		}
		return false
	}

	for len(clusters) > 1 {
		edges := clusterEdges()
		if len(edges) == 0 {
			// Disconnected components: merge arbitrarily (sequence them).
			var ids []int
			for id := range clusters {
				ids = append(ids, id)
			}
			// deterministic order
			for i := 0; i < len(ids); i++ {
				for j := i + 1; j < len(ids); j++ {
					if ids[j] < ids[i] {
						ids[i], ids[j] = ids[j], ids[i]
					}
				}
			}
			a, b := ids[0], ids[1]
			mergeClusters(clusters, parent, find, a, b, a)
			continue
		}
		// Pick the mergeable adjacent pair with the largest gcd of reps.
		bestG := int64(-1)
		var bestA, bestB int
		for e := range edges {
			if edges[pair{e.b, e.a}] && e.b < e.a {
				continue // consider each unordered pair once, from the lower id
			}
			if reach(edges, e.a, e.b) || reach(edges, e.b, e.a) {
				continue // would close a cycle
			}
			gcd := gcd64s(clusters[e.a].reps, clusters[e.b].reps)
			if gcd > bestG || (gcd == bestG && (e.a < bestA || (e.a == bestA && e.b < bestB))) {
				bestG, bestA, bestB = gcd, e.a, e.b
			}
		}
		if bestG < 0 {
			return nil, fmt.Errorf("sched: clustering stuck (tightly interdependent cycles); no SAS without delay analysis")
		}
		// Order the merged body by data direction: producer first.
		first, second := bestA, bestB
		if edges[pair{bestB, bestA}] && !edges[pair{bestA, bestB}] {
			first, second = bestB, bestA
		}
		mergeClusters(clusters, parent, find, first, second, bestA)
	}
	var root *LoopNode
	for _, c := range clusters {
		root = c.node
	}
	// Sanity: the flattened schedule must be admissible and return the
	// graph to its initial state.
	ok, err := g.ScheduleReturnsToInitialState(root.Flatten())
	if err != nil {
		return nil, fmt.Errorf("sched: SAS not admissible: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("sched: SAS does not return the graph to its initial state")
	}
	return root, nil
}

// mergeClusters merges cluster `second` into a new cluster rooted at
// `keep`, with body order (first, second).
func mergeClusters(clusters map[int]*cluster, parent []int, find func(int) int, first, second, keep int) {
	a, b := clusters[first], clusters[second]
	g := gcd64s(a.reps, b.reps)
	na := cloneWithCount(a.node, a.reps/g)
	nb := cloneWithCount(b.node, b.reps/g)
	merged := &cluster{
		reps: g,
		node: &LoopNode{Count: 1, Actor: dataflow.NoActor, Body: []*LoopNode{na, nb}},
	}
	other := first
	if keep == first {
		other = second
	}
	parent[other] = keep
	delete(clusters, other)
	clusters[keep] = merged
}

// cloneWithCount scales a loop tree by an outer factor, folding the factor
// into the node when possible.
func cloneWithCount(n *LoopNode, factor int64) *LoopNode {
	if factor == 1 {
		return n
	}
	return &LoopNode{Count: factor * n.Count, Actor: n.Actor, Body: n.Body}
}

func gcd64s(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// SASBufferMemory returns the total buffer bytes of a looped schedule: the
// per-edge maximum token occupancy of the flattened schedule times the
// token size.
func SASBufferMemory(g *dataflow.Graph, root *LoopNode) (int64, error) {
	bounds, err := g.BufferBounds(root.Flatten())
	if err != nil {
		return 0, err
	}
	var total int64
	for eid, tokens := range bounds {
		total += tokens * int64(g.Edge(eid).TokenBytes)
	}
	return total, nil
}

// FlatSAS returns the trivial single-appearance schedule in topological
// order: (q[a1] a1)(q[a2] a2)... — the baseline APGAN improves on.
func FlatSAS(g *dataflow.Graph) (*LoopNode, error) {
	q, err := g.RepetitionsVector()
	if err != nil {
		return nil, err
	}
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	root := &LoopNode{Count: 1, Actor: dataflow.NoActor}
	for _, a := range order {
		root.Body = append(root.Body, &LoopNode{Count: q[a], Actor: a})
	}
	return root, nil
}
