package main

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/dataflow"
	"repro/internal/demo"
	"repro/internal/session"
	"repro/internal/spi"
	"repro/internal/transport"
)

// startInproc runs a minimal session server inside the spiload process
// so a load run needs no external spinode: the server side of the graph
// is computed from -assign/-nodeof exactly as spinode -serve would, and
// the returned address is what the load loop dials over tr. listenAddr
// names the server endpoint on tr (any string for loopback, a host:port
// for TCP). The stop function tears the server down.
func startInproc(cfg loadConfig, tr transport.Transport, listenAddr string, maxSessions, tenantQuota int, w io.Writer) (func(), string, error) {
	g := cfg.Graph
	m, err := demo.Mapping(g, cfg.Assign)
	if err != nil {
		return nil, "", err
	}
	nodeOf := cfg.NodeOf
	if nodeOf == nil {
		nodeOf = make([]int, m.NumProcs)
		for p := range nodeOf {
			nodeOf[p] = p
		}
	}
	// The server is the single peer the client shares edges with.
	cdecls, err := spi.PeerDecls(g, m, nodeOf, cfg.Node, 0)
	if err != nil {
		return nil, "", err
	}
	if len(cdecls) != 1 {
		return nil, "", fmt.Errorf("client node %d has %d peers, want exactly 1", cfg.Node, len(cdecls))
	}
	var serverNode int
	for peer := range cdecls {
		serverNode = peer
	}
	sdecls, err := spi.PeerDecls(g, m, nodeOf, serverNode, 0)
	if err != nil {
		return nil, "", err
	}

	srv, err := session.NewServer(session.ServerConfig{
		Graph:      g,
		Mapping:    m,
		NodeOf:     nodeOf,
		Node:       serverNode,
		Iterations: cfg.Iters,
		Kernels: func(sid uint32, tenant string) map[dataflow.ActorID]spi.Kernel {
			var mu sync.Mutex
			ks, kerr := demo.Kernels(g, cfg.Seed, demo.Sinks(g), &mu)
			if kerr != nil {
				return map[dataflow.ActorID]spi.Kernel{}
			}
			return ks
		},
		Admission:      session.Admission{MaxSessions: maxSessions, TenantQuota: tenantQuota},
		SessionTimeout: cfg.SessionTimeout,
	})
	if err != nil {
		return nil, "", err
	}

	ln, err := tr.Listen(listenAddr)
	if err != nil {
		srv.Close()
		return nil, "", err
	}
	var lmu sync.Mutex
	var links []*transport.Link
	go func() {
		for {
			conn, aerr := ln.Accept()
			if aerr != nil {
				return
			}
			go func(conn transport.Conn) {
				var mux *session.Mux
				l, lerr := transport.AcceptConn(conn,
					transport.LinkConfig{Node: serverNode, Sessions: true, Reconnect: cfg.Reconnect},
					func(peer int) ([]transport.EdgeDecl, transport.Handler, error) {
						d := sdecls[peer]
						if d == nil {
							return nil, nil, fmt.Errorf("no shared edges with node %d", peer)
						}
						mux = session.NewMux(nil)
						return d, mux, nil
					},
					func(peer int, token uint64) *transport.Link {
						lmu.Lock()
						defer lmu.Unlock()
						for _, reg := range links {
							if reg.PeerNode() == peer && reg.Token() == token {
								return reg
							}
						}
						return nil
					})
				if lerr != nil {
					fmt.Fprintf(w, "spiload: inproc handshake failed: %v\n", lerr)
					return
				}
				if l == nil {
					return // RESUME, routed
				}
				lmu.Lock()
				links = append(links, l)
				lmu.Unlock()
				mux.Bind(l)
				srv.Attach(mux)
			}(conn)
		}
	}()

	stop := func() {
		ln.Close()
		lmu.Lock()
		live := append([]*transport.Link(nil), links...)
		lmu.Unlock()
		for _, l := range live {
			l.Abort()
		}
		srv.Close()
	}
	return stop, ln.Addr(), nil
}
