// Crack filter example: the paper's application 2 end-to-end. A synthetic
// Paris-law crack-growth truth is tracked from noisy observations by the
// distributed particle filter, whose resampling step exchanges partial sums
// over SPI_static and migrates particles over SPI_dynamic.
package main

import (
	"fmt"
	"log"

	"repro/internal/particle"
	"repro/internal/signal"
	"repro/internal/spi"
)

func main() {
	p := signal.DefaultCrackParams()
	const steps = 200
	truth := signal.CrackTruth(steps, p, 7)
	obs := signal.CrackObservations(truth, p, 8)

	fmt.Println("tracking crack length over", steps, "steps")
	for _, pes := range []int{1, 2} {
		d, err := particle.NewDistributed(particle.Model{P: p}, 200, pes, 9)
		if err != nil {
			log.Fatal(err)
		}
		ests, err := d.Run(obs)
		if err != nil {
			log.Fatal(err)
		}
		st := d.Stats()
		fmt.Printf("  n=%d PEs: RMSE %.4f (obs noise %.2f), %d messages, %d acks\n",
			pes, particle.RMSE(ests, truth), p.MeasureNoise, st.Messages, st.Acks)
	}

	// A short trace of truth vs estimate for the 2-PE configuration.
	d, err := particle.NewDistributed(particle.Model{P: p}, 200, 2, 9)
	if err != nil {
		log.Fatal(err)
	}
	ests, err := d.Run(obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n  step   truth   observed  estimate")
	for _, k := range []int{0, 49, 99, 149, 199} {
		fmt.Printf("  %4d   %.3f   %.3f     %.3f\n", k, truth[k], obs[k], ests[k])
	}

	// Figure-7 style timing sweep on the simulated platform.
	fmt.Println("\nsimulated execution time (us per iteration):")
	fmt.Printf("%-10s  n=1      n=2\n", "particles")
	for _, N := range []int{50, 100, 200, 300} {
		fmt.Printf("%-10d", N)
		for _, n := range []int{1, 2} {
			sys, err := particle.FilterSystem(particle.DefaultDeploy(N, n), nil)
			if err != nil {
				log.Fatal(err)
			}
			dep, err := spi.Build(sys)
			if err != nil {
				log.Fatal(err)
			}
			st, err := dep.Sim.Run(20)
			if err != nil {
				log.Fatal(err)
			}
			cfg := dep.Sim.Config()
			fmt.Printf("  %6.2f", st.Microseconds(cfg, st.Finish)/20)
		}
		fmt.Println()
	}
}
