// Quickstart: model a small signal-processing system as an SDF graph, map
// it onto two processors, let SPI insert the communication, and run it both
// on the software runtime and on the cycle-level platform simulator.
package main

import (
	"fmt"
	"log"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/spi"
	"repro/internal/vts"
)

func main() {
	// 1. Build an SDF graph: a producer that emits variable-size bursts
	//    (bounded by 10 tokens of 2 bytes) and a consumer, with a feedback
	//    edge that bounds how far the producer may run ahead.
	g := dataflow.New("quickstart")
	src := g.AddActor("source", 200)
	snk := g.AddActor("sink", 300)
	g.AddEdge("bursts", src, snk, 10, 10, dataflow.EdgeSpec{
		ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 2,
	})
	g.AddEdge("credits", snk, src, 1, 1, dataflow.EdgeSpec{Delay: 2})

	// 2. VTS conversion: the dynamic edge becomes a static rate-1 edge of
	//    packed tokens, so classic SDF analysis applies.
	conv, err := vts.Convert(g)
	if err != nil {
		log.Fatal(err)
	}
	q, _ := conv.Graph.RepetitionsVector()
	fmt.Printf("repetitions vector: %v\n", q)
	bounds, err := vts.ComputeBounds(conv)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range bounds {
		fmt.Printf("edge %-8s b_max=%d bytes, IPC bound B(e)=%d bytes, bounded=%v\n",
			conv.Graph.Edge(b.Edge).Name, b.BMax, b.IPC, b.Bounded)
	}

	// 3. Map source and sink onto different processors and lower the
	//    system onto the platform simulator: SPI picks SPI_dynamic framing
	//    and the BBS protocol automatically from the analysis.
	m := &sched.Mapping{
		NumProcs: 2,
		Proc:     []sched.Processor{0, 1},
		Order:    [][]dataflow.ActorID{{src}, {snk}},
	}
	sizes := []int{6, 20, 2, 14} // run-time payload sizes, all <= b_max
	dep, err := spi.Build(&spi.System{
		Graph: g, Mapping: m,
		PayloadFn: map[dataflow.EdgeID]func(int) int{
			0: func(iter int) int { return sizes[iter%len(sizes)] },
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range dep.Plans {
		fmt.Printf("edge %s -> %v over %v, capacity %d messages\n",
			g.Edge(p.Edge).Name, p.Mode, p.Protocol, p.Capacity)
	}
	st, err := dep.Sim.Run(100)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dep.Sim.Config()
	fmt.Printf("simulated 100 iterations in %.1f us, %d messages, %d wire bytes\n",
		st.Microseconds(cfg, st.Finish), st.TotalMessages(), st.TotalBytes())

	// 4. The same edge on the software runtime: goroutines exchanging
	//    real payloads through SPI_send / SPI_receive actors.
	rt := spi.NewRuntime()
	tx, rx, err := rt.Init(spi.EdgeConfig{
		ID: 1, Mode: spi.Dynamic, MaxBytes: 20, Protocol: spi.BBS, Capacity: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for _, n := range sizes {
			payload := make([]byte, n)
			for i := range payload {
				payload[i] = byte(i)
			}
			if err := tx.Send(payload); err != nil {
				log.Fatal(err)
			}
		}
	}()
	for range sizes {
		p, err := rx.Receive()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("received packed token of %d bytes\n", len(p))
	}
	stats, _ := rt.Stats(1)
	fmt.Printf("software runtime: %d messages, %d wire bytes (6-byte SPI_dynamic headers)\n",
		stats.Messages, stats.WireBytes)
}
