package kpn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/spi"
)

func TestProducerConsumer(t *testing.T) {
	n := NewNetwork()
	ch := NewChannel[int](n, "c", 2)
	const count = 100
	var got []int
	err := n.Run(
		func() error {
			for i := 0; i < count; i++ {
				if err := ch.Write(i); err != nil {
					return err
				}
			}
			return nil
		},
		func() error {
			for i := 0; i < count; i++ {
				v, err := ch.Read()
				if err != nil {
					return err
				}
				got = append(got, v)
			}
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("token %d = %d (FIFO order violated)", i, v)
		}
	}
	if ch.Peak() > ch.Capacity() {
		t.Errorf("peak %d exceeded capacity %d", ch.Peak(), ch.Capacity())
	}
}

// TestKahnDeterminism: a split-merge network computes the same output
// regardless of goroutine scheduling (run repeatedly).
func TestKahnDeterminism(t *testing.T) {
	run := func() []int {
		n := NewNetwork()
		in1 := NewChannel[int](n, "in1", 4)
		in2 := NewChannel[int](n, "in2", 4)
		out := NewChannel[int](n, "out", 4)
		const count = 50
		var result []int
		err := n.Run(
			func() error { // source 1: evens
				for i := 0; i < count; i++ {
					if err := in1.Write(2 * i); err != nil {
						return err
					}
				}
				return nil
			},
			func() error { // source 2: odds
				for i := 0; i < count; i++ {
					if err := in2.Write(2*i + 1); err != nil {
						return err
					}
				}
				return nil
			},
			func() error { // deterministic merge: alternate reads
				for i := 0; i < count; i++ {
					a, err := in1.Read()
					if err != nil {
						return err
					}
					b, err := in2.Read()
					if err != nil {
						return err
					}
					if err := out.Write(a + b); err != nil {
						return err
					}
				}
				return nil
			},
			func() error {
				for i := 0; i < count; i++ {
					v, err := out.Read()
					if err != nil {
						return err
					}
					result = append(result, v)
				}
				return nil
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		return result
	}
	first := run()
	for trial := 0; trial < 10; trial++ {
		if got := fmt.Sprint(run()); got != fmt.Sprint(first) {
			t.Fatalf("non-deterministic output on trial %d", trial)
		}
	}
}

func TestParksGrowsOnArtificialDeadlock(t *testing.T) {
	// The classic artificial-deadlock diamond: the source alternates
	// writes to two branches, but the joiner drains branch 1 completely
	// before touching branch 2. With tiny capacities the source blocks
	// writing branch 2 while the joiner blocks reading branch 1 — an
	// artificial deadlock Parks' algorithm resolves by growing branch 2.
	const rounds = 10
	n := NewNetwork()
	b1 := NewChannel[int](n, "b1", 1)
	b2 := NewChannel[int](n, "b2", 1)
	sum := 0
	err := n.Run(
		func() error {
			for i := 0; i < rounds; i++ {
				if err := b1.Write(i); err != nil {
					return err
				}
				if err := b2.Write(100 + i); err != nil {
					return err
				}
			}
			return nil
		},
		func() error {
			for i := 0; i < rounds; i++ { // drain branch 1 first
				v, err := b1.Read()
				if err != nil {
					return err
				}
				sum += v
			}
			for i := 0; i < rounds; i++ {
				v, err := b2.Read()
				if err != nil {
					return err
				}
				sum += v
			}
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < rounds; i++ {
		want += i + 100 + i
	}
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	if n.Growths() == 0 {
		t.Error("expected Parks capacity growth")
	}
	if b2.Capacity() < rounds-1 {
		t.Errorf("branch-2 capacity %d, expected growth toward %d", b2.Capacity(), rounds)
	}
}

func TestTrueDeadlockDetected(t *testing.T) {
	// Two processes each reading the channel the other never writes.
	n := NewNetwork()
	a := NewChannel[int](n, "a", 1)
	b := NewChannel[int](n, "b", 1)
	err := n.Run(
		func() error {
			if _, err := a.Read(); err != nil {
				return err
			}
			return b.Write(1)
		},
		func() error {
			if _, err := b.Read(); err != nil {
				return err
			}
			return a.Write(1)
		},
	)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestProcessErrorPropagates(t *testing.T) {
	n := NewNetwork()
	ch := NewChannel[int](n, "c", 1)
	boom := errors.New("boom")
	err := n.Run(
		func() error { return boom },
		func() error {
			// Blocked forever; must be released at termination.
			_, err := ch.Read()
			return err
		},
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestSieveOfEratosthenes(t *testing.T) {
	// The classic KPN: a chain of filter processes, each removing the
	// multiples of the first prime it sees.
	n := NewNetwork()
	const limit = 50
	want := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}

	src := NewChannel[int](n, "src", 4)
	primes := NewChannel[int](n, "primes", 4)
	procs := []Process{
		func() error {
			for i := 2; i <= limit; i++ {
				if err := src.Write(i); err != nil {
					return err
				}
			}
			src.Write(-1) // end marker
			return nil
		},
	}
	// Build a fixed chain of filters (enough for primes up to 50).
	in := src
	for f := 0; f < len(want); f++ {
		out := NewChannel[int](n, fmt.Sprintf("f%d", f), 4)
		in2 := in
		procs = append(procs, func() error {
			p, err := in2.Read()
			if err != nil {
				return err
			}
			if p == -1 {
				return out.Write(-1)
			}
			if err := primes.Write(p); err != nil {
				return err
			}
			for {
				v, err := in2.Read()
				if err != nil {
					return err
				}
				if v == -1 {
					return out.Write(-1)
				}
				if v%p != 0 {
					if err := out.Write(v); err != nil {
						return err
					}
				}
			}
		})
		in = out
	}
	last := in
	procs = append(procs, func() error {
		// Drain the tail of the chain.
		for {
			v, err := last.Read()
			if err != nil || v == -1 {
				return err
			}
		}
	})
	var got []int
	procs = append(procs, func() error {
		for i := 0; i < len(want); i++ {
			v, err := primes.Read()
			if err != nil {
				return err
			}
			got = append(got, v)
		}
		return nil
	})
	if err := n.Run(procs...); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("primes = %v, want %v", got, want)
	}
}

func TestBridgeOverSPI(t *testing.T) {
	// A KPN whose middle hop crosses an SPI_dynamic edge.
	net := NewNetwork()
	up := NewChannel[int32](net, "up", 4)
	down := NewChannel[int32](net, "down", 4)
	rt := spi.NewRuntime()
	tx, rx, err := rt.Init(spi.EdgeConfig{
		ID: 9, Mode: spi.Dynamic, MaxBytes: 8, Protocol: spi.BBS, Capacity: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	const count = 64
	send, recv := Bridge(up, down, tx, rx, count,
		func(v int32) []byte {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(v))
			return b[:]
		},
		func(b []byte) (int32, error) {
			if len(b) != 4 {
				return 0, fmt.Errorf("bad token")
			}
			return int32(binary.LittleEndian.Uint32(b)), nil
		},
	)
	var got []int32
	err = net.Run(
		func() error {
			for i := int32(0); i < count; i++ {
				if err := up.Write(i * i); err != nil {
					return err
				}
			}
			return nil
		},
		send, recv,
		func() error {
			for i := 0; i < count; i++ {
				v, err := down.Read()
				if err != nil {
					return err
				}
				got = append(got, v)
			}
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(i*i) {
			t.Fatalf("token %d = %d, want %d", i, v, i*i)
		}
	}
	st, _ := rt.Stats(9)
	if st.Messages != count {
		t.Errorf("SPI messages = %d, want %d", st.Messages, count)
	}
}

func TestChannelAccessors(t *testing.T) {
	n := NewNetwork()
	ch := NewChannel[int](n, "c", 2)
	err := n.Run(
		func() error {
			for i := 0; i < 5; i++ {
				if err := ch.Write(i); err != nil {
					return err
				}
			}
			return nil
		},
		func() error {
			for i := 0; i < 5; i++ {
				if _, err := ch.Read(); err != nil {
					return err
				}
			}
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Reads() != 5 || ch.Writes() != 5 {
		t.Errorf("reads=%d writes=%d, want 5/5", ch.Reads(), ch.Writes())
	}
	if n.Err() != nil {
		t.Errorf("network err = %v", n.Err())
	}
	if s := n.String(); !strings.Contains(s, "1 channels") {
		t.Errorf("network string = %q", s)
	}
}

func TestChannelMinimumCapacity(t *testing.T) {
	n := NewNetwork()
	ch := NewChannel[int](n, "c", 0) // clamped to 1
	if ch.Capacity() != 1 {
		t.Errorf("capacity = %d, want 1", ch.Capacity())
	}
}
