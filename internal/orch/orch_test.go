package orch

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/demo"
	"repro/internal/sched"
	"repro/internal/spi"
	"repro/internal/transport"
)

// End-to-end orchestration tests: a coordinator and a pool of workers
// over a shared loopback, demo kernels on both sides, and the static
// single-node run as the bit-identity reference.

const orchSeed = 11

// orchGraph is a 4-actor signal chain over 3 processors, covering every
// edge class: cross-processor static with delay, cross-processor dynamic
// with delay, cross-processor static without delay, and a same-processor
// delayed edge.
func orchGraph() (*dataflow.Graph, *sched.Mapping, error) {
	g := dataflow.New("orch")
	src := g.AddActor("SRC", 1)
	fir := g.AddActor("FIR", 1)
	dec := g.AddActor("DEC", 1)
	snk := g.AddActor("SNK", 1)
	g.AddEdge("sf", src, fir, 1, 1, dataflow.EdgeSpec{TokenBytes: 8, Delay: 2})
	g.AddEdge("fd", fir, dec, 1, 1, dataflow.EdgeSpec{TokenBytes: 16, Delay: 1,
		ProduceDynamic: true, ConsumeDynamic: true})
	g.AddEdge("ds", dec, snk, 1, 1, dataflow.EdgeSpec{TokenBytes: 4})
	g.AddEdge("ss", src, snk, 1, 1, dataflow.EdgeSpec{TokenBytes: 6, Delay: 1})
	m, err := demo.Mapping(g, []int{0, 1, 2, 0})
	return g, m, err
}

// staticDigests runs the unpartitioned single-node reference.
func staticDigests(t *testing.T, iterations int) map[string]uint64 {
	t.Helper()
	g, m, err := orchGraph()
	if err != nil {
		t.Fatal(err)
	}
	digests := demo.Sinks(g)
	var mu sync.Mutex
	kernels, err := demo.Kernels(g, orchSeed, digests, &mu)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spi.Execute(g, m, kernels, iterations); err != nil {
		t.Fatal(err)
	}
	out := map[string]uint64{}
	for name, d := range digests {
		out[name] = *d
	}
	return out
}

// demoProvider builds the worker-side kernel set from a partition spec.
func demoProvider(spec *spi.PartitionSpec) (*KernelSet, error) {
	kernels, sinks := demo.PartKernels(spec, orchSeed)
	return &KernelSet{Kernels: kernels, Collect: sinks.Take}, nil
}

// chokeConn swallows writes once choked — the connection looks alive from
// this side (writes "succeed") but the peer hears pure silence, which is
// exactly the failure heartbeat liveness exists to catch.
type chokeConn struct {
	transport.Conn
	ct *chokeTransport
}

func (c *chokeConn) Write(p []byte) (int, error) {
	c.ct.mu.Lock()
	choked := c.ct.choked
	c.ct.mu.Unlock()
	if choked {
		return len(p), nil
	}
	return c.Conn.Write(p)
}

type chokeListener struct {
	transport.Listener
	ct *chokeTransport
}

func (l *chokeListener) Accept() (transport.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &chokeConn{Conn: c, ct: l.ct}, nil
}

// chokeTransport wraps a transport so every connection this side makes or
// accepts can be silenced at once.
type chokeTransport struct {
	transport.Transport
	mu     sync.Mutex
	choked bool
}

func (ct *chokeTransport) Choke() {
	ct.mu.Lock()
	ct.choked = true
	ct.mu.Unlock()
}

func (ct *chokeTransport) Dial(addr string) (transport.Conn, error) {
	c, err := ct.Transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &chokeConn{Conn: c, ct: ct}, nil
}

func (ct *chokeTransport) Listen(addr string) (transport.Listener, error) {
	ln, err := ct.Transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &chokeListener{Listener: ln, ct: ct}, nil
}

// orchRig wires a coordinator and workers over one loopback.
type orchRig struct {
	t     *testing.T
	tr    transport.Transport
	errs  map[string]chan error
	stops map[string]context.CancelFunc
}

func newRig(t *testing.T) *orchRig {
	return &orchRig{t: t, tr: transport.NewLoopback(),
		errs: map[string]chan error{}, stops: map[string]context.CancelFunc{}}
}

func fastRetry() transport.RetryConfig {
	return transport.RetryConfig{Attempts: 50, BaseDelay: time.Millisecond,
		MaxDelay: 5 * time.Millisecond}
}

// worker launches one worker over tr (the rig's loopback unless a choke
// wrapper is supplied) and records its exit error.
func (r *orchRig) worker(name string, tr transport.Transport) {
	if tr == nil {
		tr = r.tr
	}
	w, err := NewWorker(WorkerConfig{
		Transport: tr, Coord: "coord", Name: name, Kernels: demoProvider,
		Retry:     fastRetry(),
		Heartbeat: 20 * time.Millisecond, PeerTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.stops[name] = cancel
	ch := make(chan error, 1)
	r.errs[name] = ch
	go func() { ch <- w.Run(ctx) }()
}

// coord runs the coordinator to completion.
func (r *orchRig) coord(iterations, epochIters, minWorkers int, tweak func(*CoordConfig)) (*Report, error) {
	g, m, err := orchGraph()
	if err != nil {
		r.t.Fatal(err)
	}
	cfg := CoordConfig{
		Transport: r.tr, Addr: "coord", Graph: g, Mapping: m,
		Iterations: iterations, EpochIters: epochIters, MinWorkers: minWorkers,
		Heartbeat: 20 * time.Millisecond, PeerTimeout: 150 * time.Millisecond,
		EpochTimeout: 15 * time.Second,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		r.t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	return c.Run(ctx)
}

func (r *orchRig) stopAll() {
	for _, cancel := range r.stops {
		cancel()
	}
}

func checkDigests(t *testing.T, rep *Report, want map[string]uint64) {
	t.Helper()
	if len(rep.Digests) != len(want) {
		t.Fatalf("digests = %v, want %v", rep.Digests, want)
	}
	for name, w := range want {
		if rep.Digests[name] != w {
			t.Errorf("sink %s digest = %#x, want %#x (static)", name, rep.Digests[name], w)
		}
	}
}

// TestOrchestratedMatchesStatic runs a healthy 3-worker pool over several
// epochs and checks the folded digests are bit-identical to the static
// single-node run.
func TestOrchestratedMatchesStatic(t *testing.T) {
	const iterations = 24
	want := staticDigests(t, iterations)
	r := newRig(t)
	defer r.stopAll()
	for _, n := range []string{"w0", "w1", "w2"} {
		r.worker(n, nil)
	}
	rep, err := r.coord(iterations, 6, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkDigests(t, rep, want)
	if rep.Iterations != iterations || rep.Commits != 4 || rep.Aborts != 0 {
		t.Errorf("iterations/commits/aborts = %d/%d/%d, want %d/4/0",
			rep.Iterations, rep.Commits, rep.Aborts, iterations)
	}
	for _, n := range []string{"w0", "w1", "w2"} {
		if err := <-r.errs[n]; err != nil {
			t.Errorf("worker %s: %v", n, err)
		}
	}
}

// TestOrchestratedForcedMigration rotates the placement at one epoch
// boundary — a forced live migration of every processor — and requires
// bit-identical digests plus a nonzero migration count.
func TestOrchestratedForcedMigration(t *testing.T) {
	const iterations = 24
	want := staticDigests(t, iterations)
	r := newRig(t)
	defer r.stopAll()
	for _, n := range []string{"w0", "w1", "w2"} {
		r.worker(n, nil)
	}
	rep, err := r.coord(iterations, 6, 3, func(cfg *CoordConfig) {
		cfg.OnPlace = func(epoch int, placement []int, ids []uint32) []int {
			if epoch != 2 {
				return placement
			}
			rotated := make([]int, len(placement))
			for p, slot := range placement {
				rotated[p] = (slot + 1) % len(ids)
			}
			return rotated
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	checkDigests(t, rep, want)
	if rep.Migrations == 0 {
		t.Error("forced rotation produced no recorded migrations")
	}
	if rep.Aborts != 0 {
		t.Errorf("planned migration needed %d aborts; it must be abort-free", rep.Aborts)
	}
}

// TestOrchestratedWorkerDeath kills one worker as an epoch dispatches.
// The coordinator must abort the epoch, reap the worker, re-place its
// processors on the survivors, replay the stalled iterations, and still
// produce bit-identical digests — no duplicated and no lost tokens.
func TestOrchestratedWorkerDeath(t *testing.T) {
	const iterations = 24
	want := staticDigests(t, iterations)
	r := newRig(t)
	defer r.stopAll()
	for _, n := range []string{"w0", "w1", "w2"} {
		r.worker(n, nil)
	}
	var once sync.Once
	rep, err := r.coord(iterations, 6, 3, func(cfg *CoordConfig) {
		cfg.OnDispatch = func(epoch int) {
			if epoch == 1 {
				once.Do(func() { r.stops["w2"]() })
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	checkDigests(t, rep, want)
	if rep.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", rep.WorkersLost)
	}
	if rep.Migrations == 0 {
		t.Error("dead worker's processors were never re-placed")
	}
	if rep.Iterations != iterations {
		t.Errorf("committed %d iterations, want %d", rep.Iterations, iterations)
	}
}

// TestOrchestratedHeartbeatDeath chokes one worker mid-epoch: its writes
// vanish but its connections stay open, so only heartbeat liveness can
// declare it dead. The pool must detect, abort, re-place, and finish with
// bit-identical digests, counting the stalled tokens.
func TestOrchestratedHeartbeatDeath(t *testing.T) {
	const iterations = 24
	want := staticDigests(t, iterations)
	r := newRig(t)
	defer r.stopAll()
	ct := &chokeTransport{Transport: r.tr}
	r.worker("w0", nil)
	r.worker("w1", ct)
	r.worker("w2", nil)
	var once sync.Once
	rep, err := r.coord(iterations, 6, 3, func(cfg *CoordConfig) {
		cfg.OnDispatch = func(epoch int) {
			if epoch == 1 {
				once.Do(ct.Choke)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	checkDigests(t, rep, want)
	if rep.Aborts == 0 || rep.StalledTokens == 0 {
		t.Errorf("aborts/stalled = %d/%d, want both nonzero", rep.Aborts, rep.StalledTokens)
	}
	if rep.WorkersLost == 0 {
		t.Error("choked worker was never declared dead")
	}
	if rep.RecoveryNS <= 0 {
		t.Error("recovery time was not measured")
	}
	if err := <-r.errs["w1"]; err == nil {
		t.Error("choked worker exited cleanly")
	}
}

// ctrlFaultTransport routes only the worker's control-plane dial (the
// coordinator address) through a seeded chaos transport; the data plane
// and listeners pass through untouched. This aims the fault schedule at
// one connection deterministically.
type ctrlFaultTransport struct {
	transport.Transport
	ft    *transport.FaultTransport
	coord string
}

func (s *ctrlFaultTransport) Dial(addr string) (transport.Conn, error) {
	if addr == s.coord {
		return s.ft.Dial(addr)
	}
	return s.Transport.Dial(addr)
}

// TestOrchestratedChaosSeverMigration severs the source worker's control
// link mid-block under a seeded fault schedule. The coordinator must see
// the dead link, reap the worker, migrate its actors (SRC included) onto
// the survivors, and replay — with sink digests bit-identical to the
// static run.
func TestOrchestratedChaosSeverMigration(t *testing.T) {
	const iterations = 24
	want := staticDigests(t, iterations)
	r := newRig(t)
	defer r.stopAll()
	ft := transport.NewFaultTransport(r.tr, transport.FaultConfig{
		Seed: 7, SeverAt: []int{9}, SkipFrames: 4,
	})
	// Stagger the registrations so w0 takes slot 0 — the source worker:
	// with uniform load the balancer leaves proc 0 (SRC) on the first
	// registered worker.
	r.worker("w0", &ctrlFaultTransport{Transport: r.tr, ft: ft, coord: "coord"})
	time.Sleep(50 * time.Millisecond)
	r.worker("w1", nil)
	r.worker("w2", nil)
	rep, err := r.coord(iterations, 6, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkDigests(t, rep, want)
	if st := ft.Stats(); st.Severs == 0 {
		t.Fatal("fault schedule never severed the control link")
	}
	if rep.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", rep.WorkersLost)
	}
	if rep.Migrations == 0 {
		t.Error("severed worker's actors were never migrated")
	}
	if rep.Iterations != iterations {
		t.Errorf("committed %d iterations, want %d", rep.Iterations, iterations)
	}
	if err := <-r.errs["w0"]; err == nil {
		t.Error("severed worker exited cleanly")
	}
}

// TestOrchestratedLateJoiner starts with a single worker and adds a
// second mid-run: the next epoch boundary must rebalance processors onto
// the joiner (a migration), with digests unmoved.
func TestOrchestratedLateJoiner(t *testing.T) {
	const iterations = 24
	want := staticDigests(t, iterations)
	r := newRig(t)
	defer r.stopAll()
	r.worker("w0", nil)
	var once sync.Once
	rep, err := r.coord(iterations, 6, 1, func(cfg *CoordConfig) {
		cfg.OnDispatch = func(epoch int) {
			if epoch == 0 {
				once.Do(func() { r.worker("late", nil) })
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	checkDigests(t, rep, want)
	if rep.WorkersSeen != 2 {
		t.Errorf("WorkersSeen = %d, want 2", rep.WorkersSeen)
	}
	if rep.Migrations == 0 {
		t.Error("late joiner never picked up rebalanced processors")
	}
}
