package spi

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/syncgraph"
)

// ResyncPlan is the §4 synchronization verdict keyed by concrete dataflow
// edges: for every interprocessor UBS edge whose acknowledgement feedback
// was proven redundant, Suppressed maps the edge's ID to a human-readable
// covering-path witness (the chain of surviving synchronization edges
// whose cumulative delay implies the acknowledgement's constraint). The
// deployment layers (dist, partition, spigraph) all consume this one plan,
// so the wire-negotiated suppression set and the offline analysis can
// never drift apart.
type ResyncPlan struct {
	// Report is the raw resynchronization summary (counts, period).
	Report *syncgraph.ResyncReport
	// Suppressed maps each suppressible dataflow edge to its witness.
	// Only UBS interprocessor edges appear: BBS credits are flow
	// control, never redundant bookkeeping.
	Suppressed map[dataflow.EdgeID]string
	// AckFeedback counts the acknowledgement feedback edges added to the
	// synchronization graph; AckSurviving counts those the optimization
	// could not remove.
	AckFeedback, AckSurviving int
}

// SuppressedIDs returns the suppression set as sorted uint16 edge IDs —
// the canonical wire encoding order used by the featResync negotiation.
func (p *ResyncPlan) SuppressedIDs() []uint16 {
	ids := make([]uint16, 0, len(p.Suppressed))
	for eid := range p.Suppressed {
		ids = append(ids, uint16(eid))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ResyncSuppression runs the paper's §4 synchronization optimization for
// a graph+mapping and returns the edge-keyed suppression plan. The set is
// a pure function of the graph and the processor mapping — worker
// placement never enters — so every node (and every orchestration epoch)
// that computes it independently arrives at the same set.
func ResyncSuppression(g *dataflow.Graph, m *sched.Mapping) (*ResyncPlan, error) {
	ipc, err := syncgraph.BuildIPCGraph(g, m)
	if err != nil {
		return nil, err
	}
	sg := syncgraph.SynchronizationGraph(ipc)
	added := syncgraph.AddAllFeedback(sg, 1)
	rep := syncgraph.Resynchronize(sg, syncgraph.ResyncOptions{})

	surviving := 0
	for _, e := range sg.EdgesOfKind(syncgraph.SyncEdge) {
		if strings.HasPrefix(e.Label, "ack:") {
			surviving++
		}
	}

	plan := &ResyncPlan{
		Report:      rep,
		Suppressed:  map[dataflow.EdgeID]string{},
		AckFeedback: added, AckSurviving: surviving,
	}
	if added == 0 {
		return plan, nil
	}

	// Protocol selection must match the deployment exactly: only UBS
	// edges carry acknowledgements, so only they can have one suppressed.
	pl, err := newGraphPlan(g, 1)
	if err != nil {
		return nil, err
	}
	byName := map[string]dataflow.EdgeID{}
	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		if m.Proc[e.Src] != m.Proc[e.Snk] {
			byName[e.Name] = eid
		}
	}

	removed := append(append([]syncgraph.Edge{}, rep.RemovedFirst...), rep.RemovedByResync...)
	for _, ack := range removed {
		name, ok := strings.CutPrefix(ack.Label, "ack:")
		if !ok {
			continue
		}
		eid, ok := byName[name]
		if !ok {
			continue
		}
		if pl.edgeConfig(eid).Protocol != UBS {
			continue
		}
		// The removal is only actionable with an explicit witness: a path
		// of surviving synchronization edges from the acknowledging task
		// back to the sender whose delay is within the ack's slack.
		witness, ok := coveringPath(sg, ack.Src, ack.Snk, ack.Delay)
		if !ok {
			continue
		}
		plan.Suppressed[eid] = witness
	}
	return plan, nil
}

// coveringPath finds a minimum-delay path src→dst over the optimized
// synchronization graph and renders it as a witness string, reporting
// whether its total delay is within maxDelay — the transitive covering
// path that makes the removed acknowledgement edge redundant.
func coveringPath(sg *syncgraph.Graph, src, dst syncgraph.VertexID, maxDelay int64) (string, bool) {
	const inf = int64(1) << 62
	n := sg.NumVertices()
	dist := make([]int64, n)
	pred := make([]int, n) // index into edges, -1 = none
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		pred[i] = -1
	}
	edges := sg.Edges()
	dist[src] = 0
	for {
		// Dense extract-min: sync graphs are small (one vertex per actor),
		// so O(V^2 + VE) keeps this dependency-free and deterministic.
		u, best := -1, inf
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for i, e := range edges {
			if e.Src != syncgraph.VertexID(u) {
				continue
			}
			if d := dist[u] + e.Delay; d < dist[e.Snk] {
				dist[e.Snk] = d
				pred[e.Snk] = i
			}
		}
	}
	if dist[dst] > maxDelay {
		return "", false
	}
	// Reconstruct dst←src and render forward.
	var hops []syncgraph.Edge
	for v := dst; v != src; {
		i := pred[v]
		if i < 0 {
			return "", false
		}
		hops = append(hops, edges[i])
		v = edges[i].Src
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s", sg.Vertex(src).Name)
	for i := len(hops) - 1; i >= 0; i-- {
		e := hops[i]
		fmt.Fprintf(&b, " -[%s d=%d]-> %s", e.Label, e.Delay, sg.Vertex(e.Snk).Name)
	}
	fmt.Fprintf(&b, " (delay %d <= %d)", dist[dst], maxDelay)
	return b.String(), true
}

// OptimizeSync runs the paper's §4 synchronization optimization on a
// system and applies the verdict to its deployment: the IPC graph is
// derived from the mapping, UBS acknowledgement edges are added as
// synchronization feedback, and resynchronization removes the redundant
// ones. If EVERY acknowledgement edge is proven redundant, the deployment
// suppresses acknowledgement messages entirely (SuppressAcks) — the
// "removal of redundant acknowledgement edges for SPI actors" the paper
// describes, automated. Deployments that need the per-edge decision (the
// distributed runtime's featResync negotiation) use ResyncSuppression,
// which this delegates to.
//
// The returned report also serves diagnostic display (counts, period).
func OptimizeSync(sys *System) (*syncgraph.ResyncReport, error) {
	plan, err := ResyncSuppression(sys.Graph, sys.Mapping)
	if err != nil {
		return nil, err
	}
	if plan.AckFeedback > 0 && plan.AckSurviving == 0 {
		sys.SuppressAcks = true
	}
	return plan.Report, nil
}
