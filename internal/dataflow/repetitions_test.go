package dataflow

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRepetitionsChain(t *testing.T) {
	// A -(2)->(3)- B: q = [3,2]
	g := chain(t, [][2]int{{2, 3}})
	q, err := g.RepetitionsVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 3 || q[1] != 2 {
		t.Errorf("q = %v, want [3 2]", q)
	}
}

func TestRepetitionsMultiStage(t *testing.T) {
	// A -(3)->(2)- B -(2)->(3)- C: q = [2,3,2]
	g := chain(t, [][2]int{{3, 2}, {2, 3}})
	q, err := g.RepetitionsVector()
	if err != nil {
		t.Fatal(err)
	}
	want := Repetitions{2, 3, 2}
	for i := range want {
		if q[i] != want[i] {
			t.Errorf("q = %v, want %v", q, want)
			break
		}
	}
}

func TestRepetitionsInconsistent(t *testing.T) {
	// A->B with rate 2:1 and A->B with rate 1:1 cannot balance.
	g := New("bad")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("e1", a, b, 2, 1, EdgeSpec{})
	g.AddEdge("e2", a, b, 1, 1, EdgeSpec{})
	_, err := g.RepetitionsVector()
	var ie *InconsistentError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want InconsistentError", err)
	}
	if ie.Edge == "" {
		t.Error("InconsistentError should name the offending edge")
	}
	if g.IsConsistent() {
		t.Error("IsConsistent = true for inconsistent graph")
	}
}

func TestRepetitionsCycleConsistent(t *testing.T) {
	// A -(1)->(1)- B -(1)->(1)- A (with delay to avoid deadlock, delay
	// does not matter for consistency).
	g := New("cycle")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 1, 1, EdgeSpec{})
	g.AddEdge("ba", b, a, 1, 1, EdgeSpec{Delay: 1})
	q, err := g.RepetitionsVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 1 || q[1] != 1 {
		t.Errorf("q = %v, want [1 1]", q)
	}
}

func TestRepetitionsCycleInconsistent(t *testing.T) {
	// A -(2)->(1)- B -(1)->(1)- A: around the loop q_A*2 = q_B and
	// q_B = q_A — impossible.
	g := New("badcycle")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 2, 1, EdgeSpec{})
	g.AddEdge("ba", b, a, 1, 1, EdgeSpec{Delay: 4})
	if _, err := g.RepetitionsVector(); err == nil {
		t.Fatal("expected inconsistency")
	}
}

func TestRepetitionsDisconnectedComponents(t *testing.T) {
	g := New("two")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	c := g.AddActor("C", 1)
	d := g.AddActor("D", 1)
	g.AddEdge("ab", a, b, 2, 1, EdgeSpec{})
	g.AddEdge("cd", c, d, 1, 5, EdgeSpec{})
	q, err := g.RepetitionsVector()
	if err != nil {
		t.Fatal(err)
	}
	// Each component minimal independently: [1 2] and [5 1].
	if q[0] != 1 || q[1] != 2 || q[2] != 5 || q[3] != 1 {
		t.Errorf("q = %v, want [1 2 5 1]", q)
	}
}

func TestRepetitionsDynamicPortsCountAsRateOne(t *testing.T) {
	// Paper figure 1: A's dynamic production (bound 10) and B's dynamic
	// consumption (bound 8) become rate-1 packed tokens, so q = [1 1].
	g := New("fig1")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 10, 8, EdgeSpec{ProduceDynamic: true, ConsumeDynamic: true})
	q, err := g.RepetitionsVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 1 || q[1] != 1 {
		t.Errorf("q = %v, want [1 1]", q)
	}
}

func TestIterationTokens(t *testing.T) {
	g := chain(t, [][2]int{{2, 3}})
	q, _ := g.RepetitionsVector()
	if got := g.IterationTokens(q, 0); got != 6 {
		t.Errorf("IterationTokens = %d, want 6 (3 firings x 2 tokens)", got)
	}
}

// randomConsistentChain builds a chain with random rates; chains are always
// consistent, so the repetitions vector must satisfy the balance equations.
func randomConsistentChain(r *rand.Rand) *Graph {
	g := New("prop")
	n := 2 + r.Intn(6)
	prev := g.AddActor("a0", 1)
	for i := 1; i < n; i++ {
		next := g.AddActor("a"+string(rune('0'+i)), 1)
		p := 1 + r.Intn(6)
		c := 1 + r.Intn(6)
		g.AddEdge("e"+string(rune('0'+i)), prev, next, p, c, EdgeSpec{})
		prev = next
	}
	return g
}

func TestRepetitionsBalanceProperty(t *testing.T) {
	// Property: for every edge, q[src]*produce == q[snk]*consume, and the
	// vector is minimal (gcd of entries is 1).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConsistentChain(r)
		q, err := g.RepetitionsVector()
		if err != nil {
			return false
		}
		var gcd int64
		for _, v := range q {
			if v <= 0 {
				return false
			}
			gcd = gcd64(gcd, v)
		}
		if gcd != 1 {
			return false
		}
		for _, eid := range g.Edges() {
			e := g.Edge(eid)
			if q[e.Src]*int64(e.Produce.Rate) != q[e.Snk]*int64(e.Consume.Rate) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGCD64(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {7, 13, 1}, {-12, 18, 6},
	}
	for _, c := range cases {
		if got := gcd64(c.a, c.b); got != c.want {
			t.Errorf("gcd64(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
