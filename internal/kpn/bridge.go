package kpn

import (
	"repro/internal/spi"
)

// Bridge runs a KPN channel segment over an SPI edge: a pump process reads
// tokens from the upstream KPN channel, serializes them, and sends them
// through the SPI_dynamic edge; a second pump receives, deserializes, and
// writes into the downstream KPN channel. This realizes the paper's
// suggested SPI+KPN integration: the KPN keeps its blocking-read semantics
// while the interprocessor hop uses SPI framing and protocols.
//
// count tokens are transported; the pumps then finish (KPN processes
// terminate by returning).
func Bridge[T any](
	up *Channel[T],
	down *Channel[T],
	tx *spi.Sender,
	rx *spi.Receiver,
	count int,
	marshal func(T) []byte,
	unmarshal func([]byte) (T, error),
) (send Process, recv Process) {
	send = func() error {
		for i := 0; i < count; i++ {
			v, err := up.Read()
			if err != nil {
				return err
			}
			if err := tx.Send(marshal(v)); err != nil {
				return err
			}
		}
		return nil
	}
	recv = func() error {
		for i := 0; i < count; i++ {
			b, err := rx.Receive()
			if err != nil {
				return err
			}
			v, err := unmarshal(b)
			if err != nil {
				return err
			}
			if err := down.Write(v); err != nil {
				return err
			}
		}
		return nil
	}
	return send, recv
}
