package spi

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/vts"
)

// Shared edge planning for the functional executors (Execute and
// ExecuteDistributed): VTS conversion, buffer bounds, and the per-edge
// mode/protocol/capacity selection — the compile-time half of SPI_init.

type graphPlan struct {
	g      *dataflow.Graph
	conv   *vts.Result
	bounds []vts.Bounds
	q      dataflow.Repetitions
	// block is the vectorization blocking factor B (1 = scalar). Edges
	// whose delay is a whole multiple of B iterations carry B-token slabs;
	// the rest stay token-granular (edgeBlock).
	block int
}

func newGraphPlan(g *dataflow.Graph, block int) (*graphPlan, error) {
	conv, err := vts.Convert(g)
	if err != nil {
		return nil, err
	}
	bounds, err := vts.ComputeBounds(conv)
	if err != nil {
		return nil, err
	}
	q, err := g.RepetitionsVector()
	if err != nil {
		return nil, err
	}
	if block < 1 {
		block = 1
	}
	if block > 1 {
		if err := g.CheckBlock(block); err != nil {
			return nil, err
		}
	}
	return &graphPlan{g: g, conv: conv, bounds: bounds, q: q, block: block}, nil
}

// delayIters converts an edge's initial-token delay into whole graph
// iterations of preloaded (empty) block messages.
func (p *graphPlan) delayIters(eid dataflow.EdgeID) int {
	e := p.g.Edge(eid)
	if t := int(p.g.IterationTokens(p.q, eid)); t > 0 {
		return e.Delay / t
	}
	return 0
}

// edgeBlock is the number of iterations packed per message on this edge: the
// plan's blocking factor when the edge's delay aligns with it (a whole
// multiple of B iterations, including zero), else 1. A misaligned delay
// makes the consumer's block straddle two producer blocks, so such edges
// stay token-granular.
func (p *graphPlan) edgeBlock(eid dataflow.EdgeID) int {
	if p.block <= 1 || p.delayIters(eid)%p.block != 0 {
		return 1
	}
	return p.block
}

// edgeConfig selects the SPI component (static/dynamic framing) and the
// buffer protocol (BBS when the VTS analysis proves a bound, else UBS) for
// one interprocessor edge — identical for in-process and networked edges,
// so a distributed run and its single-process reference use the same
// protocols on the same edges. A blocked edge (edgeBlock > 1) carries
// B-token slabs in SPI_dynamic framing — the final block of a run may be
// partial — with capacity, preload, and the BBS credit pool accounted in
// slabs, scaling the eq. 2 memory bound by B.
func (p *graphPlan) edgeConfig(eid dataflow.EdgeID) EdgeConfig {
	info := p.conv.Info(eid)
	cfg := EdgeConfig{ID: EdgeID(eid), Name: p.g.Edge(eid).Name, Mode: Static, PayloadBytes: int(info.BMax)}
	if info.Dynamic {
		cfg.Mode = Dynamic
		cfg.MaxBytes = int(info.BMax)
	}
	bf := p.edgeBlock(eid)
	if bf > 1 {
		cfg.Mode = Dynamic
		cfg.MaxBytes = SlabBound(int(info.BMax), info.Dynamic, bf)
	}
	b := p.bounds[eid]
	if b.Bounded {
		cfg.Protocol = BBS
		capMsgs := int(b.IPC/b.BMax) / bf
		if capMsgs < 1 {
			capMsgs = 1
		}
		if d := p.delayIters(eid) / bf; capMsgs < d+1 {
			capMsgs = d + 1
		}
		cfg.Capacity = capMsgs
	} else {
		cfg.Protocol = UBS
	}
	return cfg
}

// pad enforces the VTS bound and zero-pads short static payloads to the
// fixed transfer size.
func (p *graphPlan) pad(eid dataflow.EdgeID, payload []byte) ([]byte, error) {
	info := p.conv.Info(eid)
	if int64(len(payload)) > info.BMax {
		return nil, fmt.Errorf("spi: kernel produced %d bytes on edge %s, bound %d",
			len(payload), p.g.Edge(eid).Name, info.BMax)
	}
	if !info.Dynamic && int64(len(payload)) != info.BMax {
		out := make([]byte, info.BMax)
		copy(out, payload)
		return out, nil
	}
	return payload, nil
}

// preload sends an edge's initial-delay messages (empty blocks) through
// its sender so iteration 0 finds its tokens, mirroring the channel
// preloading of the platform lowering. The burst goes out as one
// SendBatch so a write-coalescing link ships all delay tokens in a
// single flush. On a blocked edge the delay goes out as delay/B full
// slabs of B empty tokens — the slab-level image of the scalar preload.
func (p *graphPlan) preload(tx *Sender, eid dataflow.EdgeID, cfg EdgeConfig) error {
	bf := p.edgeBlock(eid)
	n := p.delayIters(eid) / bf
	if n == 0 {
		return nil
	}
	payloads := make([][]byte, n)
	if bf > 1 {
		info := p.conv.Info(eid)
		empty := make([][]byte, bf)
		slab, err := PackSlab(nil, empty, int(info.BMax), info.Dynamic)
		if err != nil {
			return err
		}
		// Send copies, so every delay slab can share one buffer.
		for i := range payloads {
			payloads[i] = slab
		}
	} else if cfg.Mode == Static {
		// Send copies, so every delay token can share one zero block.
		blk := make([]byte, cfg.PayloadBytes)
		for i := range payloads {
			payloads[i] = blk
		}
	}
	return tx.SendBatch(payloads)
}
