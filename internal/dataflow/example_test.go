package dataflow_test

import (
	"fmt"

	"repro/internal/dataflow"
)

// Build a two-actor multirate graph and derive its repetitions vector and
// a periodic schedule.
func Example() {
	g := dataflow.New("demo")
	a := g.AddActor("A", 10)
	b := g.AddActor("B", 20)
	g.AddEdge("ab", a, b, 2, 3, dataflow.EdgeSpec{TokenBytes: 4})

	q, _ := g.RepetitionsVector()
	fmt.Println("repetitions:", q)

	sched, _ := g.FindPASS()
	for _, actor := range sched {
		fmt.Print(g.Actor(actor).Name, " ")
	}
	fmt.Println()
	// Output:
	// repetitions: [3 2]
	// A A A B B
}

// Parse a graph from the textual DSL and emit it back.
func ExampleParseString() {
	g, err := dataflow.ParseString(`
graph example
actor src 100
actor dst 200
edge data src dst 4 2 bytes=8 delay=2
`)
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	q, _ := g.RepetitionsVector()
	fmt.Println(g.Name(), q)
	// Output:
	// example [1 2]
}

// Expand a multirate graph to firing granularity.
func ExampleExpand() {
	g := dataflow.New("mr")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 2, 1, dataflow.EdgeSpec{})

	ex, _ := dataflow.Expand(g)
	fmt.Println("firings:", ex.Graph.NumActors(), "token edges:", ex.Graph.NumEdges())
	// Output:
	// firings: 3 token edges: 2
}
