package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecoderMatchesDecode(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	syms := make([]uint16, 2000)
	for i := range syms {
		syms[i] = uint16(r.Intn(40))
	}
	cb, err := Build(Histogram(syms, 40))
	if err != nil {
		t.Fatal(err)
	}
	var w BitWriter
	if err := cb.Encode(&w, syms); err != nil {
		t.Fatal(err)
	}
	dec := cb.NewDecoder()
	got, err := dec.Decode(NewBitReader(w.Bytes()), len(syms))
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: %d vs %d", i, got[i], syms[i])
		}
	}
}

func TestDecoderReusable(t *testing.T) {
	cb, _ := Build([]int64{5, 3, 2, 1})
	dec := cb.NewDecoder()
	for trial := 0; trial < 5; trial++ {
		var w BitWriter
		msg := []uint16{0, 1, 2, 3, 0}
		if err := cb.Encode(&w, msg); err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(NewBitReader(w.Bytes()), len(msg))
		if err != nil {
			t.Fatal(err)
		}
		for i := range msg {
			if got[i] != msg[i] {
				t.Fatalf("trial %d symbol %d", trial, i)
			}
		}
	}
}

func TestDecodeSymbolTruncatedStream(t *testing.T) {
	cb, _ := Build([]int64{1, 1, 1, 1, 1})
	dec := cb.NewDecoder()
	if _, err := dec.DecodeSymbol(NewBitReader(nil)); err == nil {
		t.Fatal("empty stream should fail")
	}
}

// Property: canonical decoder roundtrips arbitrary frequency shapes.
func TestDecoderRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alphabet := 2 + r.Intn(60)
		syms := make([]uint16, 1+r.Intn(300))
		for i := range syms {
			// Skewed distribution to produce varied code lengths.
			v := 0
			for v < alphabet-1 && r.Float64() < 0.5 {
				v++
			}
			syms[i] = uint16(v)
		}
		cb, err := Build(Histogram(syms, alphabet))
		if err != nil {
			return false
		}
		var w BitWriter
		if err := cb.Encode(&w, syms); err != nil {
			return false
		}
		got, err := cb.NewDecoder().Decode(NewBitReader(w.Bytes()), len(syms))
		if err != nil {
			return false
		}
		for i := range syms {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDecoderDecode(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	syms := make([]uint16, 4096)
	for i := range syms {
		syms[i] = uint16(r.Intn(64))
	}
	cb, _ := Build(Histogram(syms, 64))
	var w BitWriter
	cb.Encode(&w, syms)
	dec := cb.NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(NewBitReader(w.Bytes()), len(syms)); err != nil {
			b.Fatal(err)
		}
	}
}
