package experiments

import (
	"fmt"

	"repro/internal/syncgraph"
)

// Fig3Graph builds the synchronization graph of the paper's figure 3: the
// n-PE implementation of actor D, before resynchronization. Each PE pairs
// with an I/O-interface processor carrying three tasks in order — send
// input frame, send predictor coefficients, receive error values — with a
// data message per task and UBS acknowledgements on the dynamic sends.
func Fig3Graph(nPE int) *syncgraph.Graph {
	g := syncgraph.NewGraph()
	for i := 0; i < nPE; i++ {
		ioProc := 2 * i
		peProc := 2*i + 1
		sf := g.AddVertex(fmt.Sprintf("sendFrame%d", i), ioProc, 5)
		sc := g.AddVertex(fmt.Sprintf("sendCoeffs%d", i), ioProc, 5)
		re := g.AddVertex(fmt.Sprintf("recvErr%d", i), ioProc, 5)
		pe := g.AddVertex(fmt.Sprintf("PE%d", i), peProc, 100)
		g.AddEdge(sf, sc, 0, syncgraph.IntraprocEdge, "io-seq1")
		g.AddEdge(sc, re, 0, syncgraph.IntraprocEdge, "io-seq2")
		g.AddEdge(re, sf, 1, syncgraph.LoopbackEdge, "io-loop")
		g.AddEdge(pe, pe, 1, syncgraph.LoopbackEdge, "pe-loop")
		g.AddEdge(sf, pe, 0, syncgraph.IPCEdge, "frame")
		g.AddEdge(sc, pe, 0, syncgraph.IPCEdge, "coeffs")
		g.AddEdge(pe, re, 0, syncgraph.IPCEdge, "errors")
		// UBS acknowledgements for the dynamic transfers: separate
		// messages before optimization.
		g.AddEdge(pe, sf, 1, syncgraph.SyncEdge, "ack:frame")
		g.AddEdge(pe, sc, 1, syncgraph.SyncEdge, "ack:coeffs")
		g.AddEdge(re, pe, 1, syncgraph.SyncEdge, "ack:errors")
	}
	return g
}

// Fig5Graph builds the synchronization graph of the paper's figure 5: the
// 2-PE particle filter before resynchronization. Each processor carries the
// three resampling sub-steps in order — partial-sum computation, local
// resampling, intra-resampling — with the partial-sum exchange (static) and
// the particle exchange (dynamic, with UBS acknowledgements) crossing
// processors.
func Fig5Graph() *syncgraph.Graph {
	g := syncgraph.NewGraph()
	var ps, lr, ir [2]syncgraph.VertexID
	for p := 0; p < 2; p++ {
		ps[p] = g.AddVertex(fmt.Sprintf("partialSum%d", p), p, 40)
		lr[p] = g.AddVertex(fmt.Sprintf("localResample%d", p), p, 20)
		ir[p] = g.AddVertex(fmt.Sprintf("intraResample%d", p), p, 10)
		g.AddEdge(ps[p], lr[p], 0, syncgraph.IntraprocEdge, "seq1")
		g.AddEdge(lr[p], ir[p], 0, syncgraph.IntraprocEdge, "seq2")
		g.AddEdge(ir[p], ps[p], 1, syncgraph.LoopbackEdge, "loop")
	}
	for p := 0; p < 2; p++ {
		q := 1 - p
		g.AddEdge(ps[p], lr[q], 0, syncgraph.IPCEdge, fmt.Sprintf("sums%d%d", p, q))
		g.AddEdge(lr[p], ir[q], 0, syncgraph.IPCEdge, fmt.Sprintf("particles%d%d", p, q))
		// Acks: the static sum exchange needs none under BBS; the dynamic
		// particle exchange runs UBS with an acknowledgement message.
		g.AddEdge(ir[q], lr[p], 1, syncgraph.SyncEdge, fmt.Sprintf("ack:particles%d%d", p, q))
	}
	return g
}

// resyncTable runs Resynchronize on a graph and reports the before/after
// synchronization structure.
func resyncTable(title string, g *syncgraph.Graph, paperNote string) *Table {
	protocols := map[string]syncgraph.Protocol{}
	for _, e := range g.EdgesOfKind(syncgraph.IPCEdge) {
		// Dynamic transfers (frame/coeffs/particles) ride UBS.
		switch e.Label[0] {
		case 'f', 'c', 'p', 'e':
			protocols[e.Label] = syncgraph.UBS
		}
	}
	before := syncgraph.Cost(g, protocols)
	rep := syncgraph.Resynchronize(g, syncgraph.ResyncOptions{})
	after := syncgraph.Cost(g, protocols)

	t := &Table{
		Title:  title,
		Header: []string{"metric", "before", "after"},
		Notes:  []string{paperNote, rep.String()},
	}
	t.AddRow("sync_edges", fmt.Sprintf("%d", rep.SyncBefore), fmt.Sprintf("%d", rep.SyncAfter))
	t.AddRow("pure_sync_messages", fmt.Sprintf("%d", before.SyncEdges), fmt.Sprintf("%d", after.SyncEdges))
	t.AddRow("messages_per_iter", fmt.Sprintf("%d", before.Messages), fmt.Sprintf("%d", after.Messages))
	t.AddRow("shared_mem_sync_ops", fmt.Sprintf("%d", before.SharedMemoryOps), fmt.Sprintf("%d", after.SharedMemoryOps))
	t.AddRow("steady_period_cycles", fmt.Sprintf("%.1f", rep.PeriodBefore), fmt.Sprintf("%.1f", rep.PeriodAfter))
	return t
}

// Fig3 regenerates the synchronization-optimization result of figure 3
// (3-PE actor D): redundant acknowledgement edges are removed.
func Fig3() (*Table, error) {
	return resyncTable(
		"Figure 3 — resynchronization, 3-PE actor D (application 1)",
		Fig3Graph(3),
		"paper: redundant synchronization edges disappear after resynchronization; throughput preserved",
	), nil
}

// Fig5 regenerates the synchronization-optimization result of figure 5
// (2-PE particle filter).
func Fig5() (*Table, error) {
	return resyncTable(
		"Figure 5 — resynchronization, 2-PE particle filter (application 2)",
		Fig5Graph(),
		"paper: the resampling split keeps only the necessary synchronizations after optimization",
	), nil
}

// Fig3DOT and Fig5DOT render the before/after graphs in Graphviz format
// for visual comparison with the paper's figures.
func Fig3DOT(nPE int) (before, after string) {
	g := Fig3Graph(nPE)
	before = g.DOT("fig3-before")
	syncgraph.Resynchronize(g, syncgraph.ResyncOptions{})
	after = g.DOT("fig3-after")
	return before, after
}

// Fig5DOT renders the figure-5 graphs.
func Fig5DOT() (before, after string) {
	g := Fig5Graph()
	before = g.DOT("fig5-before")
	syncgraph.Resynchronize(g, syncgraph.ResyncOptions{})
	after = g.DOT("fig5-after")
	return before, after
}
