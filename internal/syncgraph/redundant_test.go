package syncgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// parallelSyncPair builds two vertices with two parallel sync edges of the
// given delays.
func parallelSyncPair(d1, d2 int64) *Graph {
	g := NewGraph()
	a := g.AddVertex("A", 0, 1)
	b := g.AddVertex("B", 1, 1)
	g.AddEdge(a, b, d1, SyncEdge, "s1")
	g.AddEdge(a, b, d2, SyncEdge, "s2")
	return g
}

func TestParallelEdgesOneRedundant(t *testing.T) {
	g := parallelSyncPair(0, 3)
	// s2 (delay 3) is implied by s1 (delay 0 <= 3); s1 is NOT implied by s2.
	if !g.IsRedundant(1) {
		t.Error("looser parallel edge should be redundant")
	}
	if g.IsRedundant(0) {
		t.Error("tighter parallel edge must not be redundant")
	}
	removed := g.RemoveRedundant()
	if len(removed) != 1 || removed[0].Label != "s2" {
		t.Errorf("removed %v, want exactly s2", removed)
	}
	if g.SyncCount() != 1 {
		t.Errorf("SyncCount = %d, want 1", g.SyncCount())
	}
}

func TestMutualRedundancyKeepsOne(t *testing.T) {
	// Equal parallel edges imply each other; exactly one must survive.
	g := parallelSyncPair(2, 2)
	g.RemoveRedundant()
	if g.SyncCount() != 1 {
		t.Errorf("SyncCount = %d, want exactly 1 surviving edge", g.SyncCount())
	}
}

func TestRedundancyViaIntraprocPath(t *testing.T) {
	// The paper's figure-3 pattern: sendFrame -> sendCoeffs (program order)
	// and sendCoeffs -> PE (sync) make the direct sendFrame -> PE sync
	// redundant.
	g := NewGraph()
	sf := g.AddVertex("sendFrame", 0, 1)
	sc := g.AddVertex("sendCoeffs", 0, 1)
	pe := g.AddVertex("PE", 1, 1)
	g.AddEdge(sf, sc, 0, IntraprocEdge, "seq")
	direct := g.AddEdge(sf, pe, 0, SyncEdge, "frame-sync")
	g.AddEdge(sc, pe, 0, SyncEdge, "coeffs-sync")
	if !g.IsRedundant(direct) {
		t.Fatal("frame sync should be implied by program order + coeffs sync")
	}
	removed := g.RemoveRedundant()
	if len(removed) != 1 || removed[0].Label != "frame-sync" {
		t.Errorf("removed %v, want frame-sync", removed)
	}
}

func TestIPCEdgesNeverRemoved(t *testing.T) {
	// Even a fully redundant IPC edge stays: it carries data.
	g := NewGraph()
	a := g.AddVertex("A", 0, 1)
	b := g.AddVertex("B", 1, 1)
	g.AddEdge(a, b, 0, SyncEdge, "s")
	g.AddEdge(a, b, 5, IPCEdge, "data")
	removed := g.RemoveRedundant()
	if len(removed) != 0 {
		t.Errorf("removed %v, want none", removed)
	}
	if len(g.EdgesOfKind(IPCEdge)) != 1 {
		t.Error("IPC edge vanished")
	}
}

func TestRedundancyNeedsDelayDominance(t *testing.T) {
	// Path delay 2 does NOT imply an edge with delay 1 (weaker constraint
	// cannot subsume a stronger one).
	g := NewGraph()
	a := g.AddVertex("A", 0, 1)
	b := g.AddVertex("B", 1, 1)
	c := g.AddVertex("C", 2, 1)
	g.AddEdge(a, b, 1, SyncEdge, "ab")
	g.AddEdge(b, c, 1, SyncEdge, "bc")
	direct := g.AddEdge(a, c, 1, SyncEdge, "ac")
	if g.IsRedundant(direct) {
		t.Error("delay-1 edge wrongly subsumed by delay-2 path")
	}
	// But a delay-2 direct edge would be redundant.
	loose := g.AddEdge(a, c, 2, SyncEdge, "ac2")
	if !g.IsRedundant(loose) {
		t.Error("delay-2 edge should be subsumed by delay-2 path")
	}
}

func TestCountRedundant(t *testing.T) {
	g := parallelSyncPair(0, 3)
	if got := g.CountRedundant(); got != 1 {
		t.Errorf("CountRedundant = %d, want 1", got)
	}
	g.RemoveRedundant()
	if got := g.CountRedundant(); got != 0 {
		t.Errorf("after removal CountRedundant = %d, want 0", got)
	}
}

// Property: after RemoveRedundant, every removed edge's constraint is still
// implied by the surviving graph (min-delay path <= removed delay), and no
// surviving sync edge is redundant.
func TestRemoveRedundantSemanticsPreservedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph()
		n := 3 + r.Intn(5)
		for i := 0; i < n; i++ {
			g.AddVertex("v", i%2, 1+int64(r.Intn(10)))
		}
		m := 2 + r.Intn(3*n)
		for i := 0; i < m; i++ {
			src := VertexID(r.Intn(n))
			snk := VertexID(r.Intn(n))
			if src == snk {
				continue
			}
			g.AddEdge(src, snk, int64(r.Intn(4)), SyncEdge, "s")
		}
		before := g.Clone()
		removed := g.RemoveRedundant()
		// 1. Every removed constraint is implied by the survivors.
		for _, e := range removed {
			dist := g.minDelayFrom(e.Src, -1)
			if dist[e.Snk] == infDelay || dist[e.Snk] > e.Delay {
				return false
			}
		}
		// 2. No live sync edge is redundant.
		if g.CountRedundant() != 0 {
			return false
		}
		// 3. Surviving min-delay constraints are not weaker than before:
		// for every ordered pair, dist_after <= dist_before is required in
		// the other direction — removal can only *increase* path delays,
		// but any increase must stay within what removed edges allowed.
		// Simpler check: re-adding removed edges changes no distance.
		restored := g.Clone()
		for _, e := range removed {
			restored.AddEdge(e.Src, e.Snk, e.Delay, SyncEdge, "restored")
		}
		for v := 0; v < n; v++ {
			da := g.minDelayFrom(VertexID(v), -1)
			db := restored.minDelayFrom(VertexID(v), -1)
			for w := 0; w < n; w++ {
				if da[w] != db[w] {
					return false
				}
			}
		}
		_ = before
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
