// Package transport gives SPI a real byte transport: the paper's wire
// formats (SPI_static 2-byte headers, SPI_dynamic 6-byte headers) were
// designed to beat generic MPI framing on physical links, and this package
// is where they finally meet one. It provides a pluggable Transport
// abstraction (Dial/Listen/Conn) with two implementations — an in-memory
// loopback for tests and benchmarks, and TCP for multi-process execution —
// plus the Link session layer that multiplexes all SPI edges between one
// pair of processing-element groups over a single connection.
//
// The stack is deliberately layered like the software SPI library itself:
//
//	Conn      raw ordered byte stream with deadlines (loopback, TCP)
//	frame     length-delimited frames: HELLO / DATA / ACK / GOODBYE
//	Link      handshake (node identity + edge manifest), per-edge
//	          multiplexing, send timeouts, graceful close
//
// Package spi binds Runtime edges onto a Link (see spi.BindRemoteSender /
// spi.BindRemoteReceiver): DATA frames carry SPI-encoded messages
// unchanged, and ACK frames carry the BBS credits / UBS acknowledgements
// that the in-process runtime exchanged through shared memory.
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"syscall"
	"time"
)

// Conn is an ordered, reliable byte stream between two endpoints. Both the
// loopback and TCP transports satisfy it; Link runs on top of it.
type Conn interface {
	io.ReadWriteCloser
	// SetReadDeadline and SetWriteDeadline bound individual I/O calls;
	// the zero time clears the deadline.
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
	// LocalAddr and RemoteAddr describe the endpoints for diagnostics.
	LocalAddr() string
	RemoteAddr() string
}

// Listener accepts inbound connections on one address.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the bound address — for TCP with port 0 it carries the
	// kernel-assigned port, which peers need for dialing.
	Addr() string
}

// Transport creates connections. Implementations must be safe for
// concurrent use.
type Transport interface {
	// Name identifies the transport ("loopback", "tcp") in flags and logs.
	Name() string
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// Error is the typed error for transport operations. Transient errors
// (connection refused, timeouts) are worth retrying; fatal ones (protocol
// mismatch, closed link) are not.
type Error struct {
	Op        string // "dial", "listen", "send", "recv", "handshake"
	Addr      string
	Transient bool
	Err       error
}

func (e *Error) Error() string {
	kind := "fatal"
	if e.Transient {
		kind = "transient"
	}
	if e.Addr != "" {
		return fmt.Sprintf("transport: %s %s: %s: %v", e.Op, e.Addr, kind, e.Err)
	}
	return fmt.Sprintf("transport: %s: %s: %v", e.Op, kind, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Timeout reports whether the underlying cause was an I/O timeout, so
// Error satisfies the net.Error convention.
func (e *Error) Timeout() bool {
	var ne net.Error
	return errors.As(e.Err, &ne) && ne.Timeout()
}

// IsTransient reports whether err is a transport error worth retrying:
// refused or timed-out connects, send timeouts. Handshake and protocol
// failures are fatal.
func IsTransient(err error) bool {
	var te *Error
	if errors.As(err, &te) {
		return te.Transient
	}
	return false
}

// ErrLinkClosed is returned by sends on a closed Link.
var ErrLinkClosed = errors.New("transport: link closed")

// dialTransient classifies a raw dial error: anything that can heal on its
// own (listener not up yet, timeout) is transient; malformed addresses are
// not.
func dialTransient(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	// Refused connections and loopback's "no listener" both mean the peer
	// has not bound its address yet — the normal startup race retries fix.
	return errors.Is(err, errLoopbackRefused) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNABORTED)
}

// RetryConfig bounds DialRetry's exponential backoff.
type RetryConfig struct {
	// Attempts is the maximum number of dials (including the first).
	// Zero means DefaultRetry.Attempts.
	Attempts int
	// BaseDelay is the sleep after the first failure; each further
	// failure multiplies it by Multiplier up to MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter spreads each backoff sleep uniformly over
	// [d·(1−Jitter), d·(1+Jitter)]. Purely deterministic backoff makes
	// every client of a restarted node re-dial in lockstep — a thundering
	// herd exactly when the node is least able to absorb one. 0 disables;
	// values are clamped to [0, 1].
	Jitter float64
	// JitterSeed seeds the jitter RNG for reproducible schedules in
	// tests; 0 draws a nondeterministic seed.
	JitterSeed int64
}

// DefaultRetry is tuned for process startup races: ~12 attempts spanning a
// few seconds.
var DefaultRetry = RetryConfig{
	Attempts:   12,
	BaseDelay:  10 * time.Millisecond,
	MaxDelay:   500 * time.Millisecond,
	Multiplier: 2,
}

func (rc RetryConfig) withDefaults() RetryConfig {
	d := DefaultRetry
	if rc.Attempts > 0 {
		d.Attempts = rc.Attempts
	}
	if rc.BaseDelay > 0 {
		d.BaseDelay = rc.BaseDelay
	}
	if rc.MaxDelay > 0 {
		d.MaxDelay = rc.MaxDelay
	}
	if rc.Multiplier > 1 {
		d.Multiplier = rc.Multiplier
	}
	d.Jitter = rc.Jitter
	d.JitterSeed = rc.JitterSeed
	return d
}

// jitterRNG builds the backoff-jitter source: seeded when the caller
// wants a reproducible schedule, time-derived otherwise. Returns nil when
// jitter is disabled so the no-jitter path stays allocation-free.
func jitterRNG(jitter float64, seed int64) *rand.Rand {
	if jitter <= 0 {
		return nil
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return rand.New(rand.NewSource(seed))
}

// jitterDelay spreads d uniformly over [d·(1−j), d·(1+j)]. A nil rng
// (jitter disabled) returns d unchanged.
func jitterDelay(d time.Duration, j float64, rng *rand.Rand) time.Duration {
	if rng == nil || j <= 0 || d <= 0 {
		return d
	}
	if j > 1 {
		j = 1
	}
	f := 1 + j*(2*rng.Float64()-1)
	jd := time.Duration(float64(d) * f)
	if jd < 0 {
		return 0
	}
	return jd
}

// DialRetry dials addr, retrying transient failures with exponential
// backoff. It returns the first fatal error immediately and the last
// transient error once attempts are exhausted. Cancelling ctx interrupts
// the backoff sleeps and returns ctx.Err() wrapped in a transport Error.
func DialRetry(ctx context.Context, t Transport, addr string, rc RetryConfig) (Conn, error) {
	rc = rc.withDefaults()
	rng := jitterRNG(rc.Jitter, rc.JitterSeed)
	delay := rc.BaseDelay
	var lastErr error
	for attempt := 0; attempt < rc.Attempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, jitterDelay(delay, rc.Jitter, rng)); err != nil {
				return nil, &Error{Op: "dial", Addr: addr, Err: err}
			}
			delay = time.Duration(float64(delay) * rc.Multiplier)
			if delay > rc.MaxDelay {
				delay = rc.MaxDelay
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, &Error{Op: "dial", Addr: addr, Err: err}
		}
		c, err := t.Dial(addr)
		if err == nil {
			return c, nil
		}
		if !IsTransient(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ReconnectConfig is a Link's reconnect policy after its connection dies
// mid-session. The zero value disables reconnection entirely — the link
// fails fast exactly as it did before session resumption existed. With
// Attempts > 0 the surviving side re-dials (or, on the accepting side,
// waits for the peer's re-dial) and replays the unacknowledged frame
// suffix via the RESUME handshake.
type ReconnectConfig struct {
	// Attempts is the maximum number of re-dials per outage; 0 disables
	// reconnection.
	Attempts int
	// BaseDelay is the sleep before the first re-dial; each failure
	// multiplies it by Multiplier up to MaxDelay. Defaults mirror
	// DefaultRetry when Attempts > 0.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Deadline bounds one whole outage (all attempts plus handshakes).
	// Zero means 30s when reconnection is enabled.
	Deadline time.Duration
	// Jitter spreads each re-dial backoff uniformly over
	// [d·(1−Jitter), d·(1+Jitter)], de-synchronizing the reconnect storm
	// when a node serving many links restarts. 0 disables; clamped to
	// [0, 1]. JitterSeed makes the schedule reproducible in tests (0 =
	// nondeterministic).
	Jitter     float64
	JitterSeed int64
}

// Enabled reports whether the policy allows any reconnection at all.
func (rc ReconnectConfig) Enabled() bool { return rc.Attempts > 0 }

func (rc ReconnectConfig) withDefaults() ReconnectConfig {
	if !rc.Enabled() {
		return rc
	}
	if rc.BaseDelay <= 0 {
		rc.BaseDelay = DefaultRetry.BaseDelay
	}
	if rc.MaxDelay <= 0 {
		rc.MaxDelay = DefaultRetry.MaxDelay
	}
	if rc.Multiplier <= 1 {
		rc.Multiplier = DefaultRetry.Multiplier
	}
	if rc.Deadline <= 0 {
		rc.Deadline = 30 * time.Second
	}
	return rc
}
