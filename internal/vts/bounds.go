package vts

import (
	"fmt"

	"repro/internal/dataflow"
)

// Bounds collects the buffer-memory bounds of one converted edge, following
// §3 of the paper.
type Bounds struct {
	Edge dataflow.EdgeID
	// CSDF is c_sdf(e): an upper bound on the number of (packed) tokens
	// that coexist on e at any time under the analyzed schedule. Computed
	// on the converted (pure SDF) graph.
	CSDF int64
	// BMax is b_max(e): the maximum bytes in one packed token.
	BMax int64
	// CE is c(e) = c_sdf(e) * b_max(e) — eq. 1: the total size bound of
	// the packed tokens on e.
	CE int64
	// Gamma is Γ: the total delay on a minimum-delay directed path from
	// snk(e) back to src(e) — the feedback slack that limits how far the
	// producer can run ahead of the consumer in a self-timed execution.
	// Gamma is -1 when no such path exists (the producer is unthrottled).
	Gamma int64
	// IPC is B(e) = (Γ + delay(e)) * c(e) — eq. 2: the upper bound on the
	// IPC buffer size in bytes. IPC is -1 when Gamma is -1: without a
	// feedback path the buffer cannot be bounded statically and the edge
	// must use the SPI_UBS protocol.
	IPC int64
	// Bounded reports whether IPC is finite (choose SPI_BBS) or not
	// (choose SPI_UBS).
	Bounded bool
}

// ComputeBounds derives the VTS buffer bounds for every edge of a converted
// graph. The c_sdf values come from simulating a PASS of the converted
// graph (any admissible schedule yields a valid bound); Γ comes from
// minimum-delay paths over the graph.
func ComputeBounds(r *Result) ([]Bounds, error) {
	g := r.Graph
	sched, err := g.FindPASS()
	if err != nil {
		return nil, fmt.Errorf("vts: converted graph has no PASS: %w", err)
	}
	csdf, err := g.BufferBounds(sched)
	if err != nil {
		return nil, err
	}
	out := make([]Bounds, 0, g.NumEdges())
	// Cache min-delay paths per distinct sink actor.
	paths := make(map[dataflow.ActorID][]int64)
	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		info := r.Edges[eid]
		b := Bounds{
			Edge: eid,
			CSDF: csdf[eid],
			BMax: info.BMax,
		}
		b.CE = b.CSDF * b.BMax
		dist, ok := paths[e.Snk]
		if !ok {
			dist = g.MinDelayPaths(e.Snk)
			paths[e.Snk] = dist
		}
		gamma := dist[e.Src]
		if gamma == dataflow.InfiniteDelay {
			b.Gamma = -1
			b.IPC = -1
			b.Bounded = false
		} else {
			b.Gamma = gamma
			b.IPC = (gamma + int64(e.Delay)) * b.CE
			b.Bounded = true
			// A bounded buffer still needs room for at least one packed
			// token to make progress; eq. 2 can evaluate to zero when the
			// feedback cycle carries all its delay on e itself and
			// delay(e)=0 with Γ=0, which cannot occur on a live graph, but
			// we clamp defensively so a BBS ring buffer is always usable.
			if b.IPC < b.CE {
				b.IPC = b.CE
			}
		}
		out = append(out, b)
	}
	return out, nil
}

// TotalBoundedMemory sums the IPC buffer bounds of all bounded edges and
// reports how many edges are unbounded (UBS).
func TotalBoundedMemory(bounds []Bounds) (totalBytes int64, unbounded int) {
	for _, b := range bounds {
		if b.Bounded {
			totalBytes += b.IPC
		} else {
			unbounded++
		}
	}
	return totalBytes, unbounded
}
