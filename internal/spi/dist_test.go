package spi

import (
	"bytes"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/transport"
)

// distGraph builds the distributed-execution test graph:
//
//	A --ab(static, 1-iteration delay)--> B --bc(dynamic)--> C
//
// mapped on two processors (A, C on 0; B on 1), so both edges cross
// processors and, under the 2-node assignment, cross nodes. The kernels
// are deterministic in (iter, inputs); C collects every payload it sees.
func distGraph() (*dataflow.Graph, *sched.Mapping) {
	g := dataflow.New("dist")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	c := g.AddActor("C", 1)
	g.AddEdge("ab", a, b, 8, 8, dataflow.EdgeSpec{TokenBytes: 1, Delay: 8})
	g.AddEdge("bc", b, c, 8, 8, dataflow.EdgeSpec{TokenBytes: 1, ProduceDynamic: true, ConsumeDynamic: true})
	m := &sched.Mapping{
		NumProcs: 2,
		Proc:     []sched.Processor{0, 1, 0},
		Order:    [][]dataflow.ActorID{{a, c}, {b}},
	}
	return g, m
}

// distKernels returns the kernel set; C appends every received payload to
// sink (callers on the same node share the slice through the pointer).
func distKernels(sink *[][]byte, mu *sync.Mutex) map[dataflow.ActorID]Kernel {
	return map[dataflow.ActorID]Kernel{
		0: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			out := make([]byte, 8)
			for i := range out {
				out[i] = byte(iter*13 + i)
			}
			return map[dataflow.EdgeID][]byte{0: out}, nil
		},
		1: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			// Variable-length output exercises the dynamic edge: echo a
			// digest of the input whose length depends on the iteration.
			n := iter%8 + 1
			out := make([]byte, n)
			var sum byte
			for _, v := range in[0] {
				sum += v
			}
			for i := range out {
				out[i] = sum + byte(i)
			}
			return map[dataflow.EdgeID][]byte{1: out}, nil
		},
		2: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			cp := make([]byte, len(in[1]))
			copy(cp, in[1])
			mu.Lock()
			*sink = append(*sink, cp)
			mu.Unlock()
			return nil, nil
		},
	}
}

// runReference runs the graph single-process and returns C's collected
// payloads — the bit-exactness baseline.
func runReference(t *testing.T, iterations int) [][]byte {
	t.Helper()
	g, m := distGraph()
	var sink [][]byte
	var mu sync.Mutex
	if _, err := Execute(g, m, distKernels(&sink, &mu), iterations); err != nil {
		t.Fatal(err)
	}
	return sink
}

func samePayloads(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// runTwoNodes executes distGraph across two in-process "nodes" over the
// given transport and returns C's payloads plus both nodes' stats.
func runTwoNodes(t *testing.T, tr transport.Transport, addr string, iterations int) ([][]byte, [2]*ExecStats) {
	t.Helper()
	g, m := distGraph()
	var sink [][]byte
	var mu sync.Mutex

	ln, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr(), "unused"}

	var stats [2]*ExecStats
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			opts := DistOptions{
				Transport: tr,
				Node:      node,
				Addrs:     addrs,
				NodeOf:    []int{0, 1},
			}
			if node == 0 {
				opts.Listener = ln
			}
			stats[node], errs[node] = ExecuteDistributed(g, m, distKernels(&sink, &mu), iterations, opts)
		}(node)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}
	return sink, stats
}

func TestExecuteDistributedMatchesLocal(t *testing.T) {
	const iterations = 25
	ref := runReference(t, iterations)
	for _, tc := range []struct {
		name string
		tr   transport.Transport
		addr string
	}{
		{"loopback", transport.NewLoopback(), "node0"},
		{"tcp", &transport.TCP{}, "127.0.0.1:0"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, stats := runTwoNodes(t, tc.tr, tc.addr, iterations)
			if !samePayloadsReport(t, ref, got) {
				t.Errorf("distributed output differs from single-process reference")
			}
			// Node 0 sends on ab (plus the 1-iteration delay preload) and
			// acks its receives on bc; node 1 mirrors it.
			if n := stats[0].SPI.Messages; n != iterations+1 {
				t.Errorf("node 0 sent %d messages, want %d", n, iterations+1)
			}
			if n := stats[1].SPI.Messages; n != iterations {
				t.Errorf("node 1 sent %d messages, want %d", n, iterations)
			}
			if n := stats[0].SPI.Acks; n != iterations {
				t.Errorf("node 0 acked %d messages, want %d", n, iterations)
			}
		})
	}
}

func samePayloadsReport(t *testing.T, ref, got [][]byte) bool {
	t.Helper()
	if samePayloads(ref, got) {
		return true
	}
	t.Logf("reference: %d payloads, got %d", len(ref), len(got))
	for i := 0; i < len(ref) && i < len(got); i++ {
		if !bytes.Equal(ref[i], got[i]) {
			t.Logf("first divergence at payload %d: %x vs %x", i, ref[i], got[i])
			break
		}
	}
	return false
}

// TestExecuteDistributedThreeNodes splits a 3-processor chain across three
// nodes, exercising a node that both dials (to 0) and accepts (from 2).
func TestExecuteDistributedThreeNodes(t *testing.T) {
	g := dataflow.New("chain3")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	c := g.AddActor("C", 1)
	g.AddEdge("ab", a, b, 4, 4, dataflow.EdgeSpec{TokenBytes: 1})
	g.AddEdge("bc", b, c, 4, 4, dataflow.EdgeSpec{TokenBytes: 1})
	m := &sched.Mapping{
		NumProcs: 3,
		Proc:     []sched.Processor{0, 1, 2},
		Order:    [][]dataflow.ActorID{{a}, {b}, {c}},
	}
	var mu sync.Mutex
	var sink []byte
	kernels := map[dataflow.ActorID]Kernel{
		a: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			return map[dataflow.EdgeID][]byte{0: {byte(iter), byte(iter + 1), byte(iter + 2), byte(iter + 3)}}, nil
		},
		b: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			out := make([]byte, 4)
			for i, v := range in[0] {
				out[i] = v * 3
			}
			return map[dataflow.EdgeID][]byte{1: out}, nil
		},
		c: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			mu.Lock()
			sink = append(sink, in[1]...)
			mu.Unlock()
			return nil, nil
		},
	}

	const iterations = 10
	tr := transport.NewLoopback()
	addrs := []string{"n0", "n1", "n2"}
	var listeners [3]transport.Listener
	for i, a := range addrs {
		ln, err := tr.Listen(a)
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
	}
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for node := 0; node < 3; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			_, errs[node] = ExecuteDistributed(g, m, kernels, iterations, DistOptions{
				Transport: tr,
				Node:      node,
				Addrs:     addrs,
				Listener:  listeners[node],
			})
		}(node)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}
	if len(sink) != 4*iterations {
		t.Fatalf("sink has %d bytes, want %d", len(sink), 4*iterations)
	}
	for iter := 0; iter < iterations; iter++ {
		for i := 0; i < 4; i++ {
			if want := byte((iter + i) * 3); sink[iter*4+i] != want {
				t.Fatalf("sink[%d] = %d, want %d", iter*4+i, sink[iter*4+i], want)
			}
		}
	}
}

// TestExecuteDistributedKernelFailure: a kernel error on one node must not
// leave the peer blocked — the closing links propagate the failure.
func TestExecuteDistributedKernelFailure(t *testing.T) {
	g, m := distGraph()
	boom := errors.New("boom")
	var sink [][]byte
	var mu sync.Mutex
	kernels := distKernels(&sink, &mu)
	kernels[1] = func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
		if iter == 2 {
			return nil, boom
		}
		return map[dataflow.EdgeID][]byte{1: {byte(iter)}}, nil
	}

	tr := transport.NewLoopback()
	ln, err := tr.Listen("n0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{"n0", "unused"}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			opts := DistOptions{Transport: tr, Node: node, Addrs: addrs, NodeOf: []int{0, 1}}
			if node == 0 {
				opts.Listener = ln
			}
			_, errs[node] = ExecuteDistributed(g, m, kernels, 10, opts)
		}(node)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("distributed run with failing kernel did not terminate")
	}
	if errs[1] == nil || !errors.Is(errs[1], boom) {
		t.Errorf("failing node error = %v, want %v", errs[1], boom)
	}
	if errs[0] == nil {
		t.Error("peer node should fail once the link goes down")
	}
}

// TestExecuteDistributedValidation covers option validation.
func TestExecuteDistributedValidation(t *testing.T) {
	g, m := distGraph()
	var sink [][]byte
	var mu sync.Mutex
	kernels := distKernels(&sink, &mu)
	cases := []DistOptions{
		{},                                   // no addresses
		{Addrs: []string{"a", "b"}, Node: 5}, // node out of range
		{Addrs: []string{"a"}},               // 2 procs, 1 node, no NodeOf
		{Addrs: []string{"a", "b"}, NodeOf: []int{0}},    // NodeOf too short
		{Addrs: []string{"a", "b"}, NodeOf: []int{0, 7}}, // NodeOf out of range
		{Addrs: []string{"a", "b"}, NodeOf: []int{1, 1}}, // node 0 hosts nothing
	}
	for i, opts := range cases {
		opts.Transport = transport.NewLoopback()
		if _, err := ExecuteDistributed(g, m, kernels, 1, opts); err == nil {
			t.Errorf("case %d: options %+v should be rejected", i, cases[i])
		}
	}
}

// TestExecuteDistributedDialFailure: a node whose peer never comes up
// fails with a transient dial error after retries, not a hang.
func TestExecuteDistributedDialFailure(t *testing.T) {
	g, m := distGraph()
	var sink [][]byte
	var mu sync.Mutex
	_, err := ExecuteDistributed(g, m, distKernels(&sink, &mu), 1, DistOptions{
		Transport: transport.NewLoopback(),
		Node:      1,
		Addrs:     []string{"nobody-home", "unused"},
		NodeOf:    []int{0, 1},
		Retry:     transport.RetryConfig{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	if err == nil || !strings.Contains(err.Error(), "could not reach node 0 at nobody-home") {
		t.Fatalf("err = %v, want dial failure naming the peer and address", err)
	}
	if !transport.IsTransient(err) {
		t.Errorf("refused dial should classify transient: %v", err)
	}
}

// TestExecuteDistributedLeaksNoGoroutines runs a full two-node TCP
// execution and checks the goroutine count returns to baseline.
func TestExecuteDistributedLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	_, _ = runTwoNodes(t, &transport.TCP{}, "127.0.0.1:0", 8)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
