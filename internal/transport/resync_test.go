package transport

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"time"
)

func TestResyncSetCodec(t *testing.T) {
	for _, ids := range [][]uint16{nil, {0}, {7}, {0, 1, 9, 65535}} {
		body := encodeResyncSet(ids)
		got, _, err := decodeResyncSet(body)
		if err != nil {
			t.Fatalf("set %v: decode: %v", ids, err)
		}
		if !equalU16(got, ids) {
			t.Fatalf("set %v round-tripped to %v", ids, got)
		}
		if re := encodeResyncSet(got); !bytes.Equal(re, body) {
			t.Fatalf("set %v: re-encode not canonical", ids)
		}
	}

	// Tampered CRC, short body, inflated count, unsorted and duplicate
	// IDs must all be rejected.
	good := encodeResyncSet([]uint16{3, 5})
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, _, err := decodeResyncSet(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("tampered CRC decoded cleanly (err %v)", err)
	}
	if _, _, err := decodeResyncSet(good[:3]); err == nil {
		t.Error("truncated header decoded cleanly")
	}
	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(bad[4:], 9)
	if _, _, err := decodeResyncSet(bad); err == nil {
		t.Error("inflated count decoded cleanly")
	}
	unsorted := encodeResyncSet([]uint16{5, 3}) // encoder trusts the caller; decoder must not
	if _, _, err := decodeResyncSet(unsorted); err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Errorf("unsorted set decoded cleanly (err %v)", err)
	}
	dup := encodeResyncSet([]uint16{3, 3})
	if _, _, err := decodeResyncSet(dup); err == nil {
		t.Error("duplicate IDs decoded cleanly")
	}
}

// FuzzDecodeResync throws adversarial bytes at the RESYNC body decoder:
// it must never panic, and any body it accepts must be canonical — the
// decoded set re-encodes to the identical bytes.
func FuzzDecodeResync(f *testing.F) {
	f.Add(encodeResyncSet(nil))
	f.Add(encodeResyncSet([]uint16{7}))
	f.Add(encodeResyncSet([]uint16{0, 1, 2, 3, 4, 5, 6, 7, 8}))
	f.Add([]byte{0, 0, 0, 0, 255, 255})
	f.Fuzz(func(t *testing.T, body []byte) {
		ids, _, err := decodeResyncSet(body)
		if err != nil {
			return
		}
		if re := encodeResyncSet(ids); !bytes.Equal(re, body) {
			t.Fatalf("accepted body is not canonical: %x re-encodes to %x", body, re)
		}
	})
}

// resyncLinkPair is linkPair with per-side LinkConfig tuning, so the two
// ends can carry different suppression sets (or none).
func resyncLinkPair(t *testing.T, tr Transport, addr string, hd, ha Handler, tuneD, tuneA func(*LinkConfig)) (*Link, *Link, error) {
	t.Helper()
	ln, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type acceptResult struct {
		l   *Link
		err error
	}
	acceptCh := make(chan acceptResult, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			acceptCh <- acceptResult{nil, err}
			return
		}
		cfg := LinkConfig{Node: 1}
		tuneA(&cfg)
		l, err := AcceptLink(c, cfg, func(peer int) ([]EdgeDecl, Handler, error) {
			return testManifest(false), ha, nil
		})
		acceptCh <- acceptResult{l, err}
	}()
	c, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cfg := LinkConfig{Node: 0, Edges: testManifest(true)}
	tuneD(&cfg)
	dialer, err := NewLink(c, cfg, hd)
	if err != nil {
		return nil, nil, err
	}
	res := <-acceptCh
	if res.err != nil {
		return nil, nil, res.err
	}
	return dialer, res.l, nil
}

func waitResyncVerified(t *testing.T, links ...*Link) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for _, l := range links {
		for !l.ResyncVerified() {
			if time.Now().After(deadline) {
				t.Fatal("timed out waiting for resync verification")
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestResyncSuppressesAcks: with edge 7 in both sides' suppression sets,
// the receiver's SendAck calls for it are swallowed before any wire or
// piggyback path — the sender's handler never sees an ack — while edge 9,
// outside the set, still acks normally.
func TestResyncSuppressesAcks(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			hd, ha := newRecordingHandler(), newRecordingHandler()
			tune := func(cfg *LinkConfig) { cfg.ResyncEdges = []uint16{7} }
			dialer, acceptor, err := resyncLinkPair(t, tr, testAddr(name), hd, ha, tune, tune)
			if err != nil {
				t.Fatal(err)
			}
			defer closeBoth(dialer, acceptor)
			if !dialer.ResyncNegotiated() || !acceptor.ResyncNegotiated() {
				t.Fatal("both sides configured the set but the link did not negotiate it")
			}
			waitResyncVerified(t, dialer, acceptor)

			msg := []byte{7, 0, 4, 0, 0, 0, 1, 2, 3, 4}
			for i := 0; i < 3; i++ {
				if err := dialer.SendData(7, msg); err != nil {
					t.Fatal(err)
				}
			}
			ha.waitData(t, 7, 3)
			for i := 0; i < 3; i++ {
				if err := acceptor.SendAck(7, 1); err != nil {
					t.Fatal(err)
				}
			}

			// Edge 9 (acceptor -> dialer) stays on the full-ack protocol;
			// its ack doubles as a barrier proving the suppressed acks had
			// every chance to arrive.
			if err := acceptor.SendData(9, []byte{9, 0, 0xaa, 0xbb}); err != nil {
				t.Fatal(err)
			}
			hd.waitData(t, 9, 1)
			if err := dialer.SendAck(9, 1); err != nil {
				t.Fatal(err)
			}
			ha.waitAcks(t, 9, 1)

			hd.mu.Lock()
			leaked := hd.acks[7]
			hd.mu.Unlock()
			if leaked != 0 {
				t.Fatalf("%d acks for the suppressed edge reached the sender", leaked)
			}
			st := acceptor.Stats()
			if st.AcksSuppressed != 3 {
				t.Errorf("AcksSuppressed = %d, want 3", st.AcksSuppressed)
			}
			if st.AcksSent != 0 || st.AcksPiggybacked != 0 {
				t.Errorf("suppressed acks leaked to the wire: %d standalone, %d piggybacked",
					st.AcksSent, st.AcksPiggybacked)
			}
			if got := acceptor.SuppressedAcks()[7]; got != 3 {
				t.Errorf("SuppressedAcks()[7] = %d, want 3", got)
			}
		})
	}
}

// TestResyncOldPeerInterop: a peer without a suppression set (an old
// binary, or a node whose verdict is empty) never advertises featResync,
// so the link falls back to full acking even though this side wanted
// suppression.
func TestResyncOldPeerInterop(t *testing.T) {
	hd, ha := newRecordingHandler(), newRecordingHandler()
	dialer, acceptor, err := resyncLinkPair(t, NewLoopback(), "resync-old-peer", hd, ha,
		func(cfg *LinkConfig) { cfg.ResyncEdges = []uint16{7} },
		func(cfg *LinkConfig) {})
	if err != nil {
		t.Fatal(err)
	}
	defer closeBoth(dialer, acceptor)
	if dialer.ResyncNegotiated() || acceptor.ResyncNegotiated() {
		t.Fatal("resync negotiated against a peer that never advertised it")
	}

	msg := []byte{7, 0, 4, 0, 0, 0, 1, 2, 3, 4}
	for i := 0; i < 3; i++ {
		if err := dialer.SendData(7, msg); err != nil {
			t.Fatal(err)
		}
	}
	ha.waitData(t, 7, 3)
	if err := acceptor.SendAck(7, 3); err != nil {
		t.Fatal(err)
	}
	hd.waitAcks(t, 7, 3)
	if st := acceptor.Stats(); st.AcksSuppressed != 0 {
		t.Errorf("AcksSuppressed = %d on an unnegotiated link", st.AcksSuppressed)
	}
}

// TestResyncSetMismatchRefused: both sides advertise featResync but
// computed different suppression sets — the verdicts came from different
// graphs or mappings — so the link must refuse to run rather than
// half-suppress, and the error must name the -resync flag.
func TestResyncSetMismatchRefused(t *testing.T) {
	hd, ha := newRecordingHandler(), newRecordingHandler()
	dialer, acceptor, err := resyncLinkPair(t, NewLoopback(), "resync-mismatch", hd, ha,
		func(cfg *LinkConfig) { cfg.ResyncEdges = []uint16{7} },
		func(cfg *LinkConfig) { cfg.ResyncEdges = []uint16{9} })
	if err != nil {
		t.Fatal(err)
	}
	defer closeBoth(dialer, acceptor)

	// Both ends tear down: the side that spots the mismatch carries the
	// descriptive error, its peer just sees the connection die.
	var errs []string
	for _, ch := range []chan error{hd.closed, ha.closed} {
		select {
		case err := <-ch:
			if err != nil {
				errs = append(errs, err.Error())
			}
		case <-time.After(5 * time.Second):
			t.Fatal("mismatched suppression sets did not close the link")
		}
	}
	joined := strings.Join(errs, "; ")
	if !strings.Contains(joined, "resync suppression set mismatch") {
		t.Errorf("close errors %q do not name the mismatch", joined)
	}
	if !strings.Contains(joined, "-resync") {
		t.Errorf("close errors %q do not tell the operator which flag to fix", joined)
	}
}

// TestResyncChaosSeverResume severs the connection mid-stream (twice)
// with suppression negotiated: the RESUME replay must re-send and
// re-verify the RESYNC frame, every message must still arrive exactly
// once, and no ack for the suppressed edge may surface on either the
// wire or the sender's handler — a sever must not resurrect acks.
func TestResyncChaosSeverResume(t *testing.T) {
	ft := NewFaultTransport(NewLoopback(), FaultConfig{Seed: 9, SeverAt: []int{13, 41}, SkipFrames: 4})
	rc := ReconnectConfig{Attempts: 50, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Deadline: 20 * time.Second}
	hd, ha := newRecordingHandler(), newRecordingHandler()

	ln, err := ft.Listen("resync-chaos")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan *Link, 1)
	go func() {
		var acceptor *Link
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			l, err := AcceptConn(c, LinkConfig{Node: 1, Reconnect: rc, ResyncEdges: []uint16{7}},
				func(peer int) ([]EdgeDecl, Handler, error) { return testManifest(false), ha, nil },
				func(peer int, token uint64) *Link {
					if acceptor != nil && acceptor.PeerNode() == peer && acceptor.Token() == token {
						return acceptor
					}
					return nil
				})
			if err != nil {
				continue
			}
			if l != nil {
				acceptor = l
				accepted <- l
			}
		}
	}()
	c, err := ft.Dial("resync-chaos")
	if err != nil {
		t.Fatal(err)
	}
	dialer, err := NewLink(c, LinkConfig{
		Node: 0, Edges: testManifest(true),
		Reconnect:   rc,
		ResyncEdges: []uint16{7},
		Redial:      func() (Conn, error) { return ft.Dial("resync-chaos") },
	}, hd)
	if err != nil {
		t.Fatal(err)
	}
	acceptor := <-accepted
	defer closeBoth(dialer, acceptor)
	if !dialer.ResyncNegotiated() || !acceptor.ResyncNegotiated() {
		t.Fatal("resync not negotiated")
	}

	const n = 120
	for i := 0; i < n; i++ {
		msg := make([]byte, 10)
		msg[0] = 7
		binary.LittleEndian.PutUint32(msg[2:], 4)
		binary.LittleEndian.PutUint32(msg[6:], uint32(i))
		if err := dialer.SendData(7, msg); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if err := acceptor.SendAck(7, 1); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	got := ha.waitData(t, 7, n)
	for i, msg := range got {
		if want := uint32(i); binary.LittleEndian.Uint32(msg[6:]) != want {
			t.Fatalf("message %d carries payload %d", i, binary.LittleEndian.Uint32(msg[6:]))
		}
	}
	waitResyncVerified(t, dialer, acceptor)

	if st := dialer.Stats(); st.Resumes == 0 {
		t.Fatal("no resumes happened; the sever schedule never fired")
	}
	hd.mu.Lock()
	leaked := hd.acks[7]
	hd.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d suppressed acks resurrected across the resume", leaked)
	}
	st := acceptor.Stats()
	if st.AcksSent != 0 || st.AcksPiggybacked != 0 {
		t.Fatalf("suppressed acks leaked to the wire after resume: %d standalone, %d piggybacked",
			st.AcksSent, st.AcksPiggybacked)
	}
	if st.AcksSuppressed == 0 {
		t.Fatal("no acks recorded as suppressed")
	}
}
