package lpc

import (
	"testing"

	"repro/internal/signal"
)

func compressOne(t *testing.T) (*Codec, *Frame) {
	t.Helper()
	c, err := NewCodec(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.CompressFrame(signal.Speech(256, 11))
	if err != nil {
		t.Fatal(err)
	}
	return c, f
}

func TestFrameMarshalRoundtrip(t *testing.T) {
	c, f := compressOne(t)
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalFrame(data, 1<<uint(c.Params().ErrorBits))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != f.N || g.M != f.M || g.StreamSymbols != f.StreamSymbols {
		t.Errorf("header mismatch: %+v vs %+v", g, f)
	}
	// The decoded frame must decompress to the same samples.
	want, err := c.DecompressFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecompressFrame(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("sample %d differs after wire roundtrip", i)
		}
	}
}

func TestUnmarshalFrameErrors(t *testing.T) {
	c, f := compressOne(t)
	data, _ := f.MarshalBinary()
	alphabet := 1 << uint(c.Params().ErrorBits)

	if _, err := UnmarshalFrame(data[:5], alphabet); err == nil {
		t.Error("truncated frame should fail")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 0xFF // magic
	if _, err := UnmarshalFrame(bad, alphabet); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := UnmarshalFrame(append(data, 0), alphabet); err == nil {
		t.Error("trailing bytes should fail")
	}
	// Symbol outside alphabet.
	if _, err := UnmarshalFrame(data, 2); err == nil {
		t.Error("tiny alphabet should reject stored symbols")
	}
}

func TestCompressedBitsMatchesWire(t *testing.T) {
	c, f := compressOne(t)
	data, _ := f.MarshalBinary()
	if got := f.CompressedBits(c.Params()); got != int64(len(data))*8 {
		t.Errorf("CompressedBits = %d, wire = %d bits", got, len(data)*8)
	}
}

func TestCompressionRatioWithSparseTable(t *testing.T) {
	c, _ := NewCodec(DefaultParams())
	rep, err := c.Analyze(signal.Speech(256*16, 21))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ratio < 1.4 {
		t.Errorf("compression ratio %.2f too low with sparse tables", rep.Ratio)
	}
}
