// Package kpn implements Kahn process networks — the modeling paradigm the
// paper names as the promising direction for extending SPI ("integration of
// SPI with KPN ... is a promising direction for future work", §3.1).
//
// A KPN is a set of deterministic sequential processes communicating over
// unbounded FIFO channels with blocking reads. Kahn's theorem guarantees
// the network's input/output behaviour is independent of scheduling. In
// practice channels must be bounded; this implementation runs processes as
// goroutines over bounded channels and applies Parks' algorithm: when the
// network reaches an *artificial* deadlock (every process blocked, at least
// one on a full channel), the smallest full channel grows. A deadlock with
// every process blocked on reads is a *true* deadlock and is reported.
//
// The SPI bridge (Bridge) runs a KPN channel over an SPI edge, carrying the
// network's tokens through SPI_dynamic messages — the integration the paper
// sketches.
package kpn

import (
	"errors"
	"fmt"
	"sync"
)

// ErrDeadlock reports a true deadlock: every process blocked on a read.
var ErrDeadlock = errors.New("kpn: true deadlock — all processes blocked reading")

// ErrTerminated is returned by channel operations after the network stops.
var ErrTerminated = errors.New("kpn: network terminated")

type blockKind uint8

const (
	blockedRead blockKind = iota
	blockedWrite
)

// Network coordinates processes and channels, detects deadlock, and applies
// Parks' capacity growth.
type Network struct {
	mu        sync.Mutex
	cond      *sync.Cond
	processes int
	blocked   int
	channels  []*chanState
	stopped   bool
	err       error
	growths   int
}

type chanState struct {
	name     string
	capacity int
	length   func() int
	grow     func()
	writers  int // processes currently blocked writing this channel
	readers  int // processes currently blocked reading this channel
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	n := &Network{}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// Growths returns how many Parks capacity expansions occurred.
func (n *Network) Growths() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.growths
}

// Err returns the terminal network error, if any.
func (n *Network) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// enterBlocked marks a process blocked; if every process is now blocked the
// network either grows a channel (artificial deadlock) or dies (true
// deadlock). Called with n.mu held.
func (n *Network) enterBlocked(kind blockKind, ch *chanState) {
	n.blocked++
	if kind == blockedWrite {
		ch.writers++
	} else {
		ch.readers++
	}
	if n.blocked == n.processes && n.processes > 0 {
		n.resolve()
	}
}

func (n *Network) exitBlocked(kind blockKind, ch *chanState) {
	n.blocked--
	if kind == blockedWrite {
		ch.writers--
	} else {
		ch.readers--
	}
}

// resolve handles an apparent global block. Called with n.mu held. The
// blocked counter can be momentarily stale — a broadcast-woken process
// stays counted until it reschedules — so resolve first checks whether any
// blocked operation can in fact proceed; only a genuinely stuck network is
// grown (artificial deadlock) or terminated (true deadlock).
func (n *Network) resolve() {
	for _, c := range n.channels {
		ln := c.length()
		if (c.readers > 0 && ln > 0) || (c.writers > 0 && ln < c.capacity) {
			// Progress is possible: the able process was already woken by
			// the state-changing operation's broadcast (every Write/Read/
			// growth broadcasts, and blockers re-check before sleeping),
			// so nothing to do. Re-broadcasting here would wake the whole
			// network on every spurious wakeup — a broadcast storm.
			return
		}
	}
	// Find the smallest-capacity channel with a blocked writer.
	var best *chanState
	for _, c := range n.channels {
		if c.writers > 0 && (best == nil || c.capacity < best.capacity) {
			best = c
		}
	}
	if best == nil {
		// Everyone blocked on reads of empty channels: true deadlock.
		n.stopped = true
		n.err = ErrDeadlock
		n.cond.Broadcast()
		return
	}
	best.capacity *= 2
	best.grow()
	n.growths++
	n.cond.Broadcast()
}

// Channel is a typed FIFO between exactly one producer and one consumer
// process.
type Channel[T any] struct {
	net *Network
	st  *chanState
	q   []T
	// peak tracks the maximum occupancy.
	peak int
	// reads/writes count completed operations.
	reads, writes int64
}

// NewChannel adds a channel with the given initial capacity (>=1).
func NewChannel[T any](n *Network, name string, capacity int) *Channel[T] {
	if capacity < 1 {
		capacity = 1
	}
	c := &Channel[T]{net: n}
	c.st = &chanState{
		name:     name,
		capacity: capacity,
		length:   func() int { return len(c.q) },
		grow:     func() {}, // capacity lives in st; queue is a slice
	}
	n.mu.Lock()
	n.channels = append(n.channels, c.st)
	n.mu.Unlock()
	return c
}

// Write appends a token, blocking while the channel is full. Under Parks'
// algorithm a full channel can grow instead of deadlocking the network.
func (c *Channel[T]) Write(v T) error {
	n := c.net
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(c.q) >= c.st.capacity && !n.stopped {
		n.enterBlocked(blockedWrite, c.st)
		// enterBlocked may have resolved the global block in our favour
		// (grown this channel or stopped the network); re-check before
		// sleeping or the resolve broadcast is lost.
		if len(c.q) >= c.st.capacity && !n.stopped {
			n.cond.Wait()
		}
		n.exitBlocked(blockedWrite, c.st)
	}
	if n.stopped {
		if n.err != nil {
			return n.err
		}
		return ErrTerminated
	}
	c.q = append(c.q, v)
	if len(c.q) > c.peak {
		c.peak = len(c.q)
	}
	c.writes++
	n.cond.Broadcast()
	return nil
}

// Read removes and returns the next token, blocking while the channel is
// empty. Blocking reads are the defining KPN primitive: a process may not
// poll for data.
func (c *Channel[T]) Read() (T, error) {
	n := c.net
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(c.q) == 0 && !n.stopped {
		n.enterBlocked(blockedRead, c.st)
		// See Write: resolve may have run inside enterBlocked.
		if len(c.q) == 0 && !n.stopped {
			n.cond.Wait()
		}
		n.exitBlocked(blockedRead, c.st)
	}
	var zero T
	if len(c.q) == 0 {
		if n.err != nil {
			return zero, n.err
		}
		return zero, ErrTerminated
	}
	v := c.q[0]
	c.q = c.q[1:]
	c.reads++
	n.cond.Broadcast()
	return v, nil
}

// Peak returns the maximum observed occupancy.
func (c *Channel[T]) Peak() int {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	return c.peak
}

// Reads returns the number of completed Read operations.
func (c *Channel[T]) Reads() int64 {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	return c.reads
}

// Writes returns the number of completed Write operations.
func (c *Channel[T]) Writes() int64 {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	return c.writes
}

// Capacity returns the current (possibly grown) capacity.
func (c *Channel[T]) Capacity() int {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	return c.st.capacity
}

// Process is a deterministic sequential KPN process; it runs until it
// returns. Returning a nil error is normal completion.
type Process func() error

// Run launches the processes and waits for all to finish. If a process
// returns a non-nil error, or a true deadlock occurs, the network stops and
// Run returns the first error. A process blocked forever at network
// termination receives ErrTerminated from its channel operation.
func (n *Network) Run(procs ...Process) error {
	n.mu.Lock()
	n.processes = len(procs)
	n.mu.Unlock()

	errs := make([]error, len(procs))
	var wg sync.WaitGroup
	for i, p := range procs {
		wg.Add(1)
		go func(i int, p Process) {
			defer wg.Done()
			errs[i] = p()
			n.mu.Lock()
			n.processes--
			// A finishing process may leave everyone else blocked: re-check.
			if n.blocked == n.processes && n.processes > 0 {
				n.resolve()
			}
			n.mu.Unlock()
		}(i, p)
	}
	wg.Wait()
	n.mu.Lock()
	n.stopped = true
	n.cond.Broadcast()
	netErr := n.err
	n.mu.Unlock()
	// A process's own failure is the root cause; deadlock errors that
	// cascade from it (the network stopping strands its peers) are
	// secondary.
	var procErr error
	for _, e := range errs {
		if e != nil && !errors.Is(e, ErrTerminated) && !errors.Is(e, ErrDeadlock) {
			procErr = e
			break
		}
	}
	firstErr := procErr
	if firstErr == nil {
		firstErr = netErr
	}
	n.mu.Lock()
	n.err = firstErr
	n.mu.Unlock()
	return firstErr
}

// String summarizes the network's channels.
func (n *Network) String() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := fmt.Sprintf("kpn: %d channels, %d growths", len(n.channels), n.growths)
	return s
}
