package main

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/transport"
)

const testGraph = `graph pipeline
actor src 100
actor mid 150
actor sink 50
edge sm src mid 4 4 bytes=2 delay=4
edge ms mid sink 4 4 bytes=2 dynamic
`

func parseTestGraph(t *testing.T) *dataflow.Graph {
	t.Helper()
	g, err := dataflow.Parse(strings.NewReader(testGraph))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func digestLines(out string) []string {
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "digest ") {
			lines = append(lines, l)
		}
	}
	return lines
}

// TestTwoNodesMatchSingle is the spinode end-to-end: the pipeline graph
// run on one node must produce the same sink digests as the same graph
// split across two spinode partitions talking TCP on localhost.
func TestTwoNodesMatchSingle(t *testing.T) {
	const iters = 12
	base := nodeConfig{
		Graph:      parseTestGraph(t),
		Assign:     []int{0, 1, 1},
		Iterations: iters,
		Seed:       7,
	}

	// Single node hosting both processors.
	single := base
	single.NodeOf = []int{0, 0}
	single.Addrs = []string{"only"}
	var singleOut bytes.Buffer
	if err := runNode(single, transport.NewLoopback(), nil, &singleOut); err != nil {
		t.Fatal(err)
	}
	want := digestLines(singleOut.String())
	if len(want) != 1 {
		t.Fatalf("single-node run printed %d digest lines:\n%s", len(want), singleOut.String())
	}

	// Two nodes over TCP localhost (node 1 dials node 0, so only node 0
	// needs a listener; its ephemeral port is shared via Addrs).
	tr := &transport.TCP{}
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr(), "unused"}
	graphs := [2]*dataflow.Graph{parseTestGraph(t), parseTestGraph(t)}
	var outs [2]bytes.Buffer
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			cfg := base
			cfg.Graph = graphs[node]
			cfg.NodeOf = []int{0, 1}
			cfg.Addrs = addrs
			cfg.Node = node
			var lnArg transport.Listener
			if node == 0 {
				lnArg = ln
			}
			errs[node] = runNode(cfg, tr, lnArg, &outs[node])
		}(node)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v\n%s", node, err, outs[node].String())
		}
	}
	var got []string
	for node := range outs {
		got = append(got, digestLines(outs[node].String())...)
	}
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("digests differ:\nsingle: %v\ndistributed: %v", want, got)
	}
}

func TestBuildMapping(t *testing.T) {
	g := parseTestGraph(t)
	m, err := buildMapping(g, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumProcs != 2 || len(m.Order[0]) != 1 || len(m.Order[1]) != 2 {
		t.Fatalf("mapping = %+v", m)
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]int{
		{0, 1},     // wrong length
		{0, -1, 0}, // negative
		{0, 2, 2},  // processor 1 empty
	} {
		if _, err := buildMapping(g, bad); err == nil {
			t.Errorf("assignment %v should be rejected", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("0, 1,2")
	if err != nil || len(got) != 3 || got[2] != 2 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "1,,2"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) should fail", bad)
		}
	}
}
