package syncgraph

// Synchronization cost accounting for SPI buffer protocols (paper §4).
//
// SPI_BBS (bounded buffer synchronization) applies when a buffer provably
// never exceeds a predetermined size; the sender and receiver keep shared
// read/write pointers, costing a fixed small number of pointer operations
// per transfer. SPI_UBS (unbounded buffer synchronization) applies when no
// static bound exists; it additionally exchanges acknowledgement messages
// to keep the dynamically grown buffer consistent.

// Protocol selects a buffer-synchronization protocol for an IPC edge.
type Protocol uint8

const (
	// BBS is bounded-buffer synchronization.
	BBS Protocol = iota
	// UBS is unbounded-buffer synchronization (acknowledgement-based).
	UBS
)

func (p Protocol) String() string {
	if p == BBS {
		return "SPI_BBS"
	}
	return "SPI_UBS"
}

// Per-transfer synchronization operation counts on a shared-memory target
// (Sriram & Bhattacharyya): BBS costs two synchronization accesses per
// transfer, UBS four.
const (
	BBSOpsPerTransfer = 2
	UBSOpsPerTransfer = 4
)

// MessagesPerTransfer returns the number of distinct messages one logical
// transfer costs on a distributed-memory target: the data message itself,
// plus an acknowledgement message for UBS (BBS back-pressure rides on the
// shared pointers mapped into the bounded buffer, needing no extra
// message in steady state).
func MessagesPerTransfer(p Protocol) int {
	if p == UBS {
		return 2
	}
	return 1
}

// CostSummary aggregates the per-iteration synchronization cost of a graph.
type CostSummary struct {
	// IPCEdges and SyncEdges count the live edges by kind.
	IPCEdges, SyncEdges int
	// SharedMemoryOps is the per-iteration synchronization access count on
	// a shared-memory target under the given per-edge protocols.
	SharedMemoryOps int
	// Messages is the per-iteration message count on a distributed-memory
	// target: one data message per IPC edge, one sync message per pure
	// sync edge (resynchronization edges and surviving acks are separate
	// messages in the HDL SPI library, per §4.1).
	Messages int
}

// Cost computes the synchronization cost of the live graph. protocols maps
// an IPC edge's label to its protocol; labels not present default to BBS.
func Cost(g *Graph, protocols map[string]Protocol) CostSummary {
	var s CostSummary
	for _, e := range g.Edges() {
		switch e.Kind {
		case IPCEdge:
			s.IPCEdges++
			p := protocols[e.Label]
			if p == UBS {
				s.SharedMemoryOps += UBSOpsPerTransfer
			} else {
				s.SharedMemoryOps += BBSOpsPerTransfer
			}
			s.Messages += MessagesPerTransfer(p)
		case SyncEdge:
			s.SyncEdges++
			s.SharedMemoryOps += BBSOpsPerTransfer
			s.Messages++
		}
	}
	return s
}
