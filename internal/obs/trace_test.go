package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerRecordsAndWraps(t *testing.T) {
	tr := NewTracer(4, TestClock(1))
	for i := 0; i < 6; i++ {
		tr.Instant("cat", "ev", 0, i)
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4 (ring capacity)", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	// Oldest-first: tids 2,3,4,5 survive.
	for i, ev := range evs {
		if ev.Tid != i+2 {
			t.Errorf("event %d has tid %d, want %d", i, ev.Tid, i+2)
		}
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS <= evs[i-1].TS {
			t.Errorf("timestamps not increasing: %d then %d", evs[i-1].TS, evs[i].TS)
		}
	}
}

func TestTestClockDeterministic(t *testing.T) {
	a, b := TestClock(42), TestClock(42)
	for i := 0; i < 100; i++ {
		if av, bv := a(), b(); av != bv {
			t.Fatalf("call %d: %d != %d (same seed must give same timestamps)", i, av, bv)
		}
	}
	c := TestClock(43)
	same := true
	for i := 0; i < 10; i++ {
		if a() != c() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical timestamp streams")
	}
}

func TestSpanDuration(t *testing.T) {
	tr := NewTracer(16, TestClock(7))
	start := tr.Now()
	tr.Span("kernel", "fire", 1, 2, start, A("iter", 3))
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	ev := evs[0]
	if ev.Ph != PhaseComplete || ev.TS != start || ev.Dur <= 0 {
		t.Errorf("span = %+v, want complete phase at %d with positive dur", ev, start)
	}
	if ev.Args[0] != (Arg{"iter", 3}) {
		t.Errorf("args = %+v", ev.Args)
	}
}

// chromeDoc mirrors the subset of the trace_event format we emit.
type chromeDoc struct {
	TraceEvents []struct {
		Name string           `json:"name"`
		Cat  string           `json:"cat"`
		Ph   string           `json:"ph"`
		TS   int64            `json:"ts"`
		Dur  *int64           `json:"dur"`
		Pid  int              `json:"pid"`
		Tid  int              `json:"tid"`
		Args map[string]int64 `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestChromeJSON(t *testing.T) {
	tr := NewTracer(16, TestClock(9))
	tr.Instant("edge", "send:sm", 0, 3, A("bytes", 6))
	tr.Span("kernel", "src", 0, 1000, tr.Now())
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2", len(doc.TraceEvents))
	}
	in := doc.TraceEvents[0]
	if in.Ph != "i" || in.Name != "send:sm" || in.Cat != "edge" || in.Tid != 3 ||
		in.Args["bytes"] != 6 || in.Dur != nil {
		t.Errorf("instant event = %+v", in)
	}
	sp := doc.TraceEvents[1]
	if sp.Ph != "X" || sp.Name != "src" || sp.Dur == nil || sp.Tid != 1000 {
		t.Errorf("span event = %+v", sp)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// Empty tracer renders an empty, still-valid document.
	b.Reset()
	if err := WriteChromeEvents(&b, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
}

// TestTracerConcurrent is the -race contract for the event ring.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1024, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Instant("c", "e", 0, w)
				if i%100 == 0 {
					tr.Events()
					var b strings.Builder
					tr.WriteChrome(&b)
				}
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 1024 {
		t.Errorf("Len = %d, want full ring", tr.Len())
	}
	if got := tr.Dropped() + int64(tr.Len()); got != 8000 {
		t.Errorf("retained+dropped = %d, want 8000", got)
	}
}
