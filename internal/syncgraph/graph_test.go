package syncgraph

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/sched"
)

func TestAddVertexAndEdge(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("A", 0, 10)
	b := g.AddVertex("B", 1, 20)
	g.AddEdge(a, b, 2, IPCEdge, "data")
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %d/%d, want 2/1", g.NumVertices(), g.NumEdges())
	}
	e := g.Edges()[0]
	if e.Src != a || e.Snk != b || e.Delay != 2 || e.Kind != IPCEdge || e.Label != "data" {
		t.Errorf("edge corrupted: %+v", e)
	}
	if g.Vertex(a).Name != "A" || g.Vertex(b).Proc != 1 {
		t.Error("vertex data corrupted")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := NewGraph()
	a := g.AddVertex("A", 0, 1)
	g.AddEdge(a, a, -1, SyncEdge, "bad")
}

func TestEdgeKindString(t *testing.T) {
	for k, want := range map[EdgeKind]string{
		IntraprocEdge: "intraproc", LoopbackEdge: "loopback", IPCEdge: "ipc", SyncEdge: "sync",
	} {
		if k.String() != want {
			t.Errorf("%v.String() = %s", want, k)
		}
	}
}

func TestSyncCountExcludesStructural(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("A", 0, 1)
	b := g.AddVertex("B", 0, 1)
	c := g.AddVertex("C", 1, 1)
	g.AddEdge(a, b, 0, IntraprocEdge, "seq")
	g.AddEdge(b, a, 1, LoopbackEdge, "loop")
	g.AddEdge(b, c, 0, IPCEdge, "data")
	g.AddEdge(c, b, 1, SyncEdge, "ack")
	if got := g.SyncCount(); got != 2 {
		t.Errorf("SyncCount = %d, want 2 (ipc + sync only)", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("A", 0, 1)
	b := g.AddVertex("B", 1, 1)
	g.AddEdge(a, b, 0, SyncEdge, "s")
	c := g.Clone()
	c.AddEdge(b, a, 1, SyncEdge, "back")
	if g.NumEdges() != 1 || c.NumEdges() != 2 {
		t.Errorf("clone not independent: %d vs %d", g.NumEdges(), c.NumEdges())
	}
}

func TestDOTOutput(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("A", 0, 1)
	b := g.AddVertex("B", 1, 1)
	g.AddEdge(a, b, 1, SyncEdge, "s")
	dot := g.DOT("test")
	for _, want := range []string{"digraph", "dashed", `label="1"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func buildMappedPipeline(t *testing.T) (*dataflow.Graph, *sched.Mapping) {
	t.Helper()
	g := dataflow.New("pipe")
	a := g.AddActor("A", 10)
	b := g.AddActor("B", 10)
	c := g.AddActor("C", 10)
	g.AddEdge("ab", a, b, 1, 1, dataflow.EdgeSpec{})
	g.AddEdge("bc", b, c, 1, 1, dataflow.EdgeSpec{Delay: 2})
	m := &sched.Mapping{
		NumProcs: 2,
		Proc:     []sched.Processor{0, 0, 1},
		Order:    [][]dataflow.ActorID{{a, b}, {c}},
	}
	return g, m
}

func TestBuildIPCGraph(t *testing.T) {
	g, m := buildMappedPipeline(t)
	sg, err := BuildIPCGraph(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumVertices() != 3 {
		t.Fatalf("vertices = %d, want 3", sg.NumVertices())
	}
	kinds := map[EdgeKind]int{}
	for _, e := range sg.Edges() {
		kinds[e.Kind]++
	}
	// a->b intraproc; loopback on each proc (2); b->c IPC.
	if kinds[IntraprocEdge] != 1 || kinds[LoopbackEdge] != 2 || kinds[IPCEdge] != 1 {
		t.Errorf("edge kinds = %v", kinds)
	}
	// bc has 2 delays and moves 1 token/iter: slack = 2.
	for _, e := range sg.EdgesOfKind(IPCEdge) {
		if e.Delay != 2 {
			t.Errorf("IPC edge delay = %d, want 2", e.Delay)
		}
	}
}

func TestBuildIPCGraphUsesBlockCost(t *testing.T) {
	// q scales exec: A fires twice per iteration.
	g := dataflow.New("r")
	a := g.AddActor("A", 10)
	b := g.AddActor("B", 10)
	g.AddEdge("ab", a, b, 1, 2, dataflow.EdgeSpec{}) // q = [2 1]
	m := &sched.Mapping{
		NumProcs: 2,
		Proc:     []sched.Processor{0, 1},
		Order:    [][]dataflow.ActorID{{a}, {b}},
	}
	sg, err := BuildIPCGraph(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if sg.Vertex(0).ExecCycles != 20 {
		t.Errorf("block cost = %d, want 20", sg.Vertex(0).ExecCycles)
	}
}

func TestAddFeedback(t *testing.T) {
	g, m := buildMappedPipeline(t)
	sg, err := BuildIPCGraph(g, m)
	if err != nil {
		t.Fatal(err)
	}
	n := AddAllFeedback(sg, 3)
	if n != 1 {
		t.Fatalf("added %d feedback edges, want 1", n)
	}
	var found bool
	for _, e := range sg.EdgesOfKind(SyncEdge) {
		if strings.HasPrefix(e.Label, "ack:") && e.Delay == 3 {
			found = true
		}
	}
	if !found {
		t.Error("feedback edge missing or mislabeled")
	}
}

func TestAddFeedbackClampsSlots(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("A", 0, 1)
	b := g.AddVertex("B", 1, 1)
	g.AddEdge(a, b, 0, IPCEdge, "d")
	AddFeedback(g, g.EdgesOfKind(IPCEdge)[0], 0)
	if e := g.EdgesOfKind(SyncEdge)[0]; e.Delay != 1 {
		t.Errorf("clamped delay = %d, want 1", e.Delay)
	}
}
