// Package signal provides deterministic random number generation and
// synthetic signal/observation sources for the SPI reproduction.
//
// The paper's evaluation uses acoustic input data (application 1) and
// turbine-blade crack-length observations (application 2); neither dataset
// is available, so this package synthesizes statistically comparable inputs
// from seeded generators. Everything is reproducible: the same seed always
// yields the same sequence, with no dependence on wall-clock time or global
// state.
package signal

import "math"

// RNG is a small, fast, deterministic xorshift64* generator. The zero value
// is not valid; use NewRNG.
type RNG struct {
	state uint64
	// cached spare normal deviate for Box-Muller
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with the given value. A zero seed is
// remapped to a fixed nonzero constant (xorshift state must be nonzero).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform deviate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("signal: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal deviate (Box-Muller with caching).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}
