package dataflow

import (
	"fmt"
)

// Data-parallel actor fission. The paper's LPC application hand-
// parallelizes actor D (error generation) across n PEs behind an I/O
// interface: scatter the frame sections, compute in parallel, gather the
// error values. Fission automates that rewrite for any stateless
// data-parallel actor: the actor's node becomes a scatter stage, k fresh
// replica actors each carry 1/k of the work, and a gather stage
// reassembles the replica chunks in order, so downstream actors see
// byte-identical payloads. The replica count k and the vectorization
// block factor B are chosen jointly under a BlockMemoryBytes-style
// memory bound (per Lin et al., "Memory-constrained Vectorization and
// Scheduling of Dataflow Graphs"): a larger k splits the compute finer
// but adds 2k scatter/gather messages per iteration, which only pay off
// when a large enough block amortizes them — and both k and B cost
// buffer memory.
//
// The rewrite is ID-stable: every actor and edge of the source graph
// keeps its ID and name in the rewritten graph (the fissioned actor's
// node is reused as the scatter stage; its output edges are re-rooted at
// the gather stage). Kernels written against the source graph therefore
// run unchanged on every non-fissioned actor, and spi.FissionKernels
// wraps the fissioned actor's kernel into the scatter/replica/gather
// stages.

// SplitCounts partitions n tokens over k replicas: replicas 0..k-2 take
// floor(n/k) tokens each and the last replica takes the remainder, so
// reassembling the chunks in replica order is token-exact for every n
// and k (including n < k, where the last replica takes everything).
func SplitCounts(n, k int) []int {
	if k <= 0 {
		return nil
	}
	counts := make([]int, k)
	if n <= 0 {
		return counts
	}
	base := n / k
	for i := 0; i < k-1; i++ {
		counts[i] = base
	}
	counts[k-1] = n - (k-1)*base
	return counts
}

// ChunkBound returns an upper bound on the tokens replica i can receive
// when any runtime count n <= total is split by SplitCounts over k
// replicas. Replicas before the last see at most floor(total/k); the
// last replica's worst case over all n <= total is
// max(total/k + total%k, total/k + k - 2) (the remainder can be as
// large as k-1 when the quotient drops by one). The bound is clamped to
// [1, total] so it is always a legal SDF rate.
func ChunkBound(total, k, i int) int {
	if total <= 0 || k <= 0 {
		return 1
	}
	if k == 1 {
		return total
	}
	var b int
	if i < k-1 {
		b = total / k
	} else {
		b = total/k + total%k
		if alt := total/k + k - 2; total/k >= 1 && alt > b {
			b = alt
		}
	}
	if b < 1 {
		b = 1
	}
	if b > total {
		b = total
	}
	return b
}

// FissionOptions configures a fission rewrite.
type FissionOptions struct {
	// K fixes the replica count. Zero means choose k (and the block
	// factor) jointly under MemBound via the cost model below.
	K int
	// MemBound caps the modeled buffer memory (BlockMemoryBytes) of the
	// rewritten graph at the chosen block factor. <= 0 means unbounded.
	MemBound int64
	// MaxK caps the replica-count search; <= 0 defaults to 16.
	MaxK int
	// MaxBlock caps the block-factor search; <= 0 defaults to 64.
	MaxBlock int
	// MsgCycles is the modeled per-message overhead in processor cycles
	// (header, credit, scheduling) used by the joint chooser; <= 0
	// defaults to 400.
	MsgCycles int64
	// Split lists source input edges whose payload is split token-wise
	// across the replicas (replica i receives its SplitCounts chunk).
	// Input edges not listed are broadcast: every replica receives the
	// full payload. Broadcast is the default because a data-parallel
	// kernel may need shared state (the LPC coefficients, the frame
	// history overlap) alongside its chunk; output edges are always
	// split.
	Split []EdgeID
}

// FissionPlan is the result of a fission rewrite.
type FissionPlan struct {
	// Graph is the rewritten graph. Actor and edge IDs of the source
	// graph are preserved; the new replica actors, the gather actor, and
	// the scatter/gather edges are appended after them.
	Graph *Graph
	// Source is the graph that was rewritten (not modified).
	Source *Graph
	// Actor is the fissioned actor (same ID in Source and Graph; in
	// Graph its node is the scatter stage).
	Actor ActorID
	// K is the replica count; Block the jointly chosen block factor.
	K, Block int
	// MemoryBytes is BlockMemoryBytes of the rewritten graph at Block;
	// MemBound echoes the bound it was chosen under (0 = unbounded).
	MemoryBytes, MemBound int64
	// Scatter, Replicas, Gather identify the new stages in Graph.
	// Scatter == Actor (the node is reused).
	Scatter  ActorID
	Replicas []ActorID
	Gather   ActorID
	// ScatterEdges maps each source input edge to its k scatter->replica
	// edges; GatherEdges maps each source output edge to its k
	// replica->gather edges (both in replica order).
	ScatterEdges map[EdgeID][]EdgeID
	GatherEdges  map[EdgeID][]EdgeID
	// SplitIn marks the source input edges that are split rather than
	// broadcast.
	SplitIn map[EdgeID]bool
	// InTokens / OutTokens record the per-iteration token bound of each
	// source input/output edge (the totals SplitCounts chunks against).
	InTokens  map[EdgeID]int64
	OutTokens map[EdgeID]int64
}

// Fissionable reports whether the actor can be fissioned: it must have
// at least one input and one output edge (sources and sinks have no
// chunkable stream) and no self-loop (a self-loop is actor state, and
// fission requires statelessness).
func Fissionable(g *Graph, a ActorID) error {
	if int(a) < 0 || int(a) >= g.NumActors() {
		return fmt.Errorf("dataflow: fission of unknown actor %d", a)
	}
	if len(g.In(a)) == 0 || len(g.Out(a)) == 0 {
		return fmt.Errorf("dataflow: actor %q is not fissionable: fission needs at least one input and one output edge", g.Actor(a).Name)
	}
	for _, eid := range g.Out(a) {
		if g.Edge(eid).Snk == a {
			return fmt.Errorf("dataflow: actor %q is not fissionable: self-loop %q carries state across firings", g.Actor(a).Name, g.Edge(eid).Name)
		}
	}
	return nil
}

// HeaviestFissionable returns the fissionable actor with the largest
// ExecCycles — the default target when the caller names none.
func HeaviestFissionable(g *Graph) (ActorID, error) {
	best, bestCost := NoActor, int64(-1)
	for _, a := range g.Actors() {
		if Fissionable(g, a) != nil {
			continue
		}
		c := g.Actor(a).ExecCycles
		if c <= 0 {
			c = 1
		}
		if c > bestCost {
			best, bestCost = a, c
		}
	}
	if best == NoActor {
		return NoActor, fmt.Errorf("dataflow: graph %q has no fissionable actor", g.Name())
	}
	return best, nil
}

// Fission rewrites actor a of g into k replicas behind scatter/gather
// stages and returns the plan. When opts.K is zero, k and the block
// factor are chosen jointly under opts.MemBound: the chooser minimizes
// the modeled per-iteration cost
//
//	cost(k, B) = ExecCycles(a)/k + MsgCycles * k * (ins+outs) / B
//
// over k in [1, MaxK] with B the largest deadlock-free block whose
// BlockMemoryBytes fits the bound — so a tight bound backs k off to
// leave room for the block that amortizes the scatter/gather traffic.
func Fission(g *Graph, a ActorID, opts FissionOptions) (*FissionPlan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := Fissionable(g, a); err != nil {
		return nil, err
	}
	maxK := opts.MaxK
	if maxK <= 0 {
		maxK = 16
	}
	maxBlock := opts.MaxBlock
	if maxBlock <= 0 {
		maxBlock = 64
	}
	msgCycles := opts.MsgCycles
	if msgCycles <= 0 {
		msgCycles = 400
	}
	split := map[EdgeID]bool{}
	for _, eid := range opts.Split {
		found := false
		for _, in := range g.In(a) {
			if in == eid {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("dataflow: split edge %d is not an input of actor %q", eid, g.Actor(a).Name)
		}
		split[eid] = true
	}

	build := func(k int) (*FissionPlan, error) {
		plan, err := rewrite(g, a, k, split)
		if err != nil {
			return nil, err
		}
		vp, err := Vectorize(plan.Graph, opts.MemBound, maxBlock)
		if err != nil {
			return nil, err
		}
		plan.Block = vp.Block
		plan.MemoryBytes = vp.MemoryBytes
		plan.MemBound = opts.MemBound
		if opts.MemBound > 0 && plan.MemoryBytes > opts.MemBound {
			return nil, fmt.Errorf("dataflow: fission of %q into %d replicas needs %d bytes of buffer memory, bound is %d",
				g.Actor(a).Name, k, plan.MemoryBytes, opts.MemBound)
		}
		return plan, nil
	}

	if opts.K > 0 {
		return build(opts.K)
	}

	// Joint (k, B) selection: score every feasible k by the modeled
	// per-iteration cost and keep the cheapest (ties go to the smaller
	// k — fewer replicas, less plumbing).
	work := g.Actor(a).ExecCycles
	if work <= 0 {
		work = 1
	}
	edges := int64(len(g.In(a)) + len(g.Out(a)))
	var best *FissionPlan
	var bestCost float64
	for k := 1; k <= maxK; k++ {
		plan, err := build(k)
		if err != nil {
			// Over the memory bound (or otherwise infeasible): larger k
			// only costs more memory, so stop searching.
			break
		}
		cost := float64(work)/float64(k) +
			float64(msgCycles)*float64(int64(k)*edges)/float64(plan.Block)
		if best == nil || cost < bestCost {
			best, bestCost = plan, cost
		}
	}
	if best == nil {
		return nil, fmt.Errorf("dataflow: no feasible fission of %q under memory bound %d", g.Actor(a).Name, opts.MemBound)
	}
	return best, nil
}

// rewrite builds the fissioned graph for a fixed k. The source actors
// and edges are re-added in insertion order so their IDs survive; actor
// a's node becomes the scatter stage, its output edges are re-rooted at
// the gather stage, and the scatter/gather plumbing is appended.
func rewrite(g *Graph, a ActorID, k int, split map[EdgeID]bool) (*FissionPlan, error) {
	if k <= 0 {
		return nil, fmt.Errorf("dataflow: fission into %d replicas", k)
	}
	q, err := g.RepetitionsVector()
	if err != nil {
		return nil, err
	}
	name := g.Actor(a).Name
	f := New(g.Name())

	// The scatter and gather stages move pointers, not MACs: model them
	// at a small fixed cost so schedulers do not mistake them for the
	// compute they replaced.
	const stageCycles = 50
	replicaCycles := g.Actor(a).ExecCycles / int64(k)
	if replicaCycles < 1 {
		replicaCycles = 1
	}

	// Actors, in source order; actor a keeps its slot (and name) as the
	// scatter stage.
	for _, id := range g.Actors() {
		act := g.Actor(id)
		if id == a {
			f.AddActor(act.Name, stageCycles)
			continue
		}
		f.AddActor(act.Name, act.ExecCycles)
	}
	replicas := make([]ActorID, k)
	for i := 0; i < k; i++ {
		replicas[i] = f.AddActor(fmt.Sprintf("%s#%d", name, i), replicaCycles)
	}
	gather := f.AddActor(name+".gather", stageCycles)

	// Edges, in source order: edges out of a re-root at the gather
	// stage, everything else copies verbatim (IDs line up by
	// construction).
	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		src := e.Src
		if src == a {
			src = gather
		}
		spec := EdgeSpec{
			Delay:          e.Delay,
			TokenBytes:     e.TokenBytes,
			ProduceDynamic: e.Produce.Kind == DynamicPort,
			ConsumeDynamic: e.Consume.Kind == DynamicPort,
		}
		f.AddEdge(e.Name, src, e.Snk, e.Produce.Rate, e.Consume.Rate, spec)
	}

	plan := &FissionPlan{
		Graph:        f,
		Source:       g,
		Actor:        a,
		K:            k,
		Scatter:      a,
		Replicas:     replicas,
		Gather:       gather,
		ScatterEdges: map[EdgeID][]EdgeID{},
		GatherEdges:  map[EdgeID][]EdgeID{},
		SplitIn:      map[EdgeID]bool{},
		InTokens:     map[EdgeID]int64{},
		OutTokens:    map[EdgeID]int64{},
	}

	// edgeTokens bounds the tokens edge eid moves per graph iteration.
	// IterationTokens counts a dynamic port as one packed token per
	// firing; for sizing the plumbing we need the declared upper bound
	// (the Rate of a DynamicPort is the paper's "x has an upper bound of
	// 10"), so take the larger of the two endpoints' declared totals.
	edgeTokens := func(eid EdgeID) int64 {
		e := g.Edge(eid)
		total := q[e.Src] * int64(e.Produce.Rate)
		if c := q[e.Snk] * int64(e.Consume.Rate); c > total {
			total = c
		}
		if total < 1 {
			total = 1
		}
		return total
	}

	// Scatter plumbing: one dynamic edge per (input edge, replica). A
	// broadcast edge carries up to the full per-iteration payload to
	// every replica; a split edge carries replica i's ChunkBound. The
	// chunks vary at run time (dynamic sources, uneven tails), so the
	// plumbing is always dynamic-rate with the bound as the declared
	// maximum — exactly the paper's VTS discipline.
	for _, eid := range g.In(a) {
		e := g.Edge(eid)
		total := edgeTokens(eid)
		plan.InTokens[eid] = total
		plan.SplitIn[eid] = split[eid]
		ids := make([]EdgeID, k)
		for i := 0; i < k; i++ {
			bound := int(total)
			if split[eid] {
				bound = ChunkBound(int(total), k, i)
			}
			ids[i] = f.AddEdge(fmt.Sprintf("%s>%s#%d", e.Name, name, i), a, replicas[i], bound, bound,
				EdgeSpec{TokenBytes: e.TokenBytes, ProduceDynamic: true, ConsumeDynamic: true})
		}
		plan.ScatterEdges[eid] = ids
	}

	// Gather plumbing: one dynamic edge per (output edge, replica),
	// carrying replica i's chunk of the output stream (last replica
	// takes the uneven tail, plus one token of headroom for a trailing
	// partial token of a dynamic byte stream).
	for _, eid := range g.Out(a) {
		e := g.Edge(eid)
		total := edgeTokens(eid)
		plan.OutTokens[eid] = total
		ids := make([]EdgeID, k)
		for i := 0; i < k; i++ {
			bound := ChunkBound(int(total), k, i)
			if i == k-1 && bound < int(total) {
				bound++ // partial-token tail headroom
			}
			ids[i] = f.AddEdge(fmt.Sprintf("%s#%d>%s", name, i, e.Name), replicas[i], gather, bound, bound,
				EdgeSpec{TokenBytes: e.TokenBytes, ProduceDynamic: true, ConsumeDynamic: true})
		}
		plan.GatherEdges[eid] = ids
	}

	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("dataflow: fission of %q produced an invalid graph: %w", name, err)
	}
	if _, err := f.RepetitionsVector(); err != nil {
		return nil, fmt.Errorf("dataflow: fission of %q produced an inconsistent graph: %w", name, err)
	}
	return plan, nil
}

// String renders the plan for inspection (spigraph -fission).
func (p *FissionPlan) String() string {
	s := fmt.Sprintf("fission %q into %d replicas (block %d, memory %d bytes", p.Source.Actor(p.Actor).Name, p.K, p.Block, p.MemoryBytes)
	if p.MemBound > 0 {
		s += fmt.Sprintf(" of %d bound", p.MemBound)
	}
	return s + ")"
}
