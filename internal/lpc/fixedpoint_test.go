package lpc

import (
	"math"
	"testing"

	"repro/internal/dsp"
	"repro/internal/fixed"
	"repro/internal/signal"
)

func TestQuantizeModelShift(t *testing.T) {
	m := &dsp.LPCModel{Coeffs: []float64{1.79, -1.21, 0.36}}
	hm := QuantizeModel(m)
	if hm.Shift != 1 {
		t.Errorf("shift = %d, want 1 (max |c| = 1.79 < 2)", hm.Shift)
	}
	eff := hm.Float()
	for i, c := range m.Coeffs {
		if math.Abs(eff[i]-c) > math.Pow(2, float64(hm.Shift))/32768 {
			t.Errorf("coeff %d: %v vs %v", i, eff[i], c)
		}
	}
}

func TestQuantizeModelNoShiftNeeded(t *testing.T) {
	m := &dsp.LPCModel{Coeffs: []float64{0.5, -0.25}}
	if hm := QuantizeModel(m); hm.Shift != 0 {
		t.Errorf("shift = %d, want 0", hm.Shift)
	}
}

func TestHardwareResidualTracksFloat(t *testing.T) {
	x := signal.Speech(512, 13)
	m, err := dsp.LPCAnalyze(x, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Residual(x)
	got := HardwareResidual(m, x)
	if len(got) != len(want) {
		t.Fatal("length mismatch")
	}
	var maxErr float64
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > maxErr {
			maxErr = d
		}
	}
	// Q15 with a shift of 1-2 gives ~2^-13 coefficient resolution; over
	// 10 taps the residual error stays in the 1e-2 range for unit-scale
	// signals.
	if maxErr > 0.02 {
		t.Errorf("max |hardware - float| = %v, want < 0.02", maxErr)
	}
	if maxErr == 0 {
		t.Error("suspiciously exact: quantization should perturb something")
	}
}

func TestHardwareResidualDeterministic(t *testing.T) {
	x := signal.Speech(128, 3)
	m, _ := dsp.LPCAnalyze(x, 8)
	a := HardwareResidual(m, x)
	b := HardwareResidual(m, x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("bit-true path not deterministic")
		}
	}
}

func TestHardwareResidualSaturates(t *testing.T) {
	// A pathological model that overshoots: the hardware saturates rather
	// than wrapping.
	m := &dsp.LPCModel{Coeffs: []float64{-3.9}}
	frame := []float64{0.9, 0.9}
	got := HardwareResidual(m, frame)
	// Prediction of sample 1 = -3.9*0.9 = -3.51 -> saturates to -1;
	// error = 0.9 - (-1) = 1.9 -> saturates to ~+1.
	if got[1] < 0.99 {
		t.Errorf("saturated error = %v, want ~= +1", got[1])
	}
	// No wraparound artifacts (a wrapped value would be hugely negative).
	for _, v := range got {
		if v < -1 || v > 1 {
			t.Errorf("value %v outside Q15 range", v)
		}
	}
}

func TestHardwareResidualPE(t *testing.T) {
	// The per-PE split of the hardware residual matches the whole-frame
	// hardware residual (same property the float path guarantees).
	x := signal.Speech(300, 23)
	m, _ := dsp.LPCAnalyze(x, 10)
	hm := QuantizeModel(m)
	q := fixed.FromFloats(x)
	full := hm.Residual(q)
	// Simulate 3 PEs with overlapping history, as the FPGA does.
	for _, n := range []int{2, 3} {
		for p := 0; p < n; p++ {
			start := p * len(q) / n
			end := (p + 1) * len(q) / n
			hist := len(hm.Coeffs)
			if start < hist {
				hist = start
			}
			section := q[start-hist : end]
			part := hm.Residual(section)[hist:]
			for i, v := range part {
				if v != full[start+i] {
					t.Fatalf("n=%d PE %d sample %d: %v vs %v", n, p, i, v, full[start+i])
				}
			}
		}
	}
}
