package lpc

import (
	"repro/internal/dsp"
)

// CompressFrameParallel is CompressFrame with actor D distributed across
// nPE SPI-connected workers, as the paper's co-design implementation does.
// The output is bit-identical to the serial codec: the residual split is
// exact (workers receive the overlapping history they need), and every
// other stage is unchanged.
func (c *Codec) CompressFrameParallel(frame []float64, nPE int) (*Frame, *ParallelStats, error) {
	if len(frame) != c.p.FrameSize {
		return nil, nil, errFrameSize(c, len(frame))
	}
	model, err := dsp.LPCAnalyze(frame, c.p.Order)
	if err != nil {
		return nil, nil, err
	}
	coeffScale := maxAbs(model.Coeffs)
	if coeffScale == 0 {
		coeffScale = 1
	}
	cq, err := dsp.NewQuantizer(c.p.CoeffBits, coeffScale*1.0001)
	if err != nil {
		return nil, nil, err
	}
	qidx := cq.QuantizeAll(model.Coeffs)
	qmodel := &dsp.LPCModel{Coeffs: cq.DequantizeAll(qidx)}

	// Actor D over SPI workers.
	errs, stats, err := ParallelResidual(qmodel, frame, nPE)
	if err != nil {
		return nil, nil, err
	}
	f, err := c.entropyStage(qidx, coeffScale, errs)
	if err != nil {
		return nil, nil, err
	}
	return f, stats, nil
}
