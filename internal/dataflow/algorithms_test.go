package dataflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopologicalOrderChain(t *testing.T) {
	g := chain(t, [][2]int{{1, 1}, {1, 1}})
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v, want [0 1 2]", order)
	}
}

func TestTopologicalOrderDelayBreaksCycle(t *testing.T) {
	g := New("cycle")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 1, 1, EdgeSpec{})
	g.AddEdge("ba", b, a, 1, 1, EdgeSpec{Delay: 1}) // delay satisfies A's demand
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != a || order[1] != b {
		t.Errorf("order = %v, want [A B]", order)
	}
}

func TestTopologicalOrderDeadlockedCycle(t *testing.T) {
	g := New("dead")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 1, 1, EdgeSpec{})
	g.AddEdge("ba", b, a, 1, 1, EdgeSpec{}) // no delay anywhere: cyclic
	if _, err := g.TopologicalOrder(); err == nil {
		t.Fatal("expected cyclic error")
	}
}

func TestTopologicalOrderInsufficientDelay(t *testing.T) {
	// Sink needs 3 tokens per firing; delay of 2 still blocks.
	g := New("d")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 3, 3, EdgeSpec{Delay: 2})
	g.AddEdge("ba", b, a, 1, 1, EdgeSpec{})
	if _, err := g.TopologicalOrder(); err == nil {
		t.Fatal("delay 2 < consume 3 should still block")
	}
}

func TestSCCChainIsSingletons(t *testing.T) {
	g := chain(t, [][2]int{{1, 1}, {1, 1}})
	sccs := g.StronglyConnectedComponents()
	if len(sccs) != 3 {
		t.Fatalf("got %d SCCs, want 3: %v", len(sccs), sccs)
	}
	for _, s := range sccs {
		if len(s) != 1 {
			t.Errorf("chain SCC not singleton: %v", s)
		}
	}
}

func TestSCCCycle(t *testing.T) {
	g := New("c")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	c := g.AddActor("C", 1)
	g.AddEdge("ab", a, b, 1, 1, EdgeSpec{})
	g.AddEdge("ba", b, a, 1, 1, EdgeSpec{})
	g.AddEdge("bc", b, c, 1, 1, EdgeSpec{})
	sccs := g.StronglyConnectedComponents()
	if len(sccs) != 2 {
		t.Fatalf("got %d SCCs, want 2: %v", len(sccs), sccs)
	}
	// Find the SCC containing A; it must also contain B.
	for _, s := range sccs {
		has := map[ActorID]bool{}
		for _, v := range s {
			has[v] = true
		}
		if has[a] && !has[b] {
			t.Errorf("A and B should share an SCC: %v", sccs)
		}
		if has[c] && len(s) != 1 {
			t.Errorf("C should be alone: %v", sccs)
		}
	}
}

func TestSCCCoversAllActorsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New("rand")
		n := 1 + r.Intn(10)
		for i := 0; i < n; i++ {
			g.AddActor("a"+string(rune('0'+i)), 1)
		}
		m := r.Intn(2 * n)
		for i := 0; i < m; i++ {
			src := ActorID(r.Intn(n))
			snk := ActorID(r.Intn(n))
			g.AddEdge("e"+string(rune('0'+i)), src, snk, 1, 1, EdgeSpec{})
		}
		sccs := g.StronglyConnectedComponents()
		seen := map[ActorID]int{}
		for _, s := range sccs {
			for _, v := range s {
				seen[v]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false // each actor in exactly one SCC
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMinDelayPaths(t *testing.T) {
	g := New("d")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	c := g.AddActor("C", 1)
	d := g.AddActor("D", 1)
	g.AddEdge("ab", a, b, 1, 1, EdgeSpec{Delay: 2})
	g.AddEdge("bc", b, c, 1, 1, EdgeSpec{Delay: 3})
	g.AddEdge("ac", a, c, 1, 1, EdgeSpec{Delay: 7})
	_ = d // unreachable

	dist := g.MinDelayPaths(a)
	if dist[a] != 0 {
		t.Errorf("dist[A] = %d, want 0", dist[a])
	}
	if dist[b] != 2 {
		t.Errorf("dist[B] = %d, want 2", dist[b])
	}
	if dist[c] != 5 { // via B: 2+3 beats direct 7
		t.Errorf("dist[C] = %d, want 5", dist[c])
	}
	if dist[d] != InfiniteDelay {
		t.Errorf("dist[D] = %d, want InfiniteDelay", dist[d])
	}
}

func TestIsWeaklyConnected(t *testing.T) {
	g := New("empty")
	if g.IsWeaklyConnected() {
		t.Error("empty graph should not be connected")
	}
	g.AddActor("A", 1)
	if !g.IsWeaklyConnected() {
		t.Error("single actor should be connected")
	}
	g.AddActor("B", 1)
	if g.IsWeaklyConnected() {
		t.Error("two isolated actors should not be connected")
	}
	g.AddEdge("ab", 0, 1, 1, 1, EdgeSpec{})
	if !g.IsWeaklyConnected() {
		t.Error("connected pair reported disconnected")
	}
}
