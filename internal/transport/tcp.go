package transport

import (
	"net"
	"time"
)

// TCP is the production transport: one TCP connection per PE-group pair,
// TCP_NODELAY enabled so the small SPI headers are not batched behind
// Nagle's algorithm (signal-processing traffic is latency-sensitive and
// already coalesced into block transfers by the dataflow granularity).
type TCP struct {
	// DialTimeout bounds one connect attempt; zero means 3s.
	DialTimeout time.Duration
}

func (t *TCP) Name() string { return "tcp" }

func (t *TCP) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, &Error{Op: "listen", Addr: addr, Err: err}
	}
	return &tcpListener{ln: ln}, nil
}

func (t *TCP) Dial(addr string) (Conn, error) {
	timeout := t.DialTimeout
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, &Error{Op: "dial", Addr: addr, Transient: dialTransient(err), Err: err}
	}
	return wrapTCP(c), nil
}

type tcpListener struct{ ln net.Listener }

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, &Error{Op: "accept", Addr: l.ln.Addr().String(), Err: err}
	}
	return wrapTCP(c), nil
}

func (l *tcpListener) Close() error { return l.ln.Close() }
func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

func wrapTCP(c net.Conn) Conn {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &pipeConn{Conn: c, local: c.LocalAddr().String(), remote: c.RemoteAddr().String()}
}
