package spi

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/transport"
)

func TestSlabRoundTripStatic(t *testing.T) {
	tokens := [][]byte{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}}
	slab, err := PackSlab(nil, tokens, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(slab) != 12 {
		t.Fatalf("static slab of 3x4 tokens is %d bytes, want 12", len(slab))
	}
	views, err := UnpackSlab(slab, 3, 4, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("unpacked %d tokens, want 3", len(views))
	}
	for i := range tokens {
		if !bytes.Equal(views[i], tokens[i]) {
			t.Errorf("token %d = %v, want %v", i, views[i], tokens[i])
		}
	}
}

func TestSlabStaticPadsShortTokens(t *testing.T) {
	slab, err := PackSlab(nil, [][]byte{{1}, nil, {2, 3}}, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	views, err := UnpackSlab(slab, 3, 4, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{{1, 0, 0, 0}, {0, 0, 0, 0}, {2, 3, 0, 0}}
	for i := range want {
		if !bytes.Equal(views[i], want[i]) {
			t.Errorf("token %d = %v, want zero-padded %v", i, views[i], want[i])
		}
	}
}

func TestSlabRoundTripDynamic(t *testing.T) {
	tokens := [][]byte{{1, 2, 3}, {}, {4}, {5, 6, 7, 8}}
	slab, err := PackSlab(nil, tokens, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	views, err := UnpackSlab(slab, 4, 8, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 4 {
		t.Fatalf("unpacked %d tokens, want 4", len(views))
	}
	for i := range tokens {
		if !bytes.Equal(views[i], tokens[i]) {
			t.Errorf("token %d = %v, want %v (sizes must survive the round trip)", i, views[i], tokens[i])
		}
	}
}

// A consumer's final partial block may need fewer tokens than a full slab
// holds (delay-shifted edges): extras must be tolerated, a shortage must
// not.
func TestSlabMinTokens(t *testing.T) {
	slab, err := PackSlab(nil, [][]byte{{1}, {2}, {3}, {4}}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if views, err := UnpackSlab(slab, 2, 1, false, nil); err != nil || len(views) != 4 {
		t.Fatalf("UnpackSlab(min=2) on a 4-token slab = %d tokens, %v; want all 4, nil", len(views), err)
	}
	if _, err := UnpackSlab(slab, 5, 1, false, nil); err == nil {
		t.Fatal("UnpackSlab(min=5) on a 4-token slab should fail")
	}
}

func TestSlabRejectsOversizedToken(t *testing.T) {
	if _, err := PackSlab(nil, [][]byte{{1, 2, 3}}, 2, false); err == nil {
		t.Fatal("static token over the bound should be rejected")
	}
	if _, err := PackSlab(nil, [][]byte{{1, 2, 3}}, 2, true); err == nil {
		t.Fatal("dynamic token over the bound should be rejected")
	}
}

func TestSlabRejectsTruncated(t *testing.T) {
	slab, err := PackSlab(nil, [][]byte{{1, 2}, {3, 4, 5}}, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(slab); cut++ {
		if _, err := UnpackSlab(slab[:cut], 2, 8, true, nil); err == nil {
			t.Fatalf("truncation to %d of %d bytes should be rejected", cut, len(slab))
		}
	}
	if _, err := UnpackSlab([]byte{1, 2, 3}, 1, 2, false, nil); err == nil {
		t.Fatal("static slab with a ragged length should be rejected")
	}
}

// TestExecuteBlockedMatchesScalar runs the mixed fixture (ab's 1-iteration
// delay is misaligned with every block > 1, so it stays token-granular;
// bc packs slabs) at several blocking factors, including ones that leave a
// partial final block, and demands bit-identical sink payloads.
func TestExecuteBlockedMatchesScalar(t *testing.T) {
	const iterations = 25
	ref := runReference(t, iterations)
	for _, block := range []int{2, 3, 4, 5, 8, 16, 32} {
		g, m := distGraph()
		var sink [][]byte
		var mu sync.Mutex
		st, err := ExecuteBlocked(g, m, distKernels(&sink, &mu), iterations, VecOptions{Block: block})
		if err != nil {
			t.Fatalf("block %d: %v", block, err)
		}
		if !samePayloads(ref, sink) {
			t.Errorf("block %d: output differs from scalar run", block)
		}
		if st.ActorFirings["B"] != iterations {
			t.Errorf("block %d: B fired %d times, want %d", block, st.ActorFirings["B"], iterations)
		}
	}
}

// vecGraph is a two-actor feedback loop whose back edge carries an
// 8-iteration delay: blocks of 2, 4, and 8 are decoupled (8 is a whole
// multiple), 3 is not. Both edges cross processors, so a blocked run packs
// slabs on both (fwd delay 0, back delay 8) and preloads the back edge
// with whole slabs of empty tokens.
func vecGraph() (*dataflow.Graph, *sched.Mapping) {
	g := dataflow.New("vec")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("fwd", a, b, 1, 1, dataflow.EdgeSpec{TokenBytes: 2})
	g.AddEdge("back", b, a, 1, 1, dataflow.EdgeSpec{TokenBytes: 3, Delay: 8, ProduceDynamic: true, ConsumeDynamic: true})
	m := &sched.Mapping{
		NumProcs: 2,
		Proc:     []sched.Processor{0, 1},
		Order:    [][]dataflow.ActorID{{a}, {b}},
	}
	return g, m
}

// vecKernels: A folds its feedback input into a 2-byte token; B answers
// with a variable-length token and records everything it saw.
func vecKernels(seen *[][]byte, mu *sync.Mutex) map[dataflow.ActorID]Kernel {
	return map[dataflow.ActorID]Kernel{
		0: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			var sum byte
			for _, v := range in[1] {
				sum += v
			}
			return map[dataflow.EdgeID][]byte{0: {byte(iter), sum}}, nil
		},
		1: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			cp := make([]byte, len(in[0]))
			copy(cp, in[0])
			mu.Lock()
			*seen = append(*seen, cp)
			mu.Unlock()
			out := make([]byte, iter%3+1)
			for i := range out {
				out[i] = byte(iter*7 + i)
			}
			return map[dataflow.EdgeID][]byte{1: out}, nil
		},
	}
}

// TestExecuteBlockedFeedbackDelay checks blocked execution through a
// delay-decoupled cycle: the back edge's 8-iteration delay becomes whole
// preloaded slabs, and the final partial block reads fewer tokens than the
// delayed slab carries.
func TestExecuteBlockedFeedbackDelay(t *testing.T) {
	const iterations = 21
	g, m := vecGraph()
	var ref [][]byte
	var mu sync.Mutex
	if _, err := Execute(g, m, vecKernels(&ref, &mu), iterations); err != nil {
		t.Fatal(err)
	}
	for _, block := range []int{2, 4, 8} {
		g, m := vecGraph()
		var got [][]byte
		if _, err := ExecuteBlocked(g, m, vecKernels(&got, &mu), iterations, VecOptions{Block: block}); err != nil {
			t.Fatalf("block %d: %v", block, err)
		}
		if !samePayloads(ref, got) {
			t.Errorf("block %d: B saw different tokens than in the scalar run", block)
		}
	}
}

// TestExecuteBlockedInfeasible: a block that no cycle delay covers must be
// rejected up front with the deadlock diagnosis, not hang.
func TestExecuteBlockedInfeasible(t *testing.T) {
	g, m := vecGraph() // back delay = 8 iterations
	var seen [][]byte
	var mu sync.Mutex
	_, err := ExecuteBlocked(g, m, vecKernels(&seen, &mu), 10, VecOptions{Block: 3})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("block 3 against an 8-iteration delay: err = %v, want a deadlock diagnosis", err)
	}
}

// TestExecuteBlockedMappingDeadlock: a schedule order that consumes before
// it produces on the same processor is fine scalar (1-iteration delay) but
// deadlocks blocked; the mapping-aware check must catch it.
func TestExecuteBlockedMappingDeadlock(t *testing.T) {
	g, m := distGraph()
	// Reverse processor 0's order: C before A creates the chain C -> A,
	// closing the cycle A -> B -> C -> A once ab's 1-iteration delay no
	// longer decouples a block of 4.
	m.Order[0] = []dataflow.ActorID{2, 0}
	var sink [][]byte
	var mu sync.Mutex
	_, err := ExecuteBlocked(g, m, distKernels(&sink, &mu), 8, VecOptions{Block: 4})
	if err == nil || !strings.Contains(err.Error(), "schedule order") {
		t.Fatalf("err = %v, want the mapping-aware deadlock diagnosis", err)
	}
}

// TestExecuteBlockedVectorKernel swaps B's scalar kernel for a native
// VectorKernel and demands the same bytes as the scalar run.
func TestExecuteBlockedVectorKernel(t *testing.T) {
	const iterations = 19
	ref := runReference(t, iterations)
	g, m := distGraph()
	var sink [][]byte
	var mu sync.Mutex
	kernels := distKernels(&sink, &mu)
	scalarB := kernels[1]
	delete(kernels, 1) // B runs only through its vector kernel
	vk := func(iter, n int, in map[dataflow.EdgeID][][]byte) (map[dataflow.EdgeID][][]byte, error) {
		out := make([][]byte, n)
		for j := 0; j < n; j++ {
			produced, err := scalarB(iter+j, map[dataflow.EdgeID][]byte{0: in[0][j]})
			if err != nil {
				return nil, err
			}
			out[j] = produced[1]
		}
		return map[dataflow.EdgeID][][]byte{1: out}, nil
	}
	_, err := ExecuteBlocked(g, m, kernels, iterations, VecOptions{
		Block:   4,
		Kernels: map[dataflow.ActorID]VectorKernel{1: vk},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !samePayloads(ref, sink) {
		t.Error("vector-kernel run differs from the scalar reference")
	}
}

// TestLiftKernel checks the adapter alone: a lifted scalar kernel fires
// once per iteration and copies its outputs.
func TestLiftKernel(t *testing.T) {
	buf := make([]byte, 1) // deliberately reused across firings
	vk := LiftKernel(func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
		buf[0] = byte(iter)
		return map[dataflow.EdgeID][]byte{3: buf}, nil
	})
	out, err := vk(10, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	toks := out[3]
	if len(toks) != 4 {
		t.Fatalf("lifted kernel produced %d tokens, want 4", len(toks))
	}
	for j, tok := range toks {
		if len(tok) != 1 || tok[0] != byte(10+j) {
			t.Errorf("token %d = %v, want [%d] (outputs must be copied, not aliased)", j, tok, 10+j)
		}
	}
}

// TestExecuteBlockedLocalEdges: same-processor edges stay token-granular in
// a blocked run, popped and pushed a block at a time.
func TestExecuteBlockedLocalEdges(t *testing.T) {
	g := dataflow.New("loc")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	c := g.AddActor("C", 1)
	g.AddEdge("ab", a, b, 1, 1, dataflow.EdgeSpec{TokenBytes: 2}) // same proc: local queue
	g.AddEdge("bc", b, c, 1, 1, dataflow.EdgeSpec{TokenBytes: 2}) // cross proc: slab
	m := &sched.Mapping{
		NumProcs: 2,
		Proc:     []sched.Processor{0, 0, 1},
		Order:    [][]dataflow.ActorID{{a, b}, {c}},
	}
	kernels := func(sink *[][]byte, mu *sync.Mutex) map[dataflow.ActorID]Kernel {
		return map[dataflow.ActorID]Kernel{
			a: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
				return map[dataflow.EdgeID][]byte{0: {byte(iter), byte(iter * 3)}}, nil
			},
			b: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
				return map[dataflow.EdgeID][]byte{1: {in[0][0] + 1, in[0][1] + 1}}, nil
			},
			c: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
				cp := append([]byte(nil), in[1]...)
				mu.Lock()
				*sink = append(*sink, cp)
				mu.Unlock()
				return nil, nil
			},
		}
	}
	const iterations = 11
	var ref, got [][]byte
	var mu sync.Mutex
	if _, err := Execute(g, m, kernels(&ref, &mu), iterations); err != nil {
		t.Fatal(err)
	}
	st, err := ExecuteBlocked(g, m, kernels(&got, &mu), iterations, VecOptions{Block: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !samePayloads(ref, got) {
		t.Error("blocked run with a local edge differs from scalar")
	}
	if st.LocalTransfers != iterations {
		t.Errorf("local transfers = %d, want %d", st.LocalTransfers, iterations)
	}
}

// runTwoNodesBlocked mirrors runTwoNodes with a blocking factor on both
// nodes.
func runTwoNodesBlocked(t *testing.T, tr transport.Transport, addr string, iterations, block int) ([][]byte, [2]*ExecStats) {
	t.Helper()
	g, m := distGraph()
	var sink [][]byte
	var mu sync.Mutex

	ln, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr(), "unused"}

	var stats [2]*ExecStats
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			opts := DistOptions{
				Transport: tr,
				Node:      node,
				Addrs:     addrs,
				NodeOf:    []int{0, 1},
				Block:     block,
			}
			if node == 0 {
				opts.Listener = ln
			}
			stats[node], errs[node] = ExecuteDistributed(g, m, distKernels(&sink, &mu), iterations, opts)
		}(node)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}
	return sink, stats
}

// TestExecuteDistributedBlocked: a two-node blocked run is bit-identical
// to the scalar single-process reference, and the slab packing shows in
// the message counts — node 1 sends one bc message per block instead of
// one per iteration.
func TestExecuteDistributedBlocked(t *testing.T) {
	const iterations, block = 25, 4
	const blocks = (iterations + block - 1) / block // 7, the last one partial
	ref := runReference(t, iterations)
	for _, tc := range []struct {
		name string
		tr   transport.Transport
		addr string
	}{
		{"loopback", transport.NewLoopback(), "node0"},
		{"tcp", &transport.TCP{}, "127.0.0.1:0"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, stats := runTwoNodesBlocked(t, tc.tr, tc.addr, iterations, block)
			if !samePayloadsReport(t, ref, got) {
				t.Errorf("blocked distributed output differs from scalar reference")
			}
			// ab's 1-iteration delay is misaligned with block 4, so node 0
			// still sends per token (iterations + 1 preload); bc is blocked,
			// so node 1 sends one slab per block.
			if n := stats[0].SPI.Messages; n != iterations+1 {
				t.Errorf("node 0 sent %d messages, want %d", n, iterations+1)
			}
			if n := stats[1].SPI.Messages; n != blocks {
				t.Errorf("node 1 sent %d messages, want %d slabs", n, blocks)
			}
			if n := stats[0].SPI.Acks; n != blocks {
				t.Errorf("node 0 acked %d messages, want %d (one per slab)", n, blocks)
			}
		})
	}
}

// TestBlockedHandshakeMismatch: a blocked node and a scalar node must
// refuse to talk — slab framing is not interoperable — and a pair blocked
// differently must be refused by the edge manifest (slab bounds differ).
func TestBlockedHandshakeMismatch(t *testing.T) {
	for _, tc := range []struct {
		name           string
		block0, block1 int
	}{
		{"blocked-vs-scalar", 4, 0},
		{"scalar-vs-blocked", 0, 4},
		{"different-blocks", 4, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, m := distGraph()
			var sink [][]byte
			var mu sync.Mutex
			tr := transport.NewLoopback()
			ln, err := tr.Listen("n0")
			if err != nil {
				t.Fatal(err)
			}
			addrs := []string{"n0", "unused"}
			blocks := []int{tc.block0, tc.block1}
			errs := make([]error, 2)
			var wg sync.WaitGroup
			for node := 0; node < 2; node++ {
				wg.Add(1)
				go func(node int) {
					defer wg.Done()
					opts := DistOptions{
						Transport: tr,
						Node:      node,
						Addrs:     addrs,
						NodeOf:    []int{0, 1},
						Block:     blocks[node],
						Retry:     transport.RetryConfig{Attempts: 2},
					}
					if node == 0 {
						opts.Listener = ln
					}
					_, errs[node] = ExecuteDistributed(g, m, distKernels(&sink, &mu), 4, opts)
				}(node)
			}
			wg.Wait()
			// The dialer (node 1) always observes the handshake rejection;
			// the acceptor may fail the same way or time out waiting.
			if errs[1] == nil {
				t.Fatalf("mismatched nodes completed: %v / %v", errs[0], errs[1])
			}
		})
	}
}
