// Command spinode runs one node of a distributed SPI execution: it loads a
// dataflow graph, takes the actor-to-processor assignment and the
// processor-to-node partition, connects to its peer nodes over TCP, and
// executes its share of the actors self-timed with deterministic demo
// kernels. Launching one spinode per node with identical arguments (except
// -node) runs the whole graph across OS processes; the per-sink digests it
// prints are bit-identical to a single-node run of the same graph.
//
// Two-process example (two terminals):
//
//	spinode -graph pipeline.sdf -assign 0,1,1 -nodeof 0,1 \
//	        -addrs 127.0.0.1:7101,127.0.0.1:7102 -node 0 -iters 20
//	spinode -graph pipeline.sdf -assign 0,1,1 -nodeof 0,1 \
//	        -addrs 127.0.0.1:7101,127.0.0.1:7102 -node 1 -iters 20
//
// The node that dials retries with backoff, so start order does not matter.
//
// Robustness flags: -reconnect/-reconnect-deadline enable transparent link
// resumption, -degrade turns a dead peer into a partial run (exit status 3,
// partial digests, per-peer failure summary) instead of an abort, -chaos
// injects deterministic transport faults for testing, and -connect-timeout
// bounds connection establishment.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataflow"
	"repro/internal/demo"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/spi"
	"repro/internal/transport"
)

// Exit statuses: 1 generic failure, 2 flag misuse, 3 degraded run (a peer
// died; the digests printed cover only the work that completed).
const exitDegraded = 3

func main() {
	var cfg nodeConfig
	graphPath := flag.String("graph", "", "dataflow graph file (see internal/dataflow parse format)")
	assign := flag.String("assign", "", "comma-separated processor index per actor, in graph order (e.g. 0,1,1)")
	nodeof := flag.String("nodeof", "", "comma-separated node index per processor (default: processor p on node p)")
	addrs := flag.String("addrs", "", "comma-separated listen address per node")
	flag.IntVar(&cfg.Node, "node", 0, "this process's node index")
	flag.IntVar(&cfg.Iterations, "iters", 10, "graph iterations to execute")
	flag.Uint64Var(&cfg.Seed, "seed", 1, "deterministic kernel seed")
	flag.DurationVar(&cfg.ConnectTimeout, "connect-timeout", 0,
		"bound on connection establishment (0 = retry ladder only; superseded by -deadline)")
	flag.DurationVar(&cfg.Deadline, "deadline", 0,
		"hard time budget for the whole run: past it every blocked actor is released and the node exits with a deadline error (0 = unbounded)")
	flag.DurationVar(&cfg.Heartbeat, "heartbeat", 0,
		"PING idle links at this interval to detect silent peers; negotiated, so peers without it interoperate (0 = off)")
	flag.DurationVar(&cfg.PeerTimeout, "peer-timeout", 0,
		"declare a peer dead after this much silence when -heartbeat is on (0 = 4x heartbeat)")
	flag.DurationVar(&cfg.StallTimeout, "stall-timeout", 0,
		"abort the run if no actor fires and no edge moves for this long, naming the stalled actors (0 = off)")
	reconnect := flag.Int("reconnect", 0, "reconnect attempts after a link drop (0 = fail fast)")
	reconnectDeadline := flag.Duration("reconnect-deadline", 15*time.Second,
		"total time budget for resuming one dropped link")
	flag.BoolVar(&cfg.Degrade, "degrade", false,
		"on a dead peer, drain the surviving actors and report partial digests (exit status 3) instead of aborting")
	chaosSpec := flag.String("chaos", "",
		"fault-injection spec, e.g. seed=7,drop=0.05,severat=40;90 (see transport.ParseFaultSpec)")
	flag.IntVar(&cfg.Batch.MaxFrames, "batch-frames", 0,
		"coalesce up to this many frames per link write (0 = no batching, 1 = explicit off)")
	flag.IntVar(&cfg.Batch.MaxBytes, "batch-bytes", 0,
		"flush a link's write batch at this many buffered bytes (0 = default when batching)")
	flag.DurationVar(&cfg.Batch.MaxDelay, "batch-delay", 0,
		"deadline before a buffered frame is flushed alone (0 = default when batching)")
	flag.BoolVar(&cfg.PiggybackAcks, "piggyback-acks", false,
		"carry acknowledgements on outgoing DATA frames when the peer supports it")
	flag.IntVar(&cfg.Block, "block", 0,
		"vectorization blocking factor B: fire B iterations per block and pack B tokens per message on block-aligned edges; all nodes must agree (0 = off, bit-identical digests either way)")
	flag.BoolVar(&cfg.Resync, "resync", false,
		"suppress UBS acks on edges whose synchronization the sync graph proves another path already covers; negotiated per link, all nodes must agree (bit-identical digests either way)")
	trans := flag.String("transport", "tcp",
		"byte transport: tcp, shm (same-host shared-memory rings; -addrs are segment names under -shm-dir), or loopback (in-memory, only useful with -inproc)")
	shmDir := flag.String("shm-dir", os.TempDir(),
		"with -transport shm: directory holding the shared-memory rendezvous segments; all nodes must use the same one")
	flag.IntVar(&cfg.Fission, "fission", 0,
		"rewrite the heaviest fissionable actor (or -fission-actor) into this many replicas behind scatter/gather stages before executing; digests stay bit-identical to the unfissioned run (0 = off)")
	flag.StringVar(&cfg.FissionActor, "fission-actor", "",
		"with -fission: name of the actor to fission (default: the heaviest fissionable one)")
	inproc := flag.Bool("inproc", false,
		"run every node of the graph inside this one process over the selected transport and print all digests — the single-command digest-verify mode (-addrs and -node are synthesized)")
	flag.StringVar(&cfg.HTTPAddr, "http", "",
		"serve live introspection (GET /metrics, /healthz, /trace) on this address, e.g. 127.0.0.1:9090")
	flag.DurationVar(&cfg.StatsInterval, "stats-interval", 0,
		"print a periodic traffic summary line at this interval (0 = off)")
	serve := flag.Bool("serve", false,
		"multi-tenant session server: accept client links and run one session-scoped execution per admitted OPEN (see internal/session)")
	maxSessions := flag.Int("max-sessions", 0,
		"with -serve: cap on concurrently live sessions across all tenants (0 = unbounded)")
	tenantQuota := flag.Int("tenant-quota", 0,
		"with -serve: cap on concurrently live sessions per tenant (0 = unbounded)")
	tenantBytes := flag.Int64("tenant-bytes", 0,
		"with -serve: queued-byte budget per tenant before its oldest session is degraded (0 = unbounded)")
	tenantWeights := flag.String("tenant-weights", "",
		"with -serve: weighted shares of -max-sessions, e.g. alice=3,bob=1")
	sessionTimeout := flag.Duration("session-timeout", 0,
		"with -serve: shed a session whose client has been silent this long (0 = never reap)")
	worker := flag.Bool("worker", false,
		"orchestrated worker: register with a spictl coordinator and execute dispatched partitions instead of loading a full manifest (see internal/orch)")
	coordAddr := flag.String("coord", "",
		"with -worker: the coordinator's control-plane address")
	workerName := flag.String("name", "",
		"with -worker: this worker's registration name (default: host:pid)")
	dataHost := flag.String("data-host", "127.0.0.1",
		"with -worker: host to bind per-epoch data-plane listeners on (ephemeral ports)")
	flag.Parse()

	if *worker {
		// A worker holds no graph and no assignment: partitions arrive
		// from the coordinator, so -graph/-assign/-addrs do not apply.
		if *coordAddr == "" {
			fmt.Fprintln(os.Stderr, "spinode: -worker requires -coord")
			os.Exit(2)
		}
		wcfg := workerConfig{
			Coord:       *coordAddr,
			Name:        *workerName,
			DataHost:    *dataHost,
			Seed:        cfg.Seed,
			Heartbeat:   cfg.Heartbeat,
			PeerTimeout: cfg.PeerTimeout,
		}
		if *reconnect > 0 {
			wcfg.Reconnect = transport.ReconnectConfig{
				Attempts: *reconnect, Deadline: *reconnectDeadline,
			}
		}
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
		defer cancel()
		if err := runWorker(ctx, wcfg, &transport.TCP{}, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "spinode:", err)
			os.Exit(1)
		}
		return
	}

	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "spinode: -graph is required")
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spinode:", err)
		os.Exit(1)
	}
	cfg.Graph, err = dataflow.Parse(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spinode:", err)
		os.Exit(1)
	}
	if cfg.Assign, err = parseInts(*assign); err != nil {
		fmt.Fprintln(os.Stderr, "spinode: -assign:", err)
		os.Exit(2)
	}
	if *nodeof != "" {
		if cfg.NodeOf, err = parseInts(*nodeof); err != nil {
			fmt.Fprintln(os.Stderr, "spinode: -nodeof:", err)
			os.Exit(2)
		}
	}
	if *addrs == "" && !*inproc {
		fmt.Fprintln(os.Stderr, "spinode: -addrs is required")
		os.Exit(2)
	}
	if *addrs != "" {
		cfg.Addrs = strings.Split(*addrs, ",")
	}
	if *reconnect > 0 {
		cfg.Reconnect = transport.ReconnectConfig{
			Attempts: *reconnect,
			Deadline: *reconnectDeadline,
		}
	}

	var tr transport.Transport
	switch *trans {
	case "tcp":
		tr = &transport.TCP{}
	case "shm":
		// The same-host composite: -addrs stay ordinary host:port
		// addresses, links whose peer is this machine ride the shm
		// rings, everything else falls back to TCP.
		tr = &transport.SameHost{Shm: transport.NewShm(*shmDir)}
	case "loopback":
		tr = transport.NewLoopback()
	default:
		fmt.Fprintf(os.Stderr, "spinode: unknown -transport %q (tcp, shm, or loopback)\n", *trans)
		os.Exit(2)
	}
	if *chaosSpec != "" {
		fc, err := transport.ParseFaultSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spinode: -chaos:", err)
			os.Exit(2)
		}
		tr = transport.NewFaultTransport(tr, fc)
	}

	if *inproc {
		if err := runInproc(cfg, *trans, tr, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "spinode:", err)
			os.Exit(1)
		}
		return
	}

	if *serve {
		weights, werr := parseWeights(*tenantWeights)
		if werr != nil {
			fmt.Fprintln(os.Stderr, "spinode: -tenant-weights:", werr)
			os.Exit(2)
		}
		scfg := serveConfig{
			nodeConfig:     cfg,
			MaxSessions:    *maxSessions,
			TenantQuota:    *tenantQuota,
			TenantBytes:    *tenantBytes,
			TenantWeights:  weights,
			SessionTimeout: *sessionTimeout,
		}
		stop := make(chan struct{})
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		go func() {
			<-sig
			close(stop)
		}()
		if err := runServe(scfg, tr, nil, os.Stdout, stop); err != nil {
			fmt.Fprintln(os.Stderr, "spinode:", err)
			os.Exit(1)
		}
		return
	}

	if err := runNode(cfg, tr, nil, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spinode:", err)
		var de *spi.DegradedError
		if errors.As(err, &de) {
			os.Exit(exitDegraded)
		}
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad entry %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// nodeConfig is everything runNode needs; main fills it from flags, tests
// construct it directly.
type nodeConfig struct {
	Graph      *dataflow.Graph
	Assign     []int // processor per actor, in graph order
	NodeOf     []int // node per processor; nil = identity
	Addrs      []string
	Node       int
	Iterations int
	Seed       uint64
	// ConnectTimeout bounds connection establishment (0 = retry ladder
	// only); Reconnect and Degrade pass through to spi.DistOptions.
	ConnectTimeout time.Duration
	Reconnect      transport.ReconnectConfig
	Degrade        bool
	// Deadline bounds the whole run (setup plus execution); it supersedes
	// ConnectTimeout when set. Heartbeat/PeerTimeout enable link liveness
	// probing and StallTimeout the no-progress watchdog — all pass
	// through to spi.DistOptions.
	Deadline     time.Duration
	Heartbeat    time.Duration
	PeerTimeout  time.Duration
	StallTimeout time.Duration
	// Batch configures each link's write coalescer; PiggybackAcks lets
	// links carry acks on outgoing DATA frames (negotiated with the peer).
	Batch         transport.BatchConfig
	PiggybackAcks bool
	// Block is the vectorization blocking factor B (0 or 1 = scalar); all
	// nodes must use the same value, enforced by the HELLO handshake.
	Block int
	// Resync suppresses redundant UBS acks per the §4 sync-graph verdict;
	// all nodes must agree (enforced per link at handshake).
	Resync bool
	// Fission > 0 rewrites FissionActor (default: the heaviest fissionable
	// actor) into that many replicas behind scatter/gather stages; the demo
	// kernels run in transparent replication mode, so sink digests stay
	// bit-identical to the unfissioned run. All nodes must use the same
	// values.
	Fission      int
	FissionActor string
	// HTTPAddr, when set, serves GET /metrics (Prometheus text),
	// /healthz (JSON status), and /trace (Chrome trace_event JSON) for
	// the duration of the run.
	HTTPAddr string
	// StatsInterval, when positive, prints a periodic one-line traffic
	// summary while the run executes.
	StatsInterval time.Duration
	// Obs optionally supplies a pre-built observer (tests inject a
	// seeded one for deterministic traces). When nil, runNode creates a
	// wall-clock observer if HTTPAddr or StatsInterval require one.
	Obs *obs.Observer
}

// buildMapping turns the actor-to-processor assignment into a
// sched.Mapping, ordering each processor's actors by graph order.
func buildMapping(g *dataflow.Graph, assign []int) (*sched.Mapping, error) {
	return demo.Mapping(g, assign)
}

// demoKernels delegates to the shared demo package: deterministic
// kernels whose sink digests are invariant under any partition.
func demoKernels(g *dataflow.Graph, seed uint64, digests map[string]*uint64, mu *sync.Mutex) (map[dataflow.ActorID]spi.Kernel, error) {
	return demo.Kernels(g, seed, digests, mu)
}

// buildSystem turns the configured graph and assignment into the system to
// execute: the mapping, and — when -fission is on — the rewritten graph
// with its extended mapping and the plan the kernels are wrapped with.
func buildSystem(cfg nodeConfig) (*dataflow.Graph, *sched.Mapping, *dataflow.FissionPlan, error) {
	m, err := buildMapping(cfg.Graph, cfg.Assign)
	if err != nil {
		return nil, nil, nil, err
	}
	if cfg.Fission <= 0 {
		return cfg.Graph, m, nil, nil
	}
	var target dataflow.ActorID
	if cfg.FissionActor != "" {
		a, ok := cfg.Graph.ActorByName(cfg.FissionActor)
		if !ok {
			return nil, nil, nil, fmt.Errorf("-fission-actor: graph %q has no actor %q", cfg.Graph.Name(), cfg.FissionActor)
		}
		target = a
	} else {
		if target, err = dataflow.HeaviestFissionable(cfg.Graph); err != nil {
			return nil, nil, nil, err
		}
	}
	plan, err := dataflow.Fission(cfg.Graph, target, dataflow.FissionOptions{K: cfg.Fission})
	if err != nil {
		return nil, nil, nil, err
	}
	fm, err := sched.ExtendFission(m, plan)
	if err != nil {
		return nil, nil, nil, err
	}
	return plan.Graph, fm, plan, nil
}

// runInproc executes every node of the run inside this process over the
// selected transport — the digest-verify mode the fission smoke test uses.
// Each node's report is buffered and printed in node order so digest lines
// stay greppable.
func runInproc(cfg nodeConfig, trans string, tr transport.Transport, w io.Writer) error {
	_, m, _, err := buildSystem(cfg)
	if err != nil {
		return err
	}
	nodes := m.NumProcs
	if cfg.NodeOf != nil {
		nodes = 0
		for _, n := range cfg.NodeOf {
			if n+1 > nodes {
				nodes = n + 1
			}
		}
	}
	addrs := make([]string, nodes)
	lns := make([]transport.Listener, nodes)
	for i := range addrs {
		name := fmt.Sprintf("inproc-n%d", i)
		if trans == "tcp" || trans == "shm" {
			// Network-style addresses: the shm composite derives its
			// rendezvous from the resolved port and auto-selects the
			// rings because the host is local.
			name = "127.0.0.1:0"
		}
		ln, err := tr.Listen(name)
		if err != nil {
			return err
		}
		defer ln.Close()
		addrs[i], lns[i] = ln.Addr(), ln
	}
	outs := make([]strings.Builder, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ncfg := cfg
			ncfg.Node = i
			ncfg.Addrs = addrs
			errs[i] = runNode(ncfg, tr, lns[i], &outs[i])
		}(i)
	}
	wg.Wait()
	for i := range outs {
		io.WriteString(w, outs[i].String())
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	return nil
}

// runNode executes one node of the distributed run and reports the sink
// digests and communication statistics on w. tr and ln (optional pre-bound
// listener for Addrs[Node]) are injectable for tests.
func runNode(cfg nodeConfig, tr transport.Transport, ln transport.Listener, w io.Writer) error {
	g, m, plan, err := buildSystem(cfg)
	if err != nil {
		return err
	}
	nodeOf := cfg.NodeOf
	if plan != nil && nodeOf != nil && len(nodeOf) == m.NumProcs-plan.K {
		// -nodeof names the serial graph's processors; the fission pass
		// appended one fresh processor per replica. Co-locate those with
		// the scatter stage's node so fission never changes the node
		// layout the user asked for — replicas are a same-host concern.
		ext := make([]int, m.NumProcs)
		copy(ext, nodeOf)
		home := ext[m.Proc[plan.Scatter]]
		for p := m.NumProcs - plan.K; p < m.NumProcs; p++ {
			ext[p] = home
		}
		nodeOf = ext
	}
	if nodeOf == nil {
		nodeOf = make([]int, m.NumProcs)
		for p := range nodeOf {
			nodeOf[p] = p
		}
	}

	// One digest slot per local sink actor (no output edges).
	var mu sync.Mutex
	digests := map[string]*uint64{}
	var sinkNames []string
	for _, a := range g.Actors() {
		if len(g.Out(a)) == 0 {
			digests[g.Actor(a).Name] = new(uint64)
		}
	}
	var kernels map[dataflow.ActorID]spi.Kernel
	if plan != nil {
		// Transparent replication: every replica runs the original demo
		// kernel and emits its chunk, so the digests match the unfissioned
		// run bit for bit.
		base, kerr := demoKernels(plan.Source, cfg.Seed, digests, &mu)
		if kerr != nil {
			return kerr
		}
		if kernels, err = spi.FissionKernels(plan, base, nil); err != nil {
			return err
		}
	} else if kernels, err = demoKernels(g, cfg.Seed, digests, &mu); err != nil {
		return err
	}

	fmt.Fprintf(w, "spinode: graph %s, node %d/%d, %d iterations\n",
		g.Name(), cfg.Node, len(cfg.Addrs), cfg.Iterations)
	if plan != nil {
		fmt.Fprintf(w, "%s\n", plan)
	}
	for p := 0; p < m.NumProcs; p++ {
		if nodeOf[p] != cfg.Node {
			continue
		}
		names := make([]string, len(m.Order[p]))
		for i, a := range m.Order[p] {
			names[i] = g.Actor(a).Name
		}
		fmt.Fprintf(w, "  processor %d: %s\n", p, strings.Join(names, " "))
		for _, a := range m.Order[p] {
			if len(g.Out(a)) == 0 {
				sinkNames = append(sinkNames, g.Actor(a).Name)
			}
		}
	}

	// Observability: tests inject a seeded observer via cfg.Obs; the
	// -http / -stats-interval flags demand a wall-clock one.
	o := cfg.Obs
	if o == nil && (cfg.HTTPAddr != "" || cfg.StatsInterval > 0) {
		o = obs.New()
		o.Node = cfg.Node
	}
	if ft, ok := tr.(*transport.FaultTransport); ok {
		ft.SetObserver(o)
	}
	var phase atomic.Value
	phase.Store("connecting")
	if cfg.HTTPAddr != "" {
		httpLn, lerr := net.Listen("tcp", cfg.HTTPAddr)
		if lerr != nil {
			return fmt.Errorf("-http: %w", lerr)
		}
		srv := &http.Server{Handler: o.Handler(func() any {
			return map[string]any{
				"status":     phase.Load(),
				"node":       cfg.Node,
				"graph":      g.Name(),
				"iterations": cfg.Iterations,
			}
		})}
		go srv.Serve(httpLn)
		defer srv.Close()
		fmt.Fprintf(w, "observability: http://%s/metrics /healthz /trace\n", httpLn.Addr())
	}
	stopStats := func() {}
	if cfg.StatsInterval > 0 {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			tick := time.NewTicker(cfg.StatsInterval)
			defer tick.Stop()
			start := time.Now()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					r := o.Metrics
					fmt.Fprintf(w, "stats[%s]: msgs=%d data_bytes=%d acks=%d credit_waits=%d frames_sent=%d frames_recv=%d resumes=%d faults=%d\n",
						time.Since(start).Round(time.Second),
						r.Sum("spi_edge_messages_total"), r.Sum("spi_edge_data_bytes_total"),
						r.Sum("spi_edge_acks_total"), r.Sum("spi_edge_credit_waits_total"),
						r.Sum("transport_link_frames_sent_total"), r.Sum("transport_link_frames_received_total"),
						r.Sum("transport_link_resumes_total"), r.Sum("chaos_faults_total"))
				}
			}
		}()
		var once sync.Once
		stopStats = func() { once.Do(func() { close(stop); <-done }) }
		defer stopStats()
	}

	opts := spi.DistOptions{
		Transport:     tr,
		Node:          cfg.Node,
		Addrs:         cfg.Addrs,
		NodeOf:        nodeOf,
		Listener:      ln,
		Reconnect:     cfg.Reconnect,
		Degrade:       cfg.Degrade,
		Batch:         cfg.Batch,
		PiggybackAcks: cfg.PiggybackAcks,
		Block:         cfg.Block,
		Resync:        cfg.Resync,
		Heartbeat:     cfg.Heartbeat,
		PeerTimeout:   cfg.PeerTimeout,
		StallTimeout:  cfg.StallTimeout,
		Obs:           o,
	}
	// DistOptions.Context bounds the whole run: -deadline is that budget
	// directly; -connect-timeout keeps its historical role (setup bound)
	// and now also stops a run still stuck past it.
	switch {
	case cfg.Deadline > 0:
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Deadline)
		defer cancel()
		opts.Context = ctx
	case cfg.ConnectTimeout > 0:
		ctx, cancel := context.WithTimeout(context.Background(), cfg.ConnectTimeout)
		defer cancel()
		opts.Context = ctx
	}
	phase.Store("running")
	st, err := spi.ExecuteDistributed(g, m, kernels, cfg.Iterations, opts)
	stopStats() // the run is over; no ticker write may interleave with the summary
	phase.Store("done")
	var de *spi.DegradedError
	if err != nil && !errors.As(err, &de) {
		return err
	}
	if de != nil {
		phase.Store("degraded")
	}

	sort.Strings(sinkNames)
	label := "digest"
	if de != nil {
		// A peer died; the run drained what it could. The digests cover
		// only the completed iterations, so mark them as partial.
		label = "partial-digest"
	}
	for _, name := range sinkNames {
		fmt.Fprintf(w, "%s %s %016x\n", label, name, *digests[name])
	}
	if st != nil {
		fmt.Fprintf(w, "stats: %d messages, %d wire bytes, %d acks, %d local transfers\n",
			st.SPI.Messages, st.SPI.WireBytes, st.SPI.Acks, st.LocalTransfers)
		for _, e := range st.Edges {
			fmt.Fprintf(w, "  edge %s (%s): %d messages, %d data bytes, %d acks, %d ack bytes, %d piggybacked, %d suppressed\n",
				e.Name, e.Protocol, e.Stats.Messages, e.Stats.WireBytes, e.Stats.Acks, e.Stats.AckBytes,
				e.Stats.AcksPiggybacked, e.Stats.AcksSuppressed)
		}
	}
	if de != nil {
		fmt.Fprintf(w, "degraded: node %d finished without %d peer(s)\n", de.Node, len(de.Peers))
		peers := make([]int, 0, len(de.Peers))
		for p := range de.Peers {
			peers = append(peers, p)
		}
		sort.Ints(peers)
		for _, p := range peers {
			fmt.Fprintf(w, "  peer node %d at %s lost: %v\n", p, cfg.Addrs[p], de.Peers[p])
		}
		if len(de.Starved) > 0 {
			fmt.Fprintf(w, "  starved actors: %s\n", strings.Join(de.Starved, " "))
			// How far each starved actor got before its edges died.
			for _, name := range de.Starved {
				fmt.Fprintf(w, "    %s completed %d/%d firings\n", name, de.Firings[name], cfg.Iterations)
			}
		}
		return err
	}
	return nil
}
