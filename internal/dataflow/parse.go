package dataflow

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Textual graph format, used by cmd/spigraph to load user-defined systems:
//
//	# comment
//	graph myapp
//	actor A 100            # name, exec cycles
//	actor B 250
//	edge ab A B 2 3        # name, src, snk, produce, consume
//	edge fb B A 1 1 delay=2 bytes=4
//	edge dyn A B 10 8 dynamic bytes=2
//
// Options: delay=N (initial tokens), bytes=N (raw token size), dynamic
// (both ports dynamic; rates are then upper bounds), dynsrc / dynsnk
// (one-sided dynamic ports).

// Parse reads a graph description.
func Parse(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var g *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "graph":
			if g != nil {
				return nil, fmt.Errorf("dataflow: line %d: duplicate graph declaration", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("dataflow: line %d: usage: graph <name>", lineNo)
			}
			g = New(fields[1])
		case "actor":
			if g == nil {
				return nil, fmt.Errorf("dataflow: line %d: actor before graph declaration", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataflow: line %d: usage: actor <name> <execCycles>", lineNo)
			}
			cycles, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || cycles < 0 {
				return nil, fmt.Errorf("dataflow: line %d: bad exec cycles %q", lineNo, fields[2])
			}
			if _, dup := g.ActorByName(fields[1]); dup {
				return nil, fmt.Errorf("dataflow: line %d: duplicate actor %q", lineNo, fields[1])
			}
			g.AddActor(fields[1], cycles)
		case "edge":
			if g == nil {
				return nil, fmt.Errorf("dataflow: line %d: edge before graph declaration", lineNo)
			}
			if len(fields) < 6 {
				return nil, fmt.Errorf("dataflow: line %d: usage: edge <name> <src> <snk> <produce> <consume> [options]", lineNo)
			}
			src, ok := g.ActorByName(fields[2])
			if !ok {
				return nil, fmt.Errorf("dataflow: line %d: unknown actor %q", lineNo, fields[2])
			}
			snk, ok := g.ActorByName(fields[3])
			if !ok {
				return nil, fmt.Errorf("dataflow: line %d: unknown actor %q", lineNo, fields[3])
			}
			produce, err := strconv.Atoi(fields[4])
			if err != nil || produce <= 0 {
				return nil, fmt.Errorf("dataflow: line %d: bad produce rate %q", lineNo, fields[4])
			}
			consume, err := strconv.Atoi(fields[5])
			if err != nil || consume <= 0 {
				return nil, fmt.Errorf("dataflow: line %d: bad consume rate %q", lineNo, fields[5])
			}
			var spec EdgeSpec
			for _, opt := range fields[6:] {
				switch {
				case opt == "dynamic":
					spec.ProduceDynamic = true
					spec.ConsumeDynamic = true
				case opt == "dynsrc":
					spec.ProduceDynamic = true
				case opt == "dynsnk":
					spec.ConsumeDynamic = true
				case strings.HasPrefix(opt, "delay="):
					spec.Delay, err = strconv.Atoi(opt[len("delay="):])
					if err != nil || spec.Delay < 0 {
						return nil, fmt.Errorf("dataflow: line %d: bad option %q", lineNo, opt)
					}
				case strings.HasPrefix(opt, "bytes="):
					spec.TokenBytes, err = strconv.Atoi(opt[len("bytes="):])
					if err != nil || spec.TokenBytes <= 0 {
						return nil, fmt.Errorf("dataflow: line %d: bad option %q", lineNo, opt)
					}
				default:
					return nil, fmt.Errorf("dataflow: line %d: unknown option %q", lineNo, opt)
				}
			}
			g.AddEdge(fields[1], src, snk, produce, consume, spec)
		default:
			return nil, fmt.Errorf("dataflow: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("dataflow: no graph declaration found")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Graph, error) {
	return Parse(strings.NewReader(s))
}

// Emit writes the graph in the Parse format; Parse(Emit(g)) reproduces g.
func (g *Graph) Emit(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "graph %s\n", g.name); err != nil {
		return err
	}
	for _, a := range g.Actors() {
		act := g.Actor(a)
		if _, err := fmt.Fprintf(w, "actor %s %d\n", act.Name, act.ExecCycles); err != nil {
			return err
		}
	}
	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		opts := ""
		switch {
		case e.Produce.Kind == DynamicPort && e.Consume.Kind == DynamicPort:
			opts += " dynamic"
		case e.Produce.Kind == DynamicPort:
			opts += " dynsrc"
		case e.Consume.Kind == DynamicPort:
			opts += " dynsnk"
		}
		if e.Delay != 0 {
			opts += fmt.Sprintf(" delay=%d", e.Delay)
		}
		if e.TokenBytes != 1 {
			opts += fmt.Sprintf(" bytes=%d", e.TokenBytes)
		}
		if _, err := fmt.Fprintf(w, "edge %s %s %s %d %d%s\n",
			e.Name, g.Actor(e.Src).Name, g.Actor(e.Snk).Name,
			e.Produce.Rate, e.Consume.Rate, opts); err != nil {
			return err
		}
	}
	return nil
}
