package session

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/spi"
	"repro/internal/transport"
)

const (
	clientNode = 0
	serverNode = 1
)

var testNodeOf = []int{0, 1}

// testGraph is the two-node test graph: A --ab(static, delayed)--> B
// --bc(dynamic)--> C, with A and C on the client node and B on the
// server node, so both edges cross the shared link.
func testGraph() (*dataflow.Graph, *sched.Mapping) {
	g := dataflow.New("sess")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	c := g.AddActor("C", 1)
	g.AddEdge("ab", a, b, 8, 8, dataflow.EdgeSpec{TokenBytes: 1, Delay: 8})
	g.AddEdge("bc", b, c, 8, 8, dataflow.EdgeSpec{TokenBytes: 1, ProduceDynamic: true, ConsumeDynamic: true})
	m := &sched.Mapping{
		NumProcs: 2,
		Proc:     []sched.Processor{0, 1, 0},
		Order:    [][]dataflow.ActorID{{a, c}, {b}},
	}
	return g, m
}

// testKernels is deterministic in (iter, inputs); C collects every
// payload it sees into sink.
func testKernels(sink *[][]byte, mu *sync.Mutex) map[dataflow.ActorID]spi.Kernel {
	return map[dataflow.ActorID]spi.Kernel{
		0: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			out := make([]byte, 8)
			for i := range out {
				out[i] = byte(iter*13 + i)
			}
			return map[dataflow.EdgeID][]byte{0: out}, nil
		},
		1: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			n := iter%8 + 1
			out := make([]byte, n)
			var sum byte
			for _, v := range in[0] {
				sum += v
			}
			for i := range out {
				out[i] = sum + byte(i)
			}
			return map[dataflow.EdgeID][]byte{1: out}, nil
		},
		2: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			cp := make([]byte, len(in[1]))
			copy(cp, in[1])
			mu.Lock()
			*sink = append(*sink, cp)
			mu.Unlock()
			return nil, nil
		},
	}
}

func defaultServerKernels(sid uint32, tenant string) map[dataflow.ActorID]spi.Kernel {
	var sink [][]byte
	var mu sync.Mutex
	return testKernels(&sink, &mu)
}

// localReference runs the graph single-process: the bit-exactness
// baseline every session must reproduce.
func localReference(t *testing.T, iters int) [][]byte {
	t.Helper()
	g, m := testGraph()
	var sink [][]byte
	var mu sync.Mutex
	if _, err := spi.Execute(g, m, testKernels(&sink, &mu), iters); err != nil {
		t.Fatal(err)
	}
	return sink
}

func samePayloads(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// harness is one serving node and one client node sharing a single link.
type harness struct {
	t      *testing.T
	srv    *Server
	client *Client
	iters  int
	block  int

	dialer   *transport.Link
	acceptor *transport.Link
	ln       transport.Listener
}

// startServe wires a server and a client over one link. clientSessions
// turns featSessions off on the dialer to exercise old-peer fallback.
func startServe(t *testing.T, tr transport.Transport, addr string, cfg ServerConfig, clientSessions bool) *harness {
	t.Helper()
	g, m := testGraph()
	if cfg.Graph == nil {
		cfg.Graph, cfg.Mapping, cfg.NodeOf = g, m, testNodeOf
	}
	cfg.Node = serverNode
	if cfg.Kernels == nil {
		cfg.Kernels = defaultServerKernels
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 10
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cdecls, err := spi.PeerDecls(g, m, testNodeOf, clientNode, cfg.Block)
	if err != nil {
		t.Fatal(err)
	}
	sdecls, err := spi.PeerDecls(g, m, testNodeOf, serverNode, cfg.Block)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	serverMux := NewMux(nil)
	accepted := make(chan *transport.Link, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			accepted <- nil
			return
		}
		l, err := transport.AcceptLink(c, transport.LinkConfig{Node: serverNode, Sessions: true},
			func(peer int) ([]transport.EdgeDecl, transport.Handler, error) {
				return sdecls[clientNode], serverMux, nil
			})
		if err != nil {
			t.Error(err)
			accepted <- nil
			return
		}
		accepted <- l
	}()
	conn, err := transport.DialRetry(context.Background(), tr, ln.Addr(),
		transport.RetryConfig{Attempts: 50, BaseDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	clientMux := NewMux(nil)
	d, err := transport.NewLink(conn, transport.LinkConfig{
		Node: clientNode, Edges: cdecls[serverNode], Sessions: clientSessions,
	}, clientMux)
	if err != nil {
		t.Fatal(err)
	}
	clientMux.Bind(d)
	a := <-accepted
	if a == nil {
		t.Fatal("accept failed")
	}
	serverMux.Bind(a)
	srv.Attach(serverMux)
	return &harness{
		t:      t,
		srv:    srv,
		client: NewClient(clientMux, 10*time.Second),
		iters:  cfg.Iterations,
		block:  cfg.Block,
		dialer: d, acceptor: a, ln: ln,
	}
}

// stop aborts the link (unwinding any session still blocked on it) and
// waits the server down.
func (h *harness) stop() {
	h.dialer.Abort()
	h.acceptor.Abort()
	h.ln.Close()
	h.srv.Close()
}

// runStream executes the client partition over an open stream and waits
// for the server's verdict.
func (h *harness) runStream(s *Stream) ([][]byte, byte, error) {
	g, m := testGraph()
	var sink [][]byte
	var mu sync.Mutex
	_, execErr := spi.ExecuteDistributed(g, m, testKernels(&sink, &mu), h.iters, spi.DistOptions{
		Node: clientNode, Addrs: make([]string, 2), NodeOf: testNodeOf, Block: h.block, Links: s,
	})
	status, cerr := s.AwaitClose(20 * time.Second)
	h.client.Done(s)
	if execErr != nil {
		return sink, status, execErr
	}
	return sink, status, cerr
}

// runSession opens a session and drives it end to end.
func (h *harness) runSession(tenant string) ([][]byte, byte, error) {
	s, err := h.client.Open(tenant)
	if err != nil {
		return nil, 0, err
	}
	return h.runStream(s)
}

func waitSnapshot(t *testing.T, srv *Server, what string, ok func(Snapshot) bool) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var snap Snapshot
	for time.Now().Before(deadline) {
		snap = srv.Snapshot()
		if ok(snap) {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; snapshot %+v", what, snap)
	return snap
}

// TestServeSingleSession: one tagged session over each transport
// produces output bit-identical to the single-process reference.
func TestServeSingleSession(t *testing.T) {
	const iters = 12
	ref := localReference(t, iters)
	for _, tc := range []struct {
		name string
		tr   transport.Transport
		addr string
	}{
		{"loopback", transport.NewLoopback(), "srv"},
		{"tcp", &transport.TCP{}, "127.0.0.1:0"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := startServe(t, tc.tr, tc.addr, ServerConfig{Iterations: iters}, true)
			defer h.stop()
			sink, status, err := h.runSession("alice")
			if err != nil {
				t.Fatal(err)
			}
			if status != CloseDone {
				t.Fatalf("close status %s", closeString(status))
			}
			if !samePayloads(sink, ref) {
				t.Fatalf("session output differs from reference: %d vs %d payloads", len(sink), len(ref))
			}
			snap := waitSnapshot(t, h.srv, "completion", func(s Snapshot) bool {
				return s.Completed == 1 && s.Live == 0
			})
			if snap.Admitted != 1 || snap.Rejected != 0 {
				t.Fatalf("snapshot %+v", snap)
			}
		})
	}
}

// TestServeConcurrentSessions multiplexes several sessions over the one
// link at once; every session's output must match the single-session
// reference bit for bit.
func TestServeConcurrentSessions(t *testing.T) {
	const iters, n = 10, 8
	ref := localReference(t, iters)
	h := startServe(t, transport.NewLoopback(), "srv", ServerConfig{Iterations: iters}, true)
	defer h.stop()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sink, status, err := h.runSession(fmt.Sprintf("tenant-%d", i%3))
			if err != nil {
				errs[i] = err
				return
			}
			if status != CloseDone {
				errs[i] = fmt.Errorf("close status %s", closeString(status))
				return
			}
			if !samePayloads(sink, ref) {
				errs[i] = fmt.Errorf("output differs from reference")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
	snap := waitSnapshot(t, h.srv, "all sessions complete", func(s Snapshot) bool {
		return s.Completed == n && s.Live == 0
	})
	if snap.Admitted != n || snap.Rejected != 0 || snap.Failed != 0 {
		t.Fatalf("snapshot %+v", snap)
	}
}

// TestImplicitFallback: a client that never negotiated featSessions gets
// exactly one implicit session and still computes the right answer.
func TestImplicitFallback(t *testing.T) {
	const iters = 9
	ref := localReference(t, iters)
	h := startServe(t, transport.NewLoopback(), "srv", ServerConfig{Iterations: iters}, false)
	defer h.stop()
	if h.dialer.SessionsNegotiated() {
		t.Fatal("test wants an un-negotiated link")
	}
	sink, status, err := h.runSession("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if status != CloseDone {
		t.Fatalf("close status %s", closeString(status))
	}
	if !samePayloads(sink, ref) {
		t.Fatal("implicit session output differs from reference")
	}
	waitSnapshot(t, h.srv, "implicit session completion", func(s Snapshot) bool {
		return s.Completed == 1
	})
}

// TestAdmissionCapacity: with MaxSessions = K, K+M concurrent opens admit
// exactly K and reject exactly M with StatusRejectedCapacity, no matter
// how the opens interleave.
func TestAdmissionCapacity(t *testing.T) {
	const maxSessions, extra = 4, 3
	h := startServe(t, transport.NewLoopback(), "srv",
		ServerConfig{Admission: Admission{MaxSessions: maxSessions}}, true)
	defer h.stop()
	var wg sync.WaitGroup
	results := make([]error, maxSessions+extra)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = h.client.Open("crowd")
		}(i)
	}
	wg.Wait()
	rejected := 0
	for _, err := range results {
		if err == nil {
			continue
		}
		var oe *OpenError
		if !errors.As(err, &oe) || oe.Status != StatusRejectedCapacity {
			t.Fatalf("unexpected open error: %v", err)
		}
		rejected++
	}
	if rejected != extra {
		t.Fatalf("rejected %d opens, want %d", rejected, extra)
	}
	snap := h.srv.Snapshot()
	if snap.Admitted != maxSessions || snap.Rejected != extra || snap.Live != maxSessions {
		t.Fatalf("snapshot %+v", snap)
	}
}

// TestAdmissionQuota: per-tenant quota rejects the tenant's own surplus
// while leaving other tenants admissible.
func TestAdmissionQuota(t *testing.T) {
	h := startServe(t, transport.NewLoopback(), "srv",
		ServerConfig{Admission: Admission{TenantQuota: 1}}, true)
	defer h.stop()
	if _, err := h.client.Open("t"); err != nil {
		t.Fatal(err)
	}
	_, err := h.client.Open("t")
	var oe *OpenError
	if !errors.As(err, &oe) || oe.Status != StatusRejectedQuota {
		t.Fatalf("second open for the tenant: %v, want quota rejection", err)
	}
	if _, err := h.client.Open("u"); err != nil {
		t.Fatalf("other tenant should be admissible: %v", err)
	}
}

// TestTenantWeights exercises the weighted fair-share arithmetic.
func TestTenantWeights(t *testing.T) {
	a := newAdmitter(Admission{MaxSessions: 4, TenantWeights: map[string]int{"big": 3, "small": 1}})
	if cap := a.tenantCap("big"); cap != 3 {
		t.Fatalf("big's share = %d, want 3", cap)
	}
	if cap := a.tenantCap("small"); cap != 1 {
		t.Fatalf("small's share = %d, want 1", cap)
	}
	// Unlisted tenants weigh 1 and still get at least one session.
	if cap := a.tenantCap("other"); cap != 1 {
		t.Fatalf("unlisted tenant's share = %d, want 1", cap)
	}
	for i := 0; i < 3; i++ {
		if st, _, _ := a.admit("big", false); st != StatusAdmitted {
			t.Fatalf("big open %d: %s", i, StatusString(st))
		}
	}
	if st, _, _ := a.admit("big", false); st != StatusRejectedQuota {
		t.Fatalf("big beyond share: %s, want quota rejection", StatusString(st))
	}
	if st, _, _ := a.admit("small", false); st != StatusAdmitted {
		t.Fatalf("small within share: %s", StatusString(st))
	}
	// Node now full: a healthy book rejects on capacity.
	if st, _, _ := a.admit("small", false); st != StatusRejectedQuota {
		t.Fatalf("small beyond share: %s", StatusString(st))
	}
	if st, _, _ := a.admit("other", false); st != StatusRejectedCapacity {
		t.Fatalf("full node with no degraded victim: %s", StatusString(st))
	}
}

// TestShedDegraded drives the full eviction path: a tenant over its byte
// budget degrades its oldest session; a later open on the full node
// sheds that session (its client sees CloseShed) and is itself admitted
// and served to completion.
func TestShedDegraded(t *testing.T) {
	const iters = 6
	ref := localReference(t, iters)
	gate := make(chan struct{})
	kernels := func(sid uint32, tenant string) map[dataflow.ActorID]spi.Kernel {
		ks := defaultServerKernels(sid, tenant)
		if sid == 1 {
			inner := ks[1]
			ks[1] = func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
				<-gate
				return inner(iter, in)
			}
		}
		return ks
	}
	h := startServe(t, transport.NewLoopback(), "srv", ServerConfig{
		Iterations: iters,
		Kernels:    kernels,
		Admission:  Admission{MaxSessions: 1, MaxTenantBytes: 1},
	}, true)
	defer h.stop()

	s1, err := h.client.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	res1 := make(chan error, 1)
	go func() {
		_, _, err := h.runStream(s1)
		res1 <- err
	}()
	// Session 1's first DATA frame blows the 1-byte tenant budget and
	// degrades it (sticky), making it the shed victim.
	waitSnapshot(t, h.srv, "degradation", func(s Snapshot) bool { return s.Degraded == 1 })

	s2, err := h.client.Open("t")
	if err != nil {
		t.Fatalf("open on a full node with a degraded victim: %v", err)
	}
	close(gate) // let session 1's gated kernel observe its shed
	if err := <-res1; err == nil {
		t.Fatal("shed session's client run should fail")
	}
	sink, status, err := h.runStream(s2)
	if err != nil {
		t.Fatal(err)
	}
	if status != CloseDone || !samePayloads(sink, ref) {
		t.Fatalf("session 2: status %s, payloads match: %v", closeString(status), samePayloads(sink, ref))
	}
	snap := waitSnapshot(t, h.srv, "shed accounting", func(s Snapshot) bool {
		return s.Shed == 1 && s.Completed == 1 && s.Failed == 1 && s.Live == 0
	})
	if snap.Admitted != 2 {
		t.Fatalf("snapshot %+v", snap)
	}
}

// replayRecorder records inbound events in dispatch order.
type replayRecorder struct {
	mu     sync.Mutex
	events []string
}

func (r *replayRecorder) record(ev string) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}
func (r *replayRecorder) HandleData(edge uint16, msg []byte) {
	r.record(fmt.Sprintf("data:%d:%x", edge, msg))
}
func (r *replayRecorder) HandleAck(edge uint16, count uint32) {
	r.record(fmt.Sprintf("ack:%d:%d", edge, count))
}
func (r *replayRecorder) HandleFin(edge uint16)     { r.record(fmt.Sprintf("fin:%d", edge)) }
func (r *replayRecorder) HandleLinkClose(err error) { r.record("close") }

// TestStreamReplayOrder: traffic arriving before the execution attaches
// is buffered and replayed to Connect's handler in exact arrival order.
func TestStreamReplayOrder(t *testing.T) {
	m := NewMux(nil)
	s := m.Adopt(5, 1)
	payload := []byte{1, 0, 0xaa}
	m.HandleSessionData(5, 1, payload)
	payload[2] = 0xff // the stream must have copied, not aliased
	m.HandleSessionAck(5, 0, 3)
	m.HandleSessionData(5, 1, []byte{1, 0, 0xbb})
	m.HandleSessionFin(5, 1)

	rec := &replayRecorder{}
	if _, err := s.Connect(1, []transport.EdgeDecl{{ID: 1, Bytes: 3}}, rec); err != nil {
		t.Fatal(err)
	}
	want := []string{"data:1:0100aa", "ack:0:3", "data:1:0100bb", "fin:1"}
	rec.mu.Lock()
	got := append([]string(nil), rec.events...)
	rec.mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %s, want %s", i, got[i], want[i])
		}
	}
	// Post-attach traffic dispatches directly.
	m.HandleSessionData(5, 1, []byte{1, 0, 0xcc})
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.events) != 5 || rec.events[4] != "data:1:0100cc" {
		t.Fatalf("direct dispatch events %v", rec.events)
	}
}

// TestStreamByteAccounting checks the queued-byte estimate moves up on
// delivery and down by declared bytes on acknowledgement, never below 0.
func TestStreamByteAccounting(t *testing.T) {
	m := NewMux(nil)
	s := m.Adopt(9, 1)
	var total int64
	s.setAccount(func(d int64) { total += d })
	if _, err := s.Connect(1, []transport.EdgeDecl{{ID: 2, Bytes: 8}}, &replayRecorder{}); err != nil {
		t.Fatal(err)
	}
	m.HandleSessionData(9, 2, make([]byte, 10))
	m.HandleSessionData(9, 2, make([]byte, 10))
	if total != 20 || s.takeQueued() != 20 {
		t.Fatalf("queued %d after two deliveries", total)
	}
	m.HandleSessionData(9, 2, make([]byte, 10))
	s.noteConsumed(2, 1) // retires min(8, queued)
	if total != 20+10-8 {
		t.Fatalf("after one ack total = %d", total)
	}
	s.noteConsumed(2, 100) // clamps at zero, never negative
	if total != 20 {
		t.Fatalf("after over-ack total = %d (residual should be 0 net of takeQueued)", total)
	}
	if q := s.takeQueued(); q != 0 {
		t.Fatalf("residual queued = %d", q)
	}
}

// TestThousandSessions sustains 1000 concurrent sessions over the one
// loopback link pair — the acceptance bar for the session layer.
func TestThousandSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-session soak skipped in -short")
	}
	const iters, n = 2, 1000
	ref := localReference(t, iters)
	h := startServe(t, transport.NewLoopback(), "srv", ServerConfig{Iterations: iters}, true)
	defer h.stop()
	var wg sync.WaitGroup
	var mu sync.Mutex
	bad := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sink, status, err := h.runSession(fmt.Sprintf("tenant-%d", i%10))
			if err != nil || status != CloseDone || !samePayloads(sink, ref) {
				mu.Lock()
				if bad == 0 {
					t.Errorf("session %d: err=%v status=%d identical=%v", i, err, status, samePayloads(sink, ref))
				}
				bad++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if bad > 0 {
		t.Fatalf("%d of %d sessions failed or diverged", bad, n)
	}
	snap := waitSnapshot(t, h.srv, "soak completion", func(s Snapshot) bool {
		return s.Completed == n && s.Live == 0
	})
	if snap.Admitted != n {
		t.Fatalf("snapshot %+v", snap)
	}
}

// chaosHarness is startServe over a FaultTransport with reconnection:
// the accept loop keeps running, routing RESUME handshakes back to the
// established link, so severed connections replay every live session.
func chaosHarness(t *testing.T, ft *transport.FaultTransport, cfg ServerConfig) *harness {
	t.Helper()
	g, m := testGraph()
	cfg.Graph, cfg.Mapping, cfg.NodeOf = g, m, testNodeOf
	cfg.Node = serverNode
	if cfg.Kernels == nil {
		cfg.Kernels = defaultServerKernels
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 10
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cdecls, _ := spi.PeerDecls(g, m, testNodeOf, clientNode, cfg.Block)
	sdecls, _ := spi.PeerDecls(g, m, testNodeOf, serverNode, cfg.Block)
	ln, err := ft.Listen("chaos-srv")
	if err != nil {
		t.Fatal(err)
	}
	rc := transport.ReconnectConfig{Attempts: 50, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Deadline: 20 * time.Second}
	serverMux := NewMux(nil)
	accepted := make(chan *transport.Link, 1)
	go func() {
		var acceptor *transport.Link
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			l, err := transport.AcceptConn(c, transport.LinkConfig{Node: serverNode, Sessions: true, Reconnect: rc},
				func(peer int) ([]transport.EdgeDecl, transport.Handler, error) {
					return sdecls[clientNode], serverMux, nil
				},
				func(peer int, token uint64) *transport.Link {
					if acceptor != nil && acceptor.PeerNode() == peer && acceptor.Token() == token {
						return acceptor
					}
					return nil
				})
			if err != nil {
				continue
			}
			if l != nil {
				acceptor = l
				accepted <- l
			}
		}
	}()
	conn, err := ft.Dial("chaos-srv")
	if err != nil {
		t.Fatal(err)
	}
	clientMux := NewMux(nil)
	d, err := transport.NewLink(conn, transport.LinkConfig{
		Node: clientNode, Edges: cdecls[serverNode], Sessions: true,
		Reconnect: rc,
		Redial:    func() (transport.Conn, error) { return ft.Dial("chaos-srv") },
	}, clientMux)
	if err != nil {
		t.Fatal(err)
	}
	clientMux.Bind(d)
	a := <-accepted
	serverMux.Bind(a)
	srv.Attach(serverMux)
	return &harness{
		t: t, srv: srv, client: NewClient(clientMux, 20*time.Second),
		iters: cfg.Iterations, block: cfg.Block,
		dialer: d, acceptor: a, ln: ln,
	}
}

// TestChaosSessions runs concurrent sessions over a faulty link: drops
// and deterministic severs are repaired by link-level RESUME replay, and
// every surviving session's output stays bit-identical to its
// single-session reference. With a capacity cap, the up-front opens see
// deterministic admission verdicts under the seed.
func TestChaosSessions(t *testing.T) {
	const iters = 12
	ref := localReference(t, iters)
	schedules := []struct {
		name string
		cfg  transport.FaultConfig
	}{
		{"drops", transport.FaultConfig{Seed: 7, Drop: 0.03, SkipFrames: 8, MaxFaults: 30}},
		{"severs", transport.FaultConfig{Seed: 9, SeverAt: []int{40, 90}, SkipFrames: 8}},
	}
	for _, sc := range schedules {
		t.Run(sc.name, func(t *testing.T) {
			ft := transport.NewFaultTransport(transport.NewLoopback(), sc.cfg)
			h := chaosHarness(t, ft, ServerConfig{
				Iterations: iters,
				Admission:  Admission{MaxSessions: 2},
			})
			defer h.stop()

			// Open all four up front, in order, before any execution: on a
			// 2-session node the verdicts are deterministic — 2 admitted,
			// then 2 capacity rejections — independent of fault timing.
			var streams []*Stream
			for i := 0; i < 4; i++ {
				s, err := h.client.Open(fmt.Sprintf("chaos-%d", i))
				if i < 2 {
					if err != nil {
						t.Fatalf("open %d: %v", i, err)
					}
					streams = append(streams, s)
					continue
				}
				var oe *OpenError
				if !errors.As(err, &oe) || oe.Status != StatusRejectedCapacity {
					t.Fatalf("open %d: %v, want deterministic capacity rejection", i, err)
				}
			}

			var wg sync.WaitGroup
			errs := make([]error, len(streams))
			for i, s := range streams {
				wg.Add(1)
				go func(i int, s *Stream) {
					defer wg.Done()
					sink, status, err := h.runStream(s)
					if err != nil {
						errs[i] = err
						return
					}
					if status != CloseDone {
						errs[i] = fmt.Errorf("close status %s", closeString(status))
						return
					}
					if !samePayloads(sink, ref) {
						errs[i] = fmt.Errorf("output diverged from reference under chaos")
					}
				}(i, s)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Errorf("session %d: %v", i, err)
				}
			}
			snap := waitSnapshot(t, h.srv, "chaos completion", func(s Snapshot) bool {
				return s.Completed == 2 && s.Live == 0
			})
			if snap.Admitted != 2 || snap.Rejected != 2 {
				t.Fatalf("snapshot %+v", snap)
			}
			if st := ft.Stats(); st.Drops+st.Severs == 0 {
				t.Logf("schedule %s injected no faults (seed too gentle?)", sc.name)
			}
		})
	}
}
