package spi

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/transport"
)

// Liveness tests: runs that would previously hang — a black-holed peer, a
// mid-block transport stall, an overrun deadline — must now end in a
// bounded, named error. Every test here has a hard wall-clock ceiling; a
// hang is itself the failure.

// runTwoNodesWatched is runTwoNodesChaos with per-node option tweaks, for
// runs that configure the liveness layer (watchdog, heartbeat, deadline).
func runTwoNodesWatched(t *testing.T, tr transport.Transport, iterations int,
	tweak func(node int, o *DistOptions)) ([2]error, time.Duration) {
	t.Helper()
	g, m := distGraph()
	var sink [][]byte
	var mu sync.Mutex

	ln, err := tr.Listen("watch0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr(), "unused"}

	var errs [2]error
	var wg sync.WaitGroup
	start := time.Now()
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			opts := DistOptions{
				Transport: tr,
				Node:      node,
				Addrs:     addrs,
				NodeOf:    []int{0, 1},
				Retry:     transport.RetryConfig{Attempts: 20, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
			}
			if node == 0 {
				opts.Listener = ln
			}
			tweak(node, &opts)
			_, errs[node] = ExecuteDistributed(g, m, distKernels(&sink, &mu), iterations, opts)
		}(node)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("watched run wedged — the liveness layer failed its one job")
	}
	return errs, time.Since(start)
}

// TestDistributedStallWatchdog: a chaos stall black-holes one connection
// mid-run (blocked transfers, no heartbeat) — pure silence, no I/O error
// anywhere. The progress watchdog must notice the frozen run and return a
// *StallError naming the actors that never finished. The first watchdog
// to fire tears the shared link down, which may unblock the peer with a
// link-failure error before its own window elapses — that outcome is
// bounded too, so the test requires the stall diagnosis from at least one
// node and a prompt non-nil error from the other.
func TestDistributedStallWatchdog(t *testing.T) {
	const window = 400 * time.Millisecond
	ft := transport.NewFaultTransport(transport.NewLoopback(), transport.FaultConfig{
		StallAt: 10, SkipFrames: 6, MaxFaults: 1,
	})
	errs, elapsed := runTwoNodesWatched(t, ft, 200, func(node int, o *DistOptions) {
		o.Block = 4
		o.StallTimeout = window
	})
	if got := ft.Stats().Stalls; got != 1 {
		t.Fatalf("stall fault injected %d times, want 1", got)
	}
	stalls := 0
	for node, err := range errs {
		if err == nil {
			t.Fatalf("node %d: a black-holed run finished cleanly?", node)
		}
		var se *StallError
		if !errors.As(err, &se) {
			continue // collateral of the peer's abort; counted below
		}
		stalls++
		if se.Node != node {
			t.Errorf("node %d: StallError.Node = %d", node, se.Node)
		}
		if se.Window != window {
			t.Errorf("node %d: StallError.Window = %v, want %v", node, se.Window, window)
		}
		if len(se.Stalled) == 0 {
			t.Errorf("node %d: stall reported with no stalled actors", node)
		}
		for _, name := range se.Stalled {
			if n, ok := se.Firings[name]; !ok || n >= 200 {
				t.Errorf("node %d: stalled actor %s has firings %d (ok=%v)", node, name, n, ok)
			}
		}
	}
	if stalls == 0 {
		t.Fatalf("no node diagnosed the stall: %v / %v", errs[0], errs[1])
	}
	// Detection is bounded: the whole run — connect, a few iterations, the
	// stall, one full window plus a poll tick — fits well under 10x the
	// window even on a loaded CI box.
	if elapsed > 10*window+5*time.Second {
		t.Errorf("stalled run took %v to abort, window is %v", elapsed, window)
	}
}

// TestDistributedStallDegrades: same black-holed connection, this time
// with heartbeats on, recovery denied, and Degrade set — the acceptance
// path: the run ends in a DegradedError whose cause names the failure and
// whose Starved list names the actors that lost their inputs.
func TestDistributedStallDegrades(t *testing.T) {
	const window = 400 * time.Millisecond
	ft := transport.NewFaultTransport(transport.NewLoopback(), transport.FaultConfig{
		StallAt: 10, SkipFrames: 6, MaxFaults: 1, DenyDialsAfter: 1,
	})
	errs, _ := runTwoNodesWatched(t, ft, 200, func(node int, o *DistOptions) {
		o.Degrade = true
		o.StallTimeout = window
		o.Heartbeat = 25 * time.Millisecond
		o.PeerTimeout = 150 * time.Millisecond
		o.Reconnect = transport.ReconnectConfig{
			Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
			Deadline: 200 * time.Millisecond,
		}
	})
	for node, err := range errs {
		var de *DegradedError
		if !errors.As(err, &de) {
			t.Fatalf("node %d: err = %v, want *DegradedError", node, err)
		}
		if de.Node != node {
			t.Errorf("node %d: DegradedError.Node = %d", node, de.Node)
		}
		if len(de.Starved) == 0 {
			t.Errorf("node %d: degraded with no starved actors named", node)
		}
		if de.Cause == nil {
			t.Errorf("node %d: DegradedError.Cause is nil", node)
		}
	}
}

// TestDistributedContextDeadline: a context deadline bounds the whole
// run. Kernels that would happily run for many seconds are cut off, every
// blocked actor is released, and both nodes report the deadline — not a
// hang, not a bare ErrClosed.
func TestDistributedContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	errs, elapsed := runTwoNodesWatched(t, transport.NewLoopback(), 100_000, func(node int, o *DistOptions) {
		o.Context = ctx
	})
	for node, err := range errs {
		if err == nil {
			t.Fatalf("node %d: 100k iterations beat a 150ms deadline?", node)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("node %d: err = %v, want context.DeadlineExceeded in the chain", node, err)
		}
	}
	if elapsed > 10*time.Second {
		t.Errorf("deadline-bounded run took %v to unwind", elapsed)
	}
}

// TestExecuteBlockedContextDeadline: the same deadline propagation on the
// in-process blocked path, with kernels slow enough that the deadline
// lands mid-run.
func TestExecuteBlockedContextDeadline(t *testing.T) {
	g, m := distGraph()
	var sink [][]byte
	var mu sync.Mutex
	kernels := distKernels(&sink, &mu)
	slow := kernels[0]
	kernels[0] = func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
		time.Sleep(time.Millisecond)
		return slow(iter, in)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ExecuteBlocked(g, m, kernels, 100_000, VecOptions{Block: 4, Context: ctx})
	if err == nil {
		t.Fatal("100k slow iterations beat a 100ms deadline?")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline-bounded blocked run took %v to unwind", elapsed)
	}
}

// TestWatchVerdict: the watchdog's error wins over the ErrClosed noise its
// own CloseAll cascades, but never over a genuine kernel failure.
func TestWatchVerdict(t *testing.T) {
	kernel := errors.New("kernel exploded")
	closed := fmt.Errorf("actor recv: %w", ErrClosed)
	stall := &StallError{Node: 1, Window: time.Second}
	deadline := fmt.Errorf("spi: node 0 run cancelled: %w", context.DeadlineExceeded)
	cases := []struct {
		name       string
		runErr, wd error
		want       error
	}{
		{"clean run", nil, nil, nil},
		{"kernel failure, no watchdog", kernel, nil, kernel},
		{"watchdog over silent run", nil, stall, stall},
		{"watchdog over its own ErrClosed cascade", closed, stall, stall},
		{"kernel failure beats watchdog", kernel, stall, kernel},
		{"cancellation beats collateral link errors", errors.New("send: closed pipe"), deadline, deadline},
	}
	for _, c := range cases {
		if got := watchVerdict(c.runErr, c.wd); got != c.want { //nolint:errorlint // identity check is the contract
			t.Errorf("%s: watchVerdict = %v, want %v", c.name, got, c.want)
		}
	}
	// And the error text names the stalled actors for the operator.
	se := &StallError{Node: 2, Window: time.Second, Stalled: []string{"B", "C"},
		Firings: map[string]int{"B": 7, "C": 3}}
	msg := se.Error()
	for _, want := range []string{"node 2", "B (7 firings)", "C (3 firings)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("StallError %q does not mention %q", msg, want)
		}
	}
}
