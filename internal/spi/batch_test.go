package spi

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestSendBatchReceiveBatch(t *testing.T) {
	rt := NewRuntime()
	tx, rx, err := rt.Init(EdgeConfig{ID: 1, Mode: Dynamic, MaxBytes: 16, Protocol: UBS})
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		{1},
		{2, 2},
		{},
		{4, 4, 4, 4},
	}
	if err := tx.SendBatch(payloads); err != nil {
		t.Fatal(err)
	}
	got, err := rx.ReceiveBatch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("drained %d messages, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("message %d = %v, want %v", i, got[i], payloads[i])
		}
	}
	st, _ := rt.Stats(1)
	if st.Messages != int64(len(payloads)) {
		t.Errorf("messages = %d, want %d", st.Messages, len(payloads))
	}
	if st.Acks != int64(len(payloads)) {
		t.Errorf("acks = %d, want %d (UBS batch still acks per message logically)", st.Acks, len(payloads))
	}
	if tx.Outstanding() != 0 {
		t.Errorf("outstanding = %d after full drain", tx.Outstanding())
	}
}

func TestReceiveBatchMax(t *testing.T) {
	rt := NewRuntime()
	tx, rx, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 1, Protocol: UBS})
	for i := 0; i < 10; i++ {
		if err := tx.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	first, err := rx.ReceiveBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 {
		t.Fatalf("ReceiveBatch(3) returned %d messages", len(first))
	}
	rest, err := rx.ReceiveBatch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 7 {
		t.Fatalf("second drain returned %d messages, want 7", len(rest))
	}
	for i, p := range append(first, rest...) {
		if p[0] != byte(i) {
			t.Fatalf("message %d carries %d (order broken)", i, p[0])
		}
	}
}

// TestReceiveBatchNegativeMax pins the documented max <= 0 contract: a
// negative max behaves exactly like zero — unbounded, draining the whole
// queue — rather than returning nothing or panicking.
func TestReceiveBatchNegativeMax(t *testing.T) {
	rt := NewRuntime()
	tx, rx, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 1, Protocol: UBS})
	for i := 0; i < 5; i++ {
		if err := tx.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := rx.ReceiveBatch(-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("ReceiveBatch(-1) returned %d messages, want the whole queue (5)", len(got))
	}
	for i, p := range got {
		if p[0] != byte(i) {
			t.Fatalf("message %d carries %d (order broken)", i, p[0])
		}
	}
}

// TestSendBatchBBSDrains sends a burst larger than the BBS capacity: the
// batch must block per message on credit and complete once a consumer
// drains, preserving order.
func TestSendBatchBBSDrains(t *testing.T) {
	rt := NewRuntime()
	tx, rx, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 1, Protocol: BBS, Capacity: 2})
	const n = 20
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = []byte{byte(i)}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var sendErr error
	go func() {
		defer wg.Done()
		sendErr = tx.SendBatch(payloads)
	}()
	for i := 0; i < n; i++ {
		p, err := rx.Receive()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if p[0] != byte(i) {
			t.Fatalf("out of order at %d: got %d", i, p[0])
		}
	}
	wg.Wait()
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	st, _ := rt.Stats(1)
	if st.MaxQueued > 2 {
		t.Errorf("BBS MaxQueued %d exceeds capacity during batch", st.MaxQueued)
	}
}

func TestSendBatchClosedEdge(t *testing.T) {
	rt := NewRuntime()
	tx, _, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 1, Protocol: UBS})
	tx.Close()
	if err := tx.SendBatch([][]byte{{1}, {2}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SendBatch on closed edge = %v, want ErrClosed", err)
	}
}

func TestSendBatchValidatesEachPayload(t *testing.T) {
	rt := NewRuntime()
	tx, rx, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 2, Protocol: UBS})
	err := tx.SendBatch([][]byte{{1, 1}, {2}, {3, 3}})
	if err == nil {
		t.Fatal("batch with a wrong-size static payload should fail")
	}
	// Validation is all-or-nothing and runs before any message moves, so
	// the valid prefix was NOT delivered.
	if _, ok, err := rx.TryReceive(); ok || err != nil {
		t.Fatalf("queue after rejected batch = %v,%v, want empty", ok, err)
	}
}

func TestReceiveIntoReusesBuffer(t *testing.T) {
	rt := NewRuntime()
	tx, rx, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 8, Protocol: UBS})
	buf := make([]byte, 0, 8)
	for i := 0; i < 5; i++ {
		msg := []byte{byte(i), 1, 2, 3, 4, 5, 6, 7}
		if err := tx.Send(msg); err != nil {
			t.Fatal(err)
		}
		p, err := rx.ReceiveInto(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, msg) {
			t.Fatalf("round %d: got %v", i, p)
		}
		if cap(buf) >= 8 && &p[0] != &buf[:1][0] {
			t.Fatalf("round %d: payload not written into the supplied buffer", i)
		}
		buf = p
	}
}

// BenchmarkSendReceiveInto measures the steady-state local hot path:
// pooled encode on Send, caller-supplied buffer on receive. With the
// sync.Pool arena this is allocation-free per message (run with
// -benchmem).
func BenchmarkSendReceiveInto(b *testing.B) {
	rt := NewRuntime()
	tx, rx, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 64, Protocol: BBS, Capacity: 8})
	payload := make([]byte, 64)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(payload); err != nil {
			b.Fatal(err)
		}
		p, err := rx.ReceiveInto(buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = p[:0]
	}
}

// BenchmarkTryReceiveEmpty measures the polling fast path: an empty,
// open edge must be answered from the atomic mirrors without taking the
// edge lock or allocating.
func BenchmarkTryReceiveEmpty(b *testing.B) {
	rt := NewRuntime()
	_, rx, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 8, Protocol: UBS})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := rx.TryReceive(); ok || err != nil {
			b.Fatalf("TryReceive = %v,%v", ok, err)
		}
	}
}

// BenchmarkOutstanding measures the lock-free outstanding-message count
// used by UBS synchronization-aware senders.
func BenchmarkOutstanding(b *testing.B) {
	rt := NewRuntime()
	tx, _, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 8, Protocol: UBS})
	tx.Send(make([]byte, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tx.Outstanding() != 1 {
			b.Fatal("outstanding changed")
		}
	}
}
