// Command spictl runs the elastic orchestration control plane: a
// coordinator that accepts worker registrations, partitions the graph,
// dispatches each worker only its share, and live-migrates actors across
// epoch boundaries when the pool changes or a worker dies (see
// internal/orch).
//
// Self-contained smoke (one process, 3 workers over an in-memory
// transport, one forced live migration, digests checked against the
// static single-node run):
//
//	spictl -inproc 3 -iters 24 -epoch 6 -migrate-at 2 -verify
//
// Distributed: run spictl with -listen and point spinode -worker
// instances at it:
//
//	spictl -listen 127.0.0.1:7200 -min-workers 3 -iters 240 -epoch 24
//	spinode -worker -coord 127.0.0.1:7200 -name w0 -data-host 127.0.0.1
//
// Fault injection (in-proc pool only): -kill w1@2 cancels worker w1 as
// epoch 2 dispatches; -choke w1@2 silences its transport instead, so only
// heartbeat liveness can declare it dead. Exit status 1 on any failure,
// including a -verify digest mismatch.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dataflow"
	"repro/internal/demo"
	"repro/internal/obs"
	"repro/internal/orch"
	"repro/internal/sched"
	"repro/internal/spi"
	"repro/internal/transport"
)

// builtinGraph is the default workload: a 4-actor signal chain whose
// edges cover every class the partition codec handles — cross-processor
// static with delay, dynamic with delay, undelayed static, and a
// same-processor delayed edge. Assign 0,1,2,0.
const builtinGraph = `graph orchdemo
actor src 100
actor fir 220
actor dec 180
actor snk 60
edge sf src fir 1 1 bytes=8 delay=2
edge fd fir dec 1 1 bytes=16 delay=1 dynamic
edge ds dec snk 1 1 bytes=4
edge ss src snk 1 1 bytes=6 delay=1
`

func main() {
	var cfg ctlConfig
	graphPath := flag.String("graph", "", "dataflow graph file (default: a built-in 4-actor chain)")
	assign := flag.String("assign", "", "comma-separated processor index per actor (default for the built-in graph: 0,1,2,0)")
	flag.IntVar(&cfg.Iterations, "iters", 24, "total graph iterations to execute")
	flag.IntVar(&cfg.EpochIters, "epoch", 6, "iterations per epoch (the migration/commit granularity)")
	flag.Uint64Var(&cfg.Seed, "seed", 1, "deterministic kernel seed (workers must use the same)")
	flag.StringVar(&cfg.Listen, "listen", "", "TCP control-plane address to accept spinode -worker registrations on")
	flag.IntVar(&cfg.InProc, "inproc", 0, "spawn this many in-process workers over an in-memory transport instead of listening on TCP")
	flag.IntVar(&cfg.MinWorkers, "min-workers", 0, "wait for this many workers before the first epoch (default: all of -inproc, else 1)")
	flag.IntVar(&cfg.MigrateAt, "migrate-at", -1, "force a live migration by rotating the placement at this epoch (-1 = never)")
	killSpec := flag.String("kill", "", "in-proc fault: cancel worker NAME as epoch E dispatches, e.g. w1@2")
	chokeSpec := flag.String("choke", "", "in-proc fault: silence worker NAME's transport at epoch E (heartbeat-only death), e.g. w1@2")
	flag.BoolVar(&cfg.Resync, "resync", false, "suppress UBS acks on edges the sync graph proves redundant; workers negotiate the suppression set per link and every epoch's re-placement recomputes it")
	flag.IntVar(&cfg.Fission, "fission", 0, "rewrite the heaviest fissionable actor (or -fission-actor) into this many replicas behind scatter/gather stages before orchestrating; the replicas place and migrate like ordinary actors (0 = off)")
	flag.StringVar(&cfg.FissionActor, "fission-actor", "", "with -fission: name of the actor to fission (default: the heaviest fissionable one)")
	flag.BoolVar(&cfg.Verify, "verify", false, "run the static single-node reference in-process and require bit-identical sink digests")
	flag.DurationVar(&cfg.Heartbeat, "heartbeat", 25*time.Millisecond, "control/data link liveness probe interval")
	flag.DurationVar(&cfg.PeerTimeout, "peer-timeout", 0, "declare a worker dead after this much control-link silence (0 = 4x heartbeat)")
	flag.DurationVar(&cfg.EpochTimeout, "epoch-timeout", 30*time.Second, "reap workers that stall an epoch past this bound")
	flag.DurationVar(&cfg.Deadline, "deadline", 5*time.Minute, "hard budget for the whole run")
	flag.Parse()

	var err error
	if *graphPath != "" {
		f, ferr := os.Open(*graphPath)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "spictl:", ferr)
			os.Exit(1)
		}
		cfg.Graph, err = dataflow.Parse(f)
		f.Close()
	} else {
		cfg.Graph, err = dataflow.Parse(strings.NewReader(builtinGraph))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spictl:", err)
		os.Exit(1)
	}
	switch {
	case *assign != "":
		if cfg.Assign, err = parseInts(*assign); err != nil {
			fmt.Fprintln(os.Stderr, "spictl: -assign:", err)
			os.Exit(2)
		}
	case *graphPath == "":
		cfg.Assign = []int{0, 1, 2, 0}
	default:
		fmt.Fprintln(os.Stderr, "spictl: -assign is required with -graph")
		os.Exit(2)
	}
	if cfg.Kill, err = parseFault(*killSpec); err != nil {
		fmt.Fprintln(os.Stderr, "spictl: -kill:", err)
		os.Exit(2)
	}
	if cfg.Choke, err = parseFault(*chokeSpec); err != nil {
		fmt.Fprintln(os.Stderr, "spictl: -choke:", err)
		os.Exit(2)
	}
	if (cfg.Listen == "") == (cfg.InProc == 0) {
		fmt.Fprintln(os.Stderr, "spictl: exactly one of -listen or -inproc is required")
		os.Exit(2)
	}
	if err := runCtl(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spictl:", err)
		os.Exit(1)
	}
}

// fault names a worker and the epoch at whose dispatch it fires.
type fault struct {
	Worker string
	Epoch  int
}

func parseFault(s string) (*fault, error) {
	if s == "" {
		return nil, nil
	}
	name, at, ok := strings.Cut(s, "@")
	if !ok || name == "" {
		return nil, fmt.Errorf("want NAME@EPOCH, got %q", s)
	}
	e, err := strconv.Atoi(at)
	if err != nil || e < 0 {
		return nil, fmt.Errorf("bad epoch in %q", s)
	}
	return &fault{Worker: name, Epoch: e}, nil
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad entry %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// ctlConfig is everything runCtl needs; main fills it from flags, tests
// construct it directly.
type ctlConfig struct {
	Graph        *dataflow.Graph
	Assign       []int
	Iterations   int
	EpochIters   int
	Seed         uint64
	Listen       string
	InProc       int
	MinWorkers   int
	MigrateAt    int
	Kill         *fault
	Choke        *fault
	Resync       bool
	Fission      int
	FissionActor string
	Verify       bool
	Heartbeat    time.Duration
	PeerTimeout  time.Duration
	EpochTimeout time.Duration
	Deadline     time.Duration
	// Obs optionally instruments the coordinator's links.
	Obs *obs.Observer
}

// staticReference runs the unpartitioned single-process execution and
// returns its per-sink digests — the bit-identity bar the orchestrated
// run must clear.
func staticReference(g *dataflow.Graph, m *sched.Mapping, seed uint64, iters int) (map[string]uint64, error) {
	digests := demo.Sinks(g)
	var mu sync.Mutex
	kernels, err := demo.Kernels(g, seed, digests, &mu)
	if err != nil {
		return nil, err
	}
	if _, err := spi.Execute(g, m, kernels, iters); err != nil {
		return nil, err
	}
	out := map[string]uint64{}
	for name, d := range digests {
		out[name] = *d
	}
	return out, nil
}

// runCtl drives one orchestrated run end to end and reports digests and
// elasticity counters on w.
func runCtl(cfg ctlConfig, w io.Writer) error {
	m, err := demo.Mapping(cfg.Graph, cfg.Assign)
	if err != nil {
		return err
	}
	// -fission rewrites the graph before orchestration: the replicas are
	// ordinary actors from the coordinator's point of view, so they place,
	// checkpoint, and live-migrate exactly like the rest of the graph.
	if cfg.Fission > 0 {
		var target dataflow.ActorID
		if cfg.FissionActor != "" {
			a, ok := cfg.Graph.ActorByName(cfg.FissionActor)
			if !ok {
				return fmt.Errorf("-fission-actor: graph %q has no actor %q", cfg.Graph.Name(), cfg.FissionActor)
			}
			target = a
		} else {
			if target, err = dataflow.HeaviestFissionable(cfg.Graph); err != nil {
				return err
			}
		}
		plan, err := dataflow.Fission(cfg.Graph, target, dataflow.FissionOptions{K: cfg.Fission})
		if err != nil {
			return err
		}
		if m, err = sched.ExtendFission(m, plan); err != nil {
			return err
		}
		cfg.Graph = plan.Graph
		fmt.Fprintf(w, "%s\n", plan)
	}
	min := cfg.MinWorkers
	if min == 0 {
		if min = cfg.InProc; min == 0 {
			min = 1
		}
	}

	var tr transport.Transport = &transport.TCP{}
	coordAddr := cfg.Listen
	if cfg.InProc > 0 {
		tr = transport.NewLoopback()
		coordAddr = "spictl-coord"
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Deadline)
	defer cancel()

	// In-proc pool: each worker gets its own context (so -kill can take
	// one down) and optionally a choke-wrapped transport.
	workerErrs := map[string]chan error{}
	stops := map[string]context.CancelFunc{}
	var choker *silencer
	if cfg.InProc > 0 {
		for i := 0; i < cfg.InProc; i++ {
			name := fmt.Sprintf("w%d", i)
			wtr := tr
			if cfg.Choke != nil && cfg.Choke.Worker == name {
				choker = &silencer{Transport: tr}
				wtr = choker
			}
			wk, err := orch.NewWorker(orch.WorkerConfig{
				Transport: wtr, Coord: coordAddr, Name: name,
				Kernels: func(spec *spi.PartitionSpec) (*orch.KernelSet, error) {
					kernels, sinks := demo.PartKernels(spec, cfg.Seed)
					return &orch.KernelSet{Kernels: kernels, Collect: sinks.Take}, nil
				},
				Retry:     transport.RetryConfig{Attempts: 50, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
				Heartbeat: cfg.Heartbeat, PeerTimeout: cfg.PeerTimeout,
				Obs: cfg.Obs,
			})
			if err != nil {
				return err
			}
			wctx, wcancel := context.WithCancel(ctx)
			defer wcancel()
			stops[name] = wcancel
			ch := make(chan error, 1)
			workerErrs[name] = ch
			go func() { ch <- wk.Run(wctx) }()
		}
	}

	ccfg := orch.CoordConfig{
		Transport: tr, Addr: coordAddr, Graph: cfg.Graph, Mapping: m,
		Iterations: cfg.Iterations, EpochIters: cfg.EpochIters, MinWorkers: min,
		Heartbeat: cfg.Heartbeat, PeerTimeout: cfg.PeerTimeout,
		EpochTimeout: cfg.EpochTimeout, Resync: cfg.Resync, Obs: cfg.Obs,
	}
	if cfg.MigrateAt >= 0 {
		at := cfg.MigrateAt
		ccfg.OnPlace = func(epoch int, placement []int, ids []uint32) []int {
			if epoch != at || len(ids) < 2 {
				return placement
			}
			rotated := make([]int, len(placement))
			for p, slot := range placement {
				rotated[p] = (slot + 1) % len(ids)
			}
			return rotated
		}
	}
	if cfg.Kill != nil || cfg.Choke != nil {
		var killOnce, chokeOnce sync.Once
		ccfg.OnDispatch = func(epoch int) {
			if cfg.Kill != nil && epoch == cfg.Kill.Epoch {
				if stop := stops[cfg.Kill.Worker]; stop != nil {
					killOnce.Do(stop)
				}
			}
			if cfg.Choke != nil && epoch == cfg.Choke.Epoch && choker != nil {
				chokeOnce.Do(choker.Silence)
			}
		}
	}
	coord, err := orch.NewCoordinator(ccfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "spictl: graph %s, %d iterations in epochs of %d, min %d workers\n",
		cfg.Graph.Name(), cfg.Iterations, cfg.EpochIters, min)
	start := time.Now()
	rep, err := coord.Run(ctx)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	names := make([]string, 0, len(rep.Digests))
	for name := range rep.Digests {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "digest %s %016x\n", name, rep.Digests[name])
	}
	fmt.Fprintf(w, "orch: epochs=%d commits=%d aborts=%d migrations=%d stalled_tokens=%d workers_seen=%d workers_lost=%d recovery=%s elapsed=%s\n",
		rep.Epochs, rep.Commits, rep.Aborts, rep.Migrations, rep.StalledTokens,
		rep.WorkersSeen, rep.WorkersLost, time.Duration(rep.RecoveryNS), elapsed.Round(time.Millisecond))

	// A killed or choked in-proc worker exits with an error by design;
	// every other worker must come home clean.
	for name, ch := range workerErrs {
		faulted := (cfg.Kill != nil && cfg.Kill.Worker == name) ||
			(cfg.Choke != nil && cfg.Choke.Worker == name)
		if faulted {
			continue
		}
		select {
		case werr := <-ch:
			if werr != nil {
				return fmt.Errorf("worker %s: %w", name, werr)
			}
		case <-time.After(10 * time.Second):
			return fmt.Errorf("worker %s did not shut down", name)
		}
	}

	if cfg.Verify {
		want, err := staticReference(cfg.Graph, m, cfg.Seed, cfg.Iterations)
		if err != nil {
			return fmt.Errorf("static reference: %w", err)
		}
		if len(want) != len(rep.Digests) {
			return fmt.Errorf("verify: orchestrated run has %d sink digests, static has %d", len(rep.Digests), len(want))
		}
		for name, d := range want {
			if rep.Digests[name] != d {
				return fmt.Errorf("verify: sink %s digest %016x != static %016x", name, rep.Digests[name], d)
			}
		}
		fmt.Fprintf(w, "verify: %d sink digest(s) bit-identical to the static run\n", len(want))
	}
	return nil
}

// silencer wraps a transport so every connection this side makes or
// accepts can be silenced at once: writes keep "succeeding" but the peer
// hears nothing, the failure mode only heartbeat liveness catches.
type silencer struct {
	transport.Transport
	mu     sync.Mutex
	silent bool
}

func (s *silencer) Silence() {
	s.mu.Lock()
	s.silent = true
	s.mu.Unlock()
}

type silentConn struct {
	transport.Conn
	s *silencer
}

func (c *silentConn) Write(p []byte) (int, error) {
	c.s.mu.Lock()
	silent := c.s.silent
	c.s.mu.Unlock()
	if silent {
		return len(p), nil
	}
	return c.Conn.Write(p)
}

func (s *silencer) Dial(addr string) (transport.Conn, error) {
	c, err := s.Transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &silentConn{Conn: c, s: s}, nil
}

func (s *silencer) Listen(addr string) (transport.Listener, error) {
	ln, err := s.Transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &silentListener{Listener: ln, s: s}, nil
}

type silentListener struct {
	transport.Listener
	s *silencer
}

func (l *silentListener) Accept() (transport.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &silentConn{Conn: c, s: l.s}, nil
}
