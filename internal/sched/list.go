package sched

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
)

// Levels computes, per actor, the longest path (in cycles of block
// execution time, q[a]*ExecCycles) from the actor to any sink through the
// zero-delay precedence structure. This is the classic "level" priority of
// highest-level-first (HLF) list scheduling: actors on the critical path
// get scheduled first.
func Levels(g *dataflow.Graph, q dataflow.Repetitions) ([]int64, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	blockCost := func(a dataflow.ActorID) int64 {
		c := g.Actor(a).ExecCycles
		if c <= 0 {
			c = 1
		}
		return q[a] * c
	}
	blocking := func(e *dataflow.Edge) bool {
		need := e.Consume.Rate
		if e.Consume.Kind == dataflow.DynamicPort {
			need = 1
		}
		return e.Delay < need
	}
	levels := make([]int64, g.NumActors())
	// Process in reverse topological order: level(a) = cost(a) + max level
	// of zero-delay successors.
	for i := len(order) - 1; i >= 0; i-- {
		a := order[i]
		var best int64
		for _, eid := range g.Out(a) {
			e := g.Edge(eid)
			if !blocking(e) {
				continue
			}
			if levels[e.Snk] > best {
				best = levels[e.Snk]
			}
		}
		levels[a] = blockCost(a) + best
	}
	return levels, nil
}

// ListSchedule builds a Mapping for nprocs processors using HLF list
// scheduling at block granularity: actors are considered in order of
// decreasing level (ties broken by actor ID for determinism) subject to
// zero-delay precedence, and each is placed on the processor that can start
// it earliest, accounting for a fixed per-edge communication penalty when a
// predecessor lives on a different processor.
//
// commCycles is the compile-time estimate of one interprocessor transfer's
// latency, used only to steer placement (the detailed cost comes from the
// platform simulator later). Pass 0 to ignore communication during
// placement.
func ListSchedule(g *dataflow.Graph, nprocs int, commCycles int64) (*Mapping, error) {
	if nprocs <= 0 {
		return nil, fmt.Errorf("sched: nprocs = %d", nprocs)
	}
	q, err := g.RepetitionsVector()
	if err != nil {
		return nil, err
	}
	levels, err := Levels(g, q)
	if err != nil {
		return nil, err
	}
	blockCost := func(a dataflow.ActorID) int64 {
		c := g.Actor(a).ExecCycles
		if c <= 0 {
			c = 1
		}
		return q[a] * c
	}
	blocking := func(e *dataflow.Edge) bool {
		need := e.Consume.Rate
		if e.Consume.Kind == dataflow.DynamicPort {
			need = 1
		}
		return e.Delay < need
	}

	n := g.NumActors()
	indeg := make([]int, n)
	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		if blocking(e) {
			indeg[e.Snk]++
		}
	}
	ready := make([]dataflow.ActorID, 0, n)
	for a := 0; a < n; a++ {
		if indeg[a] == 0 {
			ready = append(ready, dataflow.ActorID(a))
		}
	}

	procFree := make([]int64, nprocs) // time each processor becomes free
	finish := make([]int64, n)        // finish time of each scheduled actor block
	m := &Mapping{
		NumProcs: nprocs,
		Proc:     make([]Processor, n),
		Order:    make([][]dataflow.ActorID, nprocs),
	}

	scheduled := 0
	for scheduled < n {
		if len(ready) == 0 {
			return nil, fmt.Errorf("sched: precedence structure is cyclic")
		}
		// Pick the ready actor with the highest level.
		sort.Slice(ready, func(i, j int) bool {
			if levels[ready[i]] != levels[ready[j]] {
				return levels[ready[i]] > levels[ready[j]]
			}
			return ready[i] < ready[j]
		})
		a := ready[0]
		ready = ready[1:]

		// Earliest start on each processor = max(proc free, data ready).
		bestProc := Processor(0)
		var bestStart int64 = -1
		for p := 0; p < nprocs; p++ {
			start := procFree[p]
			for _, eid := range g.In(a) {
				e := g.Edge(eid)
				if !blocking(e) {
					continue
				}
				avail := finish[e.Src]
				if m.Proc[e.Src] != Processor(p) {
					avail += commCycles
				}
				if avail > start {
					start = avail
				}
			}
			if bestStart == -1 || start < bestStart {
				bestStart = start
				bestProc = Processor(p)
			}
		}
		m.Proc[a] = bestProc
		m.Order[bestProc] = append(m.Order[bestProc], a)
		finish[a] = bestStart + blockCost(a)
		procFree[bestProc] = finish[a]
		scheduled++

		for _, eid := range g.Out(a) {
			e := g.Edge(eid)
			if !blocking(e) {
				continue
			}
			indeg[e.Snk]--
			if indeg[e.Snk] == 0 {
				ready = append(ready, e.Snk)
			}
		}
	}
	return m, nil
}

// Makespan returns the static makespan estimate of one iteration of the
// mapping: the same earliest-start recurrence ListSchedule uses, evaluated
// on the final placement.
func Makespan(g *dataflow.Graph, m *Mapping, commCycles int64) (int64, error) {
	if err := m.Validate(g); err != nil {
		return 0, err
	}
	res, err := SelfTimed(g, m, SelfTimedConfig{
		Iterations: 1,
		CommCycles: func(dataflow.EdgeID) int64 { return commCycles },
	})
	if err != nil {
		return 0, err
	}
	return res.Finish, nil
}
