package experiments

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/lpc"
	"repro/internal/mpi"
	"repro/internal/particle"
	"repro/internal/platform"
	"repro/internal/spi"
	"repro/internal/vts"
)

// SPIvsMPIPayloads are the message sizes swept by the framework-overhead
// ablation.
var SPIvsMPIPayloads = []int{4, 64, 512, 4096, 65536}

// SPIvsMPI quantifies the paper's motivating claim: SPI's specialized
// headers and protocols cost less per message than generic MPI-style
// communication. A producer/consumer pair moves messages of each size under
// three configurations — SPI_static (2-byte header), SPI_dynamic (6-byte
// header), and the MPI baseline (24-byte header, rendezvous handshake above
// the eager limit) — and the per-message latency and wire overhead are
// reported.
func SPIvsMPI() (*Table, error) {
	t := &Table{
		Title:  "Ablation A1 — per-message cost: SPI_static vs SPI_dynamic vs MPI baseline",
		Header: []string{"payload_B", "spi_static_us", "spi_dynamic_us", "mpi_us", "spi_ovh_B", "mpi_ovh_B"},
		Notes: []string{
			"SPI omits datatype and (for static edges) size from headers; MPI adds rendezvous above 512 B",
		},
	}
	const iters = 200
	perMessage := func(build func(sim *platform.Sim) error) (float64, error) {
		cfg := platform.DefaultConfig(2)
		sim, err := platform.NewSim(cfg)
		if err != nil {
			return 0, err
		}
		if err := build(sim); err != nil {
			return 0, err
		}
		st, err := sim.Run(iters)
		if err != nil {
			return 0, err
		}
		warm := iters / 5
		span := st.IterationFinish[iters-1] - st.IterationFinish[warm]
		return st.Microseconds(cfg, span) / float64(iters-1-warm), nil
	}
	for _, size := range SPIvsMPIPayloads {
		size := size
		spiStatic, err := perMessage(func(sim *platform.Sim) error {
			return pointToPoint(sim, spi.StaticHeaderBytes, size)
		})
		if err != nil {
			return nil, err
		}
		spiDynamic, err := perMessage(func(sim *platform.Sim) error {
			return pointToPoint(sim, spi.DynamicHeaderBytes, size)
		})
		if err != nil {
			return nil, err
		}
		mpiTime, err := perMessage(func(sim *platform.Sim) error {
			l, err := mpi.NewLink(sim, 0, 1, "mpi")
			if err != nil {
				return err
			}
			if err := sim.SetProgram(0, platform.Program(l.SendOps(size))); err != nil {
				return err
			}
			return sim.SetProgram(1, platform.Program(l.RecvOps(size)))
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.3f", spiStatic),
			fmt.Sprintf("%.3f", spiDynamic),
			fmt.Sprintf("%.3f", mpiTime),
			fmt.Sprintf("%d", spi.StaticHeaderBytes),
			fmt.Sprintf("%d", mpi.WireOverhead(size)),
		)
	}
	return t, nil
}

func pointToPoint(sim *platform.Sim, header, payload int) error {
	ch, err := sim.AddChannel(platform.ChannelSpec{
		From: 0, To: 1, Name: "p2p", HeaderBytes: header, Capacity: 4,
	})
	if err != nil {
		return err
	}
	if err := sim.SetProgram(0, platform.Program{platform.Send(ch, payload)}); err != nil {
		return err
	}
	return sim.SetProgram(1, platform.Program{platform.Recv(ch)})
}

// BBSvsUBS compares the buffer-synchronization protocols on the same edge:
// BBS throttles the sender with back-pressure and needs no acknowledgement
// traffic; UBS lets the sender run ahead at the price of per-message acks
// and unbounded buffer growth when the consumer is slower.
func BBSvsUBS() (*Table, error) {
	t := &Table{
		Title:  "Ablation A3 — SPI_BBS vs SPI_UBS on a producer-consumer edge",
		Header: []string{"protocol", "finish_us", "ack_msgs", "ack_bytes", "max_queued"},
		Notes: []string{
			"UBS trades acknowledgement traffic and buffer growth for a never-blocking sender",
		},
	}
	const iters = 200
	run := func(ubs bool) ([]string, error) {
		cfg := platform.DefaultConfig(2)
		sim, err := platform.NewSim(cfg)
		if err != nil {
			return nil, err
		}
		spec := platform.ChannelSpec{From: 0, To: 1, Name: "e", HeaderBytes: spi.DynamicHeaderBytes}
		if ubs {
			spec.AckBytes = 4
		} else {
			spec.Capacity = 4
		}
		ch, err := sim.AddChannel(spec)
		if err != nil {
			return nil, err
		}
		// Producer slightly faster than consumer: pressure builds.
		sim.SetProgram(0, platform.Program{platform.Compute(80), platform.Send(ch, 64)})
		sim.SetProgram(1, platform.Program{platform.Recv(ch), platform.Compute(100)})
		st, err := sim.Run(iters)
		if err != nil {
			return nil, err
		}
		name := "SPI_BBS"
		if ubs {
			name = "SPI_UBS"
		}
		return []string{
			name,
			fmt.Sprintf("%.2f", st.Microseconds(cfg, st.Finish)),
			fmt.Sprintf("%d", st.Messages[platform.AckMsg]),
			fmt.Sprintf("%d", st.Bytes[platform.AckMsg]),
			fmt.Sprintf("%d", st.MaxQueued[ch]),
		}, nil
	}
	for _, ubs := range []bool{false, true} {
		row, err := run(ubs)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	return t, nil
}

// VTSPadding compares VTS variable-size transfers against the worst-case
// static padding a pure-SDF implementation would need: the particle
// filter's migration edge carries its actual (varying) volume under VTS,
// versus always sending the declared bound.
func VTSPadding() (*Table, error) {
	t := &Table{
		Title:  "Ablation A4 — VTS packed transfers vs worst-case static padding (2-PE particle filter)",
		Header: []string{"config", "finish_us", "data_bytes", "savings_%"},
		Notes: []string{
			"VTS moves only the run-time payload; static SDF must provision and move the bound",
		},
	}
	const iters = 50
	p := particle.DefaultDeploy(300, 2)
	run := func(padded bool) (float64, int64, error) {
		var sizeFn func(int) int
		if padded {
			bound := p.Particles * p.ParticleBytes
			sizeFn = func(int) int { return bound }
		}
		sys, err := particle.FilterSystem(p, sizeFn)
		if err != nil {
			return 0, 0, err
		}
		dep, err := spi.Build(sys)
		if err != nil {
			return 0, 0, err
		}
		st, err := dep.Sim.Run(iters)
		if err != nil {
			return 0, 0, err
		}
		cfg := dep.Sim.Config()
		return st.Microseconds(cfg, st.Finish), st.Bytes[platform.DataMsg], nil
	}
	vtsUs, vtsBytes, err := run(false)
	if err != nil {
		return nil, err
	}
	padUs, padBytes, err := run(true)
	if err != nil {
		return nil, err
	}
	savings := 100 * (1 - float64(vtsBytes)/float64(padBytes))
	t.AddRow("vts_actual", fmt.Sprintf("%.2f", vtsUs), fmt.Sprintf("%d", vtsBytes), fmt.Sprintf("%.1f", savings))
	t.AddRow("static_padded", fmt.Sprintf("%.2f", padUs), fmt.Sprintf("%d", padBytes), "0.0")
	return t, nil
}

// Fig1VTS demonstrates the paper's figure-1 VTS conversion: the dynamic
// A→B edge (production bound 10, consumption bound 8) becomes a static
// rate-1 edge with packed tokens of bounded size, and the eq.1/eq.2 bounds
// follow once a feedback path bounds the producer.
func Fig1VTS() (*Table, error) {
	g := dataflow.New("fig1")
	a := g.AddActor("A", 10)
	b := g.AddActor("B", 10)
	g.AddEdge("ab", a, b, 10, 8, dataflow.EdgeSpec{
		ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 2,
	})
	g.AddEdge("ba", b, a, 1, 1, dataflow.EdgeSpec{Delay: 2, TokenBytes: 1})
	conv, err := vts.Convert(g)
	if err != nil {
		return nil, err
	}
	bounds, err := vts.ComputeBounds(conv)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 1 — VTS conversion of the dynamic-rate example",
		Header: []string{"edge", "orig_rates", "vts_rates", "b_max_B", "c_sdf", "c(e)_B", "gamma", "B(e)_B", "protocol"},
		Notes: []string{
			"dynamic production (bound 10) and consumption (bound 8) become rate-1 packed tokens of b_max = 10x2 = 20 bytes",
		},
	}
	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		ce := conv.Graph.Edge(eid)
		info := conv.Info(eid)
		bd := bounds[eid]
		proto := "SPI_BBS"
		if !bd.Bounded {
			proto = "SPI_UBS"
		}
		t.AddRow(
			e.Name,
			fmt.Sprintf("%d/%d", e.Produce.Rate, e.Consume.Rate),
			fmt.Sprintf("%d/%d", ce.Produce.Rate, ce.Consume.Rate),
			fmt.Sprintf("%d", info.BMax),
			fmt.Sprintf("%d", bd.CSDF),
			fmt.Sprintf("%d", bd.CE),
			fmt.Sprintf("%d", bd.Gamma),
			fmt.Sprintf("%d", bd.IPC),
			proto,
		)
	}
	return t, nil
}

// Framing compares the two ways a variable-size packed token can tell the
// receiver its length (paper §3): a size field in the header (one receiver
// operation, fixed 4-byte overhead) versus a scanned delimiter (per-byte
// receiver work and data-dependent escape expansion). On an FPGA the
// delimiter costs per-byte logic in the receive datapath — "using a
// delimiter can be expensive ... sending the size using a field in the
// header of the message is much more efficient".
func Framing() (*Table, error) {
	t := &Table{
		Title:  "Ablation A5 — VTS token framing: size header vs delimiter",
		Header: []string{"payload_B", "hdr_wire_B", "delim_wire_B", "delim_worst_B", "hdr_rx_ops", "delim_rx_ops"},
		Notes: []string{
			"delimiter framing scans every byte on the receiver and can expand adversarial payloads 2x",
		},
	}
	for _, size := range []int{16, 256, 4096} {
		// Typical payload: incrementing bytes (some escapes).
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i)
		}
		// Adversarial payload: every byte needs escaping.
		worst := make([]byte, size)
		for i := range worst {
			worst[i] = 0x7E
		}
		hp := vts.NewPacker(int64(size), vts.HeaderFraming)
		hu := vts.NewUnpacker(int64(size), vts.HeaderFraming)
		dp := vts.NewPacker(int64(size), vts.DelimiterFraming)
		du := vts.NewUnpacker(int64(size), vts.DelimiterFraming)

		hmsg, err := hp.Pack(payload)
		if err != nil {
			return nil, err
		}
		hWire := len(hmsg)
		if _, err := hu.Unpack(hmsg); err != nil {
			return nil, err
		}
		dmsg, err := dp.Pack(payload)
		if err != nil {
			return nil, err
		}
		dWire := len(dmsg)
		if _, err := du.Unpack(append([]byte(nil), dmsg...)); err != nil {
			return nil, err
		}
		dworst, err := dp.Pack(worst)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%d", hWire),
			fmt.Sprintf("%d", dWire),
			fmt.Sprintf("%d", len(dworst)),
			fmt.Sprintf("%d", hu.ReceiverOps),
			fmt.Sprintf("%d", du.ReceiverOps),
		)
	}
	return t, nil
}

// All runs every experiment and returns the tables in presentation order.
func All() ([]*Table, error) {
	builders := []func() (*Table, error){
		Fig1VTS, Fig3, Fig5, Fig6, Fig7, Table1, Table2, SPIvsMPI, ResyncPlatform, BBSvsUBS, VTSPadding, Framing,
	}
	out := make([]*Table, 0, len(builders))
	for _, b := range builders {
		t, err := b()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ResyncPlatform quantifies ablation A2 end to end on the platform: the
// 3-PE actor-D deployment before resynchronization (UBS acknowledgements on
// every dynamic edge) versus after (acknowledgements suppressed, their
// constraints proven redundant by the synchronization-graph analysis).
func ResyncPlatform() (*Table, error) {
	t := &Table{
		Title:  "Ablation A2 — resynchronization on the platform (3-PE actor D)",
		Header: []string{"config", "ack_msgs", "ack_bytes", "total_msgs", "us_per_frame"},
		Notes: []string{
			"resynchronization proves the UBS acknowledgements redundant; suppressing them removes traffic at unchanged latency",
		},
	}
	const iters = 50
	run := func(resynced bool) ([]string, error) {
		sys, err := lpc.ErrorGenSystem(lpc.DefaultDeploy(256, 3))
		if err != nil {
			return nil, err
		}
		sys.SuppressAcks = resynced
		dep, err := spi.Build(sys)
		if err != nil {
			return nil, err
		}
		st, err := dep.Sim.Run(iters)
		if err != nil {
			return nil, err
		}
		cfg := dep.Sim.Config()
		name := "before_resync"
		if resynced {
			name = "after_resync"
		}
		return []string{
			name,
			fmt.Sprintf("%d", st.Messages[platform.AckMsg]),
			fmt.Sprintf("%d", st.Bytes[platform.AckMsg]),
			fmt.Sprintf("%d", st.TotalMessages()),
			fmt.Sprintf("%.2f", st.Microseconds(cfg, st.Finish)/iters),
		}, nil
	}
	for _, resynced := range []bool{false, true} {
		row, err := run(resynced)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	return t, nil
}
