package dataflow

import (
	"fmt"
	"strings"
)

// Vectorization (blocked execution) analysis. Firing a consistent SDF
// graph's iteration B times back to back — q[a]*B firings per actor, B
// iterations' tokens per transfer — amortizes per-message header, credit,
// and scheduling costs at the price of B-times-larger buffers (the eq. 2
// bound scales linearly with the block). Blocking is legal only when every
// dependency cycle is decoupled by enough initial delay: inside one block
// an actor consumes all B iterations' inputs before any of its outputs
// become visible, so a cycle whose delay does not cover a whole block
// deadlocks. The analyses here compute, for a given graph, which blocking
// factors are feasible and how much buffer memory each one costs, so a
// caller can pick the largest block under a memory bound.

// DelayIterations converts an edge's initial-token delay into whole graph
// iterations: how many iterations the consumer can run ahead of the
// producer on this edge. Zero when the edge moves no tokens.
func (g *Graph) DelayIterations(q Repetitions, e EdgeID) int {
	if t := g.IterationTokens(q, e); t > 0 {
		return g.Edge(e).Delay / int(t)
	}
	return 0
}

// BlockDecouples reports whether edge e decouples consecutive blocks of
// `block` iterations: its delay covers at least one whole block and a whole
// number of them, so the consumer's block k reads only producer blocks
// strictly before k. Cycles survive blocked execution only through
// decoupling edges.
func (g *Graph) BlockDecouples(q Repetitions, e EdgeID, block int) bool {
	if block <= 1 {
		return true
	}
	d := g.DelayIterations(q, e)
	return d >= block && d%block == 0
}

// CheckBlock verifies that blocked execution with the given blocking factor
// is deadlock-free: after removing every decoupling edge (BlockDecouples),
// the remaining dependency graph must be acyclic. A block of 0 or 1 is
// scalar execution and always legal.
func (g *Graph) CheckBlock(block int) error {
	if block <= 1 {
		return nil
	}
	q, err := g.RepetitionsVector()
	if err != nil {
		return err
	}
	n := g.NumActors()
	indeg := make([]int, n)
	succ := make([][]ActorID, n)
	for _, eid := range g.Edges() {
		if g.BlockDecouples(q, eid, block) {
			continue
		}
		e := g.Edge(eid)
		succ[e.Src] = append(succ[e.Src], e.Snk)
		indeg[e.Snk]++
	}
	queue := make([]ActorID, 0, n)
	for a := 0; a < n; a++ {
		if indeg[a] == 0 {
			queue = append(queue, ActorID(a))
		}
	}
	done := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		done++
		for _, w := range succ[v] {
			if indeg[w]--; indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if done == n {
		return nil
	}
	var stuck []string
	for a := 0; a < n; a++ {
		if indeg[a] > 0 {
			stuck = append(stuck, g.actors[a].Name)
		}
	}
	return fmt.Errorf("dataflow: block %d deadlocks: cycle through {%s} lacks a delay covering a whole block (need delay >= %d iterations, in whole multiples)",
		block, strings.Join(stuck, ", "), block)
}

// BlockMemoryBytes models the buffer memory of a blocked execution: every
// edge holds up to one block of tokens in flight (B iterations' worth) on
// top of its initial delay, so the eq. 2 IPC bound scales by the block.
// Token sizes of zero count as one byte, matching the other size analyses.
func (g *Graph) BlockMemoryBytes(q Repetitions, block int) int64 {
	if block < 1 {
		block = 1
	}
	var total int64
	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		tb := int64(e.TokenBytes)
		if tb <= 0 {
			tb = 1
		}
		total += (int64(block)*g.IterationTokens(q, eid) + int64(e.Delay)) * tb
	}
	return total
}

// VectorizePlan is the result of blocking-factor selection.
type VectorizePlan struct {
	// Block is the chosen graph blocking factor B; 1 means scalar
	// execution (no feasible or affordable block above 1).
	Block int
	// Factors is the per-actor firing count of one blocked iteration:
	// Block * q[a].
	Factors Repetitions
	// Q is the repetitions vector the factors were derived from.
	Q Repetitions
	// MemoryBytes is the modeled buffer memory of the chosen block
	// (BlockMemoryBytes).
	MemoryBytes int64
	// BlockedEdges lists the edges whose delay aligns with the block
	// (delay a whole multiple of Block iterations, including zero) and so
	// carry packed B-iteration slabs; the rest stay token-granular.
	BlockedEdges []EdgeID
}

// Vectorize picks the largest blocking factor B in [1, maxBlock] that is
// deadlock-free (CheckBlock) and whose modeled buffer memory stays within
// memBound bytes (<= 0 means unbounded). maxBlock <= 0 defaults to 64. The
// returned plan has Block == 1 when no larger block qualifies.
func Vectorize(g *Graph, memBound int64, maxBlock int) (*VectorizePlan, error) {
	q, err := g.RepetitionsVector()
	if err != nil {
		return nil, err
	}
	if maxBlock <= 0 {
		maxBlock = 64
	}
	best := 1
	for b := maxBlock; b > 1; b-- {
		if memBound > 0 && g.BlockMemoryBytes(q, b) > memBound {
			continue
		}
		if g.CheckBlock(b) == nil {
			best = b
			break
		}
	}
	plan := &VectorizePlan{
		Block:       best,
		Q:           q,
		Factors:     make(Repetitions, len(q)),
		MemoryBytes: g.BlockMemoryBytes(q, best),
	}
	for a, r := range q {
		plan.Factors[a] = int64(best) * r
	}
	for _, eid := range g.Edges() {
		if best > 1 && g.DelayIterations(q, eid)%best == 0 {
			plan.BlockedEdges = append(plan.BlockedEdges, eid)
		}
	}
	return plan, nil
}
