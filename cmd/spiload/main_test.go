package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/transport"
)

func builtinConfig(t *testing.T) loadConfig {
	t.Helper()
	g, err := dataflow.Parse(strings.NewReader(builtinGraph))
	if err != nil {
		t.Fatal(err)
	}
	return loadConfig{
		Graph:       g,
		Assign:      []int{0, 1, 1},
		NodeOf:      []int{0, 1},
		Node:        1,
		Sessions:    20,
		Concurrency: 4,
		Iters:       8,
		Tenants:     2,
		Seed:        7,
		OpenTimeout: 20 * time.Second,
	}
}

// TestLoadInproc is the spiload end-to-end: a closed-loop run against
// the in-process server must admit and complete every session with
// digests matching the local reference.
func TestLoadInproc(t *testing.T) {
	cfg := builtinConfig(t)
	tr := transport.NewLoopback()
	var out bytes.Buffer
	stop, addr, err := startInproc(cfg, tr, "spiload-test", 0, 0, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cfg.Connect = addr

	rep, err := runLoad(cfg, tr, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if rep.Started != cfg.Sessions || rep.Admitted != cfg.Sessions || rep.Completed != cfg.Sessions {
		t.Fatalf("report %+v, want %d sessions all completed", rep, cfg.Sessions)
	}
	if rep.Mismatched != 0 {
		t.Fatalf("%d digest mismatches", rep.Mismatched)
	}
	if rep.Tokens == 0 {
		t.Fatal("no tokens counted")
	}
	if err := summarize(&out, "load", rep); err != nil {
		t.Fatal(err)
	}
}

// TestLoadAdmissionRejections: a tenant quota of 1 with concurrent
// workers on one tenant forces rejections that the report must count,
// while every admitted session still completes bit-identically.
func TestLoadAdmissionRejections(t *testing.T) {
	cfg := builtinConfig(t)
	cfg.Tenants = 1
	cfg.Concurrency = 6
	tr := transport.NewLoopback()
	var out bytes.Buffer
	stop, addr, err := startInproc(cfg, tr, "spiload-test", 0, 1, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cfg.Connect = addr

	rep, err := runLoad(cfg, tr, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted+rep.Rejected != cfg.Sessions {
		t.Fatalf("admitted %d + rejected %d != %d started", rep.Admitted, rep.Rejected, cfg.Sessions)
	}
	if rep.Admitted == 0 || rep.Rejected == 0 {
		t.Fatalf("want both admissions and rejections under quota 1 with 6 workers, got %+v", rep)
	}
	if rep.Completed != rep.Admitted || rep.Mismatched != 0 {
		t.Fatalf("admitted sessions must complete clean: %+v", rep)
	}
}

// TestBenchLineFormat: the emitted line must parse the way benchdiff
// parses `go test -bench` output — name, N, then metric/unit pairs.
func TestBenchLineFormat(t *testing.T) {
	rep := &loadReport{
		Started: 30, Admitted: 28, Completed: 28,
		Tokens: 4200, Elapsed: 2 * time.Second,
		Latencies: []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond},
	}
	line := benchLine("sessions", rep)
	if !strings.HasPrefix(line, "BenchmarkSpiload/sessions") {
		t.Fatalf("bad prefix: %q", line)
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		t.Fatalf("field count %d must be even and >= 4: %q", len(fields), line)
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		t.Fatalf("iterations field %q: %v", fields[1], err)
	}
	units := map[string]bool{}
	for i := 2; i+1 < len(fields); i += 2 {
		if _, err := strconv.ParseFloat(fields[i], 64); err != nil {
			t.Fatalf("metric value %q: %v", fields[i], err)
		}
		units[fields[i+1]] = true
	}
	for _, want := range []string{"ns/op", "tokens_per_s", "admitted_sessions", "p50_us", "p99_us"} {
		if !units[want] {
			t.Errorf("line missing unit %s: %q", want, line)
		}
	}
}

func TestPercentile(t *testing.T) {
	rep := &loadReport{}
	for i := 1; i <= 100; i++ {
		rep.Latencies = append(rep.Latencies, time.Duration(i)*time.Millisecond)
	}
	if got := rep.percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := rep.percentile(99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	empty := &loadReport{}
	if empty.percentile(99) != 0 || empty.meanLatency() != 0 {
		t.Error("empty report percentiles should be zero")
	}
}
