package spi

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness: decoders must reject, never panic on, corrupted wire data —
// a hardware receive path faces bit errors, and the software runtime
// shares the same decode functions.

func TestDecodeStaticNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(seed int64, n uint8, expect uint8) bool {
		r := rand.New(rand.NewSource(seed))
		msg := make([]byte, int(n))
		r.Read(msg)
		// Any result is fine; panics fail the test via quick's recovery
		// being absent — the call simply must return.
		_, _, _ = DecodeStatic(msg, int(expect))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeDynamicNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(seed int64, n uint8, bound uint16) bool {
		r := rand.New(rand.NewSource(seed))
		msg := make([]byte, int(n))
		r.Read(msg)
		_, _, _ = DecodeDynamic(msg, int(bound))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeMutatedValidMessage(t *testing.T) {
	// Start from a valid dynamic message and flip every single byte in
	// turn: decode must either succeed (mutation hit the payload) or
	// return an error — never panic, never return an oversized payload.
	payload := make([]byte, 32)
	for i := range payload {
		payload[i] = byte(i)
	}
	msg := EncodeMessage(Dynamic, 5, payload)
	for pos := 0; pos < len(msg); pos++ {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			mut := append([]byte(nil), msg...)
			mut[pos] ^= flip
			_, p, err := DecodeDynamic(mut, 32)
			if err == nil && len(p) > 32 {
				t.Fatalf("pos %d flip %x: decoded %d bytes beyond bound", pos, flip, len(p))
			}
		}
	}
}

func TestRuntimeSurvivesHostileSizes(t *testing.T) {
	rt := NewRuntime()
	tx, rx, err := rt.Init(EdgeConfig{ID: 1, Mode: Dynamic, MaxBytes: 16, Protocol: UBS})
	if err != nil {
		t.Fatal(err)
	}
	// Oversize send rejected; nothing queued.
	if err := tx.Send(make([]byte, 17)); err == nil {
		t.Fatal("oversize not rejected")
	}
	if _, ok, _ := rx.TryReceive(); ok {
		t.Fatal("rejected send left a message behind")
	}
	// Normal operation still works afterwards.
	if err := tx.Send(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if p, err := rx.Receive(); err != nil || len(p) != 16 {
		t.Fatalf("recv after rejection: %v %d", err, len(p))
	}
}
