package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"testing"
	"time"
)

// batchLinkPair is linkPair with a LinkConfig tuner applied to both sides,
// so tests can enable the write coalescer and ack piggybacking per side.
func batchLinkPair(t *testing.T, tr Transport, addr string, tuneDial, tuneAccept func(*LinkConfig), hd, ha Handler) (*Link, *Link) {
	t.Helper()
	ln, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type acceptResult struct {
		l   *Link
		err error
	}
	acceptCh := make(chan acceptResult, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			acceptCh <- acceptResult{nil, err}
			return
		}
		cfg := LinkConfig{Node: 1}
		if tuneAccept != nil {
			tuneAccept(&cfg)
		}
		l, err := AcceptLink(c, cfg, func(peer int) ([]EdgeDecl, Handler, error) {
			return testManifest(false), ha, nil
		})
		acceptCh <- acceptResult{l, err}
	}()
	c, err := DialRetry(context.Background(), tr, ln.Addr(), RetryConfig{Attempts: 20, BaseDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cfg := LinkConfig{Node: 0, Edges: testManifest(true)}
	if tuneDial != nil {
		tuneDial(&cfg)
	}
	dialer, err := NewLink(c, cfg, hd)
	if err != nil {
		t.Fatal(err)
	}
	res := <-acceptCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	return dialer, res.l
}

func enableBatching(cfg *LinkConfig) {
	cfg.Batch = BatchConfig{MaxFrames: 8, MaxDelay: 200 * time.Microsecond}
	cfg.PiggybackAcks = true
}

func TestBatchConfigEnabled(t *testing.T) {
	cases := []struct {
		cfg  BatchConfig
		want bool
	}{
		{BatchConfig{}, false},
		{BatchConfig{MaxFrames: 1}, false},
		{BatchConfig{MaxFrames: 1, MaxBytes: 1 << 16, MaxDelay: time.Millisecond}, false},
		{BatchConfig{MaxFrames: 2}, true},
		{BatchConfig{MaxBytes: 4096}, true},
		{BatchConfig{MaxDelay: time.Microsecond}, true},
	}
	for _, c := range cases {
		if got := c.cfg.Enabled(); got != c.want {
			t.Errorf("Enabled(%+v) = %v, want %v", c.cfg, got, c.want)
		}
	}
	d := BatchConfig{MaxFrames: 2}.withDefaults()
	if d.MaxBytes == 0 || d.MaxDelay == 0 {
		t.Fatalf("withDefaults left zero thresholds: %+v", d)
	}
	if z := (BatchConfig{}).withDefaults(); z.Enabled() {
		t.Fatalf("withDefaults enabled a zero config: %+v", z)
	}
}

// TestBatchedRoundTrip drives ordered traffic both directions with the
// coalescer on and checks delivery is exact, in order, and actually
// batched (the flush counter moves).
func TestBatchedRoundTrip(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			hd, ha := newRecordingHandler(), newRecordingHandler()
			dialer, acceptor := batchLinkPair(t, tr, testAddr(name), enableBatching, enableBatching, hd, ha)
			const n = 200
			for i := 0; i < n; i++ {
				fwd := make([]byte, 8)
				fwd[0] = 7
				binary.LittleEndian.PutUint32(fwd[2:], 2)
				binary.LittleEndian.PutUint16(fwd[6:], uint16(i))
				if err := dialer.SendData(7, fwd); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
				back := []byte{9, 0, byte(i), byte(i >> 8)}
				if err := acceptor.SendData(9, back); err != nil {
					t.Fatalf("back send %d: %v", i, err)
				}
			}
			fwd := ha.waitData(t, 7, n)
			back := hd.waitData(t, 9, n)
			for i := 0; i < n; i++ {
				if got := binary.LittleEndian.Uint16(fwd[i][6:]); got != uint16(i) {
					t.Fatalf("forward message %d carries %d", i, got)
				}
				if want := []byte{9, 0, byte(i), byte(i >> 8)}; !bytes.Equal(back[i], want) {
					t.Fatalf("backward message %d = %x, want %x", i, back[i], want)
				}
			}
			if st := dialer.Stats(); st.BatchFlushes == 0 {
				t.Fatal("batching enabled but no flushes counted")
			}
			if st := dialer.Stats(); st.FramesSent >= n+n {
				// n DATA frames in ≥ some batches: frame count is per frame,
				// so just sanity-check the counter did not explode.
				t.Logf("frames sent: %d", st.FramesSent)
			}
			closeBoth(dialer, acceptor)
		})
	}
}

// TestBatchDeadlineFlushesSparseTraffic sets thresholds far above the
// traffic so only the deadline timer can flush: sparse frames must still
// arrive promptly.
func TestBatchDeadlineFlushesSparseTraffic(t *testing.T) {
	tune := func(cfg *LinkConfig) {
		cfg.Batch = BatchConfig{MaxFrames: 1000, MaxBytes: 1 << 20, MaxDelay: time.Millisecond}
	}
	hd, ha := newRecordingHandler(), newRecordingHandler()
	dialer, acceptor := batchLinkPair(t, NewLoopback(), "batch-deadline", tune, tune, hd, ha)
	for i := 0; i < 3; i++ {
		msg := []byte{7, 0, 1, 0, 0, 0, byte(i)}
		if err := dialer.SendData(7, msg); err != nil {
			t.Fatal(err)
		}
	}
	got := ha.waitData(t, 7, 3)
	for i, msg := range got[:3] {
		if msg[6] != byte(i) {
			t.Fatalf("message %d carries %d", i, msg[6])
		}
	}
	closeBoth(dialer, acceptor)
}

// TestBatchFlushDeadlineRacesClose hammers the deadline timer against
// Close: a short MaxDelay keeps the timer firing while the link is torn
// down mid-send. Run under -race this covers the coalescer's locking.
func TestBatchFlushDeadlineRacesClose(t *testing.T) {
	for i := 0; i < 25; i++ {
		tune := func(cfg *LinkConfig) {
			cfg.Batch = BatchConfig{MaxFrames: 4, MaxDelay: 50 * time.Microsecond}
			cfg.PiggybackAcks = true
		}
		hd, ha := newRecordingHandler(), newRecordingHandler()
		dialer, acceptor := batchLinkPair(t, NewLoopback(), fmt.Sprintf("batch-close-%d", i), tune, tune, hd, ha)
		done := make(chan struct{})
		go func() {
			defer close(done)
			msg := []byte{7, 0, 1, 0, 0, 0, 42}
			for {
				if err := dialer.SendData(7, msg); err != nil {
					return
				}
			}
		}()
		ackDone := make(chan struct{})
		go func() {
			defer close(ackDone)
			for {
				if err := acceptor.SendAck(7, 1); err != nil {
					return
				}
			}
		}()
		time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
		closeBoth(dialer, acceptor)
		<-done
		<-ackDone
	}
}

// TestBatchedSendFinOrdering buffers DATA behind generous thresholds and
// a long deadline, then FINs the edge: SendFin must flush the batch
// first, so the peer observes every DATA frame before the FIN.
func TestBatchedSendFinOrdering(t *testing.T) {
	tune := func(cfg *LinkConfig) {
		cfg.Batch = BatchConfig{MaxFrames: 1000, MaxBytes: 1 << 20, MaxDelay: time.Second}
	}
	hd, ha := newRecordingHandler(), newRecordingHandler()
	dialer, acceptor := batchLinkPair(t, NewLoopback(), "batch-fin", tune, tune, hd, ha)
	const n = 5
	for i := 0; i < n; i++ {
		msg := []byte{7, 0, 1, 0, 0, 0, byte(i)}
		if err := dialer.SendData(7, msg); err != nil {
			t.Fatal(err)
		}
	}
	if err := dialer.SendFin(7); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ha.mu.Lock()
		fins, data := ha.fins[7], len(ha.data[7])
		ha.mu.Unlock()
		if fins > 0 {
			// Handler calls arrive in wire order: at FIN time every
			// buffered DATA frame must already have been dispatched.
			if data != n {
				t.Fatalf("FIN arrived after %d of %d data messages", data, n)
			}
			closeBoth(dialer, acceptor)
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timed out waiting for FIN")
}

// TestPiggybackNegotiation checks the HELLO feature handshake: acks ride
// DATA frames only when both sides opt in; a mixed pair falls back to
// standalone ACK frames and still delivers every acknowledgement.
func TestPiggybackNegotiation(t *testing.T) {
	cases := []struct {
		name                 string
		dialerOn, acceptorOn bool
		wantPiggy            bool
	}{
		{"both-on", true, true, true},
		{"dialer-only", true, false, false},
		{"acceptor-only", false, true, false},
		{"both-off", false, false, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tuneD := func(cfg *LinkConfig) { cfg.PiggybackAcks = c.dialerOn }
			tuneA := func(cfg *LinkConfig) { cfg.PiggybackAcks = c.acceptorOn }
			hd, ha := newRecordingHandler(), newRecordingHandler()
			dialer, acceptor := batchLinkPair(t, NewLoopback(), "piggy-"+c.name, tuneD, tuneA, hd, ha)
			const n = 20
			for i := 0; i < n; i++ {
				msg := []byte{7, 0, 1, 0, 0, 0, byte(i)}
				if err := dialer.SendData(7, msg); err != nil {
					t.Fatal(err)
				}
			}
			ha.waitData(t, 7, n)
			// The acceptor acks each message and immediately sends DATA the
			// other way — the frame a piggybacked ack rides on.
			for i := 0; i < n; i++ {
				if err := acceptor.SendAck(7, 1); err != nil {
					t.Fatal(err)
				}
				back := []byte{9, 0, byte(i), 0}
				if err := acceptor.SendData(9, back); err != nil {
					t.Fatal(err)
				}
			}
			hd.waitAcks(t, 7, n)
			hd.waitData(t, 9, n)
			st := acceptor.Stats()
			if c.wantPiggy && st.AcksPiggybacked == 0 {
				t.Fatalf("negotiated piggybacking but all %d acks went standalone", n)
			}
			if !c.wantPiggy && st.AcksPiggybacked != 0 {
				t.Fatalf("piggybacked %d acks without both sides opting in", st.AcksPiggybacked)
			}
			if c.wantPiggy {
				if got := dialer.Stats().AcksPiggybackedRecv; got == 0 {
					t.Fatal("receiver side counted no piggybacked acks")
				}
				if per := acceptor.PiggybackedAcks(); per[7] == 0 {
					t.Fatalf("per-edge piggyback counts missing edge 7: %v", per)
				}
			}
			closeBoth(dialer, acceptor)
		})
	}
}

// TestBatchResumeAfterSever severs the connection while the coalescer
// holds partially flushed batches, with piggybacking on: the RESUME
// replay must still deliver the numbered stream exactly once, in order,
// bit-identical — batched bytes lost with the connection are recovered
// from the per-frame resend buffer.
func TestBatchResumeAfterSever(t *testing.T) {
	ft := NewFaultTransport(NewLoopback(), FaultConfig{Seed: 17, SeverAt: []int{11, 29, 60}, SkipFrames: 4})
	hd, ha := newRecordingHandler(), newRecordingHandler()
	tune := func(cfg *LinkConfig) {
		cfg.Batch = BatchConfig{MaxFrames: 4, MaxDelay: 100 * time.Microsecond}
		cfg.PiggybackAcks = true
	}
	dialer, acceptor, stop := batchChaosPair(t, ft, tune, hd, ha)
	defer stop()
	const n = 200
	for i := 0; i < n; i++ {
		msg := make([]byte, 10)
		msg[0] = 7
		binary.LittleEndian.PutUint32(msg[2:], 4)
		binary.LittleEndian.PutUint32(msg[6:], uint32(i))
		if err := dialer.SendData(7, msg); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if i%5 == 4 {
			if err := acceptor.SendAck(7, 5); err != nil {
				t.Fatalf("ack after %d: %v", i, err)
			}
		}
	}
	got := ha.waitData(t, 7, n)
	if len(got) != n {
		t.Fatalf("received %d messages, want %d", len(got), n)
	}
	for i, msg := range got {
		if payload := binary.LittleEndian.Uint32(msg[6:]); payload != uint32(i) {
			t.Fatalf("message %d carries payload %d (order broken across resume)", i, payload)
		}
	}
	hd.waitAcks(t, 7, n)
	if st := dialer.Stats(); st.Resumes == 0 {
		t.Fatal("severs injected but no resume recorded")
	}
	closeBoth(dialer, acceptor)
}

// batchChaosPair is chaosLinkPair with a LinkConfig tuner on both sides.
func batchChaosPair(t *testing.T, ft *FaultTransport, tune func(*LinkConfig), hd, ha Handler) (*Link, *Link, func()) {
	t.Helper()
	ln, err := ft.Listen("batch-chaos")
	if err != nil {
		t.Fatal(err)
	}
	rc := ReconnectConfig{Attempts: 50, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Deadline: 20 * time.Second}
	accepted := make(chan *Link, 1)
	go func() {
		var acceptor *Link
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			cfg := LinkConfig{Node: 1, Reconnect: rc}
			tune(&cfg)
			l, err := AcceptConn(c, cfg,
				func(peer int) ([]EdgeDecl, Handler, error) { return testManifest(false), ha, nil },
				func(peer int, token uint64) *Link {
					if acceptor != nil && acceptor.PeerNode() == peer && acceptor.Token() == token {
						return acceptor
					}
					return nil
				})
			if err != nil {
				continue
			}
			if l != nil {
				acceptor = l
				accepted <- l
			}
		}
	}()
	c, err := ft.Dial("batch-chaos")
	if err != nil {
		t.Fatal(err)
	}
	cfg := LinkConfig{
		Node: 0, Edges: testManifest(true),
		Reconnect: rc,
		Redial:    func() (Conn, error) { return ft.Dial("batch-chaos") },
	}
	tune(&cfg)
	dialer, err := NewLink(c, cfg, hd)
	if err != nil {
		t.Fatal(err)
	}
	acceptor := <-accepted
	return dialer, acceptor, func() { ln.Close() }
}

// FuzzDecodeBatched fuzzes the DATAACK framing: arbitrary bodies must
// never panic the splitter, and a well-formed piggyback prefix built from
// the fuzz input must round-trip through the frame encoder and reader
// bit-identically.
func FuzzDecodeBatched(f *testing.F) {
	f.Add([]byte{0, 7, 0}, []byte{7, 0, 1, 2})
	f.Add([]byte{1, 7, 0, 3, 0, 0, 0, 9, 0}, []byte{9, 0})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{255}, []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, body, msg []byte) {
		if acks, m, err := splitDataAck(body); err == nil {
			if len(acks)%piggyEntryBytes != 0 {
				t.Fatalf("splitDataAck returned %d ack bytes, not a multiple of %d", len(acks), piggyEntryBytes)
			}
			if len(m) < 2 {
				t.Fatalf("splitDataAck returned %d-byte message, shorter than an SPI header", len(m))
			}
		}
		if len(msg) < 2 {
			return
		}
		// Build a well-formed prefix from the fuzz bytes: u8 n then n
		// six-byte entries drawn (cyclically) from body.
		n := 0
		if len(body) > 0 {
			n = int(body[0]) % 8
		}
		prefix := make([]byte, 1+n*piggyEntryBytes)
		prefix[0] = byte(n)
		for i := 1; i < len(prefix); i++ {
			if len(body) > 0 {
				prefix[i] = body[i%len(body)]
			}
		}
		fr := buildFrame(frameDataAck, 42, prefix, msg)
		defer putWire(fr.buf)
		var reader frameReader
		typ, seq, got, err := reader.read(bytes.NewReader(fr.wire), DefaultMaxFrame)
		if err != nil {
			t.Fatalf("reading back a built frame: %v", err)
		}
		if typ != frameDataAck || seq != 42 {
			t.Fatalf("frame read back as type %d seq %d", typ, seq)
		}
		acks, m, err := splitDataAck(got)
		if err != nil {
			t.Fatalf("splitting a well-formed DATAACK: %v", err)
		}
		if !bytes.Equal(acks, prefix[1:]) {
			t.Fatalf("ack entries %x, want %x", acks, prefix[1:])
		}
		if !bytes.Equal(m, msg) {
			t.Fatalf("message %x, want %x", m, msg)
		}
	})
}
