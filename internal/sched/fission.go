package sched

import (
	"fmt"

	"repro/internal/dataflow"
)

// ExtendFission lifts a mapping of a fission plan's source graph onto
// the rewritten graph: every source actor keeps its processor and order
// slot (the fissioned actor's slot now runs the scatter stage), the
// gather stage joins the scatter's processor immediately after it, and
// each replica gets a fresh processor of its own — the whole point of
// the rewrite is that the replicas compute in parallel. The result is an
// ordinary Mapping: spi.ExecuteDistributed, spi.BuildPartitions, and the
// orchestration layer place and migrate the replicas like any other
// actor.
func ExtendFission(m *Mapping, plan *dataflow.FissionPlan) (*Mapping, error) {
	if err := m.Validate(plan.Source); err != nil {
		return nil, fmt.Errorf("sched: fission source mapping: %w", err)
	}
	g := plan.Graph
	out := &Mapping{
		NumProcs: m.NumProcs + plan.K,
		Proc:     make([]Processor, g.NumActors()),
		Order:    make([][]dataflow.ActorID, m.NumProcs+plan.K),
	}
	for a, p := range m.Proc {
		out.Proc[a] = p
	}
	scatterProc := m.Proc[plan.Actor]
	out.Proc[plan.Gather] = scatterProc
	for i, r := range plan.Replicas {
		out.Proc[r] = Processor(m.NumProcs + i)
		out.Order[m.NumProcs+i] = []dataflow.ActorID{r}
	}
	for p := range m.Order {
		for _, a := range m.Order[p] {
			out.Order[p] = append(out.Order[p], a)
			if a == plan.Actor {
				// The gather follows the scatter within the iteration:
				// self-timed execution blocks it until the replicas
				// deliver, exactly like the paper's io_recv task.
				out.Order[p] = append(out.Order[p], plan.Gather)
			}
		}
	}
	if err := out.Validate(g); err != nil {
		return nil, fmt.Errorf("sched: fission-extended mapping: %w", err)
	}
	return out, nil
}
