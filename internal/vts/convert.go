// Package vts implements the Variable Token Size (VTS) model from the SPI
// paper: a mechanism that converts dynamic-rate dataflow edges into
// static-rate edges carrying variable-size *packed* tokens.
//
// In dynamic dataflow, an actor's production/consumption rates may change at
// run time depending on its data. General dynamic dataflow defeats static
// analysis. VTS instead keeps the *number* of tokens static (one packed
// token per firing) and lets the token *size* vary, bounded above by a
// declared maximum. The converted graph is pure SDF, so repetitions vectors,
// PASS scheduling and buffer bounds all apply, while the run-time payload
// still varies — the paper's eq. 1 and eq. 2 then bound total buffer memory.
package vts

import (
	"fmt"

	"repro/internal/dataflow"
)

// EdgeInfo records the VTS attributes of one edge of a converted graph.
type EdgeInfo struct {
	// Original is the edge ID in the source graph; the converted graph
	// preserves edge IDs, so this equals the converted edge's own ID.
	Original dataflow.EdgeID
	// Dynamic reports whether the original edge had a dynamic port and was
	// therefore rewritten.
	Dynamic bool
	// MaxRawTokens is the upper bound on raw (unpacked) tokens carried by
	// one packed token: the larger of the two declared port bounds. For
	// static edges it is the (equal) number of raw tokens per transfer
	// aggregated into one packed token, i.e. the production rate.
	MaxRawTokens int
	// RawTokenBytes is the size of one raw token in bytes.
	RawTokenBytes int
	// BMax is b_max(e): the maximum number of bytes in a packed token,
	// MaxRawTokens * RawTokenBytes.
	BMax int64
}

// Result is the outcome of a VTS conversion.
type Result struct {
	// Graph is the converted pure-SDF graph. Actor IDs match the original
	// graph; edge IDs match the original graph's edge IDs.
	Graph *dataflow.Graph
	// Edges holds per-edge VTS attributes, indexed by edge ID.
	Edges []EdgeInfo
}

// Info returns the VTS attributes of the given edge.
func (r *Result) Info(e dataflow.EdgeID) EdgeInfo { return r.Edges[e] }

// Convert performs the VTS conversion of g: every edge with a dynamic port
// becomes a static rate-1/rate-1 edge whose token size is the packed-token
// bound b_max(e) = maxRate * rawTokenBytes. Static edges pass through
// unchanged. The input graph is not modified.
//
// Convert returns an error if the resulting graph is not sample-rate
// consistent — the paper's condition "if by application of the above
// principle to all possible edges, a consistent graph is obtained, then
// bounded memory for all the edge buffers can be guaranteed".
func Convert(g *dataflow.Graph) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	out := dataflow.New(g.Name() + "+vts")
	for _, a := range g.Actors() {
		src := g.Actor(a)
		out.AddActor(src.Name, src.ExecCycles)
	}
	infos := make([]EdgeInfo, 0, g.NumEdges())
	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		info := EdgeInfo{
			Original:      eid,
			Dynamic:       e.Dynamic(),
			RawTokenBytes: e.TokenBytes,
		}
		if e.Dynamic() {
			// The producer packs up to its bound per firing; the consumer
			// must accept a whole packed token, so the packed size bound is
			// the larger of the two declared rate bounds.
			maxRate := e.Produce.Rate
			if e.Consume.Rate > maxRate {
				maxRate = e.Consume.Rate
			}
			if maxRate <= 0 {
				return nil, fmt.Errorf("vts: dynamic edge %q has no positive rate bound", e.Name)
			}
			info.MaxRawTokens = maxRate
			info.BMax = int64(maxRate) * int64(e.TokenBytes)
			out.AddEdge(e.Name, e.Src, e.Snk, 1, 1, dataflow.EdgeSpec{
				Delay:      e.Delay,
				TokenBytes: int(info.BMax),
			})
		} else {
			info.MaxRawTokens = e.Produce.Rate
			info.BMax = int64(e.Produce.Rate) * int64(e.TokenBytes)
			out.AddEdge(e.Name, e.Src, e.Snk, e.Produce.Rate, e.Consume.Rate, dataflow.EdgeSpec{
				Delay:      e.Delay,
				TokenBytes: e.TokenBytes,
			})
		}
		infos = append(infos, info)
	}
	if _, err := out.RepetitionsVector(); err != nil {
		return nil, fmt.Errorf("vts: converted graph is not consistent: %w", err)
	}
	return &Result{Graph: out, Edges: infos}, nil
}
