package sched

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/dataflow"
)

func TestBlockedSASLeafCounts(t *testing.T) {
	g := cdChain()
	q, _ := g.RepetitionsVector() // [4 2 3]
	sas, err := SingleAppearanceSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	blocked := BlockedSAS(sas, 4)
	if blocked.Appearances() != 3 {
		t.Errorf("blocking must not duplicate actors: appearances = %d", blocked.Appearances())
	}
	var total int64
	for _, r := range q {
		total += r
	}
	if got := int64(len(blocked.Flatten())); got != 4*total {
		t.Errorf("blocked flatten fires %d times, want 4 * %d", got, total)
	}
	firings := notationFirings(t, blocked.Notation(g))
	for a, r := range q {
		name := g.Actor(dataflow.ActorID(a)).Name
		if firings[name] != 4*r {
			t.Errorf("%s fires %d times in %q, want %d", name, firings[name], blocked.Notation(g), 4*r)
		}
	}
}

func TestBlockedSASIdentityAtOne(t *testing.T) {
	g := cdChain()
	sas, _ := SingleAppearanceSchedule(g)
	if BlockedSAS(sas, 1) != sas || BlockedSAS(sas, 0) != sas {
		t.Error("block <= 1 should return the tree unchanged")
	}
	if BlockedSAS(nil, 4) != nil {
		t.Error("nil tree should stay nil")
	}
}

func TestBlockedSASMemoryGrows(t *testing.T) {
	g := cdChain()
	sas, _ := SingleAppearanceSchedule(g)
	m1, err := BlockedSASMemory(g, sas, 1)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := BlockedSASMemory(g, sas, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m4 <= m1 {
		t.Errorf("memory should grow with the block: m1=%d m4=%d", m1, m4)
	}
}

func TestPickBlockUnboundedDAG(t *testing.T) {
	g := cdChain()
	b, blocked, err := PickBlock(g, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b != 8 {
		t.Fatalf("an acyclic graph with no memory bound should take the max block: got %d", b)
	}
	ok, err := g.ScheduleReturnsToInitialState(blocked.Flatten())
	if err != nil || !ok {
		t.Errorf("blocked SAS is not a valid schedule: ok=%v err=%v", ok, err)
	}
}

func TestPickBlockMemoryBound(t *testing.T) {
	g := cdChain()
	sas, _ := SingleAppearanceSchedule(g)
	const maxBlock = 8
	bound, err := BlockedSASMemory(g, sas, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Expected answer: the largest block whose memory fits the bound.
	want := 1
	for b := maxBlock; b > 1; b-- {
		if m, err := BlockedSASMemory(g, sas, int64(b)); err == nil && m <= bound {
			want = b
			break
		}
	}
	b, blocked, err := PickBlock(g, bound, maxBlock)
	if err != nil {
		t.Fatal(err)
	}
	if b != want {
		t.Errorf("PickBlock under %d bytes = %d, want %d", bound, b, want)
	}
	if m, err := BlockedSASMemory(g, sas, int64(b)); err != nil || m > bound {
		t.Errorf("chosen block %d costs %d bytes (err %v), bound %d", b, m, err, bound)
	}
	if blocked == nil {
		t.Fatal("no schedule returned")
	}
}

func TestPickBlockFeedbackDivisors(t *testing.T) {
	// Cycle with 8 iterations of feedback delay: feasible blocks are 2, 4,
	// and 8 only.
	g := dataflow.New("cyc")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 2, 1, dataflow.EdgeSpec{TokenBytes: 2})
	g.AddEdge("ba", b, a, 1, 2, dataflow.EdgeSpec{TokenBytes: 1, Delay: 16})
	blk, blocked, err := PickBlock(g, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if blk != 8 {
		t.Fatalf("PickBlock = %d, want 8 (delay covers exactly one block of 8)", blk)
	}
	ok, err := g.ScheduleReturnsToInitialState(blocked.Flatten())
	if err != nil || !ok {
		t.Errorf("blocked cycle schedule invalid: ok=%v err=%v", ok, err)
	}
}

func TestPickBlockScalarFallback(t *testing.T) {
	g := dataflow.New("tight")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 1, 1, dataflow.EdgeSpec{})
	g.AddEdge("ba", b, a, 1, 1, dataflow.EdgeSpec{Delay: 1})
	blk, blocked, err := PickBlock(g, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if blk != 1 {
		t.Errorf("one iteration of cycle delay admits no block: got %d", blk)
	}
	if blocked.Appearances() != 2 {
		t.Errorf("fallback should be the plain SAS")
	}
}

// notationFirings parses standard looped notation — "(2 (3 A) B)" — and
// returns total firings per actor name: each name's leaf count times the
// product of enclosing loop counts. Counts are bare integers directly
// after "("; anything else is an actor name.
func notationFirings(t *testing.T, nota string) map[string]int64 {
	t.Helper()
	nota = strings.ReplaceAll(nota, "(", " ( ")
	nota = strings.ReplaceAll(nota, ")", " ) ")
	toks := strings.Fields(nota)
	mult := []int64{1}
	firings := map[string]int64{}
	for i := 0; i < len(toks); i++ {
		switch tok := toks[i]; tok {
		case "(":
			i++
			if i >= len(toks) {
				t.Fatalf("notation %q ends inside a loop header", nota)
			}
			n, err := strconv.ParseInt(toks[i], 10, 64)
			if err != nil {
				t.Fatalf("notation %q: %q after '(' is not a loop count", nota, toks[i])
			}
			mult = append(mult, mult[len(mult)-1]*n)
		case ")":
			if len(mult) == 1 {
				t.Fatalf("notation %q: unbalanced ')'", nota)
			}
			mult = mult[:len(mult)-1]
		default:
			firings[tok] += mult[len(mult)-1]
		}
	}
	if len(mult) != 1 {
		t.Fatalf("notation %q: unbalanced '('", nota)
	}
	return firings
}
