// Command spigraph analyzes SPI dataflow systems: repetitions vectors,
// schedules, VTS conversion and buffer bounds, and the synchronization-
// graph optimization pipeline.
//
//	spigraph -graph fig1   # the paper's VTS example
//	spigraph -graph app1   # the n-PE actor D system
//	spigraph -graph app2   # the 2-PE particle filter system
//
// The wire-level resynchronization verdict — which interprocessor UBS
// acks a distributed deployment suppresses, and the covering path that
// proves each one redundant:
//
//	spigraph -graph app1 -resync -format=wire
//	spigraph -file pipeline.sdf -assign 0,1,1 -resync -format=wire
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/demo"
	"repro/internal/lpc"
	"repro/internal/particle"
	"repro/internal/sched"
	"repro/internal/spi"
	"repro/internal/syncgraph"
	"repro/internal/vts"
)

func main() {
	graph := flag.String("graph", "fig1", "graph to analyze: fig1, app1, app1full, app2")
	file := flag.String("file", "", "load a graph description file instead of a built-in graph")
	assign := flag.String("assign", "", "with -file: comma-separated processor index per actor, building the mapping -resync analyzes")
	pes := flag.Int("pes", 3, "PE count for app graphs")
	dot := flag.Bool("dot", false, "print the graph in Graphviz DOT format instead of the analysis")
	resync := flag.Bool("resync", false, "emit the wire-level ack-suppression verdict: per-edge suppress/keep with covering-path witnesses (needs a mapping: app1, app2, or -file with -assign)")
	format := flag.String("format", "wire", "with -resync: output format (only \"wire\")")
	flag.IntVar(&fissionK, "fission", 0,
		"rewrite the heaviest fissionable actor (or -fission-actor) into k replicas behind scatter/gather stages and print the plan; -1 chooses k and the block factor jointly under -fission-mem (0 = off)")
	flag.StringVar(&fissionActor, "fission-actor", "",
		"with -fission: name of the actor to fission (default: the heaviest fissionable one)")
	flag.Int64Var(&fissionMem, "fission-mem", 0,
		"with -fission: buffer-memory bound in bytes for the joint (k, block) selection (0 = unbounded)")
	flag.Parse()
	emitDOT = *dot
	resyncWire = *resync
	if resyncWire && *format != "wire" {
		fmt.Fprintf(os.Stderr, "spigraph: unknown -format %q (only \"wire\")\n", *format)
		os.Exit(2)
	}

	var err error
	switch {
	case *file != "":
		err = analyzeFile(*file, *assign)
	case *graph == "fig1":
		err = analyzeFig1()
	case *graph == "app1full":
		err = analyzeFullApp1()
	case *graph == "app1":
		err = analyzeSystem(func() (g *dataflow.Graph, m *sched.Mapping, err error) {
			sys, err := lpc.ErrorGenSystem(lpc.DefaultDeploy(256, *pes))
			if err != nil {
				return nil, nil, err
			}
			return sys.Graph, sys.Mapping, nil
		})
	case *graph == "app2":
		err = analyzeSystem(func() (g *dataflow.Graph, m *sched.Mapping, err error) {
			n := *pes
			if n < 1 {
				n = 2
			}
			sys, err := particle.FilterSystem(particle.DefaultDeploy(200*n, n), nil)
			if err != nil {
				return nil, nil, err
			}
			return sys.Graph, sys.Mapping, nil
		})
	default:
		err = fmt.Errorf("unknown graph %q", *graph)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spigraph:", err)
		os.Exit(1)
	}
}

// emitDOT switches printVTS-style analyses to Graphviz output; resyncWire
// appends the wire-level ack-suppression verdict where a mapping exists;
// fissionK/fissionActor/fissionMem drive the -fission plan printout.
var (
	emitDOT      bool
	resyncWire   bool
	fissionK     int
	fissionActor string
	fissionMem   int64
)

// printFission rewrites the requested actor into replicas and renders the
// plan: the chosen (k, block) point with its memory bound, the per-replica
// scatter/gather rates, and the rewritten graph with its analysis — so a
// deployment can be inspected before anything runs.
func printFission(g *dataflow.Graph) error {
	var target dataflow.ActorID
	if fissionActor != "" {
		a, ok := g.ActorByName(fissionActor)
		if !ok {
			return fmt.Errorf("-fission-actor: graph %q has no actor %q", g.Name(), fissionActor)
		}
		target = a
	} else {
		a, err := dataflow.HeaviestFissionable(g)
		if err != nil {
			return err
		}
		target = a
	}
	opts := dataflow.FissionOptions{MemBound: fissionMem}
	if fissionK > 0 {
		opts.K = fissionK
	}
	plan, err := dataflow.Fission(g, target, opts)
	if err != nil {
		return err
	}
	fmt.Println(plan)
	for _, eid := range g.In(target) {
		e := g.Edge(eid)
		mode := "broadcast"
		if plan.SplitIn[eid] {
			mode = "split"
		}
		fmt.Printf("  scatter in  %-10s %d tokens/iter x %d bytes, %s\n",
			e.Name, plan.InTokens[eid], e.TokenBytes, mode)
		for _, sid := range plan.ScatterEdges[eid] {
			se := plan.Graph.Edge(sid)
			fmt.Printf("    %-20s -> %-12s bound %d tokens\n",
				se.Name, plan.Graph.Actor(se.Snk).Name, se.Produce.Rate)
		}
	}
	for _, eid := range g.Out(target) {
		e := g.Edge(eid)
		counts := dataflow.SplitCounts(int(plan.OutTokens[eid]), plan.K)
		fmt.Printf("  gather out  %-10s %d tokens/iter x %d bytes, split %v\n",
			e.Name, plan.OutTokens[eid], e.TokenBytes, counts)
		for _, gid := range plan.GatherEdges[eid] {
			ge := plan.Graph.Edge(gid)
			fmt.Printf("    %-20s <- %-12s bound %d tokens\n",
				ge.Name, plan.Graph.Actor(ge.Src).Name, ge.Produce.Rate)
		}
	}
	fmt.Println("rewritten graph:")
	fmt.Print(plan.Graph)
	return printVTS(plan.Graph)
}

func analyzeFile(path, assign string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := dataflow.Parse(f)
	if err != nil {
		return err
	}
	if emitDOT {
		fmt.Print(g.DOT())
		return nil
	}
	fmt.Print(g)
	if err := printVTS(g); err != nil {
		return err
	}
	if fissionK != 0 {
		if err := printFission(g); err != nil {
			return err
		}
	}
	if !resyncWire {
		return nil
	}
	if assign == "" {
		return fmt.Errorf("-resync with -file needs -assign to define the mapping")
	}
	procs, err := parseInts(assign)
	if err != nil {
		return fmt.Errorf("-assign: %w", err)
	}
	m, err := demo.Mapping(g, procs)
	if err != nil {
		return err
	}
	return printResyncWire(g, m)
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad entry %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// printResyncWire renders spi.ResyncSuppression as it lands on the wire:
// one row per interprocessor edge, suppress or keep, with the covering
// path that justifies each suppression, then the negotiated ID set.
func printResyncWire(g *dataflow.Graph, m *sched.Mapping) error {
	plan, err := spi.ResyncSuppression(g, m)
	if err != nil {
		return err
	}
	fmt.Printf("resync wire verdict: %d ack feedback edge(s), %d suppressed, %d surviving\n",
		plan.AckFeedback, len(plan.Suppressed), plan.AckSurviving)
	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		if m.Proc[e.Src] == m.Proc[e.Snk] {
			continue
		}
		if witness, ok := plan.Suppressed[eid]; ok {
			fmt.Printf("  edge %-3d %-12s suppress  via %s\n", eid, e.Name, witness)
		} else {
			fmt.Printf("  edge %-3d %-12s keep\n", eid, e.Name)
		}
	}
	fmt.Printf("wire suppression set: %v\n", plan.SuppressedIDs())
	return nil
}

// analyzeFullApp1 analyzes the five-actor application-1 pipeline of the
// paper's figure 2, including its looped single-appearance schedule.
func analyzeFullApp1() error {
	g, err := lpc.FullGraph(lpc.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Print(g)
	if err := printVTS(g); err != nil {
		return err
	}
	sas, err := sched.SingleAppearanceSchedule(g)
	if err != nil {
		return err
	}
	mem, err := sched.SASBufferMemory(g, sas)
	if err != nil {
		return err
	}
	fmt.Printf("single-appearance schedule: %s (buffer memory %d bytes)\n", sas.Notation(g), mem)
	return nil
}

func analyzeFig1() error {
	g := dataflow.New("fig1")
	a := g.AddActor("A", 10)
	b := g.AddActor("B", 10)
	g.AddEdge("ab", a, b, 10, 8, dataflow.EdgeSpec{
		ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 2,
	})
	g.AddEdge("ba", b, a, 1, 1, dataflow.EdgeSpec{Delay: 2})
	if emitDOT {
		fmt.Print(g.DOT())
		return nil
	}
	fmt.Print(g)
	return printVTS(g)
}

func printVTS(g *dataflow.Graph) error {
	conv, err := vts.Convert(g)
	if err != nil {
		return err
	}
	q, err := conv.Graph.RepetitionsVector()
	if err != nil {
		return err
	}
	fmt.Printf("repetitions vector: %v\n", q)
	sched, err := conv.Graph.FindPASS()
	if err != nil {
		return err
	}
	fmt.Printf("PASS (%d firings):", len(sched))
	for _, a := range sched {
		fmt.Printf(" %s", conv.Graph.Actor(a).Name)
	}
	fmt.Println()
	bounds, err := vts.ComputeBounds(conv)
	if err != nil {
		return err
	}
	fmt.Println("VTS bounds per edge:")
	for _, b := range bounds {
		e := conv.Graph.Edge(b.Edge)
		proto := "SPI_BBS"
		if !b.Bounded {
			proto = "SPI_UBS (no static bound)"
		}
		fmt.Printf("  %-10s b_max=%-6d c_sdf=%-3d c(e)=%-6d Gamma=%-3d B(e)=%-6d %s\n",
			e.Name, b.BMax, b.CSDF, b.CE, b.Gamma, b.IPC, proto)
	}
	total, unbounded := vts.TotalBoundedMemory(bounds)
	fmt.Printf("total bounded buffer memory: %d bytes (%d UBS edges)\n", total, unbounded)
	return nil
}

func analyzeSystem(build func() (*dataflow.Graph, *sched.Mapping, error)) error {
	g, m, err := build()
	if err != nil {
		return err
	}
	if emitDOT {
		fmt.Print(g.DOT())
		return nil
	}
	fmt.Print(g)
	if err := printVTS(g); err != nil {
		return err
	}
	if fissionK != 0 {
		if err := printFission(g); err != nil {
			return err
		}
	}
	fmt.Printf("mapping: %d processors, %d interprocessor edges\n",
		m.NumProcs, len(m.InterprocessorEdges(g)))
	ipc, err := syncgraph.BuildIPCGraph(g, m)
	if err != nil {
		return err
	}
	sg := syncgraph.SynchronizationGraph(ipc)
	syncgraph.AddAllFeedback(sg, 1)
	rep := syncgraph.Resynchronize(sg, syncgraph.ResyncOptions{})
	fmt.Println(rep)
	if resyncWire {
		if err := printResyncWire(g, m); err != nil {
			return err
		}
	}
	res, err := sched.SelfTimed(g, m, sched.SelfTimedConfig{Iterations: 20, Warmup: 5})
	if err != nil {
		return err
	}
	fmt.Printf("self-timed analysis: steady period %.1f cycles, finish %d cycles over 20 iterations\n",
		res.Period, res.Finish)
	return nil
}
