package lpc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dsp"
	"repro/internal/signal"
	"repro/internal/spi"
	"repro/internal/transport"
)

// Bit-identity of the fissioned LPC residual: for any replica count —
// including ones that do not divide the frame length — the gathered error
// signal must equal the serial model.Residual exactly, locally, over the
// shm transport, and under chaos sever/resume.

// TestFissionResidualLocalBitIdentical runs the fissioned deployment on
// the monolithic executor for several k (k=1 degenerate, k=3 and k=7 not
// dividing N) and compares every collected frame sample-exactly against
// the serial residual.
func TestFissionResidualLocalBitIdentical(t *testing.T) {
	const iters = 3
	for _, n := range []int{100, 256} {
		frame := signal.Speech(n, 77)
		model, err := dsp.LPCAnalyze(frame, 10)
		if err != nil {
			t.Fatal(err)
		}
		want := model.Residual(frame)
		for _, k := range []int{1, 3, 7} {
			n, k, frame, model, want := n, k, frame, model, want
			t.Run(fmt.Sprintf("N%d-k%d", n, k), func(t *testing.T) {
				p := DefaultDeploy(n, 1)
				p.SampleBytes = 8
				fs, err := FissionErrorGenSystem(p, k, 0)
				if err != nil {
					t.Fatal(err)
				}
				if fs.Plan.K != k {
					t.Fatalf("plan chose k=%d, want %d", fs.Plan.K, k)
				}
				var frames [][]float64
				kernels, err := FissionResidualKernels(fs, model, frame, func(e []float64) {
					frames = append(frames, e)
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := spi.Execute(fs.Plan.Graph, fs.Mapping, kernels, iters); err != nil {
					t.Fatal(err)
				}
				if len(frames) != iters {
					t.Fatalf("collected %d frames, want %d", len(frames), iters)
				}
				for it, got := range frames {
					if len(got) != n {
						t.Fatalf("iter %d: assembled %d samples, want %d", it, len(got), n)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("iter %d sample %d: fissioned %v, serial %v", it, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestFissionErrorGenSystemAutoK: with k unspecified, the pass picks the
// replica count and block factor jointly under the memory bound, and the
// chosen deployment stays bit-identical.
func TestFissionErrorGenSystemAutoK(t *testing.T) {
	const n = 128
	p := DefaultDeploy(n, 1)
	p.SampleBytes = 8
	fs, err := FissionErrorGenSystem(p, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Plan.K < 2 {
		t.Fatalf("auto selection chose k=%d, want >= 2", fs.Plan.K)
	}
	if fs.Plan.MemBound > 0 && fs.Plan.MemoryBytes > fs.Plan.MemBound {
		t.Fatalf("chosen point needs %d bytes, bound %d", fs.Plan.MemoryBytes, fs.Plan.MemBound)
	}
	frame := signal.Speech(n, 77)
	model, err := dsp.LPCAnalyze(frame, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := model.Residual(frame)
	var got []float64
	kernels, err := FissionResidualKernels(fs, model, frame, func(e []float64) { got = e })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spi.Execute(fs.Plan.Graph, fs.Mapping, kernels, 2); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: fissioned %v, serial %v", i, got[i], want[i])
		}
	}
}

// TestFissionResidualDistributedShm runs the fissioned pipeline across two
// OS-visible endpoints of the shared-memory ring transport — I/O on node
// 0, scatter/gather and all replicas on node 1 — and checks the assembled
// residual bit-exactly against both the serial run and model.Residual.
func TestFissionResidualDistributedShm(t *testing.T) {
	const n, k, iters = 200, 4, 3
	frame := signal.Speech(n, 77)
	model, err := dsp.LPCAnalyze(frame, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := model.Residual(frame)

	tr := transport.NewShm(t.TempDir())
	ln, err := tr.Listen("lpc-fiss0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr(), "unused"}
	var (
		results [2][]float64
		errs    [2]error
		wg      sync.WaitGroup
	)
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			opts := spi.DistOptions{
				Transport: tr,
				Node:      node,
				Addrs:     addrs,
				Retry: transport.RetryConfig{Attempts: 20, BaseDelay: time.Millisecond,
					MaxDelay: 5 * time.Millisecond},
			}
			if node == 0 {
				opts.Listener = ln
			}
			results[node], _, errs[node] = FissionResidual(model, frame, k, iters, opts)
		}(node)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}
	got := results[0]
	if len(got) != n {
		t.Fatalf("node 0 assembled %d samples, want %d", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: fissioned %v, serial %v", i, got[i], want[i])
		}
	}
}

// TestFissionResidualChaosShm severs the shm rings mid-run: the dialer
// re-attaches over fresh segments and the RESUME replay must leave the
// fissioned residual bit-identical to the serial one — the ISSUE's chaos
// criterion on the fission workload.
func TestFissionResidualChaosShm(t *testing.T) {
	const n, k, iters = 256, 3, 4
	frame := signal.Speech(n, 77)
	model, err := dsp.LPCAnalyze(frame, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := model.Residual(frame)

	ft := transport.NewFaultTransport(transport.NewShm(t.TempDir()), transport.FaultConfig{
		Seed: 401, SeverAt: []int{9, 23, 51}, SkipFrames: 4,
	})
	ln, err := ft.Listen("lpc-fisschaos0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr(), "unused"}
	rc := transport.ReconnectConfig{Attempts: 50, BaseDelay: time.Millisecond,
		MaxDelay: 5 * time.Millisecond, Deadline: 20 * time.Second}
	var (
		results [2][]float64
		errs    [2]error
		wg      sync.WaitGroup
	)
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			opts := spi.DistOptions{
				Transport: ft,
				Node:      node,
				Addrs:     addrs,
				Reconnect: rc,
				Retry: transport.RetryConfig{Attempts: 20, BaseDelay: time.Millisecond,
					MaxDelay: 5 * time.Millisecond},
			}
			if node == 0 {
				opts.Listener = ln
			}
			results[node], _, errs[node] = FissionResidual(model, frame, k, iters, opts)
		}(node)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("fissioned chaos run wedged (recovery failed to terminate)")
	}
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v (faults: %+v)", node, err, ft.Stats())
		}
	}
	if ft.Stats().Severs == 0 {
		t.Fatal("chaos schedule injected no severs; test proved nothing")
	}
	got := results[0]
	if len(got) != n {
		t.Fatalf("recovered run assembled %d samples, want %d (faults: %+v)", len(got), n, ft.Stats())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: recovered %v, serial %v (faults: %+v)", i, got[i], want[i], ft.Stats())
		}
	}
}

// TestSerialResidualMatchesFission: the benchmark baseline and the
// fissioned deployment produce the same bytes over the same transport.
func TestSerialResidualMatchesFission(t *testing.T) {
	const n, iters = 160, 2
	frame := signal.Speech(n, 77)
	model, err := dsp.LPCAnalyze(frame, 10)
	if err != nil {
		t.Fatal(err)
	}
	run := func(fission int) []float64 {
		t.Helper()
		tr := transport.NewShm(t.TempDir())
		ln, err := tr.Listen("lpc-serial0")
		if err != nil {
			t.Fatal(err)
		}
		addrs := []string{ln.Addr(), "unused"}
		var (
			results [2][]float64
			errs    [2]error
			wg      sync.WaitGroup
		)
		for node := 0; node < 2; node++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				opts := spi.DistOptions{
					Transport: tr,
					Node:      node,
					Addrs:     addrs,
					Retry: transport.RetryConfig{Attempts: 20, BaseDelay: time.Millisecond,
						MaxDelay: 5 * time.Millisecond},
				}
				if node == 0 {
					opts.Listener = ln
				}
				if fission > 0 {
					results[node], _, errs[node] = FissionResidual(model, frame, fission, iters, opts)
				} else {
					results[node], _, errs[node] = SerialResidual(model, frame, iters, opts)
				}
			}(node)
		}
		wg.Wait()
		for node, err := range errs {
			if err != nil {
				t.Fatalf("fission=%d node %d: %v", fission, node, err)
			}
		}
		return results[0]
	}
	serial := run(0)
	fissioned := run(5)
	if len(serial) != n || len(fissioned) != n {
		t.Fatalf("assembled %d / %d samples, want %d", len(serial), len(fissioned), n)
	}
	for i := range serial {
		if serial[i] != fissioned[i] {
			t.Fatalf("sample %d: serial %v, fissioned %v", i, serial[i], fissioned[i])
		}
	}
}
