package spi

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/vts"
)

// Functional execution: run a mapped dataflow graph's actors as real
// computations. Each processor becomes a goroutine executing its actor
// order per iteration; interprocessor edges ride the SPI software runtime
// (with the same mode/protocol selection as the platform lowering), and
// same-processor edges are plain local queues. This is the programming
// model a downstream SPI user writes against: supply a Kernel per actor,
// get the paper's separation of computation from communication for free.

// Kernel is an actor's functional body for one block firing: it receives
// the packed payload from every input edge (keyed by edge ID; edges whose
// initial delay covers this iteration deliver nil) and returns the packed
// payload for every output edge. Omitted outputs send empty payloads.
type Kernel func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error)

// ExecStats reports a functional run.
type ExecStats struct {
	// Iterations completed.
	Iterations int
	// SPI aggregates the interprocessor runtime statistics.
	SPI EdgeStats
	// LocalTransfers counts same-processor payload hand-offs.
	LocalTransfers int64
}

// Execute runs the mapped graph for the given iteration count. Every actor
// must have a kernel. Edge payloads are bounded by the VTS analysis: a
// kernel returning more than b_max bytes on an edge is an error, exactly as
// the hardware library would reject it.
func Execute(g *dataflow.Graph, m *sched.Mapping, kernels map[dataflow.ActorID]Kernel, iterations int) (*ExecStats, error) {
	if err := m.Validate(g); err != nil {
		return nil, err
	}
	if iterations <= 0 {
		return nil, fmt.Errorf("spi: iterations = %d", iterations)
	}
	for _, a := range g.Actors() {
		if kernels[a] == nil {
			return nil, fmt.Errorf("spi: actor %s has no kernel", g.Actor(a).Name)
		}
	}
	conv, err := vts.Convert(g)
	if err != nil {
		return nil, err
	}
	bounds, err := vts.ComputeBounds(conv)
	if err != nil {
		return nil, err
	}
	q, err := g.RepetitionsVector()
	if err != nil {
		return nil, err
	}

	rt := NewRuntime()
	type remote struct {
		tx *Sender
		rx *Receiver
	}
	remotes := map[dataflow.EdgeID]remote{}
	// local queues: same-processor edges, guarded per queue (producer and
	// consumer run on the same goroutine, but delays preload them here).
	locals := map[dataflow.EdgeID][][]byte{}
	var localMu sync.Mutex
	var localTransfers int64

	delayIters := func(eid dataflow.EdgeID) int {
		e := g.Edge(eid)
		if t := int(g.IterationTokens(q, eid)); t > 0 {
			return e.Delay / t
		}
		return 0
	}

	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		info := conv.Info(eid)
		if m.Proc[e.Src] == m.Proc[e.Snk] {
			// Preload local queues with delay payloads (empty blocks).
			var pre [][]byte
			for i := 0; i < delayIters(eid); i++ {
				pre = append(pre, nil)
			}
			locals[eid] = pre
			continue
		}
		cfg := EdgeConfig{ID: EdgeID(eid), Mode: Static, PayloadBytes: int(info.BMax)}
		if info.Dynamic {
			cfg.Mode = Dynamic
			cfg.MaxBytes = int(info.BMax)
		}
		b := bounds[eid]
		if b.Bounded {
			cfg.Protocol = BBS
			capMsgs := int(b.IPC / b.BMax)
			if capMsgs < 1 {
				capMsgs = 1
			}
			if d := delayIters(eid); capMsgs < d+1 {
				capMsgs = d + 1
			}
			cfg.Capacity = capMsgs
		} else {
			cfg.Protocol = UBS
		}
		tx, rx, err := rt.Init(cfg)
		if err != nil {
			return nil, err
		}
		remotes[eid] = remote{tx: tx, rx: rx}
		// Initial delays: preload the edge with empty messages.
		for i := 0; i < delayIters(eid); i++ {
			payload := []byte(nil)
			if cfg.Mode == Static {
				payload = make([]byte, cfg.PayloadBytes)
			}
			if err := tx.Send(payload); err != nil {
				return nil, err
			}
		}
	}

	pad := func(eid dataflow.EdgeID, payload []byte) ([]byte, error) {
		info := conv.Info(eid)
		if int64(len(payload)) > info.BMax {
			return nil, fmt.Errorf("spi: kernel produced %d bytes on edge %s, bound %d",
				len(payload), g.Edge(eid).Name, info.BMax)
		}
		if !info.Dynamic && int64(len(payload)) != info.BMax {
			// Static edges move fixed-size blocks; zero-pad short payloads.
			out := make([]byte, info.BMax)
			copy(out, payload)
			return out, nil
		}
		return payload, nil
	}

	errs := make([]error, m.NumProcs)
	var wg sync.WaitGroup
	for p := 0; p < m.NumProcs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// A failing processor must release peers blocked on SPI edges.
			defer func() {
				if errs[p] != nil {
					rt.CloseAll()
				}
			}()
			for iter := 0; iter < iterations; iter++ {
				for _, a := range m.Order[p] {
					in := map[dataflow.EdgeID][]byte{}
					for _, eid := range g.In(a) {
						if r, ok := remotes[eid]; ok {
							payload, err := r.rx.Receive()
							if err != nil {
								errs[p] = fmt.Errorf("spi: actor %s recv %s: %w",
									g.Actor(a).Name, g.Edge(eid).Name, err)
								return
							}
							in[eid] = payload
							continue
						}
						localMu.Lock()
						queue := locals[eid]
						if len(queue) == 0 {
							localMu.Unlock()
							errs[p] = fmt.Errorf("spi: actor %s local underflow on %s (scheduling bug)",
								g.Actor(a).Name, g.Edge(eid).Name)
							return
						}
						in[eid] = queue[0]
						locals[eid] = queue[1:]
						localTransfers++
						localMu.Unlock()
					}
					out, err := kernels[a](iter, in)
					if err != nil {
						errs[p] = fmt.Errorf("spi: actor %s iteration %d: %w", g.Actor(a).Name, iter, err)
						return
					}
					for _, eid := range g.Out(a) {
						payload, err := pad(eid, out[eid])
						if err != nil {
							errs[p] = err
							return
						}
						if r, ok := remotes[eid]; ok {
							if err := r.tx.Send(payload); err != nil {
								errs[p] = fmt.Errorf("spi: actor %s send %s: %w",
									g.Actor(a).Name, g.Edge(eid).Name, err)
								return
							}
							continue
						}
						localMu.Lock()
						locals[eid] = append(locals[eid], payload)
						localMu.Unlock()
					}
				}
			}
		}(p)
	}
	wg.Wait()
	// Prefer the root-cause error: a processor that died on its own kernel
	// or bound violation, not the peers that were unblocked with ErrClosed
	// as a consequence.
	var closedErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrClosed) {
			if closedErr == nil {
				closedErr = err
			}
			continue
		}
		return nil, err
	}
	if closedErr != nil {
		return nil, closedErr
	}
	return &ExecStats{
		Iterations:     iterations,
		SPI:            rt.TotalStats(),
		LocalTransfers: localTransfers,
	}, nil
}
