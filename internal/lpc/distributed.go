package lpc

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/dsp"
	"repro/internal/spi"
)

// Distributed error generation — application 1 across OS processes: the
// same n-PE actor-D deployment graph as ParallelResidual, but executed with
// spi.ExecuteDistributed so the I/O interface and the worker PEs can live
// in different processes connected by a byte transport. The kernels are
// pure functions of (iteration, inputs), so any partition of the mapping
// produces bit-identical residuals.

// residualKernels builds the functional kernel set for an ErrorGenSystem
// graph: io_send scatters coefficients and overlapping frame sections,
// each pe computes its residual range, io_recv reassembles the frame into
// collect (which only the node hosting io_recv observes).
func residualKernels(g *dataflow.Graph, p DeployParams, model *dsp.LPCModel, frame []float64, collect func([]float64)) (map[dataflow.ActorID]spi.Kernel, error) {
	edge := func(prefix string, i int) (dataflow.EdgeID, error) {
		name := fmt.Sprintf("%s%d", prefix, i)
		for _, eid := range g.Edges() {
			if g.Edge(eid).Name == name {
				return eid, nil
			}
		}
		return 0, fmt.Errorf("lpc: graph has no edge %s", name)
	}
	ioSend, ok := g.ActorByName("io_send")
	if !ok {
		return nil, fmt.Errorf("lpc: graph has no io_send actor")
	}
	ioRecv, ok := g.ActorByName("io_recv")
	if !ok {
		return nil, fmt.Errorf("lpc: graph has no io_recv actor")
	}
	n := p.PEs
	N := p.SampleSize

	kernels := map[dataflow.ActorID]spi.Kernel{
		ioSend: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			out := map[dataflow.EdgeID][]byte{}
			for i := 0; i < n; i++ {
				start := i * N / n
				end := (i + 1) * N / n
				hist := p.Order
				if start < hist {
					hist = start
				}
				ce, err := edge("coeffs", i)
				if err != nil {
					return nil, err
				}
				se, err := edge("sect", i)
				if err != nil {
					return nil, err
				}
				out[ce] = encodeFloats(model.Coeffs)
				out[se] = encodeSection(hist, frame[start-hist:end])
			}
			return out, nil
		},
		ioRecv: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			assembled := make([]float64, 0, N)
			for i := 0; i < n; i++ {
				ee, err := edge("errs", i)
				if err != nil {
					return nil, err
				}
				part, err := decodeFloats(in[ee])
				if err != nil {
					return nil, err
				}
				assembled = append(assembled, part...)
			}
			collect(assembled)
			return nil, nil
		},
	}
	for i := 0; i < n; i++ {
		i := i
		w, ok := g.ActorByName(fmt.Sprintf("pe%d", i))
		if !ok {
			return nil, fmt.Errorf("lpc: graph has no pe%d actor", i)
		}
		kernels[w] = func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			ce, err := edge("coeffs", i)
			if err != nil {
				return nil, err
			}
			se, err := edge("sect", i)
			if err != nil {
				return nil, err
			}
			ee, err := edge("errs", i)
			if err != nil {
				return nil, err
			}
			coeffs, err := decodeFloats(in[ce])
			if err != nil {
				return nil, err
			}
			hist, samples, err := decodeSection(in[se])
			if err != nil {
				return nil, err
			}
			wm := &dsp.LPCModel{Coeffs: coeffs}
			return map[dataflow.EdgeID][]byte{
				ee: encodeFloats(wm.ResidualRange(samples, hist, len(samples))),
			}, nil
		}
	}
	return kernels, nil
}

// SplitIOWorkers assigns the ErrorGenSystem processors to nodes with the
// I/O interface (processor 0) on node 0 and the worker PEs spread
// round-robin over the remaining nodes — the natural two-process partition
// when nodes == 2.
func SplitIOWorkers(numProcs, nodes int) []int {
	nodeOf := make([]int, numProcs)
	if nodes <= 1 {
		return nodeOf
	}
	for p := 1; p < numProcs; p++ {
		nodeOf[p] = 1 + (p-1)%(nodes-1)
	}
	return nodeOf
}

// DistributedResidual runs this node's share of the n-PE error-generation
// system for iters frames. opts.NodeOf defaults to SplitIOWorkers. The
// node hosting io_recv (node 0 under that split) returns the assembled
// residual of the last iteration; worker-only nodes return nil. Every node
// must pass identical model/frame/nPE/iters.
func DistributedResidual(model *dsp.LPCModel, frame []float64, nPE, iters int, opts spi.DistOptions) ([]float64, *spi.ExecStats, error) {
	if nPE <= 0 {
		return nil, nil, fmt.Errorf("lpc: nPE = %d", nPE)
	}
	if nPE > len(frame) {
		nPE = len(frame)
	}
	p := DefaultDeploy(len(frame), nPE)
	p.SampleBytes = 8 // the functional kernels move float64 samples
	sys, err := ErrorGenSystem(p)
	if err != nil {
		return nil, nil, err
	}
	if opts.NodeOf == nil {
		opts.NodeOf = SplitIOWorkers(sys.Mapping.NumProcs, len(opts.Addrs))
	}
	var result []float64
	kernels, err := residualKernels(sys.Graph, p, model, frame, func(assembled []float64) {
		result = assembled
	})
	if err != nil {
		return nil, nil, err
	}
	st, err := spi.ExecuteDistributed(sys.Graph, sys.Mapping, kernels, iters, opts)
	if err != nil {
		return nil, nil, err
	}
	return result, st, nil
}
