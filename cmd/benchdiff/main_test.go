package main

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func res(name string, metrics map[string]float64) result {
	return result{Name: name, Iterations: 100, Metrics: metrics}
}

func full(tokens float64) map[string]float64 {
	return map[string]float64{
		"tokens_per_s":       tokens,
		"ns/op":              1e9 / tokens,
		"allocs/op":          2,
		"ack_frames_per_msg": 1,
		"writes_per_msg":     1,
	}
}

func TestBuildPairsAllTiers(t *testing.T) {
	results := []result{
		res("BenchmarkLinkThroughput/loopback/unbatched", full(1000)),
		res("BenchmarkLinkThroughput/loopback/batched", full(3000)),
		res("BenchmarkLinkThroughput/loopback/blocked", full(9000)),
		res("BenchmarkLinkThroughput/chan", full(50000)), // no tiers: unpaired, not an error
	}
	rep, errs := build(results, nil)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(rep.Pairs) != 2 {
		t.Fatalf("got %d pairs, want batched_vs_unbatched and blocked_vs_batched", len(rep.Pairs))
	}
	for _, p := range rep.Pairs {
		if p.SpeedupTokens != 3 {
			t.Errorf("pair %s/%s speedup = %v, want 3", p.Name, p.Comparison, p.SpeedupTokens)
		}
	}
	if len(rep.Unpaired) != 1 || rep.Unpaired[0].Name != "BenchmarkLinkThroughput/chan" {
		t.Errorf("unpaired = %+v", rep.Unpaired)
	}
}

// TestBuildHeartbeatOverlayTier: the heartbeat tier is an overlay — it
// pairs against the blocked rung when present, and a run without any
// heartbeat results (TestBuildPairsAllTiers) is complete, not a half-run.
// But a heartbeat result whose blocked baseline is missing is an error.
func TestBuildHeartbeatOverlayTier(t *testing.T) {
	results := []result{
		res("BenchmarkLinkThroughput/loopback/unbatched", full(1000)),
		res("BenchmarkLinkThroughput/loopback/batched", full(3000)),
		res("BenchmarkLinkThroughput/loopback/blocked", full(9000)),
		res("BenchmarkLinkThroughput/loopback/heartbeat", full(8910)),
	}
	rep, errs := build(results, nil)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	var hb *pair
	for i := range rep.Pairs {
		if rep.Pairs[i].Comparison == "heartbeat_overhead" {
			hb = &rep.Pairs[i]
		}
	}
	if hb == nil {
		t.Fatalf("no heartbeat_overhead pair in %+v", rep.Pairs)
	}
	if hb.Base.Name != "BenchmarkLinkThroughput/loopback/blocked" {
		t.Errorf("heartbeat tier base = %s, want the blocked rung", hb.Base.Name)
	}
	if hb.SpeedupTokens != 0.99 {
		t.Errorf("heartbeat overhead speedup = %v, want 0.99", hb.SpeedupTokens)
	}

	// heartbeat without its baseline: a named error, no report.
	_, errs = build([]result{
		res("BenchmarkLinkThroughput/tcp/heartbeat", full(8910)),
	}, nil)
	joined := ""
	for _, err := range errs {
		joined += err.Error() + "\n"
	}
	if !strings.Contains(joined, "tcp/blocked missing") {
		t.Errorf("errors %q do not flag the missing blocked baseline", joined)
	}
}

// TestBuildResyncTier: the resync tier is an overlay over the blocked
// rung, and its improved side must prove it actually suppressed acks —
// a zero or absent acks_suppressed_per_msg is a named error, no report.
func TestBuildResyncTier(t *testing.T) {
	resync := full(9900)
	resync["ack_frames_per_msg"] = 0
	resync["acks_suppressed_per_msg"] = 0.0625
	results := []result{
		res("BenchmarkLinkThroughput/loopback/unbatched", full(1000)),
		res("BenchmarkLinkThroughput/loopback/batched", full(3000)),
		res("BenchmarkLinkThroughput/loopback/blocked", full(9000)),
		res("BenchmarkLinkThroughput/loopback/resync", resync),
	}
	rep, errs := build(results, nil)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	var rs *pair
	for i := range rep.Pairs {
		if rep.Pairs[i].Comparison == "resync_vs_blocked" {
			rs = &rep.Pairs[i]
		}
	}
	if rs == nil {
		t.Fatalf("no resync_vs_blocked pair in %+v", rep.Pairs)
	}
	if rs.Base.Name != "BenchmarkLinkThroughput/loopback/blocked" {
		t.Errorf("resync tier base = %s, want the blocked rung", rs.Base.Name)
	}
	if rs.SpeedupTokens != 1.1 {
		t.Errorf("resync speedup = %v, want 1.1", rs.SpeedupTokens)
	}

	// A "resync" run that swallowed nothing proved nothing.
	inert := full(9900)
	inert["acks_suppressed_per_msg"] = 0
	_, errs = build([]result{
		res("BenchmarkLinkThroughput/loopback/unbatched", full(1000)),
		res("BenchmarkLinkThroughput/loopback/batched", full(3000)),
		res("BenchmarkLinkThroughput/loopback/blocked", full(9000)),
		res("BenchmarkLinkThroughput/loopback/resync", inert),
	}, nil)
	joined := ""
	for _, err := range errs {
		joined += err.Error() + "\n"
	}
	if !strings.Contains(joined, "acks_suppressed_per_msg missing or zero") ||
		!strings.Contains(joined, "loopback/resync") {
		t.Errorf("errors %q do not flag the inert resync run", joined)
	}

	// resync without its blocked baseline: a named error, no report.
	_, errs = build([]result{
		res("BenchmarkLinkThroughput/tcp/resync", resync),
	}, nil)
	joined = ""
	for _, err := range errs {
		joined += err.Error() + "\n"
	}
	if !strings.Contains(joined, "tcp/blocked missing") {
		t.Errorf("errors %q do not flag the missing blocked baseline", joined)
	}
}

func TestBuildMissingSideIsNamedError(t *testing.T) {
	results := []result{
		res("BenchmarkLinkThroughput/tcp/batched", full(3000)),
		// tcp/unbatched and tcp/blocked both missing.
	}
	_, errs := build(results, nil)
	if len(errs) != 2 {
		t.Fatalf("got %d errors, want 2 (one per broken comparison): %v", len(errs), errs)
	}
	joined := ""
	for _, err := range errs {
		joined += err.Error() + "\n"
	}
	for _, want := range []string{"tcp/unbatched missing", "tcp/blocked missing", "BenchmarkLinkThroughput/tcp"} {
		if !strings.Contains(joined, want) {
			t.Errorf("errors %q do not name %q", joined, want)
		}
	}
}

func TestBuildZeroHeadlineMetricIsError(t *testing.T) {
	zero := full(1000)
	zero["tokens_per_s"] = 0
	results := []result{
		res("BenchmarkLinkThroughput/loopback/unbatched", zero),
		res("BenchmarkLinkThroughput/loopback/batched", full(3000)),
		res("BenchmarkLinkThroughput/loopback/blocked", full(9000)),
	}
	rep, errs := build(results, nil)
	if len(errs) == 0 {
		t.Fatal("zero tokens_per_s should be an error")
	}
	if !strings.Contains(errs[0].Error(), "tokens_per_s") || !strings.Contains(errs[0].Error(), "loopback/unbatched") {
		t.Errorf("error %v does not name the metric and result", errs[0])
	}
	// The broken pair must not appear; the intact blocked pair still does.
	for _, p := range rep.Pairs {
		if p.Comparison == "batched_vs_unbatched" {
			t.Errorf("broken pair still built: %+v", p)
		}
	}
}

// TestReportJSONIsFinite marshals a report built from awkward-but-valid
// inputs (the improved tier zeroed its ack frames, so the naive division
// would be Inf) and checks no NaN/Inf survives into the JSON.
func TestReportJSONIsFinite(t *testing.T) {
	improved := full(9000)
	improved["ack_frames_per_msg"] = 0
	improved["writes_per_msg"] = 0
	results := []result{
		res("BenchmarkLinkThroughput/loopback/unbatched", full(1000)),
		res("BenchmarkLinkThroughput/loopback/batched", improved),
		res("BenchmarkLinkThroughput/loopback/blocked", improved),
	}
	rep, errs := build(results, nil)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report does not marshal (non-finite values?): %v", err)
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(string(buf), bad) {
			t.Errorf("JSON contains %s: %s", bad, buf)
		}
	}
	for _, p := range rep.Pairs {
		for _, v := range []float64{p.SpeedupTokens, p.LatencyRatio, p.AllocRatio, p.AckFrameFactor, p.WriteCoalescing} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("pair %s/%s carries a non-finite ratio", p.Name, p.Comparison)
			}
		}
	}
}

func sessionsMetrics(tokens, admitted float64) map[string]float64 {
	return map[string]float64{
		"tokens_per_s":      tokens,
		"ns/op":             1e9 / tokens,
		"admitted_sessions": admitted,
		"p50_us":            500,
		"p99_us":            2000,
	}
}

// TestBuildSessionsTier pairs the spiload single baseline against the
// multi-session load phase.
func TestBuildSessionsTier(t *testing.T) {
	results := []result{
		res("BenchmarkSpiload/single", sessionsMetrics(1000, 25)),
		res("BenchmarkSpiload/sessions", sessionsMetrics(4000, 100)),
	}
	rep, errs := build(results, nil)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(rep.Pairs) != 1 || rep.Pairs[0].Comparison != "sessions_vs_single" {
		t.Fatalf("pairs = %+v", rep.Pairs)
	}
	if rep.Pairs[0].SpeedupTokens != 4 {
		t.Errorf("speedup = %v, want 4", rep.Pairs[0].SpeedupTokens)
	}
}

// TestBuildZeroAdmittedIsError: a load run that admitted no sessions
// must fail the report loudly, naming the pair.
func TestBuildZeroAdmittedIsError(t *testing.T) {
	dead := sessionsMetrics(4000, 0)
	results := []result{
		res("BenchmarkSpiload/single", sessionsMetrics(1000, 25)),
		res("BenchmarkSpiload/sessions", dead),
	}
	rep, errs := build(results, nil)
	if len(errs) == 0 {
		t.Fatal("zero admitted_sessions should be an error")
	}
	if !strings.Contains(errs[0].Error(), "zero sessions admitted") ||
		!strings.Contains(errs[0].Error(), "BenchmarkSpiload/sessions") {
		t.Errorf("error %v does not name the dead load run", errs[0])
	}
	if len(rep.Pairs) != 0 {
		t.Errorf("broken sessions pair still built: %+v", rep.Pairs)
	}
	// The metric must be present on both sides, not just nonzero.
	missing := sessionsMetrics(4000, 1)
	delete(missing, "admitted_sessions")
	_, errs = build([]result{
		res("BenchmarkSpiload/single", missing),
		res("BenchmarkSpiload/sessions", sessionsMetrics(4000, 100)),
	}, nil)
	if len(errs) == 0 {
		t.Fatal("missing admitted_sessions should be an error")
	}
}

func elasticMetrics(tokens, migrations float64) map[string]float64 {
	return map[string]float64{
		"tokens_per_s":              tokens,
		"ns/op":                     1e9 / tokens,
		"migrations":                migrations,
		"migration_downtime_tokens": 64,
		"recovery_ns":               100000,
	}
}

// TestBuildElasticTier pairs the orchestrated elastic pool against the
// static single-process run.
func TestBuildElasticTier(t *testing.T) {
	static := elasticMetrics(4000, 0)
	delete(static, "migrations") // the base side carries no elasticity metrics
	delete(static, "migration_downtime_tokens")
	results := []result{
		res("BenchmarkOrch/pool=3/static", static),
		res("BenchmarkOrch/pool=3/elastic", elasticMetrics(1000, 5)),
	}
	rep, errs := build(results, nil)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(rep.Pairs) != 1 || rep.Pairs[0].Comparison != "elastic_vs_static" {
		t.Fatalf("pairs = %+v", rep.Pairs)
	}
	if rep.Pairs[0].SpeedupTokens != 0.25 {
		t.Errorf("speedup = %v, want 0.25", rep.Pairs[0].SpeedupTokens)
	}
}

// TestBuildElasticNoMigrationsIsError: an "elastic" run that never
// migrated measured a static pool with extra hops — reject it loudly.
func TestBuildElasticNoMigrationsIsError(t *testing.T) {
	inert := elasticMetrics(1000, 0)
	rep, errs := build([]result{
		res("BenchmarkOrch/pool=3/static", elasticMetrics(4000, 0)),
		res("BenchmarkOrch/pool=3/elastic", inert),
	}, nil)
	if len(errs) == 0 {
		t.Fatal("zero migrations should be an error")
	}
	if !strings.Contains(errs[0].Error(), "no migrations recorded") ||
		!strings.Contains(errs[0].Error(), "BenchmarkOrch/pool=3/elastic") {
		t.Errorf("error %v does not name the inert elastic run", errs[0])
	}
	if len(rep.Pairs) != 0 {
		t.Errorf("broken elastic pair still built: %+v", rep.Pairs)
	}

	// The downtime metric must be present even when zero: dropping it
	// hides the cost of the migration the run claims to have done.
	noDowntime := elasticMetrics(1000, 5)
	delete(noDowntime, "migration_downtime_tokens")
	_, errs = build([]result{
		res("BenchmarkOrch/pool=3/static", elasticMetrics(4000, 0)),
		res("BenchmarkOrch/pool=3/elastic", noDowntime),
	}, nil)
	if len(errs) == 0 {
		t.Fatal("missing migration_downtime_tokens should be an error")
	}
	if !strings.Contains(errs[0].Error(), "migration_downtime_tokens missing") {
		t.Errorf("error %v does not name the missing metric", errs[0])
	}
}

func TestTrimProcs(t *testing.T) {
	if got := trimProcs("BenchmarkX/sub-8"); got != "BenchmarkX/sub" {
		t.Errorf("trimProcs = %q", got)
	}
	if got := trimProcs("BenchmarkX/sub"); got != "BenchmarkX/sub" {
		t.Errorf("trimProcs = %q", got)
	}
}
