package session

import "testing"

func TestPickLeastLoaded(t *testing.T) {
	cases := []struct {
		name  string
		loads []Load
		want  int
	}{
		{"empty", nil, -1},
		{"fewest live wins",
			[]Load{{Live: 3}, {Live: 1}, {Live: 2}}, 1},
		{"full node loses to busier open node",
			[]Load{{Live: 2, Capacity: 2}, {Live: 5, Capacity: 8}}, 1},
		{"degraded breaks live ties",
			[]Load{{Live: 2, Degraded: 1}, {Live: 2, Degraded: 0}}, 1},
		{"queued bytes break remaining ties",
			[]Load{{Live: 1, QueuedBytes: 900}, {Live: 1, QueuedBytes: 10}}, 1},
		{"exact tie routes to lowest index",
			[]Load{{Live: 1}, {Live: 1}, {Live: 1}}, 0},
		{"all full still picks something",
			[]Load{{Live: 4, Capacity: 2}, {Live: 2, Capacity: 2}}, 1},
		{"unbounded capacity is never full",
			[]Load{{Live: 9, Capacity: 0}, {Live: 3, Capacity: 3}}, 0},
	}
	for _, tc := range cases {
		if got := PickLeastLoaded(tc.loads); got != tc.want {
			t.Errorf("%s: picked %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestServerLoadRouting books sessions on two real servers and checks
// the pool routes each next OPEN away from the busier one.
func TestServerLoadRouting(t *testing.T) {
	g, m := testGraph()
	mk := func(cap int) *Server {
		srv, err := NewServer(ServerConfig{
			Graph: g, Mapping: m, Iterations: 1,
			Kernels:   defaultServerKernels,
			Admission: Admission{MaxSessions: cap},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		return srv
	}
	a, b := mk(4), mk(4)
	loads := func() []Load { return []Load{a.Load(), b.Load()} }

	if got := a.Load(); got.Live != 0 || got.Capacity != 4 || got.Full() {
		t.Fatalf("idle server load = %+v", got)
	}
	// Book sessions straight into the admission book; routing only reads
	// the book, so no client link is needed.
	var entries []*entry
	book := func(s *Server, tenant string) {
		st, e, _ := s.adm.admit(tenant, false)
		if st != StatusAdmitted {
			t.Fatalf("admit on %p: status %d", s, st)
		}
		entries = append(entries, e)
	}
	book(a, "t0")
	book(a, "t0")
	if i := PickLeastLoaded(loads()); i != 1 {
		t.Fatalf("with a at 2 sessions, routed to %d, want 1 (b)", i)
	}
	book(b, "t1")
	book(b, "t1")
	book(b, "t1")
	if i := PickLeastLoaded(loads()); i != 0 {
		t.Fatalf("with b at 3 sessions, routed to %d, want 0 (a)", i)
	}
	// Fill a to capacity: everything must route to b even though b holds
	// more sessions.
	book(a, "t0")
	book(a, "t0")
	if got := a.Load(); !got.Full() {
		t.Fatalf("a at MaxSessions should be Full, load = %+v", got)
	}
	if i := PickLeastLoaded(loads()); i != 1 {
		t.Fatalf("with a full, routed to %d, want 1 (b)", i)
	}
	// Queued-byte pressure tips an otherwise-equal pair.
	b.adm.addBytes(entries[2], 1<<20)
	la, lb := a.Load(), b.Load()
	if lb.QueuedBytes != 1<<20 || la.QueuedBytes != 0 {
		t.Fatalf("queued bytes: a=%d b=%d", la.QueuedBytes, lb.QueuedBytes)
	}
	if !(Load{}).Less(lb) {
		t.Fatal("an idle node should order before a pressured one")
	}
}
