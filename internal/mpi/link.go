package mpi

import (
	"fmt"

	"repro/internal/platform"
)

// Link lowers one MPI-style point-to-point connection onto the platform
// simulator: a data channel with the full generic header, plus a reverse
// control channel for the rendezvous handshake. Compare spi.Build, which
// needs only the data channel with a 2- or 6-byte header.
type Link struct {
	Data platform.ChannelID // from -> to, HeaderBytes header
	RTS  platform.ChannelID // from -> to, control
	CTS  platform.ChannelID // to -> from, control
	// Eager is the payload threshold above which SendOps emit the
	// rendezvous handshake.
	Eager int
}

// NewLink adds the channels of one MPI connection to the simulator.
func NewLink(sim *platform.Sim, from, to int, name string) (*Link, error) {
	data, err := sim.AddChannel(platform.ChannelSpec{
		From: from, To: to, Name: name + ".data", HeaderBytes: HeaderBytes,
	})
	if err != nil {
		return nil, err
	}
	rts, err := sim.AddChannel(platform.ChannelSpec{
		From: from, To: to, Name: name + ".rts", HeaderBytes: HeaderBytes,
	})
	if err != nil {
		return nil, err
	}
	cts, err := sim.AddChannel(platform.ChannelSpec{
		From: to, To: from, Name: name + ".cts", HeaderBytes: HeaderBytes,
	})
	if err != nil {
		return nil, err
	}
	return &Link{Data: data, RTS: rts, CTS: cts, Eager: EagerLimit}, nil
}

// SendOps returns the sender-side program fragment for one message of the
// given payload size: eager messages are a single data send; larger ones
// perform RTS, wait for CTS, then send the data.
func (l *Link) SendOps(payloadBytes int) []platform.Op {
	if payloadBytes < 0 {
		panic(fmt.Sprintf("mpi: negative payload %d", payloadBytes))
	}
	if payloadBytes <= l.Eager {
		return []platform.Op{platform.Send(l.Data, payloadBytes)}
	}
	return []platform.Op{
		platform.SendKind(l.RTS, 0, platform.CtrlMsg),
		platform.Recv(l.CTS),
		platform.Send(l.Data, payloadBytes),
	}
}

// RecvOps returns the receiver-side program fragment matching SendOps for
// the same payload size.
func (l *Link) RecvOps(payloadBytes int) []platform.Op {
	if payloadBytes <= l.Eager {
		return []platform.Op{platform.Recv(l.Data)}
	}
	return []platform.Op{
		platform.Recv(l.RTS),
		platform.SendKind(l.CTS, 0, platform.CtrlMsg),
		platform.Recv(l.Data),
	}
}

// WireOverhead returns the total protocol bytes one message of the given
// payload costs beyond the payload itself: the data header plus, above the
// eager limit, the two control messages.
func WireOverhead(payloadBytes int) int {
	if payloadBytes <= EagerLimit {
		return HeaderBytes
	}
	return 3 * HeaderBytes
}
