package spi

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/syncgraph"
)

// fanoutSystem: an I/O-interface pair scattering to workers and gathering,
// the figure-3 shape where every acknowledgement is provably redundant.
func fanoutSystem(t *testing.T, workers int) *System {
	t.Helper()
	g := dataflow.New("fan")
	src := g.AddActor("src", 100)
	snk := g.AddActor("snk", 10)
	m := &sched.Mapping{
		NumProcs: workers + 1,
		Proc:     make([]sched.Processor, 0, workers+2),
		Order:    make([][]dataflow.ActorID, workers+1),
	}
	m.Proc = append(m.Proc, 0, 0) // src, snk on proc 0
	m.Order[0] = []dataflow.ActorID{src, snk}
	for i := 0; i < workers; i++ {
		w := g.AddActor("w"+string(rune('0'+i)), 500)
		g.AddEdge("in"+string(rune('0'+i)), src, w, 16, 16,
			dataflow.EdgeSpec{ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 1})
		g.AddEdge("out"+string(rune('0'+i)), w, snk, 16, 16,
			dataflow.EdgeSpec{ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 1})
		m.Proc = append(m.Proc, sched.Processor(i+1))
		m.Order[i+1] = []dataflow.ActorID{w}
	}
	return &System{Graph: g, Mapping: m}
}

func TestOptimizeSyncSuppressesRedundantAcks(t *testing.T) {
	sys := fanoutSystem(t, 3)
	rep, err := OptimizeSync(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.SuppressAcks {
		t.Fatalf("acks not suppressed despite full redundancy: %s", rep)
	}
	if rep.SyncAfter >= rep.SyncBefore {
		t.Errorf("no reduction: %s", rep)
	}
	// The optimized deployment must generate zero acknowledgement traffic.
	dep, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dep.Sim.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages[platform.AckMsg] != 0 {
		t.Errorf("optimized system still sent %d acks", st.Messages[platform.AckMsg])
	}
	// Against the unoptimized baseline, total traffic drops.
	base := fanoutSystem(t, 3)
	bdep, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	bst, err := bdep.Sim.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalMessages() >= bst.TotalMessages() {
		t.Errorf("optimized traffic %d !< baseline %d", st.TotalMessages(), bst.TotalMessages())
	}
}

// TestResyncSuppressionKeyedSet checks that the edge-keyed suppression
// plan agrees with the ResyncReport counts: every removed UBS "ack:"
// feedback edge maps back to its concrete dataflow edge with a covering
// witness, and deployment layers can trust the keyed set as the single
// source of truth.
func TestResyncSuppressionKeyedSet(t *testing.T) {
	const workers = 3
	sys := fanoutSystem(t, workers)
	plan, err := ResyncSuppression(sys.Graph, sys.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	rep := plan.Report
	removedAcks := 0
	for _, e := range append(append([]syncgraph.Edge{}, rep.RemovedFirst...), rep.RemovedByResync...) {
		if strings.HasPrefix(e.Label, "ack:") {
			removedAcks++
		}
	}
	// fanoutSystem is all-UBS and fully redundant: the keyed set must
	// cover exactly the removed ack edges — all 2*workers IPC edges.
	if removedAcks != 2*workers {
		t.Fatalf("removed %d ack edges, want %d: %s", removedAcks, 2*workers, rep)
	}
	if len(plan.Suppressed) != removedAcks {
		t.Fatalf("keyed set has %d edges, report removed %d ack edges",
			len(plan.Suppressed), removedAcks)
	}
	if plan.AckFeedback != 2*workers || plan.AckSurviving != 0 {
		t.Errorf("feedback=%d surviving=%d, want %d and 0",
			plan.AckFeedback, plan.AckSurviving, 2*workers)
	}
	for _, eid := range sys.Graph.Edges() {
		witness, ok := plan.Suppressed[eid]
		if !ok {
			t.Errorf("edge %q missing from suppression set", sys.Graph.Edge(eid).Name)
			continue
		}
		if witness == "" {
			t.Errorf("edge %q has no covering-path witness", sys.Graph.Edge(eid).Name)
		}
	}
	// Canonical wire order: sorted, no duplicates.
	ids := plan.SuppressedIDs()
	if len(ids) != len(plan.Suppressed) {
		t.Fatalf("SuppressedIDs returned %d ids for %d edges", len(ids), len(plan.Suppressed))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("SuppressedIDs not strictly ascending: %v", ids)
		}
	}
}

// TestResyncSuppressionSingleProc: no IPC edges, empty keyed set.
func TestResyncSuppressionSingleProc(t *testing.T) {
	g := dataflow.New("solo")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 1, 1, dataflow.EdgeSpec{})
	m := &sched.Mapping{
		NumProcs: 1, Proc: []sched.Processor{0, 0},
		Order: [][]dataflow.ActorID{{a, b}},
	}
	plan, err := ResyncSuppression(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Suppressed) != 0 || plan.AckFeedback != 0 {
		t.Errorf("single-proc system suppressed %d edges (feedback %d), want none",
			len(plan.Suppressed), plan.AckFeedback)
	}
}

func TestOptimizeSyncNoIPCEdges(t *testing.T) {
	// Single-processor system: nothing to optimize, no suppression claim.
	g := dataflow.New("solo")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 1, 1, dataflow.EdgeSpec{})
	sys := &System{Graph: g, Mapping: &sched.Mapping{
		NumProcs: 1, Proc: []sched.Processor{0, 0},
		Order: [][]dataflow.ActorID{{a, b}},
	}}
	rep, err := OptimizeSync(sys)
	if err != nil {
		t.Fatal(err)
	}
	if sys.SuppressAcks {
		t.Error("no feedback was added; SuppressAcks must stay false")
	}
	if rep.SyncBefore != 0 {
		t.Errorf("unexpected sync edges: %s", rep)
	}
}

func TestOptimizeSyncInvalidMapping(t *testing.T) {
	g := dataflow.New("bad")
	g.AddActor("A", 1)
	sys := &System{Graph: g, Mapping: &sched.Mapping{NumProcs: 0}}
	if _, err := OptimizeSync(sys); err == nil {
		t.Error("invalid mapping should fail")
	}
}
