package spi

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/transport"
)

// Bit-identity tests for partition-scoped execution: any placement of the
// mapped processors over any number of workers, with any epoching and any
// mid-run re-placement (simulated migration via Tails/State handoff), must
// produce exactly the sink digests of the monolithic Execute run.

// partGraph builds a 4-actor, 3-processor graph exercising every edge
// class the partition executor distinguishes: a cross-processor static
// edge with delay (zero-block preloads), a cross-processor dynamic edge
// with delay (empty preloads), a cross-processor static edge without
// delay, and a same-processor delayed edge (local queue).
func partGraph() (*dataflow.Graph, *sched.Mapping) {
	g := dataflow.New("part")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	c := g.AddActor("C", 1)
	d := g.AddActor("D", 1)
	g.AddEdge("ab", a, b, 1, 1, dataflow.EdgeSpec{TokenBytes: 4, Delay: 2})
	g.AddEdge("bc", b, c, 1, 1, dataflow.EdgeSpec{TokenBytes: 6, Delay: 1,
		ProduceDynamic: true, ConsumeDynamic: true})
	g.AddEdge("cd", c, d, 1, 1, dataflow.EdgeSpec{TokenBytes: 3})
	g.AddEdge("ad", a, d, 1, 1, dataflow.EdgeSpec{TokenBytes: 5, Delay: 1})
	m := &sched.Mapping{
		NumProcs: 3,
		Proc:     []sched.Processor{0, 1, 2, 0},
		Order:    [][]dataflow.ActorID{{a, d}, {b}, {c}},
	}
	return g, m
}

// partTestSinks accumulates sink digests across workers and epochs; every
// epoch in these tests commits, so the XOR fold composes to the digest of
// the unpartitioned run.
type partTestSinks struct {
	mu sync.Mutex
	d  map[string]uint64
}

func (s *partTestSinks) snapshot() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]uint64{}
	for k, v := range s.d {
		out[k] = v
	}
	return out
}

// partTestKernels builds deterministic demo-style kernels for partGraph,
// keyed both by actor ID (for Execute) and name (for ExecutePartition).
// Actor B is stateful: it folds a running sum of its firing hashes into
// its outputs, so epoch handoff silently corrupting checkpointed state
// breaks bit-identity. The returned hooks checkpoint/restore B's state.
func partTestKernels(g *dataflow.Graph, seed uint64, sinks *partTestSinks) (
	map[dataflow.ActorID]Kernel, map[string]Kernel, map[string]StateHooks) {
	byID := map[dataflow.ActorID]Kernel{}
	byName := map[string]Kernel{}
	hooks := map[string]StateHooks{}
	for _, aid := range g.Actors() {
		aid := aid
		name := g.Actor(aid).Name
		ins := append([]dataflow.EdgeID(nil), g.In(aid)...)
		for i := 1; i < len(ins); i++ { // ascending edge-ID fold order
			for j := i; j > 0 && ins[j] < ins[j-1]; j-- {
				ins[j], ins[j-1] = ins[j-1], ins[j]
			}
		}
		outs := g.Out(aid)
		var acc uint64 // actor B's running state
		k := func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s|%s|%d|%d", g.Name(), name, iter, seed)
			for _, id := range ins {
				fmt.Fprintf(h, "|%s:", g.Edge(id).Name)
				h.Write(in[id])
			}
			state := h.Sum64()
			if name == "B" {
				acc += state
				state ^= acc
			}
			if len(outs) == 0 {
				sinks.mu.Lock()
				sinks.d[name] ^= state * uint64(iter*2654435761+1)
				sinks.mu.Unlock()
				return nil, nil
			}
			out := map[dataflow.EdgeID][]byte{}
			for _, id := range outs {
				e := g.Edge(id)
				n := e.TokenBytes * e.Produce.Rate
				if e.Dynamic() && n > 1 {
					n = 1 + int(state%uint64(n))
				}
				buf := make([]byte, n)
				s := state ^ uint64(id)
				for i := range buf {
					s ^= s << 13
					s ^= s >> 7
					s ^= s << 17
					buf[i] = byte(s)
				}
				out[id] = buf
			}
			return out, nil
		}
		byID[aid] = k
		byName[name] = k
		if name == "B" {
			hooks[name] = StateHooks{
				Checkpoint: func() []byte {
					return binary.LittleEndian.AppendUint64(nil, acc)
				},
				Restore: func(state []byte) error {
					if state == nil {
						acc = 0
						return nil
					}
					if len(state) != 8 {
						return fmt.Errorf("state blob is %d bytes", len(state))
					}
					acc = binary.LittleEndian.Uint64(state)
					return nil
				},
			}
		}
	}
	return byID, byName, hooks
}

// partReference runs the monolithic executor and returns the sink digests
// and per-actor firings the partitioned runs must reproduce exactly.
func partReference(t *testing.T, iterations int) (map[string]uint64, map[string]int) {
	t.Helper()
	g, m := partGraph()
	sinks := &partTestSinks{d: map[string]uint64{}}
	byID, _, _ := partTestKernels(g, 7, sinks)
	st, err := Execute(g, m, byID, iterations)
	if err != nil {
		t.Fatal(err)
	}
	return sinks.snapshot(), st.ActorFirings
}

// runPartitionedEpochs drives the full coordinator loop in miniature:
// partition per the epoch's placement, thread Tails and State blobs across
// epoch boundaries (exactly what a live migration ships), run every worker
// over a fresh per-epoch loopback, and accumulate sink digests. placement
// maps an epoch index to (workerOf, workers).
func runPartitionedEpochs(t *testing.T, iterations, epochLen int,
	placement func(epoch int) ([]int, int)) (map[string]uint64, map[string]int) {
	t.Helper()
	g, m := partGraph()
	sinks := &partTestSinks{d: map[string]uint64{}}
	tails, err := InitialPreloads(g, m)
	if err != nil {
		t.Fatal(err)
	}
	state := map[string][]byte{}
	firings := map[string]int{}
	for base, epoch := 0, 0; base < iterations; epoch++ {
		n := epochLen
		if left := iterations - base; n > left {
			n = left
		}
		workerOf, workers := placement(epoch)
		specs, err := BuildPartitions(g, m, workerOf, workers)
		if err != nil {
			t.Fatal(err)
		}
		// Fresh per-epoch transport and listeners: the epoch fence.
		tr := transport.NewLoopback()
		addrs := make([]string, workers)
		lns := make([]transport.Listener, workers)
		for w := 0; w < workers; w++ {
			ln, err := tr.Listen(fmt.Sprintf("epoch%d-w%d", epoch, w))
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			addrs[w] = ln.Addr()
			lns[w] = ln
		}
		results := make([]*PartResult, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			spec := specs[w]
			spec.BaseIter, spec.Iterations, spec.Addrs = base, n, addrs
			hosted := map[string]bool{}
			for pi := range spec.Procs {
				for _, a := range spec.Procs[pi].Actors {
					hosted[a.Name] = true
				}
			}
			for i := range spec.Edges {
				e := &spec.Edges[i]
				if (e.Out || e.SameProc) && e.Delay > 0 {
					spec.Preload[e.ID] = tails[e.ID]
				}
			}
			_, byName, hooks := partTestKernels(g, 7, sinks)
			opts := PartOptions{
				Transport: tr, Listener: lns[w],
				Retry: transport.RetryConfig{Attempts: 20, BaseDelay: time.Millisecond,
					MaxDelay: 5 * time.Millisecond},
				State: map[string]StateHooks{},
			}
			for name, h := range hooks {
				if hosted[name] {
					spec.State[name] = state[name]
					opts.State[name] = h
				}
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				results[w], errs[w] = ExecutePartition(spec, byName, opts)
			}(w)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("epoch %d worker %d: %v", epoch, w, err)
			}
		}
		for _, res := range results {
			for id, tl := range res.Tails {
				tails[id] = tl
			}
			for name, blob := range res.State {
				state[name] = blob
			}
			for name, nf := range res.Firings {
				firings[name] += nf
			}
		}
		base += n
	}
	return sinks.snapshot(), firings
}

func checkPartDigests(t *testing.T, got, want map[string]uint64, gotF, wantF map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("sink digests = %v, want %v", got, want)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("sink %s digest = %#x, want %#x", name, got[name], w)
		}
	}
	for name, w := range wantF {
		if gotF[name] != w {
			t.Errorf("actor %s fired %d times, want %d", name, gotF[name], w)
		}
	}
}

// TestExecutePartitionMatchesExecute runs one epoch spread over three
// workers (one processor each) and checks the sink digests and firing
// counts are bit-identical to the monolithic run.
func TestExecutePartitionMatchesExecute(t *testing.T) {
	const iterations = 12
	ref, refF := partReference(t, iterations)
	got, gotF := runPartitionedEpochs(t, iterations, iterations,
		func(int) ([]int, int) { return []int{0, 1, 2}, 3 })
	checkPartDigests(t, got, ref, gotF, refF)
}

// TestExecutePartitionColocated places all processors on one worker: every
// cross-processor edge becomes an in-process SPI edge (Out and In both
// hosted), no links at all.
func TestExecutePartitionColocated(t *testing.T) {
	const iterations = 10
	ref, refF := partReference(t, iterations)
	got, gotF := runPartitionedEpochs(t, iterations, iterations,
		func(int) ([]int, int) { return []int{0, 0, 0}, 1 })
	checkPartDigests(t, got, ref, gotF, refF)
}

// TestExecutePartitionMigration re-places processors at every epoch
// boundary — including shrinking from three workers to two and moving the
// stateful actor's processor — with Tails and State threaded across, the
// exact data a live migration ships. Digests must not move by a bit.
func TestExecutePartitionMigration(t *testing.T) {
	const iterations = 13
	ref, refF := partReference(t, iterations)
	got, gotF := runPartitionedEpochs(t, iterations, 5, func(epoch int) ([]int, int) {
		switch epoch % 3 {
		case 0:
			return []int{0, 1, 2}, 3
		case 1:
			return []int{1, 0, 1}, 2 // B's processor migrates to worker 0
		default:
			return []int{0, 0, 1}, 2
		}
	})
	checkPartDigests(t, got, ref, gotF, refF)
}

// TestExecutePartitionShortEpochs runs one-iteration epochs — shorter than
// the deepest delay — so edge tails must carry unconsumed preloads across
// boundaries, with a placement rotation every epoch.
func TestExecutePartitionShortEpochs(t *testing.T) {
	const iterations = 6
	ref, refF := partReference(t, iterations)
	got, gotF := runPartitionedEpochs(t, iterations, 1, func(epoch int) ([]int, int) {
		if epoch%2 == 0 {
			return []int{0, 1, 0}, 2
		}
		return []int{1, 0, 1}, 2
	})
	checkPartDigests(t, got, ref, gotF, refF)
}

// TestExecutePartitionResume severs the data link mid-epoch on a worker
// that holds nothing but its partition spec; RESUME replay must recover
// and keep the digests bit-identical — partition-scoped manifests lose no
// resumption capability.
func TestExecutePartitionResume(t *testing.T) {
	const iterations = 40
	ref, refF := partReference(t, iterations)

	g, m := partGraph()
	sinks := &partTestSinks{d: map[string]uint64{}}
	workerOf, workers := []int{0, 1, 0}, 2
	specs, err := BuildPartitions(g, m, workerOf, workers)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := InitialPreloads(g, m)
	if err != nil {
		t.Fatal(err)
	}
	ft := transport.NewFaultTransport(transport.NewLoopback(), transport.FaultConfig{
		Seed: 42, SeverAt: []int{15, 33}, SkipFrames: 6,
	})
	addrs := make([]string, workers)
	lns := make([]transport.Listener, workers)
	for w := 0; w < workers; w++ {
		ln, err := ft.Listen(fmt.Sprintf("resume-w%d", w))
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs[w], lns[w] = ln.Addr(), ln
	}
	results := make([]*PartResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		spec := specs[w]
		spec.BaseIter, spec.Iterations, spec.Addrs = 0, iterations, addrs
		for i := range spec.Edges {
			e := &spec.Edges[i]
			if (e.Out || e.SameProc) && e.Delay > 0 {
				spec.Preload[e.ID] = pre[e.ID]
			}
		}
		_, byName, hooks := partTestKernels(g, 7, sinks)
		opts := PartOptions{
			Transport: ft, Listener: lns[w],
			Retry: transport.RetryConfig{Attempts: 20, BaseDelay: time.Millisecond,
				MaxDelay: 5 * time.Millisecond},
			Reconnect: chaosReconnect(20 * time.Second),
			State:     map[string]StateHooks{},
		}
		if w == workerOf[1] {
			opts.State["B"] = hooks["B"]
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = ExecutePartition(spec, byName, opts)
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("partition resume run wedged")
	}
	firings := map[string]int{}
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v (faults: %+v)", w, err, ft.Stats())
		}
		for name, n := range results[w].Firings {
			firings[name] += n
		}
	}
	if ft.Stats().Severs == 0 {
		t.Fatal("no sever landed; chaos schedule is inert")
	}
	checkPartDigests(t, sinks.snapshot(), ref, firings, refF)
}

// TestExecutePartitionAbort cancels a two-worker epoch mid-run: both
// workers must unwind promptly with the context error — the coordinator's
// Abort path.
func TestExecutePartitionAbort(t *testing.T) {
	g, m := partGraph()
	sinks := &partTestSinks{d: map[string]uint64{}}
	workerOf, workers := []int{0, 1, 0}, 2
	specs, err := BuildPartitions(g, m, workerOf, workers)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewLoopback()
	addrs := make([]string, workers)
	lns := make([]transport.Listener, workers)
	for w := 0; w < workers; w++ {
		ln, err := tr.Listen(fmt.Sprintf("abort-w%d", w))
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs[w], lns[w] = ln.Addr(), ln
	}
	ctx, cancel := context.WithCancel(context.Background())
	pre, err := InitialPreloads(g, m)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		spec := specs[w]
		spec.BaseIter, spec.Iterations, spec.Addrs = 0, 1<<20, addrs
		for i := range spec.Edges {
			e := &spec.Edges[i]
			if (e.Out || e.SameProc) && e.Delay > 0 {
				spec.Preload[e.ID] = pre[e.ID]
			}
		}
		_, byName, _ := partTestKernels(g, 7, sinks)
		// Gate actor A so the epoch is guaranteed in-flight when cancelled.
		inner := byName["A"]
		byName["A"] = func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			if iter == 3 {
				close(release)
				<-ctx.Done()
			}
			return inner(iter, in)
		}
		opts := PartOptions{
			Transport: tr, Listener: lns[w], Context: ctx,
			Retry: transport.RetryConfig{Attempts: 20, BaseDelay: time.Millisecond,
				MaxDelay: 5 * time.Millisecond},
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = ExecutePartition(spec, byName, opts)
		}(w)
	}
	<-release
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled partition run did not unwind")
	}
	for w, err := range errs {
		if err == nil {
			t.Errorf("worker %d: cancelled epoch completed cleanly", w)
		}
	}
}

// TestPartitionSpecValidation exercises the spec validator and the
// coordinator-side builder errors.
func TestPartitionSpecValidation(t *testing.T) {
	g, m := partGraph()
	if _, err := BuildPartitions(g, m, []int{0, 1}, 2); err == nil {
		t.Error("short placement accepted")
	}
	if _, err := BuildPartitions(g, m, []int{0, 0, 3}, 3); err == nil {
		t.Error("out-of-range placement accepted")
	}
	if _, err := BuildPartitions(g, m, []int{0, 0, 0}, 2); err == nil ||
		!strings.Contains(err.Error(), "hosts no processors") {
		t.Errorf("empty worker accepted: %v", err)
	}
	specs, err := BuildPartitions(g, m, []int{0, 1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec := specs[0]
	spec.BaseIter, spec.Iterations, spec.Addrs = 0, 1, []string{"x", "y"}
	sinks := &partTestSinks{d: map[string]uint64{}}
	_, byName, _ := partTestKernels(g, 7, sinks)
	if _, err := ExecutePartition(spec, nil, PartOptions{}); err == nil {
		t.Error("missing kernels accepted")
	}
	bad := *spec
	bad.Iterations = 0
	if _, err := ExecutePartition(&bad, byName, PartOptions{}); err == nil {
		t.Error("zero iterations accepted")
	}
	bad = *spec
	bad.Node = 2
	if _, err := ExecutePartition(&bad, byName, PartOptions{}); err == nil {
		t.Error("node out of worker range accepted")
	}
	bad = *spec
	bad.Edges = append([]PartEdge(nil), spec.Edges...)
	for i := range bad.Edges {
		if crossesWorkers(&bad.Edges[i]) {
			bad.Edges[i].Peer = 5
		}
	}
	if _, err := ExecutePartition(&bad, byName, PartOptions{}); err == nil {
		t.Error("out-of-range peer accepted")
	}
}
