package vts

import (
	"encoding/binary"
	"fmt"
)

// Framing selects how a variable-size packed token tells the receiver its
// length. The paper discusses both options: a size field in the message
// header (cheap on FPGAs) and a delimiter scanned by the receiver
// (expensive, as it costs per-byte work on the receive side).
type Framing uint8

const (
	// HeaderFraming prefixes the payload with a 4-byte little-endian size.
	HeaderFraming Framing = iota
	// DelimiterFraming terminates the payload with a sentinel byte and
	// escapes payload occurrences of the sentinel.
	DelimiterFraming
)

func (f Framing) String() string {
	switch f {
	case HeaderFraming:
		return "header"
	case DelimiterFraming:
		return "delimiter"
	default:
		return fmt.Sprintf("Framing(%d)", uint8(f))
	}
}

// SizeHeaderBytes is the length of the size field used by HeaderFraming.
const SizeHeaderBytes = 4

const (
	delimByte  = 0x7E
	escapeByte = 0x7D
	escapeXOR  = 0x20
)

// Packer frames variable-size payloads into packed tokens for one edge,
// enforcing the VTS bound b_max. A Packer never allocates beyond the bound,
// honouring the paper's bounded-memory requirement for actor
// implementations. The zero value is not usable; use NewPacker.
type Packer struct {
	bmax    int64
	framing Framing
	buf     []byte // reused scratch, capacity fixed at construction
}

// NewPacker returns a Packer for packed tokens of at most bmax payload
// bytes using the given framing.
func NewPacker(bmax int64, framing Framing) *Packer {
	cap := int(bmax) + SizeHeaderBytes
	if framing == DelimiterFraming {
		// worst case: every byte escaped, plus trailing delimiter
		cap = 2*int(bmax) + 1
	}
	return &Packer{bmax: bmax, framing: framing, buf: make([]byte, 0, cap)}
}

// BMax returns the payload bound.
func (p *Packer) BMax() int64 { return p.bmax }

// Pack frames payload into a packed token. The returned slice aliases the
// Packer's internal buffer and is valid until the next Pack call. Returns
// an error if the payload exceeds b_max — by construction a VTS edge never
// carries more.
func (p *Packer) Pack(payload []byte) ([]byte, error) {
	if int64(len(payload)) > p.bmax {
		return nil, fmt.Errorf("vts: payload %d bytes exceeds b_max %d", len(payload), p.bmax)
	}
	p.buf = p.buf[:0]
	switch p.framing {
	case HeaderFraming:
		var hdr [SizeHeaderBytes]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		p.buf = append(p.buf, hdr[:]...)
		p.buf = append(p.buf, payload...)
	case DelimiterFraming:
		for _, b := range payload {
			if b == delimByte || b == escapeByte {
				p.buf = append(p.buf, escapeByte, b^escapeXOR)
			} else {
				p.buf = append(p.buf, b)
			}
		}
		p.buf = append(p.buf, delimByte)
	default:
		return nil, fmt.Errorf("vts: unknown framing %v", p.framing)
	}
	return p.buf, nil
}

// Unpacker recovers payloads from packed tokens. ReceiverOps counts the
// per-byte operations the receive side performed — the quantity the paper
// uses to argue that delimiter framing is expensive on FPGAs.
type Unpacker struct {
	bmax    int64
	framing Framing
	buf     []byte
	// ReceiverOps accumulates receive-side byte-examination operations.
	ReceiverOps int64
}

// NewUnpacker returns an Unpacker matching NewPacker(bmax, framing).
func NewUnpacker(bmax int64, framing Framing) *Unpacker {
	return &Unpacker{bmax: bmax, framing: framing, buf: make([]byte, 0, int(bmax))}
}

// Unpack extracts the payload from a packed token. The returned slice
// aliases the Unpacker's internal buffer (valid until the next Unpack) for
// delimiter framing, or the input for header framing.
func (u *Unpacker) Unpack(msg []byte) ([]byte, error) {
	switch u.framing {
	case HeaderFraming:
		if len(msg) < SizeHeaderBytes {
			return nil, fmt.Errorf("vts: packed token too short for header: %d bytes", len(msg))
		}
		size := int64(binary.LittleEndian.Uint32(msg))
		if size > u.bmax {
			return nil, fmt.Errorf("vts: header size %d exceeds b_max %d", size, u.bmax)
		}
		if int64(len(msg)-SizeHeaderBytes) < size {
			return nil, fmt.Errorf("vts: packed token truncated: header says %d, have %d", size, len(msg)-SizeHeaderBytes)
		}
		// Header framing costs O(1) on the receiver: one header read.
		u.ReceiverOps++
		return msg[SizeHeaderBytes : SizeHeaderBytes+size], nil
	case DelimiterFraming:
		u.buf = u.buf[:0]
		esc := false
		for i, b := range msg {
			u.ReceiverOps++ // every byte must be examined to find the delimiter
			switch {
			case esc:
				u.buf = append(u.buf, b^escapeXOR)
				esc = false
			case b == escapeByte:
				esc = true
			case b == delimByte:
				if i != len(msg)-1 {
					return nil, fmt.Errorf("vts: delimiter before end of token at byte %d", i)
				}
				if int64(len(u.buf)) > u.bmax {
					return nil, fmt.Errorf("vts: payload %d exceeds b_max %d", len(u.buf), u.bmax)
				}
				return u.buf, nil
			default:
				u.buf = append(u.buf, b)
			}
		}
		return nil, fmt.Errorf("vts: packed token missing delimiter")
	default:
		return nil, fmt.Errorf("vts: unknown framing %v", u.framing)
	}
}

// FrameOverhead returns the wire bytes added by framing a payload of the
// given size: constant for header framing, data-dependent (escapes) for
// delimiter framing in the worst case.
func FrameOverhead(framing Framing, payload int) int {
	switch framing {
	case HeaderFraming:
		return SizeHeaderBytes
	case DelimiterFraming:
		return 1 + payload // delimiter + worst-case all-escaped expansion
	default:
		return 0
	}
}
