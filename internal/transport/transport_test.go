package transport

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestDialRetryRefusedThenUp(t *testing.T) {
	tr := NewLoopback()
	// Nothing listening: all attempts burn, the last error is transient.
	start := time.Now()
	_, err := DialRetry(context.Background(), tr, "ghost", RetryConfig{
		Attempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 8 * time.Millisecond, Multiplier: 2,
	})
	if err == nil {
		t.Fatal("dialing an unbound address should fail")
	}
	if !IsTransient(err) {
		t.Fatalf("refused connect should be transient, got %v", err)
	}
	// 3 sleeps of 2+4+8 ms: backoff actually waited.
	if d := time.Since(start); d < 14*time.Millisecond {
		t.Fatalf("retries returned after %v, backoff did not wait", d)
	}

	// Listener comes up mid-retry: DialRetry must succeed.
	go func() {
		time.Sleep(10 * time.Millisecond)
		ln, err := tr.Listen("late")
		if err != nil {
			return
		}
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Close()
		ln.Close()
	}()
	c, err := DialRetry(context.Background(), tr, "late", RetryConfig{
		Attempts: 50, BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial after listener came up: %v", err)
	}
	c.Close()
}

func TestDialRetryTCPRefused(t *testing.T) {
	tr := &TCP{DialTimeout: time.Second}
	// Bind and release a port so the address is valid but refused.
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	ln.Close()
	attempts := 3
	start := time.Now()
	_, err = DialRetry(context.Background(), tr, addr, RetryConfig{
		Attempts: attempts, BaseDelay: 2 * time.Millisecond, MaxDelay: 4 * time.Millisecond,
	})
	if err == nil {
		t.Skip("something else is listening on the released port")
	}
	if !IsTransient(err) {
		t.Fatalf("TCP refused connect should be transient, got %v", err)
	}
	if d := time.Since(start); d < 6*time.Millisecond {
		t.Fatalf("retries returned after %v, backoff did not wait", d)
	}
}

func TestDialFatalErrorNotRetried(t *testing.T) {
	tr := &TCP{DialTimeout: time.Second}
	var attempts atomic.Int64
	counted := countingTransport{Transport: tr, dials: &attempts}
	_, err := DialRetry(context.Background(), counted, "not-an-address", RetryConfig{
		Attempts: 5, BaseDelay: time.Millisecond,
	})
	if err == nil {
		t.Fatal("malformed address should fail")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("fatal dial error retried %d times", got)
	}
}

type countingTransport struct {
	Transport
	dials *atomic.Int64
}

func (c countingTransport) Dial(addr string) (Conn, error) {
	c.dials.Add(1)
	return c.Transport.Dial(addr)
}

func TestLoopbackAddressReuse(t *testing.T) {
	tr := NewLoopback()
	ln, err := tr.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("a"); err == nil {
		t.Fatal("double bind should fail")
	}
	ln.Close()
	ln2, err := tr.Listen("a")
	if err != nil {
		t.Fatalf("rebinding a closed address: %v", err)
	}
	ln2.Close()
}

// TestShutdownLeaksNoGoroutines drives a full link round trip on both
// transports and verifies every reader/acceptor goroutine is reaped.
func TestShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for name, tr := range transports(t) {
		hd, ha := newRecordingHandler(), newRecordingHandler()
		dialer, acceptor := linkPair(t, tr, testAddr(name), hd, ha)
		msg := []byte{7, 0, 1, 0, 0, 0, 9}
		if err := dialer.SendData(7, msg); err != nil {
			t.Fatal(err)
		}
		ha.waitData(t, 7, 1)
		done := make(chan struct{})
		go func() { acceptor.Close(); close(done) }()
		dialer.Close()
		<-done
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: before %d, after %d\n%s",
		before, runtime.NumGoroutine(), truncateStack(string(buf[:n])))
}

func truncateStack(s string) string {
	const max = 4000
	if len(s) > max {
		return s[:max] + "\n...truncated..."
	}
	return s
}

func TestFrameRoundTrip(t *testing.T) {
	var buf strings.Builder
	body := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, frameData, 42, body); err != nil {
		t.Fatal(err)
	}
	typ, seq, got, err := readFrame(strings.NewReader(buf.String()), DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameData || seq != 42 || string(got) != string(body) {
		t.Fatalf("round trip: type %d seq %d body %x", typ, seq, got)
	}
	// Oversized length field is rejected, not allocated.
	huge := string([]byte{0xff, 0xff, 0xff, 0x7f, frameData})
	if _, _, _, err := readFrame(strings.NewReader(huge), DefaultMaxFrame); err == nil {
		t.Fatal("oversized frame should be rejected")
	}
	// Any single flipped byte fails the frame CRC.
	raw := []byte(buf.String())
	for i := 4; i < len(raw); i++ {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x01
		if _, _, _, err := readFrame(strings.NewReader(string(bad)), DefaultMaxFrame); err == nil {
			t.Fatalf("corrupted byte %d should fail the CRC", i)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	edges := testManifest(true)
	node, token, got, _, err := decodeHello(encodeHello(42, 0xfeedface, edges, 0))
	if err != nil {
		t.Fatal(err)
	}
	if node != 42 || token != 0xfeedface || len(got) != len(edges) {
		t.Fatalf("decoded node %d token %#x, %d edges", node, token, len(got))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d: %+v != %+v", i, got[i], edges[i])
		}
	}
	// Truncated and corrupted hellos fail cleanly.
	raw := encodeHello(1, 7, edges, 0)
	for cut := 0; cut < len(raw); cut++ {
		if _, _, _, _, err := decodeHello(raw[:cut]); err == nil {
			t.Fatalf("hello truncated to %d bytes should fail", cut)
		}
	}
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, _, _, _, err := decodeHello(bad); err == nil {
		t.Fatal("corrupted magic should fail")
	}
}

// TestDialRetryCancelledContext checks cancellation interrupts the backoff
// sleeps instead of waiting out the whole retry ladder.
func TestDialRetryCancelledContext(t *testing.T) {
	tr := NewLoopback()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := DialRetry(ctx, tr, "ghost", RetryConfig{
		Attempts: 1000, BaseDelay: 50 * time.Millisecond, MaxDelay: 50 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("cancelled dial should fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error should wrap context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancellation took %v, backoff was not interrupted", d)
	}
}

// TestResumeFrameRoundTrips covers the v2 control-frame codecs.
func TestResumeFrameRoundTrips(t *testing.T) {
	node, token, recv, err := decodeResume(encodeResume(3, 0xdeadbeef, 99))
	if err != nil || node != 3 || token != 0xdeadbeef || recv != 99 {
		t.Fatalf("resume round trip: %d %#x %d %v", node, token, recv, err)
	}
	if _, _, _, err := decodeResume(encodeResume(3, 1, 2)[:10]); err == nil {
		t.Fatal("truncated resume should fail")
	}
	if n, err := decodeResumeOK(encodeResumeOK(7)); err != nil || n != 7 {
		t.Fatalf("resume-ok round trip: %d %v", n, err)
	}
	if n, err := decodeCumAck(encodeCumAck(12)); err != nil || n != 12 {
		t.Fatalf("cumack round trip: %d %v", n, err)
	}
	if e, err := decodeFin(encodeFin(9)); err != nil || e != 9 {
		t.Fatalf("fin round trip: %d %v", e, err)
	}
}
