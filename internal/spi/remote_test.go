package spi

import (
	"errors"
	"sync"
	"testing"
)

// fakeLink records SendData / SendAck traffic and can be wired to fail.
type fakeLink struct {
	mu    sync.Mutex
	data  [][]byte
	acks  []uint32
	edges []uint16
	fins  []uint16
	fail  error
}

func (f *fakeLink) SendData(edge uint16, msg []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return f.fail
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)
	f.data = append(f.data, cp)
	f.edges = append(f.edges, edge)
	return nil
}

func (f *fakeLink) SendAck(edge uint16, count uint32) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return f.fail
	}
	f.acks = append(f.acks, count)
	return nil
}

func (f *fakeLink) SendFin(edge uint16) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return f.fail
	}
	f.fins = append(f.fins, edge)
	return nil
}

// TestRemoteSenderRoundTrip wires two runtimes together through fake links
// by hand: rtA's edge 5 sender transmits, and the wire message is injected
// into rtB via DeliverData.
func TestRemoteSenderRoundTrip(t *testing.T) {
	cfg := EdgeConfig{ID: 5, Mode: Dynamic, MaxBytes: 64, Protocol: UBS}
	rtA, rtB := NewRuntime(), NewRuntime()
	txA, _, err := rtA.Init(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, rxB, err := rtB.Init(cfg)
	if err != nil {
		t.Fatal(err)
	}
	linkA, linkB := &fakeLink{}, &fakeLink{}
	if err := rtA.BindRemoteSender(5, linkA); err != nil {
		t.Fatal(err)
	}
	if err := rtB.BindRemoteReceiver(5, linkB); err != nil {
		t.Fatal(err)
	}

	if err := txA.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if len(linkA.data) != 1 || linkA.edges[0] != 5 {
		t.Fatalf("link captured %d messages (edges %v), want 1 on edge 5", len(linkA.data), linkA.edges)
	}
	// The wire message is the standard SPI encoding.
	id, payload, err := DecodeDynamic(linkA.data[0], 64)
	if err != nil || id != 5 || string(payload) != "hello" {
		t.Fatalf("wire message decodes to (%d, %q, %v)", id, payload, err)
	}

	rtB.DeliverData(5, linkA.data[0])
	got, err := rxB.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("received %q", got)
	}
	// Receiving on a remote-bound edge sends one ack over the link.
	if len(linkB.acks) != 1 || linkB.acks[0] != 1 {
		t.Fatalf("receiver acks = %v, want [1]", linkB.acks)
	}
	// And the sender's UBS bookkeeping advances once the ack is delivered.
	if out := txA.Outstanding(); out != 1 {
		t.Fatalf("outstanding before ack = %d", out)
	}
	rtA.DeliverAck(5, 1)
	if out := txA.Outstanding(); out != 0 {
		t.Fatalf("outstanding after ack = %d", out)
	}
}

// TestRemoteBBSWindow checks that a remote BBS sender blocks on the credit
// window and unblocks when DeliverAck returns credits.
func TestRemoteBBSWindow(t *testing.T) {
	cfg := EdgeConfig{ID: 2, Mode: Static, PayloadBytes: 4, Protocol: BBS, Capacity: 2}
	rt := NewRuntime()
	tx, _, err := rt.Init(cfg)
	if err != nil {
		t.Fatal(err)
	}
	link := &fakeLink{}
	if err := rt.BindRemoteSender(2, link); err != nil {
		t.Fatal(err)
	}
	pay := []byte{1, 2, 3, 4}
	for i := 0; i < 2; i++ {
		if err := tx.Send(pay); err != nil {
			t.Fatal(err)
		}
	}
	// Window full: the third send must block until a credit arrives.
	done := make(chan error, 1)
	go func() { done <- tx.Send(pay) }()
	select {
	case err := <-done:
		t.Fatalf("send beyond window returned early: %v", err)
	default:
	}
	rt.DeliverAck(2, 1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(link.data) != 3 {
		t.Fatalf("link carried %d messages, want 3", len(link.data))
	}
}

// TestRemoteSendFailure checks that a dead link surfaces as a send error.
func TestRemoteSendFailure(t *testing.T) {
	cfg := EdgeConfig{ID: 3, Mode: Static, PayloadBytes: 1, Protocol: UBS}
	rt := NewRuntime()
	tx, _, err := rt.Init(cfg)
	if err != nil {
		t.Fatal(err)
	}
	linkErr := errors.New("wire cut")
	if err := rt.BindRemoteSender(3, &fakeLink{fail: linkErr}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Send([]byte{9}); !errors.Is(err, linkErr) {
		t.Fatalf("send error = %v, want wrapped %v", err, linkErr)
	}
}

// TestRemoteBindValidation: unknown edges and double binds are rejected,
// and network input for unknown edges is dropped without panicking.
func TestRemoteBindValidation(t *testing.T) {
	rt := NewRuntime()
	link := &fakeLink{}
	if err := rt.BindRemoteSender(9, link); err == nil {
		t.Error("binding an unknown edge should fail")
	}
	if _, _, err := rt.Init(EdgeConfig{ID: 9, Mode: Static, PayloadBytes: 1, Protocol: UBS}); err != nil {
		t.Fatal(err)
	}
	if err := rt.BindRemoteSender(9, link); err != nil {
		t.Fatal(err)
	}
	if err := rt.BindRemoteSender(9, link); err == nil {
		t.Error("double bind should fail")
	}
	if err := rt.BindRemoteReceiver(9, link); err != nil {
		t.Fatal(err)
	}
	if err := rt.BindRemoteReceiver(9, link); err == nil {
		t.Error("double bind should fail")
	}
	// Unknown-edge network input is dropped, not a panic.
	rt.DeliverData(77, []byte{0, 0})
	rt.DeliverAck(77, 1)
}

// TestCloseEdgesDrainsQueueFirst: a closed remote edge still delivers its
// queued messages before reporting ErrClosed.
func TestCloseEdgesDrainsQueueFirst(t *testing.T) {
	cfg := EdgeConfig{ID: 4, Mode: Static, PayloadBytes: 2, Protocol: UBS}
	rt := NewRuntime()
	_, rx, err := rt.Init(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.BindRemoteReceiver(4, &fakeLink{}); err != nil {
		t.Fatal(err)
	}
	msg := EncodeMessage(Static, 4, []byte{7, 8})
	rt.DeliverData(4, msg)
	rt.CloseEdges([]EdgeID{4})
	got, err := rx.Receive()
	if err != nil || got[0] != 7 || got[1] != 8 {
		t.Fatalf("queued message after close: %v, %v", got, err)
	}
	if _, err := rx.Receive(); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained closed edge returns %v, want ErrClosed", err)
	}
}
