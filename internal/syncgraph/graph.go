// Package syncgraph implements the synchronization-graph model used by SPI
// to analyze and optimize the synchronization structure of self-timed
// multiprocessor implementations (paper §4, following Sriram &
// Bhattacharyya, "Embedded Multiprocessors: Scheduling and Synchronization").
//
// Given a dataflow graph and its multiprocessor schedule, the IPC graph
// G_ipc instantiates a vertex per task, connects same-processor tasks in
// execution order, adds a unit-delay loopback edge per processor, and adds
// an IPC edge for every dataflow edge that crosses processors. Each edge
// (v_j -> v_i, delay d) encodes the constraint
//
//	start(v_i, k) >= end(v_j, k - d)
//
// The synchronization graph G_s initially equals G_ipc; *redundant* edges —
// whose constraint is implied by the rest of the graph — can be removed,
// and *resynchronization* inserts new edges that render several existing
// ones redundant, reducing net synchronization cost. SPI uses this to
// eliminate redundant acknowledgement traffic of the SPI_UBS protocol on
// distributed-memory targets.
package syncgraph

import (
	"fmt"
	"sort"
	"strings"
)

// VertexID identifies a task vertex within a Graph.
type VertexID int

// EdgeKind classifies synchronization-graph edges.
type EdgeKind uint8

const (
	// IntraprocEdge sequences two tasks on the same processor. Structural:
	// never removed (the processor's program order enforces it for free).
	IntraprocEdge EdgeKind = iota
	// LoopbackEdge is the unit-delay edge from a processor's last task back
	// to its first, encoding iteration succession. Structural.
	LoopbackEdge
	// IPCEdge carries data between processors; it implies a synchronization
	// but the data transfer itself cannot be removed.
	IPCEdge
	// SyncEdge is a pure synchronization (e.g., an acknowledgement or a
	// resynchronization edge); removable when redundant.
	SyncEdge
)

func (k EdgeKind) String() string {
	switch k {
	case IntraprocEdge:
		return "intraproc"
	case LoopbackEdge:
		return "loopback"
	case IPCEdge:
		return "ipc"
	case SyncEdge:
		return "sync"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Vertex is a task in the synchronization graph.
type Vertex struct {
	// Name is a human-readable label ("Send input frame", "PE1", ...).
	Name string
	// Proc is the processor that executes the task.
	Proc int
	// ExecCycles is the task's execution time, used by throughput analysis.
	ExecCycles int64
}

// Edge is a synchronization constraint start(Snk,k) >= end(Src, k-Delay).
type Edge struct {
	Src, Snk VertexID
	// Delay in iteration units.
	Delay int64
	Kind  EdgeKind
	// Label annotates what the edge synchronizes ("frame", "ack:coeffs").
	Label string
}

// Graph is a synchronization graph. The zero value is empty and ready to
// use.
type Graph struct {
	verts []Vertex
	edges []Edge
	out   [][]int // edge indices
	in    [][]int
}

// NewGraph returns an empty synchronization graph.
func NewGraph() *Graph { return &Graph{} }

// AddVertex adds a task and returns its ID.
func (g *Graph) AddVertex(name string, proc int, execCycles int64) VertexID {
	id := VertexID(len(g.verts))
	g.verts = append(g.verts, Vertex{Name: name, Proc: proc, ExecCycles: execCycles})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge adds a synchronization edge and returns its index.
func (g *Graph) AddEdge(src, snk VertexID, delay int64, kind EdgeKind, label string) int {
	if delay < 0 {
		panic(fmt.Sprintf("syncgraph: negative delay %d on edge %s", delay, label))
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{Src: src, Snk: snk, Delay: delay, Kind: kind, Label: label})
	g.out[src] = append(g.out[src], idx)
	g.in[snk] = append(g.in[snk], idx)
	return idx
}

// NumVertices returns the number of task vertices.
func (g *Graph) NumVertices() int { return len(g.verts) }

// NumEdges returns the number of live (non-removed) edges.
func (g *Graph) NumEdges() int { return len(g.liveEdgeIndices()) }

// Vertex returns the vertex with the given ID.
func (g *Graph) Vertex(id VertexID) *Vertex { return &g.verts[id] }

// Edges returns copies of all live edges in insertion order.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, i := range g.liveEdgeIndices() {
		out = append(out, g.edges[i])
	}
	return out
}

// EdgesOfKind returns live edges of the given kind.
func (g *Graph) EdgesOfKind(kind EdgeKind) []Edge {
	var out []Edge
	for _, i := range g.liveEdgeIndices() {
		if g.edges[i].Kind == kind {
			out = append(out, g.edges[i])
		}
	}
	return out
}

// removed edges are tombstoned so indices stay stable during optimization.
const removedKind EdgeKind = 0xFF

func (g *Graph) liveEdgeIndices() []int {
	out := make([]int, 0, len(g.edges))
	for i := range g.edges {
		if g.edges[i].Kind != removedKind {
			out = append(out, i)
		}
	}
	return out
}

// removeEdge tombstones the edge at index i.
func (g *Graph) removeEdge(i int) {
	g.edges[i].Kind = removedKind
}

// Clone returns a deep copy (live edges only are semantically relevant, but
// tombstones are preserved so indices remain comparable).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		verts: append([]Vertex(nil), g.verts...),
		edges: append([]Edge(nil), g.edges...),
		out:   make([][]int, len(g.out)),
		in:    make([][]int, len(g.in)),
	}
	for i := range g.out {
		c.out[i] = append([]int(nil), g.out[i]...)
	}
	for i := range g.in {
		c.in[i] = append([]int(nil), g.in[i]...)
	}
	return c
}

// SyncCount returns the number of live edges that require run-time
// synchronization operations: IPC edges and pure sync edges. Intraprocessor
// and loopback edges are free (program order).
func (g *Graph) SyncCount() int {
	n := 0
	for _, i := range g.liveEdgeIndices() {
		if k := g.edges[i].Kind; k == IPCEdge || k == SyncEdge {
			n++
		}
	}
	return n
}

// String renders vertices and live edges, sorted, for debugging and tests.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "syncgraph: %d vertices, %d live edges\n", len(g.verts), g.NumEdges())
	lines := make([]string, 0, len(g.edges))
	for _, i := range g.liveEdgeIndices() {
		e := &g.edges[i]
		lines = append(lines, fmt.Sprintf("  %s -> %s delay=%d kind=%s label=%q",
			g.verts[e.Src].Name, g.verts[e.Snk].Name, e.Delay, e.Kind, e.Label))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l + "\n")
	}
	return b.String()
}

// DOT renders the graph in Graphviz format: solid edges for data/structure,
// dashed for pure synchronization, matching the paper's figures.
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", title)
	for i := range g.verts {
		v := &g.verts[i]
		fmt.Fprintf(&b, "  v%d [label=%q];\n", i, fmt.Sprintf("%s\\n(P%d)", v.Name, v.Proc))
	}
	for _, i := range g.liveEdgeIndices() {
		e := &g.edges[i]
		style := "solid"
		if e.Kind == SyncEdge {
			style = "dashed"
		}
		attrs := fmt.Sprintf("style=%s", style)
		if e.Delay > 0 {
			attrs += fmt.Sprintf(`, label="%d"`, e.Delay)
		}
		fmt.Fprintf(&b, "  v%d -> v%d [%s];\n", e.Src, e.Snk, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
