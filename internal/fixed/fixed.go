// Package fixed implements Q15 fixed-point arithmetic — the number format
// of the paper's FPGA datapaths. The hardware PEs compute the LPC
// prediction error with 16-bit fixed-point MACs, so a bit-true software
// model needs saturating Q15 operations: values in [-1, 1) with 15
// fractional bits, a widened Q2.30 accumulator for multiply-accumulate
// chains, and saturation (not wraparound) on overflow, as DSP datapaths
// implement.
package fixed

import "math"

// Q15 is a signed fixed-point value with 15 fractional bits: the integer n
// represents n / 32768, covering [-1, 1 - 2^-15].
type Q15 int16

// One is the largest representable Q15 value (just below +1.0).
const One Q15 = math.MaxInt16

// MinusOne is the most negative Q15 value (-1.0 exactly).
const MinusOne Q15 = math.MinInt16

const scale = 1 << 15

// FromFloat converts with round-to-nearest and saturation.
func FromFloat(f float64) Q15 {
	v := math.Round(f * scale)
	if v >= math.MaxInt16 {
		return One
	}
	if v <= math.MinInt16 {
		return MinusOne
	}
	return Q15(v)
}

// Float converts back to float64.
func (q Q15) Float() float64 { return float64(q) / scale }

// sat32 saturates a 32-bit intermediate to Q15.
func sat32(v int32) Q15 {
	if v > math.MaxInt16 {
		return One
	}
	if v < math.MinInt16 {
		return MinusOne
	}
	return Q15(v)
}

// Add returns a+b with saturation.
func Add(a, b Q15) Q15 { return sat32(int32(a) + int32(b)) }

// Sub returns a-b with saturation.
func Sub(a, b Q15) Q15 { return sat32(int32(a) - int32(b)) }

// Mul returns a*b in Q15 with rounding; the single overflow case
// (-1 x -1 = +1) saturates to One.
func Mul(a, b Q15) Q15 {
	p := int32(a) * int32(b) // Q30
	p += 1 << 14             // round
	return sat32(p >> 15)
}

// Acc is a Q17.30 multiply-accumulate register (64-bit in software, wide
// accumulator in hardware): products accumulate at full Q30 precision and
// saturate only on the final conversion, matching DSP48 usage.
type Acc int64

// MAC accumulates a*b (Q30) into the register.
func (a Acc) MAC(x, y Q15) Acc {
	return a + Acc(int64(x)*int64(y))
}

// AddQ15 accumulates a Q15 value (promoted to Q30).
func (a Acc) AddQ15(x Q15) Acc {
	return a + Acc(int64(x)<<15)
}

// Q15 converts the accumulator to Q15 with rounding and saturation.
func (a Acc) Q15() Q15 {
	v := int64(a) + (1 << 14)
	v >>= 15
	if v > math.MaxInt16 {
		return One
	}
	if v < math.MinInt16 {
		return MinusOne
	}
	return Q15(v)
}

// DotProduct computes sum(a[i]*b[i]) through the wide accumulator, the
// inner loop of the hardware error generator.
func DotProduct(a, b []Q15) Q15 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var acc Acc
	for i := 0; i < n; i++ {
		acc = acc.MAC(a[i], b[i])
	}
	return acc.Q15()
}

// FromFloats converts a slice.
func FromFloats(f []float64) []Q15 {
	out := make([]Q15, len(f))
	for i, v := range f {
		out[i] = FromFloat(v)
	}
	return out
}

// ToFloats converts a slice back.
func ToFloats(q []Q15) []float64 {
	out := make([]float64, len(q))
	for i, v := range q {
		out[i] = v.Float()
	}
	return out
}
