package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/spi"
	"repro/internal/transport"
)

const testGraph = `graph pipeline
actor src 100
actor mid 150
actor sink 50
edge sm src mid 4 4 bytes=2 delay=4
edge ms mid sink 4 4 bytes=2 dynamic
`

func parseTestGraph(t *testing.T) *dataflow.Graph {
	t.Helper()
	g, err := dataflow.Parse(strings.NewReader(testGraph))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func digestLines(out string) []string {
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "digest ") {
			lines = append(lines, l)
		}
	}
	return lines
}

// TestTwoNodesMatchSingle is the spinode end-to-end: the pipeline graph
// run on one node must produce the same sink digests as the same graph
// split across two spinode partitions talking TCP on localhost.
func TestTwoNodesMatchSingle(t *testing.T) {
	const iters = 12
	base := nodeConfig{
		Graph:      parseTestGraph(t),
		Assign:     []int{0, 1, 1},
		Iterations: iters,
		Seed:       7,
	}

	// Single node hosting both processors.
	single := base
	single.NodeOf = []int{0, 0}
	single.Addrs = []string{"only"}
	var singleOut bytes.Buffer
	if err := runNode(single, transport.NewLoopback(), nil, &singleOut); err != nil {
		t.Fatal(err)
	}
	want := digestLines(singleOut.String())
	if len(want) != 1 {
		t.Fatalf("single-node run printed %d digest lines:\n%s", len(want), singleOut.String())
	}

	// Two nodes over TCP localhost (node 1 dials node 0, so only node 0
	// needs a listener; its ephemeral port is shared via Addrs).
	tr := &transport.TCP{}
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr(), "unused"}
	graphs := [2]*dataflow.Graph{parseTestGraph(t), parseTestGraph(t)}
	var outs [2]bytes.Buffer
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			cfg := base
			cfg.Graph = graphs[node]
			cfg.NodeOf = []int{0, 1}
			cfg.Addrs = addrs
			cfg.Node = node
			var lnArg transport.Listener
			if node == 0 {
				lnArg = ln
			}
			errs[node] = runNode(cfg, tr, lnArg, &outs[node])
		}(node)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v\n%s", node, err, outs[node].String())
		}
	}
	var got []string
	for node := range outs {
		got = append(got, digestLines(outs[node].String())...)
	}
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("digests differ:\nsingle: %v\ndistributed: %v", want, got)
	}
}

func TestBuildMapping(t *testing.T) {
	g := parseTestGraph(t)
	m, err := buildMapping(g, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumProcs != 2 || len(m.Order[0]) != 1 || len(m.Order[1]) != 2 {
		t.Fatalf("mapping = %+v", m)
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]int{
		{0, 1},     // wrong length
		{0, -1, 0}, // negative
		{0, 2, 2},  // processor 1 empty
	} {
		if _, err := buildMapping(g, bad); err == nil {
			t.Errorf("assignment %v should be rejected", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("0, 1,2")
	if err != nil || len(got) != 3 || got[2] != 2 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "1,,2"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) should fail", bad)
		}
	}
}

// loadPipelineSDF parses the real examples/graphs/pipeline.sdf so the
// chaos harness exercises the shipped walkthrough graph, not a copy.
func loadPipelineSDF(t *testing.T) *dataflow.Graph {
	t.Helper()
	f, err := os.Open("../../examples/graphs/pipeline.sdf")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := dataflow.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runTwoNodes runs the two-node split of graph-building fn over tr and
// returns both nodes' outputs and errors. A watchdog bounds the run so a
// failed recovery cannot hang the suite.
func runTwoNodes(t *testing.T, newGraph func(t *testing.T) *dataflow.Graph, tr transport.Transport,
	iters int, rc transport.ReconnectConfig, degrade bool, block int, resync bool) ([2]*bytes.Buffer, [2]error) {
	t.Helper()
	ln, err := tr.Listen("chaos-node0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr(), "unused"}
	outs := [2]*bytes.Buffer{{}, {}}
	var errs [2]error
	var wg sync.WaitGroup
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			cfg := nodeConfig{
				Graph:      newGraph(t),
				Assign:     []int{0, 1, 1},
				NodeOf:     []int{0, 1},
				Addrs:      addrs,
				Node:       node,
				Iterations: iters,
				Seed:       7,
				Reconnect:  rc,
				Degrade:    degrade,
				Block:      block,
				Resync:     resync,
			}
			var lnArg transport.Listener
			if node == 0 {
				lnArg = ln
			}
			errs[node] = runNode(cfg, tr, lnArg, outs[node])
		}(node)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("two-node spinode run wedged")
	}
	return outs, errs
}

// TestPipelineChaosRecovers runs the shipped pipeline.sdf two-node split
// under seeded fault schedules that link resumption can repair and checks
// the sink digest stays bit-identical to the fault-free single-node run.
func TestPipelineChaosRecovers(t *testing.T) {
	const iters = 40
	single := nodeConfig{
		Graph:      loadPipelineSDF(t),
		Assign:     []int{0, 1, 1},
		NodeOf:     []int{0, 0},
		Addrs:      []string{"only"},
		Iterations: iters,
		Seed:       7,
	}
	var ref bytes.Buffer
	if err := runNode(single, transport.NewLoopback(), nil, &ref); err != nil {
		t.Fatal(err)
	}
	want := digestLines(ref.String())
	if len(want) != 1 {
		t.Fatalf("single-node run printed %d digest lines:\n%s", len(want), ref.String())
	}
	rc := transport.ReconnectConfig{Attempts: 50, BaseDelay: time.Millisecond,
		MaxDelay: 5 * time.Millisecond, Deadline: 20 * time.Second}
	for _, spec := range []string{
		"seed=11,drop=0.05,skip=6,maxfaults=25",
		"seed=12,corrupt=0.05,skip=6,maxfaults=25",
		"seed=13,severat=9;31,skip=6",
	} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			fc, err := transport.ParseFaultSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			ft := transport.NewFaultTransport(transport.NewLoopback(), fc)
			outs, errs := runTwoNodes(t, loadPipelineSDF, ft, iters, rc, false, 0, false)
			for node, err := range errs {
				if err != nil {
					t.Fatalf("node %d: %v (faults: %+v)\n%s", node, err, ft.Stats(), outs[node].String())
				}
			}
			got := append(digestLines(outs[0].String()), digestLines(outs[1].String())...)
			if len(got) != 1 || got[0] != want[0] {
				t.Errorf("digests diverged under %s:\nwant %v\ngot  %v (faults: %+v)",
					spec, want, got, ft.Stats())
			}
		})
	}
}

// TestPipelineBlockedMatchesSingle: running the shipped pipeline.sdf with
// -block must leave the sink digest bit-identical to the scalar
// single-node run. The graph mixes both edge classes: sm's one-iteration
// delay never aligns with a block above 1 (token-granular), ms packs
// slabs.
func TestPipelineBlockedMatchesSingle(t *testing.T) {
	const iters = 40
	single := nodeConfig{
		Graph:      loadPipelineSDF(t),
		Assign:     []int{0, 1, 1},
		NodeOf:     []int{0, 0},
		Addrs:      []string{"only"},
		Iterations: iters,
		Seed:       7,
	}
	var ref bytes.Buffer
	if err := runNode(single, transport.NewLoopback(), nil, &ref); err != nil {
		t.Fatal(err)
	}
	want := digestLines(ref.String())
	if len(want) != 1 {
		t.Fatalf("single-node run printed %d digest lines:\n%s", len(want), ref.String())
	}
	for _, block := range []int{2, 4, 7} { // 7 leaves a partial final block of 5
		outs, errs := runTwoNodes(t, loadPipelineSDF, transport.NewLoopback(), iters,
			transport.ReconnectConfig{}, false, block, false)
		for node, err := range errs {
			if err != nil {
				t.Fatalf("block %d node %d: %v\n%s", block, node, err, outs[node].String())
			}
		}
		got := append(digestLines(outs[0].String()), digestLines(outs[1].String())...)
		if len(got) != 1 || got[0] != want[0] {
			t.Errorf("block %d digests diverged:\nwant %v\ngot  %v", block, want, got)
		}
	}
}

// TestPipelineBlockedChaosRecovers severs the link mid-run while blocked:
// slab replay across the resumption must keep the digest bit-identical.
func TestPipelineBlockedChaosRecovers(t *testing.T) {
	const iters = 40
	single := nodeConfig{
		Graph:      loadPipelineSDF(t),
		Assign:     []int{0, 1, 1},
		NodeOf:     []int{0, 0},
		Addrs:      []string{"only"},
		Iterations: iters,
		Seed:       7,
	}
	var ref bytes.Buffer
	if err := runNode(single, transport.NewLoopback(), nil, &ref); err != nil {
		t.Fatal(err)
	}
	want := digestLines(ref.String())
	rc := transport.ReconnectConfig{Attempts: 50, BaseDelay: time.Millisecond,
		MaxDelay: 5 * time.Millisecond, Deadline: 20 * time.Second}
	fc, err := transport.ParseFaultSpec("seed=31,severat=7;19,skip=4")
	if err != nil {
		t.Fatal(err)
	}
	ft := transport.NewFaultTransport(transport.NewLoopback(), fc)
	outs, errs := runTwoNodes(t, loadPipelineSDF, ft, iters, rc, false, 4, false)
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v (faults: %+v)\n%s", node, err, ft.Stats(), outs[node].String())
		}
	}
	got := append(digestLines(outs[0].String()), digestLines(outs[1].String())...)
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("blocked chaos digests diverged:\nwant %v\ngot  %v (faults: %+v)", want, got, ft.Stats())
	}
}

// TestPipelineResyncChaosRecovers runs pipeline.sdf under chaos with
// -resync on both nodes. The graph's only cross-node edge (sm) is static,
// so the suppression set is empty on both sides, neither advertises the
// resync capability, and the link falls back to full acking — the test
// pins that an empty verdict degrades to exactly the unoptimized wire
// behavior with a bit-identical digest across drops and severs.
func TestPipelineResyncChaosRecovers(t *testing.T) {
	const iters = 40
	single := nodeConfig{
		Graph:      loadPipelineSDF(t),
		Assign:     []int{0, 1, 1},
		NodeOf:     []int{0, 0},
		Addrs:      []string{"only"},
		Iterations: iters,
		Seed:       7,
	}
	var ref bytes.Buffer
	if err := runNode(single, transport.NewLoopback(), nil, &ref); err != nil {
		t.Fatal(err)
	}
	want := digestLines(ref.String())
	if len(want) != 1 {
		t.Fatalf("single-node run printed %d digest lines:\n%s", len(want), ref.String())
	}
	rc := transport.ReconnectConfig{Attempts: 50, BaseDelay: time.Millisecond,
		MaxDelay: 5 * time.Millisecond, Deadline: 20 * time.Second}
	for _, spec := range []string{
		"seed=41,drop=0.05,skip=6,maxfaults=25",
		"seed=42,severat=9;31,skip=6",
	} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			fc, err := transport.ParseFaultSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			ft := transport.NewFaultTransport(transport.NewLoopback(), fc)
			outs, errs := runTwoNodes(t, loadPipelineSDF, ft, iters, rc, false, 0, true)
			for node, err := range errs {
				if err != nil {
					t.Fatalf("node %d: %v (faults: %+v)\n%s", node, err, ft.Stats(), outs[node].String())
				}
			}
			got := append(digestLines(outs[0].String()), digestLines(outs[1].String())...)
			if len(got) != 1 || got[0] != want[0] {
				t.Errorf("digests diverged under %s with -resync:\nwant %v\ngot  %v (faults: %+v)",
					spec, want, got, ft.Stats())
			}
			for node := 0; node < 2; node++ {
				for _, line := range strings.Split(outs[node].String(), "\n") {
					if strings.Contains(line, "suppressed") && !strings.HasSuffix(line, " 0 suppressed") {
						t.Errorf("node %d reported suppressed acks on a graph with no suppressible edges: %q",
							node, line)
					}
				}
			}
		})
	}
}

// TestPipelineDegradedExit severs the inter-node link permanently: with
// -degrade semantics both nodes must finish, print partial digests plus a
// per-peer failure summary, and return a DegradedError (exit status 3).
func TestPipelineDegradedExit(t *testing.T) {
	fc, err := transport.ParseFaultSpec("seed=21,severat=15,skip=6,denydials=1")
	if err != nil {
		t.Fatal(err)
	}
	ft := transport.NewFaultTransport(transport.NewLoopback(), fc)
	rc := transport.ReconnectConfig{Attempts: 4, BaseDelay: time.Millisecond,
		MaxDelay: 2 * time.Millisecond, Deadline: 500 * time.Millisecond}
	outs, errs := runTwoNodes(t, loadPipelineSDF, ft, 200, rc, true, 0, false)
	for node, err := range errs {
		var de *spi.DegradedError
		if !errors.As(err, &de) {
			t.Fatalf("node %d: err = %v, want *spi.DegradedError\n%s", node, err, outs[node].String())
		}
		out := outs[node].String()
		if node == 1 && !strings.Contains(out, "partial-digest sink") {
			t.Errorf("node 1 printed no partial sink digest:\n%s", out)
		}
		other := 1 - node
		if !strings.Contains(out, fmt.Sprintf("peer node %d at", other)) {
			t.Errorf("node %d summary does not name peer %d:\n%s", node, other, out)
		}
		if !strings.Contains(out, "degraded: node") {
			t.Errorf("node %d printed no degradation summary:\n%s", node, out)
		}
	}
}

// TestConnectFailureNamesPeer checks the -connect-timeout satellite: an
// unreachable peer fails fast with a message naming the peer and address
// rather than a bare handshake timeout.
func TestConnectFailureNamesPeer(t *testing.T) {
	cfg := nodeConfig{
		Graph:          parseTestGraph(t),
		Assign:         []int{0, 1, 1},
		NodeOf:         []int{0, 1},
		Addrs:          []string{"nobody-home", "unused"},
		Node:           1,
		Iterations:     5,
		Seed:           7,
		ConnectTimeout: 200 * time.Millisecond,
	}
	var out bytes.Buffer
	err := runNode(cfg, transport.NewLoopback(), nil, &out)
	if err == nil {
		t.Fatal("run with an unreachable peer succeeded")
	}
	if !strings.Contains(err.Error(), "could not reach node 0 at nobody-home") {
		t.Errorf("err = %v, want a could-not-reach message naming peer and address", err)
	}
}
