package demo

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/dataflow"
	"repro/internal/spi"
)

// PartSinks accumulates the sink digest contributions of one execution
// epoch. The per-iteration fold is XOR of an iteration-salted product, so
// contributions are order-independent and compose across epochs, workers,
// and re-executions: XOR-ing every committed epoch's contribution equals
// the digest of the unpartitioned run.
type PartSinks struct {
	mu      sync.Mutex
	digests map[string]uint64
}

// Take snapshots and resets the accumulated contributions — called once
// per completed epoch, so an aborted epoch's partial contributions are
// discarded by the next Take's caller simply never committing them.
func (s *PartSinks) Take() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.digests
	s.digests = map[string]uint64{}
	return out
}

// PartKernels builds the deterministic demo kernels for one partition
// spec, byte-identical to Kernels over the full graph: the hash folds the
// graph name, actor name, global iteration, seed, and every input edge in
// ascending edge-ID order, and outputs are xorshift-filled from the same
// per-edge seeds. Actors with no output edges fold into sinks. Because
// every PartActor carries its complete edge lists, sink detection and
// input ordering need no graph.
func PartKernels(spec *spi.PartitionSpec, seed uint64) (map[string]spi.Kernel, *PartSinks) {
	edges := map[uint16]*spi.PartEdge{}
	for i := range spec.Edges {
		edges[spec.Edges[i].ID] = &spec.Edges[i]
	}
	sinks := &PartSinks{digests: map[string]uint64{}}
	kernels := map[string]spi.Kernel{}
	for pi := range spec.Procs {
		for ai := range spec.Procs[pi].Actors {
			a := &spec.Procs[pi].Actors[ai]
			name := a.Name
			ins := append([]uint16(nil), a.In...)
			sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
			outs := a.Out
			kernels[name] = func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
				h := fnv.New64a()
				fmt.Fprintf(h, "%s|%s|%d|%d", spec.Graph, name, iter, seed)
				for _, id := range ins {
					fmt.Fprintf(h, "|%s:", edges[id].Name)
					h.Write(in[dataflow.EdgeID(id)])
				}
				state := h.Sum64()
				if len(outs) == 0 {
					sinks.mu.Lock()
					sinks.digests[name] ^= state * uint64(iter*2654435761+1)
					sinks.mu.Unlock()
					return nil, nil
				}
				out := map[dataflow.EdgeID][]byte{}
				for _, id := range outs {
					e := edges[id]
					n := int(e.Bytes)
					if e.Mode == uint8(spi.Dynamic) && n > 1 {
						n = 1 + int(state%uint64(n))
					}
					buf := make([]byte, n)
					s := state ^ uint64(id)
					for i := range buf {
						s ^= s << 13
						s ^= s >> 7
						s ^= s << 17
						buf[i] = byte(s)
					}
					out[dataflow.EdgeID(id)] = buf
				}
				return out, nil
			}
		}
	}
	return kernels, sinks
}
