// Package platform implements a deterministic discrete-event simulator of a
// multi-PE (processing element) platform, substituting for the Xilinx
// Virtex-4 FPGA testbed of the paper's evaluation.
//
// Each PE executes a compile-time program — a sequence of compute, send and
// receive operations repeated for a number of graph iterations — in the
// self-timed style: an operation starts as soon as its processor and its
// data are available. Point-to-point channels model the on-chip
// interconnect with per-message header cost, bandwidth-proportional
// serialization, and fixed link latency. Bounded channels exert
// back-pressure (the SPI_BBS protocol); unbounded channels instead generate
// acknowledgement traffic (SPI_UBS).
//
// The simulator is cycle-denominated and fully deterministic: identical
// inputs produce identical timelines.
package platform

import (
	"fmt"
)

// Time is a simulation timestamp in PE clock cycles.
type Time int64

// MsgKind classifies simulated messages for accounting.
type MsgKind uint8

const (
	// DataMsg carries application payload.
	DataMsg MsgKind = iota
	// AckMsg is a UBS acknowledgement.
	AckMsg
	// SyncMsg is a pure synchronization message (resynchronization edges).
	SyncMsg
	// CtrlMsg is protocol control traffic (e.g., MPI rendezvous RTS/CTS).
	CtrlMsg
	numMsgKinds
)

func (k MsgKind) String() string {
	switch k {
	case DataMsg:
		return "data"
	case AckMsg:
		return "ack"
	case SyncMsg:
		return "sync"
	case CtrlMsg:
		return "ctrl"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// ChannelID identifies a channel within a Sim.
type ChannelID int

// ChannelSpec configures one point-to-point channel.
type ChannelSpec struct {
	// From and To are PE indices.
	From, To int
	// Name labels the channel in stats and errors.
	Name string
	// HeaderBytes is the per-message header size on the wire. SPI_static
	// uses 2 (edge ID), SPI_dynamic 6 (edge ID + size), the MPI baseline
	// more.
	HeaderBytes int
	// Capacity bounds the number of in-flight-or-queued messages. Zero
	// means unbounded (SPI_UBS); positive engages back-pressure (SPI_BBS).
	Capacity int
	// AckBytes, when positive, makes the receiver send an acknowledgement
	// of that payload size after consuming each message (UBS consistency
	// traffic). The sender does not block on acks; they cost receiver send
	// time and wire bytes.
	AckBytes int
	// Preload seeds the channel with that many zero-time messages before
	// the run — the initial tokens (delays) of a dataflow edge. Preloaded
	// messages consume BBS capacity and are not counted in traffic stats.
	Preload int
	// PreloadBytes is the payload size attributed to preloaded messages.
	PreloadBytes int
}

// OpKind enumerates program operations.
type OpKind uint8

const (
	// OpCompute busy-spins the PE for a cycle count.
	OpCompute OpKind = iota
	// OpSend transmits one message on a channel.
	OpSend
	// OpRecv consumes one message from a channel.
	OpRecv
)

// Op is one program step.
type Op struct {
	Kind OpKind
	// Cycles is the duration of OpCompute. May be a function of the
	// iteration via CyclesFn; Cycles is used when CyclesFn is nil.
	Cycles int64
	// CyclesFn, if set, supplies per-iteration compute cost.
	CyclesFn func(iter int) int64
	// Ch is the channel of OpSend/OpRecv.
	Ch ChannelID
	// Bytes is the payload size of OpSend. BytesFn overrides per iteration
	// (dynamic-size sends, the SPI_dynamic case).
	Bytes   int
	BytesFn func(iter int) int
	// Kind2 is the message kind for OpSend (DataMsg by default).
	MsgKind MsgKind
}

// Compute returns an OpCompute with fixed cost.
func Compute(cycles int64) Op { return Op{Kind: OpCompute, Cycles: cycles} }

// ComputeFn returns an OpCompute with per-iteration cost.
func ComputeFn(f func(iter int) int64) Op { return Op{Kind: OpCompute, CyclesFn: f} }

// Send returns an OpSend with fixed payload size.
func Send(ch ChannelID, bytes int) Op { return Op{Kind: OpSend, Ch: ch, Bytes: bytes} }

// SendFn returns an OpSend with per-iteration payload size.
func SendFn(ch ChannelID, f func(iter int) int) Op {
	return Op{Kind: OpSend, Ch: ch, BytesFn: f}
}

// SendKind returns an OpSend with an explicit message kind (sync messages).
func SendKind(ch ChannelID, bytes int, kind MsgKind) Op {
	return Op{Kind: OpSend, Ch: ch, Bytes: bytes, MsgKind: kind}
}

// Recv returns an OpRecv.
func Recv(ch ChannelID) Op { return Op{Kind: OpRecv, Ch: ch} }

// Program is a PE's per-iteration operation sequence.
type Program []Op

// Config configures the platform.
type Config struct {
	// NumPEs is the number of processing elements.
	NumPEs int
	// ClockHz converts cycles to seconds in reports. The paper targets a
	// Virtex-4 at (well under) 500 MHz; 100 MHz is the default.
	ClockHz float64
	// LinkLatencyCycles is the fixed wire latency per message.
	LinkLatencyCycles int64
	// CyclesPerByte is the serialization cost per payload/header byte.
	// With a 32-bit datapath at one word per cycle, 0.25; we use integer
	// math: cycles = (bytes*CyclesPerByteNum + Den - 1) / Den.
	CyclesPerByteNum, CyclesPerByteDen int64
	// SendOverheadCycles is the per-message sender-side protocol cost
	// (header formation, handshake initiation).
	SendOverheadCycles int64
	// RecvOverheadCycles is the per-message receiver-side protocol cost.
	RecvOverheadCycles int64
}

// DefaultConfig returns a 100 MHz platform with a 32-bit, 1-word-per-cycle
// interconnect and small per-message overheads.
func DefaultConfig(numPEs int) Config {
	return Config{
		NumPEs:             numPEs,
		ClockHz:            100e6,
		LinkLatencyCycles:  4,
		CyclesPerByteNum:   1,
		CyclesPerByteDen:   4,
		SendOverheadCycles: 2,
		RecvOverheadCycles: 2,
	}
}

// Stats aggregates a simulation run.
type Stats struct {
	// Finish is the completion time of the whole run.
	Finish Time
	// IterationFinish is the completion time of each iteration (max over
	// PEs of the iteration's last op).
	IterationFinish []Time
	// Messages and Bytes count wire traffic by kind.
	Messages [numMsgKinds]int64
	Bytes    [numMsgKinds]int64
	// PEBusy is per-PE busy time (compute + send/recv overheads).
	PEBusy []Time
	// MaxQueued is the maximum simultaneous queued messages per channel —
	// the observed buffer demand, comparable to the VTS bound.
	MaxQueued []int
}

// Microseconds converts a simulated time to microseconds at the configured
// clock.
func (s *Stats) Microseconds(cfg Config, t Time) float64 {
	return float64(t) / cfg.ClockHz * 1e6
}

// TotalMessages sums message counts across kinds.
func (s *Stats) TotalMessages() int64 {
	var n int64
	for _, v := range s.Messages {
		n += v
	}
	return n
}

// TotalBytes sums byte counts across kinds.
func (s *Stats) TotalBytes() int64 {
	var n int64
	for _, v := range s.Bytes {
		n += v
	}
	return n
}
