package lpc

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/dsp"
	"repro/internal/sched"
	"repro/internal/spi"
)

// Automatic fission of actor D: where deploy.go hand-builds the paper's
// n-PE error-generation system, this file starts from the SERIAL pipeline
// (io_send -> error_gen -> io_recv) and lets dataflow.Fission derive the
// data-parallel deployment — k replicas behind scatter/gather stages — so
// the LPC residual workload exercises the rewrite end to end. The frame
// and coefficients are broadcast (each replica's range needs up to Order
// samples of history from before its split point, and the full frame is
// the simplest superset), while the error stream is split on float64
// tokens: replica r computes ResidualRange over its dataflow.SplitCounts
// share, so the gather's concatenation is bit-identical to the serial
// Residual — uneven tails included.

// SerialErrorGenSystem builds the unfissioned actor-D pipeline: the I/O
// interface scatters nothing — one worker actor receives the predictor
// coefficients and the whole frame and returns the whole error signal.
// Feed it to dataflow.Fission to derive the parallel deployments.
func SerialErrorGenSystem(p DeployParams) (*spi.System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := dataflow.New(fmt.Sprintf("actorD-serial-N%d", p.SampleSize))
	ioSend := g.AddActor("io_send", int64(p.SampleSize)+100)
	d := g.AddActor("error_gen", int64(p.SampleSize)*int64(p.Order)*p.MACCyclesPerTap+50)
	ioRecv := g.AddActor("io_recv", 50)

	coeffBytes := p.Order * p.SampleBytes
	frameBytes := p.SampleSize * p.SampleBytes
	dyn := func(tokenBytes int) dataflow.EdgeSpec {
		return dataflow.EdgeSpec{ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: tokenBytes}
	}
	ce := g.AddEdge("coeffs", ioSend, d, coeffBytes, coeffBytes, dyn(1))
	fe := g.AddEdge("frame", ioSend, d, frameBytes, frameBytes, dyn(p.SampleBytes))
	ee := g.AddEdge("errs", d, ioRecv, frameBytes, frameBytes, dyn(p.SampleBytes))

	m := &sched.Mapping{
		NumProcs: 2,
		Proc:     make([]sched.Processor, g.NumActors()),
		Order:    make([][]dataflow.ActorID, 2),
	}
	m.Proc[ioSend], m.Proc[ioRecv] = 0, 0
	m.Proc[d] = 1
	m.Order[0] = []dataflow.ActorID{ioSend, ioRecv}
	m.Order[1] = []dataflow.ActorID{d}
	return &spi.System{
		Graph: g, Mapping: m,
		PayloadFn: map[dataflow.EdgeID]func(int) int{
			ce: func(int) int { return coeffBytes },
			fe: func(int) int { return frameBytes },
			ee: func(int) int { return frameBytes },
		},
	}, nil
}

// FissionSystem is a fissioned serial error-generation deployment: the
// rewritten graph with its extended mapping, ready for any executor.
type FissionSystem struct {
	Plan    *dataflow.FissionPlan
	Mapping *sched.Mapping
	Params  DeployParams
}

// FissionErrorGenSystem derives the k-replica deployment of the serial
// pipeline via the fission pass. k = 0 lets the pass choose replica count
// and block factor jointly under memBound (0 = unbounded).
func FissionErrorGenSystem(p DeployParams, k int, memBound int64) (*FissionSystem, error) {
	sys, err := SerialErrorGenSystem(p)
	if err != nil {
		return nil, err
	}
	d, ok := sys.Graph.ActorByName("error_gen")
	if !ok {
		return nil, fmt.Errorf("lpc: serial system has no error_gen actor")
	}
	plan, err := dataflow.Fission(sys.Graph, d, dataflow.FissionOptions{K: k, MemBound: memBound})
	if err != nil {
		return nil, err
	}
	fm, err := sched.ExtendFission(sys.Mapping, plan)
	if err != nil {
		return nil, err
	}
	return &FissionSystem{Plan: plan, Mapping: fm, Params: p}, nil
}

// serialResidualKernels builds the functional kernels of the serial
// pipeline. The worker computes the full-frame residual; collect observes
// each assembled frame on the node hosting io_recv.
func serialResidualKernels(g *dataflow.Graph, model *dsp.LPCModel, frame []float64, collect func([]float64)) (map[dataflow.ActorID]spi.Kernel, error) {
	ids, err := serialEdgeIDs(g)
	if err != nil {
		return nil, err
	}
	ioSend, _ := g.ActorByName("io_send")
	d, _ := g.ActorByName("error_gen")
	ioRecv, _ := g.ActorByName("io_recv")
	return map[dataflow.ActorID]spi.Kernel{
		ioSend: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			return map[dataflow.EdgeID][]byte{
				ids.coeffs: encodeFloats(model.Coeffs),
				ids.frame:  encodeFloats(frame),
			}, nil
		},
		d: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			coeffs, err := decodeFloats(in[ids.coeffs])
			if err != nil {
				return nil, err
			}
			x, err := decodeFloats(in[ids.frame])
			if err != nil {
				return nil, err
			}
			wm := &dsp.LPCModel{Coeffs: coeffs}
			return map[dataflow.EdgeID][]byte{ids.errs: encodeFloats(wm.Residual(x))}, nil
		},
		ioRecv: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			e, err := decodeFloats(in[ids.errs])
			if err != nil {
				return nil, err
			}
			collect(e)
			return nil, nil
		},
	}, nil
}

type serialEdges struct {
	coeffs, frame, errs dataflow.EdgeID
}

func serialEdgeIDs(g *dataflow.Graph) (serialEdges, error) {
	var ids serialEdges
	found := 0
	for _, eid := range g.Edges() {
		switch g.Edge(eid).Name {
		case "coeffs":
			ids.coeffs, found = eid, found+1
		case "frame":
			ids.frame, found = eid, found+1
		case "errs":
			ids.errs, found = eid, found+1
		}
	}
	if found != 3 {
		return ids, fmt.Errorf("lpc: serial graph lacks coeffs/frame/errs edges")
	}
	return ids, nil
}

// FissionResidualKernels builds the kernel set of a fissioned deployment:
// the serial kernels plus a FissionWorker in which replica r computes
// ResidualRange over its SplitCounts share of the frame — 1/k of the
// multiply-accumulate work, against the broadcast frame for history.
func FissionResidualKernels(fs *FissionSystem, model *dsp.LPCModel, frame []float64, collect func([]float64)) (map[dataflow.ActorID]spi.Kernel, error) {
	src := fs.Plan.Source
	serial, err := serialResidualKernels(src, model, frame, collect)
	if err != nil {
		return nil, err
	}
	ids, err := serialEdgeIDs(src)
	if err != nil {
		return nil, err
	}
	k := fs.Plan.K
	worker := func(iter, replica int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
		coeffs, err := decodeFloats(in[ids.coeffs])
		if err != nil {
			return nil, err
		}
		x, err := decodeFloats(in[ids.frame])
		if err != nil {
			return nil, err
		}
		counts := dataflow.SplitCounts(len(x), k)
		start := 0
		for i := 0; i < replica; i++ {
			start += counts[i]
		}
		wm := &dsp.LPCModel{Coeffs: coeffs}
		part := wm.ResidualRange(x, start, start+counts[replica])
		return map[dataflow.EdgeID][]byte{ids.errs: encodeFloats(part)}, nil
	}
	return spi.FissionKernels(fs.Plan, serial, worker)
}

// SerialResidual runs this node's share of the UNfissioned serial pipeline
// distributed over opts.Addrs — the baseline the fissioned deployment is
// benchmarked against. The node hosting io_recv returns the last frame's
// residual.
func SerialResidual(model *dsp.LPCModel, frame []float64, iters int, opts spi.DistOptions) ([]float64, *spi.ExecStats, error) {
	p := DefaultDeploy(len(frame), 1)
	p.SampleBytes = 8
	sys, err := SerialErrorGenSystem(p)
	if err != nil {
		return nil, nil, err
	}
	if opts.NodeOf == nil {
		opts.NodeOf = SplitIOWorkers(sys.Mapping.NumProcs, len(opts.Addrs))
	}
	var result []float64
	kernels, err := serialResidualKernels(sys.Graph, model, frame, func(e []float64) { result = e })
	if err != nil {
		return nil, nil, err
	}
	st, err := spi.ExecuteDistributed(sys.Graph, sys.Mapping, kernels, iters, opts)
	if err != nil {
		return nil, nil, err
	}
	return result, st, nil
}

// FissionResidual fissions the serial pipeline into k replicas and runs
// this node's share distributed over opts.Addrs. opts.NodeOf defaults to
// SplitIOWorkers over the extended mapping (I/O on node 0, scatter/gather
// and replicas spread over the rest). The node hosting io_recv returns the
// last frame's residual — bit-identical to the serial pipeline's.
func FissionResidual(model *dsp.LPCModel, frame []float64, k, iters int, opts spi.DistOptions) ([]float64, *spi.ExecStats, error) {
	p := DefaultDeploy(len(frame), 1)
	p.SampleBytes = 8
	fs, err := FissionErrorGenSystem(p, k, 0)
	if err != nil {
		return nil, nil, err
	}
	if opts.NodeOf == nil {
		opts.NodeOf = SplitIOWorkers(fs.Mapping.NumProcs, len(opts.Addrs))
	}
	var result []float64
	kernels, err := FissionResidualKernels(fs, model, frame, func(e []float64) { result = e })
	if err != nil {
		return nil, nil, err
	}
	st, err := spi.ExecuteDistributed(fs.Plan.Graph, fs.Mapping, kernels, iters, opts)
	if err != nil {
		return nil, nil, err
	}
	return result, st, nil
}
