package spi

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStaticWireRoundtrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4}
	msg := EncodeMessage(Static, 7, payload)
	if len(msg) != StaticHeaderBytes+4 {
		t.Fatalf("wire length %d, want %d", len(msg), StaticHeaderBytes+4)
	}
	id, got, err := DecodeStatic(msg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || !bytes.Equal(got, payload) {
		t.Errorf("decoded id=%d payload=%v", id, got)
	}
}

func TestDynamicWireRoundtrip(t *testing.T) {
	payload := []byte{9, 8, 7}
	msg := EncodeMessage(Dynamic, 300, payload)
	if len(msg) != DynamicHeaderBytes+3 {
		t.Fatalf("wire length %d, want %d", len(msg), DynamicHeaderBytes+3)
	}
	id, got, err := DecodeDynamic(msg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if id != 300 || !bytes.Equal(got, payload) {
		t.Errorf("decoded id=%d payload=%v", id, got)
	}
}

func TestDynamicHeaderIsLargerThanStatic(t *testing.T) {
	// The paper's design point: static edges save the size field.
	if DynamicHeaderBytes <= StaticHeaderBytes {
		t.Error("dynamic header should cost more than static")
	}
	if HeaderBytes(Static) != StaticHeaderBytes || HeaderBytes(Dynamic) != DynamicHeaderBytes {
		t.Error("HeaderBytes mapping wrong")
	}
}

func TestDecodeStaticErrors(t *testing.T) {
	if _, _, err := DecodeStatic([]byte{1}, 0); err == nil {
		t.Error("short message should fail")
	}
	msg := EncodeMessage(Static, 1, []byte{1, 2})
	if _, _, err := DecodeStatic(msg, 3); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestDecodeDynamicErrors(t *testing.T) {
	if _, _, err := DecodeDynamic([]byte{1, 2, 3}, 10); err == nil {
		t.Error("short message should fail")
	}
	msg := EncodeMessage(Dynamic, 1, make([]byte, 8))
	if _, _, err := DecodeDynamic(msg, 4); err == nil {
		t.Error("bound violation should fail")
	}
	// Corrupt the size field.
	msg[2] = 99
	if _, _, err := DecodeDynamic(msg, 1000); err == nil {
		t.Error("header/body mismatch should fail")
	}
}

func TestModeString(t *testing.T) {
	if Static.String() != "SPI_static" || Dynamic.String() != "SPI_dynamic" {
		t.Errorf("mode strings: %s %s", Static, Dynamic)
	}
}

func TestProtocolString(t *testing.T) {
	if BBS.String() != "SPI_BBS" || UBS.String() != "SPI_UBS" {
		t.Errorf("protocol strings: %s %s", BBS, UBS)
	}
}

func TestWireRoundtripProperty(t *testing.T) {
	f := func(seed int64, id uint16, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		payload := make([]byte, int(n))
		r.Read(payload)
		// static
		sid, sp, err := DecodeStatic(EncodeMessage(Static, EdgeID(id), payload), len(payload))
		if err != nil || sid != EdgeID(id) || !bytes.Equal(sp, payload) {
			return false
		}
		// dynamic
		did, dp, err := DecodeDynamic(EncodeMessage(Dynamic, EdgeID(id), payload), 255)
		if err != nil || did != EdgeID(id) || !bytes.Equal(dp, payload) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
