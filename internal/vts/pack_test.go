package vts

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackHeaderRoundtrip(t *testing.T) {
	p := NewPacker(64, HeaderFraming)
	u := NewUnpacker(64, HeaderFraming)
	for _, payload := range [][]byte{nil, {1}, {0x7E, 0x7D, 0xFF}, bytes.Repeat([]byte{9}, 64)} {
		msg, err := p.Pack(payload)
		if err != nil {
			t.Fatalf("Pack(%v): %v", payload, err)
		}
		got, err := u.Unpack(msg)
		if err != nil {
			t.Fatalf("Unpack: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("roundtrip: got %v, want %v", got, payload)
		}
	}
}

func TestPackUnpackDelimiterRoundtrip(t *testing.T) {
	p := NewPacker(64, DelimiterFraming)
	u := NewUnpacker(64, DelimiterFraming)
	for _, payload := range [][]byte{nil, {1}, {0x7E}, {0x7D}, {0x7E, 0x7D, 0x7E}, bytes.Repeat([]byte{0x7E}, 64)} {
		msg, err := p.Pack(payload)
		if err != nil {
			t.Fatalf("Pack(%v): %v", payload, err)
		}
		got, err := u.Unpack(msg)
		if err != nil {
			t.Fatalf("Unpack(%v): %v", msg, err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("roundtrip: got %v, want %v", got, payload)
		}
	}
}

func TestPackRejectsOversize(t *testing.T) {
	p := NewPacker(4, HeaderFraming)
	if _, err := p.Pack(make([]byte, 5)); err == nil {
		t.Fatal("expected oversize error")
	}
}

func TestUnpackHeaderErrors(t *testing.T) {
	u := NewUnpacker(4, HeaderFraming)
	if _, err := u.Unpack([]byte{1, 2}); err == nil {
		t.Error("short header should fail")
	}
	// header claims 100 bytes but bound is 4
	if _, err := u.Unpack([]byte{100, 0, 0, 0, 1}); err == nil {
		t.Error("oversize header should fail")
	}
	// header claims 3 bytes, only 1 present
	if _, err := u.Unpack([]byte{3, 0, 0, 0, 1}); err == nil {
		t.Error("truncated token should fail")
	}
}

func TestUnpackDelimiterErrors(t *testing.T) {
	u := NewUnpacker(4, DelimiterFraming)
	if _, err := u.Unpack([]byte{1, 2, 3}); err == nil {
		t.Error("missing delimiter should fail")
	}
	if _, err := u.Unpack([]byte{1, 0x7E, 2, 0x7E}); err == nil {
		t.Error("early delimiter should fail")
	}
	if _, err := u.Unpack([]byte{1, 2, 3, 4, 5, 0x7E}); err == nil {
		t.Error("payload beyond bound should fail")
	}
}

func TestReceiverOpsHeaderIsConstant(t *testing.T) {
	p := NewPacker(1024, HeaderFraming)
	u := NewUnpacker(1024, HeaderFraming)
	msg, _ := p.Pack(make([]byte, 1000))
	before := u.ReceiverOps
	if _, err := u.Unpack(msg); err != nil {
		t.Fatal(err)
	}
	if u.ReceiverOps-before != 1 {
		t.Errorf("header framing receiver ops = %d, want 1", u.ReceiverOps-before)
	}
}

func TestReceiverOpsDelimiterScalesWithPayload(t *testing.T) {
	// The paper's argument for header framing on FPGAs: the delimiter
	// receiver examines every byte.
	p := NewPacker(1024, DelimiterFraming)
	u := NewUnpacker(1024, DelimiterFraming)
	msg, _ := p.Pack(make([]byte, 1000))
	before := u.ReceiverOps
	if _, err := u.Unpack(msg); err != nil {
		t.Fatal(err)
	}
	if got := u.ReceiverOps - before; got < 1000 {
		t.Errorf("delimiter framing receiver ops = %d, want >= payload size 1000", got)
	}
}

func TestFrameOverhead(t *testing.T) {
	if got := FrameOverhead(HeaderFraming, 100); got != SizeHeaderBytes {
		t.Errorf("header overhead = %d, want %d", got, SizeHeaderBytes)
	}
	if got := FrameOverhead(DelimiterFraming, 100); got != 101 {
		t.Errorf("delimiter worst-case overhead = %d, want 101", got)
	}
	if got := FrameOverhead(Framing(9), 100); got != 0 {
		t.Errorf("unknown framing overhead = %d, want 0", got)
	}
}

func TestFramingString(t *testing.T) {
	if HeaderFraming.String() != "header" || DelimiterFraming.String() != "delimiter" {
		t.Errorf("framing strings: %s %s", HeaderFraming, DelimiterFraming)
	}
}

// Property: roundtrip over random payloads for both framings.
func TestPackRoundtripProperty(t *testing.T) {
	for _, framing := range []Framing{HeaderFraming, DelimiterFraming} {
		framing := framing
		p := NewPacker(256, framing)
		u := NewUnpacker(256, framing)
		f := func(seed int64, n uint8) bool {
			r := rand.New(rand.NewSource(seed))
			payload := make([]byte, int(n))
			r.Read(payload)
			msg, err := p.Pack(payload)
			if err != nil {
				return false
			}
			got, err := u.Unpack(msg)
			if err != nil {
				return false
			}
			return bytes.Equal(got, payload)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("framing %v: %v", framing, err)
		}
	}
}
