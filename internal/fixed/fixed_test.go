package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatBasics(t *testing.T) {
	cases := map[float64]Q15{
		0:           0,
		0.5:         1 << 14,
		-0.5:        -(1 << 14),
		-1.0:        MinusOne,
		1.0:         One, // saturates
		2.0:         One,
		-2.0:        MinusOne,
		1.0 / 32768: 1,
	}
	for f, want := range cases {
		if got := FromFloat(f); got != want {
			t.Errorf("FromFloat(%v) = %d, want %d", f, got, want)
		}
	}
}

func TestRoundtripPrecision(t *testing.T) {
	for _, f := range []float64{0, 0.25, -0.75, 0.123, -0.999} {
		got := FromFloat(f).Float()
		if math.Abs(got-f) > 1.0/scale {
			t.Errorf("roundtrip %v -> %v, error beyond 1 LSB", f, got)
		}
	}
}

func TestAddSaturates(t *testing.T) {
	if Add(One, One) != One {
		t.Error("positive overflow should saturate")
	}
	if Add(MinusOne, MinusOne) != MinusOne {
		t.Error("negative overflow should saturate")
	}
	if Add(FromFloat(0.25), FromFloat(0.25)) != FromFloat(0.5) {
		t.Error("in-range add wrong")
	}
}

func TestSubSaturates(t *testing.T) {
	if Sub(One, MinusOne) != One {
		t.Error("positive overflow should saturate")
	}
	if Sub(MinusOne, One) != MinusOne {
		t.Error("negative overflow should saturate")
	}
}

func TestMulCases(t *testing.T) {
	if got := Mul(FromFloat(0.5), FromFloat(0.5)); math.Abs(got.Float()-0.25) > 1.0/scale {
		t.Errorf("0.5*0.5 = %v", got.Float())
	}
	// The classic Q15 corner: -1 * -1 overflows to +1 and must saturate.
	if Mul(MinusOne, MinusOne) != One {
		t.Error("-1 * -1 should saturate to One")
	}
	if got := Mul(FromFloat(-0.5), FromFloat(0.5)); math.Abs(got.Float()+0.25) > 1.0/scale {
		t.Errorf("-0.5*0.5 = %v", got.Float())
	}
}

func TestAccumulatorPrecision(t *testing.T) {
	// Summing many small products through the wide accumulator loses less
	// precision than chaining saturating Q15 multiplies/adds.
	n := 1000
	a := make([]Q15, n)
	b := make([]Q15, n)
	var want float64
	for i := range a {
		a[i] = FromFloat(0.02)
		b[i] = FromFloat(0.03)
		want += a[i].Float() * b[i].Float()
	}
	got := DotProduct(a, b).Float()
	if math.Abs(got-want) > 2.0/scale {
		t.Errorf("dot product = %v, want %v", got, want)
	}
}

func TestAccQ15Saturates(t *testing.T) {
	var acc Acc
	for i := 0; i < 100; i++ {
		acc = acc.MAC(One, One) // ~+1 each
	}
	if acc.Q15() != One {
		t.Error("accumulated overflow should saturate at conversion")
	}
	acc = 0
	for i := 0; i < 100; i++ {
		acc = acc.MAC(One, MinusOne)
	}
	if acc.Q15() != MinusOne {
		t.Error("negative accumulation should saturate")
	}
}

func TestAddQ15(t *testing.T) {
	var acc Acc
	acc = acc.AddQ15(FromFloat(0.5))
	acc = acc.AddQ15(FromFloat(0.25))
	if got := acc.Q15().Float(); math.Abs(got-0.75) > 2.0/scale {
		t.Errorf("acc = %v, want 0.75", got)
	}
}

func TestSliceConversions(t *testing.T) {
	f := []float64{0.1, -0.2, 0.3}
	q := FromFloats(f)
	back := ToFloats(q)
	for i := range f {
		if math.Abs(back[i]-f[i]) > 1.0/scale {
			t.Errorf("slice roundtrip %v -> %v", f[i], back[i])
		}
	}
}

func TestDotProductLengthMismatch(t *testing.T) {
	got := DotProduct([]Q15{FromFloat(0.5), FromFloat(0.5)}, []Q15{FromFloat(0.5)})
	if math.Abs(got.Float()-0.25) > 1.0/scale {
		t.Errorf("short-slice dot = %v", got.Float())
	}
}

// Property: Add/Mul results always stay within Q15 range and match float
// arithmetic within rounding wherever the float result is in range.
func TestArithmeticMatchesFloatProperty(t *testing.T) {
	f := func(x, y int16) bool {
		a, b := Q15(x), Q15(y)
		sum := Add(a, b).Float()
		fsum := a.Float() + b.Float()
		if fsum > 1-1.0/scale {
			fsum = (One).Float()
		}
		if fsum < -1 {
			fsum = -1
		}
		if math.Abs(sum-fsum) > 2.0/scale {
			return false
		}
		prod := Mul(a, b).Float()
		fprod := a.Float() * b.Float()
		if fprod > 1-1.0/scale {
			fprod = (One).Float()
		}
		return math.Abs(prod-fprod) <= 2.0/scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
