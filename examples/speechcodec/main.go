// Speech codec example: the paper's application 1 end-to-end. A synthetic
// speech-like signal is compressed with the LPC pipeline (FFT →
// autocorrelation → LU predictor → residual → Huffman), actor D is
// parallelized over SPI_dynamic edges, and the PE sweep of figure 6 is
// reproduced on the platform simulator.
package main

import (
	"fmt"
	"log"

	"repro/internal/dsp"
	"repro/internal/lpc"
	"repro/internal/signal"
	"repro/internal/spi"
)

func main() {
	p := lpc.DefaultParams()
	codec, err := lpc.NewCodec(p)
	if err != nil {
		log.Fatal(err)
	}
	x := signal.Speech(p.FrameSize*32, 2026)

	// Full codec pass with quality metrics.
	rep, err := codec.Analyze(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d frames: %.2fx ratio, %.1f dB SNR\n",
		rep.Frames, rep.Ratio, rep.SNRdB)

	// Wire-format roundtrip of the first frame.
	frames, err := codec.Compress(x[:p.FrameSize])
	if err != nil {
		log.Fatal(err)
	}
	wire, err := frames[0].MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	back, err := lpc.UnmarshalFrame(wire, 1<<uint(p.ErrorBits))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame wire format: %d bytes for %d samples (%.2f bits/sample)\n",
		len(wire), back.N, float64(len(wire))*8/float64(back.N))

	// Actor D on n PEs over the software SPI runtime, checked against the
	// serial residual.
	frame := x[:p.FrameSize]
	model, err := dsp.LPCAnalyze(frame, p.Order)
	if err != nil {
		log.Fatal(err)
	}
	serial := model.Residual(frame)
	for _, n := range []int{1, 2, 4} {
		par, stats, err := lpc.ParallelResidual(model, frame, n)
		if err != nil {
			log.Fatal(err)
		}
		same := true
		for i := range serial {
			if serial[i] != par[i] {
				same = false
				break
			}
		}
		fmt.Printf("n=%d PEs: %d SPI messages, %d wire bytes, identical=%v\n",
			n, stats.Messages, stats.WireBytes, same)
	}

	// Figure-6 style timing sweep on the simulated platform.
	fmt.Println("\nsimulated execution time of actor D (us per frame):")
	fmt.Printf("%-12s", "samples")
	for _, n := range []int{1, 2, 3, 4} {
		fmt.Printf("  n=%d   ", n)
	}
	fmt.Println()
	for _, N := range []int{64, 128, 256, 512} {
		fmt.Printf("%-12d", N)
		for _, n := range []int{1, 2, 3, 4} {
			sys, err := lpc.ErrorGenSystem(lpc.DefaultDeploy(N, n))
			if err != nil {
				log.Fatal(err)
			}
			dep, err := spi.Build(sys)
			if err != nil {
				log.Fatal(err)
			}
			st, err := dep.Sim.Run(20)
			if err != nil {
				log.Fatal(err)
			}
			cfg := dep.Sim.Config()
			fmt.Printf("  %6.2f", st.Microseconds(cfg, st.Finish)/20)
		}
		fmt.Println()
	}
}
