package signal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced stuck generator")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(99)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestUniformityRough(t *testing.T) {
	r := NewRNG(1)
	buckets := make([]int, 10)
	n := 100000
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for b, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d count %d far from %d", b, c, n/10)
		}
	}
}

func TestSpeechProperties(t *testing.T) {
	s := Speech(4096, 3)
	if len(s) != 4096 {
		t.Fatalf("len = %d", len(s))
	}
	var peak float64
	for _, v := range s {
		if math.Abs(v) > peak {
			peak = math.Abs(v)
		}
	}
	if peak > 0.9001 || peak < 0.5 {
		t.Errorf("peak = %v, want normalized to 0.9", peak)
	}
	// Speech-like signals have strong lag-1 correlation.
	var c0, c1 float64
	for i := 1; i < len(s); i++ {
		c0 += s[i] * s[i]
		c1 += s[i] * s[i-1]
	}
	if c1/c0 < 0.5 {
		t.Errorf("lag-1 correlation %v too low for a speech-like source", c1/c0)
	}
}

func TestSpeechDeterministic(t *testing.T) {
	a := Speech(256, 5)
	b := Speech(256, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different signal")
		}
	}
	c := Speech(256, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical signals")
	}
}

func TestARProcessPredictability(t *testing.T) {
	// An AR(1) with small noise is nearly predicted by its own coefficient.
	a := []float64{0.95}
	x := AR(5000, a, 0.01, 11)
	var errE, sigE float64
	for i := 1; i < len(x); i++ {
		e := x[i] - 0.95*x[i-1]
		errE += e * e
		sigE += x[i] * x[i]
	}
	// Theory: error/signal power ratio = 1 - a^2 = 0.0975.
	ratio := errE / sigE
	if math.Abs(ratio-0.0975) > 0.02 {
		t.Errorf("prediction error ratio %v, want ~0.0975 (1-a^2)", ratio)
	}
}

func TestCrackTruthMonotoneGrowth(t *testing.T) {
	p := DefaultCrackParams()
	truth := CrackTruth(300, p, 21)
	if truth[0] < p.A0 {
		t.Errorf("first length %v below A0", truth[0])
	}
	if truth[len(truth)-1] <= truth[0] {
		t.Errorf("crack did not grow: %v -> %v", truth[0], truth[len(truth)-1])
	}
	// Growth is noisy but never drops below A0.
	for i, a := range truth {
		if a < p.A0 {
			t.Fatalf("length %v below floor at step %d", a, i)
		}
	}
}

func TestCrackObservationsNoisyButUnbiased(t *testing.T) {
	p := DefaultCrackParams()
	truth := CrackTruth(2000, p, 21)
	obs := CrackObservations(truth, p, 22)
	var bias, dev float64
	for i := range truth {
		d := obs[i] - truth[i]
		bias += d
		dev += d * d
	}
	bias /= float64(len(truth))
	rms := math.Sqrt(dev / float64(len(truth)))
	if math.Abs(bias) > 0.02 {
		t.Errorf("observation bias %v", bias)
	}
	if rms < 0.05 || rms > 0.2 {
		t.Errorf("observation rms %v not near MeasureNoise %v", rms, p.MeasureNoise)
	}
}

// Property: RNG streams from different seeds differ early.
func TestRNGSeedSeparationProperty(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		a, b := NewRNG(s1), NewRNG(s2)
		for i := 0; i < 4; i++ {
			if a.Uint64() != b.Uint64() {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
