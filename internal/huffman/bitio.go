// Package huffman implements canonical Huffman coding over 16-bit symbol
// alphabets, with the bit-level I/O needed to serialize code streams. It is
// the entropy-coding stage (actor E) of the paper's application 1: the
// quantized LPC prediction error is Huffman coded to form the compressed
// bitstream.
package huffman

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF reports a bit read past the end of the stream.
var ErrUnexpectedEOF = errors.New("huffman: unexpected end of bit stream")

// BitWriter packs bits MSB-first into a byte slice.
type BitWriter struct {
	buf  []byte
	nbit uint8 // bits used in the last byte (0..7; 0 means last byte full/none)
}

// WriteBits appends the low `width` bits of v, most significant first.
// width must be in [0, 32].
func (w *BitWriter) WriteBits(v uint32, width uint) {
	if width > 32 {
		panic(fmt.Sprintf("huffman: WriteBits width %d", width))
	}
	for i := int(width) - 1; i >= 0; i-- {
		bit := byte((v >> uint(i)) & 1)
		if w.nbit == 0 {
			w.buf = append(w.buf, 0)
		}
		w.buf[len(w.buf)-1] |= bit << (7 - w.nbit)
		w.nbit = (w.nbit + 1) & 7
	}
}

// Bytes returns the packed stream. Trailing unused bits are zero.
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitLen returns the number of bits written.
func (w *BitWriter) BitLen() int {
	if len(w.buf) == 0 {
		return 0
	}
	if w.nbit == 0 {
		return len(w.buf) * 8
	}
	return (len(w.buf)-1)*8 + int(w.nbit)
}

// BitReader consumes bits MSB-first from a byte slice.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader returns a reader over the stream.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (byte, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, ErrUnexpectedEOF
	}
	b := (r.buf[r.pos/8] >> (7 - uint(r.pos&7))) & 1
	r.pos++
	return b, nil
}

// ReadBits returns the next `width` bits as an unsigned value (MSB first).
func (r *BitReader) ReadBits(width uint) (uint32, error) {
	if width > 32 {
		return 0, fmt.Errorf("huffman: ReadBits width %d", width)
	}
	var v uint32
	for i := uint(0); i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}

// BitsRemaining returns how many unread bits remain.
func (r *BitReader) BitsRemaining() int { return len(r.buf)*8 - r.pos }
