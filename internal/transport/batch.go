package transport

import (
	"sync"
	"time"
)

// BatchConfig parameterizes the per-link write coalescer. The zero value
// disables batching entirely: every frame is written to the connection the
// moment it is encoded, exactly as links behaved before coalescing
// existed, so resumption, resend-buffer, and chaos semantics are
// unchanged unless a caller opts in.
//
// With batching enabled, session frames accumulate in a per-link buffer
// and flush as one Write when the frame-count or byte threshold is
// reached, when the microsecond deadline expires, or when a sender is
// about to stall (down link or full resend buffer) — a stalled sender
// must not sit on frames the peer needs to see before it can ack.
type BatchConfig struct {
	// MaxFrames flushes the batch once it holds this many frames
	// (default 32 when batching is enabled).
	MaxFrames int
	// MaxBytes flushes the batch once it holds this many wire bytes
	// (default 64 KiB when batching is enabled).
	MaxBytes int
	// MaxDelay bounds how long a buffered frame may wait for company
	// before a timer flushes it (default 100µs when batching is
	// enabled). This is the latency bound that keeps BBS credit loops
	// and UBS ack loops live when traffic is sparse.
	MaxDelay time.Duration
}

// Enabled reports whether any batching is configured. MaxFrames == 1 is
// explicitly "no batching" even when other fields are set.
func (b BatchConfig) Enabled() bool {
	if b.MaxFrames == 1 {
		return false
	}
	return b.MaxFrames > 1 || b.MaxBytes > 0 || b.MaxDelay > 0
}

func (b BatchConfig) withDefaults() BatchConfig {
	if !b.Enabled() {
		return b
	}
	if b.MaxFrames <= 0 {
		b.MaxFrames = 32
	}
	if b.MaxBytes <= 0 {
		b.MaxBytes = 64 << 10
	}
	if b.MaxDelay <= 0 {
		b.MaxDelay = 100 * time.Microsecond
	}
	return b
}

// wirePool recycles encoded frame buffers. Boxing through *[]byte keeps
// Put/Get allocation-free; buffers grow to the largest frame a link
// carries and are then reused at that size, so the steady-state send
// path performs zero allocations.
var wirePool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

func getWire(n int) *[]byte {
	p := wirePool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putWire(p *[]byte) {
	if p == nil {
		return
	}
	wirePool.Put(p)
}

// coalescer is one link's write batch. All fields are guarded by the
// link's writer mutex (wmu): every producer of wire bytes already holds
// it, so batching adds no new locks to the hot path.
type coalescer struct {
	buf    []byte
	frames int
	gen    int // connection generation the buffered bytes target
	timer  *time.Timer
	armed  bool
}

func (b *coalescer) drop() {
	b.buf = b.buf[:0]
	b.frames = 0
}

// armFlushLocked schedules the deadline flush if buffered frames or
// pending acks are waiting and no timer is already pending. Caller holds
// wmu.
func (l *Link) armFlushLocked() {
	if l.batch.armed || (l.batch.frames == 0 && len(l.pendingOrder) == 0) {
		return
	}
	d := l.cfg.Batch.MaxDelay
	if d <= 0 {
		// Piggybacking without batching still needs the deadline so a
		// queued ack never waits indefinitely for a DATA frame to ride.
		d = 100 * time.Microsecond
	}
	if l.batch.timer == nil {
		l.batch.timer = time.AfterFunc(d, l.flushDeadline)
	} else {
		l.batch.timer.Reset(d)
	}
	l.batch.armed = true
}

// writeWire hands one encoded frame to the connection: appended to the
// batch when coalescing is on, written directly otherwise. Caller holds
// wmu; wire must remain valid only for the duration of the call (batched
// bytes are copied). gen identifies the connection the frame targets —
// stale batched bytes from a previous generation are dropped, because
// every session frame also lives in the resend buffer and the RESUME
// replay is the authoritative delivery path after a reconnect.
func (l *Link) writeWire(conn Conn, gen int, wire []byte) error {
	if !l.batchOn {
		if l.cfg.SendTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(l.cfg.SendTimeout))
		}
		if _, err := conn.Write(wire); err != nil {
			return err
		}
		l.obs.framesSent.Inc()
		l.obs.bytesSent.Add(int64(len(wire)))
		return nil
	}
	if l.batch.frames > 0 && l.batch.gen != gen {
		l.batch.drop()
	}
	l.batch.buf = append(l.batch.buf, wire...)
	l.batch.frames++
	l.batch.gen = gen
	if l.batch.frames >= l.cfg.Batch.MaxFrames || len(l.batch.buf) >= l.cfg.Batch.MaxBytes {
		return l.flushBatchLocked(conn, gen)
	}
	l.armFlushLocked()
	return nil
}

// flushBatchLocked writes the accumulated batch as a single Write.
// Caller holds wmu.
func (l *Link) flushBatchLocked(conn Conn, gen int) error {
	if l.batch.frames == 0 {
		return nil
	}
	if l.batch.gen != gen {
		l.batch.drop()
		return nil
	}
	buf, frames := l.batch.buf, l.batch.frames
	l.batch.drop()
	if l.cfg.SendTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(l.cfg.SendTimeout))
	}
	if _, err := conn.Write(buf); err != nil {
		return err
	}
	l.obs.framesSent.Add(int64(frames))
	l.obs.bytesSent.Add(int64(len(buf)))
	l.obs.batchFlushes.Inc()
	return nil
}

// flushDeadline is the coalescer's timer callback: materialize any acks
// still waiting for a DATA frame to ride, then flush the batch. On a
// down link the batched bytes are dropped — the resend buffer holds the
// frames and the RESUME replay delivers them — while pending acks stay
// queued for install() to flush after the replay; they are not yet
// session frames, so nothing else would deliver them. On a closed or
// failed link everything is dropped and the timer goes quiet.
func (l *Link) flushDeadline() {
	l.wmu.Lock()
	l.batch.armed = false
	l.mu.Lock()
	conn, gen, state, closing := l.conn, l.gen, l.state, l.closing
	l.mu.Unlock()
	if closing || state != stateUp {
		if state != stateDown || (l.batch.frames > 0 && l.batch.gen != gen) {
			l.batch.drop()
		}
		l.wmu.Unlock()
		return
	}
	err := l.flushPendingAcksLocked(conn, gen)
	if err == nil {
		err = l.flushBatchLocked(conn, gen)
	}
	l.armFlushLocked()
	l.wmu.Unlock()
	if err != nil {
		werr := &Error{Op: "send", Addr: l.raddr, Transient: isTimeout(err), Err: err}
		if l.cfg.Reconnect.Enabled() {
			l.connError(gen, werr)
		} else {
			l.poisonSend(gen)
		}
	}
	l.recheckCumAck()
}

// queueAck records an ack to be piggybacked on the next outbound DATA
// frame (or flushed standalone by the deadline timer). Caller holds wmu.
func (l *Link) queueAckLocked(edge uint16, count uint32) {
	if l.pendingAcks == nil {
		l.pendingAcks = make(map[uint16]uint32)
	}
	if _, ok := l.pendingAcks[edge]; !ok {
		l.pendingOrder = append(l.pendingOrder, edge)
	}
	l.pendingAcks[edge] += count
	l.armFlushLocked()
}

// takePendingAcksLocked drains up to 255 queued ack entries into the
// piggyback prefix (u8 n | n * (u16 edge | u32 count)) reusing the
// link's prefix buffer, and credits the per-edge piggyback counters.
// Caller holds wmu and must consume the returned slice before releasing
// it (buildFrame copies it into the frame).
func (l *Link) takePendingAcksLocked() []byte {
	n := len(l.pendingOrder)
	if n == 0 {
		return nil
	}
	if n > 255 {
		n = 255
	}
	l.piggyBuf = append(l.piggyBuf[:0], byte(n))
	for _, e := range l.pendingOrder[:n] {
		c := l.pendingAcks[e]
		l.piggyBuf = append(l.piggyBuf,
			byte(e), byte(e>>8),
			byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
		delete(l.pendingAcks, e)
		if l.piggySent == nil {
			l.piggySent = make(map[uint16]int64)
		}
		l.piggySent[e] += int64(c)
	}
	copy(l.pendingOrder, l.pendingOrder[n:])
	l.pendingOrder = l.pendingOrder[:len(l.pendingOrder)-n]
	l.obs.acksPiggy.Add(int64(n))
	return l.piggyBuf
}

// flushPendingAcksLocked materializes queued acks as standalone session
// ACK frames — the deadline path when no DATA frame came along to carry
// them. Each needs resend-buffer room; acks that do not fit stay queued
// and the re-armed timer retries after the peer's cumulative ack frees
// slots, so ack delivery remains live without ever overrunning the
// resend budget. Caller holds wmu.
func (l *Link) flushPendingAcksLocked(conn Conn, gen int) error {
	for len(l.pendingOrder) > 0 {
		edge := l.pendingOrder[0]
		count := l.pendingAcks[edge]
		l.mu.Lock()
		if l.closing || l.state != stateUp || l.gen != gen || len(l.unacked) >= l.cfg.resendLimit() {
			l.mu.Unlock()
			return nil
		}
		l.sendSeq++
		seq := l.sendSeq
		var body [ackBodyBytes]byte
		body[0], body[1] = byte(edge), byte(edge>>8)
		body[2], body[3], body[4], body[5] = byte(count), byte(count>>8), byte(count>>16), byte(count>>24)
		f := buildFrame(frameAck, seq, nil, body[:])
		l.unacked = append(l.unacked, f)
		l.obs.resendDepth.Set(int64(len(l.unacked)))
		l.mu.Unlock()
		delete(l.pendingAcks, edge)
		copy(l.pendingOrder, l.pendingOrder[1:])
		l.pendingOrder = l.pendingOrder[:len(l.pendingOrder)-1]
		if err := l.writeWire(conn, gen, f.wire); err != nil {
			return err
		}
		l.obs.acksSent.Inc()
	}
	return nil
}

// buildFrame encodes one frame into a pooled buffer. The body is the
// concatenation head|tail (head may be nil); splitting it lets the
// DATAACK path prepend the piggyback prefix to an SPI message without
// first joining them in a scratch buffer. The returned frame owns its
// pooled buffer; trimUnacked recycles it once the peer's cumulative ack
// covers the sequence number.
func buildFrame(typ byte, seq uint64, head, tail []byte) savedFrame {
	n := frameHeaderBytes + len(head) + len(tail)
	buf := getWire(n)
	wire := *buf
	putFrameHeader(wire, typ, seq, frameCRC2(typ, seq, head, tail), len(head)+len(tail))
	copy(wire[frameHeaderBytes:], head)
	copy(wire[frameHeaderBytes+len(head):], tail)
	return savedFrame{seq: seq, wire: wire, buf: buf}
}

// PiggybackedAcks reports, per inbound edge, how many acknowledgements
// this link has piggybacked on outbound DATA frames instead of sending
// as standalone ACK frames. The spinode stats table surfaces these next
// to the edge's standalone ack count.
func (l *Link) PiggybackedAcks() map[uint16]int64 {
	l.wmu.Lock()
	out := make(map[uint16]int64, len(l.piggySent))
	for e, n := range l.piggySent {
		out[e] = n
	}
	l.wmu.Unlock()
	l.recheckCumAck()
	return out
}

// SuppressedAcks reports, per inbound edge, how many acknowledgements
// this link swallowed under the negotiated resync suppression set. The
// SPI layer folds these out of its per-edge ack counters after a run,
// and the spinode stats table surfaces them next to the acks that did
// reach the wire.
func (l *Link) SuppressedAcks() map[uint16]int64 {
	l.wmu.Lock()
	out := make(map[uint16]int64, len(l.suppressedSent))
	for e, n := range l.suppressedSent {
		out[e] = n
	}
	l.wmu.Unlock()
	l.recheckCumAck()
	return out
}
