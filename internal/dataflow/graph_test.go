package dataflow

import (
	"strings"
	"testing"
)

// chain builds A -(p0)->(c0)- B -(p1)->(c1)- C ... with the given rates.
func chain(t *testing.T, rates [][2]int) *Graph {
	t.Helper()
	g := New("chain")
	prev := g.AddActor("a0", 10)
	for i, rc := range rates {
		next := g.AddActor("a"+string(rune('1'+i)), 10)
		g.AddEdge("e"+string(rune('0'+i)), prev, next, rc[0], rc[1], EdgeSpec{})
		prev = next
	}
	return g
}

func TestAddActorAndEdge(t *testing.T) {
	g := New("t")
	a := g.AddActor("A", 5)
	b := g.AddActor("B", 7)
	e := g.AddEdge("ab", a, b, 2, 3, EdgeSpec{Delay: 1, TokenBytes: 4})

	if g.NumActors() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %d actors %d edges, want 2/1", g.NumActors(), g.NumEdges())
	}
	if g.Actor(a).Name != "A" || g.Actor(a).ExecCycles != 5 {
		t.Errorf("actor A corrupted: %+v", g.Actor(a))
	}
	ed := g.Edge(e)
	if ed.Src != a || ed.Snk != b || ed.Produce.Rate != 2 || ed.Consume.Rate != 3 {
		t.Errorf("edge corrupted: %+v", ed)
	}
	if ed.Delay != 1 || ed.TokenBytes != 4 {
		t.Errorf("edge spec not applied: %+v", ed)
	}
	if len(g.Out(a)) != 1 || len(g.In(b)) != 1 {
		t.Errorf("adjacency lists wrong: out(a)=%v in(b)=%v", g.Out(a), g.Out(b))
	}
	if id, ok := g.ActorByName("B"); !ok || id != b {
		t.Errorf("ActorByName(B) = %v,%v", id, ok)
	}
	if _, ok := g.ActorByName("Z"); ok {
		t.Errorf("ActorByName(Z) unexpectedly found")
	}
}

func TestDuplicateActorNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate actor name")
		}
	}()
	g := New("t")
	g.AddActor("A", 1)
	g.AddActor("A", 1)
}

func TestZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero rate")
		}
	}()
	g := New("t")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("e", a, b, 0, 1, EdgeSpec{})
}

func TestDefaultTokenBytesIsOne(t *testing.T) {
	g := New("t")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	e := g.AddEdge("e", a, b, 1, 1, EdgeSpec{})
	if g.Edge(e).TokenBytes != 1 {
		t.Errorf("TokenBytes = %d, want 1", g.Edge(e).TokenBytes)
	}
}

func TestDynamicEdgeFlag(t *testing.T) {
	g := New("t")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	e1 := g.AddEdge("static", a, b, 2, 2, EdgeSpec{})
	e2 := g.AddEdge("dyn", a, b, 10, 8, EdgeSpec{ProduceDynamic: true, ConsumeDynamic: true})
	if g.Edge(e1).Dynamic() {
		t.Error("static edge reported dynamic")
	}
	if !g.Edge(e2).Dynamic() {
		t.Error("dynamic edge reported static")
	}
	if !g.HasDynamicEdges() {
		t.Error("HasDynamicEdges = false")
	}
	if g.Edge(e2).Produce.Kind != DynamicPort || g.Edge(e2).Consume.Kind != DynamicPort {
		t.Error("port kinds not set")
	}
}

func TestPortKindString(t *testing.T) {
	if StaticPort.String() != "static" || DynamicPort.String() != "dynamic" {
		t.Errorf("PortKind strings: %s %s", StaticPort, DynamicPort)
	}
	if !strings.Contains(PortKind(9).String(), "9") {
		t.Errorf("unknown kind string: %s", PortKind(9))
	}
}

func TestValidate(t *testing.T) {
	g := New("empty")
	if err := g.Validate(); err == nil {
		t.Error("empty graph should not validate")
	}
	g2 := chain(t, [][2]int{{1, 1}})
	if err := g2.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
}

func TestClone(t *testing.T) {
	g := chain(t, [][2]int{{2, 3}, {1, 2}})
	c := g.Clone()
	if c.String() != g.String() {
		t.Fatalf("clone differs:\n%s\nvs\n%s", c, g)
	}
	// Mutating the clone must not affect the original.
	x := c.AddActor("extra", 1)
	c.AddEdge("xe", x, 0, 1, 1, EdgeSpec{})
	if g.NumActors() == c.NumActors() {
		t.Error("clone mutation leaked into original")
	}
	if _, ok := g.ActorByName("extra"); ok {
		t.Error("clone name map leaked into original")
	}
}

func TestStringOutput(t *testing.T) {
	g := chain(t, [][2]int{{2, 3}})
	s := g.String()
	for _, want := range []string{"chain", "a0", "a1", "-(2)-> (3)-"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := New("d")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 2, 3, EdgeSpec{Delay: 1})
	g.AddEdge("dyn", a, b, 4, 4, EdgeSpec{ProduceDynamic: true, ConsumeDynamic: true})
	dot := g.DOT()
	for _, want := range []string{"digraph", "2:3", "dashed", "•1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
