// Package bdf implements Boolean dataflow (Buck's token-flow model), one of
// the dynamic-dataflow extensions the paper positions VTS against (§3.1):
// in BDF an actor's production/consumption is either fixed or a two-valued
// function of a control token. The canonical dynamic actors are SWITCH
// (route a data token to one of two outputs according to a control token)
// and SELECT (pick a data token from one of two inputs).
//
// BDF graphs generally defeat static scheduling — bounded memory is
// undecidable in general — so this package provides a run-time token-flow
// interpreter plus queue-growth monitoring. The VTS comparison: the same
// data-dependent behaviour expressed with VTS packed tokens stays statically
// analyzable (repetitions vector, PASS, buffer bounds), which is the
// paper's argument for VTS within the SPI framework.
package bdf

import (
	"fmt"
)

// NodeID identifies a node in a Graph.
type NodeID int

// EdgeID identifies an edge in a Graph.
type EdgeID int

// NodeKind enumerates the interpreter's node types.
type NodeKind uint8

const (
	// SourceNode emits one preloaded token per firing until exhausted.
	SourceNode NodeKind = iota
	// FuncNode consumes one token from every input and produces one output.
	FuncNode
	// SwitchNode consumes a data token and a control token, and copies the
	// data token to the true-output or false-output per the control value.
	SwitchNode
	// SelectNode consumes a control token, then one data token from the
	// true-input or false-input per the control value, and forwards it.
	SelectNode
	// SinkNode consumes one token per firing and records it.
	SinkNode
)

func (k NodeKind) String() string {
	switch k {
	case SourceNode:
		return "source"
	case FuncNode:
		return "func"
	case SwitchNode:
		return "switch"
	case SelectNode:
		return "select"
	case SinkNode:
		return "sink"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Token is a BDF data or control token. Control edges carry 0 (false) or
// non-zero (true).
type Token = float64

type node struct {
	kind NodeKind
	name string
	// inputs/outputs by role. Semantics per kind:
	//   Func:   ins = data inputs, outs[0] = output
	//   Switch: ins[0] = data, ins[1] = control; outs[0] = true, outs[1] = false
	//   Select: ins[0] = true, ins[1] = false, ins[2] = control; outs[0] = output
	//   Source: outs[0]; Sink: ins[0]
	ins, outs []EdgeID
	fn        func([]Token) Token
	feed      []Token // source data
	fed       int
	collected []Token // sink data
}

// Graph is a BDF graph plus its run-time queue state.
type Graph struct {
	nodes []*node
	// queues[e] is the FIFO of edge e.
	queues [][]Token
	// MaxQueue records the peak occupancy per edge.
	maxQueue []int
	firings  int64
}

// NewGraph returns an empty BDF graph.
func NewGraph() *Graph { return &Graph{} }

func (g *Graph) addNode(n *node) NodeID {
	g.nodes = append(g.nodes, n)
	return NodeID(len(g.nodes) - 1)
}

// newEdge allocates a queue and returns its ID.
func (g *Graph) newEdge() EdgeID {
	g.queues = append(g.queues, nil)
	g.maxQueue = append(g.maxQueue, 0)
	return EdgeID(len(g.queues) - 1)
}

// AddSource adds a source that emits the given tokens one per firing.
func (g *Graph) AddSource(name string, data []Token) (NodeID, EdgeID) {
	out := g.newEdge()
	id := g.addNode(&node{kind: SourceNode, name: name, outs: []EdgeID{out}, feed: data})
	return id, out
}

// AddFunc adds a function node over the given input edges; returns its
// output edge.
func (g *Graph) AddFunc(name string, fn func([]Token) Token, inputs ...EdgeID) (NodeID, EdgeID) {
	out := g.newEdge()
	id := g.addNode(&node{kind: FuncNode, name: name, ins: inputs, outs: []EdgeID{out}, fn: fn})
	return id, out
}

// AddSwitch adds a SWITCH: data tokens from `data` are routed to the
// returned (trueOut, falseOut) edges according to control tokens from
// `ctrl`.
func (g *Graph) AddSwitch(name string, data, ctrl EdgeID) (NodeID, EdgeID, EdgeID) {
	t, f := g.newEdge(), g.newEdge()
	id := g.addNode(&node{kind: SwitchNode, name: name, ins: []EdgeID{data, ctrl}, outs: []EdgeID{t, f}})
	return id, t, f
}

// AddSelect adds a SELECT: per control token from `ctrl`, one token is
// consumed from trueIn or falseIn and forwarded to the returned edge.
func (g *Graph) AddSelect(name string, trueIn, falseIn, ctrl EdgeID) (NodeID, EdgeID) {
	out := g.newEdge()
	id := g.addNode(&node{kind: SelectNode, name: name, ins: []EdgeID{trueIn, falseIn, ctrl}, outs: []EdgeID{out}})
	return id, out
}

// AddSink adds a sink collecting from the given edge.
func (g *Graph) AddSink(name string, in EdgeID) NodeID {
	return g.addNode(&node{kind: SinkNode, name: name, ins: []EdgeID{in}})
}

// Collected returns the tokens a sink has gathered.
func (g *Graph) Collected(id NodeID) []Token {
	return g.nodes[id].collected
}

// Firings returns the total firing count of the last Run.
func (g *Graph) Firings() int64 { return g.firings }

// PeakQueue returns the maximum observed occupancy of an edge — the
// quantity that is statically bounded in SDF/VTS but only observable at run
// time in BDF.
func (g *Graph) PeakQueue(e EdgeID) int { return g.maxQueue[e] }

func (g *Graph) push(e EdgeID, v Token) {
	g.queues[e] = append(g.queues[e], v)
	if len(g.queues[e]) > g.maxQueue[e] {
		g.maxQueue[e] = len(g.queues[e])
	}
}

func (g *Graph) pop(e EdgeID) Token {
	v := g.queues[e][0]
	g.queues[e] = g.queues[e][1:]
	return v
}

func (g *Graph) ready(e EdgeID) bool { return len(g.queues[e]) > 0 }

// tryFire attempts one firing of the node; reports whether it fired.
func (g *Graph) tryFire(n *node) bool {
	switch n.kind {
	case SourceNode:
		if n.fed >= len(n.feed) {
			return false
		}
		g.push(n.outs[0], n.feed[n.fed])
		n.fed++
	case FuncNode:
		for _, e := range n.ins {
			if !g.ready(e) {
				return false
			}
		}
		args := make([]Token, len(n.ins))
		for i, e := range n.ins {
			args[i] = g.pop(e)
		}
		g.push(n.outs[0], n.fn(args))
	case SwitchNode:
		if !g.ready(n.ins[0]) || !g.ready(n.ins[1]) {
			return false
		}
		data := g.pop(n.ins[0])
		if g.pop(n.ins[1]) != 0 {
			g.push(n.outs[0], data)
		} else {
			g.push(n.outs[1], data)
		}
	case SelectNode:
		if !g.ready(n.ins[2]) {
			return false
		}
		// Peek the control to know which data input must be ready.
		ctrl := g.queues[n.ins[2]][0]
		which := 1
		if ctrl != 0 {
			which = 0
		}
		if !g.ready(n.ins[which]) {
			return false
		}
		g.pop(n.ins[2])
		g.push(n.outs[0], g.pop(n.ins[which]))
	case SinkNode:
		if !g.ready(n.ins[0]) {
			return false
		}
		n.collected = append(n.collected, g.pop(n.ins[0]))
	default:
		return false
	}
	g.firings++
	return true
}

// Run executes the token-flow interpreter until quiescence (no node can
// fire) or the firing budget is exhausted (a safety net: BDF admits graphs
// that never quiesce). Returns an error when the budget trips or any queue
// exceeds maxQueueLimit (unbounded-buffer detection).
func (g *Graph) Run(maxFirings int64, maxQueueLimit int) error {
	g.firings = 0
	for {
		fired := false
		for _, n := range g.nodes {
			for g.tryFire(n) {
				fired = true
				if g.firings >= maxFirings {
					return fmt.Errorf("bdf: firing budget %d exhausted (non-quiescent graph?)", maxFirings)
				}
				if maxQueueLimit > 0 {
					for e := range g.queues {
						if len(g.queues[e]) > maxQueueLimit {
							return fmt.Errorf("bdf: edge %d exceeded queue limit %d — unbounded buffering", e, maxQueueLimit)
						}
					}
				}
			}
		}
		if !fired {
			return nil
		}
	}
}
