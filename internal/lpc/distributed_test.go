package lpc

import (
	"sync"
	"testing"

	"repro/internal/dsp"
	"repro/internal/signal"
	"repro/internal/spi"
	"repro/internal/transport"
)

// TestDistributedResidualTwoProcesses is the application-1 end-to-end: the
// n-PE error-generation system split into two spinode-style partitions —
// I/O interface in one, all worker PEs in the other — talking TCP over
// localhost, checked bit-identical against the single-process spi.Execute
// of the same system.
func TestDistributedResidualTwoProcesses(t *testing.T) {
	const N, nPE, iters = 256, 3, 2
	frame := signal.Speech(N, 77)
	model, err := dsp.LPCAnalyze(frame, 10)
	if err != nil {
		t.Fatal(err)
	}

	// Single-process reference over spi.Execute.
	p := DefaultDeploy(N, nPE)
	p.SampleBytes = 8
	sys, err := ErrorGenSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	var ref []float64
	kernels, err := residualKernels(sys.Graph, p, model, frame, func(a []float64) { ref = a })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spi.Execute(sys.Graph, sys.Mapping, kernels, iters); err != nil {
		t.Fatal(err)
	}
	if len(ref) != N {
		t.Fatalf("reference assembled %d samples", len(ref))
	}

	// Two nodes over TCP localhost.
	tr := &transport.TCP{}
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr(), "unused"}
	var (
		results [2][]float64
		stats   [2]*spi.ExecStats
		errs    [2]error
		wg      sync.WaitGroup
	)
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			opts := spi.DistOptions{Transport: tr, Node: node, Addrs: addrs}
			if node == 0 {
				opts.Listener = ln
			}
			results[node], stats[node], errs[node] = DistributedResidual(model, frame, nPE, iters, opts)
		}(node)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}

	got := results[0]
	if len(got) != N {
		t.Fatalf("distributed assembled %d samples", len(got))
	}
	if results[1] != nil {
		t.Errorf("worker node returned a residual")
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("sample %d: distributed %v, single-process %v", i, got[i], ref[i])
		}
	}
	// Sanity against the serial computation too.
	serial := model.Residual(frame)
	for i := range serial {
		if got[i] != serial[i] {
			t.Fatalf("sample %d: distributed %v, serial %v", i, got[i], serial[i])
		}
	}

	// Traffic: node 0 sends 2 messages per PE per iteration (coeffs, sect),
	// node 1 sends 1 per PE per iteration (errs).
	if n := stats[0].SPI.Messages; n != int64(2*nPE*iters) {
		t.Errorf("node 0 sent %d messages, want %d", n, 2*nPE*iters)
	}
	if n := stats[1].SPI.Messages; n != int64(nPE*iters) {
		t.Errorf("node 1 sent %d messages, want %d", n, nPE*iters)
	}
}

// TestDistributedResidualPerPENodes puts every worker PE in its own node —
// the maximal partition — over the in-memory loopback transport.
func TestDistributedResidualPerPENodes(t *testing.T) {
	const N, nPE = 64, 3
	frame := signal.Speech(N, 5)
	model, err := dsp.LPCAnalyze(frame, 10)
	if err != nil {
		t.Fatal(err)
	}
	serial := model.Residual(frame)

	nodes := nPE + 1
	tr := transport.NewLoopback()
	addrs := make([]string, nodes)
	for i := range addrs {
		addrs[i] = string(rune('a' + i))
	}
	// Only node 0 accepts connections (all workers dial the I/O node).
	ln, err := tr.Listen(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]float64, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for node := 0; node < nodes; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			opts := spi.DistOptions{Transport: tr, Node: node, Addrs: addrs}
			if node == 0 {
				opts.Listener = ln
			}
			results[node], _, errs[node] = DistributedResidual(model, frame, nPE, 1, opts)
		}(node)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}
	if len(results[0]) != N {
		t.Fatalf("assembled %d samples", len(results[0]))
	}
	for i := range serial {
		if results[0][i] != serial[i] {
			t.Fatalf("sample %d: %v vs serial %v", i, results[0][i], serial[i])
		}
	}
}
