package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func cellFloat(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tbl.Rows[row][col], "%"), 64)
	if err != nil {
		t.Fatalf("cell [%d][%d] = %q: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestTableString(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tbl.AddRow("1", "2")
	s := tbl.String()
	for _, want := range []string{"== T ==", "a", "bb", "1", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	tbl, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(Fig6SampleSizes) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Time grows with sample size for every PE count.
	for col := 1; col <= len(Fig6PEs); col++ {
		for row := 1; row < len(tbl.Rows); row++ {
			if cellFloat(t, tbl, row, col) <= cellFloat(t, tbl, row-1, col) {
				t.Errorf("col %d not increasing at row %d:\n%s", col, row, tbl)
			}
		}
	}
	// More PEs are faster at the largest size.
	last := len(tbl.Rows) - 1
	for col := 2; col <= len(Fig6PEs); col++ {
		if cellFloat(t, tbl, last, col) >= cellFloat(t, tbl, last, col-1) {
			t.Errorf("n=%d not faster than n=%d at N=512:\n%s", col, col-1, tbl)
		}
	}
	// Diminishing returns: speedup(4) < 4.
	if s := cellFloat(t, tbl, last, 1) / cellFloat(t, tbl, last, 4); s >= 4 {
		t.Errorf("4-PE speedup %v >= 4", s)
	}
}

func TestFig7Shape(t *testing.T) {
	tbl, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(Fig7Particles) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	last := len(tbl.Rows) - 1
	// n=2 faster than n=1 everywhere; both grow with N.
	for row := range tbl.Rows {
		if cellFloat(t, tbl, row, 2) >= cellFloat(t, tbl, row, 1) {
			t.Errorf("2 PEs not faster at row %d:\n%s", row, tbl)
		}
	}
	for row := 1; row < len(tbl.Rows); row++ {
		if cellFloat(t, tbl, row, 1) <= cellFloat(t, tbl, row-1, 1) {
			t.Errorf("n=1 time not increasing at row %d", row)
		}
	}
	// Speedup below 2 (communication overhead) but above 1.3 at large N.
	s := cellFloat(t, tbl, last, 1) / cellFloat(t, tbl, last, 2)
	if s >= 2 || s < 1.3 {
		t.Errorf("2-PE speedup %v outside (1.3, 2)", s)
	}
}

func TestTable1Shape(t *testing.T) {
	tbl, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Row 0 is Slices: system small on device, SPI share modest.
	if dev := cellFloat(t, tbl, 0, 2); dev > 20 {
		t.Errorf("system slice utilization %.1f%% too high for table 1", dev)
	}
	if lib := cellFloat(t, tbl, 0, 4); lib < 3 || lib > 45 {
		t.Errorf("SPI slice share %.1f%% outside modest band", lib)
	}
	// Row 3 is BRAMs: SPI holds a large share (paper 50%).
	if lib := cellFloat(t, tbl, 3, 4); lib < 20 || lib > 80 {
		t.Errorf("SPI BRAM share %.1f%% not near half", lib)
	}
}

func TestTable2Shape(t *testing.T) {
	tbl, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	// System dominates device slices; SPI tiny.
	if dev := cellFloat(t, tbl, 0, 2); dev < 25 || dev > 100 {
		t.Errorf("system slice utilization %.1f%% not dominant", dev)
	}
	if lib := cellFloat(t, tbl, 0, 4); lib > 5 {
		t.Errorf("SPI slice share %.2f%% should be tiny (paper 0.2%%)", lib)
	}
	// DSP row: SPI uses none.
	if lib := cellFloat(t, tbl, 4, 4); lib != 0 {
		t.Errorf("SPI DSP share %.1f%%, want 0", lib)
	}
}

func TestFig3ReducesSync(t *testing.T) {
	tbl, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	before := cellFloat(t, tbl, 0, 1)
	after := cellFloat(t, tbl, 0, 2)
	if after >= before {
		t.Errorf("sync edges %v -> %v did not reduce:\n%s", before, after, tbl)
	}
	// Throughput preserved.
	pb := cellFloat(t, tbl, 4, 1)
	pa := cellFloat(t, tbl, 4, 2)
	if pa > pb+1e-6 {
		t.Errorf("period degraded %v -> %v", pb, pa)
	}
}

func TestFig5ReducesSync(t *testing.T) {
	tbl, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if cellFloat(t, tbl, 0, 2) > cellFloat(t, tbl, 0, 1) {
		t.Errorf("fig5 sync edges grew:\n%s", tbl)
	}
}

func TestFigDOTOutputs(t *testing.T) {
	b3, a3 := Fig3DOT(3)
	if !strings.Contains(b3, "digraph") || !strings.Contains(a3, "digraph") {
		t.Error("fig3 DOT malformed")
	}
	if strings.Count(a3, "dashed") > strings.Count(b3, "dashed") {
		t.Error("fig3 after has more sync edges than before")
	}
	b5, a5 := Fig5DOT()
	if strings.Count(a5, "dashed") > strings.Count(b5, "dashed") {
		t.Error("fig5 after has more sync edges than before")
	}
}

func TestSPIvsMPIOrdering(t *testing.T) {
	tbl, err := SPIvsMPI()
	if err != nil {
		t.Fatal(err)
	}
	for row := range tbl.Rows {
		spiStatic := cellFloat(t, tbl, row, 1)
		spiDyn := cellFloat(t, tbl, row, 2)
		mpiT := cellFloat(t, tbl, row, 3)
		if !(spiStatic <= spiDyn && spiDyn < mpiT) {
			t.Errorf("row %d ordering violated: static=%v dynamic=%v mpi=%v",
				row, spiStatic, spiDyn, mpiT)
		}
	}
	// The relative advantage shrinks as payload grows (headers amortize).
	first := cellFloat(t, tbl, 0, 3) / cellFloat(t, tbl, 0, 1)
	lastRow := len(tbl.Rows) - 1
	last := cellFloat(t, tbl, lastRow, 3) / cellFloat(t, tbl, lastRow, 1)
	if last >= first {
		t.Errorf("MPI/SPI ratio should shrink with payload: %v -> %v", first, last)
	}
}

func TestBBSvsUBSShape(t *testing.T) {
	tbl, err := BBSvsUBS()
	if err != nil {
		t.Fatal(err)
	}
	// BBS row: no acks, bounded queue. UBS row: acks, larger queue.
	if got := tbl.Rows[0][2]; got != "0" {
		t.Errorf("BBS acks = %s, want 0", got)
	}
	if cellFloat(t, tbl, 1, 2) == 0 {
		t.Error("UBS should generate acks")
	}
	if cellFloat(t, tbl, 1, 4) <= cellFloat(t, tbl, 0, 4) {
		t.Error("UBS queue should exceed BBS capacity bound")
	}
}

func TestVTSPaddingSavesBytes(t *testing.T) {
	tbl, err := VTSPadding()
	if err != nil {
		t.Fatal(err)
	}
	vtsBytes := cellFloat(t, tbl, 0, 2)
	padBytes := cellFloat(t, tbl, 1, 2)
	if vtsBytes >= padBytes {
		t.Errorf("VTS bytes %v !< padded %v", vtsBytes, padBytes)
	}
	if savings := cellFloat(t, tbl, 0, 3); savings < 50 {
		t.Errorf("VTS savings %.1f%% lower than expected for sparse migrations", savings)
	}
	if cellFloat(t, tbl, 0, 1) > cellFloat(t, tbl, 1, 1) {
		t.Error("VTS should not be slower than padded transfers")
	}
}

func TestFig1VTSTable(t *testing.T) {
	tbl, err := Fig1VTS()
	if err != nil {
		t.Fatal(err)
	}
	// Edge ab: rates 10/8 -> 1/1, b_max 20, bounded by the feedback path.
	r := tbl.Rows[0]
	if r[1] != "10/8" || r[2] != "1/1" || r[3] != "20" {
		t.Errorf("fig1 row = %v", r)
	}
	if r[8] != "SPI_BBS" {
		t.Errorf("protocol = %s, want SPI_BBS (feedback bounds the buffer)", r[8])
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 12 {
		t.Errorf("All returned %d tables", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("table %q is empty", tbl.Title)
		}
	}
}

func TestFramingAblation(t *testing.T) {
	tbl, err := Framing()
	if err != nil {
		t.Fatal(err)
	}
	for row := range tbl.Rows {
		hdrOps := cellFloat(t, tbl, row, 4)
		delimOps := cellFloat(t, tbl, row, 5)
		if hdrOps != 1 {
			t.Errorf("row %d: header receiver ops = %v, want 1", row, hdrOps)
		}
		payload := cellFloat(t, tbl, row, 0)
		if delimOps < payload {
			t.Errorf("row %d: delimiter ops %v < payload %v", row, delimOps, payload)
		}
		// Worst-case delimiter wire ~2x payload; header wire = payload+4.
		if worst := cellFloat(t, tbl, row, 3); worst < 2*payload {
			t.Errorf("row %d: worst-case wire %v < 2x payload", row, worst)
		}
		if hdrWire := cellFloat(t, tbl, row, 1); hdrWire != payload+4 {
			t.Errorf("row %d: header wire %v, want payload+4", row, hdrWire)
		}
	}
}

func TestResyncPlatformAblation(t *testing.T) {
	tbl, err := ResyncPlatform()
	if err != nil {
		t.Fatal(err)
	}
	before := tbl.Rows[0]
	after := tbl.Rows[1]
	if after[1] != "0" {
		t.Errorf("after_resync acks = %s, want 0", after[1])
	}
	if before[1] == "0" {
		t.Error("before_resync should carry acknowledgements")
	}
	if cellFloat(t, tbl, 1, 3) >= cellFloat(t, tbl, 0, 3) {
		t.Error("total messages should drop after resynchronization")
	}
	if cellFloat(t, tbl, 1, 4) > cellFloat(t, tbl, 0, 4)+0.01 {
		t.Error("frame time should not degrade after resynchronization")
	}
}
