package orch

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/spi"
	"repro/internal/transport"
)

// KernelSet is everything a worker needs to execute one partition:
// kernels by actor name, checkpoint hooks for the stateful ones, and a
// collector that drains the epoch's sink digest contributions (called
// only on success, so aborted epochs contribute nothing).
type KernelSet struct {
	Kernels map[string]spi.Kernel
	Hooks   map[string]spi.StateHooks
	Collect func() map[string]uint64
}

// KernelProvider builds a fresh KernelSet for one partition spec. It is
// called once per epoch attempt, so kernel state always starts from the
// spec's checkpoint blobs, never from a previous attempt's leftovers.
type KernelProvider func(spec *spi.PartitionSpec) (*KernelSet, error)

// WorkerConfig configures one orchestrated worker.
type WorkerConfig struct {
	// Transport carries both the control link to the coordinator and the
	// data links to peer workers.
	Transport transport.Transport
	// Coord is the coordinator's control-plane address.
	Coord string
	// Name identifies the worker in registration and logs.
	Name string
	// Kernels builds the kernels for each dispatched partition.
	Kernels KernelProvider
	// DataAddr returns the address to bind the per-epoch data listener
	// on. Nil defaults to "<name>-data-e<epoch>" (loopback-style unique
	// names); TCP deployments return "host:0" for an ephemeral port.
	DataAddr func(epoch uint32) string
	// Retry configures dials: the control dial to the coordinator and
	// the data dials to peers.
	Retry transport.RetryConfig
	// Heartbeat / PeerTimeout enable liveness probing on the control and
	// data links; the coordinator declares this worker dead when its
	// control link falls silent past the peer timeout.
	Heartbeat   time.Duration
	PeerTimeout time.Duration
	// Reconnect enables RESUME resumption on the data plane.
	Reconnect transport.ReconnectConfig
	// SendTimeout bounds data-plane frame writes.
	SendTimeout time.Duration
	// Obs instruments the worker's runtime edges and links.
	Obs *obs.Observer
}

// workerEvent is one decoded control message (or link closure) delivered
// to the worker's event loop.
type workerEvent struct {
	msg    any
	err    error
	closed bool
}

// workerHandler adapts the transport callbacks to the event channel. The
// worker's control link carries no SPI edges, so the data callbacks are
// inert.
type workerHandler struct{ events chan workerEvent }

func (h *workerHandler) HandleData(edge uint16, msg []byte)  {}
func (h *workerHandler) HandleAck(edge uint16, count uint32) {}
func (h *workerHandler) HandleFin(edge uint16)               {}
func (h *workerHandler) HandleLinkClose(err error) {
	h.events <- workerEvent{closed: true, err: err}
}
func (h *workerHandler) HandleCtrl(op byte, payload []byte) {
	msg, err := DecodeCtrl(op, payload)
	if err != nil {
		h.events <- workerEvent{err: err}
		return
	}
	h.events <- workerEvent{msg: msg}
}

// epochRun is one in-flight partition execution.
type epochRun struct {
	epoch  uint32
	cancel context.CancelFunc
	done   chan struct{}
}

// Worker registers with a coordinator and executes the partitions it is
// dispatched until Shutdown, the context is cancelled, or the control
// link dies. A worker holds no graph, no mapping, and no global state:
// everything it executes arrives in partition specs, and everything it
// learned leaves in Done checkpoints.
type Worker struct {
	cfg  WorkerConfig
	link *transport.Link

	mu  sync.Mutex
	lns map[uint32]transport.Listener // per-epoch pending data listeners
}

// NewWorker validates the config and returns an unstarted worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Transport == nil || cfg.Coord == "" || cfg.Kernels == nil {
		return nil, fmt.Errorf("orch: worker needs a transport, a coordinator address, and kernels")
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.DataAddr == nil {
		name := cfg.Name
		cfg.DataAddr = func(epoch uint32) string {
			return fmt.Sprintf("%s-data-e%d", name, epoch)
		}
	}
	return &Worker{cfg: cfg, lns: map[uint32]transport.Listener{}}, nil
}

// Run dials the coordinator, registers, and serves dispatched partitions
// until Shutdown (returns nil), context cancellation (returns the context
// error), or control-link failure.
func (w *Worker) Run(ctx context.Context) error {
	events := make(chan workerEvent, 64)
	conn, err := transport.DialRetry(ctx, w.cfg.Transport, w.cfg.Coord, w.cfg.Retry)
	if err != nil {
		return fmt.Errorf("orch: worker %s dial coordinator: %w", w.cfg.Name, err)
	}
	link, err := transport.NewLink(conn, transport.LinkConfig{
		Node: 0, Ctrl: true,
		Heartbeat: w.cfg.Heartbeat, PeerTimeout: w.cfg.PeerTimeout,
	}, &workerHandler{events: events})
	if err != nil {
		return fmt.Errorf("orch: worker %s handshake: %w", w.cfg.Name, err)
	}
	if !link.CtrlNegotiated() {
		link.Close()
		return fmt.Errorf("orch: worker %s: coordinator did not negotiate the control plane", w.cfg.Name)
	}
	w.link = link
	defer w.closeListeners()
	defer link.Close()
	if err := w.send(Register{Name: w.cfg.Name}); err != nil {
		return err
	}

	var run *epochRun
	for {
		select {
		case <-ctx.Done():
			w.stopRun(run)
			return ctx.Err()
		case ev := <-events:
			switch {
			case ev.closed:
				w.stopRun(run)
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("orch: worker %s lost coordinator: %v", w.cfg.Name, ev.err)
			case ev.err != nil:
				return fmt.Errorf("orch: worker %s control decode: %w", w.cfg.Name, ev.err)
			}
			switch m := ev.msg.(type) {
			case Welcome:
				// Identity is informational for now; specs carry slots.
			case Prepare:
				if err := w.prepare(m.Epoch); err != nil {
					w.send(Fail{Epoch: m.Epoch, Msg: err.Error()})
				}
			case Task:
				if run != nil {
					w.stopRun(run)
				}
				run = w.start(ctx, m)
			case Abort:
				if run != nil && run.epoch == m.Epoch {
					w.stopRun(run)
					run = nil
				}
				w.dropListener(m.Epoch)
				w.send(AbortOK{Epoch: m.Epoch})
			case Shutdown:
				w.stopRun(run)
				return nil
			}
		}
	}
}

// prepare binds the fresh data-plane listener for an epoch and announces
// its address. A fresh listener per epoch fences connections from
// aborted epochs out of the new one: stale peers hold addresses nobody
// listens on anymore.
func (w *Worker) prepare(epoch uint32) error {
	ln, err := w.cfg.Transport.Listen(w.cfg.DataAddr(epoch))
	if err != nil {
		return fmt.Errorf("bind data listener: %w", err)
	}
	w.mu.Lock()
	w.lns[epoch] = ln
	w.mu.Unlock()
	return w.send(Ready{Epoch: epoch, Addr: ln.Addr()})
}

func (w *Worker) takeListener(epoch uint32) transport.Listener {
	w.mu.Lock()
	defer w.mu.Unlock()
	ln := w.lns[epoch]
	delete(w.lns, epoch)
	return ln
}

func (w *Worker) dropListener(epoch uint32) {
	if ln := w.takeListener(epoch); ln != nil {
		ln.Close()
	}
}

func (w *Worker) closeListeners() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, ln := range w.lns {
		ln.Close()
	}
	w.lns = map[uint32]transport.Listener{}
}

// start launches one epoch's partition execution and reports Done or Fail
// when it finishes. The run owns its listener; an Abort cancels the
// context and the executor unwinds every blocked actor.
func (w *Worker) start(ctx context.Context, t Task) *epochRun {
	rctx, cancel := context.WithCancel(ctx)
	run := &epochRun{epoch: t.Epoch, cancel: cancel, done: make(chan struct{})}
	ln := w.takeListener(t.Epoch)
	go func() {
		defer close(run.done)
		defer cancel()
		if ln != nil {
			defer ln.Close()
		} else {
			w.send(Fail{Epoch: t.Epoch, Msg: "task for an unprepared epoch"})
			return
		}
		ks, err := w.cfg.Kernels(t.Spec)
		if err != nil {
			w.send(Fail{Epoch: t.Epoch, Msg: err.Error()})
			return
		}
		res, err := spi.ExecutePartition(t.Spec, ks.Kernels, spi.PartOptions{
			Transport: w.cfg.Transport, Listener: ln,
			Retry: w.cfg.Retry, Context: rctx,
			Reconnect: w.cfg.Reconnect,
			Heartbeat: w.cfg.Heartbeat, PeerTimeout: w.cfg.PeerTimeout,
			SendTimeout: w.cfg.SendTimeout,
			State:       ks.Hooks, Obs: w.cfg.Obs,
		})
		if err != nil {
			if rctx.Err() == nil {
				w.send(Fail{Epoch: t.Epoch, Msg: err.Error()})
			}
			return
		}
		done := Done{
			Epoch: t.Epoch, Tails: res.Tails, State: res.State,
			Firings: map[string]uint32{}, ProcNS: res.ProcNS,
		}
		if ks.Collect != nil {
			done.Digests = ks.Collect()
		}
		for name, n := range res.Firings {
			done.Firings[name] = uint32(n)
		}
		w.send(done)
	}()
	return run
}

func (w *Worker) stopRun(run *epochRun) {
	if run == nil {
		return
	}
	run.cancel()
	<-run.done
}

func (w *Worker) send(msg any) error {
	op, payload := Encode(msg)
	return w.link.SendCtrl(op, payload)
}
