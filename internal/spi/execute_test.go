package spi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/sched"
)

// mapped chain A -> B -> C across two processors.
func executeChain(t *testing.T) (*dataflow.Graph, *sched.Mapping) {
	t.Helper()
	g := dataflow.New("chain")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	c := g.AddActor("C", 1)
	g.AddEdge("ab", a, b, 8, 8, dataflow.EdgeSpec{TokenBytes: 1})
	g.AddEdge("bc", b, c, 8, 8, dataflow.EdgeSpec{TokenBytes: 1})
	m := &sched.Mapping{
		NumProcs: 2,
		Proc:     []sched.Processor{0, 1, 1},
		Order:    [][]dataflow.ActorID{{a}, {b, c}},
	}
	return g, m
}

func TestExecutePipeline(t *testing.T) {
	g, m := executeChain(t)
	var results []byte
	kernels := map[dataflow.ActorID]Kernel{
		0: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			out := make([]byte, 8)
			for i := range out {
				out[i] = byte(iter)
			}
			return map[dataflow.EdgeID][]byte{0: out}, nil
		},
		1: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			data := in[0]
			out := make([]byte, len(data))
			for i, v := range data {
				out[i] = v * 2
			}
			return map[dataflow.EdgeID][]byte{1: out}, nil
		},
		2: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			results = append(results, in[1][0])
			return nil, nil
		},
	}
	st, err := Execute(g, m, kernels, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %v", results)
	}
	for iter, v := range results {
		if v != byte(iter*2) {
			t.Errorf("iteration %d result %d, want %d", iter, v, iter*2)
		}
	}
	// Only the A->B edge crosses processors: 5 messages.
	if st.SPI.Messages != 5 {
		t.Errorf("SPI messages = %d, want 5", st.SPI.Messages)
	}
	if st.LocalTransfers != 5 {
		t.Errorf("local transfers = %d, want 5", st.LocalTransfers)
	}
}

func TestExecuteValidation(t *testing.T) {
	g, m := executeChain(t)
	kernels := map[dataflow.ActorID]Kernel{}
	if _, err := Execute(g, m, kernels, 5); err == nil {
		t.Error("missing kernels should fail")
	}
	full := map[dataflow.ActorID]Kernel{
		0: nopKernel, 1: nopKernel, 2: nopKernel,
	}
	if _, err := Execute(g, m, full, 0); err == nil {
		t.Error("0 iterations should fail")
	}
}

func nopKernel(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
	return nil, nil
}

func TestExecuteKernelErrorPropagates(t *testing.T) {
	g, m := executeChain(t)
	boom := errors.New("boom")
	kernels := map[dataflow.ActorID]Kernel{
		0: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			if iter == 2 {
				return nil, boom
			}
			return map[dataflow.EdgeID][]byte{0: make([]byte, 8)}, nil
		},
		1: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			return map[dataflow.EdgeID][]byte{1: make([]byte, 8)}, nil
		},
		2: nopKernel,
	}
	_, err := Execute(g, m, kernels, 5)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestExecuteBoundViolation(t *testing.T) {
	g := dataflow.New("dyn")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 8, 8, dataflow.EdgeSpec{
		ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 1,
	})
	m := &sched.Mapping{
		NumProcs: 2, Proc: []sched.Processor{0, 1},
		Order: [][]dataflow.ActorID{{a}, {b}},
	}
	kernels := map[dataflow.ActorID]Kernel{
		a: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			return map[dataflow.EdgeID][]byte{0: make([]byte, 9)}, nil // > b_max 8
		},
		b: nopKernel,
	}
	if _, err := Execute(g, m, kernels, 1); err == nil {
		t.Fatal("bound violation should fail")
	}
}

func TestExecuteDynamicVariableSizes(t *testing.T) {
	g := dataflow.New("dyn")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	g.AddEdge("ab", a, b, 64, 64, dataflow.EdgeSpec{
		ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 1,
	})
	m := &sched.Mapping{
		NumProcs: 2, Proc: []sched.Processor{0, 1},
		Order: [][]dataflow.ActorID{{a}, {b}},
	}
	var sizes []int
	kernels := map[dataflow.ActorID]Kernel{
		a: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			return map[dataflow.EdgeID][]byte{0: make([]byte, iter*7%65)}, nil
		},
		b: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			sizes = append(sizes, len(in[0]))
			return nil, nil
		},
	}
	if _, err := Execute(g, m, kernels, 6); err != nil {
		t.Fatal(err)
	}
	for iter, got := range sizes {
		if got != iter*7%65 {
			t.Errorf("iteration %d: size %d, want %d", iter, got, iter*7%65)
		}
	}
}

func TestExecuteDelayedFeedback(t *testing.T) {
	// A <-> B with a delayed feedback edge: B's output for iteration k
	// reaches A at iteration k+1; the preloaded delay message unblocks
	// iteration 0.
	g := dataflow.New("fb")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	fwd := g.AddEdge("ab", a, b, 4, 4, dataflow.EdgeSpec{TokenBytes: 1})
	back := g.AddEdge("ba", b, a, 4, 4, dataflow.EdgeSpec{TokenBytes: 1, Delay: 4})
	m := &sched.Mapping{
		NumProcs: 2, Proc: []sched.Processor{0, 1},
		Order: [][]dataflow.ActorID{{a}, {b}},
	}
	var echoes []uint32
	kernels := map[dataflow.ActorID]Kernel{
		a: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			if len(in[back]) == 4 {
				echoes = append(echoes, binary.LittleEndian.Uint32(in[back]))
			}
			out := make([]byte, 4)
			binary.LittleEndian.PutUint32(out, uint32(iter+100))
			return map[dataflow.EdgeID][]byte{fwd: out}, nil
		},
		b: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			return map[dataflow.EdgeID][]byte{back: in[fwd]}, nil
		},
	}
	if _, err := Execute(g, m, kernels, 4); err != nil {
		t.Fatal(err)
	}
	// Iteration 0 sees the preloaded (zero) message; iterations 1..3 see
	// B's echo of iterations 0..2.
	want := []uint32{0, 100, 101, 102}
	if fmt.Sprint(echoes) != fmt.Sprint(want) {
		t.Errorf("echoes = %v, want %v", echoes, want)
	}
}

func TestExecuteStaticPayloadsArePadded(t *testing.T) {
	g, m := executeChain(t)
	var got int
	kernels := map[dataflow.ActorID]Kernel{
		0: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			return map[dataflow.EdgeID][]byte{0: {1, 2}}, nil // short: padded to 8
		},
		1: func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			got = len(in[0])
			return map[dataflow.EdgeID][]byte{1: in[0]}, nil
		},
		2: nopKernel,
	}
	if _, err := Execute(g, m, kernels, 1); err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Errorf("padded payload = %d bytes, want 8", got)
	}
}
