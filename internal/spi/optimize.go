package spi

import (
	"strings"

	"repro/internal/syncgraph"
)

// OptimizeSync runs the paper's §4 synchronization optimization on a
// system and applies the verdict to its deployment: the IPC graph is
// derived from the mapping, UBS acknowledgement edges are added as
// synchronization feedback, and resynchronization removes the redundant
// ones. If EVERY acknowledgement edge is proven redundant, the deployment
// suppresses acknowledgement messages entirely (SuppressAcks) — the
// "removal of redundant acknowledgement edges for SPI actors" the paper
// describes, automated.
//
// The returned report also serves diagnostic display (counts, period).
func OptimizeSync(sys *System) (*syncgraph.ResyncReport, error) {
	ipc, err := syncgraph.BuildIPCGraph(sys.Graph, sys.Mapping)
	if err != nil {
		return nil, err
	}
	sg := syncgraph.SynchronizationGraph(ipc)
	added := syncgraph.AddAllFeedback(sg, 1)
	rep := syncgraph.Resynchronize(sg, syncgraph.ResyncOptions{})

	// Count the acknowledgement edges that survived.
	surviving := 0
	for _, e := range sg.EdgesOfKind(syncgraph.SyncEdge) {
		if strings.HasPrefix(e.Label, "ack:") {
			surviving++
		}
	}
	if added > 0 && surviving == 0 {
		sys.SuppressAcks = true
	}
	return rep, nil
}
