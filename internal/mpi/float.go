package mpi

import "math"

// float64bits / float64frombits wrap math to keep encoding call sites
// readable.
func float64bits(v float64) uint64     { return math.Float64bits(v) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
