package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Structured event tracing: every sync/ack/data message, credit stall,
// retry, resume, and fault injection becomes one Event in a bounded ring.
// Events render as Chrome trace_event JSON ("ph":"i" instants for message
// events, "ph":"X" complete spans for timed work), so a distributed run
// loads in chrome://tracing / Perfetto alongside the platform simulator's
// Gantt output.

// Arg is one numeric event annotation (Chrome args entry). A zero Key
// marks the slot unused.
type Arg struct {
	Key string
	Val int64
}

// A is shorthand for constructing an Arg.
func A(key string, val int64) Arg { return Arg{Key: key, Val: val} }

// Event phases, matching the Chrome trace_event format.
const (
	PhaseInstant  = 'i' // a point event (one message on the wire)
	PhaseComplete = 'X' // a span with a duration (a kernel firing, a stall)
)

// Event is one trace record. Pid groups rows per node in the Chrome
// viewer; Tid separates edges/links/processors within a node.
type Event struct {
	TS   int64 // µs since tracer start
	Dur  int64 // µs; only meaningful for PhaseComplete
	Ph   byte
	Cat  string
	Name string
	Pid  int
	Tid  int
	Args [2]Arg
}

// Clock reports microseconds since some fixed origin. It must be safe for
// concurrent use.
type Clock func() int64

// WallClock is the production clock: monotonic microseconds since the
// call to WallClock.
func WallClock() Clock {
	start := time.Now()
	return func() int64 { return time.Since(start).Microseconds() }
}

// TestClock is a seeded deterministic clock: each call advances time by a
// pseudo-random 1–16 µs step derived from seed, so traces recorded under
// it have reproducible timestamps given a reproducible event order.
func TestClock(seed uint64) Clock {
	if seed == 0 {
		seed = 1
	}
	var mu sync.Mutex
	state, now := seed, int64(0)
	return func() int64 {
		mu.Lock()
		defer mu.Unlock()
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		now += 1 + int64(state%16)
		return now
	}
}

// Tracer records events into a fixed-capacity ring, overwriting the
// oldest once full (Dropped counts the overwritten). All methods are
// safe for concurrent use and no-ops on a nil receiver, so instrumented
// code calls them unconditionally.
type Tracer struct {
	clock Clock

	mu      sync.Mutex
	ring    []Event
	next    int
	full    bool
	dropped int64
}

// DefaultTraceEvents is the default ring capacity.
const DefaultTraceEvents = 65536

// NewTracer returns a tracer with the given ring capacity (<= 0 means
// DefaultTraceEvents) and clock (nil means WallClock).
func NewTracer(capacity int, clock Clock) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	if clock == nil {
		clock = WallClock()
	}
	return &Tracer{clock: clock, ring: make([]Event, 0, capacity)}
}

// Now reads the tracer's clock (0 on nil), for span start timestamps.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Instant records a point event stamped now.
func (t *Tracer) Instant(cat, name string, pid, tid int, args ...Arg) {
	if t == nil {
		return
	}
	ev := Event{TS: t.clock(), Ph: PhaseInstant, Cat: cat, Name: name, Pid: pid, Tid: tid}
	copyArgs(&ev, args)
	t.emit(ev)
}

// InstantAt records a point event with a caller-supplied timestamp (a
// Now() value), so adjacent events can share one clock read — the clock
// is the most expensive part of recording an instant.
func (t *Tracer) InstantAt(ts int64, cat, name string, pid, tid int, args ...Arg) {
	if t == nil {
		return
	}
	ev := Event{TS: ts, Ph: PhaseInstant, Cat: cat, Name: name, Pid: pid, Tid: tid}
	copyArgs(&ev, args)
	t.emit(ev)
}

// Span records a complete event from start (a Now() value) to now.
func (t *Tracer) Span(cat, name string, pid, tid int, start int64, args ...Arg) {
	if t == nil {
		return
	}
	now := t.clock()
	dur := now - start
	if dur < 0 {
		dur = 0
	}
	ev := Event{TS: start, Dur: dur, Ph: PhaseComplete, Cat: cat, Name: name, Pid: pid, Tid: tid}
	copyArgs(&ev, args)
	t.emit(ev)
}

func copyArgs(ev *Event, args []Arg) {
	for i := 0; i < len(args) && i < len(ev.Args); i++ {
		ev.Args[i] = args[i]
	}
}

func (t *Tracer) emit(ev Event) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.next] = ev
		t.full = true
		t.dropped++
	}
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
	t.mu.Unlock()
}

// Events returns the retained events oldest-first (nil on a nil tracer).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Event(nil), t.ring...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Len reports how many events are retained; Dropped how many were
// overwritten by ring wraparound.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteChrome renders the retained events as Chrome trace_event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return WriteChromeEvents(w, t.Events())
}

// WriteChromeEvents renders events (e.g. several nodes' tracers merged)
// as a Chrome trace_event JSON object: {"traceEvents": [...]}. The
// format is accepted by chrome://tracing and Perfetto.
func WriteChromeEvents(w io.Writer, events []Event) error {
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[")
	for i, ev := range events {
		if i > 0 {
			b.WriteByte(',')
		}
		writeChromeEvent(&b, ev)
	}
	b.WriteString("],\"displayTimeUnit\":\"ms\"}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeChromeEvent(b *strings.Builder, ev Event) {
	fmt.Fprintf(b, "{\"name\":%s,\"cat\":%s,\"ph\":\"%c\",\"ts\":%d",
		strconv.Quote(ev.Name), strconv.Quote(ev.Cat), ev.Ph, ev.TS)
	if ev.Ph == PhaseComplete {
		fmt.Fprintf(b, ",\"dur\":%d", ev.Dur)
	}
	fmt.Fprintf(b, ",\"pid\":%d,\"tid\":%d", ev.Pid, ev.Tid)
	if ev.Args[0].Key != "" {
		b.WriteString(",\"args\":{")
		for i, a := range ev.Args {
			if a.Key == "" {
				break
			}
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s:%d", strconv.Quote(a.Key), a.Val)
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
}
