package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func shmPair(t *testing.T, s *Shm, addr string) (Conn, Conn) {
	t.Helper()
	ln, err := s.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	type res struct {
		c   Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dc, err := s.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { dc.Close(); r.c.Close() })
	return dc, r.c
}

// TestShmConnStream pushes a pseudo-random byte stream many times the ring
// capacity through both directions concurrently and checks byte-exact,
// in-order delivery — the ring wrap, uneven chunking, and backpressure
// paths all on the line. Run with -race: the two endpoints are separate
// mappings whose only synchronization is the ring atomics.
func TestShmConnStream(t *testing.T) {
	s := NewShm(t.TempDir())
	s.RingBytes = shmMinRing // force many wraps
	dc, ac := shmPair(t, s, "stream")

	const total = 64 * shmMinRing
	send := func(c Conn, seed int64, errCh chan<- error) {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, 1+rng.Intn(3*shmMinRing))
		sent := 0
		for sent < total {
			n := len(buf)
			if n > total-sent {
				n = total - sent
			}
			rng.Read(buf[:n])
			if _, err := c.Write(buf[:n]); err != nil {
				errCh <- err
				return
			}
			sent += n
		}
		errCh <- nil
	}
	recv := func(c Conn, seed int64, errCh chan<- error) {
		// Rebuild the expected stream exactly as the sender generates it.
		rng := rand.New(rand.NewSource(seed))
		want := make([]byte, total)
		buf := make([]byte, 1+rng.Intn(3*shmMinRing))
		off := 0
		for off < total {
			n := len(buf)
			if n > total-off {
				n = total - off
			}
			rng.Read(buf[:n])
			copy(want[off:], buf[:n])
			off += n
		}
		got := make([]byte, total)
		if _, err := io.ReadFull(c, got); err != nil {
			errCh <- err
			return
		}
		if !bytes.Equal(got, want) {
			errCh <- errors.New("stream corrupted")
			return
		}
		errCh <- nil
	}
	errs := make(chan error, 4)
	go send(dc, 101, errs)
	go recv(ac, 101, errs)
	go send(ac, 202, errs)
	go recv(dc, 202, errs)
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestShmConnClose: close semantics mirror a socket — the peer drains
// buffered bytes then sees EOF; writes into a closed peer fail; operations
// on one's own closed conn fail immediately.
func TestShmConnClose(t *testing.T) {
	s := NewShm(t.TempDir())
	dc, ac := shmPair(t, s, "close")
	if _, err := dc.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	dc.Close()
	buf := make([]byte, 16)
	n, err := ac.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("drain after peer close: %q, %v", buf[:n], err)
	}
	if _, err := ac.Read(buf); err != io.EOF {
		t.Fatalf("read after drain = %v, want EOF", err)
	}
	if _, err := ac.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
	if _, err := dc.Read(buf); err == nil {
		t.Fatal("read on own closed conn succeeded")
	}
	if _, err := dc.Write([]byte("x")); err == nil {
		t.Fatal("write on own closed conn succeeded")
	}
	if err := dc.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestShmConnDeadlines: expired deadlines surface os.ErrDeadlineExceeded
// (a net.Error with Timeout() true — what the Link layer keys on), and
// clearing the deadline restores blocking I/O.
func TestShmConnDeadlines(t *testing.T) {
	s := NewShm(t.TempDir())
	s.RingBytes = shmMinRing
	dc, ac := shmPair(t, s, "deadline")

	ac.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 8)
	_, err := ac.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read past deadline = %v, want os.ErrDeadlineExceeded", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("deadline error %v is not a net.Error timeout", err)
	}

	// Fill the ring so a write blocks, then let the write deadline fire.
	dc.SetWriteDeadline(time.Now().Add(20 * time.Millisecond))
	junk := make([]byte, 2*shmMinRing)
	if _, err := dc.Write(junk); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("write past deadline = %v, want os.ErrDeadlineExceeded", err)
	}

	// Clear deadlines: the stalled directions complete once drained.
	dc.SetWriteDeadline(time.Time{})
	ac.SetReadDeadline(time.Time{})
	done := make(chan error, 1)
	go func() {
		_, err := dc.Write([]byte("hello"))
		done <- err
	}()
	drain := make([]byte, shmMinRing)
	deadline := time.Now().Add(5 * time.Second)
	got := 0
	for got < shmMinRing+5 { // ring fill + "hello"
		ac.SetReadDeadline(deadline)
		n, err := ac.Read(drain)
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		got += n
	}
	if err := <-done; err != nil {
		t.Fatalf("write after deadline cleared: %v", err)
	}
}

// TestShmDialRefusedAndRetry: no rendezvous directory is a transient
// refusal, and DialRetry rides out a late listener — the same startup-race
// contract as TCP ECONNREFUSED.
func TestShmDialRefusedAndRetry(t *testing.T) {
	s := NewShm(t.TempDir())
	_, err := s.Dial("ghost")
	if err == nil {
		t.Fatal("dialing an unbound shm address should fail")
	}
	if !IsTransient(err) {
		t.Fatalf("unbound shm dial should be transient, got %v", err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		ln, err := s.Listen("late")
		if err != nil {
			return
		}
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
		ln.Close()
	}()
	c, err := DialRetry(context.Background(), s, "late", RetryConfig{
		Attempts: 50, BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial after listener came up: %v", err)
	}
	c.Close()
}

func TestShmAddressReuse(t *testing.T) {
	s := NewShm(t.TempDir())
	ln, err := s.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Listen("a"); err == nil {
		t.Fatal("double bind should fail")
	}
	ln.Close()
	ln2, err := s.Listen("a")
	if err != nil {
		t.Fatalf("rebinding a closed address: %v", err)
	}
	ln2.Close()
}

// TestShmAcceptRejectsCorruptSegment drops garbage into the rendezvous
// directory: Accept must discard it (and remove the file) and still accept
// the next well-formed segment.
func TestShmAcceptRejectsCorruptSegment(t *testing.T) {
	s := NewShm(t.TempDir())
	ln, err := s.Listen("robust")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	bad := s.dir("robust") + "/conn-0-garbage"
	if err := os.WriteFile(bad, []byte("not a segment"), 0o600); err != nil {
		t.Fatal(err)
	}
	type res struct {
		c   Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dc, err := s.Dial("robust")
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	defer r.c.Close()
	if _, err := os.Stat(bad); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt segment file was not removed")
	}
	if _, err := dc.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(r.c, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("post-garbage conn broken: %q, %v", buf, err)
	}
}

// TestShmListenerCloseUnblocks: Close unblocks a pending Accept and turns
// waiting dialers away with a transient refusal.
func TestShmListenerCloseUnblocks(t *testing.T) {
	s := NewShm(t.TempDir())
	s.DialTimeout = 10 * time.Second
	ln, err := s.Listen("bye")
	if err != nil {
		t.Fatal(err)
	}
	acceptErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		acceptErr <- err
	}()
	time.Sleep(5 * time.Millisecond)
	ln.Close()
	select {
	case err := <-acceptErr:
		if err == nil {
			t.Fatal("accept on closed listener succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accept did not unblock on close")
	}
	if _, err := s.Dial("bye"); err == nil || !IsTransient(err) {
		t.Fatalf("dial after close = %v, want transient refusal", err)
	}
}

// TestShmChaosSeverResume runs the Link RESUME protocol over severed shm
// connections: each re-dial attaches a fresh segment, and the replayed
// frame suffix must deliver every message exactly once, in order.
func TestShmChaosSeverResume(t *testing.T) {
	ft := NewFaultTransport(NewShm(t.TempDir()), FaultConfig{
		Seed: 7, SeverAt: []int{11, 37, 80}, SkipFrames: 4,
	})
	hd, ha := newRecordingHandler(), newRecordingHandler()
	dialer, acceptor, stop := chaosLinkPair(t, ft, hd, ha)
	defer stop()
	const n = 200
	for i := 0; i < n; i++ {
		msg := make([]byte, 10)
		msg[0] = 7
		binary.LittleEndian.PutUint32(msg[2:], 4)
		binary.LittleEndian.PutUint32(msg[6:], uint32(i))
		if err := dialer.SendData(7, msg); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	got := ha.waitData(t, 7, n)
	for i, msg := range got {
		if payload := binary.LittleEndian.Uint32(msg[6:]); payload != uint32(i) {
			t.Fatalf("message %d carries payload %d (lost or reordered across resume)", i, payload)
		}
	}
	closeBoth(dialer, acceptor)
	if st := ft.Stats(); st.Severs == 0 {
		t.Fatal("no sever landed; schedule is inert")
	}
	if st := dialer.Stats(); st.Resumes == 0 {
		t.Fatal("no RESUME ran; the reattached-segment path went untested")
	}
}

// TestSameHostSelectsShm: the composite transport takes the shared-memory
// path for a local address and falls back to the network when the peer
// has no shm rendezvous (e.g. it listens with plain TCP).
func TestSameHostSelectsShm(t *testing.T) {
	sh := &SameHost{Shm: NewShm(t.TempDir()), Fallback: &TCP{}}
	ln, err := sh.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   Conn
		err error
	}
	ch := make(chan res, 2)
	var pump sync.WaitGroup
	pump.Add(1)
	go func() {
		defer pump.Done()
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dc, err := sh.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	if !strings.HasPrefix(dc.RemoteAddr(), "shm:") {
		t.Fatalf("same-host dial took %q, want the shm path", dc.RemoteAddr())
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	defer r.c.Close()
	if _, err := dc.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(r.c, buf); err != nil || string(buf) != "hi" {
		t.Fatalf("same-host shm conn broken: %q, %v", buf, err)
	}
	pump.Wait()
}

func TestSameHostFallsBackToTCP(t *testing.T) {
	// The peer listens with plain TCP — no shm rendezvous exists, so the
	// composite dialer must fall back.
	tcp := &TCP{}
	ln, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
	}()
	sh := &SameHost{Shm: NewShm(t.TempDir()), Fallback: tcp}
	c, err := sh.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if strings.HasPrefix(c.RemoteAddr(), "shm:") {
		t.Fatalf("fallback dial took the shm path to %q", c.RemoteAddr())
	}
}

// FuzzDecodeShmHeader: the header codec must never panic on arbitrary
// bytes, and any input it accepts must re-encode to exactly the bytes it
// decoded — the codec admits no non-canonical encodings a hostile segment
// could smuggle state through.
func FuzzDecodeShmHeader(f *testing.F) {
	f.Add(EncodeShmHeader(ShmHeader{Version: shmVersion, RingCap: 1 << 20, SegSize: shmDataOff + 2<<20}))
	f.Add(EncodeShmHeader(ShmHeader{Version: shmVersion, RingCap: shmMinRing, SegSize: shmDataOff + 2*shmMinRing}))
	f.Add(make([]byte, ShmHeaderSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := DecodeShmHeader(b)
		if err != nil {
			return
		}
		if h.Version != shmVersion {
			t.Fatalf("accepted version %d", h.Version)
		}
		if h.RingCap < shmMinRing || h.RingCap > shmMaxRing || h.RingCap&(h.RingCap-1) != 0 {
			t.Fatalf("accepted ring capacity %d", h.RingCap)
		}
		if h.SegSize != shmDataOff+2*uint64(h.RingCap) {
			t.Fatalf("accepted segment size %d for ring %d", h.SegSize, h.RingCap)
		}
		if !bytes.Equal(EncodeShmHeader(h), b[:ShmHeaderSize]) {
			t.Fatal("decode accepted a non-canonical encoding")
		}
	})
}
