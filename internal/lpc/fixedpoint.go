package lpc

import (
	"math"

	"repro/internal/dsp"
	"repro/internal/fixed"
)

// Bit-true model of the hardware error generator. The FPGA PEs of the
// paper's application 1 compute the prediction error in 16-bit fixed point:
// samples are Q15, predictor coefficients are scaled into Q15 with a power-
// of-two shift (coefficients routinely exceed 1.0 in magnitude), the tap
// products accumulate in a wide register, and the error is produced with
// rounding and saturation. HardwareResidual reproduces those semantics
// exactly, so software results can be compared bit-for-bit against what
// the hardware PEs would emit.

// HardwareModelQ15 is the fixed-point form of an LPC predictor: Q15
// coefficients plus the power-of-two scale shift.
type HardwareModelQ15 struct {
	Coeffs []fixed.Q15
	// Shift is the left shift applied after accumulation: the true
	// coefficient is Coeffs[k].Float() * 2^Shift.
	Shift uint
}

// QuantizeModel converts a floating-point predictor into the hardware's
// Q15 representation.
func QuantizeModel(m *dsp.LPCModel) *HardwareModelQ15 {
	var maxAbs float64
	for _, c := range m.Coeffs {
		if a := math.Abs(c); a > maxAbs {
			maxAbs = a
		}
	}
	shift := uint(0)
	for maxAbs >= 1.0 && shift < 15 {
		maxAbs /= 2
		shift++
	}
	q := &HardwareModelQ15{Shift: shift}
	scale := math.Pow(2, -float64(shift))
	for _, c := range m.Coeffs {
		q.Coeffs = append(q.Coeffs, fixed.FromFloat(c*scale))
	}
	return q
}

// Float returns the effective floating-point coefficients the hardware
// model realizes (after quantization).
func (h *HardwareModelQ15) Float() []float64 {
	out := make([]float64, len(h.Coeffs))
	factor := math.Pow(2, float64(h.Shift))
	for i, c := range h.Coeffs {
		out[i] = c.Float() * factor
	}
	return out
}

// Residual computes the prediction error of the Q15 frame exactly as the
// hardware datapath does: per sample, a wide MAC over the taps, a left
// shift compensating the coefficient scaling, rounding, saturation, and a
// saturating subtract from the input sample.
func (h *HardwareModelQ15) Residual(frame []fixed.Q15) []fixed.Q15 {
	out := make([]fixed.Q15, len(frame))
	for i := range frame {
		var acc fixed.Acc
		for k, c := range h.Coeffs {
			j := i - 1 - k
			if j >= 0 {
				acc = acc.MAC(c, frame[j])
			}
		}
		// Compensate the coefficient scale: the accumulator holds
		// prediction / 2^Shift in Q30.
		pred := fixed.Acc(int64(acc) << h.Shift).Q15()
		out[i] = fixed.Sub(frame[i], pred)
	}
	return out
}

// HardwareResidual runs the full bit-true path on a floating-point frame:
// quantize samples and model to Q15, compute the hardware residual, and
// return it as floats. The companion float-domain reference for accuracy
// comparisons is dsp.LPCModel.Residual.
func HardwareResidual(m *dsp.LPCModel, frame []float64) []float64 {
	hm := QuantizeModel(m)
	q := fixed.FromFloats(frame)
	return fixed.ToFloats(hm.Residual(q))
}
