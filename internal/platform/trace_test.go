package platform

import (
	"strings"
	"testing"
)

func tracedPipeline(t *testing.T) *Sim {
	t.Helper()
	sim, err := NewSim(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sim.AddChannel(ChannelSpec{From: 0, To: 1, Name: "c"})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetProgram(0, Program{Compute(50), Send(ch, 16)})
	sim.SetProgram(1, Program{Recv(ch), Compute(30)})
	sim.EnableTrace()
	return sim
}

func TestTraceRecordsSegments(t *testing.T) {
	sim := tracedPipeline(t)
	st, err := sim.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	tr := sim.LastTrace()
	if tr == nil {
		t.Fatal("trace missing")
	}
	// Per iteration: compute+send on PE0, recv+compute on PE1 => 12 total.
	if len(tr.Segments) != 12 {
		t.Fatalf("segments = %d, want 12", len(tr.Segments))
	}
	kinds := map[SegmentKind]int{}
	for _, s := range tr.Segments {
		if s.End < s.Start {
			t.Errorf("segment ends before it starts: %+v", s)
		}
		kinds[s.Kind]++
	}
	if kinds[SegCompute] != 6 || kinds[SegSend] != 3 || kinds[SegRecv] != 3 {
		t.Errorf("kind counts = %v", kinds)
	}
	// Trace busy time matches stats busy time.
	for pe := 0; pe < 2; pe++ {
		if tr.Busy(pe) != st.PEBusy[pe] {
			t.Errorf("PE%d trace busy %d != stats busy %d", pe, tr.Busy(pe), st.PEBusy[pe])
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	sim, _ := NewSim(DefaultConfig(1))
	sim.SetProgram(0, Program{Compute(5)})
	if _, err := sim.Run(1); err != nil {
		t.Fatal(err)
	}
	if sim.LastTrace() != nil {
		t.Error("trace should be nil when disabled")
	}
}

func TestPESegmentsOrdered(t *testing.T) {
	sim := tracedPipeline(t)
	if _, err := sim.Run(5); err != nil {
		t.Fatal(err)
	}
	segs := sim.LastTrace().PESegments(0)
	for i := 1; i < len(segs); i++ {
		if segs[i].Start < segs[i-1].Start {
			t.Fatal("segments out of order")
		}
		if segs[i].PE != 0 {
			t.Fatal("wrong PE filtered")
		}
	}
}

func TestGanttRendering(t *testing.T) {
	sim := tracedPipeline(t)
	if _, err := sim.Run(4); err != nil {
		t.Fatal(err)
	}
	gantt := sim.LastTrace().Gantt(2, 60)
	if !strings.Contains(gantt, "PE0") || !strings.Contains(gantt, "PE1") {
		t.Errorf("gantt missing PE rows:\n%s", gantt)
	}
	for _, mark := range []string{"#", ">", "<"} {
		if !strings.Contains(gantt, mark) {
			t.Errorf("gantt missing %q marks:\n%s", mark, gantt)
		}
	}
	lines := strings.Split(strings.TrimRight(gantt, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("gantt lines = %d, want header + 2 rows", len(lines))
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if got := tr.Gantt(1, 40); !strings.Contains(got, "empty") {
		t.Errorf("empty gantt = %q", got)
	}
}

func TestSegmentKindString(t *testing.T) {
	if SegCompute.String() != "compute" || SegSend.String() != "send" || SegRecv.String() != "recv" {
		t.Error("segment kind strings")
	}
	if !strings.Contains(SegmentKind(7).String(), "7") {
		t.Error("unknown segment kind")
	}
}

func TestTraceIterationsLabeled(t *testing.T) {
	sim := tracedPipeline(t)
	if _, err := sim.Run(3); err != nil {
		t.Fatal(err)
	}
	iters := map[int]bool{}
	for _, s := range sim.LastTrace().Segments {
		iters[s.Iter] = true
	}
	for k := 0; k < 3; k++ {
		if !iters[k] {
			t.Errorf("iteration %d missing from trace", k)
		}
	}
}
