package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Link wire protocol. Every frame is length-delimited so the SPI message
// inside a DATA frame crosses the stream byte-identical to its in-process
// encoding (spi.EncodeMessage):
//
//	frame   := u32 length | u8 type | body          (length covers type+body)
//	HELLO   := u32 magic | u8 version | u16 node | u16 nedges | nedges * decl
//	decl    := u16 edge | u8 mode | u8 flags | u32 bytes | u8 protocol | u32 capacity
//	DATA    := SPI-encoded message (edge ID in its first 2 bytes)
//	ACK     := u16 edge | u32 count                 (BBS credits / UBS acks)
//	GOODBYE := empty                                (graceful shutdown)
//
// All integers are little-endian, matching the SPI message headers.
const (
	frameHello   byte = 1
	frameData    byte = 2
	frameAck     byte = 3
	frameGoodbye byte = 4

	helloMagic   uint32 = 0x53504931 // "SPI1"
	helloVersion byte   = 1

	frameHeaderBytes = 5
	declBytes        = 13
	ackBodyBytes     = 6

	// DefaultMaxFrame bounds one frame; anything larger on the wire is a
	// framing error, protecting the receiver from hostile length fields.
	DefaultMaxFrame = 1 << 24
)

// EdgeDecl is one edge's entry in the handshake manifest. Both sides of a
// link declare every SPI edge they expect to carry; the handshake fails
// unless the manifests agree edge-for-edge with complementary directions.
type EdgeDecl struct {
	// ID is the interprocessor edge ID (spi.EdgeID).
	ID uint16
	// Mode is the SPI framing (0 = static, 1 = dynamic), recorded so a
	// misconfigured peer is rejected at connect time, not mid-stream.
	Mode uint8
	// Out is true when the local side sends DATA on this edge (and
	// receives ACKs); the peer must declare the mirror image.
	Out bool
	// Bytes is the static payload size or the dynamic b_max bound.
	Bytes uint32
	// Protocol is the buffer synchronization protocol (0 = BBS, 1 = UBS).
	Protocol uint8
	// Capacity is the BBS buffer capacity in messages (0 for UBS).
	Capacity uint32
}

func writeFrame(w io.Writer, typ byte, body []byte) error {
	hdr := make([]byte, frameHeaderBytes, frameHeaderBytes+len(body))
	binary.LittleEndian.PutUint32(hdr, uint32(1+len(body)))
	hdr[4] = typ
	_, err := w.Write(append(hdr, body...))
	return err
}

func readFrame(r io.Reader, maxFrame int) (typ byte, body []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 1 {
		return 0, nil, fmt.Errorf("frame of %d bytes shorter than type byte", n)
	}
	if int(n) > maxFrame {
		return 0, nil, fmt.Errorf("frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

func encodeHello(node uint16, edges []EdgeDecl) []byte {
	body := make([]byte, 9+len(edges)*declBytes)
	binary.LittleEndian.PutUint32(body, helloMagic)
	body[4] = helloVersion
	binary.LittleEndian.PutUint16(body[5:], node)
	binary.LittleEndian.PutUint16(body[7:], uint16(len(edges)))
	off := 9
	for _, d := range edges {
		binary.LittleEndian.PutUint16(body[off:], d.ID)
		body[off+2] = d.Mode
		if d.Out {
			body[off+3] = 1
		}
		binary.LittleEndian.PutUint32(body[off+4:], d.Bytes)
		body[off+8] = d.Protocol
		binary.LittleEndian.PutUint32(body[off+9:], d.Capacity)
		off += declBytes
	}
	return body
}

func decodeHello(body []byte) (node uint16, edges []EdgeDecl, err error) {
	if len(body) < 9 {
		return 0, nil, fmt.Errorf("hello of %d bytes shorter than fixed header", len(body))
	}
	if m := binary.LittleEndian.Uint32(body); m != helloMagic {
		return 0, nil, fmt.Errorf("bad magic %#x", m)
	}
	if v := body[4]; v != helloVersion {
		return 0, nil, fmt.Errorf("protocol version %d, want %d", v, helloVersion)
	}
	node = binary.LittleEndian.Uint16(body[5:])
	n := int(binary.LittleEndian.Uint16(body[7:]))
	if len(body) != 9+n*declBytes {
		return 0, nil, fmt.Errorf("hello declares %d edges but carries %d bytes", n, len(body))
	}
	edges = make([]EdgeDecl, n)
	off := 9
	for i := range edges {
		edges[i] = EdgeDecl{
			ID:       binary.LittleEndian.Uint16(body[off:]),
			Mode:     body[off+2],
			Out:      body[off+3] != 0,
			Bytes:    binary.LittleEndian.Uint32(body[off+4:]),
			Protocol: body[off+8],
			Capacity: binary.LittleEndian.Uint32(body[off+9:]),
		}
		off += declBytes
	}
	return node, edges, nil
}

func encodeAck(edge uint16, count uint32) []byte {
	body := make([]byte, ackBodyBytes)
	binary.LittleEndian.PutUint16(body, edge)
	binary.LittleEndian.PutUint32(body[2:], count)
	return body
}

func decodeAck(body []byte) (edge uint16, count uint32, err error) {
	if len(body) != ackBodyBytes {
		return 0, 0, fmt.Errorf("ack frame of %d bytes, want %d", len(body), ackBodyBytes)
	}
	return binary.LittleEndian.Uint16(body), binary.LittleEndian.Uint32(body[2:]), nil
}
