// Package hdl models the HDL realization of SPI systems at the structural
// level: hardware modules composed of primitives (registers, LUT logic,
// FIFOs, block RAMs, DSP slices) with an FPGA resource-cost model calibrated
// to the Xilinx Virtex-4 family the paper targets.
//
// No actual synthesis happens — the package substitutes for Xilinx ISE's
// area reports. Costs are first-order estimates (a register bit is a slice
// flip-flop; two FFs or two 4-input LUTs fit one Virtex-4 slice; an 18 Kbit
// block RAM holds 2 KiB; a DSP48 implements an 18x18 multiply-accumulate).
// What the paper's tables 1 and 2 assert is *relative*: the SPI library's
// area is small next to the application datapath — a claim a consistent
// bottom-up cost model can check without a synthesizer.
package hdl

import "fmt"

// Resources is a Virtex-4-style FPGA area vector.
type Resources struct {
	// Slices is the occupied slice estimate: max(FFs, LUT4s) / 2, plus
	// explicit slice costs of primitives. Tracked directly rather than
	// derived so modules can override packing assumptions.
	Slices int
	// SliceFFs counts slice flip-flops.
	SliceFFs int
	// LUT4s counts 4-input look-up tables.
	LUT4s int
	// BRAMs counts 18 Kbit block RAMs.
	BRAMs int
	// DSP48s counts DSP48 multiply-accumulate slices.
	DSP48s int
}

// Add returns the element-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		Slices:   r.Slices + o.Slices,
		SliceFFs: r.SliceFFs + o.SliceFFs,
		LUT4s:    r.LUT4s + o.LUT4s,
		BRAMs:    r.BRAMs + o.BRAMs,
		DSP48s:   r.DSP48s + o.DSP48s,
	}
}

// Scale returns the resources multiplied by n (n instances of a module).
func (r Resources) Scale(n int) Resources {
	return Resources{
		Slices:   r.Slices * n,
		SliceFFs: r.SliceFFs * n,
		LUT4s:    r.LUT4s * n,
		BRAMs:    r.BRAMs * n,
		DSP48s:   r.DSP48s * n,
	}
}

// IsZero reports whether all counts are zero.
func (r Resources) IsZero() bool {
	return r == Resources{}
}

// String renders the vector compactly.
func (r Resources) String() string {
	return fmt.Sprintf("slices=%d ffs=%d luts=%d brams=%d dsp48s=%d",
		r.Slices, r.SliceFFs, r.LUT4s, r.BRAMs, r.DSP48s)
}

// Percent is a resource vector expressed as percentages of a reference.
type Percent struct {
	Slices, SliceFFs, LUT4s, BRAMs, DSP48s float64
}

// PercentOf expresses r as a percentage of base, component-wise. Components
// whose base is zero report 0.
func (r Resources) PercentOf(base Resources) Percent {
	pct := func(a, b int) float64 {
		if b == 0 {
			return 0
		}
		return 100 * float64(a) / float64(b)
	}
	return Percent{
		Slices:   pct(r.Slices, base.Slices),
		SliceFFs: pct(r.SliceFFs, base.SliceFFs),
		LUT4s:    pct(r.LUT4s, base.LUT4s),
		BRAMs:    pct(r.BRAMs, base.BRAMs),
		DSP48s:   pct(r.DSP48s, base.DSP48s),
	}
}

// VirtexSX35 returns the device budget of a Virtex-4 SX35 — a mid-size
// member of the family the paper's speed-grade-10 target matches.
func VirtexSX35() Resources {
	return Resources{
		Slices:   15360,
		SliceFFs: 30720,
		LUT4s:    30720,
		BRAMs:    192,
		DSP48s:   192,
	}
}

// VirtexLX60 returns a logic-rich alternative device budget.
func VirtexLX60() Resources {
	return Resources{
		Slices:   26624,
		SliceFFs: 53248,
		LUT4s:    53248,
		BRAMs:    160,
		DSP48s:   64,
	}
}
