// Package dataflow implements synchronous dataflow (SDF) graph modeling for
// signal processing applications, in the style of Lee & Messerschmitt.
//
// An SDF graph consists of actors (coarse-grain functional blocks) connected
// by FIFO edges. Each edge declares how many tokens its source actor produces
// and its sink actor consumes per firing. Because the rates are known at
// compile time, the graph admits static analysis: a repetitions vector that
// balances production and consumption, periodic admissible sequential
// schedules (PASS), and bounded buffer sizes.
//
// The package also carries the extensions needed by the Signal Passing
// Interface (SPI) framework: dynamic ports with declared upper bounds on
// their rates (the raw material for the Variable Token Size conversion in
// package vts), per-token byte sizes, and interprocessor-mapping metadata.
package dataflow

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ActorID identifies an actor within a single Graph. IDs are dense and
// assigned in insertion order starting at 0.
type ActorID int

// EdgeID identifies an edge within a single Graph. IDs are dense and
// assigned in insertion order starting at 0.
type EdgeID int

// NoActor is the zero-value sentinel for "no actor".
const NoActor ActorID = -1

// Actor is a coarse-grain dataflow actor. Actors are pure graph nodes: the
// functional behaviour lives with the runtime (package spi) or the
// application packages; the graph only needs names and cost annotations.
type Actor struct {
	// Name is a human-readable label, unique within the graph.
	Name string
	// ExecCycles is the nominal execution time of one firing, in processor
	// cycles. Used by schedulers and by the platform simulator. Zero means
	// "unknown"; analyses that need a cost treat zero as 1.
	ExecCycles int64
}

// PortKind distinguishes static SDF ports from dynamic ports whose rate
// varies at run time (bounded above, per the VTS restriction).
type PortKind uint8

const (
	// StaticPort produces/consumes a fixed token count per firing.
	StaticPort PortKind = iota
	// DynamicPort produces/consumes a run-time-variable token count per
	// firing, bounded above by the port's declared maximum rate.
	DynamicPort
)

func (k PortKind) String() string {
	switch k {
	case StaticPort:
		return "static"
	case DynamicPort:
		return "dynamic"
	default:
		return fmt.Sprintf("PortKind(%d)", uint8(k))
	}
}

// Port describes one endpoint of an edge.
type Port struct {
	// Kind says whether the rate is fixed or run-time variable.
	Kind PortKind
	// Rate is the tokens transferred per firing. For a DynamicPort this is
	// the declared upper bound on the rate (the paper's "x has an upper
	// bound of 10"); the VTS conversion turns it into a packed token of
	// bounded size moving at rate 1.
	Rate int
}

// Edge is a FIFO connection between a producer and a consumer actor.
type Edge struct {
	// Name is a human-readable label, unique within the graph.
	Name string
	// Src and Snk are the producing and consuming actors.
	Src, Snk ActorID
	// Produce is the source port (production rate).
	Produce Port
	// Consume is the sink port (consumption rate).
	Consume Port
	// Delay is the number of initial tokens on the edge (unit delays).
	Delay int
	// TokenBytes is the size in bytes of one raw (unpacked) token.
	// Zero means "unknown"; size-dependent analyses treat zero as 1.
	TokenBytes int
}

// Dynamic reports whether either endpoint of the edge is a dynamic port.
func (e *Edge) Dynamic() bool {
	return e.Produce.Kind == DynamicPort || e.Consume.Kind == DynamicPort
}

// Graph is a mutable SDF graph. The zero value is an empty graph ready to
// use. Graph is not safe for concurrent mutation.
type Graph struct {
	name   string
	actors []Actor
	edges  []Edge
	out    [][]EdgeID // outgoing edge IDs per actor
	in     [][]EdgeID // incoming edge IDs per actor

	actorByName map[string]ActorID
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{name: name, actorByName: make(map[string]ActorID)}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// NumActors returns the number of actors in the graph.
func (g *Graph) NumActors() int { return len(g.actors) }

// NumEdges returns the number of edges in the graph.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddActor adds an actor with the given name and nominal execution time and
// returns its ID. Adding a second actor with the same name panics: graphs
// are built by construction code, and a duplicate name is a programming
// error, not an input error.
func (g *Graph) AddActor(name string, execCycles int64) ActorID {
	if g.actorByName == nil {
		g.actorByName = make(map[string]ActorID)
	}
	if _, dup := g.actorByName[name]; dup {
		panic(fmt.Sprintf("dataflow: duplicate actor name %q", name))
	}
	id := ActorID(len(g.actors))
	g.actors = append(g.actors, Actor{Name: name, ExecCycles: execCycles})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.actorByName[name] = id
	return id
}

// Actor returns the actor with the given ID.
func (g *Graph) Actor(id ActorID) *Actor {
	return &g.actors[id]
}

// ActorByName returns the ID of the named actor, or NoActor and false.
func (g *Graph) ActorByName(name string) (ActorID, bool) {
	id, ok := g.actorByName[name]
	if !ok {
		return NoActor, false
	}
	return id, true
}

// EdgeSpec carries the optional attributes of a new edge. The zero value
// means: static ports, no delay, 1-byte tokens.
type EdgeSpec struct {
	Delay      int
	TokenBytes int
	// ProduceDynamic / ConsumeDynamic mark the corresponding port as
	// dynamic; the rate passed to AddEdge is then interpreted as the upper
	// bound on the run-time rate.
	ProduceDynamic bool
	ConsumeDynamic bool
}

// AddEdge adds an edge from src to snk with the given production and
// consumption rates and returns its ID. Rates must be positive.
func (g *Graph) AddEdge(name string, src, snk ActorID, produce, consume int, spec EdgeSpec) EdgeID {
	if produce <= 0 || consume <= 0 {
		panic(fmt.Sprintf("dataflow: edge %q has non-positive rate (produce=%d consume=%d)", name, produce, consume))
	}
	if int(src) >= len(g.actors) || int(snk) >= len(g.actors) || src < 0 || snk < 0 {
		panic(fmt.Sprintf("dataflow: edge %q references unknown actor", name))
	}
	if spec.Delay < 0 {
		panic(fmt.Sprintf("dataflow: edge %q has negative delay %d", name, spec.Delay))
	}
	pk, ck := StaticPort, StaticPort
	if spec.ProduceDynamic {
		pk = DynamicPort
	}
	if spec.ConsumeDynamic {
		ck = DynamicPort
	}
	tb := spec.TokenBytes
	if tb == 0 {
		tb = 1
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{
		Name:       name,
		Src:        src,
		Snk:        snk,
		Produce:    Port{Kind: pk, Rate: produce},
		Consume:    Port{Kind: ck, Rate: consume},
		Delay:      spec.Delay,
		TokenBytes: tb,
	})
	g.out[src] = append(g.out[src], id)
	g.in[snk] = append(g.in[snk], id)
	return id
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) *Edge {
	return &g.edges[id]
}

// Out returns the IDs of edges leaving the actor.
func (g *Graph) Out(a ActorID) []EdgeID { return g.out[a] }

// In returns the IDs of edges entering the actor.
func (g *Graph) In(a ActorID) []EdgeID { return g.in[a] }

// Actors returns the actor IDs in insertion order.
func (g *Graph) Actors() []ActorID {
	ids := make([]ActorID, len(g.actors))
	for i := range ids {
		ids[i] = ActorID(i)
	}
	return ids
}

// Edges returns the edge IDs in insertion order.
func (g *Graph) Edges() []EdgeID {
	ids := make([]EdgeID, len(g.edges))
	for i := range ids {
		ids[i] = EdgeID(i)
	}
	return ids
}

// HasDynamicEdges reports whether any edge has a dynamic port. Such graphs
// require VTS conversion before pure SDF analysis applies.
func (g *Graph) HasDynamicEdges() bool {
	for i := range g.edges {
		if g.edges[i].Dynamic() {
			return true
		}
	}
	return false
}

// Validate checks structural invariants that the incremental builders cannot
// enforce: the graph must have at least one actor, and every dynamic port
// must carry a positive upper bound (the VTS restriction from the paper:
// "we require that an upper bound on the token size be specified for each
// dynamic port").
func (g *Graph) Validate() error {
	if len(g.actors) == 0 {
		return errors.New("dataflow: graph has no actors")
	}
	for i := range g.edges {
		e := &g.edges[i]
		if e.Produce.Rate <= 0 || e.Consume.Rate <= 0 {
			return fmt.Errorf("dataflow: edge %q has non-positive rate", e.Name)
		}
		if e.TokenBytes <= 0 {
			return fmt.Errorf("dataflow: edge %q has non-positive token size", e.Name)
		}
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.name)
	c.actors = append([]Actor(nil), g.actors...)
	c.edges = append([]Edge(nil), g.edges...)
	c.out = make([][]EdgeID, len(g.out))
	c.in = make([][]EdgeID, len(g.in))
	for i := range g.out {
		c.out[i] = append([]EdgeID(nil), g.out[i]...)
	}
	for i := range g.in {
		c.in[i] = append([]EdgeID(nil), g.in[i]...)
	}
	for name, id := range g.actorByName {
		c.actorByName[name] = id
	}
	return c
}

// String renders a compact description of the graph, one edge per line,
// suitable for debugging and golden tests.
func (g *Graph) String() string {
	s := fmt.Sprintf("graph %q: %d actors, %d edges\n", g.name, len(g.actors), len(g.edges))
	names := make([]string, 0, len(g.edges))
	for i := range g.edges {
		e := &g.edges[i]
		dyn := ""
		if e.Dynamic() {
			dyn = " [dynamic]"
		}
		names = append(names, fmt.Sprintf("  %s: %s -(%d)-> (%d)- %s delay=%d bytes=%d%s",
			e.Name, g.actors[e.Src].Name, e.Produce.Rate, e.Consume.Rate,
			g.actors[e.Snk].Name, e.Delay, e.TokenBytes, dyn))
	}
	sort.Strings(names)
	for _, n := range names {
		s += n + "\n"
	}
	return s
}

// DOT renders the graph in Graphviz format: boxes for actors, edge labels
// showing produce/consume rates, delays as "•d", dashed lines for dynamic
// edges.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box];\n", g.name)
	for i := range g.actors {
		fmt.Fprintf(&b, "  a%d [label=%q];\n", i, g.actors[i].Name)
	}
	for i := range g.edges {
		e := &g.edges[i]
		label := fmt.Sprintf("%d:%d", e.Produce.Rate, e.Consume.Rate)
		if e.Delay > 0 {
			label += fmt.Sprintf(" •%d", e.Delay)
		}
		style := "solid"
		if e.Dynamic() {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  a%d -> a%d [label=%q, style=%s];\n", e.Src, e.Snk, label, style)
	}
	b.WriteString("}\n")
	return b.String()
}
