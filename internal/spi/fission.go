package spi

import (
	"fmt"

	"repro/internal/dataflow"
)

// Kernel plumbing for fissioned graphs (dataflow.Fission). The rewrite
// is ID-stable, so every non-fissioned actor's kernel runs unchanged;
// this file supplies the three new stages:
//
//   - the scatter stage (the fissioned actor's reused node) splits or
//     broadcasts each input payload across the replicas,
//   - each replica computes its share,
//   - the gather stage reassembles the replica chunks in order, so
//     downstream actors see byte-identical payloads.
//
// Two replica modes cover the two ways an actor is data-parallel:
//
// A FissionWorker (the LPC path) computes replica r's output chunks
// directly from its inputs — real 1/k work per replica, real speedup.
//
// Without a worker, FissionKernels falls back to transparent replication:
// every replica receives the full (broadcast) inputs, runs the original
// kernel, and emits only its SplitCounts chunk of each output. That does
// k-times the compute — no speedup — but it is semantics-preserving for
// ANY kernel, which is what the digest smokes verify: the plumbing
// (scatter/gather edges, placement, transports, chaos recovery) is
// exercised end to end with bit-identical sink digests. Kernels must
// treat a nil input and an empty input identically (the scatter stage
// forwards a delayed edge's nil payload as an empty chunk).

// FissionWorker computes one replica's share of a fissioned actor: it
// receives the replica's input payloads keyed by the SOURCE graph's
// input edge IDs (full payloads for broadcast edges, the replica's
// token chunk for split edges) and returns the replica's chunk of each
// output keyed by the SOURCE graph's output edge IDs. Concatenating the
// replica chunks in order must reproduce the unfissioned actor's output.
type FissionWorker func(iter, replica int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error)

// FissionKernels builds the kernel set for plan.Graph from the kernel
// set of plan.Source: non-fissioned kernels are reused as-is (the
// rewrite preserves their actor and edge IDs), and the scatter, replica,
// and gather stages are synthesized. worker selects the replica mode;
// nil means transparent replication, which requires every input edge to
// be broadcast (the original kernel needs its full inputs).
func FissionKernels(plan *dataflow.FissionPlan, kernels map[dataflow.ActorID]Kernel, worker FissionWorker) (map[dataflow.ActorID]Kernel, error) {
	src := plan.Source
	orig := kernels[plan.Actor]
	if worker == nil {
		if orig == nil {
			return nil, fmt.Errorf("spi: fission of %q in transparent mode needs the actor's kernel", src.Actor(plan.Actor).Name)
		}
		for eid, isSplit := range plan.SplitIn {
			if isSplit {
				return nil, fmt.Errorf("spi: fission of %q in transparent mode cannot split input edge %q (the original kernel needs full inputs)",
					src.Actor(plan.Actor).Name, src.Edge(eid).Name)
			}
		}
	}

	out := make(map[dataflow.ActorID]Kernel, len(kernels)+plan.K+1)
	for id, k := range kernels {
		if id == plan.Actor {
			continue
		}
		out[id] = k
	}

	k := plan.K
	ins := append([]dataflow.EdgeID(nil), src.In(plan.Actor)...)
	outs := append([]dataflow.EdgeID(nil), src.Out(plan.Actor)...)

	// Scatter: split or broadcast each input payload. Returning input
	// aliases is allowed by the Kernel contract (sends complete before
	// the executor reuses the buffers).
	out[plan.Scatter] = func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
		o := make(map[dataflow.EdgeID][]byte, len(ins)*k)
		for _, eid := range ins {
			ids := plan.ScatterEdges[eid]
			if plan.SplitIn[eid] {
				chunks := SplitPayload(in[eid], src.Edge(eid).TokenBytes, k)
				for i := 0; i < k; i++ {
					o[ids[i]] = chunks[i]
				}
			} else {
				for i := 0; i < k; i++ {
					o[ids[i]] = in[eid]
				}
			}
		}
		return o, nil
	}

	// Replicas.
	for i := 0; i < k; i++ {
		i := i
		out[plan.Replicas[i]] = func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
			srcIn := make(map[dataflow.EdgeID][]byte, len(ins))
			for _, eid := range ins {
				srcIn[eid] = in[plan.ScatterEdges[eid][i]]
			}
			var srcOut map[dataflow.EdgeID][]byte
			var err error
			if worker != nil {
				srcOut, err = worker(iter, i, srcIn)
			} else {
				srcOut, err = orig(iter, srcIn)
			}
			if err != nil {
				return nil, fmt.Errorf("spi: fission replica %d of %q: %w", i, src.Actor(plan.Actor).Name, err)
			}
			o := make(map[dataflow.EdgeID][]byte, len(outs))
			for _, eid := range outs {
				p := srcOut[eid]
				if worker == nil {
					// Transparent mode: the replica computed the full
					// output; keep only this replica's chunk.
					p = SplitPayload(p, src.Edge(eid).TokenBytes, k)[i]
				}
				o[plan.GatherEdges[eid][i]] = p
			}
			return o, nil
		}
	}

	// Gather: reassemble each output stream in replica order.
	out[plan.Gather] = func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
		o := make(map[dataflow.EdgeID][]byte, len(outs))
		for _, eid := range outs {
			chunks := make([][]byte, k)
			for i, gid := range plan.GatherEdges[eid] {
				chunks[i] = in[gid]
			}
			o[eid] = ConcatChunks(chunks)
		}
		return o, nil
	}
	return out, nil
}
