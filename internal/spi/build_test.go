package spi

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/platform"
	"repro/internal/sched"
)

// mappedPair builds A(on PE0) -> B(on PE1) with the given edge spec.
func mappedPair(t *testing.T, produce, consume int, spec dataflow.EdgeSpec) (*dataflow.Graph, *sched.Mapping) {
	t.Helper()
	g := dataflow.New("pair")
	a := g.AddActor("A", 100)
	b := g.AddActor("B", 100)
	g.AddEdge("ab", a, b, produce, consume, spec)
	m := &sched.Mapping{
		NumProcs: 2,
		Proc:     []sched.Processor{0, 1},
		Order:    [][]dataflow.ActorID{{a}, {b}},
	}
	return g, m
}

func TestBuildStaticEdge(t *testing.T) {
	g, m := mappedPair(t, 4, 4, dataflow.EdgeSpec{TokenBytes: 2})
	dep, err := Build(&System{Graph: g, Mapping: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Plans) != 1 {
		t.Fatalf("plans = %v", dep.Plans)
	}
	p := dep.Plans[0]
	if p.Mode != Static {
		t.Errorf("mode = %v, want Static", p.Mode)
	}
	if dep.Sim.Channel(p.Channel).HeaderBytes != StaticHeaderBytes {
		t.Errorf("header = %d, want %d", dep.Sim.Channel(p.Channel).HeaderBytes, StaticHeaderBytes)
	}
	st, err := dep.Sim.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages[platform.DataMsg] != 10 {
		t.Errorf("messages = %d, want 10", st.Messages[platform.DataMsg])
	}
	// Payload per message = 4 tokens x 2 bytes = 8, plus 2-byte header.
	if st.Bytes[platform.DataMsg] != 10*(8+StaticHeaderBytes) {
		t.Errorf("bytes = %d", st.Bytes[platform.DataMsg])
	}
}

func TestBuildDynamicEdgeUsesDynamicHeaderAndUBS(t *testing.T) {
	// No feedback path: the bound analysis cannot bound the buffer, so
	// the edge must land on UBS with a dynamic header.
	g, m := mappedPair(t, 10, 10, dataflow.EdgeSpec{
		ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 2,
	})
	sizes := []int{4, 20, 0, 12}
	dep, err := Build(&System{
		Graph: g, Mapping: m,
		PayloadFn: map[dataflow.EdgeID]func(int) int{
			0: func(iter int) int { return sizes[iter%len(sizes)] },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := dep.Plans[0]
	if p.Mode != Dynamic || p.Protocol != UBS {
		t.Errorf("plan = %+v, want Dynamic/UBS", p)
	}
	st, err := dep.Sim.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	wantPayload := int64(4 + 20 + 0 + 12)
	if st.Bytes[platform.DataMsg] != wantPayload+4*DynamicHeaderBytes {
		t.Errorf("data bytes = %d, want %d", st.Bytes[platform.DataMsg], wantPayload+4*DynamicHeaderBytes)
	}
	if st.Messages[platform.AckMsg] != 4 {
		t.Errorf("acks = %d, want 4 (UBS)", st.Messages[platform.AckMsg])
	}
}

func TestBuildBoundedEdgeGetsBBS(t *testing.T) {
	// Add a feedback edge with delay so eq. 2 bounds the buffer.
	g, m := mappedPair(t, 1, 1, dataflow.EdgeSpec{TokenBytes: 4})
	aID, _ := g.ActorByName("A")
	bID, _ := g.ActorByName("B")
	g.AddEdge("ba", bID, aID, 1, 1, dataflow.EdgeSpec{Delay: 2, TokenBytes: 1})
	dep, err := Build(&System{Graph: g, Mapping: m})
	if err != nil {
		t.Fatal(err)
	}
	var abPlan *EdgePlan
	for i := range dep.Plans {
		if g.Edge(dep.Plans[i].Edge).Name == "ab" {
			abPlan = &dep.Plans[i]
		}
	}
	if abPlan == nil {
		t.Fatal("ab plan missing")
	}
	if abPlan.Protocol != BBS {
		t.Errorf("protocol = %v, want BBS (bounded by feedback)", abPlan.Protocol)
	}
	if abPlan.Capacity < 1 {
		t.Errorf("capacity = %d", abPlan.Capacity)
	}
	if _, err := dep.Sim.Run(5); err != nil {
		t.Fatal(err)
	}
}

func TestBuildForceUBS(t *testing.T) {
	g, m := mappedPair(t, 1, 1, dataflow.EdgeSpec{TokenBytes: 4})
	aID, _ := g.ActorByName("A")
	bID, _ := g.ActorByName("B")
	g.AddEdge("ba", bID, aID, 1, 1, dataflow.EdgeSpec{Delay: 2})
	dep, err := Build(&System{
		Graph: g, Mapping: m,
		ForceUBS: map[dataflow.EdgeID]bool{0: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Plans[0].Protocol != UBS {
		t.Errorf("ForceUBS ignored: %+v", dep.Plans[0])
	}
}

func TestBuildPreloadFromDelay(t *testing.T) {
	// Edge with 2 iterations of delay lets the consumer start immediately.
	g, m := mappedPair(t, 1, 1, dataflow.EdgeSpec{TokenBytes: 4, Delay: 2})
	dep, err := Build(&System{Graph: g, Mapping: m})
	if err != nil {
		t.Fatal(err)
	}
	spec := dep.Sim.Channel(dep.Plans[0].Channel)
	if spec.Preload != 2 {
		t.Errorf("preload = %d, want 2", spec.Preload)
	}
	if _, err := dep.Sim.Run(5); err != nil {
		t.Fatal(err)
	}
}

func TestBuildExtraSyncMessages(t *testing.T) {
	g, m := mappedPair(t, 1, 1, dataflow.EdgeSpec{TokenBytes: 4})
	dep, err := Build(&System{
		Graph: g, Mapping: m,
		ExtraSync: []SyncMessage{{FromPE: 1, ToPE: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.SyncChannels) != 1 {
		t.Fatalf("sync channels = %v", dep.SyncChannels)
	}
	st, err := dep.Sim.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages[platform.SyncMsg] != 3 {
		t.Errorf("sync messages = %d, want 3", st.Messages[platform.SyncMsg])
	}
}

func TestBuildComputeFnOverride(t *testing.T) {
	g, m := mappedPair(t, 1, 1, dataflow.EdgeSpec{TokenBytes: 4})
	aID, _ := g.ActorByName("A")
	dep, err := Build(&System{
		Graph: g, Mapping: m,
		ComputeFn: map[dataflow.ActorID]func(int) int64{
			aID: func(iter int) int64 { return 5000 },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dep.Sim.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Finish < 5000 {
		t.Errorf("finish = %d, want >= 5000 (override)", st.Finish)
	}
}

func TestBuildBlockedEdgePacksSlabs(t *testing.T) {
	// Block 4 on a delay-free edge: the simulator must model one packed
	// slab per sim iteration instead of four scalar messages, with the
	// header paid once per block.
	g, m := mappedPair(t, 4, 4, dataflow.EdgeSpec{TokenBytes: 2})
	scalar, err := Build(&System{Graph: g, Mapping: m})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := Build(&System{Graph: g, Mapping: m, Block: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 20 graph iterations either way: 20 scalar sim iterations vs 5
	// blocked ones.
	ss, err := scalar.Sim.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocked.Sim.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Messages[platform.DataMsg] != 20 || bs.Messages[platform.DataMsg] != 5 {
		t.Errorf("messages scalar/blocked = %d/%d, want 20/5",
			ss.Messages[platform.DataMsg], bs.Messages[platform.DataMsg])
	}
	// Same 8-byte payload per graph iteration; the blocked run pays one
	// dynamic header per slab instead of one static header per message.
	if ss.Bytes[platform.DataMsg] != 20*(8+StaticHeaderBytes) {
		t.Errorf("scalar bytes = %d", ss.Bytes[platform.DataMsg])
	}
	want := int64(5 * (SlabBound(8, false, 4) + DynamicHeaderBytes))
	if bs.Bytes[platform.DataMsg] != want {
		t.Errorf("blocked bytes = %d, want %d", bs.Bytes[platform.DataMsg], want)
	}
	if hdr := blocked.Sim.Channel(blocked.Plans[0].Channel).HeaderBytes; hdr != DynamicHeaderBytes {
		t.Errorf("blocked header = %d, want %d (slabs use SPI_dynamic framing)", hdr, DynamicHeaderBytes)
	}
}

func TestBuildBlockedMisalignedEdgeStaysScalar(t *testing.T) {
	// One iteration of delay does not divide block 2, so the edge keeps
	// token granularity: two individual messages per sim iteration.
	g, m := mappedPair(t, 1, 1, dataflow.EdgeSpec{TokenBytes: 4, Delay: 1})
	dep, err := Build(&System{Graph: g, Mapping: m, Block: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dep.Sim.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages[platform.DataMsg] != 10 {
		t.Errorf("messages = %d, want 10 (2 per sim iteration, no slab)", st.Messages[platform.DataMsg])
	}
	if dep.Plans[0].Mode != Static {
		t.Errorf("mode = %v, want Static (misaligned edge keeps scalar framing)", dep.Plans[0].Mode)
	}
}

func TestBuildRejectsInfeasibleBlock(t *testing.T) {
	// A tight cycle with one iteration of delay admits no block above 1;
	// Build must surface CheckBlock's diagnosis instead of deadlocking
	// the simulation.
	g, m := mappedPair(t, 1, 1, dataflow.EdgeSpec{TokenBytes: 2})
	aID, _ := g.ActorByName("A")
	bID, _ := g.ActorByName("B")
	g.AddEdge("ba", bID, aID, 1, 1, dataflow.EdgeSpec{Delay: 1, TokenBytes: 1})
	if _, err := Build(&System{Graph: g, Mapping: m, Block: 2}); err == nil {
		t.Error("block 2 on a 1-iteration-delay cycle should fail feasibility")
	}
	if _, err := Build(&System{Graph: g, Mapping: m, Block: 1}); err != nil {
		t.Errorf("scalar build of the same system should pass: %v", err)
	}
}

func TestBuildRejectsBadMapping(t *testing.T) {
	g, _ := mappedPair(t, 1, 1, dataflow.EdgeSpec{})
	bad := &sched.Mapping{NumProcs: 1, Proc: []sched.Processor{0}, Order: [][]dataflow.ActorID{{0}}}
	if _, err := Build(&System{Graph: g, Mapping: bad}); err == nil {
		t.Error("mismatched mapping should fail")
	}
}

func TestBuildRejectsSmallPlatform(t *testing.T) {
	g, m := mappedPair(t, 1, 1, dataflow.EdgeSpec{})
	cfg := platform.DefaultConfig(1)
	if _, err := Build(&System{Graph: g, Mapping: m, Platform: cfg}); err == nil {
		t.Error("1-PE platform for 2-proc mapping should fail")
	}
}
