package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs_total", "messages", L("edge", "sm"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same instance.
	if again := r.Counter("msgs_total", "messages", L("edge", "sm")); again != c {
		t.Error("re-registration returned a different counter")
	}
	// Different labels are a different series.
	other := r.Counter("msgs_total", "messages", L("edge", "ms"))
	if other == c {
		t.Error("different labels returned the same counter")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 || g.Max() != 5 {
		t.Errorf("gauge value %d max %d, want 1 and 5", g.Value(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %g, want 556.5", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_us_bucket{le="1"} 2`,   // 0.5 and 1 (le is inclusive)
		`lat_us_bucket{le="10"} 3`,  // + 5
		`lat_us_bucket{le="100"} 4`, // + 50
		`lat_us_bucket{le="+Inf"} 5`,
		`lat_us_sum 556.5`,
		`lat_us_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var o *Observer
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tr.Instant("cat", "name", 0, 0)
	tr.Span("cat", "name", 0, 0, tr.Now())
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read as zero")
	}
	if o.Counter("x", "") != nil || o.Gauge("x", "") != nil ||
		o.Histogram("x", "", nil) != nil || o.Tracer() != nil || o.Pid() != 0 {
		t.Error("nil observer must hand out nil handles")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees", L("edge", "sm"), L("node", "0")).Add(7)
	r.Counter("b_total", "bees", L("edge", "ms"), L("node", "0")).Add(2)
	r.Gauge("a_depth", "depth").Set(-3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := "# HELP a_depth depth\n" +
		"# TYPE a_depth gauge\n" +
		"a_depth -3\n" +
		"# HELP b_total bees\n" +
		"# TYPE b_total counter\n" +
		"b_total{edge=\"ms\",node=\"0\"} 2\n" +
		"b_total{edge=\"sm\",node=\"0\"} 7\n"
	if out != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", out, want)
	}
}

func TestSumAndGet(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "", L("edge", "a")).Add(3)
	r.Counter("m_total", "", L("edge", "b")).Add(4)
	if got := r.Sum("m_total"); got != 7 {
		t.Errorf("Sum = %d, want 7", got)
	}
	if got := r.Sum("missing"); got != 0 {
		t.Errorf("Sum(missing) = %d, want 0", got)
	}
	if v, ok := r.Get("m_total", L("edge", "b")); !ok || v != 4 {
		t.Errorf("Get = %d,%v want 4,true", v, ok)
	}
	if _, ok := r.Get("m_total", L("edge", "zzz")); ok {
		t.Error("Get of unknown series reported ok")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestRegistryConcurrent hammers registration, recording, and export from
// many goroutines at once; run under -race this is the registry's
// concurrency contract.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			labels := []Label{L("worker", string(rune('a'+w%4)))}
			c := r.Counter("conc_total", "", labels...)
			g := r.Gauge("conc_depth", "", labels...)
			h := r.Histogram("conc_lat", "", nil, labels...)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 100))
				if i%500 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Sum("conc_total"); got != workers*perWorker {
		t.Errorf("conc_total = %d, want %d", got, workers*perWorker)
	}
	if got := r.Sum("conc_depth"); got != workers*perWorker {
		t.Errorf("conc_depth = %d, want %d", got, workers*perWorker)
	}
}
