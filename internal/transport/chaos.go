package transport

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// FaultConfig is a seeded, deterministic fault schedule for a
// FaultTransport. The same config against the same workload injects the
// same faults, so chaos tests are reproducible by seed.
//
// Probabilistic faults (Drop, Duplicate, Corrupt) apply only to numbered
// session frames — DATA, ACK, FIN — never to handshake or control frames,
// so every injected fault is one the resume protocol is designed to
// repair: a drop surfaces as a sequence gap, a corruption as a CRC
// mismatch, a duplicate is discarded by the sequence filter. Delay and
// Sever apply to any frame.
type FaultConfig struct {
	// Seed drives the per-connection RNG. Connections draw from the
	// schedule in dial/accept order.
	Seed int64
	// Drop is the probability a session frame write is silently
	// swallowed (the peer sees a sequence gap on the next frame).
	Drop float64
	// Duplicate is the probability a session frame is written twice.
	Duplicate float64
	// Corrupt is the probability one byte of a session frame is flipped
	// before writing. The flip lands beyond the length prefix so the
	// frame CRC always catches it: a corrupted length prefix would
	// desynchronize the stream instead, which only an idle timeout (not
	// a checksum) can detect — a failure mode outside this schedule's
	// scope.
	Corrupt float64
	// Delay is the probability a write is stalled by DelayFor.
	Delay float64
	// DelayFor is the stall applied to delayed writes (default 2ms).
	DelayFor time.Duration
	// SeverAt lists frame ordinals (counted per connection across both
	// directions' writes through this wrapper) at which the connection
	// is severed: the write fails and the conn is closed. Deterministic
	// sever points, independent of the RNG.
	SeverAt []int
	// Sever is the probability any frame write severs the connection.
	Sever float64
	// StallAt, when > 0, black-holes the connection from that write
	// ordinal on: every write (this one and all later, heartbeats
	// included) reports success but nothing reaches the peer, and the
	// connection stays open. A sever is detectable — the next I/O errors —
	// but a stall is pure silence, the half-open failure mode that only a
	// heartbeat timeout can distinguish from an idle peer. Deterministic,
	// independent of the RNG; counts one fault when it triggers.
	StallAt int
	// SkipFrames exempts the first N writes on each connection from all
	// faults, keeping handshakes intact so schedules exercise
	// mid-session recovery rather than connect failures.
	SkipFrames int
	// MaxFaults caps the total number of injected faults across the
	// whole transport (0 = unlimited). A capped schedule guarantees the
	// workload eventually runs fault-free and completes.
	MaxFaults int
	// DenyDialsAfter, when > 0, makes every dial fail once that many
	// dials have succeeded — simulating a peer that dies and never comes
	// back, which drives reconnect exhaustion and graceful degradation.
	DenyDialsAfter int
}

// FaultStats counts the faults a FaultTransport actually injected.
type FaultStats struct {
	Drops, Duplicates, Corruptions, Delays, Severs, Stalls, DeniedDials int64
}

// FaultTransport wraps another Transport and injects the configured
// faults into every connection it creates (both dialed and accepted).
type FaultTransport struct {
	inner Transport
	cfg   FaultConfig

	mu      sync.Mutex
	nextRNG int64 // per-connection RNG seeds derive from Seed + counter
	dials   int64
	faults  int64 // total injected, compared against MaxFaults

	drops, dups, corrupts, delays, severs, stalls, denied int64

	obs faultObs
}

// faultObs carries the optional observability handles for a
// FaultTransport; the zero value disables everything.
type faultObs struct {
	tr       *obs.Tracer
	pid      int
	counters map[string]*obs.Counter
}

// SetObserver attaches metrics and tracing to the transport. Each
// injected fault increments chaos_faults_total{kind} and emits a "fault"
// trace instant. Call before the transport carries traffic.
func (t *FaultTransport) SetObserver(o *obs.Observer) {
	if o == nil {
		return
	}
	fo := faultObs{tr: o.Tracer(), pid: o.Pid(), counters: map[string]*obs.Counter{}}
	for _, kind := range []string{"drop", "duplicate", "corrupt", "delay", "sever", "stall", "denydial"} {
		fo.counters[kind] = o.Counter("chaos_faults_total",
			"Faults injected by the chaos transport, by kind.", obs.L("kind", kind))
	}
	t.mu.Lock()
	t.obs = fo
	t.mu.Unlock()
}

// fault records one injected fault of the given kind.
func (t *FaultTransport) fault(kind string) {
	t.mu.Lock()
	fo := t.obs
	t.mu.Unlock()
	if fo.counters == nil {
		return
	}
	fo.counters[kind].Inc()
	fo.tr.Instant("fault", kind, fo.pid, 0)
}

// NewFaultTransport wraps inner with the given fault schedule.
func NewFaultTransport(inner Transport, cfg FaultConfig) *FaultTransport {
	if cfg.DelayFor <= 0 {
		cfg.DelayFor = 2 * time.Millisecond
	}
	return &FaultTransport{inner: inner, cfg: cfg}
}

// Name identifies the wrapper in flags and logs.
func (t *FaultTransport) Name() string { return t.inner.Name() + "+chaos" }

// Stats returns a snapshot of the injected-fault counters.
func (t *FaultTransport) Stats() FaultStats {
	return FaultStats{
		Drops:       atomic.LoadInt64(&t.drops),
		Duplicates:  atomic.LoadInt64(&t.dups),
		Corruptions: atomic.LoadInt64(&t.corrupts),
		Delays:      atomic.LoadInt64(&t.delays),
		Severs:      atomic.LoadInt64(&t.severs),
		Stalls:      atomic.LoadInt64(&t.stalls),
		DeniedDials: atomic.LoadInt64(&t.denied),
	}
}

// spendFault consumes one unit of the MaxFaults budget; it returns false
// when the budget is exhausted and the fault must not be injected.
func (t *FaultTransport) spendFault() bool {
	if t.cfg.MaxFaults <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.faults >= int64(t.cfg.MaxFaults) {
		return false
	}
	t.faults++
	return true
}

func (t *FaultTransport) newConn(c Conn) Conn {
	t.mu.Lock()
	seed := t.cfg.Seed + t.nextRNG
	t.nextRNG++
	t.mu.Unlock()
	return &faultConn{Conn: c, t: t, rng: rand.New(rand.NewSource(seed))}
}

// Dial connects through the inner transport, unless the schedule has
// declared the peer permanently dead.
func (t *FaultTransport) Dial(addr string) (Conn, error) {
	if t.cfg.DenyDialsAfter > 0 {
		t.mu.Lock()
		deny := t.dials >= int64(t.cfg.DenyDialsAfter)
		if !deny {
			t.dials++
		}
		t.mu.Unlock()
		if deny {
			atomic.AddInt64(&t.denied, 1)
			t.fault("denydial")
			return nil, &Error{Op: "dial", Addr: addr, Transient: true,
				Err: fmt.Errorf("chaos: dial denied (peer declared dead)")}
		}
	}
	c, err := t.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return t.newConn(c), nil
}

// Listen wraps the inner listener so accepted connections inject faults
// too.
func (t *FaultTransport) Listen(addr string) (Listener, error) {
	ln, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &faultListener{Listener: ln, t: t}, nil
}

type faultListener struct {
	Listener
	t *FaultTransport
}

func (ln *faultListener) Accept() (Conn, error) {
	c, err := ln.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return ln.t.newConn(c), nil
}

// faultConn injects the schedule into Write calls. The Link layer writes
// exactly one frame per Write (writeFrame and the resend buffer both
// produce whole-frame byte slices), so per-write faults are per-frame
// faults.
type faultConn struct {
	Conn
	t *FaultTransport

	mu      sync.Mutex
	rng     *rand.Rand
	writes  int
	dead    bool
	stalled bool // StallAt triggered: writes succeed but go nowhere
}

// errSevered is what writes on a chaos-severed connection report.
var errSevered = fmt.Errorf("chaos: connection severed")

func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return 0, &Error{Op: "send", Addr: c.RemoteAddr(), Err: errSevered}
	}
	if c.stalled {
		return len(p), nil // black hole: success reported, nothing sent
	}
	cfg := &c.t.cfg
	// Heartbeat probes bypass the write-ordinal count and the RNG so a
	// link with probing on draws the exact same fault schedule as one
	// without: heartbeats observe chaos, they must not perturb it. A
	// stalled or dead connection still swallows them (above) — that is
	// the failure they exist to detect.
	if len(p) > 4 && (p[4] == framePing || p[4] == framePong) {
		return c.Conn.Write(p)
	}
	ord := c.writes
	c.writes++
	if ord < cfg.SkipFrames {
		return c.Conn.Write(p)
	}
	if cfg.StallAt > 0 && ord >= cfg.StallAt && c.t.spendFault() {
		c.stalled = true
		atomic.AddInt64(&c.t.stalls, 1)
		c.t.fault("stall")
		return len(p), nil
	}
	for _, at := range cfg.SeverAt {
		if at == ord && c.t.spendFault() {
			return c.sever()
		}
	}
	// One frame per write: byte 4 is the frame type, so session frames
	// are identifiable without extra plumbing.
	session := len(p) > 4 && numberedFrame(p[4])
	roll := c.rng.Float64()
	switch {
	case cfg.Sever > 0 && roll < cfg.Sever && c.t.spendFault():
		return c.sever()
	case session && cfg.Drop > 0 && roll < cfg.Drop && c.t.spendFault():
		atomic.AddInt64(&c.t.drops, 1)
		c.t.fault("drop")
		return len(p), nil // swallowed; peer sees a sequence gap next frame
	case session && cfg.Corrupt > 0 && roll < cfg.Corrupt && c.t.spendFault():
		atomic.AddInt64(&c.t.corrupts, 1)
		c.t.fault("corrupt")
		bad := make([]byte, len(p))
		copy(bad, p)
		bad[4+c.rng.Intn(len(bad)-4)] ^= 0x20
		return c.Conn.Write(bad)
	case session && cfg.Duplicate > 0 && roll < cfg.Duplicate && c.t.spendFault():
		atomic.AddInt64(&c.t.dups, 1)
		c.t.fault("duplicate")
		if n, err := c.Conn.Write(p); err != nil {
			return n, err
		}
		return c.Conn.Write(p)
	case cfg.Delay > 0 && roll < cfg.Delay && c.t.spendFault():
		atomic.AddInt64(&c.t.delays, 1)
		c.t.fault("delay")
		time.Sleep(cfg.DelayFor)
	}
	return c.Conn.Write(p)
}

func (c *faultConn) sever() (int, error) {
	atomic.AddInt64(&c.t.severs, 1)
	c.t.fault("sever")
	c.dead = true
	c.Conn.Close()
	return 0, &Error{Op: "send", Addr: c.RemoteAddr(), Err: errSevered}
}

// ParseFaultSpec parses a "key=value,key=value" chaos specification, as
// accepted by spinode's -chaos flag. Keys: seed, drop, dup, corrupt,
// delay, delayms, sever, severat (semicolon-separated ordinals), stallat,
// skip, maxfaults, denydials.
func ParseFaultSpec(spec string) (FaultConfig, error) {
	var cfg FaultConfig
	if strings.TrimSpace(spec) == "" {
		return cfg, fmt.Errorf("empty chaos spec")
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos spec entry %q is not key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			cfg.Drop, err = strconv.ParseFloat(val, 64)
		case "dup":
			cfg.Duplicate, err = strconv.ParseFloat(val, 64)
		case "corrupt":
			cfg.Corrupt, err = strconv.ParseFloat(val, 64)
		case "delay":
			cfg.Delay, err = strconv.ParseFloat(val, 64)
		case "delayms":
			var ms int
			ms, err = strconv.Atoi(val)
			cfg.DelayFor = time.Duration(ms) * time.Millisecond
		case "sever":
			cfg.Sever, err = strconv.ParseFloat(val, 64)
		case "severat":
			for _, s := range strings.Split(val, ";") {
				var at int
				if at, err = strconv.Atoi(s); err != nil {
					break
				}
				cfg.SeverAt = append(cfg.SeverAt, at)
			}
		case "stallat":
			cfg.StallAt, err = strconv.Atoi(val)
		case "skip":
			cfg.SkipFrames, err = strconv.Atoi(val)
		case "maxfaults":
			cfg.MaxFaults, err = strconv.Atoi(val)
		case "denydials":
			cfg.DenyDialsAfter, err = strconv.Atoi(val)
		default:
			return cfg, fmt.Errorf("unknown chaos spec key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("chaos spec %s=%s: %v", key, val, err)
		}
	}
	return cfg, nil
}
