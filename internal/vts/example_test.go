package vts_test

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/vts"
)

// The paper's figure-1 conversion: a dynamic-rate edge becomes a static
// rate-1 edge with packed tokens of bounded size.
func ExampleConvert() {
	g := dataflow.New("fig1")
	a := g.AddActor("A", 10)
	b := g.AddActor("B", 10)
	g.AddEdge("ab", a, b, 10, 8, dataflow.EdgeSpec{
		ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 2,
	})
	g.AddEdge("ba", b, a, 1, 1, dataflow.EdgeSpec{Delay: 2})

	conv, _ := vts.Convert(g)
	e := conv.Graph.Edge(0)
	info := conv.Info(0)
	fmt.Printf("rates %d/%d, b_max %d bytes\n", e.Produce.Rate, e.Consume.Rate, info.BMax)

	bounds, _ := vts.ComputeBounds(conv)
	fmt.Printf("c(e) = %d bytes (eq.1), B(e) = %d bytes (eq.2)\n", bounds[0].CE, bounds[0].IPC)
	// Output:
	// rates 1/1, b_max 20 bytes
	// c(e) = 20 bytes (eq.1), B(e) = 40 bytes (eq.2)
}

// Header framing prefixes the payload with its size — the FPGA-friendly
// choice the paper argues for.
func ExamplePacker() {
	p := vts.NewPacker(32, vts.HeaderFraming)
	u := vts.NewUnpacker(32, vts.HeaderFraming)
	msg, _ := p.Pack([]byte{9, 9, 9})
	payload, _ := u.Unpack(msg)
	fmt.Println("wire", len(msg), "payload", len(payload), "rx ops", u.ReceiverOps)
	// Output:
	// wire 7 payload 3 rx ops 1
}
