package syncgraph

import (
	"fmt"
)

// ResyncOptions tunes the resynchronization heuristic.
type ResyncOptions struct {
	// MaxRounds bounds the number of greedy insertion rounds. Zero means
	// a generous default.
	MaxRounds int
	// AllowPeriodIncrease permits accepting a new edge even if it raises
	// the maximum cycle mean (throughput loss). The paper's
	// resynchronization targets latency-insensitive reduction, so the
	// default (false) rejects candidates that slow the steady state.
	AllowPeriodIncrease bool
	// Latency-constrained resynchronization: when MaxLatency > 0,
	// candidates that push Latency(LatencySrc, LatencySnk) beyond the
	// bound are rejected.
	LatencySrc, LatencySnk VertexID
	MaxLatency             int64
}

// ResyncReport summarizes a resynchronization run.
type ResyncReport struct {
	// SyncBefore / SyncAfter count run-time synchronization edges
	// (IPC + sync) before and after the optimization.
	SyncBefore, SyncAfter int
	// RemovedFirst are the redundant edges removed before any insertion
	// (pure redundancy elimination).
	RemovedFirst []Edge
	// Added are the resynchronization edges inserted.
	Added []Edge
	// RemovedByResync are the edges made redundant by the insertions.
	RemovedByResync []Edge
	// PeriodBefore / PeriodAfter are the maximum cycle means.
	PeriodBefore, PeriodAfter float64
}

// String renders a human-readable summary.
func (r *ResyncReport) String() string {
	return fmt.Sprintf("resync: %d -> %d sync edges (removed %d redundant, added %d, pruned %d); period %.1f -> %.1f",
		r.SyncBefore, r.SyncAfter, len(r.RemovedFirst), len(r.Added), len(r.RemovedByResync),
		r.PeriodBefore, r.PeriodAfter)
}

// Resynchronize optimizes the synchronization structure of g in place:
//
//  1. Remove synchronization edges already redundant (their constraints are
//     implied by other paths).
//  2. Greedily insert new zero-delay synchronization edges between tasks on
//     different processors when doing so makes at least two existing sync
//     edges redundant — "the number of additional synchronizations that
//     become redundant exceeds the number of new synchronizations that are
//     added, and thus the net synchronization cost is reduced" (paper §4.1).
//
// Candidates that would create a zero-delay cycle (deadlock) or degrade the
// steady-state period (unless AllowPeriodIncrease) are rejected.
func Resynchronize(g *Graph, opt ResyncOptions) *ResyncReport {
	rep := &ResyncReport{SyncBefore: g.SyncCount()}
	rep.PeriodBefore, _ = g.MaxCycleMean()

	rep.RemovedFirst = g.RemoveRedundant()

	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = len(g.verts)*len(g.verts) + 1
	}
	for round := 0; round < maxRounds; round++ {
		bestGain := 0
		bestU, bestV := VertexID(-1), VertexID(-1)
		var bestRemoved []Edge
		base := g.SyncCount()
		basePeriod, baseLive := g.MaxCycleMean()
		if !baseLive {
			break // should not happen on a live schedule; stop rather than loop
		}
		for u := 0; u < len(g.verts); u++ {
			for v := 0; v < len(g.verts); v++ {
				if u == v || g.verts[u].Proc == g.verts[v].Proc {
					continue
				}
				// Trial insertion on a clone.
				trial := g.Clone()
				trial.AddEdge(VertexID(u), VertexID(v), 0, SyncEdge, "resync")
				if trial.HasZeroDelayCycle() {
					continue
				}
				removed := trial.RemoveRedundant()
				gain := base - trial.SyncCount()
				if gain <= bestGain {
					continue
				}
				if !opt.AllowPeriodIncrease {
					p, live := trial.MaxCycleMean()
					if !live || p > basePeriod+1e-6 {
						continue
					}
				}
				if opt.MaxLatency > 0 {
					if l, ok := trial.Latency(opt.LatencySrc, opt.LatencySnk); ok && l > opt.MaxLatency {
						continue
					}
				}
				bestGain = gain
				bestU, bestV = VertexID(u), VertexID(v)
				bestRemoved = removed
			}
		}
		if bestGain <= 0 {
			break
		}
		g.AddEdge(bestU, bestV, 0, SyncEdge, "resync")
		g.RemoveRedundant()
		rep.Added = append(rep.Added, Edge{Src: bestU, Snk: bestV, Kind: SyncEdge, Label: "resync"})
		rep.RemovedByResync = append(rep.RemovedByResync, bestRemoved...)
	}

	rep.SyncAfter = g.SyncCount()
	rep.PeriodAfter, _ = g.MaxCycleMean()
	return rep
}
