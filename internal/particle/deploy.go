package particle

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/hdl"
	"repro/internal/sched"
	"repro/internal/spi"
)

// Deployment model of the n-PE particle filter for the figure-7 timing
// sweep and the table-2 area report.

// DeployParams configures a particle-filter deployment.
type DeployParams struct {
	// Particles is the total particle count N (figure 7's x axis; the
	// paper sweeps 50–300).
	Particles int
	// PEs is the processing element count (1 or 2 in the paper; the
	// computational requirement was high enough that only 2 PEs fit the
	// device).
	PEs int
	// EUCyclesPerParticle is the estimate+update datapath cost per
	// particle (state propagation, likelihood with exponential).
	EUCyclesPerParticle int64
	// ResampleCyclesPerParticle is the local-resampling cost per particle.
	ResampleCyclesPerParticle int64
	// ExchangeCyclesPerParticle is the intra-resampling repacking cost.
	ExchangeCyclesPerParticle int64
	// ParticleBytes is the wire size of one particle value.
	ParticleBytes int
}

// DefaultDeploy returns the evaluation defaults for N particles on n PEs.
func DefaultDeploy(particles, pes int) DeployParams {
	return DeployParams{
		Particles:                 particles,
		PEs:                       pes,
		EUCyclesPerParticle:       60,
		ResampleCyclesPerParticle: 12,
		ExchangeCyclesPerParticle: 4,
		ParticleBytes:             8,
	}
}

// Validate checks the parameters.
func (p DeployParams) Validate() error {
	if p.Particles <= 0 || p.PEs <= 0 || p.Particles%p.PEs != 0 {
		return fmt.Errorf("particle: %d particles on %d PEs", p.Particles, p.PEs)
	}
	if p.EUCyclesPerParticle <= 0 || p.ResampleCyclesPerParticle <= 0 ||
		p.ExchangeCyclesPerParticle <= 0 || p.ParticleBytes <= 0 {
		return fmt.Errorf("particle: bad cost params %+v", p)
	}
	return nil
}

// FilterSystem builds the SPI system of the n-PE filter. Each PE carries
// three tasks matching the paper's split of the resampling step (figure 5):
// estimate+update (which also produces the partial sums), local resampling,
// and intra-resampling. Cross-PE edges: partial-sum exchange (SPI_static,
// 16 bytes) from EU to every other PE's local-resampling task, and particle
// migration (SPI_dynamic, bounded by all N particles) from local to every
// other PE's intra-resampling task.
//
// Migration sizes vary at run time; the deterministic sizeFn drives the
// simulated payloads (pass nil for a representative synthetic pattern).
func FilterSystem(p DeployParams, sizeFn func(iter int) int) (*spi.System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	perPE := p.Particles / p.PEs
	if sizeFn == nil {
		// Representative migration volume: varies between 0 and a quarter
		// of a PE's particles, deterministic in the iteration.
		sizeFn = func(iter int) int {
			span := perPE/4 + 1
			return ((iter*31 + 7) % span) * p.ParticleBytes
		}
	}
	g := dataflow.New(fmt.Sprintf("pf-n%d-N%d", p.PEs, p.Particles))
	eu := make([]dataflow.ActorID, p.PEs)
	rs := make([]dataflow.ActorID, p.PEs)
	xs := make([]dataflow.ActorID, p.PEs)
	for i := 0; i < p.PEs; i++ {
		eu[i] = g.AddActor(fmt.Sprintf("eu%d", i), int64(perPE)*p.EUCyclesPerParticle)
		rs[i] = g.AddActor(fmt.Sprintf("rs%d", i), int64(perPE)*p.ResampleCyclesPerParticle)
		xs[i] = g.AddActor(fmt.Sprintf("xs%d", i), int64(perPE)*p.ExchangeCyclesPerParticle)
	}
	payload := map[dataflow.EdgeID]func(int) int{}
	for i := 0; i < p.PEs; i++ {
		// Intra-PE pipeline: eu -> rs -> xs (same processor).
		g.AddEdge(fmt.Sprintf("eurs%d", i), eu[i], rs[i], 1, 1, dataflow.EdgeSpec{TokenBytes: 4})
		g.AddEdge(fmt.Sprintf("rsxs%d", i), rs[i], xs[i], 1, 1, dataflow.EdgeSpec{TokenBytes: 4})
		for j := 0; j < p.PEs; j++ {
			if i == j {
				continue
			}
			// Partial sums: fixed-length message (SPI_static).
			g.AddEdge(fmt.Sprintf("sum%d_%d", i, j), eu[i], rs[j], 16, 16,
				dataflow.EdgeSpec{TokenBytes: 1})
			// Particle migration: variable length (SPI_dynamic).
			bound := p.Particles * p.ParticleBytes
			me := g.AddEdge(fmt.Sprintf("mig%d_%d", i, j), rs[i], xs[j], bound, bound,
				dataflow.EdgeSpec{ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 1})
			payload[me] = sizeFn
		}
	}
	m := &sched.Mapping{
		NumProcs: p.PEs,
		Proc:     make([]sched.Processor, g.NumActors()),
		Order:    make([][]dataflow.ActorID, p.PEs),
	}
	for i := 0; i < p.PEs; i++ {
		m.Proc[eu[i]] = sched.Processor(i)
		m.Proc[rs[i]] = sched.Processor(i)
		m.Proc[xs[i]] = sched.Processor(i)
		m.Order[i] = []dataflow.ActorID{eu[i], rs[i], xs[i]}
	}
	return &spi.System{Graph: g, Mapping: m, PayloadFn: payload}, nil
}

// HardwareModel builds the HDL module tree of the n-PE particle filter for
// the table-2 style area report. The filter datapath dominates: per PE a
// state-propagation unit (square root and power-law evaluation), a
// likelihood unit (exponential via table + multipliers), the resampling
// comparator tree, a hardware RNG, and the particle/weight memories.
// The SPI library (one static sum edge, one dynamic migration edge per
// neighbour) is a tiny fraction — the paper's headline table-2 result.
func HardwareModel(p DeployParams) (*hdl.Module, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	perPE := p.Particles / p.PEs
	top := hdl.NewModule(fmt.Sprintf("pf_%dpe", p.PEs))

	io := hdl.NewModule("io_interface")
	io.Add(hdl.RAM("io.obsbuf", 4096))
	io.Add(hdl.FSM("io.ctl", 8))
	top.Add(io)

	for i := 0; i < p.PEs; i++ {
		name := fmt.Sprintf("pe%d", i)
		pe := hdl.NewModule(name)
		// State propagation: sqrt (CORDIC), power-law, process noise.
		prop := hdl.NewModule(name + ".propagate")
		prop.Add(hdl.LUTLogic(name+".sqrt_cordic", 1500))
		prop.Add(hdl.LUTLogic(name+".powlaw", 2400))
		prop.Add(hdl.Multiplier(name+".growth_mul", 32, 32))
		prop.Add(hdl.Register(name+".prop_pipe", 256))
		pe.Add(prop)
		// Likelihood: exponential via BRAM table + interpolation.
		lik := hdl.NewModule(name + ".likelihood")
		lik.Add(hdl.RAM(name+".exp_table", 4*hdl.BlockRAMBytes))
		lik.Add(hdl.Multiplier(name+".lik_mul0", 32, 32))
		lik.Add(hdl.Multiplier(name+".lik_mul1", 32, 32))
		lik.Add(hdl.LUTLogic(name+".interp", 1700))
		lik.Add(hdl.Register(name+".lik_pipe", 256))
		pe.Add(lik)
		// Hardware RNG: parallel LFSRs + Gaussian shaping.
		rng := hdl.NewModule(name + ".rng")
		rng.Add(hdl.Register(name+".lfsr", 128))
		rng.Add(hdl.LUTLogic(name+".gauss", 1100))
		pe.Add(rng)
		// Resampling: cumulative-sum walker and comparator tree.
		res := hdl.NewModule(name + ".resample")
		res.Add(hdl.Adder(name+".cumsum", 48))
		res.Add(hdl.Comparator(name+".cmp", 48))
		res.Add(hdl.LUTLogic(name+".walker", 1300))
		res.Add(hdl.Counter(name+".ridx", 12))
		pe.Add(res)
		// Memories: double-buffered particles + weights.
		mem := hdl.NewModule(name + ".memories")
		mem.Add(hdl.RAM(name+".particles_a", perPE*p.ParticleBytes+4*hdl.BlockRAMBytes))
		mem.Add(hdl.RAM(name+".particles_b", perPE*p.ParticleBytes+4*hdl.BlockRAMBytes))
		mem.Add(hdl.RAM(name+".weights", perPE*8+2*hdl.BlockRAMBytes))
		pe.Add(mem)
		pe.Add(hdl.FSM(name+".ctl", 24))
		pe.Add(hdl.LUTLogic(name+".glue", 1900))
		pe.Add(hdl.Register(name+".stage", 512))
		top.Add(pe)

		// SPI library for this PE's edges.
		var edges []hdl.SPIEdgeHW
		for j := 0; j < p.PEs; j++ {
			if i == j {
				continue
			}
			edges = append(edges,
				hdl.SPIEdgeHW{Name: fmt.Sprintf("sum%d", j), BufferBytes: 16, Sends: true, Receives: true},
				hdl.SPIEdgeHW{Name: fmt.Sprintf("mig%d", j), Dynamic: true, UBS: true,
					BufferBytes: p.Particles * p.ParticleBytes, Sends: true, Receives: true},
			)
		}
		top.Add(hdl.SPILibrary(name, edges))
	}
	return top, nil
}
