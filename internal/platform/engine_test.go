package platform

import (
	"strings"
	"testing"
)

// twoPE builds a 2-PE sim with one channel 0->1 using the given spec
// overrides.
func twoPE(t *testing.T, spec ChannelSpec) (*Sim, ChannelID) {
	t.Helper()
	cfg := DefaultConfig(2)
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec.From, spec.To = 0, 1
	if spec.Name == "" {
		spec.Name = "ch"
	}
	ch, err := sim.AddChannel(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sim, ch
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(Config{NumPEs: 0, CyclesPerByteDen: 1}); err == nil {
		t.Error("0 PEs should fail")
	}
	if _, err := NewSim(Config{NumPEs: 1, CyclesPerByteDen: 0}); err == nil {
		t.Error("zero denominator should fail")
	}
}

func TestAddChannelValidation(t *testing.T) {
	sim, _ := NewSim(DefaultConfig(2))
	if _, err := sim.AddChannel(ChannelSpec{From: 0, To: 5}); err == nil {
		t.Error("out-of-range endpoint should fail")
	}
	if _, err := sim.AddChannel(ChannelSpec{From: 1, To: 1}); err == nil {
		t.Error("self-loop should fail")
	}
	if _, err := sim.AddChannel(ChannelSpec{From: 0, To: 1, Capacity: -1}); err == nil {
		t.Error("negative capacity should fail")
	}
}

func TestSetProgramValidation(t *testing.T) {
	sim, ch := twoPE(t, ChannelSpec{})
	if err := sim.SetProgram(5, nil); err == nil {
		t.Error("bad PE index should fail")
	}
	if err := sim.SetProgram(1, Program{Send(ch, 4)}); err == nil {
		t.Error("PE 1 sending on 0->1 channel should fail")
	}
	if err := sim.SetProgram(0, Program{Recv(ch)}); err == nil {
		t.Error("PE 0 receiving on 0->1 channel should fail")
	}
	if err := sim.SetProgram(0, Program{Compute(-1)}); err == nil {
		t.Error("negative compute should fail")
	}
	if err := sim.SetProgram(0, Program{{Kind: OpKind(9)}}); err == nil {
		t.Error("unknown op should fail")
	}
	if err := sim.SetProgram(0, Program{Send(ChannelID(9), 4)}); err == nil {
		t.Error("unknown channel should fail")
	}
}

func TestComputeOnlyTiming(t *testing.T) {
	sim, _ := NewSim(DefaultConfig(1))
	if err := sim.SetProgram(0, Program{Compute(100)}); err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Finish != 300 {
		t.Errorf("finish = %d, want 300", st.Finish)
	}
	if st.PEBusy[0] != 300 {
		t.Errorf("busy = %d, want 300", st.PEBusy[0])
	}
	if st.IterationFinish[1] != 200 {
		t.Errorf("iteration finishes = %v", st.IterationFinish)
	}
}

func TestSendRecvTiming(t *testing.T) {
	// cfg: sendOverhead=2, recvOverhead=2, latency=4, 4 bytes/cycle.
	sim, ch := twoPE(t, ChannelSpec{HeaderBytes: 2})
	if err := sim.SetProgram(0, Program{Send(ch, 6)}); err != nil {
		t.Fatal(err)
	}
	if err := sim.SetProgram(1, Program{Recv(ch)}); err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// send cost = 2 + ceil(8/4) = 4; arrive = 4+4 = 8; recv done = 8+2 = 10.
	if st.Finish != 10 {
		t.Errorf("finish = %d, want 10", st.Finish)
	}
	if st.Messages[DataMsg] != 1 || st.Bytes[DataMsg] != 8 {
		t.Errorf("data traffic = %d msgs %d bytes, want 1/8", st.Messages[DataMsg], st.Bytes[DataMsg])
	}
}

func TestReceiverBlocksUntilArrival(t *testing.T) {
	sim, ch := twoPE(t, ChannelSpec{})
	sim.SetProgram(0, Program{Compute(1000), Send(ch, 4)})
	sim.SetProgram(1, Program{Recv(ch), Compute(10)})
	st, err := sim.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// PE1 cannot finish before PE0's compute + send path.
	if st.Finish < 1000 {
		t.Errorf("finish = %d, want >= 1000", st.Finish)
	}
}

func TestBBSBackpressureThrottlesSender(t *testing.T) {
	// Capacity-1 channel: the sender must wait for each consume.
	sim, ch := twoPE(t, ChannelSpec{Capacity: 1})
	sim.SetProgram(0, Program{Send(ch, 4)})
	sim.SetProgram(1, Program{Recv(ch), Compute(1000)})
	st, err := sim.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	// Sender iteration k waits for consume k-1, which happens after the
	// receiver's 1000-cycle compute; total >= ~3000.
	if st.Finish < 3000 {
		t.Errorf("finish = %d, want >= 3000 (back-pressure)", st.Finish)
	}
	if st.MaxQueued[ch] > 1 {
		t.Errorf("MaxQueued = %d exceeds capacity 1", st.MaxQueued[ch])
	}
}

func TestUBSDoesNotThrottleSender(t *testing.T) {
	sim, ch := twoPE(t, ChannelSpec{Capacity: 0})
	sim.SetProgram(0, Program{Send(ch, 4)})
	sim.SetProgram(1, Program{Recv(ch), Compute(1000)})
	st, err := sim.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	// Sender finishes quickly; receiver dominates: ~3000 + overheads, but
	// the queue grows to 2+ because the sender runs ahead.
	if st.MaxQueued[ch] < 2 {
		t.Errorf("MaxQueued = %d, want >= 2 (sender runs ahead)", st.MaxQueued[ch])
	}
}

func TestUBSAckTraffic(t *testing.T) {
	sim, ch := twoPE(t, ChannelSpec{AckBytes: 4, HeaderBytes: 2})
	sim.SetProgram(0, Program{Send(ch, 16)})
	sim.SetProgram(1, Program{Recv(ch)})
	st, err := sim.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages[AckMsg] != 5 {
		t.Errorf("ack messages = %d, want 5", st.Messages[AckMsg])
	}
	if st.Bytes[AckMsg] != 5*6 {
		t.Errorf("ack bytes = %d, want 30", st.Bytes[AckMsg])
	}
}

func TestDynamicSendSizes(t *testing.T) {
	sim, ch := twoPE(t, ChannelSpec{})
	sizes := []int{10, 0, 30}
	sim.SetProgram(0, Program{SendFn(ch, func(iter int) int { return sizes[iter] })})
	sim.SetProgram(1, Program{Recv(ch)})
	st, err := sim.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes[DataMsg] != 40 {
		t.Errorf("data bytes = %d, want 40", st.Bytes[DataMsg])
	}
}

func TestComputeFn(t *testing.T) {
	sim, _ := NewSim(DefaultConfig(1))
	sim.SetProgram(0, Program{ComputeFn(func(iter int) int64 { return int64(100 * (iter + 1)) })})
	st, err := sim.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Finish != 300 {
		t.Errorf("finish = %d, want 300", st.Finish)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Two PEs each waiting to receive from the other before sending.
	cfg := DefaultConfig(2)
	sim, _ := NewSim(cfg)
	ab, _ := sim.AddChannel(ChannelSpec{From: 0, To: 1, Name: "ab"})
	ba, _ := sim.AddChannel(ChannelSpec{From: 1, To: 0, Name: "ba"})
	sim.SetProgram(0, Program{Recv(ba), Send(ab, 4)})
	sim.SetProgram(1, Program{Recv(ab), Send(ba, 4)})
	_, err := sim.Run(1)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestRunValidation(t *testing.T) {
	sim, _ := NewSim(DefaultConfig(1))
	if _, err := sim.Run(0); err == nil {
		t.Error("0 iterations should fail")
	}
}

func TestPipelineParallelismBeatsSerial(t *testing.T) {
	// Producer computes then sends; consumer receives then computes.
	// Over many iterations the pipeline overlaps the two stages.
	sim, ch := twoPE(t, ChannelSpec{})
	sim.SetProgram(0, Program{Compute(100), Send(ch, 4)})
	sim.SetProgram(1, Program{Recv(ch), Compute(100)})
	st, err := sim.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	serial := Time(20 * 200)
	if st.Finish >= serial {
		t.Errorf("finish = %d, want < serial %d (pipelining)", st.Finish, serial)
	}
}

func TestIterationFinishMonotone(t *testing.T) {
	sim, ch := twoPE(t, ChannelSpec{})
	sim.SetProgram(0, Program{Compute(10), Send(ch, 4)})
	sim.SetProgram(1, Program{Recv(ch), Compute(5)})
	st, err := sim.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(st.IterationFinish); k++ {
		if st.IterationFinish[k] < st.IterationFinish[k-1] {
			t.Fatalf("iteration finish not monotone: %v", st.IterationFinish)
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	cfg := DefaultConfig(1)
	st := &Stats{}
	st.Messages[DataMsg] = 2
	st.Messages[AckMsg] = 1
	st.Bytes[DataMsg] = 100
	st.Bytes[AckMsg] = 8
	if st.TotalMessages() != 3 || st.TotalBytes() != 108 {
		t.Errorf("totals: %d msgs %d bytes", st.TotalMessages(), st.TotalBytes())
	}
	// 100 cycles at 100 MHz = 1 µs.
	if us := st.Microseconds(cfg, 100); us < 0.999 || us > 1.001 {
		t.Errorf("Microseconds = %v, want 1", us)
	}
}

func TestMsgKindString(t *testing.T) {
	for k, want := range map[MsgKind]string{DataMsg: "data", AckMsg: "ack", SyncMsg: "sync", CtrlMsg: "ctrl"} {
		if k.String() != want {
			t.Errorf("%d.String() = %s, want %s", k, k.String(), want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *Sim {
		cfg := DefaultConfig(3)
		sim, _ := NewSim(cfg)
		a, _ := sim.AddChannel(ChannelSpec{From: 0, To: 1, Name: "a"})
		b, _ := sim.AddChannel(ChannelSpec{From: 1, To: 2, Name: "b", Capacity: 2})
		c, _ := sim.AddChannel(ChannelSpec{From: 2, To: 0, Name: "c", AckBytes: 4})
		sim.SetProgram(0, Program{Compute(13), Send(a, 8), Recv(c)})
		sim.SetProgram(1, Program{Recv(a), Compute(29), Send(b, 12)})
		sim.SetProgram(2, Program{Recv(b), Compute(7), Send(c, 16)})
		return sim
	}
	s1, err := build().Run(50)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := build().Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Finish != s2.Finish || s1.TotalBytes() != s2.TotalBytes() {
		t.Errorf("non-deterministic: %v vs %v", s1.Finish, s2.Finish)
	}
}

func TestChannelPreload(t *testing.T) {
	// A preloaded channel lets the receiver start before any send: the
	// classic initial-token (delay) semantics.
	sim, err := NewSim(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sim.AddChannel(ChannelSpec{From: 0, To: 1, Name: "d", Preload: 2, PreloadBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Receiver consumes 3 messages; sender supplies only 1 per iteration.
	sim.SetProgram(0, Program{Compute(100), Send(ch, 4)})
	sim.SetProgram(1, Program{Recv(ch), Compute(10)})
	sim.EnableTrace()
	st, err := sim.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	// The first two receives are satisfied by the preload at time 0, long
	// before the sender's 100-cycle compute finishes.
	var recvs []Segment
	for _, s := range sim.LastTrace().PESegments(1) {
		if s.Kind == SegRecv {
			recvs = append(recvs, s)
		}
	}
	if len(recvs) != 3 {
		t.Fatalf("recv segments = %d", len(recvs))
	}
	if recvs[0].Start != 0 || recvs[1].Start >= 100 {
		t.Errorf("preloaded receives start at %d and %d, want before the first send",
			recvs[0].Start, recvs[1].Start)
	}
	// Preloaded messages are not counted as traffic.
	if st.Messages[DataMsg] != 3 {
		t.Errorf("data messages = %d, want 3 (sends only)", st.Messages[DataMsg])
	}
}

func TestPreloadValidation(t *testing.T) {
	sim, _ := NewSim(DefaultConfig(2))
	if _, err := sim.AddChannel(ChannelSpec{From: 0, To: 1, Preload: -1}); err == nil {
		t.Error("negative preload should fail")
	}
	if _, err := sim.AddChannel(ChannelSpec{From: 0, To: 1, Capacity: 2, Preload: 3}); err == nil {
		t.Error("preload beyond capacity should fail")
	}
}

func TestPreloadConsumesBBSCapacity(t *testing.T) {
	sim, _ := NewSim(DefaultConfig(2))
	ch, err := sim.AddChannel(ChannelSpec{From: 0, To: 1, Name: "d", Capacity: 2, Preload: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The sender's first send must wait for a consume (buffer starts full).
	sim.SetProgram(0, Program{Send(ch, 4)})
	sim.SetProgram(1, Program{Compute(1000), Recv(ch)})
	st, err := sim.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Finish < 1000 {
		t.Errorf("finish %d: preloaded BBS buffer should block the sender until a consume", st.Finish)
	}
}
