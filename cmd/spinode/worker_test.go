package main

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/demo"
	"repro/internal/orch"
	"repro/internal/spi"
	"repro/internal/transport"
)

// TestWorkerModeTCP runs the orchestrated worker mode end to end over
// real TCP sockets: a coordinator on an ephemeral port, three runWorker
// instances that know nothing but the coordinator's address, per-epoch
// ephemeral data listeners, and a forced migration — digests must match
// the static single-process run bit for bit. This is the
// partition-scoped-manifest path: no worker ever sees the full graph.
func TestWorkerModeTCP(t *testing.T) {
	const iterations, seed = 18, 5
	g := dataflow.New("wtcp")
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	c := g.AddActor("C", 1)
	g.AddEdge("ab", a, b, 1, 1, dataflow.EdgeSpec{TokenBytes: 8, Delay: 2})
	g.AddEdge("bc", b, c, 1, 1, dataflow.EdgeSpec{TokenBytes: 4, ProduceDynamic: true, ConsumeDynamic: true, Delay: 1})
	m, err := demo.Mapping(g, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}

	// Static reference.
	digests := demo.Sinks(g)
	var dmu sync.Mutex
	kernels, err := demo.Kernels(g, seed, digests, &dmu)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spi.Execute(g, m, kernels, iterations); err != nil {
		t.Fatal(err)
	}

	tcp := &transport.TCP{}
	ln, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coordAddr := ln.Addr()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	errs := make(chan error, 3)
	for _, name := range []string{"wa", "wb", "wc"} {
		cfg := workerConfig{
			Coord: coordAddr, Name: name, DataHost: "127.0.0.1", Seed: seed,
			Heartbeat: 50 * time.Millisecond, PeerTimeout: 2 * time.Second,
		}
		go func() {
			var out bytes.Buffer
			errs <- runWorker(ctx, cfg, tcp, &out)
		}()
	}

	coord, err := orch.NewCoordinator(orch.CoordConfig{
		Transport: tcp, Addr: coordAddr, Listener: ln,
		Graph: g, Mapping: m,
		Iterations: iterations, EpochIters: 6, MinWorkers: 3,
		Heartbeat: 50 * time.Millisecond, PeerTimeout: 2 * time.Second,
		EpochTimeout: 20 * time.Second,
		OnPlace: func(epoch int, placement []int, ids []uint32) []int {
			if epoch != 1 {
				return placement
			}
			rotated := make([]int, len(placement))
			for p, slot := range placement {
				rotated[p] = (slot + 1) % len(ids)
			}
			return rotated
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range digests {
		if rep.Digests[name] != *want {
			t.Errorf("sink %s digest = %#x, want %#x (static)", name, rep.Digests[name], *want)
		}
	}
	if rep.Migrations == 0 {
		t.Error("forced rotation over TCP produced no migrations")
	}
	if rep.Aborts != 0 {
		t.Errorf("planned migration needed %d aborts", rep.Aborts)
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Errorf("worker: %v", err)
		}
	}
}
