package spi

import (
	"bytes"
	"testing"
)

// Fuzzing the wire decoders: arbitrary bytes must never panic, and any
// message a decoder accepts must re-encode to exactly the input — the
// decoders and EncodeMessage are inverses on the valid set. These are the
// bytes a networked SPI node reads straight off a TCP connection, so the
// no-panic property is a security boundary, not just hygiene.

func FuzzDecodeStatic(f *testing.F) {
	f.Add(EncodeMessage(Static, 7, []byte{1, 2, 3, 4}), 4)
	f.Add(EncodeMessage(Static, 0, nil), 0)
	f.Add([]byte{0xff}, 3)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, msg []byte, expect int) {
		id, payload, err := DecodeStatic(msg, expect)
		if err != nil {
			return
		}
		if len(payload) != expect {
			t.Fatalf("accepted payload of %d bytes, expected size %d", len(payload), expect)
		}
		if got := EncodeMessage(Static, id, payload); !bytes.Equal(got, msg) {
			t.Fatalf("re-encode mismatch: %x vs %x", got, msg)
		}
	})
}

func FuzzDecodeDynamic(f *testing.F) {
	f.Add(EncodeMessage(Dynamic, 9, []byte("abc")), 16)
	f.Add(EncodeMessage(Dynamic, 1, nil), 0)
	f.Add([]byte{1, 0, 255, 255, 255, 255}, 1024)
	f.Add([]byte{}, 8)
	f.Fuzz(func(t *testing.T, msg []byte, maxBytes int) {
		id, payload, err := DecodeDynamic(msg, maxBytes)
		if err != nil {
			return
		}
		if len(payload) > maxBytes {
			t.Fatalf("accepted %d payload bytes over bound %d", len(payload), maxBytes)
		}
		if got := EncodeMessage(Dynamic, id, payload); !bytes.Equal(got, msg) {
			t.Fatalf("re-encode mismatch: %x vs %x", got, msg)
		}
	})
}
