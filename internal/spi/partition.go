package spi

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dataflow"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/transport"
)

// Partition-scoped execution: run one worker's share of a mapped graph
// from a self-contained PartitionSpec, without the graph, the mapping, or
// the VTS analysis. The coordinator (internal/orch) extracts the spec
// from the full plan and ships it over the control plane; the worker
// rebuilds exactly the execution environment ExecuteDistributed would
// have built for the same processors — same edge configs, same payload
// padding, same receive order, same preloaded delays — so any placement
// of the processors over any number of workers produces bit-identical
// kernel inputs.
//
// A spec additionally carries resumption state: BaseIter offsets the
// iteration numbers the kernels see, Preload holds the in-flight tokens
// of every delayed edge at the epoch boundary, and State holds per-actor
// checkpoint blobs. A run returns the matching Tails/State for the next
// epoch, which is what makes live migration a checkpoint-and-replay of
// pure data.

// PartEdge is one dataflow edge as a partition sees it: the planned SPI
// configuration plus locality. Locality is decided by the processor-level
// mapping, never by worker placement — a same-processor edge is a local
// queue wherever its processor lands, so kernel-visible bytes do not
// depend on placement.
type PartEdge struct {
	// ID is the dataflow edge ID (also the SPI edge ID on the wire).
	ID uint16
	// Name is the edge's graph name, for error messages and kernels.
	Name string
	// Mode, Bytes, Protocol, Capacity mirror the planned EdgeConfig:
	// Mode 0 is static (fixed Bytes payloads), 1 dynamic (bound Bytes);
	// Protocol 0 is BBS with Capacity messages, 1 UBS.
	Mode     uint8
	Bytes    uint32
	Protocol uint8
	Capacity uint32
	// Delay is the edge's initial delay in whole graph iterations.
	Delay uint32
	// SameProc marks both endpoints on one processor: a local queue.
	SameProc bool
	// Out/In mark the hosted endpoints of a cross-processor edge: both
	// set means both processors live on this worker (an in-process SPI
	// edge); exactly one set means the edge crosses workers.
	Out bool
	In  bool
	// Peer is the worker hosting the far endpoint of a cross-worker
	// edge, -1 otherwise.
	Peer int
	// SuppressAck marks a UBS edge whose acknowledgement the §4
	// resynchronization verdict proved redundant (see ResyncSuppression).
	// BuildPartitions always stamps it — the verdict depends only on the
	// graph and processor mapping, never on placement — and the spec's
	// Resync flag decides whether the deployment acts on it.
	SuppressAck bool
}

// PartActor is one actor of a partition, with its full edge lists in
// graph order (the executor consumes inputs in exactly this order, like
// the mapped executor consumes g.In(a)).
type PartActor struct {
	Name string
	In   []uint16
	Out  []uint16
}

// PartProc is one processor of a partition: its global processor index
// and its actors in schedule order.
type PartProc struct {
	Proc   int
	Actors []PartActor
}

// PartitionSpec is the self-contained manifest of one worker's share of
// an execution epoch. It replaces the full graph + mapping a spinode
// normally loads: a worker holding only its spec can execute, RESUME
// after a severed connection, and checkpoint for migration.
type PartitionSpec struct {
	// Graph is the graph name (kernels fold it into their hashes).
	Graph string
	// Node is this worker's index for the epoch, Workers the worker
	// count; Addrs[n] is worker n's data-plane address for this epoch
	// (only peers' entries need be set).
	Node    int
	Workers int
	Addrs   []string
	// BaseIter is the first global iteration of this epoch; kernels see
	// iterations BaseIter..BaseIter+Iterations-1.
	BaseIter   int
	Iterations int
	// Procs are the processors placed on this worker, Edges every edge
	// touching them.
	Procs []PartProc
	Edges []PartEdge
	// Preload holds, per delayed edge whose producing side lives here
	// (Out or SameProc), the in-flight payloads at BaseIter — the zero
	// blocks of a fresh run, or the previous epoch's tails.
	Preload map[uint16][][]byte
	// State holds per-actor checkpoint blobs for stateful kernels,
	// keyed by actor name (see StateHooks).
	State map[string][]byte
	// Resync activates ack suppression on the edges BuildPartitions
	// marked SuppressAck: cross-worker links negotiate the set with
	// their peers (featResync) and swallow the redundant acks. The
	// coordinator sets it uniformly for all workers of an epoch.
	Resync bool
}

// PartResult reports one epoch of partition execution.
type PartResult struct {
	// Tails holds, per delayed edge produced here, the in-flight
	// payloads at the epoch end — the next epoch's Preload.
	Tails map[uint16][][]byte
	// State holds the per-actor checkpoint blobs at the epoch end.
	State map[string][]byte
	// Firings counts completed firings per actor.
	Firings map[string]int
	// ProcNS is the kernel-execution time per hosted processor in
	// nanoseconds, parallel to the spec's Procs — the load signal the
	// coordinator's placement consumes.
	ProcNS []int64
	// SPI aggregates the runtime statistics of the partition's edges.
	SPI EdgeStats
}

// StateHooks checkpoint and restore one stateful actor. The executor
// calls Restore with the spec's blob (nil for a fresh run) before the
// first firing and Checkpoint after the last; stateless actors simply
// have no hooks.
type StateHooks struct {
	Checkpoint func() []byte
	Restore    func(state []byte) error
}

// PartOptions configures one partition execution.
type PartOptions struct {
	// Transport carries the data-plane links to peer workers.
	Transport transport.Transport
	// Listener optionally supplies the pre-bound listener for
	// Addrs[Node] (the per-epoch ephemeral listener the worker announced
	// to the coordinator).
	Listener transport.Listener
	// Retry configures dial retry/backoff toward peer workers.
	Retry transport.RetryConfig
	// Context, when non-nil, aborts the run when cancelled: every
	// blocked actor is released and the run returns the context error.
	// The coordinator's Abort is exactly a cancellation.
	Context context.Context
	// Reconnect enables RESUME link resumption on the data plane, so a
	// severed connection mid-epoch replays its unacknowledged suffix
	// instead of failing the epoch.
	Reconnect transport.ReconnectConfig
	// Heartbeat / PeerTimeout enable liveness probing on data links.
	Heartbeat   time.Duration
	PeerTimeout time.Duration
	// SendTimeout bounds each frame write on data links.
	SendTimeout time.Duration
	// State supplies checkpoint/restore hooks per stateful actor name.
	State map[string]StateHooks
	// Obs instruments the run's runtime edges and links.
	Obs *obs.Observer
}

// partEnv is the partition-local execution environment, the spec-driven
// image of execEnv.
type partEnv struct {
	spec    *PartitionSpec
	kernels map[string]Kernel
	edges   map[uint16]*PartEdge
	rt      *Runtime

	remotes map[uint16]remotePair
	locals  map[uint16][][]byte
	localMu sync.Mutex

	// tails accumulates the conceptual in-flight queue per delayed edge
	// produced here: seeded from Preload, appended on every send or
	// local push, trimmed to the delay depth.
	tails   map[uint16][][]byte
	tailsMu sync.Mutex

	firings map[string]*int
	procNS  []int64
}

func (env *partEnv) pad(e *PartEdge, payload []byte) ([]byte, error) {
	if len(payload) > int(e.Bytes) {
		return nil, fmt.Errorf("spi: kernel produced %d bytes on edge %s, bound %d",
			len(payload), e.Name, e.Bytes)
	}
	if e.Mode == uint8(Static) && len(payload) != int(e.Bytes) {
		out := make([]byte, e.Bytes)
		copy(out, payload)
		return out, nil
	}
	return payload, nil
}

// recordTail appends one produced payload to an edge's in-flight tail,
// keeping only the last Delay payloads. A copy is taken: the payload may
// alias a kernel buffer that the next firing reuses.
func (env *partEnv) recordTail(e *PartEdge, payload []byte) {
	env.tailsMu.Lock()
	t := append(env.tails[e.ID], append([]byte(nil), payload...))
	if d := int(e.Delay); len(t) > d {
		t = t[len(t)-d:]
	}
	env.tails[e.ID] = t
	env.tailsMu.Unlock()
}

// runPartProc is one processor's firing loop, the spec-driven image of
// execEnv.runProc: same receive order, same padding, same buffer-reuse
// and copy discipline, so kernels see byte-identical inputs.
func (env *partEnv) runPartProc(pi int, proc *PartProc) error {
	spec := env.spec
	in := map[dataflow.EdgeID][]byte{}
	recvBuf := map[uint16][]byte{}
	var busy int64
	defer func() { env.procNS[pi] = busy }()
	for i := 0; i < spec.Iterations; i++ {
		iter := spec.BaseIter + i
		for ai := range proc.Actors {
			a := &proc.Actors[ai]
			clear(in)
			remoteIn := false
			for _, id := range a.In {
				e := env.edges[id]
				if r, ok := env.remotes[id]; ok {
					payload, err := r.rx.ReceiveInto(recvBuf[id])
					if err != nil {
						return fmt.Errorf("spi: actor %s recv %s: %w", a.Name, e.Name, err)
					}
					in[dataflow.EdgeID(id)] = payload
					recvBuf[id] = payload
					remoteIn = true
					continue
				}
				env.localMu.Lock()
				queue := env.locals[id]
				if len(queue) == 0 {
					env.localMu.Unlock()
					return fmt.Errorf("spi: actor %s local underflow on %s (partition bug)", a.Name, e.Name)
				}
				in[dataflow.EdgeID(id)] = queue[0]
				env.locals[id] = queue[1:]
				env.localMu.Unlock()
			}
			start := time.Now()
			out, err := env.kernels[a.Name](iter, in)
			busy += time.Since(start).Nanoseconds()
			if err != nil {
				return fmt.Errorf("spi: actor %s iteration %d: %w", a.Name, iter, err)
			}
			for _, id := range a.Out {
				e := env.edges[id]
				payload, err := env.pad(e, out[dataflow.EdgeID(id)])
				if err != nil {
					return err
				}
				if e.Delay > 0 {
					env.recordTail(e, payload)
				}
				if r, ok := env.remotes[id]; ok {
					if err := r.tx.Send(payload); err != nil {
						return fmt.Errorf("spi: actor %s send %s: %w", a.Name, e.Name, err)
					}
					continue
				}
				if remoteIn {
					payload = append([]byte(nil), payload...)
				}
				env.localMu.Lock()
				env.locals[id] = append(env.locals[id], payload)
				env.localMu.Unlock()
			}
			*env.firings[a.Name]++
		}
	}
	return nil
}

func validatePartition(spec *PartitionSpec, kernels map[string]Kernel) error {
	if spec.Iterations <= 0 {
		return fmt.Errorf("spi: partition iterations = %d", spec.Iterations)
	}
	if spec.BaseIter < 0 {
		return fmt.Errorf("spi: partition base iteration = %d", spec.BaseIter)
	}
	if len(spec.Procs) == 0 {
		return errors.New("spi: partition hosts no processors")
	}
	if spec.Node < 0 || spec.Workers < 1 || spec.Node >= spec.Workers {
		return fmt.Errorf("spi: partition node %d of %d workers", spec.Node, spec.Workers)
	}
	seen := map[uint16]bool{}
	for i := range spec.Edges {
		e := &spec.Edges[i]
		if seen[e.ID] {
			return fmt.Errorf("spi: partition declares edge %d twice", e.ID)
		}
		seen[e.ID] = true
		if !e.SameProc && !e.Out && !e.In {
			return fmt.Errorf("spi: partition edge %s has no hosted endpoint", e.Name)
		}
		if crossesWorkers(e) && (e.Peer < 0 || e.Peer >= spec.Workers || e.Peer == spec.Node) {
			return fmt.Errorf("spi: partition edge %s names peer worker %d of %d", e.Name, e.Peer, spec.Workers)
		}
	}
	for pi := range spec.Procs {
		for ai := range spec.Procs[pi].Actors {
			a := &spec.Procs[pi].Actors[ai]
			if kernels[a.Name] == nil {
				return fmt.Errorf("spi: actor %s has no kernel", a.Name)
			}
			for _, id := range append(append([]uint16{}, a.In...), a.Out...) {
				if !seen[id] {
					return fmt.Errorf("spi: actor %s references undeclared edge %d", a.Name, id)
				}
			}
		}
	}
	return nil
}

// crossesWorkers reports whether an edge has exactly one endpoint on this
// worker, i.e. rides a link to a peer.
func crossesWorkers(e *PartEdge) bool {
	return !e.SameProc && (e.Out != e.In)
}

// ExecutePartition runs one worker's partition of an execution epoch from
// its self-contained spec. Kernels are keyed by actor name; cross-worker
// edges are carried over links dialed/accepted per the spec's per-epoch
// addresses (lower-numbered workers are dialed, higher-numbered accepted,
// exactly like ExecuteDistributed's node rule). The run is fail-fast: a
// dead peer, a kernel error, or a cancelled context aborts the epoch and
// the coordinator re-places and re-executes it — determinism makes the
// re-execution bit-identical.
func ExecutePartition(spec *PartitionSpec, kernels map[string]Kernel, opts PartOptions) (*PartResult, error) {
	if err := validatePartition(spec, kernels); err != nil {
		return nil, err
	}
	env := &partEnv{
		spec:    spec,
		kernels: kernels,
		edges:   map[uint16]*PartEdge{},
		rt:      NewRuntime(),
		remotes: map[uint16]remotePair{},
		locals:  map[uint16][][]byte{},
		tails:   map[uint16][][]byte{},
		firings: map[string]*int{},
		procNS:  make([]int64, len(spec.Procs)),
	}
	env.rt.SetObserver(opts.Obs)
	for pi := range spec.Procs {
		for ai := range spec.Procs[pi].Actors {
			env.firings[spec.Procs[pi].Actors[ai].Name] = new(int)
		}
	}

	// Restore checkpointed actor state before any firing.
	for name, hooks := range opts.State {
		if hooks.Restore == nil {
			continue
		}
		if err := hooks.Restore(spec.State[name]); err != nil {
			return nil, fmt.Errorf("spi: restore state of actor %s: %w", name, err)
		}
	}

	// Classify edges and initialize runtime edges before any link comes
	// up, so inbound DATA always finds its queue.
	type outEdge struct {
		e  *PartEdge
		tx *Sender
	}
	peers := map[int]*peerPlan{}
	var outs []outEdge
	var resyncIDs []uint16
	for i := range spec.Edges {
		e := &spec.Edges[i]
		env.edges[e.ID] = e
		if e.SameProc {
			pre := clonePayloads(spec.Preload[e.ID])
			env.locals[e.ID] = pre
			env.tails[e.ID] = clonePayloads(pre)
			continue
		}
		cfg := EdgeConfig{ID: EdgeID(e.ID), Name: e.Name, Mode: Mode(e.Mode),
			Protocol: Protocol(e.Protocol), Capacity: int(e.Capacity)}
		if cfg.Mode == Dynamic {
			cfg.MaxBytes = int(e.Bytes)
		} else {
			cfg.PayloadBytes = int(e.Bytes)
		}
		tx, rx, err := env.rt.Init(cfg)
		if err != nil {
			return nil, err
		}
		env.remotes[e.ID] = remotePair{tx: tx, rx: rx}
		if e.Out {
			outs = append(outs, outEdge{e: e, tx: tx})
			env.tails[e.ID] = clonePayloads(spec.Preload[e.ID])
		}
		if crossesWorkers(e) {
			pp := peers[e.Peer]
			if pp == nil {
				pp = &peerPlan{}
				peers[e.Peer] = pp
			}
			pp.decls = append(pp.decls, transport.EdgeDecl{
				ID: e.ID, Mode: e.Mode, Out: e.Out, Bytes: e.Bytes,
				Protocol: e.Protocol, Capacity: e.Capacity,
			})
			pp.ids = append(pp.ids, EdgeID(e.ID))
			if spec.Resync && e.SuppressAck {
				resyncIDs = append(resyncIDs, e.ID)
			}
		}
	}
	sort.Slice(resyncIDs, func(i, j int) bool { return resyncIDs[i] < resyncIDs[j] })

	// Establish the per-epoch data links, reusing the distributed-run
	// connect logic: dial lower-numbered workers, accept higher-numbered
	// ones, keep the listener routing RESUME frames while reconnection
	// is on.
	fails := &peerFails{}
	links, stopResume, err := connectPeers(env.rt, peers, fails, DistOptions{
		Transport: opts.Transport, Node: spec.Node, Addrs: spec.Addrs,
		Listener: opts.Listener, Retry: opts.Retry, Context: opts.Context,
		Reconnect: opts.Reconnect, Heartbeat: opts.Heartbeat,
		PeerTimeout: opts.PeerTimeout, SendTimeout: opts.SendTimeout,
		Obs: opts.Obs, resyncEdges: resyncIDs,
	})
	if err != nil {
		return nil, err
	}
	finish := func(graceful bool) {
		if graceful {
			var wg sync.WaitGroup
			for _, l := range links {
				wg.Add(1)
				go func(l *transport.Link) { defer wg.Done(); l.Close() }(l)
			}
			wg.Wait()
			return
		}
		for _, l := range links {
			l.Abort()
		}
	}

	// Bind cross-worker edges, then replay the in-flight tokens —
	// sender-side only, so each token crosses the wire exactly once.
	for i := range spec.Edges {
		e := &spec.Edges[i]
		if !crossesWorkers(e) {
			continue
		}
		link := links[e.Peer]
		if e.Out {
			err = env.rt.BindRemoteSender(EdgeID(e.ID), link)
		} else {
			err = env.rt.BindRemoteReceiver(EdgeID(e.ID), link)
		}
		if err != nil {
			env.rt.CloseAll()
			finish(false)
			stopResume()
			return nil, err
		}
	}
	for _, oe := range outs {
		pre := spec.Preload[oe.e.ID]
		if len(pre) == 0 {
			continue
		}
		if err := oe.tx.SendBatch(pre); err != nil {
			env.rt.CloseAll()
			finish(false)
			stopResume()
			return nil, fmt.Errorf("spi: preload edge %s: %w", oe.e.Name, err)
		}
	}

	// Run the processors; a cancelled context unwinds every blocked
	// actor by closing the runtime edges.
	ctx := opts.Context
	var cancelWatch func()
	watchDone := make(chan struct{})
	if ctx != nil {
		wctx, cancel := context.WithCancel(ctx)
		cancelWatch = cancel
		go func() {
			defer close(watchDone)
			<-wctx.Done()
			if ctx.Err() != nil {
				env.rt.CloseAll()
			}
		}()
	} else {
		close(watchDone)
	}
	errs := make([]error, len(spec.Procs))
	var wg sync.WaitGroup
	for pi := range spec.Procs {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			errs[pi] = env.runPartProc(pi, &spec.Procs[pi])
			if errs[pi] != nil {
				env.rt.CloseAll()
			}
		}(pi)
	}
	wg.Wait()
	if cancelWatch != nil {
		cancelWatch()
		<-watchDone
	}
	runErr := collapseErrs(errs)
	if ctx != nil && ctx.Err() != nil {
		runErr = ctx.Err()
	}
	if runErr != nil {
		finish(false)
		stopResume()
		if cause := fails.first(); cause != nil && errors.Is(runErr, ErrClosed) {
			return nil, fmt.Errorf("spi: worker %d: %w (link failure: %v)", spec.Node, runErr, cause)
		}
		return nil, runErr
	}
	finish(true)
	stopResume()

	// Fold the links' suppressed-ack counts out of the wire-traffic
	// columns before snapshotting, mirroring ExecuteDistributed.
	for _, l := range links {
		for edge, n := range l.SuppressedAcks() {
			env.rt.addSuppressed(EdgeID(edge), n)
		}
	}

	res := &PartResult{
		Tails:   map[uint16][][]byte{},
		State:   map[string][]byte{},
		Firings: map[string]int{},
		ProcNS:  env.procNS,
		SPI:     env.rt.TotalStats(),
	}
	for name, n := range env.firings {
		res.Firings[name] = *n
	}
	for id, t := range env.tails {
		e := env.edges[id]
		if e.Delay == 0 {
			continue
		}
		if e.SameProc {
			// The local queue itself is the in-flight state (it handles
			// epochs shorter than the delay for free).
			t = env.locals[id]
		}
		res.Tails[id] = clonePayloads(t)
	}
	for name, hooks := range opts.State {
		if hooks.Checkpoint != nil {
			res.State[name] = hooks.Checkpoint()
		}
	}
	return res, nil
}

func clonePayloads(in [][]byte) [][]byte {
	if in == nil {
		return nil
	}
	out := make([][]byte, len(in))
	for i, p := range in {
		out[i] = append([]byte(nil), p...)
	}
	return out
}

// BuildPartitions extracts one PartitionSpec per worker from the full
// graph, processor mapping, and processor→worker placement — the
// coordinator-side complement of ExecutePartition. The returned specs
// carry structure and edge plans only; the caller fills the per-epoch
// fields (BaseIter, Iterations, Addrs, Preload, State). Every worker must
// host at least one processor.
func BuildPartitions(g *dataflow.Graph, m *sched.Mapping, workerOf []int, workers int) ([]*PartitionSpec, error) {
	if err := m.Validate(g); err != nil {
		return nil, err
	}
	if len(workerOf) != m.NumProcs {
		return nil, fmt.Errorf("spi: placement has %d entries, mapping has %d processors", len(workerOf), m.NumProcs)
	}
	hosted := make([]bool, workers)
	for p, w := range workerOf {
		if w < 0 || w >= workers {
			return nil, fmt.Errorf("spi: placement[%d] = %d out of range [0,%d)", p, w, workers)
		}
		hosted[w] = true
	}
	for w, ok := range hosted {
		if !ok {
			return nil, fmt.Errorf("spi: worker %d hosts no processors", w)
		}
	}
	plan, err := newGraphPlan(g, 1)
	if err != nil {
		return nil, err
	}
	// The resynchronization verdict is placement-independent, so the
	// SuppressAck marks are stamped unconditionally; the spec's Resync
	// flag (set by the coordinator) decides whether workers act on them.
	rp, err := ResyncSuppression(g, m)
	if err != nil {
		return nil, err
	}
	specs := make([]*PartitionSpec, workers)
	for w := range specs {
		specs[w] = &PartitionSpec{
			Graph: g.Name(), Node: w, Workers: workers,
			Preload: map[uint16][][]byte{}, State: map[string][]byte{},
		}
	}
	for p := 0; p < m.NumProcs; p++ {
		pp := PartProc{Proc: p}
		for _, a := range m.Order[p] {
			pa := PartActor{Name: g.Actor(a).Name}
			for _, eid := range g.In(a) {
				pa.In = append(pa.In, uint16(eid))
			}
			for _, eid := range g.Out(a) {
				pa.Out = append(pa.Out, uint16(eid))
			}
			pp.Actors = append(pp.Actors, pa)
		}
		specs[workerOf[p]].Procs = append(specs[workerOf[p]].Procs, pp)
	}
	for _, eid := range g.Edges() {
		e := g.Edge(eid)
		srcW, snkW := workerOf[m.Proc[e.Src]], workerOf[m.Proc[e.Snk]]
		cfg := plan.edgeConfig(eid)
		_, suppress := rp.Suppressed[eid]
		pe := PartEdge{
			ID: uint16(eid), Name: e.Name, Mode: uint8(cfg.Mode),
			Protocol: uint8(cfg.Protocol), Capacity: uint32(cfg.Capacity),
			Delay: uint32(plan.delayIters(eid)), Peer: -1, SuppressAck: suppress,
		}
		if cfg.Mode == Dynamic {
			pe.Bytes = uint32(cfg.MaxBytes)
		} else {
			pe.Bytes = uint32(cfg.PayloadBytes)
		}
		if m.Proc[e.Src] == m.Proc[e.Snk] {
			pe.SameProc = true
			specs[srcW].Edges = append(specs[srcW].Edges, pe)
			continue
		}
		if srcW == snkW {
			pe.Out, pe.In = true, true
			specs[srcW].Edges = append(specs[srcW].Edges, pe)
			continue
		}
		src := pe
		src.Out, src.Peer = true, snkW
		specs[srcW].Edges = append(specs[srcW].Edges, src)
		snk := pe
		snk.In, snk.Peer = true, srcW
		specs[snkW].Edges = append(specs[snkW].Edges, snk)
	}
	return specs, nil
}

// InitialPreloads computes every delayed edge's in-flight payloads at
// iteration 0 — the canonical delay tokens a fresh run preloads: empty
// payloads on same-processor edges (whose local queues preload nothing)
// and dynamic edges, zero blocks of the static transfer size on
// cross-processor static edges. Locality follows the processor mapping,
// never worker placement, so the preloaded bytes match Execute's for any
// placement.
func InitialPreloads(g *dataflow.Graph, m *sched.Mapping) (map[uint16][][]byte, error) {
	plan, err := newGraphPlan(g, 1)
	if err != nil {
		return nil, err
	}
	pre := map[uint16][][]byte{}
	for _, eid := range g.Edges() {
		d := plan.delayIters(eid)
		if d == 0 {
			continue
		}
		e := g.Edge(eid)
		cfg := plan.edgeConfig(eid)
		tokens := make([][]byte, d)
		if m.Proc[e.Src] != m.Proc[e.Snk] && cfg.Mode == Static {
			blk := make([]byte, cfg.PayloadBytes)
			for i := range tokens {
				tokens[i] = blk
			}
		} else {
			for i := range tokens {
				tokens[i] = []byte{}
			}
		}
		pre[uint16(eid)] = tokens
	}
	return pre, nil
}
