package sched

import (
	"testing"

	"repro/internal/dataflow"
)

func fissionSchedGraph() (*dataflow.Graph, dataflow.ActorID) {
	g := dataflow.New("fsched")
	src := g.AddActor("src", 100)
	mid := g.AddActor("mid", 5000)
	sink := g.AddActor("sink", 50)
	g.AddEdge("sm", src, mid, 2, 2, dataflow.EdgeSpec{TokenBytes: 4})
	g.AddEdge("ms", mid, sink, 3, 3, dataflow.EdgeSpec{TokenBytes: 4, ProduceDynamic: true, ConsumeDynamic: true})
	return g, mid
}

func TestExtendFissionPlacement(t *testing.T) {
	g, mid := fissionSchedGraph()
	const k = 3
	plan, err := dataflow.Fission(g, mid, dataflow.FissionOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	m, err := SingleProcessor(g)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := ExtendFission(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.Validate(plan.Graph); err != nil {
		t.Fatal(err)
	}
	if fm.NumProcs != m.NumProcs+k {
		t.Errorf("NumProcs = %d, want %d", fm.NumProcs, m.NumProcs+k)
	}
	// Source actors keep their processors; the gather rides with the
	// scatter; replicas each get a processor of their own.
	for _, a := range g.Actors() {
		if fm.Proc[a] != m.Proc[a] {
			t.Errorf("actor %q moved from proc %d to %d", g.Actor(a).Name, m.Proc[a], fm.Proc[a])
		}
	}
	if fm.Proc[plan.Gather] != fm.Proc[plan.Scatter] {
		t.Errorf("gather on proc %d, scatter on %d", fm.Proc[plan.Gather], fm.Proc[plan.Scatter])
	}
	seen := map[Processor]bool{}
	for _, r := range plan.Replicas {
		p := fm.Proc[r]
		if int(p) < m.NumProcs {
			t.Errorf("replica %q placed on pre-existing proc %d", plan.Graph.Actor(r).Name, p)
		}
		if seen[p] {
			t.Errorf("two replicas share proc %d", p)
		}
		seen[p] = true
	}
	// Gather immediately follows scatter in the scatter proc's order.
	order := fm.Order[fm.Proc[plan.Scatter]]
	for i, a := range order {
		if a == plan.Scatter {
			if i+1 >= len(order) || order[i+1] != plan.Gather {
				t.Errorf("gather does not immediately follow scatter in order %v", order)
			}
		}
	}
}

func TestExtendFissionRejectsBadSourceMapping(t *testing.T) {
	g, mid := fissionSchedGraph()
	plan, err := dataflow.Fission(g, mid, dataflow.FissionOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := &Mapping{NumProcs: 1, Proc: make([]Processor, 1), Order: [][]dataflow.ActorID{{0}}}
	if _, err := ExtendFission(bad, plan); err == nil {
		t.Error("ExtendFission accepted a mapping that does not cover the source graph")
	}
}
