// Command spiload is a load generator for spinode -serve: it opens many
// concurrent graph sessions against a session server over one shared
// link, drives each session's client partition to completion, and
// reports admission outcomes and session latency percentiles.
//
// Closed-loop mode (-concurrency W) keeps W sessions in flight until
// -sessions have run; open-loop mode (-rate R) starts R sessions per
// second regardless of completions. Every session verifies its sink
// digest against a locally computed reference, so a load run is also a
// correctness run.
//
// Self-contained smoke (in-process server, loopback or localhost TCP):
//
//	spiload -inproc -sessions 100 -concurrency 16 -iters 10
//	spiload -inproc-tcp -sessions 100 -concurrency 16 -iters 10
//
// Against a live server:
//
//	spinode -serve -graph g.sdf -assign 0,1,1 -nodeof 0,1 \
//	        -addrs 127.0.0.1:7101,unused -node 0 -max-sessions 64 -tenant-quota 16
//	spiload -graph g.sdf -assign 0,1,1 -nodeof 0,1 -node 1 \
//	        -connect 127.0.0.1:7101 -sessions 200 -tenants 4
//
// With -bench the run emits `go test -bench`-style result lines — a
// serial single-session baseline plus the multi-session load phase — so
// `spiload -bench | benchdiff` produces the sessions_vs_single tier.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataflow"
	"repro/internal/demo"
	"repro/internal/session"
	"repro/internal/spi"
	"repro/internal/transport"
)

// builtinGraph is the default workload when no -graph is given: the same
// three-stage pipeline shape the repo's examples use, with the source on
// the server (node 0) and the sink on the client so spiload can verify
// digests locally. Assign 0,1,1 with nodeof 0,1.
const builtinGraph = `graph loadgen
actor src 100
actor mid 150
actor sink 50
edge sm src mid 4 4 bytes=2 delay=4
edge ms mid sink 4 4 bytes=2 dynamic
`

type loadConfig struct {
	Graph       *dataflow.Graph
	Assign      []int
	NodeOf      []int
	Node        int
	Connect     string
	Sessions    int
	Concurrency int
	Rate        float64
	Duration    time.Duration
	Iters       int
	Tenants     int
	Seed        uint64
	Reconnect   transport.ReconnectConfig
	OpenTimeout time.Duration
	// SessionTimeout bounds each session's whole lifetime (open through
	// close) at one wall-clock deadline; with -inproc it is also handed to
	// the server as its reap timeout, so an abandoned session is shed
	// rather than leaked. 0 leaves only the OpenTimeout bound.
	SessionTimeout time.Duration
}

// loadReport aggregates one load phase.
type loadReport struct {
	Started    int
	Admitted   int
	Rejected   int
	Completed  int
	Failed     int
	Shed       int
	Mismatched int
	Tokens     int64
	Elapsed    time.Duration
	Latencies  []time.Duration // admitted sessions only, open -> close
}

func (r *loadReport) percentile(p float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), r.Latencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(math.Ceil(p/100*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[min(i, len(s)-1)]
}

func (r *loadReport) meanLatency() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range r.Latencies {
		sum += l
	}
	return sum / time.Duration(len(r.Latencies))
}

// referenceDigests runs the whole graph locally once and returns the
// expected digest per sink hosted on the client node — the bit-exactness
// oracle every session is checked against.
func referenceDigests(cfg loadConfig) (map[string]uint64, error) {
	g := cfg.Graph
	m, err := demo.Mapping(g, cfg.Assign)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	digests := demo.Sinks(g)
	ks, err := demo.Kernels(g, cfg.Seed, digests, &mu)
	if err != nil {
		return nil, err
	}
	if _, err := spi.Execute(g, m, ks, cfg.Iters); err != nil {
		return nil, err
	}
	want := map[string]uint64{}
	for _, a := range g.Actors() {
		if len(g.Out(a)) != 0 || int(m.Proc[a]) >= len(cfg.NodeOf) || cfg.NodeOf[m.Proc[a]] != cfg.Node {
			continue
		}
		name := g.Actor(a).Name
		want[name] = *digests[name]
	}
	return want, nil
}

// runOne drives a single session end to end and folds the outcome into
// rep under mu. Returns false only for rejected opens (so callers can
// track back-pressure if they care).
func runOne(cfg loadConfig, client *session.Client, tenant string, want map[string]uint64,
	rep *loadReport, mu *sync.Mutex) {
	g := cfg.Graph
	m, err := demo.Mapping(g, cfg.Assign)
	if err != nil {
		mu.Lock()
		rep.Failed++
		mu.Unlock()
		return
	}
	var kmu sync.Mutex
	digests := demo.Sinks(g)
	ks, err := demo.Kernels(g, cfg.Seed, digests, &kmu)
	if err != nil {
		mu.Lock()
		rep.Failed++
		mu.Unlock()
		return
	}

	t0 := time.Now()
	s, err := client.Open(tenant)
	if err != nil {
		mu.Lock()
		var oe *session.OpenError
		if errors.As(err, &oe) {
			rep.Rejected++
		} else {
			rep.Failed++
		}
		mu.Unlock()
		return
	}
	stats, execErr := spi.ExecuteDistributed(g, m, ks, cfg.Iters, spi.DistOptions{
		Node:   cfg.Node,
		Addrs:  make([]string, len(addrsLen(cfg))),
		NodeOf: cfg.NodeOf,
		Links:  s,
	})
	var status byte
	var cerr error
	if cfg.SessionTimeout > 0 {
		// The deadline is anchored at open, so exec time already spent
		// counts against it — the whole session fits the budget or fails.
		status, cerr = s.AwaitCloseDeadline(t0.Add(cfg.SessionTimeout))
	} else {
		status, cerr = s.AwaitClose(cfg.OpenTimeout)
	}
	client.Done(s)
	lat := time.Since(t0)

	mu.Lock()
	defer mu.Unlock()
	rep.Admitted++
	rep.Latencies = append(rep.Latencies, lat)
	switch {
	case status == session.CloseShed:
		rep.Shed++
	case execErr != nil || cerr != nil || status != session.CloseDone:
		rep.Failed++
	default:
		rep.Completed++
		if stats != nil {
			// Messages counts sends; on inbound edges the consumption shows
			// up as Acks instead. max() counts each edge's traffic once
			// whichever direction this node sits on.
			for _, e := range stats.Edges {
				n := e.Stats.Messages
				if e.Stats.Acks > n {
					n = e.Stats.Acks
				}
				rep.Tokens += n
			}
		}
		for name, wantD := range want {
			if *digests[name] != wantD {
				rep.Mismatched++
				break
			}
		}
	}
}

// addrsLen sizes the placeholder address list: provider links never dial,
// but ExecuteDistributed validates the slot count.
func addrsLen(cfg loadConfig) []string {
	n := 0
	for _, node := range cfg.NodeOf {
		if node+1 > n {
			n = node + 1
		}
	}
	return make([]string, n)
}

// runLoad connects one session-capable link to the server and runs the
// configured load phase over it.
func runLoad(cfg loadConfig, tr transport.Transport, w io.Writer) (*loadReport, error) {
	g := cfg.Graph
	m, err := demo.Mapping(g, cfg.Assign)
	if err != nil {
		return nil, err
	}
	if cfg.NodeOf == nil {
		cfg.NodeOf = make([]int, m.NumProcs)
		for p := range cfg.NodeOf {
			cfg.NodeOf[p] = p
		}
	}
	decls, err := spi.PeerDecls(g, m, cfg.NodeOf, cfg.Node, 0)
	if err != nil {
		return nil, err
	}
	if len(decls) != 1 {
		return nil, fmt.Errorf("client node %d must share edges with exactly one server node, has %d peers", cfg.Node, len(decls))
	}
	var serverNode int
	for peer := range decls {
		serverNode = peer
	}
	want, err := referenceDigests(cfg)
	if err != nil {
		return nil, err
	}

	conn, err := transport.DialRetry(context.Background(), tr, cfg.Connect,
		transport.RetryConfig{Attempts: 100, BaseDelay: 5 * time.Millisecond})
	if err != nil {
		return nil, fmt.Errorf("could not reach server at %s: %w", cfg.Connect, err)
	}
	mux := session.NewMux(nil)
	lcfg := transport.LinkConfig{
		Node: cfg.Node, Edges: decls[serverNode], Sessions: true,
		Reconnect: cfg.Reconnect,
	}
	if cfg.Reconnect.Attempts > 0 {
		lcfg.Redial = func() (transport.Conn, error) { return tr.Dial(cfg.Connect) }
	}
	link, err := transport.NewLink(conn, lcfg, mux)
	if err != nil {
		return nil, err
	}
	defer link.Abort()
	mux.Bind(link)
	if !link.SessionsNegotiated() {
		fmt.Fprintf(w, "spiload: peer has no session support; running implicit single sessions\n")
	}
	client := session.NewClient(mux, cfg.OpenTimeout)

	rep := &loadReport{}
	var mu sync.Mutex
	var started atomic.Int64
	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	expired := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }
	tenantOf := func(i int64) string { return "tenant-" + strconv.Itoa(int(i)%cfg.Tenants) }

	t0 := time.Now()
	var wg sync.WaitGroup
	if cfg.Rate > 0 {
		// Open loop: start sessions on a fixed cadence, completions be
		// damned — the admission controller is the relief valve.
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for !expired() {
			i := started.Add(1) - 1
			if int(i) >= cfg.Sessions {
				started.Add(-1)
				break
			}
			wg.Add(1)
			go func(i int64) {
				defer wg.Done()
				runOne(cfg, client, tenantOf(i), want, rep, &mu)
			}(i)
			<-tick.C
		}
	} else {
		workers := cfg.Concurrency
		if workers < 1 {
			workers = 1
		}
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := started.Add(1) - 1
					if int(i) >= cfg.Sessions || expired() {
						started.Add(-1)
						return
					}
					runOne(cfg, client, tenantOf(i), want, rep, &mu)
				}
			}()
		}
	}
	wg.Wait()
	rep.Elapsed = time.Since(t0)
	rep.Started = int(started.Load())
	return rep, nil
}

// summarize prints the human-readable report and returns an error for
// outcomes that must fail the run: digest mismatches, or a load phase
// that admitted nothing (a misconfigured target otherwise looks green).
func summarize(w io.Writer, label string, rep *loadReport) error {
	tps := float64(0)
	if rep.Elapsed > 0 {
		tps = float64(rep.Tokens) / rep.Elapsed.Seconds()
	}
	fmt.Fprintf(w, "%s: %d sessions in %v: %d admitted (%d completed, %d failed, %d shed), %d rejected\n",
		label, rep.Started, rep.Elapsed.Round(time.Millisecond),
		rep.Admitted, rep.Completed, rep.Failed, rep.Shed, rep.Rejected)
	fmt.Fprintf(w, "%s: latency p50 %v p95 %v p99 %v, %.0f tokens/s\n",
		label, rep.percentile(50).Round(time.Microsecond),
		rep.percentile(95).Round(time.Microsecond),
		rep.percentile(99).Round(time.Microsecond), tps)
	if rep.Mismatched > 0 {
		return fmt.Errorf("%s: %d sessions produced digests differing from the single-run reference", label, rep.Mismatched)
	}
	if rep.Admitted == 0 {
		return fmt.Errorf("%s: zero sessions admitted (%d rejected, %d failed)", label, rep.Rejected, rep.Failed)
	}
	return nil
}

// benchLine renders one phase in `go test -bench` result format so
// benchdiff can pair the single baseline against the sessions phase.
func benchLine(name string, rep *loadReport) string {
	tps := float64(0)
	if rep.Elapsed > 0 {
		tps = float64(rep.Tokens) / rep.Elapsed.Seconds()
	}
	return fmt.Sprintf("BenchmarkSpiload/%s \t%d\t%d ns/op\t%.0f tokens_per_s\t%d admitted_sessions\t%d p50_us\t%d p99_us",
		name, rep.Started, rep.meanLatency().Nanoseconds(), tps, rep.Admitted,
		rep.percentile(50).Microseconds(), rep.percentile(99).Microseconds())
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad entry %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func main() {
	var cfg loadConfig
	graphPath := flag.String("graph", "", "dataflow graph file (default: built-in 3-actor pipeline)")
	assign := flag.String("assign", "", "processor per actor (default 0,1,1 with the built-in graph)")
	nodeof := flag.String("nodeof", "", "node per processor (default identity)")
	flag.IntVar(&cfg.Node, "node", 1, "this client's node index")
	flag.StringVar(&cfg.Connect, "connect", "", "session server address (required unless -inproc)")
	flag.IntVar(&cfg.Sessions, "sessions", 100, "total sessions to run")
	flag.IntVar(&cfg.Concurrency, "concurrency", 8, "closed-loop worker count (ignored when -rate > 0)")
	flag.Float64Var(&cfg.Rate, "rate", 0, "open-loop session starts per second (0 = closed loop)")
	flag.DurationVar(&cfg.Duration, "duration", 0, "stop starting new sessions after this long (0 = run all -sessions)")
	flag.IntVar(&cfg.Iters, "iters", 10, "graph iterations per session")
	flag.IntVar(&cfg.Tenants, "tenants", 1, "tenant names to round-robin sessions across")
	flag.Uint64Var(&cfg.Seed, "seed", 1, "kernel seed; must match the server's -seed for digest verification")
	flag.DurationVar(&cfg.OpenTimeout, "open-timeout", 30*time.Second, "per-session open/close wait bound")
	flag.DurationVar(&cfg.SessionTimeout, "session-timeout", 0,
		"hard wall-clock budget per session from open to close; with -inproc the server also reaps sessions idle this long (0 = off)")
	reconnect := flag.Int("reconnect", 0, "reconnect attempts after a link drop (0 = fail fast)")
	reconnectDeadline := flag.Duration("reconnect-deadline", 15*time.Second, "total budget for resuming a dropped link")
	chaosSpec := flag.String("chaos", "", "client-side fault-injection spec (see transport.ParseFaultSpec)")
	bench := flag.Bool("bench", false, "emit go-bench result lines: a serial single baseline plus the load phase")
	inproc := flag.Bool("inproc", false, "start an in-process session server over loopback (self-contained)")
	inprocTCP := flag.Bool("inproc-tcp", false, "like -inproc but served over localhost TCP")
	maxSessions := flag.Int("max-sessions", 0, "with -inproc: server session cap")
	tenantQuota := flag.Int("tenant-quota", 0, "with -inproc: server per-tenant cap")
	flag.Parse()

	if cfg.Tenants < 1 {
		cfg.Tenants = 1
	}
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spiload:", err)
			os.Exit(1)
		}
		cfg.Graph, err = dataflow.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "spiload:", err)
			os.Exit(1)
		}
		if cfg.Assign, err = parseInts(*assign); err != nil {
			fmt.Fprintln(os.Stderr, "spiload: -assign:", err)
			os.Exit(2)
		}
	} else {
		g, err := dataflow.Parse(strings.NewReader(builtinGraph))
		if err != nil {
			panic(err)
		}
		cfg.Graph, cfg.Assign = g, []int{0, 1, 1}
		if cfg.NodeOf == nil {
			cfg.NodeOf = []int{0, 1}
		}
	}
	if *nodeof != "" {
		var err error
		if cfg.NodeOf, err = parseInts(*nodeof); err != nil {
			fmt.Fprintln(os.Stderr, "spiload: -nodeof:", err)
			os.Exit(2)
		}
	}
	if *reconnect > 0 {
		cfg.Reconnect = transport.ReconnectConfig{Attempts: *reconnect, Deadline: *reconnectDeadline}
	}

	var tr transport.Transport = &transport.TCP{}
	if *inproc || *inprocTCP {
		listenAddr := "127.0.0.1:0"
		if !*inprocTCP {
			tr = transport.NewLoopback()
			listenAddr = "spiload-inproc"
		}
		stopInproc, addr, err := startInproc(cfg, tr, listenAddr, *maxSessions, *tenantQuota, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spiload: -inproc:", err)
			os.Exit(1)
		}
		defer stopInproc()
		cfg.Connect = addr
	} else if cfg.Connect == "" {
		fmt.Fprintln(os.Stderr, "spiload: -connect is required (or use -inproc)")
		os.Exit(2)
	}
	if *chaosSpec != "" {
		fc, err := transport.ParseFaultSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spiload: -chaos:", err)
			os.Exit(2)
		}
		tr = transport.NewFaultTransport(tr, fc)
	}

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "spiload:", err)
			os.Exit(1)
		}
	}
	if *bench {
		single := cfg
		single.Concurrency = 1
		single.Rate = 0
		if single.Sessions > 25 {
			single.Sessions = 25
		}
		srep, err := runLoad(single, tr, os.Stderr)
		fail(err)
		fail(summarize(os.Stderr, "single", srep))
		rep, err := runLoad(cfg, tr, os.Stderr)
		fail(err)
		fail(summarize(os.Stderr, "sessions", rep))
		fmt.Println(benchLine("single", srep))
		fmt.Println(benchLine("sessions", rep))
		return
	}
	rep, err := runLoad(cfg, tr, os.Stdout)
	fail(err)
	fail(summarize(os.Stdout, "load", rep))
}
