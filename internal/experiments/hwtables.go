package experiments

import (
	"fmt"

	"repro/internal/hdl"
	"repro/internal/lpc"
	"repro/internal/particle"
)

// resourceTable renders the table-1/table-2 format: full-system utilization
// of the device, and the SPI library's share of the full system.
func resourceTable(title string, top *hdl.Module, device hdl.Resources, paperNote string) *Table {
	system := top.Total()
	lib := top.TotalOf("spi_")
	sysPct := system.PercentOf(device)
	libPct := lib.PercentOf(system)
	t := &Table{
		Title:  title,
		Header: []string{"resource", "full_system", "system_%_of_device", "spi_library", "spi_%_of_system"},
		Notes:  []string{paperNote},
	}
	add := func(name string, sys, l int, sp, lp float64) {
		t.AddRow(name, fmt.Sprintf("%d", sys), fmt.Sprintf("%.2f%%", sp),
			fmt.Sprintf("%d", l), fmt.Sprintf("%.2f%%", lp))
	}
	add("Slices", system.Slices, lib.Slices, sysPct.Slices, libPct.Slices)
	add("Slice_FFs", system.SliceFFs, lib.SliceFFs, sysPct.SliceFFs, libPct.SliceFFs)
	add("4-input_LUTs", system.LUT4s, lib.LUT4s, sysPct.LUT4s, libPct.LUT4s)
	add("Block_RAMs", system.BRAMs, lib.BRAMs, sysPct.BRAMs, libPct.BRAMs)
	add("DSP48s", system.DSP48s, lib.DSP48s, sysPct.DSP48s, libPct.DSP48s)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"achievable clock %.0f MHz (fabric supports %.0f MHz; the paper notes the maximum could not be attained)",
		top.FmaxMHz(), hdl.FabricMaxMHz))
	return t
}

// Table1 regenerates table 1: FPGA resource requirements of the 4-PE
// implementation of actor D of application 1, with the SPI library's share.
func Table1() (*Table, error) {
	top, err := lpc.HardwareModel(lpc.DefaultDeploy(512, 4))
	if err != nil {
		return nil, err
	}
	return resourceTable(
		"Table 1 — 4-PE actor D resources (Virtex-4 SX35 class)",
		top, hdl.VirtexSX35(),
		"paper: system small on device (2.63% slices); SPI share modest (11.88% slices, 50% BRAMs)",
	), nil
}

// Table2 regenerates table 2: FPGA resource requirements of the 2-PE
// particle-filter implementation, with the SPI library's share.
func Table2() (*Table, error) {
	top, err := particle.HardwareModel(particle.DefaultDeploy(300, 2))
	if err != nil {
		return nil, err
	}
	return resourceTable(
		"Table 2 — 2-PE particle filter resources (Virtex-4 SX35 class)",
		top, hdl.VirtexSX35(),
		"paper: system dominates device (65.48% slices, only 2 PEs fit); SPI share tiny (0.2% slices, 11.43% BRAMs, 0% DSP)",
	), nil
}
