package session

// Load is a point-in-time admission-load score for one serving node,
// shaped for placement: an orchestrator (or a front door fanning OPENs
// across a pool) compares Loads and routes the next session to the
// least-loaded node. Scores order lexicographically — see Less.
type Load struct {
	// Live and Degraded count booked sessions; degraded ones still burn
	// a slot but are first in line to be shed, so they tie-break after
	// the live count.
	Live     int
	Degraded int
	// QueuedBytes is the node's total delivered-but-unacknowledged
	// inbound bytes across all tenants — the backpressure signal.
	QueuedBytes int64
	// Capacity is the node's MaxSessions cap, 0 meaning unbounded. A
	// node at capacity sorts after every node with headroom regardless
	// of the other fields: routing there would only shed or reject.
	Capacity int
}

// Full reports whether the node has no admission headroom left.
func (l Load) Full() bool { return l.Capacity > 0 && l.Live >= l.Capacity }

// Less orders loads lightest-first: nodes with headroom before full
// ones, then fewer live sessions, then fewer degraded, then fewer
// queued bytes.
func (l Load) Less(o Load) bool {
	if l.Full() != o.Full() {
		return !l.Full()
	}
	if l.Live != o.Live {
		return l.Live < o.Live
	}
	if l.Degraded != o.Degraded {
		return l.Degraded < o.Degraded
	}
	return l.QueuedBytes < o.QueuedBytes
}

// Load snapshots this server's admission load.
func (s *Server) Load() Load {
	live, degraded := s.adm.counts()
	return Load{
		Live:        live,
		Degraded:    degraded,
		QueuedBytes: s.adm.totalBytes(),
		Capacity:    s.cfg.Admission.MaxSessions,
	}
}

// PickLeastLoaded returns the index of the lightest load, ties going to
// the lowest index so a deterministic input order yields a deterministic
// route. It returns -1 for an empty slice.
func PickLeastLoaded(loads []Load) int {
	best := -1
	for i, l := range loads {
		if best < 0 || l.Less(loads[best]) {
			best = i
		}
	}
	return best
}
