package dataflow

import (
	"fmt"

	"repro/internal/signal"
)

// RandomSpec parameterizes synthetic SDF graph generation for stress and
// property testing. Generated graphs are always sample-rate consistent and
// deadlock-free by construction: actors are laid out in a topological
// order, forward edges get rates derived from a pre-chosen repetitions
// vector, and optional feedback edges carry enough delay to cover one full
// iteration.
type RandomSpec struct {
	// Actors is the number of actors (>= 2).
	Actors int
	// ExtraEdges adds forward edges beyond the spanning chain.
	ExtraEdges int
	// FeedbackEdges adds delayed backward edges (bounding feedback loops).
	FeedbackEdges int
	// MaxRepetition bounds the per-actor repetition counts (>= 1).
	MaxRepetition int
	// MaxExecCycles bounds actor execution times.
	MaxExecCycles int64
	// DynamicFraction (0..1 scaled by 100) makes roughly that percentage
	// of forward edges dynamic.
	DynamicPercent int
}

// DefaultRandomSpec returns a mid-size stress configuration.
func DefaultRandomSpec() RandomSpec {
	return RandomSpec{
		Actors:         8,
		ExtraEdges:     6,
		FeedbackEdges:  2,
		MaxRepetition:  4,
		MaxExecCycles:  200,
		DynamicPercent: 25,
	}
}

// Random generates a consistent, schedulable SDF graph from the spec and
// seed. The same (spec, seed) pair always yields the same graph.
func Random(spec RandomSpec, seed uint64) (*Graph, error) {
	if spec.Actors < 2 {
		return nil, fmt.Errorf("dataflow: random graph needs >= 2 actors")
	}
	if spec.MaxRepetition < 1 {
		spec.MaxRepetition = 1
	}
	if spec.MaxExecCycles < 1 {
		spec.MaxExecCycles = 1
	}
	rng := signal.NewRNG(seed)
	g := New(fmt.Sprintf("random-%d", seed))

	// Pre-chosen repetitions vector: forward edge (a, b) then carries
	// produce = q[b]/gcd, consume = q[a]/gcd — consistent by construction.
	reps := make([]int64, spec.Actors)
	for i := range reps {
		reps[i] = int64(1 + rng.Intn(spec.MaxRepetition))
		g.AddActor(fmt.Sprintf("a%d", i), 1+int64(rng.Uint64()%uint64(spec.MaxExecCycles)))
	}
	gcd := func(a, b int64) int64 {
		for b != 0 {
			a, b = b, a%b
		}
		return a
	}
	edgeCount := 0
	addForward := func(src, snk int) {
		d := gcd(reps[src], reps[snk])
		produce := int(reps[snk] / d)
		consume := int(reps[src] / d)
		spec2 := EdgeSpec{TokenBytes: 1 + rng.Intn(8)}
		if rng.Intn(100) < spec.DynamicPercent {
			// Dynamic ports require equal packed rates; only 1:1 edges
			// qualify (both reps equal).
			if produce == consume {
				spec2.ProduceDynamic = true
				spec2.ConsumeDynamic = true
				// Interpret the rate as the bound on a variable burst.
				produce = 2 + rng.Intn(16)
				consume = produce
			}
		}
		g.AddEdge(fmt.Sprintf("e%d", edgeCount), ActorID(src), ActorID(snk), produce, consume, spec2)
		edgeCount++
	}
	// Spanning chain keeps the graph connected.
	for i := 1; i < spec.Actors; i++ {
		addForward(i-1, i)
	}
	for i := 0; i < spec.ExtraEdges; i++ {
		src := rng.Intn(spec.Actors - 1)
		snk := src + 1 + rng.Intn(spec.Actors-src-1)
		addForward(src, snk)
	}
	// Feedback edges with one full iteration of delay: snk fires reps[snk]
	// times per iteration consuming produce' tokens each... keep rates
	// consistent the same way and set delay = tokens moved per iteration.
	for i := 0; i < spec.FeedbackEdges; i++ {
		snk := rng.Intn(spec.Actors - 1)
		src := snk + 1 + rng.Intn(spec.Actors-snk-1)
		d := gcd(reps[src], reps[snk])
		produce := int(reps[snk] / d)
		consume := int(reps[src] / d)
		perIter := reps[src] * int64(produce)
		g.AddEdge(fmt.Sprintf("fb%d", i), ActorID(src), ActorID(snk), produce, consume, EdgeSpec{
			Delay:      int(perIter),
			TokenBytes: 1 + rng.Intn(4),
		})
		edgeCount++
	}
	if _, err := g.RepetitionsVector(); err != nil {
		return nil, fmt.Errorf("dataflow: generated graph inconsistent (bug): %w", err)
	}
	return g, nil
}
