package dsp

import (
	"fmt"
	"math"
)

// LPCModel holds an order-M linear predictor: the prediction of sample i is
// sum_k Coeffs[k] * x[i-1-k].
type LPCModel struct {
	// Coeffs are the predictor coefficients a[0..M-1].
	Coeffs []float64
}

// Order returns the model order M.
func (m *LPCModel) Order() int { return len(m.Coeffs) }

// LPCAnalyze computes order-m predictor coefficients for the frame by
// solving the autocorrelation normal equations R a = r with LU
// decomposition — the actor-C pipeline of application 1 (autocorrelation
// from the FFT-derived power spectrum, Toeplitz assembly, LU solve).
//
// A small diagonal regularization keeps near-silent frames solvable.
func LPCAnalyze(frame []float64, m int) (*LPCModel, error) {
	if m <= 0 {
		return nil, fmt.Errorf("dsp: LPC order %d", m)
	}
	if len(frame) <= m {
		return nil, fmt.Errorf("dsp: frame of %d samples too short for order %d", len(frame), m)
	}
	r, err := AutocorrelationFFT(frame, m)
	if err != nil {
		return nil, err
	}
	// Regularize: white-noise floor at -60 dB of the frame energy, plus an
	// absolute epsilon for all-zero frames.
	r[0] = r[0]*(1+1e-6) + 1e-12
	a, err := ToeplitzFromAutocorrelation(r, m)
	if err != nil {
		return nil, err
	}
	rhs := make([]float64, m)
	copy(rhs, r[1:m+1])
	coeffs, err := SolveSystem(a, rhs)
	if err != nil {
		return nil, err
	}
	return &LPCModel{Coeffs: coeffs}, nil
}

// Predict returns the predicted value of x[i] given history x[:i].
func (m *LPCModel) Predict(x []float64, i int) float64 {
	var p float64
	for k, c := range m.Coeffs {
		j := i - 1 - k
		if j >= 0 {
			p += c * x[j]
		}
	}
	return p
}

// Residual returns the prediction-error signal e[i] = x[i] - predict(i)
// over the whole frame — the work of application 1's actor D, the actor
// the paper parallelizes across PEs.
func (m *LPCModel) Residual(x []float64) []float64 {
	e := make([]float64, len(x))
	for i := range x {
		e[i] = x[i] - m.Predict(x, i)
	}
	return e
}

// ResidualRange computes the prediction error only for samples
// [start, end), given the full frame for history — the per-PE slice of
// actor D: each PE receives the (overlapping) section of the frame it
// needs plus the coefficients, and produces its share of error values.
func (m *LPCModel) ResidualRange(x []float64, start, end int) []float64 {
	if start < 0 {
		start = 0
	}
	if end > len(x) {
		end = len(x)
	}
	if end <= start {
		return nil
	}
	e := make([]float64, end-start)
	for i := start; i < end; i++ {
		e[i-start] = x[i] - m.Predict(x, i)
	}
	return e
}

// Reconstruct inverts Residual: given the error signal and the model,
// rebuild the original samples exactly (up to floating-point roundoff).
func (m *LPCModel) Reconstruct(e []float64) []float64 {
	x := make([]float64, len(e))
	for i := range e {
		x[i] = e[i] + m.Predict(x, i)
	}
	return x
}

// PredictionGain returns the ratio of signal power to residual power in
// decibels — the standard figure of merit for LPC: higher is better
// compression potential.
func PredictionGain(x, e []float64) float64 {
	var sx, se float64
	for i := range x {
		sx += x[i] * x[i]
	}
	for i := range e {
		se += e[i] * e[i]
	}
	if se == 0 {
		return math.Inf(1)
	}
	if sx == 0 {
		return 0
	}
	return 10 * math.Log10(sx/se)
}

// Quantizer is a uniform midtread scalar quantizer over [-Range, +Range]
// with 2^Bits levels, used to quantize the prediction error before entropy
// coding.
type Quantizer struct {
	Bits  int
	Range float64
	step  float64
	half  int32
}

// NewQuantizer returns a quantizer with the given bit depth and full-scale
// range. Bits must be in [2, 16].
func NewQuantizer(bits int, rng float64) (*Quantizer, error) {
	if bits < 2 || bits > 16 {
		return nil, fmt.Errorf("dsp: quantizer bits %d out of [2,16]", bits)
	}
	if rng <= 0 {
		return nil, fmt.Errorf("dsp: quantizer range %v", rng)
	}
	levels := int32(1) << uint(bits)
	return &Quantizer{
		Bits:  bits,
		Range: rng,
		step:  2 * rng / float64(levels),
		half:  levels / 2,
	}, nil
}

// Quantize maps a sample to its level index in [0, 2^Bits). Out-of-range
// samples clip.
func (q *Quantizer) Quantize(v float64) uint16 {
	idx := int32(math.Round(v/q.step)) + q.half
	if idx < 0 {
		idx = 0
	}
	if idx >= 2*q.half {
		idx = 2*q.half - 1
	}
	return uint16(idx)
}

// Dequantize maps a level index back to its reconstruction value.
func (q *Quantizer) Dequantize(idx uint16) float64 {
	return float64(int32(idx)-q.half) * q.step
}

// QuantizeAll quantizes a slice.
func (q *Quantizer) QuantizeAll(x []float64) []uint16 {
	out := make([]uint16, len(x))
	for i, v := range x {
		out[i] = q.Quantize(v)
	}
	return out
}

// DequantizeAll reconstructs a slice.
func (q *Quantizer) DequantizeAll(idx []uint16) []float64 {
	out := make([]float64, len(idx))
	for i, v := range idx {
		out[i] = q.Dequantize(v)
	}
	return out
}
