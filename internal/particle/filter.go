// Package particle implements the paper's application 2: a particle filter
// that tracks crack-failure length in turbine-engine blades (after Orchard
// et al.). Particles recursively estimate the unknown state from noisy
// observations through three steps per iteration:
//
//	E — estimate the current state by propagating particles through the
//	    state-transition model,
//	U — update particle weights with the external observation and the
//	    observation model,
//	S — select (resample) particles for the next iteration, with new
//	    samples replicating old ones with multiplicities proportional to
//	    their weights.
//
// Every step parallelizes over particles except resampling. The
// distributed implementation (Distributed) follows the paper's scheme:
// local partial weight sums are exchanged first (fixed size — SPI_static),
// then each PE resamples locally, then excess new particles migrate
// between PEs so every PE again holds N/n particles (run-time-varying
// size — SPI_dynamic).
package particle

import (
	"fmt"
	"math"

	"repro/internal/signal"
)

// Model is the crack-growth state-space model shared by truth generation
// (package signal) and the filter.
type Model struct {
	P signal.CrackParams
}

// Propagate applies the state transition to a crack length with process
// noise drawn from rng.
func (m Model) Propagate(a float64, rng *signal.RNG) float64 {
	growth := m.P.C * math.Pow(math.Sqrt(a), m.P.M)
	next := a + growth*(1+m.P.ProcessNoise*rng.NormFloat64())
	if next < m.P.A0 {
		next = m.P.A0
	}
	return next
}

// Likelihood returns the observation likelihood N(y; a, MeasureNoise).
func (m Model) Likelihood(y, a float64) float64 {
	s := m.P.MeasureNoise
	d := (y - a) / s
	return math.Exp(-0.5*d*d) / (s * math.Sqrt(2*math.Pi))
}

// Filter is a serial bootstrap particle filter.
type Filter struct {
	model     Model
	particles []float64
	weights   []float64
	rng       *signal.RNG

	// adaptive resampling state (see ess.go)
	adaptive     bool
	resampleFrac float64
	resamplings  int64
}

// NewFilter creates a filter with n particles initialized at the model's
// initial crack length (with a little jitter so resampling has diversity).
func NewFilter(model Model, n int, seed uint64) (*Filter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("particle: %d particles", n)
	}
	f := &Filter{
		model:     model,
		particles: make([]float64, n),
		weights:   make([]float64, n),
		rng:       signal.NewRNG(seed),
	}
	for i := range f.particles {
		f.particles[i] = model.P.A0 * (1 + 0.05*f.rng.NormFloat64())
		if f.particles[i] < model.P.A0 {
			f.particles[i] = model.P.A0
		}
		f.weights[i] = 1
	}
	return f, nil
}

// N returns the particle count.
func (f *Filter) N() int { return len(f.particles) }

// Particles returns the current particle values (borrowed; do not modify).
func (f *Filter) Particles() []float64 { return f.particles }

// Step performs one E-U-S iteration against an observation and returns the
// weighted state estimate (computed after the update, before selection).
func (f *Filter) Step(observation float64) float64 {
	// E: propagate.
	for i, a := range f.particles {
		f.particles[i] = f.model.Propagate(a, f.rng)
	}
	// U: weight update.
	var sum float64
	for i, a := range f.particles {
		f.weights[i] = f.model.Likelihood(observation, a)
		sum += f.weights[i]
	}
	est := Estimate(f.particles, f.weights, sum)
	// S: select via systematic resampling.
	f.particles = SystematicResample(f.particles, f.weights, sum, len(f.particles), f.rng)
	for i := range f.weights {
		f.weights[i] = 1
	}
	f.resamplings++
	return est
}

// Estimate returns the weighted mean of particles; with a zero weight sum
// it falls back to the unweighted mean (all particles equally implausible).
func Estimate(particles, weights []float64, sum float64) float64 {
	if sum <= 0 {
		var s float64
		for _, a := range particles {
			s += a
		}
		return s / float64(len(particles))
	}
	var s float64
	for i, a := range particles {
		s += a * weights[i]
	}
	return s / sum
}

// SystematicResample draws `count` particles from the weighted set using
// systematic (stratified comb) resampling: new samples are exact replicas
// of old samples with multiplicities proportional to their weights — the
// selection scheme the paper describes. With a zero weight sum it copies
// particles cyclically.
func SystematicResample(particles, weights []float64, sum float64, count int, rng *signal.RNG) []float64 {
	out := make([]float64, count)
	if sum <= 0 {
		for i := range out {
			out[i] = particles[i%len(particles)]
		}
		return out
	}
	step := sum / float64(count)
	u := rng.Float64() * step
	var cum float64
	j := 0
	for i := 0; i < count; i++ {
		target := u + float64(i)*step
		for cum+weights[j] < target && j < len(weights)-1 {
			cum += weights[j]
			j++
		}
		out[i] = particles[j]
	}
	return out
}

// Multiplicities returns, per particle, the replica count systematic
// resampling would assign for a total of `count` draws. The counts sum to
// `count`; they drive the local-resampling step of the distributed filter.
func Multiplicities(weights []float64, sum float64, count int, rng *signal.RNG) []int {
	mult := make([]int, len(weights))
	if sum <= 0 {
		for i := 0; i < count; i++ {
			mult[i%len(weights)]++
		}
		return mult
	}
	step := sum / float64(count)
	u := rng.Float64() * step
	var cum float64
	j := 0
	for i := 0; i < count; i++ {
		target := u + float64(i)*step
		for cum+weights[j] < target && j < len(weights)-1 {
			cum += weights[j]
			j++
		}
		mult[j]++
	}
	return mult
}

// RMSE returns the root-mean-square error between estimates and truth.
func RMSE(estimates, truth []float64) float64 {
	n := len(estimates)
	if len(truth) < n {
		n = len(truth)
	}
	var s float64
	for i := 0; i < n; i++ {
		d := estimates[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}
