package platform

import (
	"fmt"
	"sort"
	"strings"
)

// Execution tracing: when enabled, the engine records one Segment per
// operation so runs can be inspected as a per-PE timeline (Gantt chart).

// SegmentKind classifies trace segments.
type SegmentKind uint8

const (
	// SegCompute is actor computation.
	SegCompute SegmentKind = iota
	// SegSend is sender-side message processing.
	SegSend
	// SegRecv is receiver-side message processing (including waiting for
	// arrival folded into the start time).
	SegRecv
)

func (k SegmentKind) String() string {
	switch k {
	case SegCompute:
		return "compute"
	case SegSend:
		return "send"
	case SegRecv:
		return "recv"
	default:
		return fmt.Sprintf("SegmentKind(%d)", uint8(k))
	}
}

// Segment is one traced operation.
type Segment struct {
	PE         int
	Kind       SegmentKind
	Start, End Time
	// Iter is the graph iteration the operation belongs to.
	Iter int
	// Ch is the channel for send/recv segments (-1 for compute).
	Ch ChannelID
}

// Trace accumulates segments of one run.
type Trace struct {
	Segments []Segment
}

// EnableTrace turns on segment recording for subsequent Run calls.
// Tracing costs memory proportional to ops x iterations; leave it off for
// large sweeps.
func (s *Sim) EnableTrace() { s.trace = true }

// LastTrace returns the trace of the most recent Run (nil when tracing is
// disabled).
func (s *Sim) LastTrace() *Trace { return s.lastTrace }

// PESegments returns the segments of one PE in time order.
func (t *Trace) PESegments(pe int) []Segment {
	var out []Segment
	for _, s := range t.Segments {
		if s.PE == pe {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Busy returns the total busy time of a PE in the trace.
func (t *Trace) Busy(pe int) Time {
	var b Time
	for _, s := range t.Segments {
		if s.PE == pe {
			b += s.End - s.Start
		}
	}
	return b
}

// Gantt renders a fixed-width textual Gantt chart: one row per PE, one
// column per time bucket; '#' compute, '>' send, '<' recv, '.' idle.
func (t *Trace) Gantt(numPEs int, width int) string {
	if width <= 0 {
		width = 80
	}
	var horizon Time
	for _, s := range t.Segments {
		if s.End > horizon {
			horizon = s.End
		}
	}
	if horizon == 0 {
		return "(empty trace)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "0%scycles %d\n", strings.Repeat(" ", width-8-len(fmt.Sprint(horizon))), horizon)
	for pe := 0; pe < numPEs; pe++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range t.Segments {
			if s.PE != pe {
				continue
			}
			lo := int(int64(s.Start) * int64(width) / int64(horizon))
			hi := int(int64(s.End) * int64(width) / int64(horizon))
			if hi >= width {
				hi = width - 1
			}
			mark := byte('#')
			switch s.Kind {
			case SegSend:
				mark = '>'
			case SegRecv:
				mark = '<'
			}
			for i := lo; i <= hi; i++ {
				row[i] = mark
			}
		}
		fmt.Fprintf(&b, "PE%-2d %s\n", pe, row)
	}
	return b.String()
}
