package spi

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/obs"
)

// Vectorized (blocked) execution. A blocking factor B groups B consecutive
// graph iterations into one super-iteration: each actor fires B times back
// to back and every block-aligned interprocessor edge moves its B tokens in
// a single packed VTS-style message (a "slab"), so headers, credits, and
// acks are paid once per block instead of once per token. Edges whose
// initial delay is not a whole multiple of B iterations stay token-granular
// (their producer/consumer iteration windows straddle block boundaries);
// same-processor edges always stay token-granular, since they never touch
// the wire.
//
// Slab layout, chosen so both sides can size and split a block without any
// per-edge negotiation beyond the manifest:
//
//	per-token-static edge  (fixed token size s):  n tokens of s bytes,
//	    concatenated; the count is implicit in the length.
//	per-token-dynamic edge (bounded token size):  u16 count | count x u32
//	    token sizes | payloads, concatenated.
//
// A blocked edge is always carried in SPI_dynamic framing (the final block
// of a run may be partial), with MaxBytes covering a full slab.

const (
	slabCountBytes = 2 // u16 token count, dynamic-token slabs only
	slabSizeBytes  = 4 // u32 per-token size, dynamic-token slabs only
)

// SlabBound returns the maximum encoded size of a slab of n tokens whose
// individual payloads are bounded by tokenBytes. It is the MaxBytes of a
// blocked edge's SPI channel.
func SlabBound(tokenBytes int, dynamic bool, n int) int {
	if dynamic {
		return slabCountBytes + n*slabSizeBytes + n*tokenBytes
	}
	return n * tokenBytes
}

// beginSlab starts a slab of n tokens in dst (reusing its capacity): for a
// dynamic-token slab it reserves the count and size table up front so
// payloads can be appended one firing at a time; a static-token slab has no
// header.
func beginSlab(dst []byte, n int, dynamic bool) []byte {
	dst = dst[:0]
	if dynamic {
		header := slabCountBytes + n*slabSizeBytes
		for len(dst) < header {
			dst = append(dst, 0)
		}
		binary.BigEndian.PutUint16(dst[:slabCountBytes], uint16(n))
	}
	return dst
}

// appendSlabToken adds the idx-th token to a slab begun with beginSlab. A
// static-token slab zero-pads every payload to exactly tokenBytes, matching
// the scalar SPI_static contract; a dynamic-token slab records the payload
// size in the reserved table. The payload is copied, so callers may reuse
// its buffer immediately.
func appendSlabToken(slab []byte, idx int, payload []byte, tokenBytes int, dynamic bool) ([]byte, error) {
	if len(payload) > tokenBytes {
		return nil, fmt.Errorf("spi: slab token %d: payload %d bytes exceeds token bound %d", idx, len(payload), tokenBytes)
	}
	if dynamic {
		binary.BigEndian.PutUint32(slab[slabCountBytes+idx*slabSizeBytes:], uint32(len(payload)))
		return append(slab, payload...), nil
	}
	slab = append(slab, payload...)
	for pad := tokenBytes - len(payload); pad > 0; pad-- {
		slab = append(slab, 0)
	}
	return slab, nil
}

// PackSlab encodes tokens as one slab appended to dst (reusing its
// capacity) and returns the result. tokenBytes bounds each payload;
// dynamic selects the per-token-size layout. Payloads are copied.
func PackSlab(dst []byte, tokens [][]byte, tokenBytes int, dynamic bool) ([]byte, error) {
	slab := beginSlab(dst, len(tokens), dynamic)
	var err error
	for i, tok := range tokens {
		if slab, err = appendSlabToken(slab, i, tok, tokenBytes, dynamic); err != nil {
			return nil, err
		}
	}
	return slab, nil
}

// UnpackSlab splits a slab into per-token views aliasing slab's backing
// array, appended to views (reusing its capacity). The slab must hold at
// least min tokens — a consumer's final partial block may need fewer tokens
// than the (full) slab a delayed producer sent, so extras are allowed and
// returned for the caller to ignore.
func UnpackSlab(slab []byte, min, tokenBytes int, dynamic bool, views [][]byte) ([][]byte, error) {
	views = views[:0]
	if dynamic {
		if len(slab) < slabCountBytes {
			return nil, fmt.Errorf("spi: slab truncated: %d bytes, need %d-byte count", len(slab), slabCountBytes)
		}
		n := int(binary.BigEndian.Uint16(slab[:slabCountBytes]))
		if n < min {
			return nil, fmt.Errorf("spi: slab holds %d tokens, consumer needs %d", n, min)
		}
		header := slabCountBytes + n*slabSizeBytes
		if len(slab) < header {
			return nil, fmt.Errorf("spi: slab truncated: %d bytes, need %d-byte size table", len(slab), header)
		}
		off := header
		for i := 0; i < n; i++ {
			sz := int(binary.BigEndian.Uint32(slab[slabCountBytes+i*slabSizeBytes:]))
			if sz > tokenBytes {
				return nil, fmt.Errorf("spi: slab token %d: size %d exceeds token bound %d", i, sz, tokenBytes)
			}
			if off+sz > len(slab) {
				return nil, fmt.Errorf("spi: slab truncated: token %d needs %d bytes past end", i, off+sz-len(slab))
			}
			views = append(views, slab[off:off+sz:off+sz])
			off += sz
		}
		if off != len(slab) {
			return nil, fmt.Errorf("spi: slab has %d trailing bytes", len(slab)-off)
		}
		return views, nil
	}
	if tokenBytes <= 0 || len(slab)%tokenBytes != 0 {
		return nil, fmt.Errorf("spi: slab length %d is not a multiple of token size %d", len(slab), tokenBytes)
	}
	n := len(slab) / tokenBytes
	if n < min {
		return nil, fmt.Errorf("spi: slab holds %d tokens, consumer needs %d", n, min)
	}
	for i := 0; i < n; i++ {
		views = append(views, slab[i*tokenBytes:(i+1)*tokenBytes:(i+1)*tokenBytes])
	}
	return views, nil
}

// VectorKernel fires an actor n times in one call: iter is the first
// iteration of the block and in holds, per input edge, the n payloads for
// iterations iter..iter+n-1 (views into runtime buffers, valid only for the
// duration of the call). It returns, per output edge, the n payloads in
// firing order. Returned payloads must be distinct live slices — the
// runtime packs them after the call returns — but may alias the inputs.
// Omitted output edges send n empty payloads. A VectorKernel must produce
// exactly the bytes its scalar counterpart would across the same n firings:
// blocked and scalar runs of a graph are required to be bit-identical.
type VectorKernel func(iter, n int, in map[dataflow.EdgeID][][]byte) (map[dataflow.EdgeID][][]byte, error)

// LiftKernel adapts a scalar Kernel to the VectorKernel signature by firing
// it once per iteration of the block. Execute does this lifting (with
// buffer-contract-preserving copies) automatically for actors without a
// VectorKernel; LiftKernel is for callers composing kernels themselves.
// Note the scalar buffer-reuse contract does not hold across the lifted
// call: outputs are copied before the next firing.
func LiftKernel(k Kernel) VectorKernel {
	return func(iter, n int, in map[dataflow.EdgeID][][]byte) (map[dataflow.EdgeID][][]byte, error) {
		out := make(map[dataflow.EdgeID][][]byte)
		scalarIn := make(map[dataflow.EdgeID][]byte, len(in))
		for j := 0; j < n; j++ {
			for eid, toks := range in {
				scalarIn[eid] = toks[j]
			}
			produced, err := k(iter+j, scalarIn)
			if err != nil {
				return nil, err
			}
			for eid, payload := range produced {
				out[eid] = append(out[eid], append([]byte(nil), payload...))
			}
		}
		return out, nil
	}
}

// VecOptions configures blocked execution for Execute / ExecuteDistributed.
// The zero value is scalar execution.
type VecOptions struct {
	// Block is the blocking factor B: the number of consecutive graph
	// iterations fired per super-iteration. 0 or 1 selects scalar
	// execution, preserving today's behavior exactly.
	Block int
	// Kernels optionally maps actors to VectorKernel implementations that
	// fire a whole block natively; actors not present fall back to their
	// scalar Kernel, lifted one firing at a time (bit-identical, but
	// without the amortized-call benefit).
	Kernels map[dataflow.ActorID]VectorKernel
	// StallTimeout arms the progress watchdog: a run with no actor
	// firings and no edge message/credit movement for this long is
	// aborted with a *StallError naming the stalled actors instead of
	// deadlocking silently. 0 disables. See DistOptions.StallTimeout.
	StallTimeout time.Duration
	// Context, when non-nil, bounds the run: cancellation releases every
	// blocked actor and the execution returns the context error.
	Context context.Context
	// Obs, when non-nil, receives the watchdog's diagnostic dump
	// (per-edge queue/credit gauges and trace instants on a stall).
	Obs *obs.Observer
}
