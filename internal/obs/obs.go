package obs

import "sync"

// Observer bundles one process's metrics registry and event tracer. A nil
// *Observer is the disabled state: every accessor returns nil handles
// whose record methods are no-ops, so instrumented code never branches on
// "is observability on" beyond the nil checks built into the handles.
type Observer struct {
	Metrics *Registry
	Trace   *Tracer
	// Node is the Chrome trace pid for events recorded by this process,
	// set by the daemon to its node index.
	Node int

	// Named health sources merged into every /healthz document (see
	// SetHealth). Subsystems register themselves here so the handler
	// needs no wiring per source.
	hmu    sync.Mutex
	health map[string]HealthFunc
}

// New returns an enabled observer with a fresh registry and a wall-clock
// tracer of the default capacity.
func New() *Observer {
	return &Observer{Metrics: NewRegistry(), Trace: NewTracer(DefaultTraceEvents, nil)}
}

// NewSeeded returns an observer whose tracer uses the deterministic
// TestClock(seed) — reproducible timestamps for golden-file tests.
func NewSeeded(node int, seed uint64) *Observer {
	return &Observer{
		Metrics: NewRegistry(),
		Trace:   NewTracer(DefaultTraceEvents, TestClock(seed)),
		Node:    node,
	}
}

// Counter resolves a counter handle, nil when the observer is disabled.
func (o *Observer) Counter(name, help string, labels ...Label) *Counter {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Counter(name, help, labels...)
}

// Gauge resolves a gauge handle, nil when the observer is disabled.
func (o *Observer) Gauge(name, help string, labels ...Label) *Gauge {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Gauge(name, help, labels...)
}

// Histogram resolves a histogram handle, nil when the observer is
// disabled.
func (o *Observer) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Histogram(name, help, bounds, labels...)
}

// Tracer returns the event tracer, nil when the observer is disabled
// (tracer methods are nil-safe).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Pid returns the Chrome trace pid for this observer (0 when disabled).
func (o *Observer) Pid() int {
	if o == nil {
		return 0
	}
	return o.Node
}

// SetHealth registers (or replaces) a named live-status source: its value
// appears under key in every /healthz document the Handler serves, merged
// alongside the caller-supplied document. Transport links register their
// liveness view here so health endpoints show per-link state without any
// per-binary wiring. A nil observer ignores the call; a nil fn removes
// the key.
func (o *Observer) SetHealth(key string, fn HealthFunc) {
	if o == nil {
		return
	}
	o.hmu.Lock()
	if o.health == nil {
		o.health = map[string]HealthFunc{}
	}
	if fn == nil {
		delete(o.health, key)
	} else {
		o.health[key] = fn
	}
	o.hmu.Unlock()
}

// healthExtras evaluates every registered health source outside the lock
// (JSON encoding sorts map keys, so output order is deterministic).
func (o *Observer) healthExtras() map[string]any {
	if o == nil {
		return nil
	}
	o.hmu.Lock()
	snap := make(map[string]HealthFunc, len(o.health))
	for k, fn := range o.health {
		snap[k] = fn
	}
	o.hmu.Unlock()
	if len(snap) == 0 {
		return nil
	}
	out := make(map[string]any, len(snap))
	for k, fn := range snap {
		out[k] = fn()
	}
	return out
}
