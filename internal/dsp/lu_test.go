package dsp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func matFromRows(rows [][]float64) *Matrix {
	m := NewMatrix(len(rows))
	for i, r := range rows {
		for j, v := range r {
			m.Set(i, j, v)
		}
	}
	return m
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 => x = 1, y = 3.
	a := matFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveSystem(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := matFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveSystem(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSingularDetected(t *testing.T) {
	a := matFromRows([][]float64{{1, 2}, {2, 4}})
	_, err := Decompose(a)
	if !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestDeterminant(t *testing.T) {
	a := matFromRows([][]float64{{2, 0}, {0, 3}})
	lu, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lu.Determinant()-6) > 1e-12 {
		t.Errorf("det = %v, want 6", lu.Determinant())
	}
	// Permutation parity: swapping rows flips sign.
	b := matFromRows([][]float64{{0, 3}, {2, 0}})
	lub, err := Decompose(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lub.Determinant()+6) > 1e-12 {
		t.Errorf("det = %v, want -6", lub.Determinant())
	}
}

func TestSolveRejectsWrongRHS(t *testing.T) {
	a := matFromRows([][]float64{{1, 0}, {0, 1}})
	lu, _ := Decompose(a)
	if _, err := lu.Solve([]float64{1}); err == nil {
		t.Error("wrong rhs length should fail")
	}
}

func TestDecomposeDoesNotModifyInput(t *testing.T) {
	a := matFromRows([][]float64{{4, 3}, {6, 3}})
	orig := a.Clone()
	if _, err := Decompose(a); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != orig.Data[i] {
			t.Fatal("Decompose modified its input")
		}
	}
}

// Property: for random diagonally dominant systems, Solve recovers x such
// that A x ~= b.
func TestSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := NewMatrix(n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			a.Set(i, i, a.At(i, i)+rowSum+1) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveSystem(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			if math.Abs(s-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestToeplitzFromAutocorrelation(t *testing.T) {
	r := []float64{10, 5, 2}
	m, err := ToeplitzFromAutocorrelation(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{10, 5, 2}, {5, 10, 5}, {2, 5, 10}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("T[%d][%d] = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
	if _, err := ToeplitzFromAutocorrelation(r, 4); err == nil {
		t.Error("too few lags should fail")
	}
}
