package lpc

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/spi"
)

// Hardware/software co-design deployment. The paper notes the FPGA could
// not fit a multiprocessor version of the whole application, so only actor
// D runs in hardware: "this experiment of SPI is in the context of an
// overall hardware/software co-design solution". CoDesignSystem models the
// complete figure-2 pipeline with A, B, C and E on an embedded CPU and D
// split across n hardware PEs, all connected by SPI edges.

// CoDesignParams configures the co-design deployment.
type CoDesignParams struct {
	// Codec carries the frame size and model order.
	Codec Params
	// HWPEs is the number of hardware PEs actor D is split across.
	HWPEs int
	// CPUSlowdown scales the software actors' cycle costs relative to the
	// hardware datapath (an embedded CPU retires the same arithmetic in
	// many more cycles than a dedicated pipeline).
	CPUSlowdown int64
	// SampleBytes is the wire width of one sample.
	SampleBytes int
}

// DefaultCoDesign returns the evaluation defaults.
func DefaultCoDesign(frameSize, hwPEs int) CoDesignParams {
	p := DefaultParams()
	p.FrameSize = frameSize
	return CoDesignParams{Codec: p, HWPEs: hwPEs, CPUSlowdown: 8, SampleBytes: 2}
}

// Validate checks the parameters.
func (c CoDesignParams) Validate() error {
	if err := c.Codec.Validate(); err != nil {
		return err
	}
	if c.HWPEs <= 0 || c.CPUSlowdown <= 0 || c.SampleBytes <= 0 {
		return fmt.Errorf("lpc: bad co-design params %+v", c)
	}
	return nil
}

// CoDesignSystem builds the SPI system of the co-design deployment:
// processor 0 is the CPU running A (read), B (FFT), C (LU), the D-scatter/
// gather glue, and E (Huffman); processors 1..n are hardware PEs each
// computing a section of the prediction error. Edges from the CPU to the
// PEs carry the coefficients and frame sections (SPI_dynamic: N and M are
// run-time values); the PEs return error sections.
func CoDesignSystem(c CoDesignParams) (*spi.System, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n, m := c.Codec.FrameSize, c.Codec.Order
	log2n := 0
	for 1<<log2n < n {
		log2n++
	}
	g := dataflow.New(fmt.Sprintf("app1codesign-N%d-n%d", n, c.HWPEs))
	s := c.CPUSlowdown
	a := g.AddActor("A_read", int64(n)*s)
	b := g.AddActor("B_fft", int64(5*n*log2n)*s)
	cc := g.AddActor("C_lu", (int64(2*m*m*m/3)+int64(m*m*10))*s)
	// The scatter/gather glue on the CPU side (figure 3's I/O interface).
	scat := g.AddActor("D_scatter", int64(n)/2*s+50)
	gath := g.AddActor("D_gather", int64(n)/2*s+50)
	e := g.AddActor("E_huffman", int64(8*n)*s)

	payload := map[dataflow.EdgeID]func(int) int{}
	// Software pipeline edges (same processor; no SPI channel emitted).
	g.AddEdge("frameAB", a, b, 1, 1, dataflow.EdgeSpec{TokenBytes: n * c.SampleBytes})
	g.AddEdge("frameAS", a, scat, 1, 1, dataflow.EdgeSpec{TokenBytes: n * c.SampleBytes})
	g.AddEdge("specBC", b, cc, 1, 1, dataflow.EdgeSpec{TokenBytes: n * 8})
	g.AddEdge("coeffCS", cc, scat, 1, 1, dataflow.EdgeSpec{TokenBytes: m * c.SampleBytes})
	g.AddEdge("errGE", gath, e, 1, 1, dataflow.EdgeSpec{TokenBytes: n * c.SampleBytes})

	// Hardware PEs with dynamic SPI edges.
	for i := 0; i < c.HWPEs; i++ {
		start := i * n / c.HWPEs
		end := (i + 1) * n / c.HWPEs
		sl := end - start
		hist := m
		if start < hist {
			hist = start
		}
		pe := g.AddActor(fmt.Sprintf("pe%d", i), int64(sl)*int64(m)*2+50)
		coeffBytes := m * c.SampleBytes
		sectBytes := 4 + (sl+hist)*c.SampleBytes
		errBytes := sl * c.SampleBytes
		ce := g.AddEdge(fmt.Sprintf("coeffs%d", i), scat, pe, coeffBytes, coeffBytes,
			dataflow.EdgeSpec{ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 1})
		se := g.AddEdge(fmt.Sprintf("sect%d", i), scat, pe, sectBytes, sectBytes,
			dataflow.EdgeSpec{ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 1})
		ee := g.AddEdge(fmt.Sprintf("errs%d", i), pe, gath, errBytes, errBytes,
			dataflow.EdgeSpec{ProduceDynamic: true, ConsumeDynamic: true, TokenBytes: 1})
		cb, sb, eb := coeffBytes, sectBytes, errBytes
		payload[ce] = func(int) int { return cb }
		payload[se] = func(int) int { return sb }
		payload[ee] = func(int) int { return eb }
	}

	mp := &sched.Mapping{
		NumProcs: c.HWPEs + 1,
		Proc:     make([]sched.Processor, g.NumActors()),
		Order:    make([][]dataflow.ActorID, c.HWPEs+1),
	}
	mp.Order[0] = []dataflow.ActorID{a, b, cc, scat, gath, e}
	for _, act := range mp.Order[0] {
		mp.Proc[act] = 0
	}
	for i := 0; i < c.HWPEs; i++ {
		pe, _ := g.ActorByName(fmt.Sprintf("pe%d", i))
		mp.Proc[pe] = sched.Processor(i + 1)
		mp.Order[i+1] = []dataflow.ActorID{pe}
	}
	return &spi.System{Graph: g, Mapping: mp, PayloadFn: payload}, nil
}
