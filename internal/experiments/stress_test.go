package experiments

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/spi"
	"repro/internal/syncgraph"
	"repro/internal/vts"
)

// TestRandomGraphStress drives the full compile-run chain over a population
// of generated graphs: every consistent, live SDF graph must survive VTS
// conversion, scheduling (both heuristics), synchronization optimization,
// SPI lowering, and platform execution without errors or deadlock.
func TestRandomGraphStress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := dataflow.DefaultRandomSpec()
	for seed := uint64(1); seed <= 40; seed++ {
		g, err := dataflow.Random(spec, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := g.FindPASS(); err != nil {
			t.Fatalf("seed %d: no PASS: %v", seed, err)
		}
		conv, err := vts.Convert(g)
		if err != nil {
			t.Fatalf("seed %d: VTS: %v", seed, err)
		}
		if _, err := vts.ComputeBounds(conv); err != nil {
			t.Fatalf("seed %d: bounds: %v", seed, err)
		}
		for _, nprocs := range []int{1, 2, 3} {
			for _, scheduler := range []string{"hlf", "etf"} {
				var m *sched.Mapping
				if scheduler == "hlf" {
					m, err = sched.ListSchedule(g, nprocs, 25)
				} else {
					m, err = sched.ETFSchedule(g, nprocs, 25)
				}
				if err != nil {
					t.Fatalf("seed %d %s/%d: %v", seed, scheduler, nprocs, err)
				}
				if err := m.Validate(g); err != nil {
					t.Fatalf("seed %d %s/%d: invalid mapping: %v", seed, scheduler, nprocs, err)
				}
				ipc, err := syncgraph.BuildIPCGraph(g, m)
				if err != nil {
					t.Fatalf("seed %d %s/%d: IPC graph: %v", seed, scheduler, nprocs, err)
				}
				sg := syncgraph.SynchronizationGraph(ipc)
				syncgraph.AddAllFeedback(sg, 1)
				rep := syncgraph.Resynchronize(sg, syncgraph.ResyncOptions{MaxRounds: 4})
				if rep.SyncAfter > rep.SyncBefore {
					t.Fatalf("seed %d %s/%d: resync grew: %s", seed, scheduler, nprocs, rep)
				}
				dep, err := spi.Build(&spi.System{Graph: g, Mapping: m})
				if err != nil {
					t.Fatalf("seed %d %s/%d: build: %v", seed, scheduler, nprocs, err)
				}
				st, err := dep.Sim.Run(5)
				if err != nil {
					t.Fatalf("seed %d %s/%d: run: %v", seed, scheduler, nprocs, err)
				}
				if st.Finish <= 0 {
					t.Fatalf("seed %d %s/%d: no time elapsed", seed, scheduler, nprocs)
				}
			}
		}
	}
}

// TestRandomGraphSASStress: every generated feed-forward graph has a valid
// single-appearance schedule whose flattening is a PASS. (APGAN clustering
// handles acyclic graphs; delay-broken cycles need the loose-
// interdependence analysis the implementation documents as out of scope.)
func TestRandomGraphSASStress(t *testing.T) {
	spec := dataflow.DefaultRandomSpec()
	spec.DynamicPercent = 0 // SAS over pure SDF
	spec.FeedbackEdges = 0  // acyclic clustering scope
	for seed := uint64(100); seed < 130; seed++ {
		g, err := dataflow.Random(spec, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sas, err := sched.SingleAppearanceSchedule(g)
		if err != nil {
			t.Fatalf("seed %d: SAS: %v", seed, err)
		}
		if sas.Appearances() != g.NumActors() {
			t.Fatalf("seed %d: %d appearances for %d actors", seed, sas.Appearances(), g.NumActors())
		}
		ok, err := g.ScheduleReturnsToInitialState(sas.Flatten())
		if err != nil || !ok {
			t.Fatalf("seed %d: SAS invalid: ok=%v err=%v", seed, ok, err)
		}
	}
}

// TestExecuteRandomGraphs: the functional executor completes on arbitrary
// generated graphs with pass-through kernels, moving exactly one message
// per interprocessor edge per iteration.
func TestExecuteRandomGraphs(t *testing.T) {
	specCfg := dataflow.DefaultRandomSpec()
	for seed := uint64(200); seed < 220; seed++ {
		g, err := dataflow.Random(specCfg, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m, err := sched.ListSchedule(g, 3, 10)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		kernels := map[dataflow.ActorID]spi.Kernel{}
		for _, a := range g.Actors() {
			a := a
			kernels[a] = func(iter int, in map[dataflow.EdgeID][]byte) (map[dataflow.EdgeID][]byte, error) {
				out := map[dataflow.EdgeID][]byte{}
				for _, eid := range g.Out(a) {
					out[eid] = []byte{byte(iter)}
				}
				return out, nil
			}
		}
		const iters = 4
		st, err := spi.Execute(g, m, kernels, iters)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := int64(len(m.InterprocessorEdges(g)) * iters)
		if st.SPI.Messages != want {
			t.Errorf("seed %d: %d SPI messages, want %d", seed, st.SPI.Messages, want)
		}
	}
}
