package main

import (
	"testing"

	"repro/internal/dsp"
	"repro/internal/lpc"
	"repro/internal/signal"
)

// TestSessionsResidualMatchesSerial: N concurrent actor-D sessions over
// one shared link must each reproduce the serial residual bit-exactly,
// and the stats table must aggregate per-edge counters across sessions —
// one row per edge with summed traffic, not N duplicate rows.
func TestSessionsResidualMatchesSerial(t *testing.T) {
	p := lpc.DefaultParams()
	x := signal.Speech(p.FrameSize, 1)
	model, err := dsp.LPCAnalyze(x, p.Order)
	if err != nil {
		t.Fatal(err)
	}
	serial := model.Residual(x)

	const pes, sessions = 3, 5
	parallel, stats, err := sessionsResidual(model, x, pes, sessions, "loopback")
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("got %d samples, want %d", len(parallel), len(serial))
	}
	for i := range serial {
		if parallel[i] != serial[i] {
			t.Fatalf("sample %d: parallel %g != serial %g", i, parallel[i], serial[i])
		}
	}

	// Aggregation satellite: every cross-node edge appears exactly once,
	// carrying one message per session.
	seen := map[string]bool{}
	for _, e := range stats.Edges {
		if seen[e.Name] {
			t.Errorf("edge %s appears more than once in the aggregated table", e.Name)
		}
		seen[e.Name] = true
		if e.Stats.Messages != sessions {
			t.Errorf("edge %s: %d messages, want %d (one per session)", e.Name, e.Stats.Messages, sessions)
		}
	}
	if len(stats.Edges) != 3*pes {
		t.Errorf("aggregated table has %d edges, want %d (coeffs/sect/errs per PE)", len(stats.Edges), 3*pes)
	}
	if stats.Messages != int64(sessions*3*pes) {
		t.Errorf("total messages %d, want %d", stats.Messages, sessions*3*pes)
	}
}

// TestSessionsResidualTCP runs a smaller configuration over real TCP.
func TestSessionsResidualTCP(t *testing.T) {
	p := lpc.DefaultParams()
	x := signal.Speech(p.FrameSize, 2)
	model, err := dsp.LPCAnalyze(x, p.Order)
	if err != nil {
		t.Fatal(err)
	}
	serial := model.Residual(x)
	parallel, _, err := sessionsResidual(model, x, 2, 3, "tcp")
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if parallel[i] != serial[i] {
			t.Fatalf("sample %d: parallel %g != serial %g", i, parallel[i], serial[i])
		}
	}
}
