package spi

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/transport"
)

// Bit-identity tests for automatic actor fission: a fissioned graph — any
// k, any transport, any placement — must reproduce the unfissioned run's
// sink digests exactly. Transparent replication mode makes that checkable
// with the partGraph rig: every replica runs the original kernel and the
// gather reassembles chunks, so only the plumbing is under test.

// TestSplitPayloadRoundtrip: for random token sizes, worker counts, token
// counts (not necessarily divisible by k), and trailing partial-token
// bytes, the chunks follow dataflow.SplitCounts with the last worker
// absorbing the tail, and concatenation reproduces the payload exactly.
func TestSplitPayloadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 3000; trial++ {
		tb := 1 + rng.Intn(9)
		k := 1 + rng.Intn(8)
		tokens := rng.Intn(50)
		extra := rng.Intn(tb) // partial trailing token
		p := make([]byte, tokens*tb+extra)
		rng.Read(p)
		chunks := SplitPayload(p, tb, k)
		if len(chunks) != k {
			t.Fatalf("SplitPayload gave %d chunks, want %d", len(chunks), k)
		}
		counts := dataflow.SplitCounts(tokens, k)
		for i := 0; i < k-1; i++ {
			if len(chunks[i]) != counts[i]*tb {
				t.Fatalf("tb=%d k=%d tokens=%d: chunk %d has %d bytes, want %d",
					tb, k, tokens, i, len(chunks[i]), counts[i]*tb)
			}
		}
		if len(chunks[k-1]) != counts[k-1]*tb+extra {
			t.Fatalf("tb=%d k=%d tokens=%d extra=%d: last chunk has %d bytes, want %d",
				tb, k, tokens, extra, len(chunks[k-1]), counts[k-1]*tb+extra)
		}
		if !bytes.Equal(ConcatChunks(chunks), p) {
			t.Fatalf("tb=%d k=%d tokens=%d: concat does not reproduce payload", tb, k, tokens)
		}
	}
}

// TestScatterSendSplitGatherConcat drives the collectives end to end over
// the runtime with token counts that do not divide evenly: each worker
// echoes its chunk into the gather, and CollectConcat must reassemble the
// original payload token-exactly for random k and counts.
func TestScatterSendSplitGatherConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(7)
		tb := 1 + rng.Intn(6)
		tokens := rng.Intn(30)
		payload := make([]byte, tokens*tb)
		rng.Read(payload)

		rt := NewRuntime()
		sc, err := NewScatter(rt, 0, k, len(payload)+tb, UBS, 0)
		if err != nil {
			t.Fatal(err)
		}
		ga, err := NewGather(rt, 100, k, len(payload)+tb, UBS, 0)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p, err := sc.WorkerRecv(i).Receive()
				if err != nil {
					t.Errorf("worker %d recv: %v", i, err)
					return
				}
				if err := ga.WorkerSend(i).Send(p); err != nil {
					t.Errorf("worker %d send: %v", i, err)
				}
			}(i)
		}
		if err := sc.SendSplit(payload, tb); err != nil {
			t.Fatal(err)
		}
		got, err := ga.CollectConcat()
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if !bytes.Equal(got, payload) {
			t.Fatalf("k=%d tb=%d tokens=%d: reassembly mismatch (%d bytes vs %d)",
				k, tb, tokens, len(got), len(payload))
		}
	}
}

// fissionPartPlan fissions partGraph's stateless actor C and extends the
// mapping, returning everything a run needs.
func fissionPartPlan(t *testing.T, k int) (*dataflow.FissionPlan, *sched.Mapping) {
	t.Helper()
	g, m := partGraph()
	c, ok := g.ActorByName("C")
	if !ok {
		t.Fatal("partGraph lost actor C")
	}
	plan, err := dataflow.Fission(g, c, dataflow.FissionOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := sched.ExtendFission(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	return plan, fm
}

// TestFissionExecuteTransparent checks bit-identity of the monolithic
// executor over the fissioned graph for several replica counts, including
// k=1 (degenerate) and counts that do not divide the token counts.
func TestFissionExecuteTransparent(t *testing.T) {
	const iterations = 12
	ref, _ := partReference(t, iterations)
	for _, k := range []int{1, 2, 3, 5} {
		k := k
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			plan, fm := fissionPartPlan(t, k)
			sinks := &partTestSinks{d: map[string]uint64{}}
			byID, _, _ := partTestKernels(plan.Source, 7, sinks)
			fk, err := FissionKernels(plan, byID, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Execute(plan.Graph, fm, fk, iterations); err != nil {
				t.Fatal(err)
			}
			got := sinks.snapshot()
			for name, w := range ref {
				if got[name] != w {
					t.Errorf("sink %s digest = %#x, want %#x", name, got[name], w)
				}
			}
		})
	}
}

// TestFissionKernelsRejectsSplitTransparent: transparent replication needs
// full inputs, so a plan that splits an input edge must be refused.
func TestFissionKernelsRejectsSplitTransparent(t *testing.T) {
	g, _ := partGraph()
	c, _ := g.ActorByName("C")
	bc := g.In(c)[0]
	plan, err := dataflow.Fission(g, c, dataflow.FissionOptions{K: 2, Split: []dataflow.EdgeID{bc}})
	if err != nil {
		t.Fatal(err)
	}
	sinks := &partTestSinks{d: map[string]uint64{}}
	byID, _, _ := partTestKernels(g, 7, sinks)
	if _, err := FissionKernels(plan, byID, nil); err == nil {
		t.Error("FissionKernels accepted a split input edge in transparent mode")
	}
}

// TestFissionExecuteDistributed spreads the fissioned graph's processors
// over two in-process nodes — replicas on both — with blocked execution
// and resynchronization on, and checks sink digests against the
// unfissioned monolithic run. This is the composition the tentpole
// promises: fission output is an ordinary graph+mapping that the
// networked executor runs unchanged.
func TestFissionExecuteDistributed(t *testing.T) {
	const iterations = 12
	const k = 3
	ref, _ := partReference(t, iterations)
	plan, fm := fissionPartPlan(t, k)
	if err := plan.Graph.CheckBlock(2); err != nil {
		t.Fatal(err)
	}

	// 6 processors (3 source + 3 replicas) across two nodes.
	nodeOf := []int{0, 1, 0, 1, 0, 1}
	if len(nodeOf) != fm.NumProcs {
		t.Fatalf("nodeOf covers %d procs, mapping has %d", len(nodeOf), fm.NumProcs)
	}
	tr := transport.NewLoopback()
	ln, err := tr.Listen("fiss-n0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ln1, err := tr.Listen("fiss-n1")
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	addrs := []string{ln.Addr(), ln1.Addr()}
	lns := []transport.Listener{ln, ln1}

	sinks := &partTestSinks{d: map[string]uint64{}}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			byID, _, _ := partTestKernels(plan.Source, 7, sinks)
			fk, err := FissionKernels(plan, byID, nil)
			if err != nil {
				errs[node] = err
				return
			}
			_, errs[node] = ExecuteDistributed(plan.Graph, fm, fk, iterations, DistOptions{
				Transport: tr,
				Node:      node,
				Addrs:     addrs,
				NodeOf:    nodeOf,
				Listener:  lns[node],
				Retry: transport.RetryConfig{Attempts: 20, BaseDelay: time.Millisecond,
					MaxDelay: 5 * time.Millisecond},
				Block:  2,
				Resync: true,
			})
		}(node)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}
	got := sinks.snapshot()
	for name, w := range ref {
		if got[name] != w {
			t.Errorf("sink %s digest = %#x, want %#x", name, got[name], w)
		}
	}
}

// TestFissionPartitionExecution stamps the fissioned graph through
// BuildPartitions/ExecutePartition — the migration substrate — with the
// replicas spread over three workers and the stateful actor's hooks
// threaded through, and checks bit-identity with the unfissioned run.
func TestFissionPartitionExecution(t *testing.T) {
	const iterations = 10
	const k = 3
	ref, _ := partReference(t, iterations)
	plan, fm := fissionPartPlan(t, k)

	// procs: 0(A,D) 1(B) 2(C scatter + gather) 3..5 replicas.
	workerOf := []int{0, 1, 2, 0, 1, 2}
	workers := 3
	specs, err := BuildPartitions(plan.Graph, fm, workerOf, workers)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := InitialPreloads(plan.Graph, fm)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewLoopback()
	addrs := make([]string, workers)
	lns := make([]transport.Listener, workers)
	for w := 0; w < workers; w++ {
		ln, err := tr.Listen(fmt.Sprintf("fisspart-w%d", w))
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs[w], lns[w] = ln.Addr(), ln
	}
	sinks := &partTestSinks{d: map[string]uint64{}}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		spec := specs[w]
		spec.BaseIter, spec.Iterations, spec.Addrs = 0, iterations, addrs
		for i := range spec.Edges {
			e := &spec.Edges[i]
			if (e.Out || e.SameProc) && e.Delay > 0 {
				spec.Preload[e.ID] = pre[e.ID]
			}
		}
		byID, _, hooks := partTestKernels(plan.Source, 7, sinks)
		fk, err := FissionKernels(plan, byID, nil)
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string]Kernel{}
		for id, kern := range fk {
			byName[plan.Graph.Actor(id).Name] = kern
		}
		opts := PartOptions{
			Transport: tr, Listener: lns[w],
			Retry: transport.RetryConfig{Attempts: 20, BaseDelay: time.Millisecond,
				MaxDelay: 5 * time.Millisecond},
			State: map[string]StateHooks{},
		}
		if w == 1 { // B's worker
			opts.State["B"] = hooks["B"]
		}
		wg.Add(1)
		go func(w int, spec *PartitionSpec, byName map[string]Kernel, opts PartOptions) {
			defer wg.Done()
			_, errs[w] = ExecutePartition(spec, byName, opts)
		}(w, spec, byName, opts)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	got := sinks.snapshot()
	for name, w := range ref {
		if got[name] != w {
			t.Errorf("sink %s digest = %#x, want %#x", name, got[name], w)
		}
	}
}
