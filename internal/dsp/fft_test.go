package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	for n, want := range map[int]bool{0: false, 1: true, 2: true, 3: false, 4: true, 1024: true, 1000: false, -4: false} {
		if IsPow2(n) != want {
			t.Errorf("IsPow2(%d) = %v", n, !want)
		}
	}
}

func TestNextPow2(t *testing.T) {
	for n, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1024: 1024, 1025: 2048} {
		if got := NextPow2(n); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Error("length 3 should fail")
	}
	if _, err := FFTReal(make([]float64, 6)); err == nil {
		t.Error("length 6 should fail")
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("X[%d] = %v, want 1", k, v)
		}
	}
}

func TestFFTSinusoidBin(t *testing.T) {
	// A pure complex exponential at bin 3 concentrates all energy there.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(i)/float64(n)))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		mag := cmplx.Abs(v)
		if k == 3 {
			if math.Abs(mag-float64(n)) > 1e-9 {
				t.Errorf("bin 3 magnitude %v, want %d", mag, n)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d leaked %v", k, mag)
		}
	}
}

func TestFFTIFFTRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x := make([]complex128, 256)
	orig := make([]complex128, 256)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
		orig[i] = x[i]
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("roundtrip diverged at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	// sum |x|^2 == (1/N) sum |X|^2 for random real signals.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 128
		x := make([]float64, n)
		var timePower float64
		for i := range x {
			x[i] = r.NormFloat64()
			timePower += x[i] * x[i]
		}
		ps, err := PowerSpectrum(x)
		if err != nil {
			return false
		}
		var freqPower float64
		for _, p := range ps {
			freqPower += p
		}
		freqPower /= float64(n)
		return math.Abs(timePower-freqPower) < 1e-8*(1+timePower)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHammingWindow(t *testing.T) {
	w := HammingWindow(64)
	if math.Abs(w[0]-0.08) > 1e-12 || math.Abs(w[63]-0.08) > 1e-12 {
		t.Errorf("endpoints %v %v, want 0.08", w[0], w[63])
	}
	// Symmetric and peaked near the middle.
	for i := 0; i < 32; i++ {
		if math.Abs(w[i]-w[63-i]) > 1e-12 {
			t.Fatalf("asymmetric at %d", i)
		}
	}
	if w[31] < 0.95 {
		t.Errorf("peak %v too low", w[31])
	}
	if one := HammingWindow(1); one[0] != 1 {
		t.Errorf("1-point window = %v", one)
	}
}

func TestApplyWindow(t *testing.T) {
	got := ApplyWindow([]float64{1, 2, 3}, []float64{2, 0.5, 1})
	want := []float64{2, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ApplyWindow = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	ApplyWindow([]float64{1}, []float64{1, 2})
}

func TestAutocorrelationKnown(t *testing.T) {
	x := []float64{1, 2, 3}
	r, err := Autocorrelation(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{14, 8, 3}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-12 {
			t.Fatalf("r = %v, want %v", r, want)
		}
	}
}

func TestAutocorrelationBadLag(t *testing.T) {
	if _, err := Autocorrelation([]float64{1, 2}, 2); err == nil {
		t.Error("maxLag >= len should fail")
	}
	if _, err := Autocorrelation([]float64{1, 2}, -1); err == nil {
		t.Error("negative maxLag should fail")
	}
	if _, err := AutocorrelationFFT([]float64{1, 2}, 5); err == nil {
		t.Error("FFT variant should validate too")
	}
}

func TestAutocorrelationFFTMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		direct, err := Autocorrelation(x, 12)
		if err != nil {
			return false
		}
		viaFFT, err := AutocorrelationFFT(x, 12)
		if err != nil {
			return false
		}
		for k := range direct {
			if math.Abs(direct[k]-viaFFT[k]) > 1e-8*(1+math.Abs(direct[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
