package spi

import (
	"errors"
	"fmt"
	"sync"
)

// Protocol selects the buffer-synchronization protocol of an edge.
type Protocol uint8

const (
	// BBS is bounded-buffer synchronization: the sender blocks when the
	// buffer holds Capacity messages. Use when the VTS/IPC analysis proves
	// a bound (vts.Bounds.Bounded).
	BBS Protocol = iota
	// UBS is unbounded-buffer synchronization: the sender never blocks;
	// the receiver acknowledges each message so the sender can reclaim
	// buffer space consistently.
	UBS
)

func (p Protocol) String() string {
	if p == BBS {
		return "SPI_BBS"
	}
	return "SPI_UBS"
}

// ErrClosed is returned by operations on a closed edge.
var ErrClosed = errors.New("spi: edge closed")

// EdgeConfig declares one interprocessor edge to the runtime — the work of
// the SPI_init actor.
type EdgeConfig struct {
	// ID is the interprocessor edge identifier carried in every header.
	ID EdgeID
	// Mode selects SPI_static or SPI_dynamic framing.
	Mode Mode
	// PayloadBytes is the fixed transfer size for Static mode.
	PayloadBytes int
	// MaxBytes is the b_max packed-token bound for Dynamic mode.
	MaxBytes int
	// Protocol selects BBS or UBS.
	Protocol Protocol
	// Capacity is the BBS buffer size in messages. Ignored for UBS.
	Capacity int
}

func (c *EdgeConfig) validate() error {
	switch c.Mode {
	case Static:
		if c.PayloadBytes <= 0 {
			return fmt.Errorf("spi: edge %d: static edge needs positive PayloadBytes", c.ID)
		}
	case Dynamic:
		if c.MaxBytes <= 0 {
			return fmt.Errorf("spi: edge %d: dynamic edge needs positive MaxBytes (the VTS bound)", c.ID)
		}
	default:
		return fmt.Errorf("spi: edge %d: unknown mode %d", c.ID, c.Mode)
	}
	if c.Protocol == BBS && c.Capacity <= 0 {
		return fmt.Errorf("spi: edge %d: BBS needs positive Capacity", c.ID)
	}
	return nil
}

// EdgeStats counts an edge's traffic.
type EdgeStats struct {
	// Messages is the number of data messages transferred.
	Messages int64
	// PayloadBytes and WireBytes count payload and payload+header bytes.
	PayloadBytes, WireBytes int64
	// Acks counts UBS acknowledgements issued by the receiver.
	Acks int64
	// MaxQueued is the largest observed buffer occupancy in messages.
	MaxQueued int
}

// edge is the shared state between a Sender and Receiver.
type edge struct {
	cfg EdgeConfig

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte // encoded messages
	closed bool
	stats  EdgeStats
	acked  int64 // messages acknowledged by the receiver (UBS, and BBS credits on remote edges)

	// Remote binding (see remote.go): when remoteTx is set the Sender
	// transmits over the link instead of queueing; when remoteRx is set
	// the queue is fed by DeliverData and every consume acks the peer.
	remoteTx MessageLink
	remoteRx MessageLink
}

// Sender is the SPI_send communication actor of one edge.
type Sender struct{ e *edge }

// Receiver is the SPI_receive communication actor of one edge.
type Receiver struct{ e *edge }

// Runtime hosts the software implementation of an SPI system: a set of
// edges connecting dataflow actors that run as goroutines. It corresponds
// to the original software SPI library; the HDL realization is modeled by
// packages hdl and platform.
type Runtime struct {
	mu    sync.Mutex
	edges map[EdgeID]*edge
}

// NewRuntime returns an empty runtime.
func NewRuntime() *Runtime {
	return &Runtime{edges: make(map[EdgeID]*edge)}
}

// Init declares an edge and returns its communication actor pair — the
// SPI_init operation. Each edge ID may be initialized once.
func (r *Runtime) Init(cfg EdgeConfig) (*Sender, *Receiver, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.edges[cfg.ID]; dup {
		return nil, nil, fmt.Errorf("spi: edge %d already initialized", cfg.ID)
	}
	e := &edge{cfg: cfg}
	e.cond = sync.NewCond(&e.mu)
	r.edges[cfg.ID] = e
	return &Sender{e: e}, &Receiver{e: e}, nil
}

// Stats returns a snapshot of an edge's statistics.
func (r *Runtime) Stats(id EdgeID) (EdgeStats, bool) {
	r.mu.Lock()
	e, ok := r.edges[id]
	r.mu.Unlock()
	if !ok {
		return EdgeStats{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats, true
}

// CloseAll closes every edge in the runtime, releasing any goroutine
// blocked in Send or Receive with ErrClosed. Used for failure propagation:
// when one processor of a distributed execution dies, its peers must not
// wait forever.
func (r *Runtime) CloseAll() {
	r.mu.Lock()
	edges := make([]*edge, 0, len(r.edges))
	for _, e := range r.edges {
		edges = append(edges, e)
	}
	r.mu.Unlock()
	for _, e := range edges {
		e.mu.Lock()
		e.closed = true
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}

// TotalStats sums statistics across all edges.
func (r *Runtime) TotalStats() EdgeStats {
	r.mu.Lock()
	edges := make([]*edge, 0, len(r.edges))
	for _, e := range r.edges {
		edges = append(edges, e)
	}
	r.mu.Unlock()
	var t EdgeStats
	for _, e := range edges {
		e.mu.Lock()
		t.Messages += e.stats.Messages
		t.PayloadBytes += e.stats.PayloadBytes
		t.WireBytes += e.stats.WireBytes
		t.Acks += e.stats.Acks
		if e.stats.MaxQueued > t.MaxQueued {
			t.MaxQueued = e.stats.MaxQueued
		}
		e.mu.Unlock()
	}
	return t
}

// Send transmits one payload. For Static edges the payload must have
// exactly the configured size; for Dynamic edges it must not exceed
// MaxBytes. Under BBS, Send blocks while the buffer is full. Send copies
// the payload; the caller may reuse its slice.
func (s *Sender) Send(payload []byte) error {
	e := s.e
	switch e.cfg.Mode {
	case Static:
		if len(payload) != e.cfg.PayloadBytes {
			return fmt.Errorf("spi: edge %d: static payload %d bytes, want %d",
				e.cfg.ID, len(payload), e.cfg.PayloadBytes)
		}
	case Dynamic:
		if len(payload) > e.cfg.MaxBytes {
			return fmt.Errorf("spi: edge %d: dynamic payload %d bytes exceeds bound %d",
				e.cfg.ID, len(payload), e.cfg.MaxBytes)
		}
	}
	msg := EncodeMessage(e.cfg.Mode, e.cfg.ID, payload)

	e.mu.Lock()
	if link := e.remoteTx; link != nil {
		// Remote edge: the BBS window is (sent - acked) against Capacity —
		// the shared write/read-pointer distance, maintained from the
		// peer's credit messages instead of the local queue length.
		for e.cfg.Protocol == BBS && !e.closed && int(e.stats.Messages-e.acked) >= e.cfg.Capacity {
			e.cond.Wait()
		}
		if e.closed {
			e.mu.Unlock()
			return ErrClosed
		}
		e.stats.Messages++
		e.stats.PayloadBytes += int64(len(payload))
		e.stats.WireBytes += int64(len(msg))
		if q := int(e.stats.Messages - e.acked); q > e.stats.MaxQueued {
			e.stats.MaxQueued = q
		}
		e.mu.Unlock()
		if err := link.SendData(uint16(e.cfg.ID), msg); err != nil {
			return fmt.Errorf("spi: edge %d remote send: %w", e.cfg.ID, err)
		}
		return nil
	}
	defer e.mu.Unlock()
	for e.cfg.Protocol == BBS && !e.closed && len(e.queue) >= e.cfg.Capacity {
		e.cond.Wait()
	}
	if e.closed {
		return ErrClosed
	}
	e.queue = append(e.queue, msg)
	if len(e.queue) > e.stats.MaxQueued {
		e.stats.MaxQueued = len(e.queue)
	}
	e.stats.Messages++
	e.stats.PayloadBytes += int64(len(payload))
	e.stats.WireBytes += int64(len(msg))
	e.cond.Broadcast()
	return nil
}

// Close marks the edge closed. Blocked senders and receivers return
// ErrClosed; queued messages are discarded.
func (s *Sender) Close() {
	e := s.e
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Receive blocks for the next message, decodes it, and returns the payload.
// Under UBS the receiver issues an acknowledgement (counted in stats) after
// consuming. The returned slice is owned by the caller.
func (rc *Receiver) Receive() ([]byte, error) {
	e := rc.e
	e.mu.Lock()
	for len(e.queue) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.queue) == 0 && e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	msg := e.queue[0]
	e.queue = e.queue[1:]
	link := e.remoteRx
	if link == nil {
		if e.cfg.Protocol == UBS {
			e.acked++
			e.stats.Acks++
		}
	} else {
		// Remote edge: the credit/ack must cross the wire. Count it for
		// both protocols — on a network edge the BBS credit is a real
		// synchronization message, not a shared-memory pointer update.
		e.stats.Acks++
	}
	e.cond.Broadcast() // return BBS credit / wake senders
	mode, id, fixed, maxb := e.cfg.Mode, e.cfg.ID, e.cfg.PayloadBytes, e.cfg.MaxBytes
	e.mu.Unlock()
	if link != nil {
		// A failed ack only starves the remote sender of a credit, and a
		// link that cannot carry the ack has already died or closed — the
		// transport layer closes the affected edges, so the failure
		// surfaces there. The message itself was delivered; keep it.
		_ = link.SendAck(uint16(id), 1)
	}

	var gotID EdgeID
	var payload []byte
	var err error
	if mode == Static {
		gotID, payload, err = DecodeStatic(msg, fixed)
	} else {
		gotID, payload, err = DecodeDynamic(msg, maxb)
	}
	if err != nil {
		return nil, err
	}
	if gotID != id {
		return nil, fmt.Errorf("spi: edge %d received message for edge %d", id, gotID)
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

// TryReceive is the non-blocking variant: ok is false when no message is
// queued.
func (rc *Receiver) TryReceive() (payload []byte, ok bool, err error) {
	e := rc.e
	e.mu.Lock()
	if len(e.queue) == 0 {
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return nil, false, ErrClosed
		}
		return nil, false, nil
	}
	e.mu.Unlock()
	p, err := rc.Receive()
	if err != nil {
		return nil, false, err
	}
	return p, true, nil
}

// Outstanding returns, for a UBS edge, how many sent messages have not yet
// been acknowledged — the sender-side bookkeeping that sizes the dynamic
// buffer.
func (s *Sender) Outstanding() int64 {
	e := s.e
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats.Messages - e.acked
}
