package hdl

import "fmt"

// Hardware realizations of the SPI communication actors (paper §5.1: the
// FPGA library implements SPI_init, SPI_send and SPI_receive for both
// SPI_static and SPI_dynamic). Module names carry the "spi_" prefix so the
// library's area can be separated from the application datapath with
// Module.TotalOf("spi_"), reproducing the tables' "SPI library relative to
// full system" rows.

// SPIInit returns the one-time edge-table initialization logic shared by a
// PE's communication actors: an edge-ID ROM and configuration registers.
func SPIInit(edges int) *Module {
	if edges <= 0 {
		panic(fmt.Sprintf("hdl: SPIInit with %d edges", edges))
	}
	m := NewModule("spi_init")
	m.Add(LUTLogic("spi_init.edgerom", 2*edges))
	m.Add(Register("spi_init.cfg", 16))
	return m
}

// SPISendStatic returns an SPI_static send actor: a 2-byte header register,
// a word counter for the fixed-length burst, and a small FSM. bufferBytes
// is the outgoing staging FIFO (distributed RAM for small buffers, BRAM
// beyond 256 bytes).
func SPISendStatic(name string, bufferBytes int) *Module {
	m := NewModule("spi_send_static." + name)
	m.Add(Register(name+".hdr", 16)) // edge ID only
	m.Add(Counter(name+".burst", 12))
	m.Add(FSM(name+".ctl", 4))
	m.Add(stagingFIFO(name+".fifo", bufferBytes))
	return m
}

// SPISendDynamic returns an SPI_dynamic send actor: edge ID plus 32-bit
// size header registers, the size computation/compare against b_max, and
// the staging FIFO sized to the VTS bound.
func SPISendDynamic(name string, bMaxBytes int) *Module {
	m := NewModule("spi_send_dynamic." + name)
	m.Add(Register(name+".hdr", 16+32)) // edge ID + message size
	m.Add(Counter(name+".burst", 16))
	m.Add(Comparator(name+".bound", 16)) // size vs b_max check
	m.Add(FSM(name+".ctl", 6))
	m.Add(stagingFIFO(name+".fifo", bMaxBytes))
	return m
}

// SPIRecvStatic returns an SPI_static receive actor: edge-ID match, fixed
// burst counter, FSM, and the IPC buffer sized by the BBS bound.
func SPIRecvStatic(name string, bufferBytes int) *Module {
	m := NewModule("spi_recv_static." + name)
	m.Add(Comparator(name+".idmatch", 16))
	m.Add(Counter(name+".burst", 12))
	m.Add(FSM(name+".ctl", 4))
	m.Add(stagingFIFO(name+".buf", bufferBytes))
	return m
}

// SPIRecvDynamic returns an SPI_dynamic receive actor: edge-ID match, size
// extraction from the header (the paper's argument for header framing: no
// per-byte delimiter scan logic), variable burst counter, the UBS
// acknowledgement generator, and the IPC buffer.
func SPIRecvDynamic(name string, bufferBytes int, ubs bool) *Module {
	m := NewModule("spi_recv_dynamic." + name)
	m.Add(Comparator(name+".idmatch", 16))
	m.Add(Register(name+".size", 32))
	m.Add(Counter(name+".burst", 16))
	m.Add(FSM(name+".ctl", 6))
	if ubs {
		m.Add(LUTLogic(name+".ackgen", 12))
		m.Add(Counter(name+".ackseq", 16))
	}
	m.Add(stagingFIFO(name+".buf", bufferBytes))
	return m
}

// stagingFIFO picks distributed RAM for small buffers and block RAM beyond
// 128 bytes, as a synthesis tool would.
func stagingFIFO(name string, bytes int) *Module {
	if bytes <= 0 {
		bytes = 16
	}
	if bytes <= 128 {
		return FIFODistributed(name, bytes)
	}
	return FIFOBRAM(name, bytes)
}

// SPILibrary bundles the communication actors of one PE: init logic plus a
// send/receive actor per edge description.
type SPIEdgeHW struct {
	// Name labels the edge.
	Name string
	// Dynamic selects the SPI_dynamic actor pair.
	Dynamic bool
	// BufferBytes is the staging/IPC buffer size (the VTS bound for
	// dynamic edges, rate x token size for static).
	BufferBytes int
	// UBS adds the acknowledgement generator on the receive side.
	UBS bool
	// Sends / Receives say which actor(s) this PE instantiates for the
	// edge (a PE usually has one side; the I/O interface has the other).
	Sends, Receives bool
}

// SPILibrary returns the "spi_lib" module of one PE given its edges. As in
// the paper's FPGA library, a PE instantiates one shared send engine and
// one shared receive engine (header formation/parsing FSMs, burst counters,
// the bound check and — under UBS — the acknowledgement generator), which
// multiplex over per-edge staging buffers selected by edge ID. Sharing the
// engines is what keeps the library small relative to the full system
// (tables 1 and 2).
func SPILibrary(pe string, edges []SPIEdgeHW) *Module {
	m := NewModule("spi_lib." + pe)
	m.Add(SPIInit(max(1, len(edges))))
	var anySend, anyRecv, anyDyn, anyUBS bool
	for _, e := range edges {
		anySend = anySend || e.Sends
		anyRecv = anyRecv || e.Receives
		anyDyn = anyDyn || e.Dynamic
		anyUBS = anyUBS || (e.UBS && e.Receives)
	}
	if anySend {
		tx := NewModule(pe + ".tx_engine")
		tx.Add(Register(pe+".tx.hdr", 16))
		if anyDyn {
			tx.Add(Register(pe+".tx.size", 16))
			tx.Add(Comparator(pe+".tx.bound", 16))
		}
		tx.Add(Counter(pe+".tx.burst", 10))
		tx.Add(FSM(pe+".tx.ctl", 6))
		m.Add(tx)
	}
	if anyRecv {
		rx := NewModule(pe + ".rx_engine")
		rx.Add(Comparator(pe+".rx.idmatch", 16))
		if anyDyn {
			rx.Add(Register(pe+".rx.size", 16))
		}
		rx.Add(Counter(pe+".rx.burst", 10))
		rx.Add(FSM(pe+".rx.ctl", 6))
		if anyUBS {
			rx.Add(LUTLogic(pe+".rx.ackgen", 8))
			rx.Add(Counter(pe+".rx.ackseq", 8))
		}
		m.Add(rx)
	}
	for _, e := range edges {
		m.Add(stagingFIFO(pe+".buf."+e.Name, e.BufferBytes))
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
