package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Shared-memory transport: when both endpoints of an edge land on the same
// host, the framed Link mux can run over a pair of lock-free SPSC rings in
// a mmap'd file segment instead of a kernel socket — no syscalls on the
// data path, no copies beyond the ring, same wire format on top. The
// segment holds one ring per direction plus a 64-byte header and a block
// of cache-line-separated control words:
//
//	[ 0,  64)  header: magic, version, ring capacity, segment size
//	[ 64, 576) control: d->l head, d->l tail, l->d head, l->d tail,
//	           state (accepted / closed bits) — one 64B line each, so
//	           producer and consumer indices never share a cache line
//	[576, 576+cap)      dialer->listener ring data
//	[576+cap, 576+2cap) listener->dialer ring data
//
// Each ring is single-producer single-consumer: the producer owns the head
// index, the consumer owns the tail, both free-running uint64s accessed
// with acquire/release atomics; data copies are ordered by the index
// publication, so the rings need no locks. Rendezvous is a filesystem
// protocol (see Shm.Listen/Dial): the dialer creates and initializes the
// segment, renames it into the listener's directory (atomic on one
// filesystem), and polls the accepted bit; the acceptor maps the segment,
// flags it accepted, and unlinks the file, so a crashed pair leaks no
// namespace — both sides keep private mappings of the now-anonymous file.

const (
	shmMagic   = 0x53504952 // "SPIR"
	shmVersion = 1

	// ShmHeaderSize is the encoded size of the segment header.
	ShmHeaderSize = 64

	// Control-word offsets: one 64-byte cache line per word.
	shmOffHeadD2L = 64  // dialer->listener write index (dialer-owned)
	shmOffTailD2L = 128 // dialer->listener read index (listener-owned)
	shmOffHeadL2D = 192 // listener->dialer write index (listener-owned)
	shmOffTailL2D = 256 // listener->dialer read index (dialer-owned)
	shmOffState   = 320 // accepted / closed bits

	shmDataOff = 576 // first ring's data area

	shmMinRing = 4096
	shmMaxRing = 1 << 30
)

// Segment state bits.
const (
	shmStateAccepted       = 1 << 0
	shmStateDialerClosed   = 1 << 1
	shmStateListenerClosed = 1 << 2
)

// ShmHeader is the decoded segment header. The dialer writes it once at
// segment creation; the acceptor validates it before touching the rings.
type ShmHeader struct {
	Version uint16
	RingCap uint32 // per-direction ring capacity, a power of two
	SegSize uint64 // total file size: shmDataOff + 2*RingCap
}

// EncodeShmHeader lays the header out in the segment's first 64 bytes.
func EncodeShmHeader(h ShmHeader) []byte {
	b := make([]byte, ShmHeaderSize)
	binary.LittleEndian.PutUint32(b[0:], shmMagic)
	binary.LittleEndian.PutUint16(b[4:], h.Version)
	binary.LittleEndian.PutUint32(b[8:], h.RingCap)
	binary.LittleEndian.PutUint64(b[16:], h.SegSize)
	return b
}

// DecodeShmHeader validates and decodes a segment header. Every field is
// range-checked before any ring math uses it: a corrupt or truncated
// segment must fail here, not fault in the ring.
func DecodeShmHeader(b []byte) (ShmHeader, error) {
	var h ShmHeader
	if len(b) < ShmHeaderSize {
		return h, fmt.Errorf("shm header: %d bytes, need %d", len(b), ShmHeaderSize)
	}
	if m := binary.LittleEndian.Uint32(b[0:]); m != shmMagic {
		return h, fmt.Errorf("shm header: bad magic %#x", m)
	}
	h.Version = binary.LittleEndian.Uint16(b[4:])
	if h.Version != shmVersion {
		return h, fmt.Errorf("shm header: version %d, want %d", h.Version, shmVersion)
	}
	h.RingCap = binary.LittleEndian.Uint32(b[8:])
	if h.RingCap < shmMinRing || h.RingCap > shmMaxRing || h.RingCap&(h.RingCap-1) != 0 {
		return h, fmt.Errorf("shm header: ring capacity %d not a power of two in [%d, %d]",
			h.RingCap, shmMinRing, shmMaxRing)
	}
	h.SegSize = binary.LittleEndian.Uint64(b[16:])
	if h.SegSize != shmDataOff+2*uint64(h.RingCap) {
		return h, fmt.Errorf("shm header: segment size %d, want %d",
			h.SegSize, shmDataOff+2*uint64(h.RingCap))
	}
	for _, off := range []int{6, 7, 12, 13, 14, 15} {
		if b[off] != 0 {
			return h, fmt.Errorf("shm header: reserved byte %d is %#x", off, b[off])
		}
	}
	for i := 24; i < ShmHeaderSize; i++ {
		if b[i] != 0 {
			return h, fmt.Errorf("shm header: reserved byte %d is %#x", i, b[i])
		}
	}
	return h, nil
}

func shmU32(seg []byte, off int) *uint32 { return (*uint32)(unsafe.Pointer(&seg[off])) }
func shmU64(seg []byte, off int) *uint64 { return (*uint64)(unsafe.Pointer(&seg[off])) }

// shmWait is the consumer/producer backoff: spin briefly (the common case
// is a peer mid-copy), then sleep so an idle ring costs no CPU.
func shmWait(spins *int) {
	if *spins < 256 {
		*spins++
		runtime.Gosched()
		return
	}
	time.Sleep(20 * time.Microsecond)
}

// shmConn is one endpoint of a segment. Each endpoint owns its private
// mapping (two mappings of one file), so Close only unmaps its own view.
type shmConn struct {
	mu            sync.RWMutex // guards seg against munmap under in-flight I/O
	seg           []byte       // nil after Close
	closed        atomic.Bool
	rdl, wdl      atomic.Int64 // deadlines, unix nanos; 0 = none
	local, remote string
	ringCap       uint64
	txHead        *uint64 // our write index (we store)
	txTail        *uint64 // peer's read index on our ring (we load)
	rxHead        *uint64 // peer's write index (we load)
	rxTail        *uint64 // our read index (we store)
	state         *uint32
	tx, rx        []byte
	closedBit     uint32 // our bit in state
	peerBit       uint32 // peer's closed bit
}

func newShmConn(seg []byte, ringCap uint32, dialer bool, local, remote string) *shmConn {
	c := &shmConn{
		seg: seg, local: local, remote: remote,
		ringCap: uint64(ringCap),
		state:   shmU32(seg, shmOffState),
	}
	d2l := seg[shmDataOff : shmDataOff+int(ringCap)]
	l2d := seg[shmDataOff+int(ringCap) : shmDataOff+2*int(ringCap)]
	if dialer {
		c.txHead, c.txTail = shmU64(seg, shmOffHeadD2L), shmU64(seg, shmOffTailD2L)
		c.rxHead, c.rxTail = shmU64(seg, shmOffHeadL2D), shmU64(seg, shmOffTailL2D)
		c.tx, c.rx = d2l, l2d
		c.closedBit, c.peerBit = shmStateDialerClosed, shmStateListenerClosed
	} else {
		c.txHead, c.txTail = shmU64(seg, shmOffHeadL2D), shmU64(seg, shmOffTailL2D)
		c.rxHead, c.rxTail = shmU64(seg, shmOffHeadD2L), shmU64(seg, shmOffTailD2L)
		c.tx, c.rx = l2d, d2l
		c.closedBit, c.peerBit = shmStateListenerClosed, shmStateDialerClosed
	}
	return c
}

func (c *shmConn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.seg == nil || c.closed.Load() {
		return 0, io.ErrClosedPipe
	}
	spins := 0
	for {
		head := atomic.LoadUint64(c.rxHead)
		tail := atomic.LoadUint64(c.rxTail)
		if avail := head - tail; avail > 0 {
			n := uint64(len(p))
			if n > avail {
				n = avail
			}
			i := tail & (c.ringCap - 1)
			w := copy(p[:n], c.rx[i:])
			if uint64(w) < n {
				copy(p[w:n], c.rx[:n-uint64(w)])
			}
			atomic.StoreUint64(c.rxTail, tail+n)
			return int(n), nil
		}
		if atomic.LoadUint32(c.state)&c.peerBit != 0 {
			// The peer closed; its last writes happened before the
			// closed-bit store, so one more head load drains them.
			if atomic.LoadUint64(c.rxHead) == tail {
				return 0, io.EOF
			}
			continue
		}
		if c.closed.Load() {
			return 0, io.ErrClosedPipe
		}
		if d := c.rdl.Load(); d != 0 && time.Now().UnixNano() >= d {
			return 0, os.ErrDeadlineExceeded
		}
		shmWait(&spins)
	}
}

func (c *shmConn) Write(p []byte) (int, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.seg == nil || c.closed.Load() {
		return 0, io.ErrClosedPipe
	}
	written := 0
	spins := 0
	for written < len(p) {
		if atomic.LoadUint32(c.state)&c.peerBit != 0 {
			return written, io.ErrClosedPipe
		}
		head := atomic.LoadUint64(c.txHead)
		tail := atomic.LoadUint64(c.txTail)
		if space := c.ringCap - (head - tail); space > 0 {
			n := uint64(len(p) - written)
			if n > space {
				n = space
			}
			i := head & (c.ringCap - 1)
			w := copy(c.tx[i:], p[written:written+int(n)])
			if uint64(w) < n {
				copy(c.tx, p[written+w:written+int(n)])
			}
			atomic.StoreUint64(c.txHead, head+n)
			written += int(n)
			spins = 0
			continue
		}
		if c.closed.Load() {
			return written, io.ErrClosedPipe
		}
		if d := c.wdl.Load(); d != 0 && time.Now().UnixNano() >= d {
			return written, os.ErrDeadlineExceeded
		}
		shmWait(&spins)
	}
	return written, nil
}

func (c *shmConn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	// Publish our closed bit so the peer's blocked reads drain to EOF and
	// its writes fail, then wait out in-flight I/O (each loop notices
	// closed within one backoff interval) and drop our mapping.
	c.mu.RLock()
	if c.seg != nil {
		for {
			st := atomic.LoadUint32(c.state)
			if atomic.CompareAndSwapUint32(c.state, st, st|c.closedBit) {
				break
			}
		}
	}
	c.mu.RUnlock()
	c.mu.Lock()
	seg := c.seg
	c.seg = nil
	c.mu.Unlock()
	if seg != nil {
		return syscall.Munmap(seg)
	}
	return nil
}

func shmNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

func (c *shmConn) SetReadDeadline(t time.Time) error  { c.rdl.Store(shmNano(t)); return nil }
func (c *shmConn) SetWriteDeadline(t time.Time) error { c.wdl.Store(shmNano(t)); return nil }
func (c *shmConn) LocalAddr() string                  { return c.local }
func (c *shmConn) RemoteAddr() string                 { return c.remote }

// Shm is the same-host shared-memory transport. Addresses are arbitrary
// strings; each maps to a rendezvous directory under Base, so two
// processes sharing Base (and one filesystem) can connect.
type Shm struct {
	// Base is the rendezvous root; empty means os.TempDir().
	Base string
	// RingBytes is the per-direction ring capacity, rounded up to a power
	// of two in [4KiB, 1GiB]; 0 means 1MiB.
	RingBytes int
	// DialTimeout bounds how long a dialer waits for the listener to
	// pick up a renamed-in segment; 0 means 3s.
	DialTimeout time.Duration

	seq atomic.Uint64
}

// NewShm returns a shared-memory transport rooted at base ("" =
// os.TempDir()).
func NewShm(base string) *Shm { return &Shm{Base: base} }

func (s *Shm) Name() string { return "shm" }

func (s *Shm) base() string {
	if s.Base != "" {
		return s.Base
	}
	return os.TempDir()
}

func (s *Shm) ringCap() uint32 {
	n := s.RingBytes
	if n <= 0 {
		n = 1 << 20
	}
	c := uint32(shmMinRing)
	for int(c) < n && c < shmMaxRing {
		c <<= 1
	}
	return c
}

// shmSanitize maps an address to a filesystem-safe rendezvous name.
func shmSanitize(addr string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, addr)
}

func (s *Shm) dir(addr string) string {
	return filepath.Join(s.base(), "spi-shm-"+shmSanitize(addr))
}

// Listen binds addr by creating its rendezvous directory. Re-binding a
// live address is an error, matching TCP; Close removes the directory.
// The base directory is created on demand so a fresh -shm-dir just works.
func (s *Shm) Listen(addr string) (Listener, error) {
	dir := s.dir(addr)
	if err := os.MkdirAll(s.base(), 0o700); err != nil {
		return nil, &Error{Op: "listen", Addr: addr, Err: err}
	}
	if err := os.Mkdir(dir, 0o700); err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil, &Error{Op: "listen", Addr: addr, Err: errors.New("address in use")}
		}
		return nil, &Error{Op: "listen", Addr: addr, Err: err}
	}
	return &shmListener{dir: dir, addr: addr, done: make(chan struct{})}, nil
}

// Dial creates a segment, publishes it into the listener's rendezvous
// directory, and waits for the accepted bit. No directory means no
// listener — a transient error, like ECONNREFUSED, so DialRetry backs off
// through startup races.
func (s *Shm) Dial(addr string) (Conn, error) {
	dir := s.dir(addr)
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil, &Error{Op: "dial", Addr: addr, Transient: true, Err: errLoopbackRefused}
	}
	ringCap := s.ringCap()
	segSize := shmDataOff + 2*int(ringCap)
	f, err := os.CreateTemp(s.base(), "spi-shm-seg-*")
	if err != nil {
		return nil, &Error{Op: "dial", Addr: addr, Err: err}
	}
	tmp := f.Name()
	fail := func(e error, transient bool) (Conn, error) {
		os.Remove(tmp)
		return nil, &Error{Op: "dial", Addr: addr, Transient: transient, Err: e}
	}
	if err := f.Truncate(int64(segSize)); err != nil {
		f.Close()
		return fail(err, false)
	}
	seg, err := syscall.Mmap(int(f.Fd()), 0, segSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	f.Close()
	if err != nil {
		return fail(err, false)
	}
	copy(seg, EncodeShmHeader(ShmHeader{
		Version: shmVersion, RingCap: ringCap, SegSize: uint64(segSize),
	}))
	dst := filepath.Join(dir, fmt.Sprintf("conn-%d-%d", os.Getpid(), s.seq.Add(1)))
	if err := os.Rename(tmp, dst); err != nil {
		syscall.Munmap(seg)
		// The listener closed between the Stat and the rename.
		return fail(errLoopbackRefused, true)
	}
	timeout := s.DialTimeout
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	deadline := time.Now().Add(timeout)
	state := shmU32(seg, shmOffState)
	for atomic.LoadUint32(state)&shmStateAccepted == 0 {
		if _, err := os.Stat(dir); err != nil {
			syscall.Munmap(seg)
			os.Remove(dst)
			return nil, &Error{Op: "dial", Addr: addr, Transient: true, Err: errLoopbackRefused}
		}
		if time.Now().After(deadline) {
			syscall.Munmap(seg)
			os.Remove(dst)
			return nil, &Error{Op: "dial", Addr: addr, Transient: true,
				Err: errors.New("shm accept timed out")}
		}
		time.Sleep(time.Millisecond)
	}
	return newShmConn(seg, ringCap, true, "shm:dialer", "shm:"+addr), nil
}

type shmListener struct {
	dir  string
	addr string
	done chan struct{}
	once sync.Once
}

func (ln *shmListener) Addr() string { return ln.addr }

func (ln *shmListener) Close() error {
	ln.once.Do(func() {
		close(ln.done)
		os.RemoveAll(ln.dir)
	})
	return nil
}

// Accept polls the rendezvous directory for renamed-in segments, maps the
// oldest, validates its header, flags it accepted, and unlinks it — from
// then on the file is anonymous, kept alive only by the two mappings.
func (ln *shmListener) Accept() (Conn, error) {
	closedErr := func() error {
		return &Error{Op: "accept", Addr: ln.addr, Err: errors.New("listener closed")}
	}
	for {
		select {
		case <-ln.done:
			return nil, closedErr()
		default:
		}
		ents, err := os.ReadDir(ln.dir)
		if err != nil {
			return nil, closedErr()
		}
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "conn-") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, name := range names {
			path := filepath.Join(ln.dir, name)
			c, err := ln.attach(path)
			if err != nil {
				os.Remove(path) // corrupt or truncated segment: reject it
				continue
			}
			return c, nil
		}
		select {
		case <-ln.done:
			return nil, closedErr()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func (ln *shmListener) attach(path string) (Conn, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() < ShmHeaderSize {
		return nil, fmt.Errorf("segment is %d bytes", fi.Size())
	}
	seg, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	hdr, err := DecodeShmHeader(seg[:ShmHeaderSize])
	if err != nil || hdr.SegSize != uint64(fi.Size()) {
		syscall.Munmap(seg)
		if err == nil {
			err = fmt.Errorf("segment is %d bytes, header says %d", fi.Size(), hdr.SegSize)
		}
		return nil, err
	}
	os.Remove(path)
	state := shmU32(seg, shmOffState)
	for {
		st := atomic.LoadUint32(state)
		if atomic.CompareAndSwapUint32(state, st, st|shmStateAccepted) {
			break
		}
	}
	return newShmConn(seg, hdr.RingCap, false, "shm:"+ln.addr, "shm:dialer"), nil
}

// SameHost composes the shared-memory and a networked transport into the
// auto-selecting transport the CLIs expose as -transport shm: Listen binds
// the network address and a shm rendezvous derived from the resolved
// port, accepting from both; Dial takes the shm path when the target host
// is this machine and falls back to the network otherwise (or when the
// peer is not listening on shm — e.g. it runs plain TCP).
type SameHost struct {
	// Shm is the same-host path; nil means NewShm("").
	Shm *Shm
	// Fallback is the cross-host path; nil means &TCP{}.
	Fallback Transport
}

// NewSameHost returns the default shm-over-tcp composite.
func NewSameHost() *SameHost { return &SameHost{} }

func (s *SameHost) Name() string { return "shm" }

func (s *SameHost) shm() *Shm {
	if s.Shm != nil {
		return s.Shm
	}
	return NewShm("")
}

func (s *SameHost) fallback() Transport {
	if s.Fallback != nil {
		return s.Fallback
	}
	return &TCP{}
}

// sameHostName derives the shm rendezvous name both sides can compute:
// the listener from its resolved address, the dialer from the address it
// was given. Only the port is used — the two may render the host
// differently (":0" resolves to "[::]:p", peers dial "127.0.0.1:p").
func sameHostName(addr string) string {
	if _, port, err := net.SplitHostPort(addr); err == nil && port != "" {
		return "port-" + port
	}
	return shmSanitize(addr)
}

// shmHostIsLocal reports whether host names this machine.
func shmHostIsLocal(host string) bool {
	if host == "" || host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return false
	}
	if ip.IsLoopback() || ip.IsUnspecified() {
		return true
	}
	addrs, err := net.InterfaceAddrs()
	if err != nil {
		return false
	}
	for _, a := range addrs {
		if ipn, ok := a.(*net.IPNet); ok && ipn.IP.Equal(ip) {
			return true
		}
	}
	return false
}

func (s *SameHost) Listen(addr string) (Listener, error) {
	nln, err := s.fallback().Listen(addr)
	if err != nil {
		return nil, err
	}
	sln, err := s.shm().Listen(sameHostName(nln.Addr()))
	if err != nil {
		nln.Close()
		return nil, err
	}
	ln := &sameHostListener{
		net: nln, shm: sln,
		ch:   make(chan sameHostAccept),
		done: make(chan struct{}),
	}
	go ln.pump(nln)
	go ln.pump(sln)
	return ln, nil
}

func (s *SameHost) Dial(addr string) (Conn, error) {
	if host, _, err := net.SplitHostPort(addr); err == nil && shmHostIsLocal(host) {
		if c, err := s.shm().Dial(sameHostName(addr)); err == nil {
			return c, nil
		}
	}
	return s.fallback().Dial(addr)
}

type sameHostAccept struct {
	c   Conn
	err error
}

type sameHostListener struct {
	net, shm Listener
	ch       chan sameHostAccept
	done     chan struct{}
	once     sync.Once
}

func (ln *sameHostListener) pump(src Listener) {
	for {
		c, err := src.Accept()
		select {
		case ln.ch <- sameHostAccept{c, err}:
			if err != nil {
				return
			}
		case <-ln.done:
			if c != nil {
				c.Close()
			}
			return
		}
	}
}

func (ln *sameHostListener) Accept() (Conn, error) {
	for {
		select {
		case r := <-ln.ch:
			if r.err != nil {
				// One leg failing is terminal only once Close ran;
				// before that, surface it (TCP listener errors matter).
				return nil, r.err
			}
			return r.c, nil
		case <-ln.done:
			return nil, &Error{Op: "accept", Addr: ln.Addr(), Err: errors.New("listener closed")}
		}
	}
}

func (ln *sameHostListener) Close() error {
	ln.once.Do(func() {
		close(ln.done)
		ln.net.Close()
		ln.shm.Close()
	})
	return nil
}

// Addr reports the network address — the one peers dial; the shm
// rendezvous is derived from it on both sides.
func (ln *sameHostListener) Addr() string { return ln.net.Addr() }
