package lpc

import (
	"encoding/binary"
	"fmt"
	"math"
	"repro/internal/huffman"
)

// Binary serialization of compressed frames — the actual bitstream a
// deployed codec would emit. Prediction residuals concentrate on a
// contiguous band of quantizer levels around zero, so the Huffman
// code-length table is stored as the band's first symbol plus 5-bit-packed
// lengths over the band.

const frameMagic = 0x5350 // "SP"

// lengthBits is the field width of one stored code length. Canonical codes
// over a few hundred frame samples stay far below 31 bits deep.
const lengthBits = 5

// MarshalBinary serializes the frame.
func (f *Frame) MarshalBinary() ([]byte, error) {
	if len(f.CoeffQ) != f.M {
		return nil, fmt.Errorf("lpc: frame has %d coefficients, order %d", len(f.CoeffQ), f.M)
	}
	first, last := -1, -1
	for sym, l := range f.Lengths {
		if l > 0 {
			if l >= 1<<lengthBits {
				return nil, fmt.Errorf("lpc: code length %d does not fit %d bits", l, lengthBits)
			}
			if first == -1 {
				first = sym
			}
			last = sym
		}
	}
	if first == -1 {
		return nil, fmt.Errorf("lpc: frame has an empty code table")
	}
	band := last - first + 1
	out := make([]byte, 0, 64+2*f.M+(band*lengthBits+7)/8+len(f.Stream))
	var b [8]byte
	put16 := func(v uint16) {
		binary.LittleEndian.PutUint16(b[:2], v)
		out = append(out, b[:2]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:4], v)
		out = append(out, b[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		out = append(out, b[:]...)
	}
	put16(frameMagic)
	put16(uint16(f.N))
	put16(uint16(f.M))
	put64(math.Float64bits(f.CoeffScale))
	put64(math.Float64bits(f.ErrScale))
	for _, c := range f.CoeffQ {
		put16(c)
	}
	put16(uint16(first))
	put16(uint16(band))
	var lw huffman.BitWriter
	for sym := first; sym <= last; sym++ {
		lw.WriteBits(uint32(f.Lengths[sym]), lengthBits)
	}
	put16(uint16(len(lw.Bytes())))
	out = append(out, lw.Bytes()...)
	put32(uint32(f.StreamSymbols))
	put32(uint32(len(f.Stream)))
	out = append(out, f.Stream...)
	return out, nil
}

// UnmarshalFrame deserializes a frame produced by MarshalBinary. The
// quantizer alphabet size (1 << ErrorBits) must be supplied to rebuild the
// dense length table.
func UnmarshalFrame(data []byte, alphabet int) (*Frame, error) {
	pos := 0
	need := func(n int) error {
		if len(data)-pos < n {
			return fmt.Errorf("lpc: frame truncated at offset %d", pos)
		}
		return nil
	}
	get16 := func() (uint16, error) {
		if err := need(2); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint16(data[pos:])
		pos += 2
		return v, nil
	}
	get32 := func() (uint32, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint32(data[pos:])
		pos += 4
		return v, nil
	}
	get64 := func() (uint64, error) {
		if err := need(8); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint64(data[pos:])
		pos += 8
		return v, nil
	}
	magic, err := get16()
	if err != nil {
		return nil, err
	}
	if magic != frameMagic {
		return nil, fmt.Errorf("lpc: bad frame magic %#x", magic)
	}
	f := &Frame{}
	n16, err := get16()
	if err != nil {
		return nil, err
	}
	m16, err := get16()
	if err != nil {
		return nil, err
	}
	f.N, f.M = int(n16), int(m16)
	cs, err := get64()
	if err != nil {
		return nil, err
	}
	es, err := get64()
	if err != nil {
		return nil, err
	}
	f.CoeffScale = math.Float64frombits(cs)
	f.ErrScale = math.Float64frombits(es)
	if f.CoeffScale <= 0 || f.ErrScale <= 0 ||
		math.IsNaN(f.CoeffScale) || math.IsNaN(f.ErrScale) {
		return nil, fmt.Errorf("lpc: corrupt quantizer scales")
	}
	f.CoeffQ = make([]uint16, f.M)
	for i := range f.CoeffQ {
		if f.CoeffQ[i], err = get16(); err != nil {
			return nil, err
		}
	}
	first, err := get16()
	if err != nil {
		return nil, err
	}
	band, err := get16()
	if err != nil {
		return nil, err
	}
	if int(first)+int(band) > alphabet {
		return nil, fmt.Errorf("lpc: code band [%d,%d) outside alphabet %d", first, int(first)+int(band), alphabet)
	}
	tblBytes, err := get16()
	if err != nil {
		return nil, err
	}
	if err := need(int(tblBytes)); err != nil {
		return nil, err
	}
	if int(tblBytes)*8 < int(band)*lengthBits {
		return nil, fmt.Errorf("lpc: code table of %d bytes too small for band %d", tblBytes, band)
	}
	lr := huffman.NewBitReader(data[pos : pos+int(tblBytes)])
	pos += int(tblBytes)
	f.Lengths = make([]uint8, alphabet)
	for i := 0; i < int(band); i++ {
		v, err := lr.ReadBits(lengthBits)
		if err != nil {
			return nil, err
		}
		f.Lengths[int(first)+i] = uint8(v)
	}
	ns, err := get32()
	if err != nil {
		return nil, err
	}
	f.StreamSymbols = int(ns)
	sb, err := get32()
	if err != nil {
		return nil, err
	}
	if err := need(int(sb)); err != nil {
		return nil, err
	}
	// Every coded symbol costs at least one bit: a symbol count beyond the
	// stream's bit length is corruption (and would otherwise drive huge
	// decoder allocations).
	if uint64(ns) > uint64(sb)*8 {
		return nil, fmt.Errorf("lpc: %d symbols cannot fit %d stream bytes", ns, sb)
	}
	f.Stream = append([]byte(nil), data[pos:pos+int(sb)]...)
	pos += int(sb)
	if pos != len(data) {
		return nil, fmt.Errorf("lpc: %d trailing bytes after frame", len(data)-pos)
	}
	return f, nil
}
