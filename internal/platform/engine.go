package platform

import (
	"fmt"
)

// Sim is a configured platform ready to run. Build one with NewSim, add
// channels and programs, then call Run.
type Sim struct {
	cfg      Config
	channels []ChannelSpec
	programs []Program

	trace     bool
	lastTrace *Trace
}

// NewSim returns a platform with the given configuration and no channels
// or programs.
func NewSim(cfg Config) (*Sim, error) {
	if cfg.NumPEs <= 0 {
		return nil, fmt.Errorf("platform: NumPEs = %d", cfg.NumPEs)
	}
	if cfg.CyclesPerByteDen <= 0 || cfg.CyclesPerByteNum < 0 {
		return nil, fmt.Errorf("platform: bad serialization cost %d/%d", cfg.CyclesPerByteNum, cfg.CyclesPerByteDen)
	}
	return &Sim{cfg: cfg, programs: make([]Program, cfg.NumPEs)}, nil
}

// Config returns the platform configuration.
func (s *Sim) Config() Config { return s.cfg }

// Program returns the currently installed program of a PE (nil if none).
func (s *Sim) Program(pe int) Program {
	if pe < 0 || pe >= len(s.programs) {
		return nil
	}
	return s.programs[pe]
}

// Channel returns the spec of a channel. It panics on an unknown ID (a
// caller bug: IDs only come from AddChannel).
func (s *Sim) Channel(id ChannelID) ChannelSpec { return s.channels[id] }

// AddChannel registers a channel and returns its ID.
func (s *Sim) AddChannel(spec ChannelSpec) (ChannelID, error) {
	if spec.From < 0 || spec.From >= s.cfg.NumPEs || spec.To < 0 || spec.To >= s.cfg.NumPEs {
		return 0, fmt.Errorf("platform: channel %q endpoints out of range", spec.Name)
	}
	if spec.From == spec.To {
		return 0, fmt.Errorf("platform: channel %q is a self-loop", spec.Name)
	}
	if spec.Capacity < 0 || spec.HeaderBytes < 0 || spec.AckBytes < 0 || spec.Preload < 0 || spec.PreloadBytes < 0 {
		return 0, fmt.Errorf("platform: channel %q has negative parameter", spec.Name)
	}
	if spec.Capacity > 0 && spec.Preload > spec.Capacity {
		return 0, fmt.Errorf("platform: channel %q preload %d exceeds capacity %d", spec.Name, spec.Preload, spec.Capacity)
	}
	id := ChannelID(len(s.channels))
	s.channels = append(s.channels, spec)
	return id, nil
}

// SetProgram installs the per-iteration program of a PE. A nil program
// means the PE idles.
func (s *Sim) SetProgram(pe int, prog Program) error {
	if pe < 0 || pe >= s.cfg.NumPEs {
		return fmt.Errorf("platform: PE %d out of range", pe)
	}
	for i, op := range prog {
		switch op.Kind {
		case OpCompute:
			if op.Cycles < 0 {
				return fmt.Errorf("platform: PE %d op %d: negative cycles", pe, i)
			}
		case OpSend:
			if int(op.Ch) >= len(s.channels) {
				return fmt.Errorf("platform: PE %d op %d: unknown channel", pe, i)
			}
			if s.channels[op.Ch].From != pe {
				return fmt.Errorf("platform: PE %d op %d: sends on channel %q owned by PE %d",
					pe, i, s.channels[op.Ch].Name, s.channels[op.Ch].From)
			}
		case OpRecv:
			if int(op.Ch) >= len(s.channels) {
				return fmt.Errorf("platform: PE %d op %d: unknown channel", pe, i)
			}
			if s.channels[op.Ch].To != pe {
				return fmt.Errorf("platform: PE %d op %d: receives on channel %q destined to PE %d",
					pe, i, s.channels[op.Ch].Name, s.channels[op.Ch].To)
			}
		default:
			return fmt.Errorf("platform: PE %d op %d: unknown op kind %d", pe, i, op.Kind)
		}
	}
	s.programs[pe] = prog
	return nil
}

type message struct {
	arriveAt Time
	bytes    int // payload only
	kind     MsgKind
}

type blockReason uint8

const (
	notBlocked blockReason = iota
	blockedRecv
	blockedCredit
	peDone
)

type peState struct {
	pc      int
	iter    int
	time    Time
	blocked blockReason
	blockCh ChannelID
}

type chanState struct {
	queue     []message // sent, not yet consumed (FIFO)
	maxQueued int
	// sent counts messages ever sent; consumeTimes[i] is the time message
	// i was consumed (credit i returned). For a capacity-C channel the
	// sender of message k must wait for consumeTimes[k-C].
	sent          int
	consumeTimes  []Time
	senderBlocked bool
}

// serCycles returns the serialization cost of n bytes.
func (s *Sim) serCycles(n int) int64 {
	if n <= 0 {
		return 0
	}
	return (int64(n)*s.cfg.CyclesPerByteNum + s.cfg.CyclesPerByteDen - 1) / s.cfg.CyclesPerByteDen
}

// Run executes the platform for the given number of iterations of every
// PE's program and returns the run statistics. Run detects deadlock (all
// unfinished PEs blocked) and reports it as an error.
//
// Execution uses run-to-block scheduling. Because every channel has a
// single producer and single consumer and programs do not branch on time,
// the system is a Kahn process network: the result is independent of the
// interleaving, so run-to-block is both simple and exact.
func (s *Sim) Run(iterations int) (*Stats, error) {
	if iterations <= 0 {
		return nil, fmt.Errorf("platform: iterations = %d", iterations)
	}
	n := s.cfg.NumPEs
	if s.trace {
		s.lastTrace = &Trace{}
	}
	pes := make([]peState, n)
	chs := make([]chanState, len(s.channels))
	stats := &Stats{
		PEBusy:          make([]Time, n),
		MaxQueued:       make([]int, len(s.channels)),
		IterationFinish: make([]Time, iterations),
	}
	for pe := range pes {
		if len(s.programs[pe]) == 0 {
			pes[pe].blocked = peDone
		}
	}
	for i := range s.channels {
		for p := 0; p < s.channels[i].Preload; p++ {
			chs[i].queue = append(chs[i].queue, message{
				arriveAt: 0, bytes: s.channels[i].PreloadBytes, kind: DataMsg,
			})
			chs[i].sent++
		}
		chs[i].maxQueued = len(chs[i].queue)
	}

	runnable := make([]int, 0, n)
	inQueue := make([]bool, n)
	enqueue := func(pe int) {
		if !inQueue[pe] && pes[pe].blocked != peDone {
			inQueue[pe] = true
			runnable = append(runnable, pe)
		}
	}
	for pe := 0; pe < n; pe++ {
		enqueue(pe)
	}

	// advance one PE until it blocks or finishes.
	step := func(pe int) error {
		st := &pes[pe]
		prog := s.programs[pe]
		for {
			if st.pc == len(prog) {
				// iteration boundary
				if st.time > stats.IterationFinish[st.iter] {
					stats.IterationFinish[st.iter] = st.time
				}
				st.iter++
				st.pc = 0
				if st.iter == iterations {
					st.blocked = peDone
					return nil
				}
			}
			op := &prog[st.pc]
			switch op.Kind {
			case OpCompute:
				c := op.Cycles
				if op.CyclesFn != nil {
					c = op.CyclesFn(st.iter)
				}
				if c < 0 {
					return fmt.Errorf("platform: PE %d computed negative cycles %d", pe, c)
				}
				start := st.time
				st.time += Time(c)
				stats.PEBusy[pe] += Time(c)
				if s.trace {
					s.lastTrace.Segments = append(s.lastTrace.Segments, Segment{
						PE: pe, Kind: SegCompute, Start: start, End: st.time, Iter: st.iter, Ch: -1,
					})
				}
				st.pc++
			case OpSend:
				spec := &s.channels[op.Ch]
				cs := &chs[op.Ch]
				if spec.Capacity > 0 && cs.sent >= spec.Capacity {
					// BBS back-pressure: message k needs credit k-C.
					need := cs.sent - spec.Capacity
					if need >= len(cs.consumeTimes) {
						st.blocked = blockedCredit
						st.blockCh = op.Ch
						cs.senderBlocked = true
						return nil
					}
					if t := cs.consumeTimes[need]; t > st.time {
						st.time = t
					}
				}
				bytes := op.Bytes
				if op.BytesFn != nil {
					bytes = op.BytesFn(st.iter)
				}
				if bytes < 0 {
					return fmt.Errorf("platform: PE %d sent negative bytes %d", pe, bytes)
				}
				cost := s.cfg.SendOverheadCycles + s.serCycles(bytes+spec.HeaderBytes)
				sendStart := st.time
				st.time += Time(cost)
				stats.PEBusy[pe] += Time(cost)
				if s.trace {
					s.lastTrace.Segments = append(s.lastTrace.Segments, Segment{
						PE: pe, Kind: SegSend, Start: sendStart, End: st.time, Iter: st.iter, Ch: op.Ch,
					})
				}
				arrive := st.time + Time(s.cfg.LinkLatencyCycles)
				kind := op.MsgKind
				cs.queue = append(cs.queue, message{arriveAt: arrive, bytes: bytes, kind: kind})
				cs.sent++
				if len(cs.queue) > cs.maxQueued {
					cs.maxQueued = len(cs.queue)
				}
				stats.Messages[kind]++
				stats.Bytes[kind] += int64(bytes + spec.HeaderBytes)
				st.pc++
				// Wake a receiver blocked on this channel.
				rcv := spec.To
				if pes[rcv].blocked == blockedRecv && pes[rcv].blockCh == op.Ch {
					pes[rcv].blocked = notBlocked
					if arrive > pes[rcv].time {
						pes[rcv].time = arrive
					}
					enqueue(rcv)
				}
			case OpRecv:
				spec := &s.channels[op.Ch]
				cs := &chs[op.Ch]
				if len(cs.queue) == 0 {
					st.blocked = blockedRecv
					st.blockCh = op.Ch
					return nil
				}
				msg := cs.queue[0]
				cs.queue = cs.queue[1:]
				if msg.arriveAt > st.time {
					st.time = msg.arriveAt
				}
				recvStart := st.time
				st.time += Time(s.cfg.RecvOverheadCycles)
				stats.PEBusy[pe] += Time(s.cfg.RecvOverheadCycles)
				// UBS acknowledgement: receiver spends send time; traffic
				// is accounted but the sender does not block on it.
				if spec.AckBytes > 0 {
					ackCost := s.cfg.SendOverheadCycles + s.serCycles(spec.AckBytes+spec.HeaderBytes)
					st.time += Time(ackCost)
					stats.PEBusy[pe] += Time(ackCost)
					stats.Messages[AckMsg]++
					stats.Bytes[AckMsg] += int64(spec.AckBytes + spec.HeaderBytes)
				}
				if s.trace {
					s.lastTrace.Segments = append(s.lastTrace.Segments, Segment{
						PE: pe, Kind: SegRecv, Start: recvStart, End: st.time, Iter: st.iter, Ch: op.Ch,
					})
				}
				st.pc++
				// Record the credit return and wake a blocked sender; the
				// sender re-checks credit availability with exact
				// timestamps when it resumes.
				cs.consumeTimes = append(cs.consumeTimes, st.time)
				if cs.senderBlocked {
					cs.senderBlocked = false
					snd := spec.From
					if pes[snd].blocked == blockedCredit && pes[snd].blockCh == op.Ch {
						pes[snd].blocked = notBlocked
						enqueue(snd)
					}
				}
			}
		}
	}

	for len(runnable) > 0 {
		pe := runnable[0]
		runnable = runnable[1:]
		inQueue[pe] = false
		if pes[pe].blocked == notBlocked {
			if err := step(pe); err != nil {
				return nil, err
			}
		}
	}
	// All queues drained: every PE must be done, else deadlock.
	for pe := range pes {
		if pes[pe].blocked != peDone {
			return nil, fmt.Errorf("platform: deadlock — PE %d blocked (%d) on channel %d at iteration %d",
				pe, pes[pe].blocked, pes[pe].blockCh, pes[pe].iter)
		}
	}
	for pe := range pes {
		if pes[pe].time > stats.Finish {
			stats.Finish = pes[pe].time
		}
	}
	// Iteration finishes are monotone: a PE's later block can complete an
	// earlier iteration number after another PE's later one; normalize.
	for k := 1; k < iterations; k++ {
		if stats.IterationFinish[k] < stats.IterationFinish[k-1] {
			stats.IterationFinish[k] = stats.IterationFinish[k-1]
		}
	}
	for i := range chs {
		stats.MaxQueued[i] = chs[i].maxQueued
	}
	return stats, nil
}
