package spi

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestInitValidation(t *testing.T) {
	rt := NewRuntime()
	cases := []EdgeConfig{
		{ID: 1, Mode: Static, PayloadBytes: 0, Protocol: UBS},
		{ID: 2, Mode: Dynamic, MaxBytes: 0, Protocol: UBS},
		{ID: 3, Mode: Static, PayloadBytes: 4, Protocol: BBS, Capacity: 0},
		{ID: 4, Mode: Mode(9), PayloadBytes: 4, Protocol: UBS},
	}
	for _, c := range cases {
		if _, _, err := rt.Init(c); err == nil {
			t.Errorf("config %+v should fail", c)
		}
	}
}

func TestInitDuplicateEdge(t *testing.T) {
	rt := NewRuntime()
	cfg := EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 4, Protocol: UBS}
	if _, _, err := rt.Init(cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Init(cfg); err == nil {
		t.Error("duplicate edge ID should fail")
	}
}

func TestStaticSendReceive(t *testing.T) {
	rt := NewRuntime()
	tx, rx, err := rt.Init(EdgeConfig{ID: 5, Mode: Static, PayloadBytes: 4, Protocol: UBS})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 4}
	if err := tx.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := rx.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestStaticSizeEnforced(t *testing.T) {
	rt := NewRuntime()
	tx, _, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 4, Protocol: UBS})
	if err := tx.Send([]byte{1, 2}); err == nil {
		t.Error("wrong static size should fail")
	}
}

func TestDynamicBoundEnforced(t *testing.T) {
	rt := NewRuntime()
	tx, rx, _ := rt.Init(EdgeConfig{ID: 1, Mode: Dynamic, MaxBytes: 8, Protocol: UBS})
	if err := tx.Send(make([]byte, 9)); err == nil {
		t.Error("payload beyond b_max should fail")
	}
	// Variable sizes under the bound all work.
	for _, n := range []int{0, 1, 8} {
		if err := tx.Send(make([]byte, n)); err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		got, err := rx.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Errorf("received %d bytes, want %d", len(got), n)
		}
	}
}

func TestBBSBackpressure(t *testing.T) {
	rt := NewRuntime()
	tx, rx, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 1, Protocol: BBS, Capacity: 2})
	// Fill the buffer.
	tx.Send([]byte{1})
	tx.Send([]byte{2})
	// Third send must block until a receive frees a slot.
	done := make(chan struct{})
	go func() {
		tx.Send([]byte{3})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("send did not block on full BBS buffer")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := rx.Receive(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("send did not resume after receive")
	}
}

func TestUBSNeverBlocksAndAcks(t *testing.T) {
	rt := NewRuntime()
	tx, rx, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 1, Protocol: UBS})
	for i := 0; i < 100; i++ {
		if err := tx.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tx.Outstanding() != 100 {
		t.Errorf("outstanding = %d, want 100", tx.Outstanding())
	}
	for i := 0; i < 40; i++ {
		rx.Receive()
	}
	if tx.Outstanding() != 60 {
		t.Errorf("outstanding = %d, want 60", tx.Outstanding())
	}
	st, _ := rt.Stats(1)
	if st.Acks != 40 {
		t.Errorf("acks = %d, want 40", st.Acks)
	}
	if st.MaxQueued != 100 {
		t.Errorf("MaxQueued = %d, want 100", st.MaxQueued)
	}
}

func TestCloseUnblocksEverybody(t *testing.T) {
	rt := NewRuntime()
	tx, rx, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 1, Protocol: BBS, Capacity: 1})
	tx.Send([]byte{1})
	var wg sync.WaitGroup
	wg.Add(2)
	var sendErr, recvErr error
	go func() {
		defer wg.Done()
		sendErr = tx.Send([]byte{2}) // blocks: buffer full
	}()
	go func() {
		defer wg.Done()
		rx.Receive()              // consumes the first message
		_, recvErr = rx.Receive() // blocks: empty... unless send lands first
		if recvErr == nil {
			_, recvErr = rx.Receive() // then this one blocks
		}
	}()
	time.Sleep(20 * time.Millisecond)
	tx.Close()
	wg.Wait()
	if sendErr != nil && !errors.Is(sendErr, ErrClosed) {
		t.Errorf("send err = %v", sendErr)
	}
	if !errors.Is(recvErr, ErrClosed) {
		t.Errorf("recv err = %v, want ErrClosed", recvErr)
	}
}

func TestTryReceive(t *testing.T) {
	rt := NewRuntime()
	tx, rx, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 1, Protocol: UBS})
	if _, ok, err := rx.TryReceive(); ok || err != nil {
		t.Errorf("empty TryReceive = %v,%v", ok, err)
	}
	tx.Send([]byte{7})
	p, ok, err := rx.TryReceive()
	if !ok || err != nil || p[0] != 7 {
		t.Errorf("TryReceive = %v,%v,%v", p, ok, err)
	}
	tx.Close()
	if _, _, err := rx.TryReceive(); !errors.Is(err, ErrClosed) {
		t.Errorf("closed TryReceive err = %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	rt := NewRuntime()
	tx, _, _ := rt.Init(EdgeConfig{ID: 1, Mode: Dynamic, MaxBytes: 100, Protocol: UBS})
	tx.Send(make([]byte, 10))
	tx.Send(make([]byte, 20))
	st, ok := rt.Stats(1)
	if !ok {
		t.Fatal("edge stats missing")
	}
	if st.Messages != 2 || st.PayloadBytes != 30 {
		t.Errorf("stats = %+v", st)
	}
	if st.WireBytes != 30+2*DynamicHeaderBytes {
		t.Errorf("wire bytes = %d, want %d", st.WireBytes, 30+2*DynamicHeaderBytes)
	}
	if _, ok := rt.Stats(99); ok {
		t.Error("unknown edge should report !ok")
	}
	total := rt.TotalStats()
	if total.Messages != 2 {
		t.Errorf("total = %+v", total)
	}
}

func TestConcurrentProducerConsumer(t *testing.T) {
	rt := NewRuntime()
	tx, rx, _ := rt.Init(EdgeConfig{ID: 1, Mode: Static, PayloadBytes: 8, Protocol: BBS, Capacity: 4})
	const n = 1000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 8)
		for i := 0; i < n; i++ {
			buf[0] = byte(i)
			if err := tx.Send(buf); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		p, err := rx.Receive()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if p[0] != byte(i) {
			t.Fatalf("out of order at %d: got %d", i, p[0])
		}
	}
	wg.Wait()
	st, _ := rt.Stats(1)
	if st.MaxQueued > 4 {
		t.Errorf("BBS MaxQueued %d exceeds capacity", st.MaxQueued)
	}
}
