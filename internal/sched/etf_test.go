package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataflow"
)

func TestETFValidMapping(t *testing.T) {
	g := fanout(4, 1, 100, 1)
	m, err := ETFSchedule(g, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestETFRejectsBadInput(t *testing.T) {
	g := fanout(2, 1, 10, 1)
	if _, err := ETFSchedule(g, 0, 0); err == nil {
		t.Error("0 procs should fail")
	}
	dead := dataflow.New("dead")
	a := dead.AddActor("A", 1)
	b := dead.AddActor("B", 1)
	dead.AddEdge("ab", a, b, 1, 1, dataflow.EdgeSpec{})
	dead.AddEdge("ba", b, a, 1, 1, dataflow.EdgeSpec{})
	if _, err := ETFSchedule(dead, 2, 0); err == nil {
		t.Error("cyclic graph should fail")
	}
}

func TestETFAvoidsExpensiveCommunication(t *testing.T) {
	// A chain of small actors: with huge communication cost, ETF should
	// keep everything on one processor; HLF's processor choice ignores
	// downstream effects less gracefully. At minimum, ETF's result must
	// not be worse.
	g := pipeline(10, 10, 10, 10, 10, 10)
	const comm = 100000
	etf, err := ETFSchedule(g, 3, comm)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SelfTimedConfig{Iterations: 4, CommCycles: func(dataflow.EdgeID) int64 { return comm }}
	etfRes, err := SelfTimed(g, etf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hlf, err := ListSchedule(g, 3, comm)
	if err != nil {
		t.Fatal(err)
	}
	hlfRes, err := SelfTimed(g, hlf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if etfRes.Finish > hlfRes.Finish {
		t.Errorf("ETF (%d) worse than HLF (%d) under expensive comm", etfRes.Finish, hlfRes.Finish)
	}
	// With that comm cost, the chain must stay on one processor.
	if len(etf.InterprocessorEdges(g)) != 0 {
		t.Errorf("ETF split a chain despite %d-cycle comm", comm)
	}
}

func TestETFBalancesFanout(t *testing.T) {
	g := fanout(4, 1, 100, 1)
	m, err := ETFSchedule(g, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]int, 4)
	for a := 0; a < g.NumActors(); a++ {
		if g.Actor(dataflow.ActorID(a)).Name[0] == 'w' {
			workers[m.Proc[a]]++
		}
	}
	for p, c := range workers {
		if c != 1 {
			t.Errorf("processor %d has %d workers, want 1", p, c)
		}
	}
}

// Property: ETF and HLF both produce valid mappings; neither beats the
// work/nprocs lower bound.
func TestETFProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		workers := 1 + r.Intn(5)
		nprocs := 1 + r.Intn(4)
		g := fanout(workers, 1+int64(r.Intn(10)), 10+int64(r.Intn(100)), 1+int64(r.Intn(10)))
		m, err := ETFSchedule(g, nprocs, int64(r.Intn(30)))
		if err != nil || m.Validate(g) != nil {
			return false
		}
		res, err := SelfTimed(g, m, SelfTimedConfig{Iterations: 1})
		if err != nil {
			return false
		}
		var work int64
		for a := 0; a < g.NumActors(); a++ {
			work += g.Actor(dataflow.ActorID(a)).ExecCycles
		}
		return res.Finish >= work/int64(nprocs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
