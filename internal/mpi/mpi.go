// Package mpi implements a deliberately generic message-passing baseline in
// the style of MPI point-to-point communication, used as the comparator the
// SPI paper argues against for embedded signal processing.
//
// Where SPI exploits compile-time knowledge (edge identity, datatype, and —
// for static edges — message size), this baseline carries a full
// self-describing header on every message and uses a rendezvous handshake
// (request-to-send / clear-to-send) for messages above an eager threshold,
// as real MPI implementations over FPGA interconnects do (cf. TMD-MPI).
// The per-message cost difference against package spi is the subject of the
// SPI-vs-MPI ablation benchmarks.
package mpi

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Datatype tags the element type of a message, carried on the wire (SPI
// omits this: datatypes are compile-time knowledge there).
type Datatype uint32

// Supported datatypes.
const (
	Byte Datatype = iota + 1
	Int32
	Float32
	Float64
)

// Size returns the element size in bytes.
func (d Datatype) Size() int {
	switch d {
	case Byte:
		return 1
	case Int32, Float32:
		return 4
	case Float64:
		return 8
	default:
		return 0
	}
}

// HeaderBytes is the generic MPI-style header: tag, source, dest, datatype,
// count, payload size — six 32-bit fields.
const HeaderBytes = 24

// EagerLimit is the default payload size above which the rendezvous
// protocol engages (RTS/CTS handshake before the data message).
const EagerLimit = 512

// Envelope is a decoded message header.
type Envelope struct {
	Tag      uint32
	Source   uint32
	Dest     uint32
	Datatype Datatype
	Count    uint32
}

// Encode frames a payload with the full MPI-style header.
func Encode(env Envelope, payload []byte) []byte {
	out := make([]byte, HeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(out[0:], env.Tag)
	binary.LittleEndian.PutUint32(out[4:], env.Source)
	binary.LittleEndian.PutUint32(out[8:], env.Dest)
	binary.LittleEndian.PutUint32(out[12:], uint32(env.Datatype))
	binary.LittleEndian.PutUint32(out[16:], env.Count)
	binary.LittleEndian.PutUint32(out[20:], uint32(len(payload)))
	copy(out[HeaderBytes:], payload)
	return out
}

// Decode parses a framed message.
func Decode(msg []byte) (Envelope, []byte, error) {
	if len(msg) < HeaderBytes {
		return Envelope{}, nil, fmt.Errorf("mpi: message of %d bytes shorter than header", len(msg))
	}
	env := Envelope{
		Tag:      binary.LittleEndian.Uint32(msg[0:]),
		Source:   binary.LittleEndian.Uint32(msg[4:]),
		Dest:     binary.LittleEndian.Uint32(msg[8:]),
		Datatype: Datatype(binary.LittleEndian.Uint32(msg[12:])),
		Count:    binary.LittleEndian.Uint32(msg[16:]),
	}
	size := int(binary.LittleEndian.Uint32(msg[20:]))
	if len(msg)-HeaderBytes != size {
		return Envelope{}, nil, fmt.Errorf("mpi: payload %d bytes, header says %d", len(msg)-HeaderBytes, size)
	}
	if env.Datatype.Size() == 0 {
		return Envelope{}, nil, fmt.Errorf("mpi: unknown datatype %d", env.Datatype)
	}
	if want := int(env.Count) * env.Datatype.Size(); want != size {
		return Envelope{}, nil, fmt.Errorf("mpi: count %d x %d bytes != payload %d", env.Count, env.Datatype.Size(), size)
	}
	return env, msg[HeaderBytes:], nil
}

// Comm is a software communicator over a fixed number of ranks, mirroring
// MPI_COMM_WORLD semantics for blocking point-to-point operations. Messages
// match by (source, tag) in FIFO order.
type Comm struct {
	size int

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[matchKey][][]byte

	stats Stats
}

type matchKey struct {
	src, dst int
	tag      uint32
}

// Stats counts communicator traffic.
type Stats struct {
	Messages   int64
	WireBytes  int64
	Handshakes int64 // rendezvous RTS/CTS pairs
}

// NewComm returns a communicator with the given number of ranks.
func NewComm(size int) (*Comm, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: communicator size %d", size)
	}
	c := &Comm{size: size, queues: make(map[matchKey][][]byte)}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Send transmits payload elements of the given datatype from src to dst
// with a tag. It validates ranks and datatype/payload agreement, frames the
// full header, and accounts rendezvous handshakes above the eager limit.
func (c *Comm) Send(src, dst int, tag uint32, dt Datatype, payload []byte) error {
	if err := c.checkRank(src, dst); err != nil {
		return err
	}
	es := dt.Size()
	if es == 0 {
		return fmt.Errorf("mpi: unknown datatype %d", dt)
	}
	if len(payload)%es != 0 {
		return fmt.Errorf("mpi: payload %d bytes not a multiple of element size %d", len(payload), es)
	}
	msg := Encode(Envelope{
		Tag: tag, Source: uint32(src), Dest: uint32(dst),
		Datatype: dt, Count: uint32(len(payload) / es),
	}, payload)

	c.mu.Lock()
	defer c.mu.Unlock()
	k := matchKey{src: src, dst: dst, tag: tag}
	c.queues[k] = append(c.queues[k], msg)
	c.stats.Messages++
	c.stats.WireBytes += int64(len(msg))
	if len(payload) > EagerLimit {
		c.stats.Handshakes++
		c.stats.WireBytes += 2 * HeaderBytes // RTS + CTS control messages
	}
	c.cond.Broadcast()
	return nil
}

// Recv blocks for a message from src to dst with the given tag and returns
// its payload and envelope.
func (c *Comm) Recv(src, dst int, tag uint32) (Envelope, []byte, error) {
	if err := c.checkRank(src, dst); err != nil {
		return Envelope{}, nil, err
	}
	k := matchKey{src: src, dst: dst, tag: tag}
	c.mu.Lock()
	for len(c.queues[k]) == 0 {
		c.cond.Wait()
	}
	msg := c.queues[k][0]
	c.queues[k] = c.queues[k][1:]
	c.mu.Unlock()
	return Decode(msg)
}

// Bcast sends payload from root to every other rank (naive linear
// broadcast, as small FPGA MPI implementations use).
func (c *Comm) Bcast(root int, tag uint32, dt Datatype, payload []byte) error {
	for r := 0; r < c.size; r++ {
		if r == root {
			continue
		}
		if err := c.Send(root, r, tag, dt, payload); err != nil {
			return err
		}
	}
	return nil
}

// RecvBcast receives one broadcast message at a non-root rank.
func (c *Comm) RecvBcast(root, rank int, tag uint32) ([]byte, error) {
	_, p, err := c.Recv(root, rank, tag)
	return p, err
}

// ReduceFloat64 gathers one float64 from every rank at root and returns
// their element-wise sum. contributions maps rank -> value; the root's own
// value is passed directly. (A convenience for the particle filter's
// weight-sum exchange in the MPI-baseline configuration.)
func (c *Comm) ReduceFloat64(root int, tag uint32, ownValue float64, ranks []int) (float64, error) {
	sum := ownValue
	for _, r := range ranks {
		if r == root {
			continue
		}
		_, p, err := c.Recv(r, root, tag)
		if err != nil {
			return 0, err
		}
		if len(p) != 8 {
			return 0, fmt.Errorf("mpi: reduce contribution of %d bytes", len(p))
		}
		bitsv := binary.LittleEndian.Uint64(p)
		sum += float64frombits(bitsv)
	}
	return sum, nil
}

// SendFloat64 sends a single float64 (for ReduceFloat64 contributions).
func (c *Comm) SendFloat64(src, dst int, tag uint32, v float64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], float64bits(v))
	return c.Send(src, dst, tag, Float64, b[:])
}

// Stats returns a snapshot of the communicator's traffic counters.
func (c *Comm) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Comm) checkRank(src, dst int) error {
	if src < 0 || src >= c.size || dst < 0 || dst >= c.size {
		return fmt.Errorf("mpi: rank out of range (src=%d dst=%d size=%d)", src, dst, c.size)
	}
	if src == dst {
		return fmt.Errorf("mpi: self-send (rank %d)", src)
	}
	return nil
}
