package lpc

import (
	"testing"

	"repro/internal/signal"
)

func TestCompressFrameParallelIdentical(t *testing.T) {
	c, err := NewCodec(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	x := signal.Speech(c.Params().FrameSize, 41)
	serial, err := c.CompressFrame(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		par, stats, err := c.CompressFrameParallel(x, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sb, _ := serial.MarshalBinary()
		pb, _ := par.MarshalBinary()
		if string(sb) != string(pb) {
			t.Errorf("n=%d: parallel frame differs from serial", n)
		}
		if stats.Messages != int64(3*n) {
			t.Errorf("n=%d: messages = %d", n, stats.Messages)
		}
	}
}

func TestCompressFrameParallelValidation(t *testing.T) {
	c, _ := NewCodec(DefaultParams())
	if _, _, err := c.CompressFrameParallel(make([]float64, 3), 2); err == nil {
		t.Error("wrong frame size should fail")
	}
	if _, _, err := c.CompressFrameParallel(signal.Speech(256, 1), 0); err == nil {
		t.Error("0 PEs should fail")
	}
}
